#!/usr/bin/env python3
"""Gate the data-plane hot path: delivery share must not regress.

Usage:
    tools/check_delivery_share.py --baseline bench/baselines --current out \
        [--measurement hotpath/row0] [--max-share-increase 0.10]

Reads BENCH_thm11_even_cycle.json from both directories and compares the
"hotpath" measurement, which runs a fixed even-cycle workload with
TraceOptions::timers enabled:

  * delivery share = timers_delivery_ns / (timers_compute_ns +
    timers_delivery_ns).  The zero-copy frame plane exists to shrink this
    number; the gate fails if the current share exceeds the baseline share
    by more than --max-share-increase (absolute, default 0.10 — wide
    enough for scheduler noise, narrow enough to catch a copy creeping
    back into delivery).
  * rounds/sec = rounds / (elapsed_ns / 1e9), reported for both sides
    with the speedup ratio.  Informational by default; pass
    --min-speedup to also gate on it (used when comparing against a
    pre-optimization baseline, e.g. the >= 5x acceptance run recorded in
    EXPERIMENTS.md).

Exit status: 0 = clean, 1 = regression, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPORT = "BENCH_thm11_even_cycle.json"


def load_hotpath(path: Path, measurement: str) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    for m in doc.get("measurements", []):
        if m.get("name") == measurement:
            return m.get("values", {})
    print(
        f"error: {path} has no measurement '{measurement}' "
        "(regenerate the baseline after adding the hotpath section?)",
        file=sys.stderr,
    )
    sys.exit(2)


def delivery_share(values: dict) -> float:
    compute = float(values["timers_compute_ns"])
    delivery = float(values["timers_delivery_ns"])
    total = compute + delivery
    return delivery / total if total > 0 else 0.0


def rounds_per_sec(values: dict) -> float:
    elapsed_ns = float(values["elapsed_ns"])
    return float(values["rounds"]) / (elapsed_ns / 1e9) if elapsed_ns > 0 else 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--measurement", default="hotpath/row0")
    parser.add_argument("--max-share-increase", type=float, default=0.10)
    parser.add_argument("--min-speedup", type=float, default=None)
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy the current report over the baseline "
                             "instead of comparing (same flag as "
                             "bench_compare.py)")
    args = parser.parse_args()

    if args.update_baseline:
        src = args.current / REPORT
        if not src.is_file():
            print(f"error: {src} not found", file=sys.stderr)
            return 2
        (args.baseline / REPORT).write_text(src.read_text())
        print(f"updated: {args.baseline / REPORT}")
        return 0

    base = load_hotpath(args.baseline / REPORT, args.measurement)
    cur = load_hotpath(args.current / REPORT, args.measurement)

    for key in ("rounds", "n", "reps"):
        if base.get(key) != cur.get(key):
            print(
                f"FAIL: workload drift on '{key}': baseline {base.get(key)} "
                f"vs current {cur.get(key)} — the timer comparison is only "
                "meaningful on identical work",
                file=sys.stderr,
            )
            return 1

    base_share = delivery_share(base)
    cur_share = delivery_share(cur)
    base_rps = rounds_per_sec(base)
    cur_rps = rounds_per_sec(cur)
    speedup = cur_rps / base_rps if base_rps > 0 else float("inf")

    print(f"delivery share: baseline {base_share:.3f} -> current {cur_share:.3f}")
    print(
        f"rounds/sec:     baseline {base_rps:,.0f} -> current {cur_rps:,.0f} "
        f"({speedup:.2f}x)"
    )

    ok = True
    if cur_share > base_share + args.max_share_increase:
        print(
            f"FAIL: delivery share rose by {cur_share - base_share:.3f} "
            f"(> {args.max_share_increase:.2f} allowed) — a copy or "
            "allocation has crept back into the delivery path",
            file=sys.stderr,
        )
        ok = False
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print("OK: delivery share within bounds")
    else:
        print(
            "\nIf the change is intentional, refresh the baseline:\n"
            f"  tools/check_delivery_share.py --baseline {args.baseline} "
            f"--current {args.current} --update-baseline",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
