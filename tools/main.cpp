// Entry point of the `csd` command-line tool (logic lives in cli.cpp so the
// test suite can drive it in-process).
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return csd::cli::run(args, std::cout, std::cerr);
}
