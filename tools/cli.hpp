// The `csd` command-line tool, as a library so tests can drive it directly.
//
// Subcommands:
//   generate <family> [params...] [--out FILE] [--dimacs]
//   stats <file>
//   detect <pattern> <file> [--bandwidth B] [--seed S] [--reps R]
//   list-cliques <s> <file>
//   fool <namespace N> <budget c>
//
// Run `csd help` for the full usage text.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csd::cli {

/// Executes one CLI invocation; writes human-readable output to `out` and
/// diagnostics to `err`. Returns the process exit code (0 = success, 1 =
/// usage error, 2 = runtime failure).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace csd::cli
