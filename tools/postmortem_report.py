#!/usr/bin/env python3
"""Render a csd-blackbox-v1 flight-recorder dump as a post-mortem report.

Usage:
    tools/postmortem_report.py BLACKBOX.json [--series SERIES.jsonl]
                               [--last SEC] [--json-out FILE]

The input is the JSON document `csd detect/sweep --blackbox` (or a bench's
--blackbox flag) writes when a run trips a violation, watchdog stall, stall
report, failed resume, or fatal signal — see DESIGN.md §14:

    {
      "schema": "csd-blackbox-v1",
      "reason": "...",            # what triggered the dump
      "epoch_ms": ...,            # wall clock at dump time
      "events_recorded": N,       # ring writes over the whole run
      "events_kept": K,           # survivors in the fixed-capacity ring
      "torn": T,                  # slots lost to in-flight writers
      "events": [{"kind","actor","at","value","epoch_ms"}, ...],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

--series adds the csd-metrics-v2 JSONL sample stream that ran alongside.

The default output is a human-readable report: per-kind event counts,
final counter values, and a timeline of the last --last seconds (default
30) relative to the dump instant. --json-out writes a csd-postmortem-v1
summary whose fields agree value-for-value with `csd postmortem --json`
on the same inputs — CI parses both and asserts equality, so keep the two
implementations in lockstep.

Exit status: 0 = rendered, 2 = usage/IO/schema error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "csd-blackbox-v1"
SERIES_SCHEMA = "csd-metrics-v2"
OUT_SCHEMA = "csd-postmortem-v1"


def fail(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_blackbox(path: Path) -> dict:
    try:
        dump = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot read blackbox '{path}': {exc}")
    if not isinstance(dump, dict) or dump.get("schema") != SCHEMA:
        fail(f"'{path}' is not a {SCHEMA} dump")
    return dump


def load_series(path: Path) -> list[dict]:
    """Parse the JSONL sample stream; validates the per-line schema."""
    samples = []
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        fail(f"cannot read series '{path}': {exc}")
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            sample = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{lineno}: bad JSON: {exc}")
        if sample.get("schema") != SERIES_SCHEMA:
            fail(f"{path}:{lineno}: not a {SERIES_SCHEMA} sample")
        samples.append(sample)
    return samples


def series_span_ms(samples: list[dict]) -> int:
    if len(samples) < 2:
        return 0
    return samples[-1]["epoch_ms"] - samples[0]["epoch_ms"]


def summarize(dump: dict, samples: list[dict], last_sec: float) -> dict:
    """The csd-postmortem-v1 document; must mirror cmd_postmortem exactly."""
    dump_epoch = dump["epoch_ms"]
    cutoff = max(dump_epoch - int(last_sec * 1000.0), 0)
    counts: dict[str, int] = {}
    in_window = 0
    for event in dump["events"]:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        if event["epoch_ms"] >= cutoff:
            in_window += 1
    return {
        "schema": OUT_SCHEMA,
        "reason": dump["reason"],
        "epoch_ms": dump_epoch,
        "events_recorded": dump["events_recorded"],
        "events_kept": dump["events_kept"],
        "torn": dump["torn"],
        "window_seconds": last_sec,
        "events_in_window": in_window,
        "event_counts": dict(sorted(counts.items())),
        "counters": dump["metrics"]["counters"],
        "series_samples": len(samples),
        "series_span_ms": series_span_ms(samples),
    }


def render(dump: dict, samples: list[dict], summary: dict,
           last_sec: float, have_series: bool) -> None:
    print(f"reason:     {summary['reason']}")
    print(f"events:     {summary['events_recorded']} recorded, "
          f"{summary['events_kept']} kept, {summary['torn']} torn")
    if summary["event_counts"]:
        print("event counts:")
        for kind, count in summary["event_counts"].items():
            print(f"  {kind}  {count}")
    if summary["counters"]:
        print("final counters:")
        for name, value in summary["counters"].items():
            print(f"  {name} = {value}")
    if have_series:
        print(f"series:     {summary['series_samples']} sample(s) spanning "
              f"{summary['series_span_ms']} ms")
    dump_epoch = summary["epoch_ms"]
    cutoff = max(dump_epoch - int(last_sec * 1000.0), 0)
    print(f"timeline (last {last_sec:g}s, "
          f"{summary['events_in_window']} event(s)):")
    for event in dump["events"]:
        if event["epoch_ms"] < cutoff:
            continue
        rel_ms = event["epoch_ms"] - dump_epoch
        sign = "-" if rel_ms < 0 else "+"
        mag = abs(rel_ms)
        print(f"  [{sign}{mag // 1000}.{mag % 1000:03d}s] "
              f"{event['kind']}  actor={event['actor']} "
              f"at={event['at']} value={event['value']}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Render a csd-blackbox-v1 dump as a post-mortem report")
    parser.add_argument("blackbox", type=Path,
                        help="csd-blackbox-v1 JSON dump")
    parser.add_argument("--series", type=Path, default=None,
                        help="csd-metrics-v2 JSONL sample stream")
    parser.add_argument("--last", type=float, default=30.0,
                        help="timeline window in seconds (default 30)")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="write the csd-postmortem-v1 summary here")
    args = parser.parse_args()
    if args.last <= 0:
        fail("--last wants seconds > 0")

    dump = load_blackbox(args.blackbox)
    samples = load_series(args.series) if args.series else []
    summary = summarize(dump, samples, args.last)
    if args.json_out:
        args.json_out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"json:       {args.json_out}")
    render(dump, samples, summary, args.last, args.series is not None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
