#!/usr/bin/env python3
"""Gate the scaled lower-bound sweeps' fitted exponents.

Usage:
    tools/lb_gate.py --current out-scale \
        [--baseline bench/baselines/LB_GATE.json] [options]

The --scale mode of the lower-bound benches (bench_thm12_superlinear,
bench_thm51_oneround) emits an "lb_fit" table: one row per fitted curve,
mirrored into the csd-bench-v1 report as measurements named "lb_fit/rowN"
with keys {group, exponent, lo95, hi95, theory, tol, points, seeds}.
This tool applies two independent gates to every such row found in the
--current directory's BENCH_*.json reports:

  1. Theory gate (absolute, baseline-free): the fitted exponent AND both
     bootstrap CI edges must lie inside [theory - tol, theory + tol],
     where theory and tol were chosen by the bench (k·n^{1/k} structural
     cuts fit 1/k; the one-round Bloom collapse threshold fits the Ω(Δ)
     exponent 1). A sweep whose entire confidence interval cannot reach
     the theory band is wrong no matter what yesterday's numbers were.

  2. Baseline gate (drift): the rows must match the committed baseline
     file (bench_compare.py conventions: exact ints/strings, REL_TOL for
     floats). The sweeps are deterministic — seeds are pinned and the
     bootstrap is seeded — so any drift means the measurement pipeline
     changed and the baseline must be refreshed deliberately via
     --update-baseline.

Reports without lb_fit rows are ignored (bench_thm41_fooling's sampled
collision sweep is descriptive, not exponent-gated).

Baseline file schema (csd-lb-gate-v1):

    {
      "schema": "csd-lb-gate-v1",
      "fits": {"<report file>": {"<group>": {row values}}}
    }

Exit status: 0 = clean, 1 = gate failure or drift, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

BENCH_SCHEMA = "csd-bench-v1"
GATE_SCHEMA = "csd-lb-gate-v1"
REL_TOL = 1e-9
ROW_KEYS = ("group", "exponent", "lo95", "hi95", "theory", "tol", "points",
            "seeds")


def load_fits(directory: Path) -> dict[str, dict[str, dict]]:
    """Map report file -> group -> lb_fit row values."""
    fits: dict[str, dict[str, dict]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            sys.exit(2)
        if doc.get("schema") != BENCH_SCHEMA:
            print(f"error: {path} schema {doc.get('schema')!r} != "
                  f"{BENCH_SCHEMA!r}", file=sys.stderr)
            sys.exit(2)
        rows = {}
        for m in doc.get("measurements", []):
            name = m.get("name", "")
            if not name.startswith("lb_fit/"):
                continue
            values = m.get("values", {})
            missing = [k for k in ROW_KEYS if k not in values]
            if missing:
                print(f"error: {path} measurement {name} lacks keys "
                      f"{missing}", file=sys.stderr)
                sys.exit(2)
            group = values["group"]
            if group in rows:
                print(f"error: {path} emits group {group!r} twice",
                      file=sys.stderr)
                sys.exit(2)
            rows[group] = values
        if rows:
            fits[path.name] = rows
    return fits


def close(a: float, b: float) -> bool:
    return math.isclose(float(a), float(b), rel_tol=REL_TOL, abs_tol=REL_TOL)


def theory_gate(fits: dict[str, dict[str, dict]], errors: list[str],
                checked: list[dict]) -> None:
    for report in sorted(fits):
        for group, row in sorted(fits[report].items()):
            theory, tol = float(row["theory"]), float(row["tol"])
            lo_band, hi_band = theory - tol, theory + tol
            record = {"report": report, "group": group,
                      "exponent": row["exponent"], "lo95": row["lo95"],
                      "hi95": row["hi95"], "theory": theory, "tol": tol}
            checked.append(record)
            for key in ("exponent", "lo95", "hi95"):
                value = float(row[key])
                if not (lo_band <= value <= hi_band):
                    errors.append(
                        f"{report} [{group}]: {key} = {value:.4f} outside "
                        f"theory band [{lo_band:.4f}, {hi_band:.4f}] "
                        f"(theory {theory:.4f} ± {tol:.4f})")
                    record["failed"] = key


def baseline_gate(baseline: dict, fits: dict[str, dict[str, dict]],
                  errors: list[str]) -> None:
    base_fits = baseline.get("fits", {})
    for report in base_fits:
        if report not in fits:
            errors.append(f"{report}: baseline exists but no current report "
                          f"with lb_fit rows (bench not run with --scale?)")
    for report in fits:
        if report not in base_fits:
            errors.append(f"{report}: lb_fit rows have no baseline "
                          f"(refresh with --update-baseline)")
    for report in sorted(set(base_fits) & set(fits)):
        base_rows, cur_rows = base_fits[report], fits[report]
        for group in base_rows:
            if group not in cur_rows:
                errors.append(f"{report} [{group}]: missing in current run")
        for group in cur_rows:
            if group not in base_rows:
                errors.append(f"{report} [{group}]: not in baseline "
                              f"(refresh with --update-baseline)")
        for group in sorted(set(base_rows) & set(cur_rows)):
            base_row, cur_row = base_rows[group], cur_rows[group]
            for key in ROW_KEYS:
                b, c = base_row.get(key), cur_row.get(key)
                if isinstance(b, float) or isinstance(c, float):
                    if not close(b, c):
                        errors.append(f"{report} [{group}].{key}: "
                                      f"{b!r} -> {c!r}")
                elif b != c:
                    errors.append(f"{report} [{group}].{key}: {b!r} -> {c!r}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Gate scaled lower-bound exponent fits against theory "
                    "and a committed baseline.")
    parser.add_argument("--current", required=True, type=Path,
                        help="directory of BENCH_*.json from a --scale run")
    parser.add_argument("--baseline", type=Path,
                        default=Path("bench/baselines/LB_GATE.json"),
                        help="committed csd-lb-gate-v1 baseline file")
    parser.add_argument("--no-baseline", action="store_true",
                        help="theory gate only (e.g. first run on a branch "
                             "that adds a new fit group)")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="write a machine-readable summary to this file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current run "
                             "(after the theory gate passes)")
    args = parser.parse_args()

    if not args.current.is_dir():
        print(f"error: {args.current} is not a directory", file=sys.stderr)
        return 2
    fits = load_fits(args.current)
    if not fits:
        print(f"error: no lb_fit rows in any BENCH_*.json under "
              f"{args.current} (were the benches run with --scale?)",
              file=sys.stderr)
        return 2

    errors: list[str] = []
    checked: list[dict] = []
    theory_gate(fits, errors, checked)

    if args.update_baseline:
        if errors:
            print(f"FAIL: refusing to update baseline with "
                  f"{len(errors)} theory-gate failure(s):")
            for err in errors:
                print(f"  {err}")
            return 1
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps({"schema": GATE_SCHEMA, "fits": fits}, indent=2,
                       sort_keys=True) + "\n")
        print(f"updated: {args.baseline} "
              f"({sum(len(r) for r in fits.values())} fit group(s))")
        return 0

    if not args.no_baseline:
        if not args.baseline.is_file():
            print(f"error: baseline {args.baseline} missing (create with "
                  f"--update-baseline or pass --no-baseline)",
                  file=sys.stderr)
            return 2
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        if baseline.get("schema") != GATE_SCHEMA:
            print(f"error: {args.baseline} schema "
                  f"{baseline.get('schema')!r} != {GATE_SCHEMA!r}",
                  file=sys.stderr)
            return 2
        baseline_gate(baseline, fits, errors)

    summary = {
        "schema": "csd-lb-gate-compare-v1",
        "ok": not errors,
        "fit_groups": sum(len(r) for r in fits.values()),
        "checked": checked,
        "failures": errors,
    }
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(json.dumps(summary, indent=2) + "\n")

    for record in checked:
        status = "FAIL" if "failed" in record else "ok"
        print(f"{status}: {record['report']} [{record['group']}] exponent "
              f"{float(record['exponent']):.4f} CI "
              f"[{float(record['lo95']):.4f}, {float(record['hi95']):.4f}] "
              f"vs theory {record['theory']:.4f} ± {record['tol']:.4f}")
    if errors:
        print(f"FAIL: {len(errors)} gate failure(s):")
        for err in errors:
            print(f"  {err}")
        print("\nIf a fit legitimately moved (new sizes, new seeds, "
              "estimator change), refresh the baseline:\n"
              f"  tools/lb_gate.py --current {args.current} "
              f"--baseline {args.baseline} --update-baseline")
        return 1
    print(f"OK: {summary['fit_groups']} fit group(s) inside the theory band"
          + ("" if args.no_baseline else " and matching the baseline"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
