#!/usr/bin/env python3
"""Compare a directory of BENCH_*.json reports against committed baselines.

Usage:
    tools/bench_compare.py --baseline bench/baselines --current out [options]

Every report follows the csd-bench-v1 schema emitted by obs::BenchReport:

    {
      "schema": "csd-bench-v1",
      "name": "...",
      "smoke": true,
      "params": {...},            # deterministic
      "seeds": [...],             # deterministic
      "measurements": [           # deterministic unless key is wall-clock
        {"name": "...", "values": {...}}
      ],
      "env": {...}                # non-deterministic (git_sha, wall_clock_ms,
                                  # jobs) — only wall_clock_ms is gated
    }

Comparison rules:
  * Missing or extra reports fail (the bench set itself is part of the
    contract).
  * `schema`, `name`, `smoke`, `params`, `seeds` must match exactly.
  * Measurement values are exact for ints/bools/strings and tight
    (REL_TOL = 1e-9) for floats — model-exact rounds/bits may not drift
    at all.
  * Keys ending in `_ms` / `_ns` are wall-clock by convention: they get
    WALL_TOL (default 25%) relative tolerance and are skipped entirely
    below an absolute floor where scheduler noise dominates.
  * `env.wall_clock_ms` gets the same wall-clock gate; other env keys
    (git_sha, jobs, host) are informational and ignored.

Exit status: 0 = clean, 1 = drift detected, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

SCHEMA = "csd-bench-v1"
REL_TOL = 1e-9  # deterministic floats (averages of exact counters)
WALL_TOL = 0.25  # wall-clock keys: fail above 25% drift
WALL_FLOOR_MS = 500.0  # ignore wall-clock drift under this baseline value
WALL_FLOOR_NS = 500.0 * 1e6


def is_wall_key(key: str) -> bool:
    return key.endswith("_ms") or key.endswith("_ns")


def wall_floor(key: str) -> float:
    return WALL_FLOOR_NS if key.endswith("_ns") else WALL_FLOOR_MS


class Diff:
    """Human-readable error lines plus structured records for --json-out."""

    def __init__(self) -> None:
        self.errors: list[str] = []
        self.records: list[dict] = []
        self.notes: list[str] = []

    def error(self, msg: str, *, path: str | None = None, baseline=None,
              current=None, kind: str = "mismatch") -> None:
        self.errors.append(msg)
        record = {"kind": kind, "message": msg}
        if path is not None:
            record["path"] = path
        if baseline is not None:
            record["baseline"] = baseline
        if current is not None:
            record["current"] = current
        if (isinstance(baseline, (int, float)) and not isinstance(baseline, bool)
                and isinstance(current, (int, float))
                and not isinstance(current, bool)):
            record["delta"] = current - baseline
        self.records.append(record)

    def note(self, msg: str) -> None:
        self.notes.append(msg)


def compare_scalar(path: str, base, cur, diff: Diff) -> None:
    """Exact for ints/bools/strings/None; REL_TOL for floats."""
    if type(base) is bool or type(cur) is bool:
        if base is not cur:
            diff.error(f"{path}: {base!r} -> {cur!r}", path=path,
                       baseline=base, current=cur)
        return
    if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        if isinstance(base, int) and isinstance(cur, int):
            if base != cur:
                diff.error(f"{path}: {base} -> {cur}", path=path,
                           baseline=base, current=cur)
            return
        if not math.isclose(float(base), float(cur), rel_tol=REL_TOL,
                            abs_tol=REL_TOL):
            diff.error(f"{path}: {base!r} -> {cur!r}", path=path,
                       baseline=base, current=cur)
        return
    if base != cur:
        diff.error(f"{path}: {base!r} -> {cur!r}", path=path, baseline=base,
                   current=cur)


def compare_wall(path: str, base, cur, diff: Diff, key: str) -> None:
    if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
        compare_scalar(path, base, cur, diff)
        return
    base_f, cur_f = float(base), float(cur)
    floor = wall_floor(key)
    if base_f < floor and cur_f < floor:
        return  # below the noise floor: informational only
    if base_f <= 0.0:
        return
    drift = (cur_f - base_f) / base_f
    if drift > WALL_TOL:
        diff.error(
            f"{path}: wall-clock regression {base_f:.1f} -> {cur_f:.1f} "
            f"(+{100.0 * drift:.1f}% > {100.0 * WALL_TOL:.0f}%)",
            path=path, baseline=base_f, current=cur_f, kind="wall-clock")
    elif abs(drift) > WALL_TOL:
        diff.note(
            f"{path}: wall-clock improved {base_f:.1f} -> {cur_f:.1f} "
            f"({100.0 * drift:+.1f}%)")


def compare_value(path: str, base, cur, diff: Diff, wall: bool = False,
                  key: str = "") -> None:
    if isinstance(base, dict) and isinstance(cur, dict):
        for k in base:
            if k not in cur:
                diff.error(f"{path}.{k}: missing in current report")
        for k in cur:
            if k not in base:
                diff.error(f"{path}.{k}: not in baseline (refresh baselines?)")
        for k in base:
            if k in cur:
                compare_value(f"{path}.{k}", base[k], cur[k], diff,
                              wall=is_wall_key(k), key=k)
        return
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            diff.error(f"{path}: length {len(base)} -> {len(cur)}")
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            compare_value(f"{path}[{i}]", b, c, diff, wall=wall, key=key)
        return
    if type(base) in (dict, list) or type(cur) in (dict, list):
        diff.error(f"{path}: kind mismatch {type(base).__name__} -> "
                   f"{type(cur).__name__}")
        return
    if wall:
        compare_wall(path, base, cur, diff, key)
    else:
        compare_scalar(path, base, cur, diff)


def compare_report(name: str, base: dict, cur: dict, diff: Diff) -> None:
    for doc, which in ((base, "baseline"), (cur, "current")):
        if doc.get("schema") != SCHEMA:
            diff.error(f"{name}: {which} schema {doc.get('schema')!r} != "
                       f"{SCHEMA!r}")
            return
    if base.get("name") != cur.get("name"):
        diff.error(f"{name}: bench name {base.get('name')!r} -> "
                   f"{cur.get('name')!r}")
    if base.get("smoke") != cur.get("smoke"):
        diff.error(f"{name}: smoke flag {base.get('smoke')!r} -> "
                   f"{cur.get('smoke')!r} (baselines and runs must use the "
                   f"same mode)")
        return
    compare_value(f"{name}.params", base.get("params", {}),
                  cur.get("params", {}), diff)
    compare_value(f"{name}.seeds", base.get("seeds", []),
                  cur.get("seeds", []), diff)

    def by_name(doc):
        out = {}
        for m in doc.get("measurements", []):
            out[m.get("name", "?")] = m.get("values", {})
        return out

    base_m, cur_m = by_name(base), by_name(cur)
    for k in base_m:
        if k not in cur_m:
            diff.error(f"{name}.measurements[{k}]: missing in current report")
    for k in cur_m:
        if k not in base_m:
            diff.error(f"{name}.measurements[{k}]: not in baseline "
                       f"(refresh baselines?)")
    for k in base_m:
        if k in cur_m:
            compare_value(f"{name}.measurements[{k}]", base_m[k], cur_m[k],
                          diff)

    wall_key = "wall_clock_ms"
    base_wall = base.get("env", {}).get(wall_key)
    cur_wall = cur.get("env", {}).get(wall_key)
    if base_wall is not None and cur_wall is not None:
        compare_wall(f"{name}.env.{wall_key}", base_wall, cur_wall, diff,
                     wall_key)


def load_reports(directory: Path) -> dict[str, dict]:
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            reports[path.name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            sys.exit(2)
    return reports


def main() -> int:
    global WALL_TOL
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json reports against committed baselines.")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--current", required=True, type=Path,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--wall-tol", type=float, default=WALL_TOL,
                        help="relative wall-clock tolerance (default 0.25)")
    parser.add_argument("--no-wall", action="store_true",
                        help="skip all wall-clock gates (determinism only)")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="write a machine-readable comparison summary "
                             "(csd-bench-compare-v1) to this file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy the current BENCH_*.json reports over the "
                             "baselines instead of comparing (use after an "
                             "intentional model-level change)")
    args = parser.parse_args()
    WALL_TOL = math.inf if args.no_wall else args.wall_tol

    for directory in (args.baseline, args.current):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2

    if args.update_baseline:
        cur = load_reports(args.current)
        if not cur:
            print(f"error: no BENCH_*.json in {args.current}", file=sys.stderr)
            return 2
        for name in sorted(cur):
            (args.baseline / name).write_text(
                (args.current / name).read_text())
            print(f"updated: {args.baseline / name}")
        return 0

    base = load_reports(args.baseline)
    cur = load_reports(args.current)
    if not base:
        print(f"error: no BENCH_*.json in {args.baseline}", file=sys.stderr)
        return 2

    diff = Diff()
    for name in base:
        if name not in cur:
            diff.error(f"{name}: baseline exists but no current report "
                       f"(bench not run?)")
    for name in cur:
        if name not in base:
            diff.error(f"{name}: current report has no baseline "
                       f"(add it to {args.baseline})")
    for name in sorted(set(base) & set(cur)):
        compare_report(name, base[name], cur[name], diff)

    summary = {
        "schema": "csd-bench-compare-v1",
        "ok": not diff.errors,
        "baselines": len(base),
        "compared": len(set(base) & set(cur)),
        "failures": diff.records,
        "notes": diff.notes,
    }
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(json.dumps(summary, indent=2) + "\n")

    for note in diff.notes:
        print(f"note: {note}")
    if diff.errors:
        print(f"FAIL: {len(diff.errors)} difference(s) vs baseline:")
        for err in diff.errors:
            print(f"  {err}")
        # Machine-readable echo of the failure set so CI logs double as a
        # parseable artifact even when --json-out was not given.
        print(f"json: {json.dumps(summary, separators=(',', ':'))}")
        print("\nIf the change is intentional, refresh the baselines:\n"
              f"  tools/bench_compare.py --baseline {args.baseline} "
              f"--current {args.current} --update-baseline")
        return 1
    print(f"OK: {len(set(base) & set(cur))} report(s) match the baselines "
          f"({len(base)} baseline(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
