#!/usr/bin/env python3
"""Analyse csd-trace JSONL files (schema v1/v2) outside the C++ toolchain.

Usage:
    tools/trace_report.py TRACE.jsonl [TRACE2.jsonl ...] [options]

A trace file is the JSONL stream written by `csd detect --trace`,
`csd sweep --trace`, or the bench binaries: one or more instances, each a
header line, per-round lines, optional per-edge lines, and a summary line.
Headers carry a `meta` object (program, n, seed, ...) stamped by the
producer so multi-instance files can be demuxed here.

The report covers, per instance:
  * the per-phase table (rounds, messages, bits, bit share) from the
    summary's `phases` array;
  * non-zero transport/fault counters;
  * the top-K hottest directed edges and, with --cut B, the bits crossing
    the vertex cut {v < B} (per-edge traces only).

Across instances it fits per-repetition rounds against meta `n` on a
log-log scale (least squares), one fit per group (meta `group`, falling
back to `program`). With --expect-exponent E the script exits 1 when a
fitted slope exceeds E + TOL — the CI hook that checks measured round
growth against the paper's predicted exponent (Thm 1.1: 1 - 1/(k(k-1)),
i.e. 0.5 for C_4 detection).

Exit status: 0 = ok, 1 = exponent check failed, 2 = usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def fail(msg: str) -> None:
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def parse_traces(path: Path) -> list[dict]:
    """Parse one JSONL file into a list of instance dicts."""
    instances: list[dict] = []
    current: dict | None = None
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{line_no}: bad JSON: {exc}")
        kind = doc.get("type")
        if kind == "header":
            if current is not None:
                fail(f"{path}:{line_no}: header before previous summary")
            schema = doc.get("schema")
            if schema not in ("csd-trace-v1", "csd-trace-v2"):
                fail(f"{path}:{line_no}: unknown schema {schema!r}")
            current = {
                "meta": doc.get("meta", {}),
                "nodes": doc["nodes"],
                "rounds_declared": doc["rounds"],
                "segments": doc["segments"],
                "per_edge": doc.get("per_edge", False),
                "rounds": [],
                "edges": [],
                "phases": [],
                "counters": {},
                "total_messages": 0,
                "total_bits": 0,
            }
        elif current is None:
            fail(f"{path}:{line_no}: {kind!r} line outside an instance")
        elif kind == "round":
            current["rounds"].append(doc)
        elif kind == "edge":
            current["edges"].append(doc)
        elif kind == "summary":
            current["phases"] = doc.get("phases", [])
            current["counters"] = doc.get("counters", {})
            current["total_messages"] = doc["total_messages"]
            current["total_bits"] = doc["total_bits"]
            instances.append(current)
            current = None
        else:
            fail(f"{path}:{line_no}: unknown line type {kind!r}")
    if current is not None:
        fail(f"{path}: trace ends mid-instance (no summary line)")
    return instances


def instance_label(instance: dict, index: int) -> str:
    meta = instance["meta"]
    if not meta:
        return f"instance {index}"
    return " ".join(f"{k}={v}" for k, v in meta.items())


def fit_group(instance: dict) -> str:
    meta = instance["meta"]
    return meta.get("group") or meta.get("program") or ""


def rounds_per_segment(instance: dict) -> float:
    segments = instance["segments"]
    return instance["rounds_declared"] / segments if segments else 0.0


def fit_power_law(points: list[tuple[float, float]]):
    """Least-squares slope/intercept of log y vs log x; None if unfittable."""
    logs = [(math.log(x), math.log(y)) for x, y in points if x > 0 and y > 0]
    if len(logs) < 2 or len({lx for lx, _ in logs}) < 2:
        return None
    n = len(logs)
    sx = sum(lx for lx, _ in logs)
    sy = sum(ly for _, ly in logs)
    sxx = sum(lx * lx for lx, _ in logs)
    sxy = sum(lx * ly for lx, ly in logs)
    exponent = (n * sxy - sx * sy) / (n * sxx - sx * sx)
    log_coeff = (sy - exponent * sx) / n
    return {"exponent": exponent, "coeff": math.exp(log_coeff), "points": n}


def print_phase_table(instance: dict) -> None:
    phases = instance["phases"]
    if not phases:
        return
    total_bits = instance["total_bits"]
    rows = [("phase", "rounds", "messages", "bits", "bit share")]
    attributed = 0
    for phase in phases:
        share = 100.0 * phase["bits"] / total_bits if total_bits else 0.0
        rows.append((phase["name"], str(phase["rounds"]),
                     str(phase["messages"]), str(phase["bits"]),
                     f"{share:.1f}%"))
        attributed += phase["bits"]
    widths = [max(len(row[c]) for row in rows) for c in range(len(rows[0]))]
    for row in rows:
        print("  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    if attributed < total_bits:
        print(f"  unattributed: {total_bits - attributed} bits")


def report_instance(instance: dict, index: int, args) -> dict:
    label = instance_label(instance, index)
    print(f"\n--- {label} ---")
    print(f"nodes {instance['nodes']}, rounds {instance['rounds_declared']} "
          f"({instance['segments']} segment(s), "
          f"{rounds_per_segment(instance):g} rounds/rep), "
          f"bits {instance['total_bits']}")
    print_phase_table(instance)
    if instance["counters"]:
        print("  counters: " + " ".join(
            f"{k}={v}" for k, v in instance["counters"].items()))

    summary = {
        "label": label,
        "meta": instance["meta"],
        "nodes": instance["nodes"],
        "rounds": instance["rounds_declared"],
        "segments": instance["segments"],
        "rounds_per_segment": rounds_per_segment(instance),
        "total_messages": instance["total_messages"],
        "total_bits": instance["total_bits"],
        "phases": instance["phases"],
        "counters": instance["counters"],
    }
    if instance["per_edge"] and instance["edges"]:
        hot = sorted(instance["edges"],
                     key=lambda e: (-e["bits"], e["src"], e["dst"]))
        top = hot[:args.top]
        print("  hottest directed edges:")
        for edge in top:
            print(f"    {edge['src']} -> {edge['dst']}: {edge['bits']} bits "
                  f"in {edge['messages']} message(s)")
        summary["top_edges"] = top
        if args.cut is not None:
            crossing = sum(
                e["bits"] for e in instance["edges"]
                if (e["src"] < args.cut) != (e["dst"] < args.cut))
            print(f"  cut {{v < {args.cut}}}: {crossing} bits cross")
            summary["cut_boundary"] = args.cut
            summary["cut_bits"] = crossing
    return summary


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Report on csd-trace JSONL files; optionally gate the "
                    "fitted rounds-vs-n exponent against a bound.")
    parser.add_argument("traces", nargs="+", type=Path,
                        help="csd-trace JSONL file(s)")
    parser.add_argument("--top", type=int, default=5,
                        help="hottest edges to list per instance (default 5)")
    parser.add_argument("--cut", type=int, default=None,
                        help="report bits crossing the cut {v < CUT}")
    parser.add_argument("--expect-exponent", type=float, default=None,
                        help="fail (exit 1) if a fitted exponent exceeds "
                             "this bound plus --tol")
    parser.add_argument("--tol", type=float, default=0.15,
                        help="tolerance added to --expect-exponent "
                             "(default 0.15)")
    parser.add_argument("--group", default=None,
                        help="restrict the exponent check to this fit group")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON to this file")
    args = parser.parse_args()

    instances: list[dict] = []
    for path in args.traces:
        instances.extend(parse_traces(path))
    if not instances:
        fail("no trace instances found")
    print(f"{len(instances)} instance(s) from {len(args.traces)} file(s)")

    summaries = [report_instance(instance, i, args)
                 for i, instance in enumerate(instances)]

    # Group the (n, rounds/rep) points and fit each group.
    groups: dict[str, list[tuple[float, float]]] = {}
    for instance in instances:
        n = instance["meta"].get("n")
        try:
            n_value = float(n)
        except (TypeError, ValueError):
            continue
        rounds = rounds_per_segment(instance)
        if rounds > 0:
            groups.setdefault(fit_group(instance), []).append(
                (n_value, rounds))

    failed = False
    checked = False
    fits = {}
    for group, points in groups.items():
        fit = fit_power_law(points)
        fits[group] = fit
        if fit is None:
            print(f"\nfit [{group}]: {len(points)} point(s), need two "
                  f"distinct n to fit")
            continue
        print(f"\nfit [{group}]: rounds/rep ~ {fit['coeff']:.4g} * "
              f"n^{fit['exponent']:.4f} over {fit['points']} point(s)")
        if args.expect_exponent is None:
            continue
        if args.group is not None and group != args.group:
            continue
        checked = True
        bound = args.expect_exponent + args.tol
        if fit["exponent"] > bound:
            print(f"FAIL [{group}]: fitted exponent {fit['exponent']:.4f} "
                  f"exceeds {args.expect_exponent} + {args.tol}")
            failed = True
        else:
            print(f"OK [{group}]: fitted exponent {fit['exponent']:.4f} <= "
                  f"{args.expect_exponent} + {args.tol}")
    if args.expect_exponent is not None and not checked:
        print("FAIL: --expect-exponent given but no fittable group matched")
        failed = True

    if args.json is not None:
        report = {
            "schema": "csd-trace-report-v1",
            "ok": not failed,
            "instances": summaries,
            "fits": fits,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\njson report: {args.json}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
