#include "tools/cli.hpp"

#include <charconv>
#include <cmath>
#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "congest/async.hpp"
#include "congest/run_batch.hpp"
#include "congest/snapshot.hpp"
#include "congest/supervisor.hpp"
#include "detect/clique_detect.hpp"
#include "detect/clique_listing.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/tree_detect.hpp"
#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "graph/io.hpp"
#include "graph/oracle.hpp"
#include "lowerbound/fooling.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/hk.hpp"
#include "obs/bench_report.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/lb_fit.hpp"
#include "obs/metrics_series.hpp"
#include "obs/metrics_v2.hpp"
#include "obs/round_trace.hpp"
#include "obs/trace_analysis.hpp"
#include "detect/triangle.hpp"
#include "fuzz/fuzzer.hpp"
#include "support/check.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace csd::cli {

namespace {

constexpr const char* kUsage = R"(usage: csd <command> [...]

commands:
  generate <family> [params...] [--out FILE] [--dimacs]
      path N | cycle N | complete N | bipartite A B | grid R C | petersen |
      gnp N P100 SEED | gnm N M SEED | tree N SEED | polarity Q |
      hk K | gkn K N
      (P100 = edge probability in percent; graphs print to stdout unless
       --out is given; --dimacs selects DIMACS output)
  stats <file>
      n, m, max degree, diameter, girth, degeneracy, bipartiteness
  detect <pattern> <file> [--bandwidth B] [--seed S] [--reps R] [--jobs N]
         [--json FILE] [--trace FILE] [--per-edge] [--timers]
         [--drop P] [--corrupt P] [--crash NODE:ROUND] [--transport T]
         [--recover] [--rejoin-delay T] [--max-recoveries K]
         [--stall-window W] [--checkpoint FILE] [--checkpoint-at P]
         [--resume FILE] [--supervised] [--deadline MS] [--round-budget R]
         [--retries K] [--max-reps-per-call M]
         [--workers W] [--shard-policy range|hash] [--shard-counters]
         [--metrics-out FILE] [--metrics-period MS] [--blackbox FILE]
      pattern: cycle L | triangle | clique S | star D
      runs the matching CONGEST algorithm and the exhaustive oracle.
      --jobs N fans amplification repetitions over N worker threads
      (0 = all hardware threads); verdicts and metrics are bit-identical
      for every N. --json writes a csd-bench-v1 report; --trace writes the
      per-round JSONL trace (both bit-identical for every --jobs count),
      stamped with the instance parameters for `csd analyze`. --per-edge
      adds per-edge congestion records to the trace; --timers reports
      engine-internal wall-clock time (compute vs delivery vs transport).
      fault flags (drop/corrupt probabilities in [0,1], --crash repeatable,
      --transport raw|reliable) run the async engine under the given
      FaultPlan and print a structured fault report. --recover lets
      scheduled-crash nodes rejoin after --rejoin-delay virtual-time ticks
      (inbox-log replay; --max-recoveries per node); --stall-window arms
      the stall watchdog. --checkpoint FILE with --checkpoint-at P saves a
      csd-ckpt-v1 snapshot at pulse P and --resume FILE continues a
      snapshotted run bit-identically (single engine run: pass --reps 1
      for amplified patterns). supervisor flags (--supervised, --deadline,
      --round-budget, --retries, --max-reps-per-call) drive the amplified
      batch through the run supervisor on the synchronous engine instead:
      wall-clock and per-repetition round deadlines, structured stall
      reports, retry-with-reseed for fault-killed repetitions, and
      repetition-granular checkpoint/resume via --checkpoint/--resume.
      --workers W shards each synchronous run across W superstep worker
      threads (Pregel-style; --shard-policy picks the partitioner, default
      range); verdicts, metrics, traces and snapshots are bit-identical
      for every W and compose with --jobs and --supervised.
      --shard-counters surfaces per-worker channel frame/byte counters in
      the metrics and the trace summary (off by default: the counters are
      worker-count-dependent by nature).
      telemetry flags (csd-metrics-v2): --metrics-out FILE samples every
      live counter/gauge/histogram into append-only JSONL every
      --metrics-period ms (default 250); --blackbox FILE arms the flight
      recorder — the recent engine-event ring is dumped as csd-blackbox-v1
      JSON on any violation, watchdog stall, incomplete run, failed
      resume, stall report, or fatal signal (and with reason clean-exit
      otherwise). Always-on and write-only: verdicts, traces and
      snapshots are bit-identical with or without the flags.
  sweep cycle <L> [--sizes N1,N2,...] [--reps R] [--jobs N] [--seed S]
        [--bandwidth B] [--json FILE] [--trace FILE] [--per-edge]
        [--workers W] [--shard-policy range|hash] [--shard-counters]
        [--metrics-out FILE] [--metrics-period MS] [--blackbox FILE]
      planted-vs-control detection sweep over host sizes (random forest
      hosts, planted C_L vs cycle-free control), repetitions fanned over
      the parallel run driver; reports executed/skipped repetitions.
      --json writes one csd-bench-v1 report with a measurement per row;
      --trace concatenates every instance's JSONL trace into FILE, each
      header stamped with (program, n, len, instance, seed) for demuxing
  analyze <trace.jsonl> [--top K] [--cut BOUNDARY] [--chrome FILE]
          [--expect-exponent E] [--tol T] [--group G]
          [--bootstrap R] [--seed S]
      trace-analysis toolchain over a (possibly multi-instance) JSONL
      trace: per-instance phase tables with bit shares, transport counters,
      top-K hottest directed edges (--top, per-edge traces), bits crossing
      the cut {v < BOUNDARY} (--cut), and a log-log least-squares fit of
      per-repetition rounds against meta n for every fit group. --chrome
      exports a Chrome trace-event file (chrome://tracing, Perfetto).
      --expect-exponent fails (exit 1) when a fitted exponent exceeds
      E + T (default tolerance 0.15; --group restricts the check).
      --bootstrap resamples each size's points R times (block bootstrap,
      deterministic in --seed) and prints a 95% CI for every fitted
      exponent; with --expect-exponent the CI's lower edge must also not
      exceed the bound
  postmortem <blackbox.json> [--series FILE] [--last SEC] [--json FILE]
      render a csd-blackbox-v1 flight-recorder dump (and optionally the
      csd-metrics-v2 series that ran alongside it) as a human-readable
      last-N-seconds timeline (--last, default 30) with per-kind event
      counts and final counter values. --json FILE writes the same summary
      as a csd-postmortem-v1 document that agrees field-for-field with
      tools/postmortem_report.py --json-out (CI asserts the agreement)
  list-cliques <s> <file>
      congested-clique K_s listing; prints count and round cost
  fool <namespace-N> <budget-c>
      runs the Theorem 4.1 adversary against c-bit ID exchange
  fuzz [--seconds N] [--seed S] [--cases N] [--corpus DIR]
      differential fuzzing: random (graph, program, fault plan, schedule)
      cases run through the sync, async-raw, async-reliable and parallel
      (run_amplified) engines and every cross-engine invariant is checked
      against the VF2 ground truth. Failing cases are delta-debugged to a
      minimal reproducer and written to DIR as replayable JSON. Exit 1 iff
      any divergence was found.
  help
)";

/// Parsed positional arguments + --flag values.
struct Invocation {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  bool has_flag(const std::string& name) const {
    for (const auto& [k, v] : flags)
      if (k == name) return true;
    return false;
  }
  std::optional<std::string> flag(const std::string& name) const {
    for (const auto& [k, v] : flags)
      if (k == name) return v;
    return std::nullopt;
  }
};

Invocation parse(const std::vector<std::string>& args) {
  Invocation inv;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      const std::string name = args[i].substr(2);
      // Boolean flags take no value; value flags consume the next token.
      if (name == "dimacs" || name == "per-edge" || name == "timers" ||
          name == "recover" || name == "supervised" ||
          name == "shard-counters") {
        inv.flags.emplace_back(name, "1");
      } else {
        CSD_CHECK_MSG(i + 1 < args.size(), "flag --" << name
                                                     << " needs a value");
        inv.flags.emplace_back(name, args[++i]);
      }
    } else {
      inv.positional.push_back(args[i]);
    }
  }
  return inv;
}

std::uint64_t to_u64(const std::string& s, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  CSD_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
                "bad " << what << ": '" << s << "'");
  return value;
}

/// --workers / --shard-policy / --shard-counters -> ShardSpec for the
/// synchronous engine (workers == 0 keeps the classic single loop).
congest::ShardSpec parse_shard(const Invocation& inv) {
  congest::ShardSpec shard;
  shard.workers = static_cast<std::uint32_t>(
      to_u64(inv.flag("workers").value_or("0"), "workers"));
  if (const auto policy = inv.flag("shard-policy")) {
    CSD_CHECK_MSG(congest::parse_partition_policy(*policy, shard.policy),
                  "bad --shard-policy '" << *policy << "' (range|hash)");
    CSD_CHECK_MSG(shard.workers != 0, "--shard-policy needs --workers W");
  }
  shard.channel_counters = inv.has_flag("shard-counters");
  CSD_CHECK_MSG(!shard.channel_counters || shard.workers != 0,
                "--shard-counters needs --workers W");
  return shard;
}

/// Owns the optional csd-metrics-v2 telemetry plane for one CLI command.
/// make_telemetry() returns nullptr when neither --metrics-out nor
/// --blackbox was passed, so the default path keeps the engines'
/// zero-cost contract (every config telemetry pointer stays nullptr and
/// no sampler thread or ring exists).
struct TelemetrySession {
  std::unique_ptr<obs::Telemetry> telemetry;
  std::string metrics_path;
  std::string blackbox_path;
  bool dumped = false;

  ~TelemetrySession();

  obs::Telemetry* get() const { return telemetry.get(); }

  /// Write the flight-recorder dump (csd-blackbox-v1). First trigger wins:
  /// later, lower-priority reasons do not overwrite an earlier dump.
  void dump(const std::string& reason, std::ostream& out) {
    if (blackbox_path.empty() || dumped) return;
    dumped = true;
    if (telemetry->dump_blackbox(blackbox_path, reason))
      out << "blackbox:   " << blackbox_path << " (reason: " << reason
          << ")\n";
    else
      out << "blackbox:   FAILED to write '" << blackbox_path << "'\n";
  }

  /// End-of-command hook: stop the sampler (flushes one final sample) and,
  /// if --blackbox was requested but nothing triggered, write a clean-exit
  /// dump so downstream tooling always finds a file.
  void finish(std::ostream& out) {
    telemetry->stop_sampler();
    if (!metrics_path.empty()) out << "metrics:    " << metrics_path << '\n';
    dump("clean-exit", out);
  }
};

/// The session visible to the fatal-signal handler (at most one CLI
/// command runs at a time; tests drive run() sequentially).
TelemetrySession* g_signal_session = nullptr;

extern "C" void telemetry_signal_handler(int sig) {
  // Best-effort: dumping allocates and is not async-signal-safe, but on a
  // crash path a second fault just loses the dump we were losing anyway.
  TelemetrySession* const session = g_signal_session;
  if (session != nullptr && !session->blackbox_path.empty() &&
      !session->dumped) {
    session->dumped = true;
    session->telemetry->record(obs::EventKind::FatalSignal, 0, 0,
                               static_cast<std::uint64_t>(sig));
    session->telemetry->dump_blackbox(session->blackbox_path,
                                      "fatal-signal");
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

TelemetrySession::~TelemetrySession() {
  if (g_signal_session == this) g_signal_session = nullptr;
}

std::unique_ptr<TelemetrySession> make_telemetry(const Invocation& inv) {
  const auto metrics_path = inv.flag("metrics-out");
  const auto blackbox_path = inv.flag("blackbox");
  if (!metrics_path && !blackbox_path) return nullptr;
  auto session = std::make_unique<TelemetrySession>();
  session->telemetry = std::make_unique<obs::Telemetry>();
  if (metrics_path) {
    session->metrics_path = *metrics_path;
    const std::uint64_t period =
        to_u64(inv.flag("metrics-period").value_or("250"), "metrics-period");
    CSD_CHECK_MSG(period >= 1, "--metrics-period wants milliseconds >= 1");
    session->telemetry->start_sampler(*metrics_path, period);
  }
  if (blackbox_path) {
    session->blackbox_path = *blackbox_path;
    g_signal_session = session.get();
    for (const int sig : {SIGSEGV, SIGABRT, SIGTERM, SIGINT})
      std::signal(sig, telemetry_signal_handler);
  }
  return session;
}

Graph generate(const Invocation& inv) {
  CSD_CHECK_MSG(inv.positional.size() >= 2, "generate needs a family");
  const std::string& family = inv.positional[1];
  const auto arg = [&](std::size_t i, const char* what) {
    CSD_CHECK_MSG(inv.positional.size() > i + 1,
                  "family " << family << " needs " << what);
    return to_u64(inv.positional[i + 1], what);
  };
  if (family == "path") return build::path(static_cast<Vertex>(arg(1, "N")));
  if (family == "cycle") return build::cycle(static_cast<Vertex>(arg(1, "N")));
  if (family == "complete")
    return build::complete(static_cast<Vertex>(arg(1, "N")));
  if (family == "bipartite")
    return build::complete_bipartite(static_cast<Vertex>(arg(1, "A")),
                                     static_cast<Vertex>(arg(2, "B")));
  if (family == "grid")
    return build::grid(static_cast<Vertex>(arg(1, "R")),
                       static_cast<Vertex>(arg(2, "C")));
  if (family == "petersen") return build::petersen();
  if (family == "gnp") {
    Rng rng(arg(3, "SEED"));
    return build::gnp(static_cast<Vertex>(arg(1, "N")),
                      static_cast<double>(arg(2, "P100")) / 100.0, rng);
  }
  if (family == "gnm") {
    Rng rng(arg(3, "SEED"));
    return build::gnm(static_cast<Vertex>(arg(1, "N")), arg(2, "M"), rng);
  }
  if (family == "tree") {
    Rng rng(arg(2, "SEED"));
    return build::random_tree(static_cast<Vertex>(arg(1, "N")), rng);
  }
  if (family == "polarity")
    return build::polarity_graph(static_cast<std::uint32_t>(arg(1, "Q")));
  if (family == "hk")
    return lb::build_hk(static_cast<std::uint32_t>(arg(1, "K"))).graph;
  if (family == "gkn")
    return lb::build_gkn_frame(static_cast<std::uint32_t>(arg(1, "K")),
                               static_cast<std::uint32_t>(arg(2, "N")))
        .graph;
  CSD_CHECK_MSG(false, "unknown family '" << family << "'");
  return Graph{};
}

int cmd_generate(const Invocation& inv, std::ostream& out) {
  const Graph g = generate(inv);
  const bool dimacs = inv.has_flag("dimacs");
  if (const auto path = inv.flag("out")) {
    io::save(*path, g, dimacs);
    out << "wrote " << g.num_vertices() << " vertices, " << g.num_edges()
        << " edges to " << *path << '\n';
  } else if (dimacs) {
    io::write_dimacs(out, g);
  } else {
    io::write_edge_list(out, g);
  }
  return 0;
}

int cmd_stats(const Invocation& inv, std::ostream& out) {
  CSD_CHECK_MSG(inv.positional.size() == 2, "stats needs a file");
  const Graph g = io::load(inv.positional[1]);
  out << "vertices:    " << g.num_vertices() << '\n'
      << "edges:       " << g.num_edges() << '\n'
      << "max degree:  " << g.max_degree() << '\n';
  const auto diam = diameter(g);
  out << "diameter:    "
      << (diam == kUnreachable ? std::string("inf (disconnected)")
                               : std::to_string(diam))
      << '\n';
  const auto girth = oracle::girth(g);
  out << "girth:       "
      << (girth == 0 ? std::string("inf (forest)") : std::to_string(girth))
      << '\n'
      << "degeneracy:  " << degeneracy(g) << '\n'
      << "bipartite:   " << (is_bipartite(g) ? "yes" : "no") << '\n';
  return 0;
}

double to_prob(const std::string& s, const char* what) {
  double value = 0.0;
  std::size_t pos = 0;
  try {
    value = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  CSD_CHECK_MSG(pos == s.size() && value >= 0.0 && value <= 1.0,
                "bad " << what << ": '" << s << "' (want a number in [0,1])");
  return value;
}

congest::CrashEvent to_crash(const std::string& s) {
  const auto colon = s.find(':');
  CSD_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                    colon + 1 < s.size(),
                "--crash wants NODE:ROUND, got '" << s << "'");
  return {static_cast<std::uint32_t>(to_u64(s.substr(0, colon), "crash node")),
          to_u64(s.substr(colon + 1), "crash round")};
}

/// Per-pattern plumbing shared by the faulty (async) and supervised (sync)
/// detect paths: the program factory, the round/pulse budget, how many
/// amplification repetitions the pattern wants, the exhaustive-oracle
/// ground truth, and the human-readable algorithm label.
struct PatternProgram {
  congest::ProgramFactory factory;
  std::uint64_t budget = 0;
  std::uint32_t runs = 1;  // deterministic detectors run once
  bool truth = false;
  std::string algorithm;
};

PatternProgram select_program(const Invocation& inv, const Graph& g,
                              const std::string& pattern,
                              std::uint64_t bandwidth, std::uint32_t reps) {
  PatternProgram p;
  const std::uint64_t n = g.num_vertices();
  if (pattern == "triangle" || pattern == "clique") {
    std::uint32_t s = 3;
    if (pattern == "clique") {
      CSD_CHECK_MSG(inv.positional.size() == 4, "detect clique S FILE");
      s = static_cast<std::uint32_t>(to_u64(inv.positional[2], "S"));
    }
    p.factory = detect::clique_detect_program(s);
    p.budget =
        detect::clique_detect_round_budget(n, g.max_degree(), bandwidth) + 2;
    p.truth = oracle::has_clique(g, s);
    p.algorithm = "deterministic K_" + std::to_string(s) + " detector";
  } else if (pattern == "cycle") {
    CSD_CHECK_MSG(inv.positional.size() == 4, "detect cycle L FILE");
    const auto len = static_cast<std::uint32_t>(to_u64(inv.positional[2], "L"));
    if (len >= 4 && len % 2 == 0) {
      // even_cycle_program is one repetition; amplification is external
      // (run_amplified on the sync path), so mirror it with `runs`.
      detect::EvenCycleConfig ec;
      ec.k = len / 2;
      p.factory = detect::even_cycle_program(ec);
      p.budget = detect::make_even_cycle_schedule(n, ec).total_rounds() + 1;
      p.algorithm =
          "Theorem 1.1 sublinear C_" + std::to_string(len) + " detector";
    } else {
      p.factory = detect::pipelined_cycle_program(len);
      p.budget = detect::pipelined_cycle_round_budget(n, len) + 1;
      p.algorithm =
          "pipelined color-coded C_" + std::to_string(len) + " detector";
    }
    p.runs = reps;
    p.truth = oracle::has_cycle_of_length(g, len);
  } else if (pattern == "star") {
    CSD_CHECK_MSG(inv.positional.size() == 4, "detect star D FILE");
    const auto d = static_cast<Vertex>(to_u64(inv.positional[2], "D"));
    const Graph tree = build::star(d);
    p.factory = detect::tree_detect_program(tree);
    p.budget = detect::tree_detect_round_budget(tree) + 1;
    p.runs = reps;
    p.truth = oracle::has_tree(g, tree);
    p.algorithm = "color-coded star-" + std::to_string(d) + " detector";
  } else {
    CSD_CHECK_MSG(false, "unknown pattern '" << pattern << "'");
  }
  return p;
}

/// FaultPlan construction + validation shared by the detect paths. `budget`
/// is the round/pulse cap: a crash scheduled at or past it would never
/// fire, which is almost certainly a typo — reject it loudly instead of
/// silently running fault-free.
congest::FaultPlan parse_fault_plan(const Invocation& inv, const Graph& g,
                                    std::uint64_t budget) {
  congest::FaultPlan plan;
  if (const auto p = inv.flag("drop")) plan.drop = to_prob(*p, "drop");
  if (const auto p = inv.flag("corrupt")) plan.corrupt = to_prob(*p, "corrupt");
  for (const auto& [key, value] : inv.flags)
    if (key == "crash") plan.crashes.push_back(to_crash(value));
  for (const auto& ev : plan.crashes) {
    CSD_CHECK_MSG(ev.node < g.num_vertices(),
                  "--crash " << ev.node << ":" << ev.round << " names node "
                             << ev.node << " but the graph has "
                             << g.num_vertices() << " nodes");
    CSD_CHECK_MSG(ev.round < budget,
                  "--crash " << ev.node << ":" << ev.round
                             << " schedules the crash at round " << ev.round
                             << " but the run is capped at " << budget
                             << " rounds — it would never fire");
  }
  return plan;
}

/// Fault flags route `detect` through the asynchronous engine under the
/// requested FaultPlan and wire discipline; the per-pattern detector and
/// round budget stay the same as the fault-free path.
int cmd_detect_faulty(const Invocation& inv, std::ostream& out, const Graph& g,
                      const std::string& pattern, std::uint64_t bandwidth,
                      std::uint64_t seed, std::uint32_t reps) {
  const obs::WallTimer timer;
  const auto json_path = inv.flag("json");
  const auto trace_path = inv.flag("trace");
  congest::AsyncConfig cfg;
  cfg.bandwidth = bandwidth;
  cfg.trace.enabled = trace_path.has_value();
  cfg.trace.per_edge = inv.has_flag("per-edge");
  cfg.trace.timers = inv.has_flag("timers");
  const std::string transport = inv.flag("transport").value_or("raw");
  CSD_CHECK_MSG(transport == "raw" || transport == "reliable",
                "--transport wants raw|reliable, got '" << transport << "'");
  cfg.transport = transport == "reliable" ? congest::TransportMode::Reliable
                                          : congest::TransportMode::Raw;
  if (const auto w = inv.flag("stall-window"))
    cfg.stall_window = to_u64(*w, "stall-window");
  cfg.recovery.enabled = inv.has_flag("recover");
  if (const auto d = inv.flag("rejoin-delay"))
    cfg.recovery.rejoin_delay = to_u64(*d, "rejoin-delay");
  if (const auto k = inv.flag("max-recoveries"))
    cfg.recovery.max_recoveries =
        static_cast<std::uint32_t>(to_u64(*k, "max-recoveries"));

  PatternProgram p = select_program(inv, g, pattern, bandwidth, reps);
  out << "algorithm:  " << p.algorithm << '\n';
  cfg.max_pulses = p.budget;
  cfg.faults = parse_fault_plan(inv, g, p.budget);
  const auto session = make_telemetry(inv);
  cfg.telemetry = session ? session->get() : nullptr;
  const congest::ProgramFactory& factory = p.factory;
  const std::uint32_t runs = p.runs;
  const bool truth = p.truth;

  // Checkpoint/resume freeze or continue ONE engine run; amplified
  // patterns must pin the repetition with --reps 1.
  const auto ckpt_path = inv.flag("checkpoint");
  const auto resume_path = inv.flag("resume");
  if (const auto at = inv.flag("checkpoint-at")) {
    cfg.checkpoint_at_pulse = to_u64(*at, "checkpoint-at");
    CSD_CHECK_MSG(cfg.checkpoint_at_pulse >= 1,
                  "--checkpoint-at wants a pulse >= 1");
  }
  CSD_CHECK_MSG(!ckpt_path.has_value() || cfg.checkpoint_at_pulse != 0,
                "--checkpoint needs --checkpoint-at PULSE");
  CSD_CHECK_MSG(cfg.checkpoint_at_pulse == 0 || ckpt_path.has_value(),
                "--checkpoint-at needs --checkpoint FILE");
  CSD_CHECK_MSG((!ckpt_path && !resume_path) || runs == 1,
                "checkpoint/resume work on a single engine run; pass --reps 1"
                " (or use --supervised for repetition-granular checkpoints)");

  bool detected = false, survivors = false, all_completed = true;
  std::uint64_t pulses = 0, payload = 0, transport_bits = 0;
  congest::FaultReport total;
  obs::RunTrace merged_trace;
  obs::EngineTimers total_timers;
  for (std::uint32_t r = 0; r < runs; ++r) {
    // Same per-repetition seed schedule as run_amplified, so a clean async
    // run reproduces the sync CLI verdict bit-for-bit.
    cfg.seed = runs == 1 ? seed : derive_seed(seed, 0x5eedULL + r);
    const auto outcome = [&] {
      try {
        return resume_path
                   ? congest::resume_async(
                         g, cfg, factory,
                         congest::load_snapshot(*resume_path))
                   : congest::run_async(g, cfg, factory);
      } catch (const CheckFailure&) {
        // A failed resume (digest mismatch, truncated snapshot) is a prime
        // post-mortem moment: record it and dump before propagating.
        if (session && resume_path) {
          session->get()->record(obs::EventKind::ResumeReject, 0, 0, 0);
          session->dump("resume-reject", out);
          session->finish(out);
        }
        throw;
      }
    }();
    if (ckpt_path) {
      if (outcome.checkpoint != nullptr) {
        congest::save_snapshot(*ckpt_path, *outcome.checkpoint);
        out << "checkpoint: " << *ckpt_path << " (pulse "
            << cfg.checkpoint_at_pulse << ")\n";
      } else {
        out << "checkpoint: not captured (run ended before pulse "
            << cfg.checkpoint_at_pulse << ")\n";
      }
    }
    merged_trace.append(outcome.trace);
    detected |= outcome.detected;
    survivors |= outcome.faults.detected_by_survivors;
    all_completed &= outcome.completed;
    pulses = std::max(pulses, outcome.pulses);
    payload += outcome.payload_bits;
    transport_bits += outcome.transport_bits;
    total_timers.merge(outcome.timers);
    const auto& f = outcome.faults;
    total.frames_dropped += f.frames_dropped;
    total.frames_corrupted += f.frames_corrupted;
    total.retransmissions += f.retransmissions;
    total.checksum_rejects += f.checksum_rejects;
    total.duplicate_packets += f.duplicate_packets;
    total.duplicate_acks += f.duplicate_acks;
    total.transport_failures += f.transport_failures;
    total.replayed_pulses += f.replayed_pulses;
    total.watchdog_stalls += f.watchdog_stalls;
    total.crashed_nodes.insert(total.crashed_nodes.end(),
                               f.crashed_nodes.begin(), f.crashed_nodes.end());
    total.recovered_nodes.insert(total.recovered_nodes.end(),
                                 f.recovered_nodes.begin(),
                                 f.recovered_nodes.end());
    total.stalled_nodes.insert(total.stalled_nodes.end(),
                               f.stalled_nodes.begin(), f.stalled_nodes.end());
    total.violations.insert(total.violations.end(), f.violations.begin(),
                            f.violations.end());
  }
  total.detected_by_survivors = survivors;

  out << "engine:     async, " << transport << " transport, " << runs
      << (runs == 1 ? " run" : " runs")
      << (cfg.recovery.enabled ? ", crash recovery on" : "") << '\n';
  if (resume_path) out << "resumed:    " << *resume_path << '\n';
  out << "verdict:    " << (detected ? "REJECT (pattern found)" : "accept")
      << '\n'
      << "oracle:     " << (truth ? "pattern present" : "pattern absent")
      << '\n'
      << "completed:  " << (all_completed ? "yes" : "no (stalls or crashes)")
      << '\n'
      << "pulses:     " << pulses << '\n'
      << "payload bits:   " << payload << '\n'
      << "transport bits: " << transport_bits << '\n'
      << "--- fault report (all runs) ---\n"
      << congest::summarize(total);
  if (detected && !truth) out << "WARNING: false positive (model bug?)\n";
  if (!detected && truth)
    out << "note: faults can mask the pattern; try --transport reliable\n";
  if (total_timers.enabled)
    out << "timers:     compute " << total_timers.compute_ns / 1000000.0
        << " ms, delivery " << total_timers.delivery_ns / 1000000.0
        << " ms, transport " << total_timers.transport_ns / 1000000.0
        << " ms\n";

  if (trace_path) {
    merged_trace.set_meta("program", pattern);
    merged_trace.set_meta("n", std::to_string(g.num_vertices()));
    merged_trace.set_meta("engine", "async");
    merged_trace.set_meta("transport", transport);
    merged_trace.set_meta("seed", std::to_string(seed));
    std::ofstream os(*trace_path);
    CSD_CHECK_MSG(os.good(), "cannot write trace file '" << *trace_path
                                                         << "'");
    merged_trace.write_jsonl(os);
    out << "trace:      " << *trace_path << '\n';
  }
  if (session) {
    if (!total.violations.empty())
      session->dump("fault-violation", out);
    else if (total.watchdog_stalls != 0)
      session->dump("watchdog-stall", out);
    else if (!all_completed)
      session->dump("incomplete-run", out);
    session->finish(out);
  }
  if (json_path) {
    obs::BenchReport report("csd_detect");
    report.param("pattern", pattern)
        .param("bandwidth", bandwidth)
        .param("reps", runs)
        .param("n", g.num_vertices())
        .param("m", g.num_edges())
        .param("transport", transport)
        .param("engine", "async");
    report.seed(seed);
    report.measurement("detect")
        .value("verdict", detected ? "reject" : "accept")
        .value("oracle", truth)
        .value("completed", all_completed)
        .value("pulses", pulses)
        .value("payload_bits", payload)
        .value("transport_bits", transport_bits)
        .value("frames_dropped", total.frames_dropped)
        .value("frames_corrupted", total.frames_corrupted)
        .value("retransmissions", total.retransmissions);
    report.set_wall_clock_ms(timer.elapsed_ms());
    report.write(*json_path);
    out << "json:       " << *json_path << '\n';
  }
  return 0;
}

/// Supervisor flags route `detect` through congest::Supervisor on the
/// synchronous engine: the amplified batch gains wall-clock and per-
/// repetition round deadlines, structured stall reports, retry-with-reseed
/// for fault-killed repetitions, and repetition-granular checkpoint/resume.
/// Aggregation follows run_amplified's exact rules, so a healthy supervised
/// run answers bit-identically to the plain amplified path.
int cmd_detect_supervised(const Invocation& inv, std::ostream& out,
                          const Graph& g, const std::string& pattern,
                          std::uint64_t bandwidth, std::uint64_t seed,
                          std::uint32_t reps, unsigned jobs) {
  const obs::WallTimer timer;
  const PatternProgram p = select_program(inv, g, pattern, bandwidth, reps);
  const std::uint32_t repetitions = p.runs == 1 ? 1 : reps;

  congest::NetworkConfig cfg;
  cfg.bandwidth = bandwidth;
  cfg.max_rounds = p.budget;
  cfg.seed = seed;
  cfg.faults = parse_fault_plan(inv, g, p.budget);
  const auto trace_path = inv.flag("trace");
  cfg.trace.enabled = trace_path.has_value();
  cfg.trace.per_edge = inv.has_flag("per-edge");
  cfg.trace.timers = inv.has_flag("timers");

  cfg.shard = parse_shard(inv);
  const auto session = make_telemetry(inv);
  cfg.telemetry = session ? session->get() : nullptr;

  congest::SupervisorConfig sup;
  sup.jobs = jobs;
  sup.deadline_ms = to_u64(inv.flag("deadline").value_or("0"), "deadline");
  sup.round_budget =
      to_u64(inv.flag("round-budget").value_or("0"), "round-budget");
  sup.stall_window =
      to_u64(inv.flag("stall-window").value_or("0"), "stall-window");
  sup.max_retries = static_cast<std::uint32_t>(
      to_u64(inv.flag("retries").value_or("0"), "retries"));
  sup.max_reps_per_call = static_cast<std::uint32_t>(to_u64(
      inv.flag("max-reps-per-call").value_or("0"), "max-reps-per-call"));

  const congest::Supervisor supervisor(g, cfg, sup);
  const auto resume_path = inv.flag("resume");
  const congest::SupervisedResult result = [&] {
    try {
      return resume_path
                 ? supervisor.resume(p.factory, repetitions,
                                     congest::load_snapshot(*resume_path))
                 : supervisor.run(p.factory, repetitions);
    } catch (const CheckFailure&) {
      if (session && resume_path) {
        session->get()->record(obs::EventKind::ResumeReject, 0, 0, 0);
        session->dump("resume-reject", out);
        session->finish(out);
      }
      throw;
    }
  }();
  const congest::RunOutcome& outcome = result.outcome;

  out << "algorithm:  " << p.algorithm << '\n'
      << "engine:     sync, supervised (" << congest::resolve_jobs(jobs)
      << " worker thread(s))\n";
  if (resume_path) out << "resumed:    " << *resume_path << '\n';
  out << "verdict:    "
      << (outcome.detected ? "REJECT (pattern found)" : "accept") << '\n'
      << "oracle:     " << (p.truth ? "pattern present" : "pattern absent")
      << '\n'
      << "rounds:     " << outcome.metrics.rounds << '\n'
      << "reps:       " << outcome.metrics.repetitions_executed
      << " executed, " << outcome.metrics.repetitions_skipped
      << " skipped (of " << result.planned << " planned)\n"
      << "retries:    " << result.retries_used << '\n';
  if (result.deadline_hit) out << "deadline:   HIT (wall clock expired)\n";
  if (result.paused)
    out << "paused:     yes — max-reps-per-call cut scheduling; resume "
           "from the checkpoint\n";
  if (!result.stalls.empty()) {
    out << "stalls:     " << result.stalls.size() << '\n';
    for (const auto& s : result.stalls) {
      out << "  rep " << s.repetition << " (seed " << s.seed << "): rounds "
          << s.rounds << ", " << s.stalled_nodes << " stalled node(s)";
      if (s.watchdog) out << " [watchdog]";
      if (s.over_budget) out << " [over-budget]";
      if (s.incomplete) out << " [incomplete]";
      out << '\n';
      // The repetition's counter scope travels with the report; the
      // shard_last_progress_w<N> entries (present with --workers W
      // --shard-counters) point at the worker that stopped advancing.
      for (const auto& [name, value] : s.counters.entries())
        if (name == "watchdog_stalls" ||
            name.rfind("shard_last_progress", 0) == 0)
          out << "      " << name << " = " << value << '\n';
    }
  }
  if (!outcome.faults.clean())
    out << "--- fault report ---\n" << congest::summarize(outcome.faults);
  if (outcome.detected && !p.truth)
    out << "WARNING: false positive (model bug?)\n";

  if (const auto ckpt_path = inv.flag("checkpoint")) {
    if (result.checkpoint != nullptr) {
      congest::save_snapshot(*ckpt_path, *result.checkpoint);
      out << "checkpoint: " << *ckpt_path << " (after repetition "
          << result.checkpoint->amplified.next_repetition << " of "
          << result.planned << ")\n";
    } else {
      out << "checkpoint: not captured (no wave completed)\n";
    }
  }
  if (trace_path) {
    obs::RunTrace trace = outcome.trace;
    trace.set_meta("program", pattern);
    trace.set_meta("n", std::to_string(g.num_vertices()));
    trace.set_meta("engine", "sync-supervised");
    trace.set_meta("seed", std::to_string(seed));
    std::ofstream os(*trace_path);
    CSD_CHECK_MSG(os.good(),
                  "cannot write trace file '" << *trace_path << "'");
    trace.write_jsonl(os);
    out << "trace:      " << *trace_path << '\n';
  }
  if (session) {
    if (!outcome.faults.violations.empty())
      session->dump("fault-violation", out);
    else if (!result.stalls.empty())
      session->dump("stall-report", out);
    else if (outcome.faults.watchdog_stalls != 0)
      session->dump("watchdog-stall", out);
    session->finish(out);
  }
  if (const auto json_path = inv.flag("json")) {
    obs::BenchReport report("csd_detect");
    report.param("pattern", pattern)
        .param("bandwidth", bandwidth)
        .param("reps", repetitions)
        .param("n", g.num_vertices())
        .param("m", g.num_edges())
        .param("engine", "sync-supervised");
    report.seed(seed);
    report.measurement("detect")
        .value("verdict", outcome.detected ? "reject" : "accept")
        .value("oracle", p.truth)
        .value("rounds", outcome.metrics.rounds)
        .value("repetitions_executed", outcome.metrics.repetitions_executed)
        .value("repetitions_skipped", outcome.metrics.repetitions_skipped)
        .value("retries_used", result.retries_used)
        .value("stalled_repetitions",
               static_cast<std::uint64_t>(result.stalls.size()))
        .value("deadline_hit", result.deadline_hit)
        .value("paused", result.paused);
    report.env("jobs", congest::resolve_jobs(jobs));
    report.set_wall_clock_ms(timer.elapsed_ms());
    report.write(*json_path);
    out << "json:       " << *json_path << '\n';
  }
  return 0;
}

int cmd_detect(const Invocation& inv, std::ostream& out) {
  CSD_CHECK_MSG(inv.positional.size() >= 3,
                "detect needs a pattern and a file");
  const obs::WallTimer timer;
  const std::string& pattern = inv.positional[1];
  const std::uint64_t bandwidth =
      to_u64(inv.flag("bandwidth").value_or("64"), "bandwidth");
  const std::uint64_t seed = to_u64(inv.flag("seed").value_or("1"), "seed");
  const auto reps = static_cast<std::uint32_t>(
      to_u64(inv.flag("reps").value_or("400"), "reps"));
  const auto jobs = static_cast<unsigned>(
      to_u64(inv.flag("jobs").value_or("1"), "jobs"));
  const auto json_path = inv.flag("json");
  const auto trace_path = inv.flag("trace");
  obs::TraceOptions trace_opts;
  trace_opts.enabled = trace_path.has_value();
  trace_opts.per_edge = inv.has_flag("per-edge");
  trace_opts.timers = inv.has_flag("timers");

  // The file is the last positional; `cycle L` / `clique S` / `star D`
  // carry one parameter in between.
  const Graph g = io::load(inv.positional.back());
  CSD_CHECK_MSG(g.num_vertices() > 0,
                "graph '" << inv.positional.back()
                          << "' has no vertices — nothing to run on");
  CSD_CHECK_MSG(reps >= 1, "--reps must be at least 1");

  if (inv.has_flag("supervised") || inv.has_flag("deadline") ||
      inv.has_flag("round-budget") || inv.has_flag("retries") ||
      inv.has_flag("max-reps-per-call"))
    return cmd_detect_supervised(inv, out, g, pattern, bandwidth, seed, reps,
                                 jobs);
  if (inv.has_flag("drop") || inv.has_flag("corrupt") ||
      inv.has_flag("crash") || inv.has_flag("transport") ||
      inv.has_flag("recover") || inv.has_flag("stall-window") ||
      inv.has_flag("checkpoint") || inv.has_flag("checkpoint-at") ||
      inv.has_flag("resume")) {
    CSD_CHECK_MSG(!inv.has_flag("workers"),
                  "--workers drives the synchronous engine; the fault flags "
                  "select the async one (use --supervised to combine "
                  "sharding with faults)");
    return cmd_detect_faulty(inv, out, g, pattern, bandwidth, seed, reps);
  }
  const congest::ShardSpec shard = parse_shard(inv);
  const auto session = make_telemetry(inv);
  obs::Telemetry* const telemetry = session ? session->get() : nullptr;

  bool detected = false, truth = false;
  std::uint64_t rounds = 0;
  std::uint32_t executed = 1, skipped = 0;
  std::string program = pattern;
  congest::RunOutcome outcome;
  if (pattern == "triangle" || pattern == "clique") {
    std::uint32_t s = 3;
    if (pattern == "clique") {
      CSD_CHECK_MSG(inv.positional.size() == 4, "detect clique S FILE");
      s = static_cast<std::uint32_t>(to_u64(inv.positional[2], "S"));
    }
    program = "clique_detect";
    outcome = detect::detect_clique(g, s, bandwidth, seed, trace_opts, shard,
                                    telemetry);
    detected = outcome.detected;
    rounds = outcome.metrics.rounds;
    truth = oracle::has_clique(g, s);
  } else if (pattern == "cycle") {
    CSD_CHECK_MSG(inv.positional.size() == 4, "detect cycle L FILE");
    const auto len = static_cast<std::uint32_t>(to_u64(inv.positional[2], "L"));
    if (len >= 4 && len % 2 == 0) {
      detect::EvenCycleConfig cfg;
      cfg.k = len / 2;
      cfg.repetitions = reps;
      cfg.amplify.jobs = jobs;
      cfg.trace = trace_opts;
      cfg.shard = shard;
      cfg.telemetry = telemetry;
      program = "even_cycle";
      outcome = detect::detect_even_cycle(g, cfg, bandwidth, seed);
      out << "algorithm:  Theorem 1.1 sublinear C_" << len << " detector\n";
    } else {
      detect::PipelinedCycleConfig cfg;
      cfg.length = len;
      cfg.repetitions = reps;
      cfg.amplify.jobs = jobs;
      cfg.trace = trace_opts;
      cfg.shard = shard;
      cfg.telemetry = telemetry;
      program = "pipelined_cycle";
      outcome = detect::detect_cycle_pipelined(g, cfg, bandwidth, seed);
      out << "algorithm:  pipelined color-coded C_" << len << " detector\n";
    }
    detected = outcome.detected;
    rounds = outcome.metrics.rounds;
    executed = outcome.metrics.repetitions_executed;
    skipped = outcome.metrics.repetitions_skipped;
    truth = oracle::has_cycle_of_length(g, len);
  } else if (pattern == "star") {
    CSD_CHECK_MSG(inv.positional.size() == 4, "detect star D FILE");
    const auto d = static_cast<Vertex>(to_u64(inv.positional[2], "D"));
    detect::TreeDetectConfig cfg;
    cfg.tree = build::star(d);
    cfg.repetitions = reps;
    cfg.amplify.jobs = jobs;
    cfg.trace = trace_opts;
    cfg.shard = shard;
    cfg.telemetry = telemetry;
    program = "tree_detect";
    outcome = detect::detect_tree(g, cfg, bandwidth, seed);
    detected = outcome.detected;
    rounds = outcome.metrics.rounds;
    executed = outcome.metrics.repetitions_executed;
    skipped = outcome.metrics.repetitions_skipped;
    truth = oracle::has_tree(g, cfg.tree);
  } else {
    CSD_CHECK_MSG(false, "unknown pattern '" << pattern << "'");
  }

  if (shard.workers != 0)
    out << "engine:     sync, sharded (" << shard.workers << " worker(s), "
        << congest::to_string(shard.policy) << " partition)\n";
  out << "verdict:    " << (detected ? "REJECT (pattern found)" : "accept")
      << '\n'
      << "oracle:     " << (truth ? "pattern present" : "pattern absent")
      << '\n'
      << "rounds:     " << rounds << '\n';
  if (executed != 1 || skipped != 0)
    out << "reps:       " << executed << " executed, " << skipped
        << " skipped (early exit)\n";
  if (detected && !truth) out << "WARNING: false positive (model bug?)\n";
  if (!detected && truth)
    out << "note: randomized detectors are one-sided; raise --reps\n";
  if (outcome.metrics.timers.enabled) {
    const auto& timers = outcome.metrics.timers;
    out << "timers:     compute " << timers.compute_ns / 1000000.0
        << " ms, delivery " << timers.delivery_ns / 1000000.0
        << " ms, transport " << timers.transport_ns / 1000000.0 << " ms\n";
  }
  if (session) {
    if (!outcome.faults.violations.empty())
      session->dump("fault-violation", out);
    else if (outcome.faults.watchdog_stalls != 0)
      session->dump("watchdog-stall", out);
    session->finish(out);
  }

  if (trace_path) {
    // Stamp the instance parameters into the header so `csd analyze` and
    // tools/trace_report.py can demux and fit without a side channel.
    outcome.trace.set_meta("program", program);
    outcome.trace.set_meta("n", std::to_string(g.num_vertices()));
    outcome.trace.set_meta("m", std::to_string(g.num_edges()));
    outcome.trace.set_meta("bandwidth", std::to_string(bandwidth));
    outcome.trace.set_meta("seed", std::to_string(seed));
    outcome.trace.set_meta("reps", std::to_string(executed));
    std::ofstream os(*trace_path);
    CSD_CHECK_MSG(os.good(), "cannot write trace file '" << *trace_path
                                                         << "'");
    outcome.trace.write_jsonl(os);
    out << "trace:      " << *trace_path << " ("
        << outcome.trace.segments() << " segment(s))\n";
  }
  if (json_path) {
    obs::BenchReport report("csd_detect");
    report.param("pattern", pattern)
        .param("bandwidth", bandwidth)
        .param("reps", reps)
        .param("n", g.num_vertices())
        .param("m", g.num_edges())
        .param("engine", "sync");
    report.seed(seed);
    report.measurement("detect")
        .value("verdict", detected ? "reject" : "accept")
        .value("oracle", truth)
        .value("rounds", rounds)
        .value("messages", outcome.metrics.messages)
        .value("total_bits", outcome.metrics.total_bits)
        .value("max_message_bits", outcome.metrics.max_message_bits)
        .value("repetitions_executed", executed)
        .value("repetitions_skipped", skipped);
    report.env("jobs", congest::resolve_jobs(jobs));
    report.env("workers", shard.workers);
    report.set_wall_clock_ms(timer.elapsed_ms());
    report.write(*json_path);
    out << "json:       " << *json_path << '\n';
  }
  return 0;
}

std::vector<std::uint64_t> parse_sizes(const std::string& csv) {
  std::vector<std::uint64_t> sizes;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) sizes.push_back(to_u64(item, "sizes"));
  CSD_CHECK_MSG(!sizes.empty(), "--sizes wants N1,N2,...");
  return sizes;
}

congest::RunOutcome sweep_run_cycle(const Graph& g, std::uint32_t len,
                                    std::uint32_t reps, unsigned jobs,
                                    std::uint64_t bandwidth,
                                    std::uint64_t seed,
                                    const obs::TraceOptions& trace,
                                    const congest::ShardSpec& shard,
                                    obs::Telemetry* telemetry) {
  if (len >= 4 && len % 2 == 0) {
    detect::EvenCycleConfig cfg;
    cfg.k = len / 2;
    cfg.repetitions = reps;
    cfg.amplify.jobs = jobs;
    cfg.trace = trace;
    cfg.shard = shard;
    cfg.telemetry = telemetry;
    return detect::detect_even_cycle(g, cfg, bandwidth, seed);
  }
  detect::PipelinedCycleConfig cfg;
  cfg.length = len;
  cfg.repetitions = reps;
  cfg.amplify.jobs = jobs;
  cfg.trace = trace;
  cfg.shard = shard;
  cfg.telemetry = telemetry;
  return detect::detect_cycle_pipelined(g, cfg, bandwidth, seed);
}

/// Planted-vs-control C_L sweep over host sizes. For each n, a random
/// labelled tree is the cycle-free control instance and the same tree with a
/// planted C_L is the positive instance; both run through the amplified
/// detector with repetitions fanned across `--jobs` worker threads. The
/// executed/skipped columns make the one-sided early exit visible: positive
/// instances stop at the first rejecting repetition, controls run them all.
int cmd_sweep(const Invocation& inv, std::ostream& out) {
  CSD_CHECK_MSG(inv.positional.size() == 3 && inv.positional[1] == "cycle",
                "sweep cycle L [--sizes N1,N2,...]");
  const auto len = static_cast<std::uint32_t>(to_u64(inv.positional[2], "L"));
  CSD_CHECK_MSG(len >= 3, "cycle length must be >= 3");
  const auto sizes =
      parse_sizes(inv.flag("sizes").value_or("32,64,128"));
  const auto reps = static_cast<std::uint32_t>(
      to_u64(inv.flag("reps").value_or("64"), "reps"));
  CSD_CHECK_MSG(reps >= 1, "--reps must be at least 1");
  const auto jobs = static_cast<unsigned>(
      to_u64(inv.flag("jobs").value_or("1"), "jobs"));
  const std::uint64_t seed = to_u64(inv.flag("seed").value_or("1"), "seed");
  const std::uint64_t bandwidth =
      to_u64(inv.flag("bandwidth").value_or("64"), "bandwidth");
  const auto json_path = inv.flag("json");
  const auto trace_path = inv.flag("trace");
  const obs::WallTimer timer;
  obs::TraceOptions trace_opts;
  trace_opts.enabled = trace_path.has_value();
  trace_opts.per_edge = inv.has_flag("per-edge");
  std::ofstream trace_os;
  if (trace_path) {
    trace_os.open(*trace_path);
    CSD_CHECK_MSG(trace_os.good(), "cannot write trace file '" << *trace_path
                                                               << "'");
  }
  obs::BenchReport report("csd_sweep");
  report.param("len", len)
      .param("reps", reps)
      .param("bandwidth", bandwidth)
      .param("sizes", inv.flag("sizes").value_or("32,64,128"));
  const congest::ShardSpec shard = parse_shard(inv);
  const auto session = make_telemetry(inv);
  obs::Telemetry* const telemetry = session ? session->get() : nullptr;
  report.seed(seed);
  report.env("jobs", congest::resolve_jobs(jobs));
  report.env("workers", shard.workers);

  out << "C_" << len << " sweep: " << reps << " repetitions per instance, "
      << congest::resolve_jobs(jobs) << " worker thread(s)";
  if (shard.workers != 0)
    out << ", sharded engine (" << shard.workers << " worker(s), "
        << congest::to_string(shard.policy) << " partition)";
  out << '\n';
  Table table({"n", "instance", "verdict", "oracle", "executed", "skipped",
               "rounds", "max msg bits"});
  for (const std::uint64_t n : sizes) {
    CSD_CHECK_MSG(n >= len, "host size " << n << " smaller than cycle");
    Rng host_rng(derive_seed(seed, 0x403ULL + n));
    const Graph control = build::random_tree(static_cast<Vertex>(n), host_rng);
    Graph planted = control;
    build::plant_subgraph(planted, build::cycle(static_cast<Vertex>(len)),
                          host_rng);
    for (const bool positive : {true, false}) {
      const Graph& g = positive ? planted : control;
      auto outcome = sweep_run_cycle(g, len, reps, jobs, bandwidth, seed,
                                     trace_opts, shard, telemetry);
      table.row()
          .cell(n)
          .cell(positive ? "planted" : "control")
          .cell(outcome.detected ? "REJECT" : "accept")
          .cell(oracle::has_cycle_of_length(g, len))
          .cell(outcome.metrics.repetitions_executed)
          .cell(outcome.metrics.repetitions_skipped)
          .cell(outcome.metrics.rounds)
          .cell(outcome.metrics.max_message_bits);
      if (outcome.detected && !oracle::has_cycle_of_length(g, len))
        out << "WARNING: false positive at n=" << n << " (model bug?)\n";
      if (trace_path) {
        // One header per instance, stamped so downstream analysis can demux
        // the concatenated stream and fit rounds-vs-n per group.
        outcome.trace.set_meta(
            "program", len >= 4 && len % 2 == 0 ? "even_cycle"
                                                : "pipelined_cycle");
        outcome.trace.set_meta("len", std::to_string(len));
        outcome.trace.set_meta("n", std::to_string(n));
        outcome.trace.set_meta("instance", positive ? "planted" : "control");
        outcome.trace.set_meta("seed", std::to_string(seed));
        outcome.trace.write_jsonl(trace_os);
      }
      report
          .measurement("n" + std::to_string(n) + "/" +
                       (positive ? "planted" : "control"))
          .value("verdict", outcome.detected ? "reject" : "accept")
          .value("oracle", oracle::has_cycle_of_length(g, len))
          .value("repetitions_executed", outcome.metrics.repetitions_executed)
          .value("repetitions_skipped", outcome.metrics.repetitions_skipped)
          .value("rounds", outcome.metrics.rounds)
          .value("total_bits", outcome.metrics.total_bits)
          .value("max_message_bits", outcome.metrics.max_message_bits);
    }
  }
  table.print(out);
  if (session) session->finish(out);
  if (trace_path) out << "trace:      " << *trace_path << '\n';
  if (json_path) {
    report.set_wall_clock_ms(timer.elapsed_ms());
    report.write(*json_path);
    out << "json:       " << *json_path << '\n';
  }
  return 0;
}

double to_double(const std::string& s, const char* what) {
  double value = 0.0;
  std::size_t pos = 0;
  try {
    value = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  CSD_CHECK_MSG(pos == s.size(), "bad " << what << ": '" << s << "'");
  return value;
}

std::string meta_label(const obs::TraceInstance& instance, std::size_t index) {
  if (instance.meta.empty()) return "instance " + std::to_string(index);
  std::string label;
  for (const auto& [key, value] : instance.meta) {
    if (!label.empty()) label += ' ';
    label += key + "=" + value;
  }
  return label;
}

/// `csd postmortem`: render a csd-blackbox-v1 dump (+ optional
/// csd-metrics-v2 series) as a last-N-seconds timeline, and emit the
/// csd-postmortem-v1 summary that tools/postmortem_report.py mirrors
/// field-for-field (the CI fuzz-smoke gate asserts the two agree).
int cmd_postmortem(const Invocation& inv, std::ostream& out) {
  CSD_CHECK_MSG(inv.positional.size() == 2,
                "postmortem needs a blackbox file");
  std::ifstream is(inv.positional[1]);
  CSD_CHECK_MSG(is.good(),
                "cannot read blackbox file '" << inv.positional[1] << "'");
  std::stringstream buffer;
  buffer << is.rdbuf();
  const obs::Json dump = obs::Json::parse(buffer.str());
  CSD_CHECK_MSG(dump.find("schema") != nullptr &&
                    dump.at("schema").as_string() == "csd-blackbox-v1",
                "'" << inv.positional[1]
                    << "' is not a csd-blackbox-v1 dump");

  const double last_sec = to_double(inv.flag("last").value_or("30"), "last");
  CSD_CHECK_MSG(last_sec > 0, "--last wants seconds > 0");
  const std::uint64_t dump_epoch = dump.at("epoch_ms").as_uint();
  const auto window_ms = static_cast<std::uint64_t>(last_sec * 1000.0);
  const std::uint64_t cutoff =
      dump_epoch > window_ms ? dump_epoch - window_ms : 0;

  std::map<std::string, std::uint64_t> counts;
  std::uint64_t in_window = 0;
  const obs::Json& events = dump.at("events");
  for (const obs::Json& event : events.items()) {
    ++counts[event.at("kind").as_string()];
    if (event.at("epoch_ms").as_uint() >= cutoff) ++in_window;
  }

  std::uint64_t series_samples = 0, series_span_ms = 0;
  if (const auto series_path = inv.flag("series")) {
    std::ifstream ss(*series_path);
    CSD_CHECK_MSG(ss.good(),
                  "cannot read series file '" << *series_path << "'");
    const obs::MetricsSeries series = obs::parse_metrics_series(ss);
    series_samples = series.samples.size();
    series_span_ms = series.span_ms();
  }

  if (const auto json_path = inv.flag("json")) {
    obs::Json doc = obs::Json::object();
    doc.set("schema", obs::Json("csd-postmortem-v1"));
    doc.set("reason", dump.at("reason"));
    doc.set("epoch_ms", obs::Json(dump_epoch));
    doc.set("events_recorded", dump.at("events_recorded"));
    doc.set("events_kept", dump.at("events_kept"));
    doc.set("torn", dump.at("torn"));
    doc.set("window_seconds", obs::Json(last_sec));
    doc.set("events_in_window", obs::Json(in_window));
    obs::Json counts_json = obs::Json::object();
    for (const auto& [kind, count] : counts)
      counts_json.set(kind, obs::Json(count));
    doc.set("event_counts", std::move(counts_json));
    doc.set("counters", dump.at("metrics").at("counters"));
    doc.set("series_samples", obs::Json(series_samples));
    doc.set("series_span_ms", obs::Json(series_span_ms));
    std::ofstream os(*json_path);
    CSD_CHECK_MSG(os.good(), "cannot write '" << *json_path << "'");
    os << doc.dump(2) << '\n';
    out << "json:       " << *json_path << '\n';
  }

  out << "reason:     " << dump.at("reason").as_string() << '\n'
      << "events:     " << dump.at("events_recorded").as_uint()
      << " recorded, " << dump.at("events_kept").as_uint() << " kept, "
      << dump.at("torn").as_uint() << " torn\n";
  if (!counts.empty()) {
    out << "event counts:\n";
    for (const auto& [kind, count] : counts)
      out << "  " << kind << "  " << count << '\n';
  }
  const obs::Json& counters = dump.at("metrics").at("counters");
  if (!counters.members().empty()) {
    out << "final counters:\n";
    for (const auto& [name, value] : counters.members())
      out << "  " << name << " = " << value.as_uint() << '\n';
  }
  if (inv.flag("series"))
    out << "series:     " << series_samples << " sample(s) spanning "
        << series_span_ms << " ms\n";
  out << "timeline (last " << last_sec << "s, " << in_window
      << " event(s)):\n";
  for (const obs::Json& event : events.items()) {
    const std::uint64_t e_epoch = event.at("epoch_ms").as_uint();
    if (e_epoch < cutoff) continue;
    // Offset relative to the dump instant, millisecond precision.
    const std::int64_t rel = static_cast<std::int64_t>(e_epoch) -
                             static_cast<std::int64_t>(dump_epoch);
    const std::int64_t mag = rel < 0 ? -rel : rel;
    out << "  [" << (rel < 0 ? '-' : '+') << mag / 1000 << '.'
        << static_cast<char>('0' + (mag / 100) % 10)
        << static_cast<char>('0' + (mag / 10) % 10)
        << static_cast<char>('0' + mag % 10) << "s] "
        << event.at("kind").as_string() << "  actor="
        << event.at("actor").as_uint() << " at=" << event.at("at").as_uint()
        << " value=" << event.at("value").as_uint() << '\n';
  }
  return 0;
}

/// `csd analyze`: the congestion/phase/fit report over a JSONL trace.
/// Exit 1 iff --expect-exponent is given and some fitted group exceeds it.
int cmd_analyze(const Invocation& inv, std::ostream& out) {
  CSD_CHECK_MSG(inv.positional.size() == 2, "analyze needs a trace file");
  std::ifstream is(inv.positional[1]);
  CSD_CHECK_MSG(is.good(),
                "cannot read trace file '" << inv.positional[1] << "'");
  const auto instances = obs::parse_trace_jsonl(is);
  CSD_CHECK_MSG(!instances.empty(), "trace file holds no instances");
  const auto top_k = to_u64(inv.flag("top").value_or("5"), "top");
  const auto cut = inv.flag("cut");
  const auto group_filter = inv.flag("group");

  out << instances.size() << " instance(s) in " << inv.positional[1] << "\n";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const obs::TraceInstance& instance = instances[i];
    out << "\n--- " << meta_label(instance, i) << " ---\n"
        << "nodes " << instance.nodes << ", rounds "
        << instance.declared_rounds << " (" << instance.segments
        << " segment(s), " << instance.rounds_per_segment()
        << " rounds/rep), bits " << instance.total_bits << '\n';
    if (!instance.phases.empty()) {
      Table table({"phase", "rounds", "messages", "bits", "bit share"});
      std::uint64_t attributed = 0;
      for (const auto& phase : instance.phases) {
        const double share =
            instance.total_bits == 0
                ? 0.0
                : 100.0 * static_cast<double>(phase.bits) /
                      static_cast<double>(instance.total_bits);
        std::ostringstream share_os;
        share_os.precision(1);
        share_os << std::fixed << share << '%';
        table.row()
            .cell(phase.name)
            .cell(phase.rounds)
            .cell(phase.messages)
            .cell(phase.bits)
            .cell(share_os.str());
        attributed += phase.bits;
      }
      table.print(out);
      if (attributed < instance.total_bits)
        out << "unattributed: " << instance.total_bits - attributed
            << " bits\n";
    }
    if (!instance.counters.empty()) {
      out << "counters:";
      for (const auto& [name, value] : instance.counters)
        out << ' ' << name << '=' << value;
      out << '\n';
    }
    if (instance.per_edge && top_k > 0) {
      const auto top = obs::top_edges_by_bits(instance, top_k);
      out << "hottest directed edges:\n";
      for (const auto& edge : top)
        out << "  " << edge.src << " -> " << edge.dst << ": " << edge.bits
            << " bits in " << edge.messages << " message(s)\n";
    }
    if (cut && instance.per_edge) {
      const std::uint64_t boundary = to_u64(*cut, "cut");
      out << "cut {v < " << boundary << "}: "
          << obs::cut_traffic_bits(instance, boundary)
          << " bits cross in either direction\n";
    }
  }

  if (const auto chrome_path = inv.flag("chrome")) {
    std::ofstream os(*chrome_path);
    CSD_CHECK_MSG(os.good(),
                  "cannot write chrome trace '" << *chrome_path << "'");
    obs::write_chrome_trace(os, instances);
    out << "\nchrome trace: " << *chrome_path
        << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }

  // Rounds-vs-n growth fit, checked against the paper's predicted exponent.
  const auto expect = inv.flag("expect-exponent");
  const double tol = to_double(inv.flag("tol").value_or("0.15"), "tol");
  const auto bootstrap =
      to_u64(inv.flag("bootstrap").value_or("0"), "bootstrap");
  const auto boot_seed = to_u64(inv.flag("seed").value_or("1"), "seed");
  bool fit_failed = false, expectation_checked = false;
  const auto groups = obs::rounds_vs_n_points(instances);
  for (const auto& [group, points] : groups) {
    const auto fit = obs::fit_power_law(points);
    if (!fit.has_value()) {
      out << "\nfit [" << group << "]: " << points.size()
          << " point(s), need two distinct n to fit\n";
      continue;
    }
    out << "\nfit [" << group << "]: rounds/rep ~ "
        << std::exp(fit->log_coeff) << " * n^" << fit->exponent << " over "
        << fit->points << " point(s)\n";
    std::optional<obs::BootstrapFit> ci;
    if (bootstrap > 0) {
      ci = obs::bootstrap_power_law(points,
                                    static_cast<std::uint32_t>(bootstrap),
                                    boot_seed);
      if (ci.has_value()) {
        out << "  bootstrap: exponent 95% CI [" << ci->exponent_lo << ", "
            << ci->exponent_hi << "] over " << bootstrap << " resample(s)";
        if (ci->degenerate_resamples > 0)
          out << ", " << ci->degenerate_resamples << " degenerate";
        out << '\n';
      }
    }
    if (!expect.has_value()) continue;
    if (group_filter.has_value() && group != *group_filter) continue;
    expectation_checked = true;
    const double bound = to_double(*expect, "expect-exponent") + tol;
    if (fit->exponent > bound) {
      out << "FAIL [" << group << "]: fitted exponent " << fit->exponent
          << " exceeds " << *expect << " + " << tol << '\n';
      fit_failed = true;
    } else if (ci.has_value() && ci->exponent_lo > bound) {
      // The whole confidence interval sits above the bound: the point
      // estimate scraping by is then sampling luck, not compliance.
      out << "FAIL [" << group << "]: bootstrap CI lower edge "
          << ci->exponent_lo << " exceeds " << *expect << " + " << tol
          << '\n';
      fit_failed = true;
    } else {
      out << "OK [" << group << "]: fitted exponent " << fit->exponent
          << " <= " << *expect << " + " << tol << '\n';
    }
  }
  if (expect.has_value() && !expectation_checked) {
    out << "FAIL: --expect-exponent given but no fittable group matched\n";
    fit_failed = true;
  }
  return fit_failed ? 1 : 0;
}

int cmd_list_cliques(const Invocation& inv, std::ostream& out) {
  CSD_CHECK_MSG(inv.positional.size() == 3, "list-cliques needs s and a file");
  const auto s = static_cast<std::uint32_t>(to_u64(inv.positional[1], "s"));
  const Graph g = io::load(inv.positional[2]);
  detect::CliqueListingResult result;
  const auto outcome = detect::list_cliques_congested_clique(g, s, 64, &result);
  out << "K_" << s << " copies: " << result.total() << '\n'
      << "rounds:     " << outcome.metrics.rounds << '\n'
      << "oracle:     " << oracle::count_cliques(g, s) << '\n';
  return 0;
}

int cmd_fool(const Invocation& inv, std::ostream& out) {
  CSD_CHECK_MSG(inv.positional.size() == 3, "fool needs N and c");
  lb::FoolingConfig cfg;
  cfg.namespace_size = to_u64(inv.positional[1], "N");
  const auto c = static_cast<std::uint32_t>(to_u64(inv.positional[2], "c"));
  cfg.algorithm = detect::id_exchange_triangle_program(c);
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  const auto report = lb::run_fooling_adversary(cfg);
  out << "executions:        " << report.executions << '\n'
      << "transcripts:       " << report.distinct_transcripts << '\n'
      << "largest class:     " << report.largest_class << '\n'
      << "box found:         " << (report.box_found ? "yes" : "no") << '\n';
  if (report.box_found) {
    out << "hexagon ids:      ";
    for (const auto id : report.hexagon) out << ' ' << id;
    out << '\n'
        << "Claim 4.4:         "
        << (report.transcripts_match ? "verified" : "FAILED") << '\n'
        << "algorithm fooled:  " << (report.hexagon_fooled ? "YES" : "no")
        << '\n';
  }
  return 0;
}

int cmd_fuzz(const Invocation& inv, std::ostream& out) {
  fuzz::FuzzOptions options;
  if (const auto s = inv.flag("seconds"))
    options.seconds = static_cast<double>(to_u64(*s, "seconds"));
  options.seed = to_u64(inv.flag("seed").value_or("1"), "seed");
  options.max_cases = to_u64(inv.flag("cases").value_or("0"), "cases");
  if (const auto dir = inv.flag("corpus")) options.corpus_dir = *dir;
  const auto report = fuzz::run_fuzzer(options, out);
  if (!report.ok()) {
    out << "FUZZ FAILURES:\n";
    for (const auto& failure : report.failures)
      out << "  " << failure.divergence.check << " (case seed "
          << failure.case_seed << "): " << failure.divergence.detail << '\n';
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  try {
    const Invocation inv = parse(args);
    const std::string& command = inv.positional.empty() ? args[0]
                                                        : inv.positional[0];
    if (command == "generate") return cmd_generate(inv, out);
    if (command == "stats") return cmd_stats(inv, out);
    if (command == "detect") return cmd_detect(inv, out);
    if (command == "sweep") return cmd_sweep(inv, out);
    if (command == "analyze") return cmd_analyze(inv, out);
    if (command == "postmortem") return cmd_postmortem(inv, out);
    if (command == "list-cliques") return cmd_list_cliques(inv, out);
    if (command == "fool") return cmd_fool(inv, out);
    if (command == "fuzz") return cmd_fuzz(inv, out);
    err << "unknown command '" << command << "'\n" << kUsage;
    return 1;
  } catch (const CheckFailure& failure) {
    err << "error: " << failure.what() << '\n';
    return 2;
  }
}

}  // namespace csd::cli
