#!/usr/bin/env python3
"""Determinism-matrix gate for the sharded superstep engine.

Usage:
    tools/shard_determinism.py --csd build/tools/csd [--workdir DIR]
        [--workers 1,2,8] [--jobs 1,4] [--reps 32] [--telemetry]

Runs every (workers, jobs) cell of the matrix on two smoke instances —
the THM11 even-cycle detector (C_4 on a random forest) and the triangle
detector (on a sparse G(n,p) host) — through the `csd detect` CLI, each
cell writing a csd-bench-v1 JSON report and a csd-trace-v2 JSONL trace.
The classic engine (workers = 0, jobs = 1) is the reference cell; every
other cell must reproduce it bit-for-bit:

  * the JSON report is canonicalized by dropping the `env` object
    (wall_clock_ms, jobs, workers, git_sha — the only keys that may
    legitimately differ across cells) and its SHA-256 must match;
  * the JSONL trace is hashed raw — no canonicalization; the trace
    determinism contract is byte-level.

Both policies are exercised: range on the even-cycle instance, hash on
the triangle instance (and vice versa on a second pass of each), so a
policy-dependent merge bug cannot hide behind a lucky partition.

--telemetry attaches the csd-metrics-v2 plane (--metrics-out sampler +
--blackbox flight recorder, DESIGN.md §14) to every matrix cell while
the classic reference stays uninstrumented — matching digests then also
prove the telemetry plane leaves verdicts, reports and traces untouched.

Exit status: 0 = every cell bit-identical, 1 = divergence (the offending
cell and digests are printed), 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def run(cmd: list[str]) -> None:
    result = subprocess.run(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        print(f"error: command failed ({result.returncode}): "
              f"{' '.join(cmd)}\n{result.stdout}", file=sys.stderr)
        sys.exit(2)


def canonical_json_digest(path: Path) -> str:
    doc = json.loads(path.read_text())
    doc.pop("env", None)  # wall clock, jobs, workers: legitimately variable
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def raw_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def detect_cell(csd: str, instance: dict, workdir: Path, workers: int,
                jobs: int, policy: str, tag: str,
                telemetry: bool = False) -> tuple[str, str]:
    """Run one matrix cell; return (json digest, trace digest)."""
    json_path = workdir / f"{tag}.json"
    trace_path = workdir / f"{tag}.jsonl"
    cmd = [csd, "detect", *instance["pattern"], str(instance["graph"]),
           "--reps", str(instance["reps"]), "--seed", "11",
           "--jobs", str(jobs),
           "--json", str(json_path), "--trace", str(trace_path)]
    if workers != 0:
        cmd += ["--workers", str(workers), "--shard-policy", policy]
    if telemetry:
        cmd += ["--metrics-out", str(workdir / f"{tag}.metrics.jsonl"),
                "--metrics-period", "50",
                "--blackbox", str(workdir / f"{tag}.blackbox.json")]
    run(cmd)
    return canonical_json_digest(json_path), raw_digest(trace_path)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csd", required=True,
                        help="path to the csd binary")
    parser.add_argument("--workdir", type=Path, default=None,
                        help="where instances and reports go "
                             "(default: a temp dir)")
    parser.add_argument("--workers", default="1,2,8",
                        help="comma list of worker counts (0 = classic "
                             "reference, always added)")
    parser.add_argument("--jobs", default="1,4",
                        help="comma list of --jobs fan-outs")
    parser.add_argument("--reps", type=int, default=32,
                        help="amplification repetitions per instance")
    parser.add_argument("--telemetry", action="store_true",
                        help="attach --metrics-out/--blackbox to every "
                             "matrix cell (reference stays plain)")
    args = parser.parse_args()

    workers = [int(w) for w in args.workers.split(",") if w]
    jobs = [int(j) for j in args.jobs.split(",") if j]
    if args.workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="csd-shard-")
        workdir = Path(tmp.name)
    else:
        workdir = args.workdir
        workdir.mkdir(parents=True, exist_ok=True)

    # Smoke instances: small enough for PR CI, rich enough to exercise
    # cross-worker channels, amplification, and per-round traces.
    forest = workdir / "forest256.txt"
    sparse = workdir / "gnp96.txt"
    run([args.csd, "generate", "tree", "256", "5", "--out", str(forest)])
    run([args.csd, "generate", "gnp", "96", "8", "3", "--out", str(sparse)])
    instances = [
        {"name": "thm11_even_cycle", "pattern": ["cycle", "4"],
         "graph": forest, "reps": args.reps},
        {"name": "triangle", "pattern": ["triangle"],
         "graph": sparse, "reps": 1},
    ]

    failures = 0
    for instance in instances:
        ref = detect_cell(args.csd, instance, workdir, 0, 1, "range",
                          f"{instance['name']}-ref")
        print(f"{instance['name']}: reference (classic engine) "
              f"json={ref[0][:12]} trace={ref[1][:12]}")
        for w in workers:
            for j in jobs:
                for policy in ("range", "hash"):
                    tag = f"{instance['name']}-w{w}-j{j}-{policy}"
                    cell = detect_cell(args.csd, instance, workdir, w, j,
                                       policy, tag,
                                       telemetry=args.telemetry)
                    ok = cell == ref
                    status = "ok" if ok else "MISMATCH"
                    print(f"  workers={w} jobs={j} policy={policy}: {status}")
                    if not ok:
                        failures += 1
                        if cell[0] != ref[0]:
                            print(f"    json:  {ref[0]} -> {cell[0]}",
                                  file=sys.stderr)
                        if cell[1] != ref[1]:
                            print(f"    trace: {ref[1]} -> {cell[1]}",
                                  file=sys.stderr)

    if failures:
        print(f"FAIL: {failures} matrix cell(s) diverged from the classic "
              f"engine — the sharded engine broke bit-identity",
              file=sys.stderr)
        return 1
    cells = len(instances) * len(workers) * len(jobs) * 2
    suffix = " (telemetry attached)" if args.telemetry else ""
    print(f"OK: {cells} matrix cell(s) bit-identical to the classic "
          f"engine{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
