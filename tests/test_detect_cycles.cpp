// Tests for the cycle-detection algorithms: the linear-round pipelined
// baseline and the §6 sublinear C_2k detector (Theorem 1.1). Both are
// validated against the exhaustive oracle; rejection must always certify a
// real cycle (one-sided error) and detection must succeed with enough
// repetitions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace csd::detect {
namespace {

constexpr std::uint64_t kBandwidth = 64;

// ------------------------------------------------------ pipelined baseline
TEST(PipelinedCycle, DetectsTheCycleItself) {
  // Per-repetition success for the bare cycle is 2L/L^L, so only short
  // cycles are testable this way; longer lengths are covered on cycle-rich
  // hosts below.
  for (const std::uint32_t len : {3u, 4u}) {
    const Graph g = build::cycle(len);
    PipelinedCycleConfig cfg;
    cfg.length = len;
    cfg.repetitions = 400;
    const auto outcome = detect_cycle_pipelined(g, cfg, kBandwidth, 42);
    EXPECT_TRUE(outcome.detected) << "C_" << len;
  }
}

TEST(PipelinedCycle, DetectsLongCyclesInRichHosts) {
  // K_9 teems with C_5..C_7 copies, K_{6,6} with C_8 copies: the expected
  // number of properly-colored cycles per repetition is large enough for a
  // few hundred repetitions to detect with overwhelming probability.
  const Graph k9 = build::complete(9);
  const Graph k66 = build::complete_bipartite(6, 6);
  const struct {
    const Graph* host;
    std::uint32_t len;
    std::uint32_t reps;
  } cases[] = {{&k9, 5, 60}, {&k9, 6, 120}, {&k9, 7, 400}, {&k66, 8, 2000}};
  for (const auto& c : cases) {
    PipelinedCycleConfig cfg;
    cfg.length = c.len;
    cfg.repetitions = c.reps;
    EXPECT_TRUE(detect_cycle_pipelined(*c.host, cfg, kBandwidth, 42).detected)
        << "C_" << c.len;
  }
}

TEST(PipelinedCycle, AcceptsCycleOfWrongLength) {
  for (const std::uint32_t len : {4u, 5u, 6u}) {
    const Graph g = build::cycle(9);  // only a 9-cycle exists
    PipelinedCycleConfig cfg;
    cfg.length = len;
    cfg.repetitions = 100;
    EXPECT_FALSE(detect_cycle_pipelined(g, cfg, kBandwidth, 7).detected)
        << "C_" << len << " claimed in C_9";
  }
}

TEST(PipelinedCycle, AcceptsTreesAndPaths) {
  Rng rng(3);
  const Graph tree = build::random_tree(40, rng);
  PipelinedCycleConfig cfg;
  cfg.length = 4;
  cfg.repetitions = 60;
  EXPECT_FALSE(detect_cycle_pipelined(tree, cfg, kBandwidth, 9).detected);
  EXPECT_FALSE(
      detect_cycle_pipelined(build::path(30), cfg, kBandwidth, 9).detected);
}

TEST(PipelinedCycle, NeverFalsePositiveOnRandomGraphs) {
  // One-sided error: whenever the algorithm rejects, the oracle must agree.
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = build::gnp(24, 0.09, rng);
    for (const std::uint32_t len : {3u, 4u, 5u, 6u}) {
      PipelinedCycleConfig cfg;
      cfg.length = len;
      cfg.repetitions = 40;
      const bool detected =
          detect_cycle_pipelined(g, cfg, kBandwidth,
                                 100 + static_cast<std::uint64_t>(trial))
              .detected;
      if (detected) {
        EXPECT_TRUE(oracle::has_cycle_of_length(g, len))
            << "false positive: trial " << trial << " len " << len;
      }
    }
  }
}

TEST(PipelinedCycle, DetectsPlantedC4InSparseGraph) {
  Rng rng(13);
  Graph g = build::random_tree(50, rng);  // cycle-free host
  build::plant_subgraph(g, build::cycle(4), rng);
  PipelinedCycleConfig cfg;
  cfg.length = 4;
  cfg.repetitions = 500;
  EXPECT_TRUE(detect_cycle_pipelined(g, cfg, kBandwidth, 1004).detected);
}

TEST(PipelinedCycle, DetectsManyDisjointC6Copies) {
  // 30 independent C_6 copies raise the per-repetition hit rate from
  // 1/3888 to ~1/130; 1200 repetitions then miss with probability < 1e-4.
  const Graph g = build::disjoint_copies(build::cycle(6), 30);
  PipelinedCycleConfig cfg;
  cfg.length = 6;
  cfg.repetitions = 1200;
  EXPECT_TRUE(detect_cycle_pipelined(g, cfg, kBandwidth, 77).detected);
}

TEST(PipelinedCycle, RoundBudgetIsLinear) {
  const auto budget = pipelined_cycle_round_budget(500, 6);
  EXPECT_GE(budget, 500u);
  EXPECT_LE(budget, 510u);
}

TEST(PipelinedCycle, RejectsTooSmallBandwidth) {
  const Graph g = build::cycle(4);
  PipelinedCycleConfig cfg;
  cfg.length = 4;
  EXPECT_THROW(detect_cycle_pipelined(g, cfg, /*bandwidth=*/2, 1),
               CheckFailure);
}

TEST(PipelinedCycle, OddCyclesHandledToo) {
  // The baseline covers odd cycles (where no sublinear algorithm exists).
  // 20 disjoint C_5 copies: per-rep hit rate ~20·10/3125 = 1/16.
  const Graph g = build::disjoint_copies(build::cycle(5), 20);
  PipelinedCycleConfig cfg;
  cfg.length = 5;
  cfg.repetitions = 300;
  EXPECT_TRUE(detect_cycle_pipelined(g, cfg, kBandwidth, 5).detected);
}

// ------------------------------------------------------------- schedules --
TEST(EvenCycleSchedule, MatchesTheoremExponents) {
  // R_total(n) should grow like n^{1-1/(k(k-1))}: check the growth ratio
  // between n and 4n is within sane bounds of 4^{1-1/(k(k-1))}.
  for (const std::uint32_t k : {2u, 3u}) {
    EvenCycleConfig cfg;
    cfg.k = k;
    cfg.c_num = 1;
    const double expo = 1.0 - 1.0 / (k * (k - 1.0));
    const auto r1 = make_even_cycle_schedule(1u << 12, cfg).total_rounds();
    const auto r2 = make_even_cycle_schedule(1u << 14, cfg).total_rounds();
    const double measured =
        std::log2(static_cast<double>(r2) / static_cast<double>(r1)) / 2.0;
    EXPECT_NEAR(measured, expo, 0.25) << "k=" << k;
  }
}

TEST(EvenCycleSchedule, WindowsAreOrdered) {
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    EvenCycleConfig cfg;
    cfg.k = k;
    const auto s = make_even_cycle_schedule(1000, cfg);
    EXPECT_GT(s.window_start[1], s.phase1_rounds);
    for (std::uint32_t w = 2; w <= k; ++w)
      EXPECT_GT(s.window_start[w], s.window_start[w - 1]);
    EXPECT_GT(s.final_round, s.window_start[k]);
  }
}

TEST(EvenCycleSchedule, RejectsBadParameters) {
  EvenCycleConfig cfg;
  cfg.k = 1;
  EXPECT_THROW(make_even_cycle_schedule(100, cfg), CheckFailure);
}

// ---------------------------------------------------------- even cycles --
EvenCycleConfig ec_config(std::uint32_t k, std::uint32_t reps) {
  EvenCycleConfig cfg;
  cfg.k = k;
  cfg.repetitions = reps;
  return cfg;
}

TEST(EvenCycle, DetectsThePureCycleC4) {
  const Graph g = build::cycle(4);
  const auto outcome =
      detect_even_cycle(g, ec_config(2, 600), kBandwidth, 21);
  EXPECT_TRUE(outcome.detected);
}

TEST(EvenCycle, DetectsC6AmongManyCopies) {
  // A single C_6 is hit with probability ~12/6^6 per repetition; 10 disjoint
  // copies and a tuned Turán constant keep the schedule short while pushing
  // the per-repetition rate to ~1/390.
  const Graph g = build::disjoint_copies(build::cycle(6), 10);
  EvenCycleConfig cfg = ec_config(3, 3000);
  cfg.c_num = 1;
  const auto outcome = detect_even_cycle(g, cfg, kBandwidth, 23);
  EXPECT_TRUE(outcome.detected);
}

TEST(EvenCycle, DetectsC8InCompleteBipartiteHost) {
  // K_{8,8} holds ~350k C_8 copies; with every vertex above the k = 4
  // degree threshold, detection runs entirely through phase I.
  const Graph g = build::complete_bipartite(8, 8);
  const auto outcome = detect_even_cycle(g, ec_config(4, 120), kBandwidth, 3);
  EXPECT_TRUE(outcome.detected);
}

TEST(EvenCycle, AcceptsTrees) {
  Rng rng(29);
  const Graph tree = build::random_tree(48, rng);
  EXPECT_FALSE(detect_even_cycle(tree, ec_config(2, 100), kBandwidth, 1)
                   .detected);
  EXPECT_FALSE(detect_even_cycle(tree, ec_config(3, 60), kBandwidth, 1)
                   .detected);
}

TEST(EvenCycle, AcceptsC4FreePolarityGraph) {
  // ER_5: 31 vertices, C4-free, near-extremal density — the hard negative.
  const Graph g = build::polarity_graph(5);
  EXPECT_FALSE(
      detect_even_cycle(g, ec_config(2, 120), kBandwidth, 3).detected);
}

TEST(EvenCycle, AcceptsC6FreeIncidenceGraph) {
  // The girth-8 generalized quadrangle GQ(4,3): 80 vertices at
  // near-extremal C_6-free density — the hard negative for k = 3.
  const Graph g = build::generalized_quadrangle_incidence(3);
  EXPECT_FALSE(
      detect_even_cycle(g, ec_config(3, 80), kBandwidth, 5).detected);
  EXPECT_FALSE(
      detect_even_cycle(g, ec_config(2, 80), kBandwidth, 5).detected);
}

TEST(EvenCycle, DetectsC4InDenseRandomGraph) {
  Rng rng(31);
  const Graph g = build::gnp(40, 0.25, rng);  // C4s abound
  ASSERT_TRUE(oracle::has_cycle_of_length(g, 4));
  EXPECT_TRUE(
      detect_even_cycle(g, ec_config(2, 300), kBandwidth, 5).detected);
}

TEST(EvenCycle, DetectsPlantedC4AmongTrees) {
  Rng rng(37);
  Graph g = build::random_tree(60, rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  ASSERT_TRUE(oracle::has_cycle_of_length(g, 4));
  EXPECT_TRUE(
      detect_even_cycle(g, ec_config(2, 800), kBandwidth, 7).detected);
}

TEST(EvenCycle, DetectsC6InCompleteBipartiteHost) {
  // K_{5,5} contains 100·... C_6 copies; expected properly-colored count per
  // repetition is high, so few repetitions suffice even for k = 3.
  const Graph g = build::complete_bipartite(5, 5);
  EvenCycleConfig cfg = ec_config(3, 250);
  const auto outcome = detect_even_cycle(g, cfg, kBandwidth, 11);
  EXPECT_TRUE(outcome.detected);
}

TEST(EvenCycle, OneSidedErrorOnRandomGraphs) {
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = build::gnp(26, 0.10, rng);
    for (const std::uint32_t k : {2u, 3u}) {
      const bool detected =
          detect_even_cycle(g, ec_config(k, 60), kBandwidth,
                            900 + static_cast<std::uint64_t>(trial))
              .detected;
      if (detected) {
        EXPECT_TRUE(oracle::has_cycle_of_length(g, 2 * k))
            << "false positive at trial " << trial << " k " << k;
      }
    }
  }
}

TEST(EvenCycle, Lemma61QueuesDrainWithinDeadline) {
  // Lemma 6.1: when |E| <= M, every phase-I queue drains within
  // R1 = ceil(2M/T) + 2k + 1 rounds. Measured with the probe on the
  // near-extremal C_4-free polarity graph (many high-degree token origins).
  const Graph g = build::polarity_graph(7);  // 57 vertices, ~1000 edges
  EvenCycleConfig cfg;
  cfg.k = 3;  // T = ceil(sqrt(57)) = 8 < max degree: phase I really runs
  const auto sched = make_even_cycle_schedule(g.num_vertices(), cfg);
  ASSERT_LE(g.num_edges(), sched.edge_bound_m) << "fixture must obey |E|<=M";
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EvenCycleProbe probe;
    congest::NetworkConfig net_cfg;
    net_cfg.bandwidth = 64;
    net_cfg.seed = seed;
    net_cfg.max_rounds = sched.total_rounds() + 1;
    congest::run_congest(g, net_cfg, even_cycle_program(cfg, &probe));
    EXPECT_FALSE(probe.phase1_deadline_reject);
    EXPECT_LE(probe.phase1_drained_round, sched.phase1_rounds)
        << "seed " << seed;
    EXPECT_GT(probe.max_phase1_queue, 0u)
        << "fixture should actually exercise the queues";
  }
}

TEST(EvenCycle, DenseGraphRejectedByLayeringDeadline) {
  // Lemma 6.3's flip side: when |E| > M the "too many edges" paths fire.
  // gnp(30, 0.95) has average degree ~27.5 > d = 4M/n = 24, so the peeling
  // never completes and every repetition rejects — deterministically, with
  // a single repetition. Soundness: such a dense graph must contain C_4.
  Rng rng(71);
  const Graph g = build::gnp(30, 0.95, rng);
  ASSERT_TRUE(oracle::has_cycle_of_length(g, 4));
  EvenCycleConfig cfg = ec_config(2, 1);
  cfg.c_num = 1;
  EXPECT_TRUE(detect_even_cycle(g, cfg, kBandwidth, 1).detected);
  EXPECT_TRUE(detect_even_cycle(g, cfg, kBandwidth, 999).detected);
}

TEST(EvenCycle, HandlesDisconnectedGraphs) {
  Graph g = build::disjoint_copies(build::cycle(4), 3);
  EXPECT_TRUE(
      detect_even_cycle(g, ec_config(2, 400), kBandwidth, 13).detected);
  const Graph forest = build::disjoint_copies(build::path(5), 4);
  EXPECT_FALSE(
      detect_even_cycle(forest, ec_config(2, 50), kBandwidth, 13).detected);
}

TEST(EvenCycle, MeasuredRoundsEqualTheSchedule) {
  // The round counts reported by the THM11 bench are schedule-exact: a run
  // takes exactly total_rounds() rounds, on any input, at any seed.
  Rng rng(83);
  for (const Vertex n : {32u, 100u}) {
    const Graph g = build::gnp(n, 0.08, rng);
    for (const std::uint32_t k : {2u, 3u}) {
      EvenCycleConfig cfg;
      cfg.k = k;
      const auto sched = make_even_cycle_schedule(n, cfg);
      congest::NetworkConfig net_cfg;
      net_cfg.bandwidth = 64;
      net_cfg.seed = 17;
      net_cfg.max_rounds = sched.total_rounds() + 5;
      const auto outcome =
          congest::run_congest(g, net_cfg, even_cycle_program(cfg));
      EXPECT_TRUE(outcome.completed);
      EXPECT_EQ(outcome.metrics.rounds, sched.total_rounds())
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(EvenCycle, MinBandwidthSufficient) {
  const Graph g = build::cycle(4);
  EvenCycleConfig cfg = ec_config(2, 500);
  const auto b = even_cycle_min_bandwidth(g.num_vertices(), cfg);
  EXPECT_TRUE(detect_even_cycle(g, cfg, b, 17).detected);
  EXPECT_THROW(detect_even_cycle(g, cfg, b - 1, 17), CheckFailure);
}

TEST(EvenCycle, SublinearRoundsAtScale) {
  // The schedule (not a run) certifies the round budget: for large n the
  // total must be well below the linear baseline.
  EvenCycleConfig cfg;
  cfg.k = 2;
  cfg.c_num = 1;
  const std::uint64_t n = 1u << 16;
  EXPECT_LT(make_even_cycle_schedule(n, cfg).total_rounds(),
            pipelined_cycle_round_budget(n, 4) / 10);
}

// The paper's cycle algorithms are broadcast algorithms and must be
// namespace-robust: they work unchanged under broadcast-only enforcement
// and under sparse random identifiers from a large namespace.
TEST(ModelVariants, CycleDetectorsAreBroadcastAlgorithms) {
  const Graph g = build::disjoint_copies(build::cycle(4), 3);
  congest::NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.broadcast_only = true;
  cfg.max_rounds = 100000;
  bool detected = false;
  for (std::uint64_t seed = 0; seed < 400 && !detected; ++seed) {
    cfg.seed = seed;
    detected = congest::run_congest(g, cfg, pipelined_cycle_program(4))
                   .detected;
  }
  EXPECT_TRUE(detected);

  detected = false;
  EvenCycleConfig ec;
  ec.k = 2;
  for (std::uint64_t seed = 0; seed < 400 && !detected; ++seed) {
    cfg.seed = seed;
    detected = congest::run_congest(g, cfg, even_cycle_program(ec)).detected;
  }
  EXPECT_TRUE(detected);
}

TEST(ModelVariants, DetectorsWorkWithSparseRandomIds) {
  Rng rng(101);
  const Graph g = build::disjoint_copies(build::cycle(4), 4);
  const std::uint64_t big_namespace = 1u << 20;
  std::vector<congest::NodeId> ids;
  std::set<std::uint64_t> used;
  while (ids.size() < g.num_vertices()) {
    const auto id = rng.below(big_namespace);
    if (used.insert(id).second) ids.push_back(id);
  }
  congest::NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.namespace_size = big_namespace;
  cfg.max_rounds = 100000;
  bool pipelined = false, even = false;
  EvenCycleConfig ec;
  ec.k = 2;
  for (std::uint64_t seed = 0; seed < 400 && !(pipelined && even); ++seed) {
    cfg.seed = seed;
    if (!pipelined)
      pipelined = congest::Network(g, cfg, ids)
                      .run(pipelined_cycle_program(4))
                      .detected;
    if (!even)
      even = congest::Network(g, cfg, ids).run(even_cycle_program(ec))
                 .detected;
  }
  EXPECT_TRUE(pipelined);
  EXPECT_TRUE(even);
}

}  // namespace
}  // namespace csd::detect
