// Unit tests for the support layer: RNG, bit vectors, the prefix-free wire
// codec, combinatorics, and integer math.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "support/bitvec.hpp"
#include "support/check.hpp"
#include "support/combinatorics.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

namespace csd {
namespace {

// ---------------------------------------------------------------- check --
TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(CSD_CHECK(1 == 2), CheckFailure);
  try {
    CSD_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng --
TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++hist[v];
  }
  for (const int h : hist) {
    EXPECT_GT(h, 9000);
    EXPECT_LT(h, 11000);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(11);
  auto p = rng.permutation(100);
  std::sort(p.begin(), p.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (const std::uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.sample_without_replacement(100, k);
    ASSERT_EQ(s.size(), k);
    std::set<std::uint32_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), k);
    for (const auto v : s) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, DeriveSeedSeparatesStreams) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(9, 4), derive_seed(9, 4));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// --------------------------------------------------------------- bitvec --
TEST(BitVec, PushAndGet) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, SizedConstructorAndSet) {
  BitVec v(130, false);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_EQ(v.count(), 3u);
  v.set(64, false);
  EXPECT_EQ(v.count(), 2u);
  BitVec ones(70, true);
  EXPECT_EQ(ones.count(), 70u);
}

TEST(BitVec, AppendBitsRoundTrip) {
  BitVec v;
  v.append_bits(0xdeadbeefULL, 32);
  v.append_bits(0x3, 2);
  EXPECT_EQ(v.read_bits(0, 32), 0xdeadbeefULL);
  EXPECT_EQ(v.read_bits(32, 2), 0x3u);
}

TEST(BitVec, IntersectionAndUnion) {
  BitVec a(10), b(10);
  a.set(1);
  a.set(3);
  b.set(3);
  b.set(5);
  BitVec i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.get(3));
  BitVec u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
}

TEST(BitVec, FindNext) {
  BitVec v(20);
  v.set(4);
  v.set(17);
  EXPECT_EQ(v.find_next(0), 4u);
  EXPECT_EQ(v.find_next(5), 17u);
  EXPECT_EQ(v.find_next(18), 20u);
}

TEST(BitVec, HashDiffersOnContent) {
  BitVec a(64), b(64);
  b.set(63);
  EXPECT_NE(a.hash(), b.hash());
  BitVec c(65);
  EXPECT_NE(a.hash(), c.hash());  // size participates
}

TEST(BitVec, EqualityAndAppend) {
  BitVec a;
  a.append_bits(0b1011, 4);
  BitVec b;
  b.append_bits(0b1011, 4);
  EXPECT_EQ(a, b);
  a.append(b);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a.read_bits(4, 4), 0b1011u);
}

TEST(BitVec, ClearResets) {
  BitVec v(70, true);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.count(), 0u);
  v.push_back(true);
  EXPECT_EQ(v.size(), 1u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

// ----------------------------------------------------------- word prims --
TEST(Bits, Popcount64) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(1), 1);
  EXPECT_EQ(popcount64(~0ULL), 64);
  EXPECT_EQ(popcount64(0x8000000000000001ULL), 2);
  EXPECT_EQ(popcount64(0x5555555555555555ULL), 32);
}

TEST(Bits, CountrZero64) {
  EXPECT_EQ(countr_zero64(0), 64);
  EXPECT_EQ(countr_zero64(1), 0);
  EXPECT_EQ(countr_zero64(0x8000000000000000ULL), 63);
  EXPECT_EQ(countr_zero64(0b1010000), 4);
}

TEST(Bits, BitWidth64) {
  EXPECT_EQ(bit_width64(0), 0);
  EXPECT_EQ(bit_width64(1), 1);
  EXPECT_EQ(bit_width64(2), 2);
  EXPECT_EQ(bit_width64(255), 8);
  EXPECT_EQ(bit_width64(256), 9);
  EXPECT_EQ(bit_width64(~0ULL), 64);
}

// Word-boundary sizes are where the splice logic can go wrong: counts and
// searches over 63/64/65-bit vectors must agree with a bit-by-bit model.
TEST(BitVec, CountAtWordBoundaries) {
  for (const std::size_t n : {63u, 64u, 65u, 127u, 128u, 129u}) {
    BitVec ones(n, true);
    EXPECT_EQ(ones.count(), n) << "n=" << n;
    BitVec v(n);
    v.set(0);
    v.set(n - 1);
    EXPECT_EQ(v.count(), 2u) << "n=" << n;
    EXPECT_EQ(v.find_next(0), 0u);
    EXPECT_EQ(v.find_next(1), n - 1);
    EXPECT_EQ(v.find_next(n - 1), n - 1);
    EXPECT_EQ(v.find_next(n), n);
  }
}

TEST(BitVec, AppendBitsAcrossWordBoundary) {
  // Force a splice that straddles a word: 63 bits, then a 64-bit value.
  BitVec v;
  v.append_bits(0x7fffffffffffffffULL, 63);
  v.append_bits(0xdeadbeefcafef00dULL, 64);
  v.append_bits(0x1, 1);
  ASSERT_EQ(v.size(), 128u);
  EXPECT_EQ(v.read_bits(0, 63), 0x7fffffffffffffffULL);
  EXPECT_EQ(v.read_bits(63, 64), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(v.read_bits(127, 1), 1u);
}

TEST(BitVec, AppendBitsMasksOverwideValue) {
  BitVec v;
  v.append_bits(~0ULL, 5);  // only the low 5 bits may land
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.read_bits(0, 5), 31u);
  EXPECT_EQ(v.count(), 5u);  // trim invariant: no stray high bits
}

// Randomized equivalence against a bit-by-bit reference model.
TEST(BitVec, MatchesBitByBitReference) {
  Rng rng(42);
  BitVec v;
  std::vector<bool> ref;
  for (int step = 0; step < 200; ++step) {
    const auto width = static_cast<unsigned>(1 + rng.below(64));
    const std::uint64_t value = rng();
    v.append_bits(value, width);
    for (unsigned i = 0; i < width; ++i) ref.push_back((value >> i) & 1);
  }
  ASSERT_EQ(v.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(v.get(i), ref[i]) << "bit " << i;
  std::size_t expected_count = 0;
  for (const bool b : ref) expected_count += b;
  EXPECT_EQ(v.count(), expected_count);
  // read_bits at random offsets
  for (int probe = 0; probe < 200; ++probe) {
    const auto width = static_cast<unsigned>(1 + rng.below(64));
    if (v.size() < width) continue;
    const std::size_t pos = rng.below(v.size() - width + 1);
    std::uint64_t expect = 0;
    for (unsigned i = 0; i < width; ++i)
      expect |= static_cast<std::uint64_t>(ref[pos + i]) << i;
    ASSERT_EQ(v.read_bits(pos, width), expect) << "pos " << pos;
  }
}

TEST(BitVec, AppendVectorMatchesReference) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec a, b;
    std::vector<bool> ref;
    const std::size_t na = rng.below(130), nb = rng.below(130);
    for (std::size_t i = 0; i < na; ++i) {
      const bool bit = rng.below(2) == 1;
      a.push_back(bit);
      ref.push_back(bit);
    }
    for (std::size_t i = 0; i < nb; ++i) {
      const bool bit = rng.below(2) == 1;
      b.push_back(bit);
      ref.push_back(bit);
    }
    a.append(b);
    ASSERT_EQ(a.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(a.get(i), ref[i]) << "trial " << trial << " bit " << i;
  }
}

TEST(BitVec, SelfAppendIsAnError) {
  BitVec v;
  v.append_bits(0b101, 3);
  EXPECT_THROW(v.append(v), CheckFailure);
}

TEST(BitVec, IntersectHelpers) {
  BitVec a(200), b(200);
  for (std::size_t i = 0; i < 200; i += 3) a.set(i);
  for (std::size_t i = 0; i < 200; i += 5) b.set(i);
  std::size_t expect = 0;
  for (std::size_t i = 0; i < 200; i += 15) ++expect;
  EXPECT_EQ(intersect_count(a, b), expect);
  BitVec dst;
  intersect_into(dst, a, b);
  EXPECT_EQ(dst.size(), 200u);
  EXPECT_EQ(dst.count(), expect);
  for (std::size_t i = 0; i < 200; ++i)
    EXPECT_EQ(dst.get(i), i % 15 == 0);
  // Aliasing: dst may be one of the operands.
  intersect_into(a, a, b);
  EXPECT_EQ(a, dst);
}

// Equal-size contract: mixing sizes in the set-algebra operations is a
// caller bug and must throw, not silently zero-extend.
TEST(BitVec, SetOpsRejectMismatchedSizes) {
  BitVec a(64), b(65), dst;
  EXPECT_THROW(a &= b, CheckFailure);
  EXPECT_THROW(a |= b, CheckFailure);
  EXPECT_THROW(intersect_count(a, b), CheckFailure);
  EXPECT_THROW(intersect_into(dst, a, b), CheckFailure);
}

TEST(BitVec, ForEachSetVisitsAscending) {
  BitVec v(150);
  const std::vector<std::size_t> want = {0, 63, 64, 65, 127, 149};
  for (const auto i : want) v.set(i);
  std::vector<std::size_t> got;
  for_each_set(v, [&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitVec, AssignReusesStorage) {
  BitVec big(1000, true);
  BitVec small;
  small.append_bits(0b110, 3);
  big.assign(small);
  EXPECT_EQ(big.size(), 3u);
  EXPECT_EQ(big, small);
  big.assign(BitVec(70, true));
  EXPECT_EQ(big.count(), 70u);
}

TEST(BitVec, TruncateKeepsTrimInvariant) {
  BitVec v(130, true);
  v.truncate(65);
  EXPECT_EQ(v.size(), 65u);
  EXPECT_EQ(v.count(), 65u);
  v.append_bits(0, 63);  // spliced against the trimmed tail word
  EXPECT_EQ(v.count(), 65u);
  EXPECT_EQ(v.read_bits(64, 64), 1u);
}

// ----------------------------------------------------------------- wire --
TEST(Wire, BitsFor) {
  EXPECT_EQ(wire::bits_for(0), 1u);
  EXPECT_EQ(wire::bits_for(1), 1u);
  EXPECT_EQ(wire::bits_for(2), 1u);
  EXPECT_EQ(wire::bits_for(3), 2u);
  EXPECT_EQ(wire::bits_for(256), 8u);
  EXPECT_EQ(wire::bits_for(257), 9u);
}

TEST(Wire, FixedWidthRoundTrip) {
  wire::Writer w;
  w.u(5, 3);
  w.boolean(true);
  w.u(1023, 10);
  wire::Reader r(w.bits());
  EXPECT_EQ(r.u(3), 5u);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.u(10), 1023u);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, VarintRoundTrip) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 40,
        ~0ULL}) {
    wire::Writer w;
    w.varint(v);
    wire::Reader r(w.bits());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Wire, VarintIsPrefixFree) {
  // No encoding is a prefix of another (required by §4's transcript
  // argument): check pairwise over a sample.
  std::vector<BitVec> encodings;
  for (std::uint64_t v = 0; v < 200; ++v) {
    wire::Writer w;
    w.varint(v);
    encodings.push_back(std::move(w).take());
  }
  for (std::size_t a = 0; a < encodings.size(); ++a)
    for (std::size_t b = 0; b < encodings.size(); ++b) {
      if (a == b || encodings[a].size() > encodings[b].size()) continue;
      bool is_prefix = true;
      for (std::size_t i = 0; i < encodings[a].size(); ++i)
        is_prefix &= encodings[a].get(i) == encodings[b].get(i);
      EXPECT_FALSE(is_prefix) << a << " prefixes " << b;
    }
}

TEST(Wire, ReadPastEndThrows) {
  wire::Writer w;
  w.u(3, 2);
  wire::Reader r(w.bits());
  r.u(2);
  EXPECT_THROW(r.u(1), CheckFailure);
}

TEST(Wire, OverwideValueRejected) {
  wire::Writer w;
  EXPECT_THROW(w.u(4, 2), CheckFailure);
}

TEST(Wire, RawRoundTrip) {
  BitVec payload;
  payload.append_bits(0b10110, 5);
  wire::Writer w;
  w.u(9, 4);
  w.raw(payload);
  wire::Reader r(w.bits());
  EXPECT_EQ(r.u(4), 9u);
  EXPECT_EQ(r.raw(5), payload);
}

// -------------------------------------------------------- combinatorics --
TEST(Combinatorics, BinomialSmall) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(3, 5), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Combinatorics, BinomialPascalIdentity) {
  for (std::uint64_t n = 1; n <= 30; ++n)
    for (std::uint64_t k = 1; k <= n; ++k)
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
}

TEST(Combinatorics, BinomialSaturates) {
  EXPECT_EQ(binomial(1000, 500), std::numeric_limits<std::uint64_t>::max());
}

TEST(Combinatorics, UnrankRankInverse) {
  const std::uint32_t m = 8, k = 3;
  std::set<std::vector<std::uint32_t>> seen;
  for (std::uint64_t r = 0; r < binomial(m, k); ++r) {
    const auto subset = unrank_k_subset(r, m, k);
    ASSERT_EQ(subset.size(), k);
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
    for (const auto e : subset) EXPECT_LT(e, m);
    EXPECT_EQ(rank_k_subset(subset, m), r);
    seen.insert(subset);
  }
  EXPECT_EQ(seen.size(), binomial(m, k));  // all distinct
}

TEST(Combinatorics, UnrankOutOfRangeThrows) {
  EXPECT_THROW(unrank_k_subset(binomial(6, 2), 6, 2), CheckFailure);
}

TEST(Combinatorics, ForEachKSubsetEnumeratesAll) {
  std::uint64_t count = 0;
  std::set<std::vector<std::uint32_t>> seen;
  for_each_k_subset(7, 3, [&](const std::vector<std::uint32_t>& s) {
    ++count;
    seen.insert(s);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  });
  EXPECT_EQ(count, binomial(7, 3));
  EXPECT_EQ(seen.size(), count);
}

TEST(Combinatorics, ForEachKSubsetEdgeCases) {
  int count = 0;
  for_each_k_subset(3, 5, [&](const auto&) { ++count; });
  EXPECT_EQ(count, 0);
  for_each_k_subset(3, 3, [&](const auto& s) {
    ++count;
    EXPECT_EQ(s.size(), 3u);
  });
  EXPECT_EQ(count, 1);
}

// ------------------------------------------------------------- mathutil --
TEST(MathUtil, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(7, 0), 1u);
  EXPECT_EQ(ipow(10, 19), 10000000000000000000ULL);
  EXPECT_EQ(ipow(2, 64), std::numeric_limits<std::uint64_t>::max());
}

TEST(MathUtil, Roots) {
  EXPECT_EQ(floor_kth_root(8, 3), 2u);
  EXPECT_EQ(floor_kth_root(9, 3), 2u);
  EXPECT_EQ(ceil_kth_root(8, 3), 2u);
  EXPECT_EQ(ceil_kth_root(9, 3), 3u);
  EXPECT_EQ(ceil_kth_root(1, 5), 1u);
  EXPECT_EQ(ceil_kth_root(0, 2), 0u);
  for (std::uint64_t n = 1; n < 500; ++n)
    for (std::uint32_t k = 1; k <= 4; ++k) {
      const auto f = floor_kth_root(n, k);
      EXPECT_LE(ipow(f, k), n);
      EXPECT_GT(ipow(f + 1, k), n);
      const auto c = ceil_kth_root(n, k);
      EXPECT_GE(ipow(c, k), n);
      if (c > 0) {
        EXPECT_LT(ipow(c - 1, k), n);
      }
    }
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(MathUtil, EvenCycleEdgeBound) {
  // M = ⌈c·n·⌈n^{1/k}⌉⌉.
  EXPECT_EQ(even_cycle_edge_bound(100, 2, 1, 1), 1000u);  // 100 * 10
  EXPECT_EQ(even_cycle_edge_bound(100, 2, 4, 1), 4000u);
  EXPECT_EQ(even_cycle_edge_bound(100, 2, 1, 2), 500u);
  // Monotone in n.
  std::uint64_t prev = 0;
  for (std::uint64_t n = 2; n < 300; ++n) {
    const auto m = even_cycle_edge_bound(n, 3, 1, 1);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(MathUtil, CeilPowRatio) {
  EXPECT_EQ(ceil_pow_ratio(16, 1, 2), 4u);   // 16^{1/2}
  EXPECT_EQ(ceil_pow_ratio(17, 1, 2), 5u);   // ⌈17^{1/2}⌉
  EXPECT_EQ(ceil_pow_ratio(8, 2, 3), 4u);    // 8^{2/3}
  EXPECT_EQ(ceil_pow_ratio(100, 3, 2), 1000u);
}

// ---------------------------------------------------------------- table --
TEST(Table, PrintsAlignedRows) {
  Table t({"n", "rounds", "ratio"});
  t.row().cell(std::uint64_t{16}).cell(std::uint64_t{42}).cell(1.5, 2);
  t.row().cell(std::uint64_t{256}).cell(std::uint64_t{9000}).cell(0.33, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("rounds"), std::string::npos);
  EXPECT_NE(s.find("9000"), std::string::npos);
  EXPECT_NE(s.find("0.33"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, IncompleteRowRejected) {
  Table t({"a", "b"});
  t.row().cell(1);
  EXPECT_THROW(t.row(), CheckFailure);
}

TEST(Table, BoolCells) {
  Table t({"ok"});
  t.row().cell(true);
  t.row().cell(false);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("yes"), std::string::npos);
  EXPECT_NE(os.str().find("no"), std::string::npos);
}

}  // namespace
}  // namespace csd
