// Tests for graph serialization (edge list, DIMACS) and the `csd` CLI
// (driven in-process through csd::cli::run).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/builders.hpp"
#include "graph/io.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tools/cli.hpp"

namespace csd {
namespace {

// --------------------------------------------------------------------- io --
TEST(GraphIo, EdgeListRoundTrip) {
  Rng rng(3);
  const Graph g = build::gnp(25, 0.2, rng);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const Graph back = io::read_edge_list(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, DimacsRoundTrip) {
  const Graph g = build::petersen();
  std::stringstream ss;
  io::write_dimacs(ss, g);
  const Graph back = io::read_dimacs(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, ReadAnyDetectsBothFormats) {
  const Graph g = build::grid(3, 4);
  {
    std::stringstream ss;
    io::write_edge_list(ss, g);
    EXPECT_EQ(io::read_any(ss).edges(), g.edges());
  }
  {
    std::stringstream ss;
    io::write_dimacs(ss, g);
    EXPECT_EQ(io::read_any(ss).edges(), g.edges());
  }
}

TEST(GraphIo, CommentsAndBlankLinesSkipped) {
  std::stringstream ss(
      "# a comment\n\n3 2\nc another comment\n0 1\n\n1 2\n");
  const Graph g = io::read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, MalformedInputsRejectedWithLineNumbers) {
  const auto expect_failure = [](const std::string& content,
                                 const std::string& needle) {
    std::stringstream ss(content);
    try {
      io::read_edge_list(ss);
      FAIL() << "expected parse failure for: " << content;
    } catch (const CheckFailure& failure) {
      EXPECT_NE(std::string(failure.what()).find(needle), std::string::npos)
          << failure.what();
    }
  };
  expect_failure("", "empty");
  expect_failure("3\n", "two");
  expect_failure("3 2\n0 1\n", "expected 2 edges");
  expect_failure("3 1\n0 7\n", "out of range");
  expect_failure("3 1\n0 1 9\n", "trailing");
  expect_failure("2 1\n0 1\n0 1\n", "trailing content");
}

TEST(GraphIo, DimacsValidatesHeaderAndRange) {
  std::stringstream bad_header("q edge 3 1\ne 1 2\n");
  EXPECT_THROW(io::read_dimacs(bad_header), CheckFailure);
  std::stringstream zero_based("p edge 3 1\ne 0 1\n");
  EXPECT_THROW(io::read_dimacs(zero_based), CheckFailure);
}

TEST(GraphIo, SaveAndLoad) {
  const auto path =
      (std::filesystem::temp_directory_path() / "csd_io_test.graph").string();
  const Graph g = build::cycle(9);
  io::save(path, g, /*dimacs=*/true);
  const Graph back = io::load(path);
  EXPECT_EQ(back.edges(), g.edges());
  std::remove(path.c_str());
  EXPECT_THROW(io::load("/nonexistent/definitely/missing"), CheckFailure);
}

// -------------------------------------------------------------------- cli --
int run_cli(const std::vector<std::string>& args, std::string* out_text) {
  std::ostringstream out, err;
  const int code = cli::run(args, out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return code;
}

TEST(Cli, HelpAndUnknownCommand) {
  std::string text;
  EXPECT_EQ(run_cli({"help"}, &text), 0);
  EXPECT_NE(text.find("usage"), std::string::npos);
  EXPECT_EQ(run_cli({"definitely-not-a-command"}, &text), 1);
  EXPECT_EQ(run_cli({}, &text), 1);
}

TEST(Cli, GenerateToStdout) {
  std::string text;
  EXPECT_EQ(run_cli({"generate", "cycle", "5"}, &text), 0);
  EXPECT_EQ(text.substr(0, 4), "5 5\n");
  EXPECT_EQ(run_cli({"generate", "petersen", "--dimacs"}, &text), 0);
  EXPECT_NE(text.find("p edge 10 15"), std::string::npos);
}

TEST(Cli, GenerateStatsDetectPipeline) {
  const auto path =
      (std::filesystem::temp_directory_path() / "csd_cli_test.graph").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "gnp", "24", "25", "9", "--out", path},
                    &text),
            0);
  EXPECT_NE(text.find("wrote"), std::string::npos);

  ASSERT_EQ(run_cli({"stats", path}, &text), 0);
  EXPECT_NE(text.find("vertices:    24"), std::string::npos);

  ASSERT_EQ(run_cli({"detect", "triangle", path}, &text), 0);
  const bool says_reject = text.find("REJECT") != std::string::npos;
  const bool says_present = text.find("pattern present") != std::string::npos;
  EXPECT_EQ(says_reject, says_present);  // verdict agrees with the oracle
  EXPECT_EQ(text.find("WARNING"), std::string::npos);

  ASSERT_EQ(run_cli({"detect", "cycle", "4", path, "--reps", "300"}, &text),
            0);
  EXPECT_NE(text.find("Theorem 1.1"), std::string::npos);

  ASSERT_EQ(run_cli({"list-cliques", "3", path}, &text), 0);
  EXPECT_NE(text.find("K_3 copies"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, DetectStarPattern) {
  const auto path =
      (std::filesystem::temp_directory_path() / "csd_cli_star.graph").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "grid", "4", "4", "--out", path}, &text), 0);
  ASSERT_EQ(run_cli({"detect", "star", "4", path, "--reps", "400"}, &text),
            0);
  EXPECT_NE(text.find("REJECT"), std::string::npos);  // inner nodes have deg 4
  ASSERT_EQ(run_cli({"detect", "star", "5", path}, &text), 0);
  EXPECT_NE(text.find("pattern absent"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, DetectOddCycleUsesBaseline) {
  const auto path =
      (std::filesystem::temp_directory_path() / "csd_cli_c5.graph").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "complete", "7", "--out", path}, &text), 0);
  ASSERT_EQ(run_cli({"detect", "cycle", "5", path, "--reps", "200"}, &text),
            0);
  EXPECT_NE(text.find("pipelined"), std::string::npos);
  EXPECT_NE(text.find("REJECT"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, FoolReportsThresholdBehaviour) {
  std::string text;
  ASSERT_EQ(run_cli({"fool", "24", "2"}, &text), 0);
  EXPECT_NE(text.find("fooled:  YES"), std::string::npos);
  ASSERT_EQ(run_cli({"fool", "24", "3"}, &text), 0);
  EXPECT_NE(text.find("box found:         no"), std::string::npos);
}

TEST(Cli, ErrorsProduceExitCodeTwo) {
  std::string text;
  EXPECT_EQ(run_cli({"stats", "/no/such/file"}, &text), 2);
  EXPECT_NE(text.find("error:"), std::string::npos);
  EXPECT_EQ(run_cli({"generate", "cycle"}, &text), 2);  // missing N
  EXPECT_EQ(run_cli({"generate", "gnp", "x", "y", "z"}, &text), 2);
}

TEST(Cli, DetectWithFaultFlagsRunsAsyncEngine) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "csd_cli_faults.txt").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "gnp", "16", "30", "7", "--out", path},
                    &text),
            0);

  // Reliable transport under heavy faults: run completes, report populated.
  ASSERT_EQ(run_cli({"detect", "triangle", path, "--drop", "0.3", "--corrupt",
                     "0.05", "--transport", "reliable"},
                    &text),
            0);
  EXPECT_NE(text.find("reliable transport"), std::string::npos);
  EXPECT_NE(text.find("completed:  yes"), std::string::npos);
  EXPECT_NE(text.find("retransmissions"), std::string::npos);

  // Raw transport with a crash: no hang, crash recorded in the report.
  ASSERT_EQ(run_cli({"detect", "triangle", path, "--drop", "0.4", "--crash",
                     "2:0", "--transport", "raw"},
                    &text),
            0);
  EXPECT_NE(text.find("raw transport"), std::string::npos);
  EXPECT_NE(text.find("crashed nodes:      2"), std::string::npos);

  // Validation: bad probability / crash syntax / transport name.
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--drop", "1.5"}, &text), 2);
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--crash", "5"}, &text), 2);
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--transport", "tcp"},
                    &text),
            2);
  std::remove(path.c_str());
}

TEST(Cli, DetectValidatesFaultFlagEdges) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "csd_cli_val.txt").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "gnp", "16", "30", "7", "--out", path},
                    &text),
            0);

  // Crash node outside the topology.
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--crash", "99:1"}, &text),
            2);
  EXPECT_NE(text.find("but the graph has 16 nodes"), std::string::npos);
  // Crash round past the round cap: the event could never fire.
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--crash", "2:100000"},
                    &text),
            2);
  EXPECT_NE(text.find("would never fire"), std::string::npos);
  // Probabilities outside [0,1] and malformed numbers.
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--corrupt", "-0.5"}, &text),
            2);
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--drop", "zero"}, &text), 2);
  // --reps 0 is meaningless for every path.
  EXPECT_EQ(run_cli({"detect", "cycle", "4", path, "--reps", "0"}, &text), 2);
  EXPECT_EQ(run_cli({"sweep", "cycle", "4", "--reps", "0", "--sizes", "8"},
                    &text),
            2);
  // Checkpoint flags must come in a pair.
  EXPECT_EQ(run_cli({"detect", "triangle", path, "--checkpoint", "/tmp/x"},
                    &text),
            2);
  EXPECT_NE(text.find("--checkpoint-at"), std::string::npos);
  std::remove(path.c_str());

  // A zero-node graph is rejected before any engine runs.
  const std::string empty_path =
      (std::filesystem::temp_directory_path() / "csd_cli_empty.txt").string();
  std::ofstream(empty_path) << "0 0\n";
  EXPECT_EQ(run_cli({"detect", "triangle", empty_path}, &text), 2);
  EXPECT_NE(text.find("no vertices"), std::string::npos);
  std::remove(empty_path.c_str());
}

TEST(Cli, DetectCheckpointResumeMatchesUninterruptedRun) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "csd_cli_ckpt.graph").string();
  const std::string ckpt = (dir / "csd_cli_ckpt.json").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "gnp", "16", "30", "7", "--out", path},
                    &text),
            0);
  const std::vector<std::string> base = {"detect",      "triangle", path,
                                         "--drop",      "0.2",      "--transport",
                                         "reliable"};

  std::string full;
  ASSERT_EQ(run_cli(base, &full), 0);

  auto with = base;
  with.insert(with.end(), {"--checkpoint", ckpt, "--checkpoint-at", "2"});
  ASSERT_EQ(run_cli(with, &text), 0);
  EXPECT_NE(text.find("checkpoint: " + ckpt), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  auto resumed = base;
  resumed.insert(resumed.end(), {"--resume", ckpt});
  ASSERT_EQ(run_cli(resumed, &text), 0);
  EXPECT_NE(text.find("resumed:    " + ckpt), std::string::npos);
  // The resumed run reports the very same verdict, accounting, and fault
  // report as the uninterrupted one: compare everything from "verdict:" on.
  const auto tail = [](const std::string& s) {
    const auto at = s.find("verdict:");
    return at == std::string::npos ? s : s.substr(at);
  };
  EXPECT_EQ(tail(text), tail(full));
  std::remove(path.c_str());
  std::remove(ckpt.c_str());
}

TEST(Cli, DetectRecoverRestoresCrashedNodeAndSurfacesCounters) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "csd_cli_rec.graph").string();
  const std::string trace = (dir / "csd_cli_rec.jsonl").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "gnp", "16", "30", "7", "--out", path},
                    &text),
            0);
  ASSERT_EQ(run_cli({"detect", "triangle", path, "--crash", "2:1",
                     "--transport", "reliable", "--recover", "--rejoin-delay",
                     "1", "--trace", trace},
                    &text),
            0);
  EXPECT_NE(text.find("crash recovery on"), std::string::npos);
  EXPECT_NE(text.find("completed:  yes"), std::string::npos);
  EXPECT_NE(text.find("crashed nodes:      2"), std::string::npos);
  EXPECT_NE(text.find("recovered nodes:    2"), std::string::npos);
  EXPECT_NE(text.find("replayed pulses:    1"), std::string::npos);

  // The recovery counters ride the trace summary (nonzero-only) into
  // `csd analyze`.
  ASSERT_EQ(run_cli({"analyze", trace}, &text), 0);
  EXPECT_NE(text.find("crashed_nodes=1"), std::string::npos);
  EXPECT_NE(text.find("recovered_nodes=1"), std::string::npos);
  EXPECT_NE(text.find("replayed_pulses=1"), std::string::npos);
  std::remove(path.c_str());
  std::remove(trace.c_str());
}

TEST(Cli, DetectSupervisedSliceResumeAndStallReports) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "csd_cli_sup.graph").string();
  const std::string ckpt = (dir / "csd_cli_sup.json").string();
  std::string text;
  ASSERT_EQ(run_cli({"generate", "path", "12", "--out", path}, &text), 0);

  // Slice 1: merge 2 of 4 repetitions, pause, checkpoint.
  ASSERT_EQ(run_cli({"detect", "cycle", "4", path, "--reps", "4",
                     "--supervised", "--max-reps-per-call", "2",
                     "--checkpoint", ckpt},
                    &text),
            0);
  EXPECT_NE(text.find("2 executed, 2 skipped (of 4 planned)"),
            std::string::npos);
  EXPECT_NE(text.find("paused:"), std::string::npos);
  EXPECT_NE(text.find("checkpoint: " + ckpt), std::string::npos);

  // Slice 2: resume finishes the batch; the control host stays clean.
  ASSERT_EQ(run_cli({"detect", "cycle", "4", path, "--reps", "4",
                     "--supervised", "--max-reps-per-call", "2", "--resume",
                     ckpt},
                    &text),
            0);
  EXPECT_NE(text.find("resumed:    " + ckpt), std::string::npos);
  EXPECT_NE(text.find("4 executed, 0 skipped (of 4 planned)"),
            std::string::npos);
  EXPECT_NE(text.find("verdict:    accept"), std::string::npos);

  // A one-round budget flags every repetition in a structured StallReport.
  ASSERT_EQ(run_cli({"detect", "cycle", "4", path, "--reps", "2",
                     "--supervised", "--round-budget", "1"},
                    &text),
            0);
  EXPECT_NE(text.find("stalls:     2"), std::string::npos);
  EXPECT_NE(text.find("[over-budget]"), std::string::npos);
  std::remove(path.c_str());
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace csd
