// Unit tests for the graph substrate: Graph, builders, centralized
// algorithms, the ground-truth oracles, and the VF2 subgraph oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "graph/graph.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd {
namespace {

// ---------------------------------------------------------------- graph --
TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0), CheckFailure);
  EXPECT_THROW(g.add_edge(0, 3), CheckFailure);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), CheckFailure);  // duplicate
  EXPECT_FALSE(g.add_edge_if_absent(0, 1));
  EXPECT_TRUE(g.add_edge_if_absent(1, 2));
}

TEST(Graph, EdgesAreSortedAndComplete) {
  Graph g(4);
  g.add_edge(2, 3);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  const auto e = g.edges();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_TRUE(std::is_sorted(e.begin(), e.end()));
  EXPECT_EQ(e[0], std::make_pair(Vertex{0}, Vertex{1}));
}

TEST(Graph, InducedSubgraph) {
  Graph g = build::cycle(5);
  const Graph sub = g.induced_subgraph({0, 1, 2});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // path 0-1-2; edge 4-0 dropped
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  Graph g = build::path(4);
  EXPECT_THROW(g.induced_subgraph({0, 0}), CheckFailure);
}

TEST(Graph, AppendDisjoint) {
  Graph g = build::cycle(3);
  const Vertex off = g.append_disjoint(build::cycle(4));
  EXPECT_EQ(off, 3u);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Graph, MaxDegree) {
  EXPECT_EQ(build::star(7).max_degree(), 7u);
  EXPECT_EQ(build::cycle(9).max_degree(), 2u);
}

TEST(Graph, SortAdjacencyGivesDeterministicIteration) {
  Graph g(5);
  g.add_edge(4, 0);
  g.add_edge(2, 0);
  g.add_edge(3, 0);
  g.sort_adjacency();
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

// -------------------------------------------------------------- builders --
TEST(Builders, BasicShapes) {
  EXPECT_EQ(build::path(6).num_edges(), 5u);
  EXPECT_EQ(build::cycle(6).num_edges(), 6u);
  EXPECT_EQ(build::complete(7).num_edges(), 21u);
  EXPECT_EQ(build::complete_bipartite(3, 4).num_edges(), 12u);
  EXPECT_EQ(build::star(5).num_edges(), 5u);
  EXPECT_EQ(build::grid(3, 4).num_edges(), 17u);
}

TEST(Builders, PetersenProperties) {
  const Graph p = build::petersen();
  EXPECT_EQ(p.num_vertices(), 10u);
  EXPECT_EQ(p.num_edges(), 15u);
  EXPECT_EQ(p.max_degree(), 3u);
  EXPECT_EQ(oracle::girth(p), 5u);
  EXPECT_EQ(diameter(p), 2u);
}

TEST(Builders, GnpDensityMatches) {
  Rng rng(5);
  const Graph g = build::gnp(60, 0.3, rng);
  const double expected = 0.3 * 60 * 59 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

TEST(Builders, GnmExactEdges) {
  Rng rng(6);
  const Graph g = build::gnm(30, 100, rng);
  EXPECT_EQ(g.num_vertices(), 30u);
  EXPECT_EQ(g.num_edges(), 100u);
}

TEST(Builders, RandomBipartiteIsBipartite) {
  Rng rng(8);
  const Graph g = build::random_bipartite(12, 15, 0.4, rng);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Builders, RandomTreeIsTree) {
  Rng rng(9);
  for (const Vertex n : {1u, 2u, 3u, 10u, 57u}) {
    const Graph t = build::random_tree(n, rng);
    EXPECT_EQ(t.num_vertices(), n);
    EXPECT_EQ(t.num_edges(), n - 1);
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(Builders, RandomBoundedDegreeRespectsBound) {
  Rng rng(10);
  const Graph g = build::random_bounded_degree(40, 5, rng);
  EXPECT_LE(g.max_degree(), 5u);
}

TEST(Builders, PolarityGraphIsC4FreeAndDense) {
  for (const std::uint32_t q : {3u, 5u, 7u}) {
    const Graph g = build::polarity_graph(q);
    EXPECT_EQ(g.num_vertices(), q * q + q + 1);
    EXPECT_FALSE(oracle::has_cycle_of_length(g, 4))
        << "ER_q must be C4-free, q=" << q;
    // Edge count ~ q(q+1)^2/2: dense near the extremal bound.
    EXPECT_GE(g.num_edges(), static_cast<std::uint64_t>(q) * q * (q - 1) / 2);
  }
}

TEST(Builders, IncidenceGraphIsGirthSix) {
  // Projective-plane incidence graphs are the C_4-free bipartite extremal
  // (girth exactly 6: triangles of lines exist in any projective plane).
  for (const std::uint32_t q : {2u, 3u, 5u}) {
    const Graph g = build::incidence_graph(q);
    EXPECT_EQ(g.num_vertices(), 2 * (q * q + q + 1));
    EXPECT_EQ(g.num_edges(),
              static_cast<std::uint64_t>(q + 1) * (q * q + q + 1));
    EXPECT_TRUE(is_bipartite(g));
    EXPECT_EQ(oracle::girth(g), 6u) << "q=" << q;
    EXPECT_FALSE(oracle::has_cycle_of_length(g, 4));
  }
}

TEST(Builders, GeneralizedQuadrangleIsGirthEight) {
  for (const std::uint32_t q : {3u, 5u}) {
    const Graph g = build::generalized_quadrangle_incidence(q);
    const std::uint64_t per_side =
        static_cast<std::uint64_t>(q + 1) * (q * q + 1);
    EXPECT_EQ(g.num_vertices(), 2 * per_side);
    EXPECT_EQ(g.num_edges(), per_side * (q + 1));
    EXPECT_TRUE(is_bipartite(g));
    EXPECT_EQ(g.max_degree(), q + 1);
    EXPECT_EQ(oracle::girth(g), 8u) << "q=" << q;
  }
}

TEST(Builders, DisjointCopies) {
  const Graph g = build::disjoint_copies(build::cycle(4), 3);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(connected_components(g)[11], 2u);
}

TEST(Builders, PlantSubgraphCreatesCopy) {
  Rng rng(12);
  Graph host = build::gnp(30, 0.05, rng);
  const Graph pattern = build::cycle(6);
  const auto image = build::plant_subgraph(host, pattern, rng);
  EXPECT_TRUE(is_valid_embedding(host, pattern, image));
  EXPECT_TRUE(oracle::has_cycle_of_length(host, 6));
}

TEST(Builders, RandomHighGirthHasNoShortCycles) {
  Rng rng(14);
  const Graph g = build::random_high_girth(40, 80, 6, rng);
  const Vertex girth = oracle::girth(g);
  EXPECT_TRUE(girth == 0 || girth > 6) << "girth " << girth;
}

// ------------------------------------------------------------ algorithms --
TEST(Algorithms, BfsDistancesOnPath) {
  const Graph g = build::path(5);
  const auto d = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Algorithms, BfsUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Algorithms, Connectivity) {
  EXPECT_TRUE(is_connected(build::cycle(8)));
  EXPECT_FALSE(is_connected(build::disjoint_copies(build::cycle(3), 2)));
  EXPECT_TRUE(is_connected(Graph{}));
}

TEST(Algorithms, ConnectedComponentsIds) {
  const Graph g = build::disjoint_copies(build::path(3), 3);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(*std::max_element(comp.begin(), comp.end()), 2u);
}

TEST(Algorithms, Diameter) {
  EXPECT_EQ(diameter(build::path(7)), 6u);
  EXPECT_EQ(diameter(build::complete(5)), 1u);
  EXPECT_EQ(diameter(build::cycle(8)), 4u);
  EXPECT_EQ(diameter(build::disjoint_copies(build::path(2), 2)),
            kUnreachable);
}

TEST(Algorithms, Bipartiteness) {
  EXPECT_TRUE(is_bipartite(build::cycle(8)));
  EXPECT_FALSE(is_bipartite(build::cycle(9)));
  EXPECT_TRUE(is_bipartite(build::complete_bipartite(4, 5)));
  EXPECT_FALSE(is_bipartite(build::complete(3)));
  std::vector<std::uint8_t> side;
  ASSERT_TRUE(is_bipartite(build::cycle(4), &side));
  EXPECT_NE(side[0], side[1]);
  EXPECT_EQ(side[0], side[2]);
}

TEST(Algorithms, Degeneracy) {
  EXPECT_EQ(degeneracy(build::complete(6)), 5u);
  EXPECT_EQ(degeneracy(build::cycle(10)), 2u);
  EXPECT_EQ(degeneracy(build::star(9)), 1u);
  std::vector<Vertex> order;
  Rng rng(1);
  EXPECT_EQ(degeneracy(build::random_tree(20, rng), &order), 1u);
  EXPECT_EQ(order.size(), 20u);
}

TEST(Algorithms, LayerDecompositionCoversSparseGraphs) {
  Rng rng(21);
  const Graph g = build::gnm(60, 120, rng);  // avg degree 4
  const auto d = layer_decomposition(g, 8, 10);
  EXPECT_TRUE(d.unassigned.empty());
  EXPECT_LE(max_up_degree(g, d), 8u);
}

TEST(Algorithms, LayerDecompositionStallsOnClique) {
  const Graph g = build::complete(12);
  const auto d = layer_decomposition(g, 3, 20);
  EXPECT_EQ(d.unassigned.size(), 12u);  // nobody ever has degree <= 3
}

TEST(Algorithms, LayerDecompositionUpDegreeInvariant) {
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = build::gnp(50, 0.12, rng);
    const auto d = layer_decomposition(g, 9, 12);
    EXPECT_LE(max_up_degree(g, d), 9u);
  }
}

// --------------------------------------------------------------- oracle --
TEST(Oracle, CycleDetectionOnCanonicalGraphs) {
  EXPECT_TRUE(oracle::has_cycle_of_length(build::cycle(6), 6));
  EXPECT_FALSE(oracle::has_cycle_of_length(build::cycle(6), 4));
  EXPECT_FALSE(oracle::has_cycle_of_length(build::cycle(6), 5));
  EXPECT_FALSE(oracle::has_cycle_of_length(build::path(9), 3));
  EXPECT_TRUE(oracle::has_cycle_of_length(build::complete(5), 3));
  EXPECT_TRUE(oracle::has_cycle_of_length(build::complete(5), 4));
  EXPECT_TRUE(oracle::has_cycle_of_length(build::complete(5), 5));
  EXPECT_TRUE(oracle::has_cycle_of_length(build::complete_bipartite(3, 3), 6));
  EXPECT_FALSE(oracle::has_cycle_of_length(build::complete_bipartite(3, 3), 5));
}

TEST(Oracle, FindCycleReturnsRealCycle) {
  const Graph g = build::grid(4, 4);
  const auto cycle = oracle::find_cycle_of_length(g, 8);
  ASSERT_TRUE(cycle.has_value());
  ASSERT_EQ(cycle->size(), 8u);
  for (std::size_t i = 0; i < cycle->size(); ++i)
    EXPECT_TRUE(g.has_edge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
  std::set<Vertex> distinct(cycle->begin(), cycle->end());
  EXPECT_EQ(distinct.size(), 8u);
}

TEST(Oracle, CycleCounts) {
  EXPECT_EQ(oracle::count_cycles_of_length(build::cycle(7), 7), 1u);
  EXPECT_EQ(oracle::count_cycles_of_length(build::complete(4), 3), 4u);
  EXPECT_EQ(oracle::count_cycles_of_length(build::complete(4), 4), 3u);
  EXPECT_EQ(oracle::count_cycles_of_length(build::complete(5), 5), 12u);
  EXPECT_EQ(oracle::count_cycles_of_length(build::complete_bipartite(2, 2), 4),
            1u);
  EXPECT_EQ(oracle::count_cycles_of_length(build::complete_bipartite(3, 3), 4),
            9u);
}

TEST(Oracle, Girth) {
  EXPECT_EQ(oracle::girth(build::path(10)), 0u);
  EXPECT_EQ(oracle::girth(build::cycle(11)), 11u);
  EXPECT_EQ(oracle::girth(build::complete(4)), 3u);
  EXPECT_EQ(oracle::girth(build::grid(3, 3)), 4u);
  EXPECT_EQ(oracle::girth(build::petersen()), 5u);
}

TEST(Oracle, FindShortestCycle) {
  EXPECT_FALSE(oracle::find_shortest_cycle(build::path(5)).has_value());
  const auto c = oracle::find_shortest_cycle(build::petersen());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 5u);
}

TEST(Oracle, CliqueQueries) {
  EXPECT_TRUE(oracle::has_clique(build::complete(6), 6));
  EXPECT_FALSE(oracle::has_clique(build::complete(6), 7));
  EXPECT_EQ(oracle::count_cliques(build::complete(6), 3), 20u);
  EXPECT_EQ(oracle::count_cliques(build::complete(6), 4), 15u);
  EXPECT_EQ(oracle::count_cliques(build::petersen(), 3), 0u);
  EXPECT_EQ(oracle::count_cliques(build::cycle(5), 2), 5u);  // edges
}

TEST(Oracle, ListCliquesIsCompleteAndSorted) {
  const auto list = oracle::list_cliques(build::complete(5), 3);
  EXPECT_EQ(list.size(), 10u);
  std::set<std::vector<Vertex>> distinct(list.begin(), list.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (const auto& c : list) EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
}

TEST(Oracle, HasTree) {
  const Graph host = build::grid(3, 3);
  EXPECT_TRUE(oracle::has_tree(host, build::star(4)));   // center has deg 4
  EXPECT_FALSE(oracle::has_tree(host, build::star(5)));  // max degree is 4
  EXPECT_TRUE(oracle::has_tree(host, build::path(9)));   // hamiltonian path
  EXPECT_THROW(oracle::has_tree(host, build::cycle(4)), CheckFailure);
}

// ------------------------------------------------------------------ vf2 --
TEST(Vf2, FindsPlantedPattern) {
  Rng rng(31);
  Graph host = build::gnp(25, 0.08, rng);
  const Graph pattern = build::petersen();
  build::plant_subgraph(host, pattern, rng);
  const auto embedding = find_subgraph(host, pattern);
  ASSERT_TRUE(embedding.has_value());
  EXPECT_TRUE(is_valid_embedding(host, pattern, *embedding));
}

TEST(Vf2, RejectsAbsentPattern) {
  EXPECT_FALSE(contains_subgraph(build::cycle(8), build::complete(3)));
  EXPECT_FALSE(contains_subgraph(build::complete_bipartite(4, 4),
                                 build::cycle(5)));
  EXPECT_FALSE(contains_subgraph(build::path(20), build::star(3)));
}

TEST(Vf2, SubgraphNotInduced) {
  // K4 contains C4 as a (non-induced) subgraph.
  EXPECT_TRUE(contains_subgraph(build::complete(4), build::cycle(4)));
}

TEST(Vf2, AgreesWithCycleOracleOnRandomGraphs) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = build::gnp(14, 0.18, rng);
    for (const Vertex len : {3u, 4u, 5u, 6u}) {
      EXPECT_EQ(contains_subgraph(g, build::cycle(len)),
                oracle::has_cycle_of_length(g, len))
          << "trial " << trial << " len " << len;
    }
  }
}

TEST(Vf2, AgreesWithCliqueOracleOnRandomGraphs) {
  Rng rng(34);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = build::gnp(13, 0.45, rng);
    for (const Vertex s : {3u, 4u, 5u}) {
      EXPECT_EQ(contains_subgraph(g, build::complete(s)),
                oracle::has_clique(g, s))
          << "trial " << trial << " s " << s;
    }
  }
}

TEST(Vf2, EmptyPatternAlwaysEmbeds) {
  EXPECT_TRUE(contains_subgraph(build::path(3), Graph{}));
}

TEST(Vf2, StepBudgetEnforced) {
  SubgraphSearchOptions opts;
  opts.max_steps = 2;
  EXPECT_THROW(
      contains_subgraph(build::complete(12), build::complete(8), opts),
      CheckFailure);
}

TEST(Vf2, ValidEmbeddingChecks) {
  const Graph host = build::cycle(5);
  const Graph pattern = build::path(3);
  EXPECT_TRUE(is_valid_embedding(host, pattern, {0, 1, 2}));
  EXPECT_FALSE(is_valid_embedding(host, pattern, {0, 1, 3}));  // 1-3 no edge
  EXPECT_FALSE(is_valid_embedding(host, pattern, {0, 1, 0}));  // not injective
  EXPECT_FALSE(is_valid_embedding(host, pattern, {0, 1}));     // wrong size
}

}  // namespace
}  // namespace csd
