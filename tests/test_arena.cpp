// Arena frame-plane tests.
//
// The zero-copy delivery path (congest/frame_arena.hpp + the engines' swap
// delivery) must be an invisible optimization: every engine produces the
// same verdicts, metrics, traces, and snapshots it produced when each
// message was an owned heap box. The sweeps here pin that down three ways:
//   * direct FrameArena/FrameSlot unit checks (addressing, reset semantics);
//   * a 50-case differential fuzz sweep (both engines, faults on and off,
//     checkpoint/kill/resume) — any payload aliasing or stale-slot bug in
//     the swap delivery shows up as a cross-engine divergence;
//   * snapshot round trips through the arena-backed inbox log, plus an
//     accounting regression that drives more than 2^32 bits through a run
//     (a 32-bit intermediate anywhere in the counters would wrap).
#include <gtest/gtest.h>

#include <cstdint>

#include "congest/async.hpp"
#include "congest/frame_arena.hpp"
#include "congest/network.hpp"
#include "congest/snapshot.hpp"
#include "detect/pipelined_cycle.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"
#include "graph/builders.hpp"
#include "obs/json.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

// ---------------------------------------------------------------- arena --
TEST(FrameArena, RowsFollowCsrOffsets) {
  const Graph g = build::path(4);  // degrees 1, 2, 2, 1
  const GraphCsr& csr = g.csr();
  detail::FrameArena arena(csr);
  EXPECT_EQ(arena.size(), csr.num_directed_edges());
  EXPECT_EQ(arena.size(), 6u);
  // Row pointers are contiguous slices of one flat allocation, for both the
  // payload and the presence planes.
  EXPECT_EQ(arena.payload_row(0) + 1, arena.payload_row(1));
  EXPECT_EQ(arena.payload_row(1) + 2, arena.payload_row(2));
  EXPECT_EQ(arena.present_row(0) + 1, arena.present_row(1));
  EXPECT_EQ(arena.present_row(1) + 2, arena.present_row(2));
  EXPECT_EQ(&arena.payload(csr.offsets[2] + 1), arena.payload_row(2) + 1);
  EXPECT_EQ(&arena.present(csr.offsets[2] + 1), arena.present_row(2) + 1);
}

TEST(FrameArena, ResetClearsPresenceAndKeepsPayloadStorage) {
  const Graph g = build::complete(3);
  detail::FrameArena arena(g.csr());
  arena.payload(0).append_bits(0xabcdef, 24);
  arena.present(0) = 1;
  const std::uint64_t* storage = arena.payload(0).words().data();
  arena.reset_presence();
  EXPECT_EQ(arena.present(0), 0);
  // Presence is the only truth: the payload keeps its (now unobservable)
  // contents and, after a clear, its heap storage — no reallocation.
  arena.payload(0).clear();
  arena.payload(0).append_bits(0x1, 1);
  EXPECT_EQ(arena.payload(0).words().data(), storage);
}

// ------------------------------------------------------- fuzz sweep ------
testing::AssertionResult clean(const fuzz::FuzzCase& c) {
  const auto divergence = fuzz::check_case(c);
  if (!divergence) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << divergence->check << " — " << divergence->detail;
}

TEST(ArenaDifferential, FiftyGeneratedCasesStayByteIdentical) {
  // A dedicated seed window (disjoint from test_fuzz's) wide enough that
  // the generator covers faulty and fault-free cases on every program
  // family. check_case cross-checks sync vs async (raw and reliable),
  // traces byte-for-byte, the --jobs determinism of run_amplified, and the
  // checkpoint/kill/resume contract — all of which read the arena slots.
  std::uint32_t faulty = 0, fault_free = 0;
  for (std::uint64_t seed = 9000; seed < 9050; ++seed) {
    const fuzz::FuzzCase c = fuzz::generate_case(seed);
    const bool has_faults =
        c.drop > 0.0 || c.corrupt > 0.0 || !c.crashes.empty();
    (has_faults ? faulty : fault_free) += 1;
    EXPECT_TRUE(clean(c)) << "case seed " << seed;
  }
  // The sweep must keep exercising both sides of the fault gate.
  EXPECT_GE(faulty, 10u);
  EXPECT_GE(fault_free, 10u);
}

// ------------------------------------------- snapshot through the arena --
TEST(ArenaSnapshot, InboxLogRoundTripsThroughJson) {
  // The sync inbox log is recorded from the same arena payloads the nodes
  // read; a stale or aliased slot would corrupt the serialized log and
  // break the resumed run. Round-trip through JSON to cover serialization.
  Rng rng(12);
  const Graph g = build::gnp(12, 0.3, rng);
  const auto factory = detect::pipelined_cycle_program(4);
  NetworkConfig cfg;
  cfg.bandwidth = 48;
  cfg.max_rounds = 60;
  cfg.seed = 21;
  cfg.faults.drop = 0.1;
  cfg.faults.corrupt = 0.15;
  cfg.trace.enabled = true;
  cfg.checkpoint_at_round = 4;
  const Network net(g, cfg);
  const auto full = net.run(factory);
  ASSERT_NE(full.checkpoint, nullptr);

  const obs::Json doc = to_json(*full.checkpoint);
  const Snapshot reparsed = snapshot_from_json(obs::Json::parse(doc.dump()));
  const auto resumed = net.resume(factory, reparsed);
  EXPECT_EQ(resumed.verdicts, full.verdicts);
  EXPECT_EQ(resumed.detected, full.detected);
  EXPECT_EQ(resumed.completed, full.completed);
  EXPECT_EQ(resumed.metrics.rounds, full.metrics.rounds);
  EXPECT_EQ(resumed.metrics.messages, full.metrics.messages);
  EXPECT_EQ(resumed.metrics.total_bits, full.metrics.total_bits);
  EXPECT_EQ(resumed.metrics.bits_sent_by_node,
            full.metrics.bits_sent_by_node);
}

TEST(ArenaSnapshot, AsyncInboxLogSurvivesTheRoundTrip) {
  Rng rng(13);
  const Graph g = build::gnp(10, 0.35, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  AsyncConfig cfg;
  cfg.bandwidth = 48;
  cfg.max_pulses = 80;
  cfg.seed = 33;
  cfg.max_delay = 4;
  cfg.recovery.enabled = true;  // turns on the arena-fed inbox log
  cfg.checkpoint_at_pulse = 5;
  const auto full = run_async(g, cfg, factory);
  ASSERT_NE(full.checkpoint, nullptr);

  const obs::Json doc = to_json(*full.checkpoint);
  const Snapshot reparsed = snapshot_from_json(obs::Json::parse(doc.dump()));
  const auto resumed = resume_async(g, cfg, factory, reparsed);
  EXPECT_EQ(resumed.verdicts, full.verdicts);
  EXPECT_EQ(resumed.detected, full.detected);
  EXPECT_EQ(resumed.completed, full.completed);
  EXPECT_EQ(resumed.pulses, full.pulses);
  EXPECT_EQ(resumed.payload_bits, full.payload_bits);
  EXPECT_EQ(resumed.overhead_bits, full.overhead_bits);
}

// ------------------------------------------------ overflow regression ----
/// Broadcasts `payload_bits` of ones every round for `rounds` rounds.
class FirehoseProgram final : public NodeProgram {
 public:
  FirehoseProgram(std::uint64_t payload_bits, std::uint64_t rounds)
      : payload_bits_(payload_bits), rounds_(rounds) {}

  void on_round(NodeApi& api) override {
    if (api.round() >= rounds_) {
      api.halt();
      return;
    }
    api.broadcast(BitVec(static_cast<std::size_t>(payload_bits_), true));
  }

 private:
  std::uint64_t payload_bits_;
  std::uint64_t rounds_;
};

TEST(OverflowRegression, AccountingSurvivesMoreThan32BitsOfTraffic) {
  // Two nodes, unbounded bandwidth, 2^28-bit payloads: 9 rounds of
  // bidirectional broadcast put 2 * 9 * 2^28 = 4.83e9 > 2^32 bits through
  // the counters. A 32-bit intermediate in total_bits, bits_sent_by_node,
  // the per-node trace totals, or the histogram bucketing would wrap.
  constexpr std::uint64_t kPayloadBits = 1ULL << 28;
  constexpr std::uint64_t kRounds = 9;
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.bandwidth = 0;  // LOCAL model: no clamp on the firehose
  cfg.max_rounds = kRounds + 2;
  cfg.seed = 1;
  cfg.trace.enabled = true;
  const auto outcome = run_congest(g, cfg, [&](std::uint32_t) {
    return std::make_unique<FirehoseProgram>(kPayloadBits, kRounds);
  });
  ASSERT_TRUE(outcome.completed);
  const std::uint64_t expected = 2 * kRounds * kPayloadBits;
  ASSERT_GT(expected, std::uint64_t{1} << 32);
  EXPECT_EQ(outcome.metrics.total_bits, expected);
  EXPECT_EQ(outcome.metrics.messages, 2 * kRounds);
  EXPECT_EQ(outcome.metrics.max_message_bits, kPayloadBits);
  ASSERT_EQ(outcome.metrics.bits_sent_by_node.size(), 2u);
  EXPECT_EQ(outcome.metrics.bits_sent_by_node[0], kRounds * kPayloadBits);
  EXPECT_EQ(outcome.metrics.bits_sent_by_node[1], kRounds * kPayloadBits);
  EXPECT_EQ(outcome.trace.total_bits(), expected);
  // 2^28 lands in histogram bucket bit_width(2^28) = 29, counted 2R times.
  ASSERT_GT(outcome.trace.histogram().size(), 29u);
  EXPECT_EQ(outcome.trace.histogram()[29], 2 * kRounds);
}

TEST(OverflowRegression, AsyncPayloadAccountingMatchesAtScale) {
  constexpr std::uint64_t kPayloadBits = 1ULL << 28;
  constexpr std::uint64_t kRounds = 9;
  const Graph g = build::path(2);
  AsyncConfig cfg;
  cfg.bandwidth = 0;
  cfg.max_pulses = kRounds + 2;
  cfg.seed = 1;
  cfg.max_delay = 3;
  const auto outcome = run_async(g, cfg, [&](std::uint32_t) {
    return std::make_unique<FirehoseProgram>(kPayloadBits, kRounds);
  });
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.payload_bits, 2 * kRounds * kPayloadBits);
  // The synchronizer also emits empty frames at the halt pulse, so the
  // frame count only bounds the payload-carrying ones from below.
  EXPECT_GE(outcome.frames, 2 * kRounds);
}

}  // namespace
}  // namespace csd::congest
