// Tests for the §3.4 construction variants and the property-testing
// triangle tester: which rigidifier (marker cliques / triangle bodies)
// forces the Lemma 3.1 equivalence, and what the bipartite failure looks
// like.
#include <gtest/gtest.h>

#include "comm/disjointness.hpp"
#include "detect/triangle_tester.hpp"
#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "lowerbound/variants.hpp"
#include "support/rng.hpp"

namespace csd::lb {
namespace {

// ----------------------------------------------------------- construction --
TEST(Variants, DefaultVariantMatchesPaperConstruction) {
  const ConstructionVariant v{};
  const auto hk = build_hk_variant(2, v);
  const auto reference = build_hk(2);
  EXPECT_EQ(hk.graph.edges(), reference.graph.edges());
}

TEST(Variants, PathBodyRemovesExactlyTheABEdges) {
  const std::uint32_t k = 3;
  ConstructionVariant v;
  v.triangle_body = false;
  const auto full = build_hk(k);
  const auto path = build_hk_variant(k, v);
  EXPECT_EQ(path.graph.num_edges() + 2 * k, full.graph.num_edges());
  for (const Side s : {Side::Top, Side::Bottom})
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_FALSE(
          path.graph.has_edge(path.layout.triangle_vertex(s, i, Corner::A),
                              path.layout.triangle_vertex(s, i, Corner::B)));
      EXPECT_TRUE(
          path.graph.has_edge(path.layout.triangle_vertex(s, i, Corner::A),
                              path.layout.triangle_vertex(s, i, Corner::Mid)));
    }
}

TEST(Variants, StrippedPathVariantIsBipartite) {
  // With triangles and (odd) marker cliques gone, the whole construction
  // becomes bipartite — the §3.4 setting.
  ConstructionVariant v;
  v.triangle_body = false;
  v.markers = false;
  const auto hk = build_hk_variant(2, v);
  EXPECT_TRUE(is_bipartite(strip_isolated(hk.graph)));
  Rng rng(3);
  const auto inst = comm::random_disjointness(16, 0.3, true, rng);
  const auto g = build_gxy_variant(2, 4, inst, v);
  EXPECT_TRUE(is_bipartite(strip_isolated(g.graph)));
}

TEST(Variants, MarkerlessVariantKeepsLayoutIndicesValid) {
  ConstructionVariant v;
  v.markers = false;
  const auto g = build_gxy_variant(2, 4, comm::DisjointnessInstance{16, {}, {}},
                                   v);
  EXPECT_EQ(g.graph.num_vertices(), build_gkn_frame(2, 4).graph.num_vertices());
  // Marker vertices still exist but are isolated.
  EXPECT_EQ(g.graph.degree(g.layout.fixed_vertex(10)), 0u);
  EXPECT_GT(g.graph.degree(g.layout.endpoint(Side::Top, Corner::A, 0)), 0u);
}

TEST(Variants, StripIsolatedDropsOnlyIsolatedVertices) {
  Graph g(5);
  g.add_edge(1, 3);
  const Graph stripped = strip_isolated(g);
  EXPECT_EQ(stripped.num_vertices(), 2u);
  EXPECT_EQ(stripped.num_edges(), 1u);
}

// Rigidity matrix: Lemma 3.1 must hold whenever at least one rigidifier
// (triangle bodies or marker cliques) is present.
struct RigidCase {
  bool triangle_body;
  bool markers;
};

class VariantRigidity : public ::testing::TestWithParam<RigidCase> {};

TEST_P(VariantRigidity, Lemma31HoldsWithAtLeastOneRigidifier) {
  const auto param = GetParam();
  ConstructionVariant v;
  v.triangle_body = param.triangle_body;
  v.markers = param.markers;
  Rng rng(42);
  for (const std::uint32_t k : {1u, 2u}) {
    const auto hk = build_hk_variant(k, v);
    const Graph pattern =
        v.markers ? hk.graph : strip_isolated(hk.graph);
    for (int trial = 0; trial < 8; ++trial) {
      const std::uint32_t n = 4;
      const auto inst = comm::random_disjointness(
          static_cast<std::uint64_t>(n) * n, 0.35, trial % 2 == 0, rng);
      const auto g = build_gxy_variant(k, n, inst, v);
      SubgraphSearchOptions opts;
      opts.max_steps = 200'000'000;
      EXPECT_EQ(contains_subgraph(g.graph, pattern, opts), inst.intersects())
          << "k=" << k << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RigidifierGrid, VariantRigidity,
    ::testing::Values(RigidCase{true, true}, RigidCase{true, false},
                      RigidCase{false, true}),
    [](const ::testing::TestParamInfo<RigidCase>& param_info) {
      return std::string(param_info.param.triangle_body ? "TriBody" : "PathBody") +
             (param_info.param.markers ? "Markers" : "NoMarkers");
    });

TEST(Variants, PathBodyShrinksTheSimulationCut) {
  // The body A-B edges are Alice-Bob cut edges, so the bipartite body
  // *reduces* the cut from 6m+8 to 4m+8 — the §3.4 bound being weaker
  // comes from the gadget's size, not its cut.
  const std::uint32_t k = 2, n = 16;
  ConstructionVariant v;
  v.triangle_body = false;
  const auto g = build_gxy_variant(k, n, comm::DisjointnessInstance{256, {}, {}},
                                   v);
  const auto owner = gkn_ownership(g.layout);
  std::uint64_t cut = 0;
  for (const auto& [a, b] : g.graph.edges()) {
    const bool priv_a = owner[a] != comm::Owner::Shared;
    const bool priv_b = owner[b] != comm::Owner::Shared;
    if ((priv_a || priv_b) && owner[a] != owner[b]) ++cut;
  }
  EXPECT_EQ(cut, 4ull * g.layout.m + 8);
}

TEST(Variants, FullyBipartiteVariantViolatesLemma31) {
  // The naive bipartite construction (path bodies, no markers) admits
  // copies of H'_k on *disjoint* instances: the pattern folds through
  // same-side input edges. This is the §3.4 obstruction that forces the
  // paper's involved bipartite gadget.
  ConstructionVariant v;
  v.triangle_body = false;
  v.markers = false;
  Rng rng(99);
  bool violated = false;
  for (int trial = 0; trial < 30 && !violated; ++trial) {
    const std::uint32_t k = 1, n = 6;
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.5, false, rng);  // disjoint!
    ASSERT_FALSE(inst.intersects());
    const auto hk = build_hk_variant(k, v);
    const auto g = build_gxy_variant(k, n, inst, v);
    SubgraphSearchOptions opts;
    opts.max_steps = 200'000'000;
    const auto embedding =
        find_subgraph(g.graph, strip_isolated(hk.graph), opts);
    if (embedding.has_value()) {
      violated = true;
      EXPECT_TRUE(
          is_valid_embedding(g.graph, strip_isolated(hk.graph), *embedding));
    }
  }
  EXPECT_TRUE(violated)
      << "expected a Lemma 3.1 violation for the naive bipartite variant";
}

}  // namespace
}  // namespace csd::lb

namespace csd::detect {
namespace {

// ---------------------------------------------------------------- tester --
TEST(TriangleTester, RejectsOnlyRealTriangles) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = build::gnp(24, 0.12, rng);
    TriangleTesterConfig cfg;
    cfg.query_rounds = 40;
    const auto outcome = test_triangle_freeness(
        g, cfg, 32, 100 + static_cast<std::uint64_t>(trial));
    if (outcome.detected) {
      EXPECT_TRUE(oracle::has_clique(g, 3)) << "trial " << trial;
    }
  }
}

TEST(TriangleTester, DetectsTriangleDenseGraphs) {
  // Far-from-triangle-free inputs are caught quickly.
  const Graph k12 = build::complete(12);
  TriangleTesterConfig cfg;
  cfg.query_rounds = 16;
  EXPECT_TRUE(test_triangle_freeness(k12, cfg, 32, 1).detected);

  Rng rng(8);
  const Graph dense = build::gnp(40, 0.5, rng);
  EXPECT_TRUE(test_triangle_freeness(dense, cfg, 32, 2).detected);
}

TEST(TriangleTester, AcceptsTriangleFreeGraphs) {
  TriangleTesterConfig cfg;
  cfg.query_rounds = 64;
  EXPECT_FALSE(
      test_triangle_freeness(build::petersen(), cfg, 32, 3).detected);
  EXPECT_FALSE(test_triangle_freeness(build::complete_bipartite(8, 8), cfg,
                                      32, 4)
                   .detected);
  EXPECT_FALSE(test_triangle_freeness(build::grid(6, 6), cfg, 32, 5).detected);
}

TEST(TriangleTester, RoundsAreIndependentOfGraphSize) {
  TriangleTesterConfig cfg;
  cfg.query_rounds = 10;
  Rng rng(9);
  const auto small = test_triangle_freeness(build::gnp(16, 0.4, rng), cfg,
                                            32, 6);
  const auto large = test_triangle_freeness(build::gnp(128, 0.4, rng), cfg,
                                            32, 6);
  EXPECT_EQ(small.metrics.rounds, large.metrics.rounds);
  EXPECT_LE(large.metrics.rounds, triangle_tester_round_budget(cfg) + 1);
}

TEST(TriangleTester, MayMissSingleTriangle) {
  // Property testing is a relaxation: a lone triangle in a large sparse
  // graph is legitimately missable; over many seeds the miss rate at few
  // query rounds must be substantial (this is the gap to the exact
  // problem, which the paper's lower bounds price).
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  for (Vertex hub = 0; hub < 3; ++hub) {
    const Vertex first = g.add_vertices(60);
    for (Vertex leaf = 0; leaf < 60; ++leaf) g.add_edge(hub, first + leaf);
  }
  TriangleTesterConfig cfg;
  cfg.query_rounds = 2;
  int detected = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed)
    detected += test_triangle_freeness(g, cfg, 32, seed).detected;
  EXPECT_LT(detected, 35);  // nowhere near reliable — as expected
}

}  // namespace
}  // namespace csd::detect
