// Tests for the relay-balanced congested-clique router.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "congest/clique_router.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace csd::congest {
namespace {

BitVec payload_of(std::uint64_t value, std::uint64_t bits) {
  BitVec v;
  v.append_bits(value, static_cast<unsigned>(bits));
  return v;
}

std::uint64_t value_of(const BitVec& payload) {
  return payload.read_bits(0, static_cast<unsigned>(payload.size()));
}

TEST(CliqueRouter, DeliversEveryMessageExactlyOnce) {
  Rng rng(1);
  CliqueRouteRequest request;
  request.num_nodes = 12;
  request.payload_bits = 16;
  std::map<Vertex, std::multiset<std::uint64_t>> expected;
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<Vertex>(rng.below(12));
    const auto dst = static_cast<Vertex>(rng.below(12));
    const std::uint64_t value = rng.below(1u << 16);
    request.messages.push_back({src, dst, payload_of(value, 16)});
    expected[dst].insert(value);
  }
  const auto result = route_in_clique(request);
  for (Vertex v = 0; v < 12; ++v) {
    std::multiset<std::uint64_t> got;
    for (const auto& payload : result.delivered[v])
      got.insert(value_of(payload));
    EXPECT_EQ(got, expected[v]) << "node " << v;
  }
}

TEST(CliqueRouter, SelfMessagesAreFree) {
  CliqueRouteRequest request;
  request.num_nodes = 4;
  request.payload_bits = 8;
  request.messages.push_back({2, 2, payload_of(77, 8)});
  const auto result = route_in_clique(request);
  ASSERT_EQ(result.delivered[2].size(), 1u);
  EXPECT_EQ(value_of(result.delivered[2][0]), 77u);
  EXPECT_EQ(result.total_bits, 0u);  // never touched a link
}

TEST(CliqueRouter, HotPairIsSpreadAcrossRelays) {
  // 1000 messages on a single (src, dst) pair: direct delivery would need
  // 1000 rounds; relays spread stage 1 over ~n links.
  const Vertex n = 32;
  CliqueRouteRequest request;
  request.num_nodes = n;
  request.payload_bits = 10;
  for (int i = 0; i < 1000; ++i)
    request.messages.push_back(
        {0, 1, payload_of(static_cast<std::uint64_t>(i), 10)});
  const auto result = route_in_clique(request);
  EXPECT_EQ(result.delivered[1].size(), 1000u);
  // Stage 1 spreads over ~31 relays: ~32 per link; stage 2 converges on
  // node 1 but arrives over ~31 links too.
  EXPECT_LT(result.max_stage1_load, 80u);
  EXPECT_LT(result.rounds, 200u);  // far below the 1000 direct rounds
}

TEST(CliqueRouter, BudgetIsRespectedAndTight) {
  Rng rng(7);
  CliqueRouteRequest request;
  request.num_nodes = 10;
  request.payload_bits = 12;
  for (int i = 0; i < 200; ++i)
    request.messages.push_back({static_cast<Vertex>(rng.below(10)),
                                static_cast<Vertex>(rng.below(10)),
                                payload_of(rng.below(1u << 12), 12)});
  const auto budget = clique_route_round_budget(request);
  const auto result = route_in_clique(request);
  EXPECT_LE(result.rounds, budget + 2);
}

TEST(CliqueRouter, RejectsMalformedRequests) {
  CliqueRouteRequest request;
  request.num_nodes = 4;
  request.payload_bits = 8;
  request.messages.push_back({0, 9, payload_of(1, 8)});  // dst out of range
  EXPECT_THROW(route_in_clique(request), CheckFailure);

  request.messages.clear();
  request.messages.push_back({0, 1, payload_of(1, 4)});  // width mismatch
  EXPECT_THROW(route_in_clique(request), CheckFailure);

  request.messages.clear();
  request.messages.push_back({0, 1, payload_of(1, 8)});
  request.bandwidth = 4;  // too small for a record
  EXPECT_THROW(route_in_clique(request), CheckFailure);
}

TEST(CliqueRouter, DeterministicGivenSalt) {
  Rng rng(9);
  CliqueRouteRequest request;
  request.num_nodes = 8;
  request.payload_bits = 8;
  for (int i = 0; i < 100; ++i)
    request.messages.push_back({static_cast<Vertex>(rng.below(8)),
                                static_cast<Vertex>(rng.below(8)),
                                payload_of(rng.below(256), 8)});
  const auto a = route_in_clique(request);
  const auto b = route_in_clique(request);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_bits, b.total_bits);
  for (Vertex v = 0; v < 8; ++v)
    EXPECT_EQ(a.delivered[v].size(), b.delivered[v].size());
}

TEST(CliqueRouter, EmptyRequestCompletesImmediately) {
  CliqueRouteRequest request;
  request.num_nodes = 5;
  request.payload_bits = 8;
  const auto result = route_in_clique(request);
  EXPECT_EQ(result.total_bits, 0u);
  for (const auto& per_node : result.delivered) EXPECT_TRUE(per_node.empty());
}

}  // namespace
}  // namespace csd::congest
