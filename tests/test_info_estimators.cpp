// Tests for the flat-table entropy estimators behind the batched §5
// measurement path: the information-theoretic identities the plug-in
// estimators must satisfy exactly (chain rule), the determinism contract of
// the flat open-addressing backing (insertion order, reserve hints, and
// capacity history must never change a result bit), the overflow and
// zero-weight guards near 2^64, and the raw-vs-clamped accessor contract
// the bootstrap fits rely on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "info/entropy.hpp"
#include "info/flat_counts.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::info {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

/// A deterministic, moderately skewed sample set: (x, y, weight) triples
/// with correlated coordinates so no entropy is degenerate.
std::vector<std::array<std::uint64_t, 3>> correlated_samples(
    std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<std::array<std::uint64_t, 3>> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t x = rng.below(13);
    const std::uint64_t y = (x * 7 + rng.below(5)) % 17;
    samples.push_back({x, y, 1 + rng.below(9)});
  }
  return samples;
}

// ------------------------------------------------------------ chain rule --
TEST(InfoEstimators, ChainRuleJointEqualsMarginalPlusConditional) {
  JointDistribution joint;
  for (const auto& [x, y, w] : correlated_samples(41, 4000)) joint.add(x, y, w);
  // H(X,Y) = H(Y) + H(X|Y). The raw conditional entropy is defined as the
  // difference H(X,Y) - H(Y), so the identity holds to rounding only when
  // re-associated — NEAR, not EQ.
  EXPECT_NEAR(joint.entropy_joint(),
              joint.entropy_y() + joint.conditional_entropy_x_given_y_raw(),
              1e-12);
  EXPECT_NEAR(joint.mutual_information_raw(),
              joint.entropy_x() - joint.conditional_entropy_x_given_y_raw(),
              1e-12);
}

// ------------------------------------------- determinism of the flat fold --
TEST(InfoEstimators, InsertionOrderAndReserveHintsNeverChangeABit) {
  const auto samples = correlated_samples(42, 3000);

  JointDistribution forward;
  for (const auto& [x, y, w] : samples) forward.add(x, y, w);

  JointDistribution reversed;
  for (auto it = samples.rbegin(); it != samples.rend(); ++it)
    reversed.add((*it)[0], (*it)[1], (*it)[2]);

  JointDistribution hinted;
  hinted.reserve(4096, 4096);  // vastly oversized: different capacity history
  for (const auto& [x, y, w] : samples) hinted.add(x, y, w);

  for (const JointDistribution* other : {&reversed, &hinted}) {
    EXPECT_EQ(forward.total(), other->total());
    // Bit-for-bit: the fold runs in canonical sorted_items() order, so the
    // doubles must be identical, not merely close.
    EXPECT_EQ(forward.entropy_x(), other->entropy_x());
    EXPECT_EQ(forward.entropy_y(), other->entropy_y());
    EXPECT_EQ(forward.entropy_joint(), other->entropy_joint());
    EXPECT_EQ(forward.mutual_information_raw(),
              other->mutual_information_raw());
    EXPECT_EQ(forward.conditional_entropy_x_given_y_raw(),
              other->conditional_entropy_x_given_y_raw());
  }
}

TEST(InfoEstimators, FlatFoldMatchesOrderedMapReferenceBitForBit) {
  const auto samples = correlated_samples(43, 2500);
  FlatCounts flat;
  std::map<std::uint64_t, std::uint64_t> reference;
  std::uint64_t total = 0;
  for (const auto& [x, y, w] : samples) {
    const std::uint64_t key = x * 1000 + y;
    flat.add(key, w);
    reference[key] += w;
    total += w;
  }
  ASSERT_EQ(flat.total(), total);
  ASSERT_EQ(flat.distinct(), reference.size());

  // Replicate the entropy fold over the std::map (already in ascending key
  // order) and require bit-identity with the sorted_items() fold.
  double expected = 0.0;
  for (const auto& [key, count] : reference) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    expected -= p * std::log2(p);
  }
  double actual = 0.0;
  for (const auto& item : flat.sorted_items()) {
    EXPECT_EQ(item.count, reference.at(item.key));
    const double p =
        static_cast<double>(item.count) / static_cast<double>(total);
    actual -= p * std::log2(p);
  }
  EXPECT_EQ(actual, expected);
}

TEST(InfoEstimators, ConditionalMiIsSliceOrderInvariant) {
  const auto samples = correlated_samples(44, 3000);
  ConditionalMutualInformation forward;
  ConditionalMutualInformation reversed;
  ConditionalMutualInformation hinted;
  hinted.reserve(64, 512);
  for (const auto& [x, y, w] : samples) forward.add(y % 3, x, y, w);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it)
    reversed.add((*it)[1] % 3, (*it)[0], (*it)[1], (*it)[2]);
  for (const auto& [x, y, w] : samples) hinted.add(y % 3, x, y, w);

  EXPECT_EQ(forward.value(), reversed.value());
  EXPECT_EQ(forward.value(), hinted.value());
  EXPECT_EQ(forward.value_raw(), reversed.value_raw());
  EXPECT_EQ(forward.value_raw(), hinted.value_raw());
  EXPECT_EQ(forward.total(), reversed.total());
}

// ----------------------------------------------------- raw vs clamped ----
TEST(InfoEstimators, ClampedAccessorsAreExactlyMaxOfZeroAndRaw) {
  // Sparse high-cardinality sample: the plug-in MI of an independent pair
  // goes *negative*-biased only via float noise, so also build a case where
  // raw is genuinely tiny and check the clamp algebraically either way.
  Rng rng(45);
  JointDistribution joint;
  for (int i = 0; i < 512; ++i) joint.add(rng.below(2), rng.below(2));
  EXPECT_EQ(joint.mutual_information(),
            std::max(0.0, joint.mutual_information_raw()));
  EXPECT_EQ(joint.conditional_entropy_x_given_y(),
            std::max(0.0, joint.conditional_entropy_x_given_y_raw()));

  ConditionalMutualInformation cmi;
  for (int i = 0; i < 512; ++i) cmi.add(rng.below(3), rng.below(2), rng.below(2));
  // Clamping per slice can only increase the weighted average.
  EXPECT_GE(cmi.value(), cmi.value_raw());
}

// ------------------------------------------------------- weight guards ---
TEST(InfoEstimators, WeightOverflowNear2To64Throws) {
  FlatCounts counts;
  counts.add(7, kU64Max - 10);
  EXPECT_EQ(counts.total(), kU64Max - 10);
  EXPECT_THROW(counts.add(8, 11), CheckFailure);
  // The failed add must not have corrupted the table.
  EXPECT_EQ(counts.total(), kU64Max - 10);
  EXPECT_EQ(counts.count(7), kU64Max - 10);
  counts.add(8, 10);  // exactly reaching 2^64 - 1 is fine
  EXPECT_EQ(counts.total(), kU64Max);

  FlatPairCounts pairs;
  pairs.add(1, 2, kU64Max - 3);
  EXPECT_THROW(pairs.add(1, 2, 4), CheckFailure);
  EXPECT_EQ(pairs.count(1, 2), kU64Max - 3);

  JointDistribution joint;
  joint.add(0, 0, kU64Max - 1);
  EXPECT_THROW(joint.add(0, 1, 2), CheckFailure);
}

TEST(InfoEstimators, ZeroWeightSamplesAreRejected) {
  FlatCounts counts;
  EXPECT_THROW(counts.add(3, 0), CheckFailure);
  FlatPairCounts pairs;
  EXPECT_THROW(pairs.add(3, 4, 0), CheckFailure);
  JointDistribution joint;
  EXPECT_THROW(joint.add(1, 1, 0), CheckFailure);
  ConditionalMutualInformation cmi;
  EXPECT_THROW(cmi.add(0, 1, 1, 0), CheckFailure);
}

// ------------------------------------------------------ table mechanics --
TEST(InfoEstimators, FlatCountsSurvivesRehashAndAdversarialKeys) {
  // Keys chosen to collide in small tables (multiples of the capacity) plus
  // boundary keys; grow far past several rehashes and verify every count.
  FlatCounts counts;
  std::map<std::uint64_t, std::uint64_t> reference;
  Rng rng(46);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key =
        i % 3 == 0 ? static_cast<std::uint64_t>(i) * 16
        : i % 3 == 1 ? kU64Max - rng.below(32)
                     : rng();
    const std::uint64_t w = 1 + rng.below(4);
    counts.add(key, w);
    reference[key] += w;
  }
  ASSERT_EQ(counts.distinct(), reference.size());
  for (const auto& [key, count] : reference)
    EXPECT_EQ(counts.count(key), count);
  EXPECT_EQ(counts.count(123456789), reference.count(123456789) ? 1u : 0u);

  const auto items = counts.sorted_items();
  ASSERT_EQ(items.size(), reference.size());
  auto it = reference.begin();
  for (const auto& item : items) {
    EXPECT_EQ(item.key, it->first);
    EXPECT_EQ(item.count, it->second);
    ++it;
  }
}

TEST(InfoEstimators, FlatIndexAssignsDensePositionsInFirstSightOrder) {
  FlatIndex index;
  EXPECT_EQ(index.find(99), FlatIndex::npos);
  EXPECT_EQ(index.find_or_insert(10), 0u);
  EXPECT_EQ(index.find_or_insert(20), 1u);
  EXPECT_EQ(index.find_or_insert(10), 0u);  // stable on re-sight
  for (std::uint64_t k = 0; k < 300; ++k) index.find_or_insert(1000 + k);
  EXPECT_EQ(index.size(), 302u);
  EXPECT_EQ(index.find(20), 1u);
  EXPECT_EQ(index.find(1299), 301u);
  EXPECT_EQ(index.find(99), FlatIndex::npos);
}

}  // namespace
}  // namespace csd::info
