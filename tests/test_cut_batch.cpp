// Tests for the batched measurement data path: simulate_across_cut_batch's
// bit-identity to the sequential simulator at every jobs count, the
// on_message chaining contract (the regression behind the instrumentation
// bugfix sweep), round-keyed max-bits accounting, the batched one-round
// evaluator, the bit-sliced disjointness batch, the bootstrap exponent
// fits, and the sampled transcript-collision probe.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "comm/cut_simulator.hpp"
#include "comm/disjointness.hpp"
#include "detect/triangle.hpp"
#include "graph/builders.hpp"
#include "lowerbound/fooling.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/oneround.hpp"
#include "obs/lb_fit.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace csd::comm {
namespace {

// ----------------------------------------------- batch vs sequential ----
TEST(CutBatch, BatchMatchesSequentialBitForBitAtEveryJobsCount) {
  const auto frame = lb::build_gkn_frame(2, 16);
  const auto owner = lb::gkn_ownership(frame.layout);
  congest::NetworkConfig cfg;
  cfg.bandwidth = 16;
  cfg.max_rounds = 4;
  const auto factory = random_traffic_program(2);
  const std::vector<std::uint64_t> seeds = {11, 12, 13, 14, 15, 16};

  // Sequential oracle: one simulate_across_cut per seed.
  std::vector<CutCost> expected;
  for (const std::uint64_t s : seeds) {
    congest::NetworkConfig per_seed = cfg;
    per_seed.seed = s;
    expected.push_back(simulate_across_cut(frame.graph, owner, per_seed,
                                           factory));
  }
  const std::uint64_t structural = count_cut_edges(frame.graph, owner);

  for (const unsigned jobs : {1u, 2u, 5u}) {
    const auto batch = simulate_across_cut_batch(frame.graph, owner, cfg,
                                                 factory, seeds, jobs);
    ASSERT_EQ(batch.size(), seeds.size()) << "jobs " << jobs;
    EXPECT_EQ(batch.cut_edges, structural);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(batch.seeds[i], seeds[i]);
      EXPECT_EQ(batch.bits_alice_to_bob[i], expected[i].bits_alice_to_bob)
          << "jobs " << jobs << " seed " << seeds[i];
      EXPECT_EQ(batch.bits_bob_to_alice[i], expected[i].bits_bob_to_alice);
      EXPECT_EQ(batch.crossing_messages[i], expected[i].crossing_messages);
      EXPECT_EQ(batch.max_bits_per_round[i], expected[i].max_bits_per_round);
      EXPECT_EQ(batch.rounds[i], expected[i].outcome.metrics.rounds);
      EXPECT_EQ(batch.cut_edges, expected[i].cut_edges);
    }
  }
}

TEST(CutBatch, TrafficProgramIsSeedDeterministicWithSeedDependentSpread) {
  const Graph g = build::path(5);
  const std::vector<Owner> owner = {Owner::Alice, Owner::Alice, Owner::Shared,
                                    Owner::Bob, Owner::Bob};
  congest::NetworkConfig cfg;
  cfg.bandwidth = 24;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  const auto a = simulate_across_cut_batch(g, owner, cfg,
                                           random_traffic_program(3), seeds);
  const auto b = simulate_across_cut_batch(g, owner, cfg,
                                           random_traffic_program(3), seeds);
  bool any_spread = false;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(a.total_crossing_bits(i), b.total_crossing_bits(i));
    EXPECT_GT(a.total_crossing_bits(i), 0u);
    any_spread |= a.total_crossing_bits(i) != a.total_crossing_bits(0);
  }
  // The probe exists to give multi-seed batches nonzero spread.
  EXPECT_TRUE(any_spread);
}

// -------------------------------------------------- on_message chaining --
TEST(CutBatch, CallerOnMessageHookIsChainedNotClobbered) {
  const Graph g = build::path(3);
  const std::vector<Owner> owner = {Owner::Alice, Owner::Shared, Owner::Bob};
  const auto factory = random_traffic_program(2);
  const std::vector<std::uint64_t> seeds = {21, 22, 23};

  // Per-seed sequential runs, counting every delivered message by hand.
  std::uint64_t sequential_calls = 0;
  std::vector<CutCost> expected;
  for (const std::uint64_t s : seeds) {
    congest::NetworkConfig cfg;
    cfg.bandwidth = 8;
    cfg.seed = s;
    cfg.on_message = [&sequential_calls](std::uint64_t, std::uint32_t,
                                         std::uint32_t, std::uint64_t) {
      ++sequential_calls;
    };
    expected.push_back(simulate_across_cut(g, owner, cfg, factory));
  }
  // The simulator must observe crossing traffic even though the caller
  // installed its own hook first — the regression this sweep fixed.
  EXPECT_GT(sequential_calls, 0u);
  for (const auto& cost : expected) EXPECT_GT(cost.total_crossing_bits(), 0u);

  // Batched path, jobs > 1: the chained hook must fire for every delivery
  // of every seed, concurrently, without perturbing the accounting.
  std::atomic<std::uint64_t> batch_calls{0};
  congest::NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.on_message = [&batch_calls](std::uint64_t, std::uint32_t, std::uint32_t,
                                  std::uint64_t) {
    batch_calls.fetch_add(1, std::memory_order_relaxed);
  };
  const auto batch =
      simulate_across_cut_batch(g, owner, cfg, factory, seeds, 2);
  EXPECT_EQ(batch_calls.load(), sequential_calls);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_EQ(batch.total_crossing_bits(i),
              expected[i].total_crossing_bits());
}

// --------------------------------------------- round-keyed bit account --
TEST(CutBatch, MaxBitsPerRoundTracksTheLoudestRoundNotTheLast) {
  // Per-round crossing profile 4, 24, 4 bits: an accounting that only
  // watches the current round (or assumes the loudest round is the final
  // one) reports 4; the round-keyed accounting must report 24.
  class PulseProgram final : public congest::NodeProgram {
   public:
    void on_round(congest::NodeApi& api) override {
      const std::uint64_t width = api.round() == 1 ? 12 : 2;
      BitVec payload(width, true);
      api.broadcast(payload);
      if (api.round() == 2) api.halt();
    }
  };
  const Graph g = build::path(3);
  const std::vector<Owner> owner = {Owner::Alice, Owner::Shared, Owner::Bob};
  congest::NetworkConfig cfg;
  cfg.bandwidth = 16;
  const auto factory = [](std::uint32_t) {
    return std::make_unique<PulseProgram>();
  };
  const auto cost = simulate_across_cut(g, owner, cfg, factory);
  // Round 1: A→shared 12 + B→shared 12 crossing bits.
  EXPECT_EQ(cost.max_bits_per_round, 24u);
  EXPECT_EQ(cost.total_crossing_bits(), 2u * (2 + 12 + 2));

  const auto batch = simulate_across_cut_batch(g, owner, cfg, factory,
                                               {1, 2}, 2);
  EXPECT_EQ(batch.max_bits_per_round[0], 24u);
  EXPECT_EQ(batch.max_bits_per_round[1], 24u);
}

// -------------------------------------------- batched one-round sweeps --
TEST(CutBatch, OneRoundBatchIsBitIdenticalToSequentialEvaluation) {
  const auto bloom = lb::make_bloom_protocol(7);
  const std::vector<std::uint64_t> seeds = {31, 32, 33};
  std::vector<lb::OneRoundStats> expected;
  for (const std::uint64_t s : seeds)
    expected.push_back(lb::evaluate_one_round(*bloom, 32, 24, 200, s));

  for (const unsigned jobs : {1u, 3u}) {
    const auto rows =
        lb::evaluate_one_round_batch(*bloom, 32, 24, 200, seeds, {jobs});
    ASSERT_EQ(rows.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(rows[i].error, expected[i].error) << "jobs " << jobs;
      EXPECT_EQ(rows[i].false_negative, expected[i].false_negative);
      EXPECT_EQ(rows[i].false_positive, expected[i].false_positive);
      EXPECT_EQ(rows[i].info_messages_raw, expected[i].info_messages_raw);
      EXPECT_EQ(rows[i].info_messages_null_raw,
                expected[i].info_messages_null_raw);
    }
  }
}

TEST(CutBatch, FastSamplingIsJobsInvariantAndGatedOnInvariance) {
  const auto bloom = lb::make_bloom_protocol(7);
  lb::OneRoundBatchOptions fast;
  fast.fast_sampling = true;
  fast.jobs = 1;
  const auto one = lb::evaluate_one_round_batch(*bloom, 32, 24, 400, {41}, fast);
  fast.jobs = 3;
  const auto three =
      lb::evaluate_one_round_batch(*bloom, 32, 24, 400, {41}, fast);
  EXPECT_EQ(one[0].error, three[0].error);
  EXPECT_EQ(one[0].info_messages_raw, three[0].info_messages_raw);

  // A protocol that does not declare permutation invariance must not be
  // evaluated through the permutation-free sampler.
  class OpaqueProtocol final : public lb::OneRoundProtocol {
   public:
    std::string name() const override { return "opaque"; }
    BitVec message(const lb::SpecialInput&, std::uint64_t bandwidth,
                   Rng&) const override {
      return BitVec(bandwidth, false);
    }
    bool rejects(const lb::GtSample&, std::uint32_t, const BitVec*,
                 const BitVec*, std::uint64_t) const override {
      return false;
    }
  };
  const OpaqueProtocol opaque;
  EXPECT_THROW(lb::evaluate_one_round_batch(opaque, 16, 8, 50, {1}, fast),
               CheckFailure);
}

TEST(CutBatch, InteractiveSlicedIsExactAboveTheQueryWidth) {
  const std::uint64_t n = 64;
  const std::uint64_t query_bits = wire::bits_for(n * n * n) + 1;
  const auto exact = lb::evaluate_interactive_sliced(n, query_bits, 1 << 16, 71);
  EXPECT_EQ(exact.error, 0.0);  // exactly: the protocol answers correctly
  const auto starved = lb::evaluate_interactive_sliced(n, 8, 1 << 16, 71);
  // Without room for the query the decision degenerates to the trivial
  // predictor: error 1/8 (the all-edges-present cell of μ).
  EXPECT_NEAR(starved.error, 0.125, 0.01);
}

// -------------------------------------------- disjointness lane batch ---
TEST(CutBatch, DisjointnessLanesScatterBackToConsistentScalars) {
  Rng rng(51);
  const std::uint64_t force_mask = 0b0101;
  const auto batch = random_disjointness_batch(200, 0.3, force_mask, 4, rng);
  EXPECT_EQ(batch.count, 4u);
  EXPECT_EQ(batch.lane_mask(), 0b1111u);
  const std::uint64_t mask = batch.intersect_mask();
  EXPECT_EQ(mask & force_mask, force_mask);
  for (std::uint32_t i = 0; i < batch.count; ++i) {
    const auto scalar = batch.instance(i);
    EXPECT_EQ(scalar.universe, 200u);
    EXPECT_EQ(scalar.intersects(), (mask >> i & 1) != 0) << "lane " << i;
    EXPECT_EQ((force_mask >> i & 1) != 0, scalar.intersects()) << "lane " << i;
    for (const std::uint64_t e : scalar.x) EXPECT_LT(e, 200u);
    for (const std::uint64_t e : scalar.y) EXPECT_LT(e, 200u);
  }
}

// ----------------------------------------------------- bootstrap fits ---
TEST(CutBatch, BootstrapFitRecoversExponentDeterministically) {
  // y = 2 x^0.7 with small multiplicative per-seed jitter.
  Rng rng(61);
  std::vector<std::pair<double, double>> xy;
  for (const double x : {16.0, 32.0, 64.0, 128.0, 256.0})
    for (int s = 0; s < 5; ++s) {
      const double jitter = 0.97 + 0.06 * static_cast<double>(rng.below(1000)) / 1000.0;
      xy.emplace_back(x, 2.0 * std::pow(x, 0.7) * jitter);
    }
  const auto fit = obs::bootstrap_power_law(xy, 300, 9);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->fit.exponent, 0.7, 0.05);
  EXPECT_LE(fit->exponent_lo, fit->exponent_hi);
  EXPECT_NEAR(fit->exponent_lo, 0.7, 0.08);
  EXPECT_NEAR(fit->exponent_hi, 0.7, 0.08);
  EXPECT_EQ(fit->dropped_points, 0u);

  // Deterministic: the same inputs give bit-identical intervals.
  const auto again = obs::bootstrap_power_law(xy, 300, 9);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(fit->fit.exponent, again->fit.exponent);
  EXPECT_EQ(fit->exponent_lo, again->exponent_lo);
  EXPECT_EQ(fit->exponent_hi, again->exponent_hi);

  // resamples == 0: the interval degenerates to the point estimate.
  const auto point = obs::bootstrap_power_law(xy, 0, 9);
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(point->exponent_lo, point->fit.exponent);
  EXPECT_EQ(point->exponent_hi, point->fit.exponent);
}

// --------------------------------------- sampled transcript collisions --
TEST(CutBatch, TranscriptSamplingIsJobsInvariantAndPressureSensitive) {
  const auto report_at = [](std::uint32_t c, unsigned jobs) {
    lb::FoolingConfig cfg;
    cfg.namespace_size = 24;
    cfg.algorithm = detect::id_exchange_triangle_program(c);
    cfg.bandwidth = 64;
    cfg.max_rounds = 8;
    return lb::sample_transcript_collisions(cfg, 500, 9, jobs);
  };
  const auto seq = report_at(3, 1);
  const auto fan = report_at(3, 3);
  EXPECT_EQ(seq.samples, 500u);
  EXPECT_EQ(seq.part_size, 8u);
  EXPECT_EQ(seq.distinct_transcripts, fan.distinct_transcripts);
  EXPECT_EQ(seq.largest_class, fan.largest_class);
  EXPECT_EQ(seq.collision_pairs, fan.collision_pairs);
  EXPECT_EQ(seq.max_total_bits_per_node, fan.max_total_bits_per_node);
  EXPECT_EQ(seq.all_triangles_rejected, fan.all_triangles_rejected);

  // Fewer budget bits -> more pigeonhole pressure: colliding pairs track
  // C(S,2)/2^(3c), so each extra bit cuts them 8-fold. (Beyond c = 3 the
  // truncated ids are already injective on a part of size 8, so the curve
  // flattens at the duplicate-triple floor — stay below that.)
  EXPECT_GT(report_at(1, 1).collision_pairs, report_at(2, 1).collision_pairs);
  EXPECT_GT(report_at(2, 1).collision_pairs, seq.collision_pairs);
}

}  // namespace
}  // namespace csd::comm
