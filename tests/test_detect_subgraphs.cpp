// Tests for the non-cycle detection algorithms: universal collection,
// K_s detection via neighborhood exchange, the triangle/hexagon ID-exchange
// distinguisher, color-coding tree detection, and congested-clique K_s
// listing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "detect/clique_detect.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/clique_listing.hpp"
#include "detect/collect.hpp"
#include "detect/tree_detect.hpp"
#include "detect/triangle_tester.hpp"
#include "detect/triangle.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::detect {
namespace {

// -------------------------------------------------------------- collect --
TEST(Collect, EveryNodeLearnsTheWholeGraph) {
  Rng rng(5);
  Graph g = build::random_tree(18, rng);  // connected host
  for (int extra = 0; extra < 10; ++extra)
    g.add_edge_if_absent(static_cast<Vertex>(rng.below(18)),
                         static_cast<Vertex>(rng.below(18)));
  std::uint64_t checks = 0;
  const auto outcome = detect_by_collection(
      g,
      [&](const Graph& collected) {
        ++checks;
        EXPECT_EQ(collected.num_edges(), g.num_edges());
        for (const auto& [u, v] : g.edges())
          EXPECT_TRUE(collected.has_edge(u, v));
        return false;
      },
      32, 1);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(checks, g.num_vertices());
}

TEST(Collect, DetectsViaPredicate) {
  const Graph g = build::petersen();
  const auto outcome = detect_by_collection(
      g,
      [](const Graph& collected) {
        return oracle::has_cycle_of_length(collected, 5);
      },
      32, 2);
  EXPECT_TRUE(outcome.detected);
}

TEST(Collect, RoundsScaleWithEdges) {
  Rng rng(6);
  const Graph small = build::gnm(20, 30, rng);
  const Graph large = build::gnm(20, 120, rng);
  const auto fast = detect_by_collection(
      small, [](const Graph&) { return false; }, 32, 1);
  const auto slow = detect_by_collection(
      large, [](const Graph&) { return false; }, 32, 1);
  EXPECT_LT(fast.metrics.rounds, slow.metrics.rounds);
}

TEST(Collect, WorksOnDisconnectedGraphs) {
  // Collection is per-component; the checker sees at least its component.
  const Graph g = build::disjoint_copies(build::cycle(3), 2);
  const auto outcome = detect_by_collection(
      g, [](const Graph& c) { return oracle::has_cycle_of_length(c, 3); },
      16, 3);
  EXPECT_TRUE(outcome.detected);
}

TEST(Collect, LocalBallHasCorrectRadius) {
  const Graph g = build::path(9);
  congest::NetworkConfig cfg;
  cfg.bandwidth = 0;  // LOCAL
  cfg.max_rounds = 10;
  std::vector<std::uint64_t> edge_counts(9, 0);
  std::uint32_t probe = 0;
  auto outcome = congest::run_congest(
      g, cfg,
      local_ball_program(2, [&](const Graph& ball) {
        edge_counts[probe++ % 9] = ball.num_edges();
        return false;
      }));
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.metrics.rounds, 2u);  // r rounds for a radius-r ball
  // Middle vertices see 4 path edges within distance 2; note checkers run
  // in topology order. Vertex 4's radius-2 ball on a path has 4 edges.
  EXPECT_EQ(edge_counts[4], 4u);
  EXPECT_EQ(edge_counts[0], 2u);  // endpoint sees 2 edges
}

TEST(Collect, LocalBallRequiresUnboundedBandwidth) {
  const Graph g = build::path(3);
  congest::NetworkConfig cfg;
  cfg.bandwidth = 16;
  EXPECT_THROW(congest::run_congest(
                   g, cfg, local_ball_program(1, [](const Graph&) {
                     return false;
                   })),
               CheckFailure);
}

TEST(Collect, LocalDetectorMatchesOracleOnArbitraryPatterns) {
  // The §1 LOCAL algorithm: O(|H|) rounds, exact, any connected pattern.
  Rng rng(23);
  const Graph patterns[] = {build::cycle(5), build::petersen(),
                            build::star(3), build::complete(4),
                            build::path(6)};
  for (int trial = 0; trial < 6; ++trial) {
    const Graph host = build::gnp(18, 0.25, rng);
    for (const Graph& pattern : patterns) {
      const auto outcome = detect_subgraph_local(host, pattern);
      EXPECT_TRUE(outcome.completed);
      EXPECT_EQ(outcome.detected, contains_subgraph(host, pattern))
          << "trial " << trial;
      EXPECT_LE(outcome.metrics.rounds, pattern.num_vertices() + 1);
    }
  }
}

TEST(Collect, LocalDetectorRejectsDisconnectedPatterns) {
  EXPECT_THROW(
      detect_subgraph_local(build::grid(3, 3),
                            build::disjoint_copies(build::path(2), 2)),
      CheckFailure);
}

// -------------------------------------------------------- clique detect --
TEST(CliqueDetect, TriangleOnCanonicalGraphs) {
  EXPECT_TRUE(detect_clique(build::complete(3), 3, 32, 1).detected);
  EXPECT_TRUE(detect_clique(build::complete(8), 3, 32, 1).detected);
  EXPECT_FALSE(detect_clique(build::cycle(6), 3, 32, 1).detected);
  EXPECT_FALSE(detect_clique(build::petersen(), 3, 32, 1).detected);
  EXPECT_FALSE(
      detect_clique(build::complete_bipartite(5, 5), 3, 32, 1).detected);
}

TEST(CliqueDetect, MatchesOracleOnRandomGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = build::gnp(16, 0.35, rng);
    for (const std::uint32_t s : {3u, 4u, 5u}) {
      EXPECT_EQ(detect_clique(g, s, 24, 1).detected, oracle::has_clique(g, s))
          << "trial " << trial << " s=" << s;
    }
  }
}

TEST(CliqueDetect, DeterministicAlgorithmIgnoresSeed) {
  Rng rng(8);
  const Graph g = build::gnp(14, 0.3, rng);
  EXPECT_EQ(detect_clique(g, 4, 24, 1).detected,
            detect_clique(g, 4, 24, 999).detected);
}

TEST(CliqueDetect, RoundsScaleInverselyWithBandwidth) {
  const Graph g = build::complete(20);
  const auto narrow = detect_clique(g, 3, 8, 1);
  const auto wide = detect_clique(g, 3, 64, 1);
  EXPECT_TRUE(narrow.detected);
  EXPECT_TRUE(wide.detected);
  EXPECT_GT(narrow.metrics.rounds, wide.metrics.rounds);
}

TEST(CliqueDetect, SparseGraphsFinishFast) {
  // Nodes halt when their own exchange completes: a path needs O(1) rounds.
  const Graph g = build::path(200);
  const auto outcome = detect_clique(g, 3, 32, 1);
  EXPECT_FALSE(outcome.detected);
  EXPECT_LE(outcome.metrics.rounds, 6u);
}

TEST(CliqueDetect, HandlesIsolatedVertices) {
  Graph g(5);
  g.add_edge(0, 1);
  EXPECT_FALSE(detect_clique(g, 3, 16, 1).detected);
  EXPECT_TRUE(detect_clique(g, 2, 16, 1).detected);  // an edge is a K_2
}

TEST(MinBandwidth, HelpersMatchTheAlgorithmsContracts) {
  // Every detector must run at exactly its advertised minimum bandwidth
  // and refuse one bit less.
  const Graph host = build::complete(6);
  const auto b_clique = clique_detect_min_bandwidth(6);
  EXPECT_TRUE(detect_clique(host, 3, b_clique, 1).detected);
  EXPECT_THROW(detect_clique(host, 3, b_clique - 1, 1), CheckFailure);

  const auto b_collect = collect_min_bandwidth(6);
  EXPECT_TRUE(detect_by_collection(
                  host, [](const Graph& c) { return c.num_edges() == 15; },
                  b_collect, 1)
                  .detected);
  EXPECT_THROW(detect_by_collection(
                   host, [](const Graph&) { return false; }, b_collect - 1, 1),
               CheckFailure);

  const auto b_pipe = pipelined_cycle_min_bandwidth(6, 3);
  detect::PipelinedCycleConfig pcfg;
  pcfg.length = 3;
  pcfg.repetitions = 200;
  EXPECT_TRUE(detect_cycle_pipelined(host, pcfg, b_pipe, 1).detected);
  EXPECT_THROW(detect_cycle_pipelined(host, pcfg, b_pipe - 1, 1),
               CheckFailure);

  TriangleTesterConfig tcfg;
  tcfg.query_rounds = 16;
  const auto b_tester = triangle_tester_min_bandwidth(6);
  EXPECT_TRUE(test_triangle_freeness(host, tcfg, b_tester, 1).detected);
  EXPECT_THROW(test_triangle_freeness(host, tcfg, b_tester - 1, 1),
               CheckFailure);

  detect::CliqueListingResult sink;
  const auto b_list = clique_listing_min_bandwidth(6);
  list_cliques_congested_clique(host, 3, b_list, &sink);
  EXPECT_EQ(sink.total(), 20u);
  EXPECT_THROW(list_cliques_congested_clique(host, 3, b_list - 1, &sink),
               CheckFailure);
}

// ------------------------------------------------------ triangle vs C_6 --
TEST(IdExchange, FullIdsAlwaysCorrect) {
  const std::uint32_t c = id_exchange_sound_bits(64);
  congest::NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  cfg.namespace_size = 64;
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    // Random distinct ids from a namespace of 64.
    const auto ids64 = rng.sample_without_replacement(64, 6);
    std::vector<congest::NodeId> ids(ids64.begin(), ids64.end());
    congest::Network tri(build::cycle(3), cfg,
                         {ids[0], ids[1], ids[2]});
    EXPECT_TRUE(tri.run(id_exchange_triangle_program(c)).detected);
    congest::Network hex(build::cycle(6), cfg, ids);
    EXPECT_FALSE(hex.run(id_exchange_triangle_program(c)).detected);
  }
}

TEST(IdExchange, TruncatedIdsStillRejectTriangles) {
  congest::NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  cfg.namespace_size = 64;
  congest::Network tri(build::cycle(3), cfg, {10, 20, 30});
  EXPECT_TRUE(tri.run(id_exchange_triangle_program(2)).detected);
}

TEST(IdExchange, TruncationCausesHexagonCollision) {
  // With 1-bit ids, a hexagon whose alternate nodes share low bits fools
  // the algorithm (this is the §4 phenomenon, found here by hand).
  congest::NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  cfg.namespace_size = 64;
  // ids with low bits (0,1,0,0,1,0) around the cycle: antipodal positions
  // share their low bit, so every "neighbor's other neighbor" collides with
  // the true other neighbor and the nodes believe they sit in a triangle.
  congest::Network hex(build::cycle(6), cfg, {0, 1, 2, 4, 5, 6});
  EXPECT_TRUE(hex.run(id_exchange_triangle_program(1)).detected)
      << "1-bit truncation should be foolable";
}

TEST(IdExchange, HashedVariantCorrectOnTriangles) {
  // Hash fingerprints reject every triangle (determinism), like truncation.
  congest::NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  cfg.namespace_size = 64;
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const auto ids64 = rng.sample_without_replacement(64, 3);
    congest::Network tri(build::cycle(3), cfg, {ids64[0], ids64[1], ids64[2]});
    EXPECT_TRUE(
        tri.run(hashed_id_exchange_triangle_program(
                    4, 7 + static_cast<std::uint64_t>(trial)))
            .detected);
  }
}

TEST(IdExchange, RequiresDegreeTwo) {
  congest::NetworkConfig cfg;
  cfg.bandwidth = 64;
  EXPECT_THROW(congest::run_congest(build::star(3), cfg,
                                    id_exchange_triangle_program(4)),
               CheckFailure);
}

// ----------------------------------------------------------------- tree --
TEST(TreeDetect, FindsStarsAndPaths) {
  const Graph host = build::grid(4, 4);
  TreeDetectConfig cfg;
  cfg.tree = build::star(3);
  cfg.repetitions = 400;
  EXPECT_TRUE(detect_tree(host, cfg, 32, 1).detected);
  cfg.tree = build::path(5);
  cfg.repetitions = 2000;
  EXPECT_TRUE(detect_tree(host, cfg, 32, 2).detected);
}

TEST(TreeDetect, RejectsAbsentTrees) {
  // A path hosts no K_{1,3} star.
  const Graph host = build::path(30);
  TreeDetectConfig cfg;
  cfg.tree = build::star(3);
  cfg.repetitions = 200;
  EXPECT_FALSE(detect_tree(host, cfg, 32, 3).detected);
}

TEST(TreeDetect, OneSidedErrorAgainstOracle) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph host = build::gnp(14, 0.12, rng);
    const Graph pattern = build::random_tree(5, rng);
    TreeDetectConfig cfg;
    cfg.tree = pattern;
    cfg.repetitions = 100;
    if (detect_tree(host, cfg, 32, 40 + static_cast<std::uint64_t>(trial))
            .detected) {
      EXPECT_TRUE(oracle::has_tree(host, pattern)) << "trial " << trial;
    }
  }
}

TEST(TreeDetect, ConstantRounds) {
  // O(height) rounds per repetition, independent of host size.
  EXPECT_EQ(tree_detect_round_budget(build::star(5)), 3u);
  EXPECT_EQ(tree_detect_round_budget(build::path(4)), 5u);
  const Graph big_host = build::grid(10, 10);
  TreeDetectConfig cfg;
  cfg.tree = build::star(3);
  cfg.repetitions = 1;
  const auto outcome = detect_tree(big_host, cfg, 32, 1);
  EXPECT_LE(outcome.metrics.rounds, 4u);
}

TEST(TreeDetect, RejectsNonTreePattern) {
  TreeDetectConfig cfg;
  cfg.tree = build::cycle(4);
  EXPECT_THROW(detect_tree(build::grid(3, 3), cfg, 32, 1), CheckFailure);
}

// -------------------------------------------------------------- listing --
TEST(CliqueListing, ListsAllTrianglesExactly) {
  Rng rng(13);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = build::gnp(20, 0.3, rng);
    CliqueListingResult result;
    const auto outcome = list_cliques_congested_clique(g, 3, 64, &result);
    EXPECT_TRUE(outcome.completed);
    const auto listed = result.all_sorted();
    const auto expected = oracle::list_cliques(g, 3);
    EXPECT_EQ(listed, expected) << "trial " << trial;
    // No duplicates across owners either.
    EXPECT_EQ(result.total(), expected.size());
  }
}

TEST(CliqueListing, ListsK4AndK5) {
  Rng rng(14);
  const Graph g = build::gnp(18, 0.5, rng);
  for (const std::uint32_t s : {4u, 5u}) {
    CliqueListingResult result;
    list_cliques_congested_clique(g, s, 64, &result);
    EXPECT_EQ(result.all_sorted(), oracle::list_cliques(g, s)) << "s=" << s;
    EXPECT_EQ(result.total(), oracle::count_cliques(g, s));
  }
}

TEST(CliqueListing, EmptyAndCompleteExtremes) {
  Graph empty(10);
  CliqueListingResult result;
  list_cliques_congested_clique(empty, 3, 64, &result);
  EXPECT_EQ(result.total(), 0u);

  const Graph full = build::complete(12);
  CliqueListingResult full_result;
  list_cliques_congested_clique(full, 3, 64, &full_result);
  EXPECT_EQ(full_result.total(), 220u);  // C(12,3)
}

TEST(CliqueListing, WorkIsSpreadAcrossOwners) {
  const Graph full = build::complete(16);
  CliqueListingResult result;
  list_cliques_congested_clique(full, 3, 64, &result);
  std::uint32_t busy_nodes = 0;
  for (const auto& per_node : result.cliques_by_node)
    busy_nodes += !per_node.empty();
  EXPECT_GT(busy_nodes, 4u);  // not all on one node
}

TEST(CliqueListing, DoublesAsADetectionAlgorithm) {
  // The listing outcome carries detection verdicts: some node rejects iff
  // it listed a clique — matching the oracle exactly (no amplification
  // needed; the algorithm is deterministic).
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = build::gnp(14, trial % 2 == 0 ? 0.15 : 0.5, rng);
    for (const std::uint32_t s : {3u, 4u}) {
      CliqueListingResult result;
      const auto outcome = list_cliques_congested_clique(g, s, 64, &result);
      EXPECT_EQ(outcome.detected, oracle::has_clique(g, s))
          << "trial " << trial << " s=" << s;
    }
  }
}

TEST(CliqueListing, BudgetGrowsSublinearlyInN) {
  // Round budget should scale roughly like n^{1-2/s}·polylog — for s = 3 on
  // bounded-degree inputs it must stay well below n.
  Rng rng(15);
  const Graph g = build::random_bounded_degree(96, 6, rng);
  const auto budget = clique_listing_round_budget(g, 3);
  EXPECT_LT(budget, 96u);
}

}  // namespace
}  // namespace csd::detect
