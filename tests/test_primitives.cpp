// Tests for the CONGEST building blocks: BFS-tree election, convergecast
// aggregation, and tree broadcast (congest/primitives).
#include <gtest/gtest.h>

#include "congest/primitives.hpp"
#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

BfsAggregateConfig count_config() {
  BfsAggregateConfig cfg;
  cfg.contribution = [](std::uint32_t) { return 1; };
  cfg.fold = Aggregate::Sum;
  return cfg;
}

TEST(BfsAggregate, CountsNodesOnConnectedGraphs) {
  Rng rng(3);
  for (const Graph& g :
       {build::cycle(9), build::grid(4, 5), build::petersen(),
        build::random_tree(30, rng)}) {
    const auto result = run_bfs_aggregate(g, count_config(), 64, 1);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_TRUE(result.reached[v]);
      EXPECT_EQ(result.aggregate[v], g.num_vertices()) << "v=" << v;
    }
  }
}

TEST(BfsAggregate, DistancesMatchBfsOracleFromMinIdRoot) {
  Rng rng(5);
  Graph g = build::random_tree(24, rng);  // connected by construction
  for (int extra = 0; extra < 12; ++extra)
    g.add_edge_if_absent(static_cast<Vertex>(rng.below(24)),
                         static_cast<Vertex>(rng.below(24)));
  ASSERT_TRUE(is_connected(g));
  const auto result = run_bfs_aggregate(g, count_config(), 64, 2);
  // Default identifiers equal indices, so the root is vertex 0.
  const auto oracle_dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.distance[v], oracle_dist[v]) << "v=" << v;
    if (v == 0) {
      EXPECT_EQ(result.parent[v], v);  // root's parent is itself
    } else {
      // Parent is one hop closer and adjacent.
      EXPECT_TRUE(g.has_edge(v, result.parent[v]));
      EXPECT_EQ(oracle_dist[result.parent[v]] + 1, oracle_dist[v]);
    }
  }
}

TEST(BfsAggregate, MinAndMaxFolds) {
  const Graph g = build::path(12);
  BfsAggregateConfig cfg;
  cfg.contribution = [](std::uint32_t v) { return 100 + v * 7; };
  cfg.fold = Aggregate::Max;
  auto result = run_bfs_aggregate(g, cfg, 64, 3);
  EXPECT_EQ(result.aggregate[0], 100u + 11 * 7);
  cfg.fold = Aggregate::Min;
  result = run_bfs_aggregate(g, cfg, 64, 3);
  EXPECT_EQ(result.aggregate[5], 100u);
}

TEST(BfsAggregate, PerComponentAggregates) {
  // Disconnected: each component elects its own root and folds separately.
  Graph g = build::disjoint_copies(build::cycle(4), 2);
  const auto result = run_bfs_aggregate(g, count_config(), 64, 4);
  for (Vertex v = 0; v < 8; ++v) {
    EXPECT_TRUE(result.reached[v]);
    EXPECT_EQ(result.aggregate[v], 4u);
  }
}

TEST(BfsAggregate, SingletonAndEdgeCases) {
  Graph singleton(1);
  const auto result = run_bfs_aggregate(singleton, count_config(), 64, 5);
  EXPECT_TRUE(result.reached[0]);
  EXPECT_EQ(result.aggregate[0], 1u);
  EXPECT_EQ(result.parent[0], 0u);

  const Graph pair = build::path(2);
  const auto pair_result = run_bfs_aggregate(pair, count_config(), 64, 5);
  EXPECT_EQ(pair_result.aggregate[0], 2u);
  EXPECT_EQ(pair_result.aggregate[1], 2u);
  EXPECT_EQ(pair_result.parent[1], 0u);
}

TEST(BfsAggregate, RejectPredicateDrivesVerdict) {
  const Graph g = build::cycle(6);
  BfsAggregateConfig cfg = count_config();
  cfg.reject_if = [](std::uint64_t total) { return total >= 6; };
  BfsAggregateResult sink;
  sink.distance.assign(6, 0);
  sink.parent.assign(6, 0);
  sink.aggregate.assign(6, 0);
  sink.reached.assign(6, false);
  NetworkConfig net_cfg;
  net_cfg.bandwidth = 64;
  net_cfg.max_rounds = bfs_aggregate_round_budget(6);
  const auto outcome =
      run_congest(g, net_cfg, bfs_aggregate_program(cfg, &sink));
  EXPECT_TRUE(outcome.detected);  // every node sees the total and rejects
}

TEST(BfsAggregate, RoundsAreLinearInNWorstCase) {
  // The self-terminating run finishes in ~n + 2D rounds; check the cap
  // holds and the run completes well within it on a path (D = n-1).
  const Graph g = build::path(40);
  BfsAggregateResult sink;
  sink.distance.assign(40, 0);
  sink.parent.assign(40, 0);
  sink.aggregate.assign(40, 0);
  sink.reached.assign(40, false);
  NetworkConfig net_cfg;
  net_cfg.bandwidth = 64;
  net_cfg.max_rounds = bfs_aggregate_round_budget(40);
  const auto outcome =
      run_congest(g, net_cfg, bfs_aggregate_program(count_config(), &sink));
  EXPECT_TRUE(outcome.completed);
  EXPECT_LE(outcome.metrics.rounds, bfs_aggregate_round_budget(40));
}

TEST(BfsAggregate, WorksUnderSparseIdentifiers) {
  // Root = smallest identifier, not smallest index.
  const Graph g = build::cycle(5);
  NetworkConfig net_cfg;
  net_cfg.bandwidth = 64;
  net_cfg.namespace_size = 1000;
  net_cfg.max_rounds = bfs_aggregate_round_budget(5);
  BfsAggregateResult sink;
  sink.distance.assign(5, 0);
  sink.parent.assign(5, 0);
  sink.aggregate.assign(5, 0);
  sink.reached.assign(5, false);
  Network net(g, net_cfg, {500, 400, 3, 700, 600});  // min id at index 2
  const auto outcome =
      net.run(bfs_aggregate_program(count_config(), &sink));
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(sink.distance[2], 0u);
  EXPECT_EQ(sink.distance[0], 2u);
  EXPECT_EQ(sink.aggregate[4], 5u);
}

}  // namespace
}  // namespace csd::congest
