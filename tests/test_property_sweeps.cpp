// Parameterized property sweeps: systematic invariant checks across
// parameter grids (TEST_P / INSTANTIATE_TEST_SUITE_P). These complement the
// example-based unit tests with coverage of whole parameter families.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

#include "comm/disjointness.hpp"
#include "detect/clique_listing.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/triangle.hpp"
#include "detect/weighted_cycle.hpp"
#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "graph/io.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "lowerbound/fooling.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/oneround.hpp"
#include "lowerbound/turan_counts.hpp"
#include "support/combinatorics.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace csd {
namespace {

// ------------------------------------------------------------- wire sweep --
class WireWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(WireWidthSweep, FixedWidthRoundTripsRandomValues) {
  const unsigned width = GetParam();
  Rng rng(width);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t value =
        width == 64 ? rng() : rng() & ((1ULL << width) - 1);
    wire::Writer w;
    w.u(value, width);
    w.boolean(trial % 2 == 0);
    w.u(value >> (width / 2), width);
    wire::Reader r(w.bits());
    EXPECT_EQ(r.u(width), value);
    EXPECT_EQ(r.boolean(), trial % 2 == 0);
    EXPECT_EQ(r.u(width), value >> (width / 2));
    EXPECT_TRUE(r.at_end());
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, WireWidthSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 15u, 16u, 31u,
                                           32u, 33u, 48u, 63u, 64u));

// -------------------------------------------------- combinatorics sweep --
class SubsetRankSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(SubsetRankSweep, UnrankRankIsBijective) {
  const auto [m, k] = GetParam();
  std::set<std::vector<std::uint32_t>> seen;
  for (std::uint64_t rank = 0; rank < binomial(m, k); ++rank) {
    const auto subset = unrank_k_subset(rank, m, k);
    EXPECT_EQ(rank_k_subset(subset, m), rank);
    EXPECT_TRUE(seen.insert(subset).second);
  }
  EXPECT_EQ(seen.size(), binomial(m, k));
}

INSTANTIATE_TEST_SUITE_P(SmallGrids, SubsetRankSweep,
                         ::testing::Combine(::testing::Values(4u, 6u, 9u),
                                            ::testing::Values(1u, 2u, 3u,
                                                              4u)));

// ------------------------------------------------ cycle soundness sweep --
struct CycleCase {
  std::uint32_t length;
  std::uint32_t n;
  double p;
};

class CycleSoundnessSweep : public ::testing::TestWithParam<CycleCase> {};

TEST_P(CycleSoundnessSweep, PipelinedRejectionIsAlwaysCertified) {
  const auto param = GetParam();
  Rng rng(param.length * 1000 + param.n);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = build::gnp(param.n, param.p, rng);
    detect::PipelinedCycleConfig cfg;
    cfg.length = param.length;
    cfg.repetitions = 30;
    const bool detected =
        detect::detect_cycle_pipelined(g, cfg, 64,
                                       static_cast<std::uint64_t>(trial))
            .detected;
    if (detected) {
      EXPECT_TRUE(oracle::has_cycle_of_length(g, param.length))
          << "false positive: L=" << param.length << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthFamilyGrid, CycleSoundnessSweep,
    ::testing::Values(CycleCase{3, 18, 0.15}, CycleCase{4, 18, 0.15},
                      CycleCase{5, 18, 0.15}, CycleCase{6, 18, 0.15},
                      CycleCase{7, 16, 0.22}, CycleCase{8, 16, 0.22},
                      CycleCase{4, 28, 0.07}, CycleCase{6, 28, 0.07}));

// ----------------------------------------------- even-cycle schedule sweep --
class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(ScheduleSweep, SchedulesAreWellFormedAndMonotone) {
  const auto [k, n] = GetParam();
  detect::EvenCycleConfig cfg;
  cfg.k = k;
  cfg.c_num = 1;
  const auto s = detect::make_even_cycle_schedule(n, cfg);
  EXPECT_EQ(s.n, n);
  EXPECT_GE(s.degree_threshold, 2u);
  EXPECT_GE(s.peel_degree, 1u);
  EXPECT_GT(s.window_start[1], s.phase1_rounds + s.layer_waves);
  for (std::uint32_t w = 2; w <= k; ++w)
    EXPECT_GT(s.window_start[w], s.window_start[w - 1]);
  EXPECT_GT(s.final_round, s.window_start[k]);
  // Monotone in n.
  const auto bigger = detect::make_even_cycle_schedule(2 * n, cfg);
  EXPECT_GE(bigger.total_rounds(), s.total_rounds());
  // Sublinearity kicks in past a k-dependent crossover (the exponent is
  // 1 - 1/(k(k-1)), so larger k needs much larger n to beat its constants):
  // assert it only where the THM11 bench establishes the crossover.
  if ((k == 2 && n >= (1u << 14)) || (k == 3 && n >= (1u << 18))) {
    EXPECT_LT(s.total_rounds(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KNGrid, ScheduleSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u),
                       ::testing::Values(std::uint64_t{16},
                                         std::uint64_t{256},
                                         std::uint64_t{1} << 14,
                                         std::uint64_t{1} << 18)));

// ------------------------------------------------------- G_{k,n} sweep --
class GknSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(GknSweep, FrameInvariants) {
  const auto [k, n] = GetParam();
  const auto g = lb::build_gkn_frame(k, n);
  // Property 1: diameter 3, Θ(n) vertices.
  EXPECT_EQ(diameter(g.graph), 3u);
  EXPECT_EQ(g.graph.num_vertices(), 4 * n + 6 * g.layout.m + 40);
  // Subset encoding injective and within range.
  std::set<std::vector<std::uint32_t>> subsets;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto q = g.layout.subset_of(i);
    EXPECT_EQ(q.size(), k);
    for (const auto e : q) EXPECT_LT(e, g.layout.m);
    EXPECT_TRUE(subsets.insert(q).second);
  }
  // Endpoint degrees: k triangle corners + 1 marker.
  for (const lb::Side s : {lb::Side::Top, lb::Side::Bottom})
    for (const lb::Corner d : {lb::Corner::A, lb::Corner::B})
      for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(g.graph.degree(g.layout.endpoint(s, d, i)), k + 1);
  // Lemma 3.1 on a random instance of each polarity.
  Rng rng(k * 100 + n);
  for (const bool intersecting : {true, false}) {
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.2, intersecting, rng);
    const auto gxy = lb::build_gxy(k, n, inst);
    EXPECT_EQ(lb::contains_hk_structurally(gxy), intersecting);
  }
}

INSTANTIATE_TEST_SUITE_P(KNGrid, GknSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(2u, 5u, 12u,
                                                              30u)));

// ------------------------------------------------------- listing sweep --
class ListingSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Vertex, int>> {
};

TEST_P(ListingSweep, ListingMatchesOracleExactly) {
  const auto [s, n, density_pct] = GetParam();
  Rng rng(s * 1000 + n);
  const Graph g = build::gnp(n, density_pct / 100.0, rng);
  detect::CliqueListingResult result;
  const auto outcome = detect::list_cliques_congested_clique(g, s, 64, &result);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(result.all_sorted(), oracle::list_cliques(g, s));
  EXPECT_EQ(result.total(), oracle::count_cliques(g, s));
}

INSTANTIATE_TEST_SUITE_P(
    SNGrid, ListingSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u),
                       ::testing::Values(Vertex{12}, Vertex{24}),
                       ::testing::Values(20, 50, 80)));

// ------------------------------------------- layer decomposition sweep --
class LayerSweep
    : public ::testing::TestWithParam<std::tuple<Vertex, int, std::uint32_t>> {
};

TEST_P(LayerSweep, UpDegreeNeverExceedsThreshold) {
  const auto [n, density_pct, threshold] = GetParam();
  Rng rng(n + threshold);
  const Graph g = build::gnp(n, density_pct / 100.0, rng);
  const auto d = layer_decomposition(g, threshold, 2 * ceil_log2(n) + 2);
  EXPECT_LE(max_up_degree(g, d), threshold);
  // Assigned + unassigned partition the vertex set.
  Vertex assigned = 0;
  for (Vertex v = 0; v < n; ++v) assigned += (d.layer[v] != kUnreachable);
  EXPECT_EQ(assigned + d.unassigned.size(), n);
  // If the threshold is at least twice the average degree, everything peels.
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / n;
  if (threshold >= 2 * avg) {
    EXPECT_TRUE(d.unassigned.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LayerSweep,
    ::testing::Combine(::testing::Values(Vertex{30}, Vertex{60}),
                       ::testing::Values(5, 15, 30),
                       ::testing::Values(2u, 6u, 12u, 24u)));

// ----------------------------------------------------- one-round sweep --
class OneRoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneRoundSweep, StatisticsAreWellFormed) {
  const std::uint64_t bandwidth = GetParam();
  const auto protocol = lb::make_bloom_protocol(5);
  const auto stats = lb::evaluate_one_round(*protocol, 16, bandwidth, 3000, 7);
  EXPECT_GE(stats.error, 0.0);
  EXPECT_LE(stats.error, 1.0);
  EXPECT_NEAR(stats.false_negative, 0.0, 1e-12);  // Bloom never misses
  EXPECT_GE(stats.info_accept, 0.0);
  EXPECT_LE(stats.info_accept, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, OneRoundSweep,
                         ::testing::Values(1u, 4u, 16u, 64u, 256u));

// ----------------------------------------------------------- vf2 sweep --
class Vf2OracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(Vf2OracleSweep, RandomPatternsAgreeWithPlantedTruth) {
  // Plant a random connected pattern; VF2 must find it. On a fresh host
  // without planting, VF2 and a second independent VF2 run must agree
  // (determinism) and any claimed embedding must validate.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const Vertex pattern_size = 4 + static_cast<Vertex>(rng.below(5));
  Graph pattern = build::random_tree(pattern_size, rng);
  for (int extra = 0; extra < 3; ++extra)
    pattern.add_edge_if_absent(
        static_cast<Vertex>(rng.below(pattern_size)),
        static_cast<Vertex>(rng.below(pattern_size)));

  Graph host = build::gnp(22, 0.1, rng);
  build::plant_subgraph(host, pattern, rng);
  const auto embedding = find_subgraph(host, pattern);
  ASSERT_TRUE(embedding.has_value());
  EXPECT_TRUE(is_valid_embedding(host, pattern, *embedding));

  const Graph fresh = build::gnp(22, 0.1, rng);
  EXPECT_EQ(contains_subgraph(fresh, pattern),
            contains_subgraph(fresh, pattern));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vf2OracleSweep, ::testing::Range(0, 10));

// ------------------------------------------------- fooling family sweep --
struct FoolingCase {
  std::uint64_t namespace_size;
  std::uint32_t budget;
  bool hashed;
};

class FoolingFamilySweep : public ::testing::TestWithParam<FoolingCase> {};

TEST_P(FoolingFamilySweep, ReportIsInternallyConsistent) {
  const auto param = GetParam();
  lb::FoolingConfig cfg;
  cfg.namespace_size = param.namespace_size;
  cfg.algorithm =
      param.hashed
          ? detect::hashed_id_exchange_triangle_program(param.budget, 99)
          : detect::id_exchange_triangle_program(param.budget);
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  const auto report = lb::run_fooling_adversary(cfg);
  // The algorithm family is always correct on triangles.
  EXPECT_TRUE(report.all_triangles_rejected);
  // Fooling requires a box; a box implies Claim 4.4 and a wrong verdict.
  if (report.hexagon_fooled) {
    EXPECT_TRUE(report.box_found);
  }
  if (report.box_found) {
    EXPECT_TRUE(report.transcripts_match);
    EXPECT_TRUE(report.hexagon_fooled);
  }
  // The observed per-node communication matches the family: 4c bits.
  EXPECT_EQ(report.max_total_bits_per_node, 4ull * param.budget);
  EXPECT_EQ(report.executions,
            (param.namespace_size / 3) * (param.namespace_size / 3) *
                (param.namespace_size / 3));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FoolingFamilySweep,
    ::testing::Values(FoolingCase{12, 1, false}, FoolingCase{12, 2, false},
                      FoolingCase{24, 2, false}, FoolingCase{24, 3, false},
                      FoolingCase{24, 2, true}, FoolingCase{24, 5, true},
                      FoolingCase{48, 3, false}, FoolingCase{48, 4, true}));

// --------------------------------------------------- weighted cycles --
class WeightedCycleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(WeightedCycleSweep, RejectionAlwaysCertified) {
  const auto [length, target] = GetParam();
  Rng rng(length * 31 + target);
  const auto weight = [](Vertex u, Vertex v) -> std::uint64_t {
    if (u > v) std::swap(u, v);
    std::uint64_t s = (static_cast<std::uint64_t>(u) << 20) ^ v;
    return splitmix64(s) % 4;
  };
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = build::gnp(13, 0.25, rng);
    detect::WeightedCycleConfig cfg;
    cfg.length = length;
    cfg.target_weight = target;
    cfg.repetitions = 60;
    const bool detected =
        detect::detect_weighted_cycle(g, cfg, weight, 64,
                                      static_cast<std::uint64_t>(trial))
            .detected;
    if (detected) {
      EXPECT_TRUE(oracle::has_weighted_cycle(g, length, target, weight))
          << "L=" << length << " W=" << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WeightedCycleSweep,
    ::testing::Combine(::testing::Values(3u, 4u, 5u),
                       ::testing::Values(std::uint64_t{0}, std::uint64_t{5},
                                         std::uint64_t{9})));

// --------------------------------------------------------- io roundtrip --
class IoRoundTripSweep : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundTripSweep, BothFormatsPreserveEveryFamily) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Graph g;
  switch (GetParam()) {
    case 0: g = build::cycle(11); break;
    case 1: g = build::petersen(); break;
    case 2: g = build::gnp(20, 0.3, rng); break;
    case 3: g = build::random_tree(17, rng); break;
    case 4: g = Graph(5); break;  // edgeless
    case 5: g = build::complete(8); break;
    default: g = build::grid(4, 4); break;
  }
  for (const bool dimacs : {false, true}) {
    std::stringstream ss;
    if (dimacs)
      io::write_dimacs(ss, g);
    else
      io::write_edge_list(ss, g);
    const Graph back = io::read_any(ss);
    EXPECT_EQ(back.num_vertices(), g.num_vertices());
    EXPECT_EQ(back.edges(), g.edges());
  }
}

INSTANTIATE_TEST_SUITE_P(Families, IoRoundTripSweep, ::testing::Range(0, 7));

// ---------------------------------------------------- Lemma 1.3 sweep --
class Lemma13Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(Lemma13Sweep, BoundHoldsOnRandomGraphs) {
  const auto [s, density_pct] = GetParam();
  Rng rng(s * 7 + static_cast<std::uint32_t>(density_pct));
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = build::gnp(18, density_pct / 100.0, rng);
    const auto report = lb::check_clique_count_bound(g, s, "sweep");
    EXPECT_LE(report.ratio, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Lemma13Sweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u),
                                            ::testing::Values(25, 55, 85)));

}  // namespace
}  // namespace csd
