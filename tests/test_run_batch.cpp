// Tests for the deterministic parallel run driver: bit-identical outcomes
// across jobs counts, the early-exit cut, exception determinism, and the
// repetition-aggregation rules of run_amplified.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "congest/run_batch.hpp"
#include "graph/builders.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

/// Rejects iff the node rng's first draw is even (~1/2 per node per seed),
/// then halts: one round per run, verdict a pure function of the seed.
class CoinReject final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    if (api.rng()() % 2 == 0) api.reject();
    api.halt();
  }
};

ProgramFactory coin_factory() {
  return [](std::uint32_t) { return std::make_unique<CoinReject>(); };
}

/// Always rejects in round 0, never halts (runs into the round cap).
class RejectAndStall final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    if (api.round() == 0) api.reject();
  }
};

void expect_same_outcome(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_EQ(a.metrics.max_message_bits, b.metrics.max_message_bits);
  EXPECT_EQ(a.metrics.bits_sent_by_node, b.metrics.bits_sent_by_node);
  EXPECT_EQ(a.metrics.repetitions_executed, b.metrics.repetitions_executed);
  EXPECT_EQ(a.metrics.repetitions_skipped, b.metrics.repetitions_skipped);
  EXPECT_EQ(a.faults.detected_by_survivors, b.faults.detected_by_survivors);
  EXPECT_EQ(a.faults.crashed_nodes, b.faults.crashed_nodes);
  EXPECT_EQ(a.faults.stalled_nodes, b.faults.stalled_nodes);
  EXPECT_EQ(a.faults.violations.size(), b.faults.violations.size());
  EXPECT_EQ(a.transcript.size(), b.transcript.size());
}

// ------------------------------------------------------------- RunBatch --
TEST(RunBatch, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
  EXPECT_GE(resolve_jobs(0), 1u);  // hardware_concurrency, at least one
}

TEST(RunBatch, ForEachIndexCoversEveryIndexOnce) {
  for (const unsigned jobs : {1u, 4u}) {
    std::vector<int> hits(100, 0);
    RunBatch(jobs).for_each_index(hits.size(),
                                  [&](std::size_t i) { ++hits[i]; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(RunBatch, ExecuteIsBitIdenticalAcrossJobsCounts) {
  NetworkConfig cfg;
  cfg.seed = 9;
  const Network net(build::path(2), cfg);
  const auto factory = coin_factory();
  std::vector<RunBatch::Task> tasks;
  for (std::uint32_t i = 0; i < 24; ++i)
    tasks.push_back({&net, &factory, derive_seed(9, i)});

  const auto reference = RunBatch(1).execute(tasks);
  ASSERT_EQ(reference.outcomes.size(), tasks.size());
  EXPECT_EQ(reference.executed, tasks.size());
  EXPECT_EQ(reference.skipped, 0u);
  for (const unsigned jobs : {4u, 0u}) {
    const auto result = RunBatch(jobs).execute(tasks);
    ASSERT_EQ(result.outcomes.size(), tasks.size());
    EXPECT_EQ(result.executed, reference.executed);
    EXPECT_EQ(result.skipped, reference.skipped);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      ASSERT_TRUE(result.outcomes[i].has_value());
      expect_same_outcome(*result.outcomes[i], *reference.outcomes[i]);
    }
  }
}

TEST(RunBatch, EarlyExitCutsAtLowestDetectingIndex) {
  NetworkConfig cfg;
  cfg.seed = 31;
  const Network net(build::path(2), cfg);
  const auto factory = coin_factory();
  std::vector<RunBatch::Task> tasks;
  for (std::uint32_t i = 0; i < 24; ++i)
    tasks.push_back({&net, &factory, derive_seed(31, i)});

  // Sequential reference: the lowest-indexed detecting task.
  std::size_t first = tasks.size();
  for (std::size_t i = 0; i < tasks.size() && first == tasks.size(); ++i)
    if (net.run(factory, tasks[i].seed).detected) first = i;
  ASSERT_LT(first, tasks.size()) << "seed 31 must produce a detection";

  for (const unsigned jobs : {1u, 4u, 0u}) {
    const auto result = RunBatch(jobs).execute(tasks, true);
    EXPECT_EQ(result.executed, first + 1);
    EXPECT_EQ(result.skipped, tasks.size() - first - 1);
    for (std::size_t i = 0; i < tasks.size(); ++i)
      EXPECT_EQ(result.outcomes[i].has_value(), i <= first) << "index " << i;
    EXPECT_TRUE(result.outcomes[first]->detected);
    for (std::size_t i = 0; i < first; ++i)
      EXPECT_FALSE(result.outcomes[i]->detected);
  }
}

TEST(RunBatch, RethrowsLowestIndexedExceptionDeterministically) {
  // Throws (fault-free runs propagate program exceptions) with a message
  // derived from the node rng: which task's message surfaces identifies
  // which exception won.
  class SeedThrow final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      const auto draw = api.rng()();
      CSD_CHECK_MSG(draw % 4 != 0, "boom " << draw);
      api.halt();
    }
  };
  NetworkConfig cfg;
  cfg.seed = 3;
  const Network net(build::path(2), cfg);
  const ProgramFactory factory = [](std::uint32_t) {
    return std::make_unique<SeedThrow>();
  };
  std::vector<RunBatch::Task> tasks;
  for (std::uint32_t i = 0; i < 24; ++i)
    tasks.push_back({&net, &factory, derive_seed(3, i)});

  std::string reference;
  try {
    RunBatch(1).execute(tasks);
  } catch (const CheckFailure& failure) {
    reference = failure.what();
  }
  ASSERT_FALSE(reference.empty()) << "seed 3 must produce a throwing task";
  for (const unsigned jobs : {4u, 0u}) {
    std::string parallel;
    try {
      RunBatch(jobs).execute(tasks);
    } catch (const CheckFailure& failure) {
      parallel = failure.what();
    }
    EXPECT_EQ(parallel, reference);
  }
}

// -------------------------------------------------------- run_amplified --
/// The documented per-field aggregation rule, applied by hand to a
/// sequential fold of run_congest outcomes with the derived-seed schedule.
RunOutcome manual_fold(const Graph& g, const NetworkConfig& cfg,
                       const ProgramFactory& factory, std::uint32_t reps) {
  RunOutcome agg;
  agg.completed = true;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    NetworkConfig rep_cfg = cfg;
    rep_cfg.seed = derive_seed(cfg.seed, 0x5eedULL + rep);
    const auto rep_outcome = run_congest(g, rep_cfg, factory);
    agg.completed &= rep_outcome.completed;
    agg.detected |= rep_outcome.detected;
    if (agg.verdicts.empty()) {
      agg.verdicts = rep_outcome.verdicts;
    } else {
      for (std::size_t v = 0; v < agg.verdicts.size(); ++v)
        if (rep_outcome.verdicts[v] == Verdict::Reject)
          agg.verdicts[v] = Verdict::Reject;
    }
    agg.metrics.rounds += rep_outcome.metrics.rounds;
    agg.metrics.messages += rep_outcome.metrics.messages;
    agg.metrics.total_bits += rep_outcome.metrics.total_bits;
    agg.metrics.max_message_bits = std::max(
        agg.metrics.max_message_bits, rep_outcome.metrics.max_message_bits);
    if (agg.metrics.bits_sent_by_node.empty())
      agg.metrics.bits_sent_by_node.resize(
          rep_outcome.metrics.bits_sent_by_node.size(), 0);
    for (std::size_t v = 0; v < agg.metrics.bits_sent_by_node.size(); ++v)
      agg.metrics.bits_sent_by_node[v] +=
          rep_outcome.metrics.bits_sent_by_node[v];
    agg.faults.detected_by_survivors |=
        rep_outcome.faults.detected_by_survivors;
  }
  agg.metrics.repetitions_executed = reps;
  return agg;
}

TEST(RunAmplified, MatchesManualFoldOfPerRepetitionRuns) {
  const Graph g = build::path(3);
  NetworkConfig cfg;
  cfg.seed = 12;
  const auto factory = coin_factory();
  const std::uint32_t reps = 16;
  const auto expected = manual_fold(g, cfg, factory, reps);

  AmplifyOptions options;
  options.early_exit = false;
  for (const unsigned jobs : {1u, 4u, 0u}) {
    options.jobs = jobs;
    const auto outcome = run_amplified(g, cfg, factory, reps, options);
    expect_same_outcome(outcome, expected);
  }
}

TEST(RunAmplified, EarlyExitAccountsExecutedAndSkipped) {
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.seed = 5;
  const auto factory = coin_factory();
  const std::uint32_t reps = 16;

  // Sequential reference: the first detecting repetition under the
  // documented seed schedule.
  std::uint32_t first = reps;
  for (std::uint32_t rep = 0; rep < reps && first == reps; ++rep) {
    NetworkConfig rep_cfg = cfg;
    rep_cfg.seed = derive_seed(cfg.seed, 0x5eedULL + rep);
    if (run_congest(g, rep_cfg, factory).detected) first = rep;
  }
  ASSERT_LT(first, reps) << "seed 5 must detect within 16 repetitions";

  AmplifyOptions options;  // early_exit defaults on
  const auto reference = run_amplified(g, cfg, factory, reps, options);
  EXPECT_TRUE(reference.detected);
  EXPECT_EQ(reference.metrics.repetitions_executed, first + 1);
  EXPECT_EQ(reference.metrics.repetitions_skipped, reps - first - 1);
  for (const unsigned jobs : {4u, 0u}) {
    options.jobs = jobs;
    expect_same_outcome(run_amplified(g, cfg, factory, reps, options),
                        reference);
  }
}

TEST(RunAmplified, DetectionInEarlyRepetitionSurvivesAggregation) {
  // Regression: the aggregate used to keep only the LAST repetition's
  // verdicts/completed/faults, so a detection in repetition 0 whose final
  // repetition came up clean was silently lost. Find a seed whose first
  // repetition detects and whose last does not, then check both drivers.
  const Graph g = build::path(2);
  const auto factory = coin_factory();
  const std::uint32_t reps = 8;
  NetworkConfig cfg;
  bool found = false;
  for (std::uint64_t seed = 1; seed < 200 && !found; ++seed) {
    const auto rep_detected = [&](std::uint32_t rep) {
      NetworkConfig rep_cfg;
      rep_cfg.seed = derive_seed(seed, 0x5eedULL + rep);
      return run_congest(g, rep_cfg, factory).detected;
    };
    if (rep_detected(0) && !rep_detected(reps - 1)) {
      cfg.seed = seed;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  AmplifyOptions all;
  all.early_exit = false;
  EXPECT_TRUE(run_amplified(g, cfg, factory, reps, all).detected);
  const auto eager = run_amplified(g, cfg, factory, reps);
  EXPECT_TRUE(eager.detected);
  EXPECT_EQ(eager.metrics.repetitions_executed, 1u);  // cut at repetition 0
  EXPECT_EQ(eager.metrics.repetitions_skipped, reps - 1);
}

TEST(RunAmplified, FaultReportsConcatenateAcrossRepetitions) {
  // A crash plan fires in every repetition; the combined report must carry
  // one crash entry per executed repetition (concatenated, not clobbered
  // by the last repetition), and completed must AND across repetitions.
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.seed = 2;
  cfg.max_rounds = 4;
  cfg.faults.crashes.push_back({0, 1});  // node 0 dies after round 0
  const ProgramFactory factory = [](std::uint32_t) {
    return std::make_unique<RejectAndStall>();
  };

  AmplifyOptions options;
  options.early_exit = false;
  const std::uint32_t reps = 3;
  for (const unsigned jobs : {1u, 4u}) {
    options.jobs = jobs;
    const auto outcome = run_amplified(g, cfg, factory, reps, options);
    EXPECT_TRUE(outcome.detected);
    EXPECT_FALSE(outcome.completed);
    EXPECT_EQ(outcome.metrics.repetitions_executed, reps);
    EXPECT_EQ(outcome.faults.crashed_nodes.size(), reps);
  }
}

}  // namespace
}  // namespace csd::congest
