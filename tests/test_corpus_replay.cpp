// Replays every committed corpus entry (tests/corpus/*.json).
//
// Each entry is a shrunk case some fuzzing campaign once found a divergence
// on. With the corresponding bugs fixed, replaying the case through the
// full differential oracle must find nothing, and the engines must
// reproduce the recorded ground truth and fault-free verdict — so the
// corpus doubles as a regression suite: reintroducing any of the fixed
// bugs makes its entry fail here deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/fuzzer.hpp"
#include "obs/json.hpp"

namespace csd::fuzz {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir(CSD_CORPUS_DIR);
  if (std::filesystem::exists(dir))
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.path().extension() == ".json")
        files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

class CorpusReplay : public testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, ReplaysCleanAndReproducesRecordedVerdict) {
  std::ifstream is(GetParam());
  ASSERT_TRUE(is.good()) << "cannot open " << GetParam();
  std::stringstream buffer;
  buffer << is.rdbuf();

  CaseExpectation recorded;
  Divergence original;
  const FuzzCase c =
      corpus_case(obs::Json::parse(buffer.str()), &recorded, &original);

  // The bug this entry pinned down is fixed: the full oracle is clean.
  CaseExpectation now;
  const auto divergence = check_case(c, &now);
  EXPECT_FALSE(divergence.has_value())
      << "regression of '" << original.check << "': " << divergence->check
      << " — " << divergence->detail;

  // And the engines reproduce the recorded ground truth + verdict.
  EXPECT_EQ(now.truth, recorded.truth);
  EXPECT_EQ(now.detected, recorded.detected);
}

std::string test_name(const testing::TestParamInfo<std::string>& info) {
  std::string name = std::filesystem::path(info.param).stem().string();
  for (char& ch : name)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay,
                         testing::ValuesIn(corpus_files()), test_name);

// An empty corpus directory must not fail the suite (gtest would otherwise
// flag the uninstantiated parameterized test).
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(CorpusReplay);

}  // namespace
}  // namespace csd::fuzz
