// Tests for the differential fuzzing harness: case serialization,
// generator determinism, the cross-engine oracle on known-good fixtures,
// the delta-debugging shrinker, and a short fixed-seed campaign smoke run
// (the same invariants CI's longer fuzz-smoke job enforces).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "fuzz/differential.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "graph/builders.hpp"
#include "support/check.hpp"

namespace csd::fuzz {
namespace {

FuzzCase k4_case() {
  FuzzCase c;
  c.program = ProgramKind::Clique;
  c.param = 3;
  c.num_vertices = 5;
  c.edges = build::complete(4).edges();  // K_4 + one isolated vertex
  c.seed = 7;
  return c;
}

TEST(FuzzCase, JsonRoundTripIsExact) {
  FuzzCase c = k4_case();
  c.repetitions = 3;
  c.bandwidth = 40;
  c.max_delay = 6;
  c.drop = 0.125;
  c.corrupt = 0.25;
  c.corrupt_headers = true;
  c.crashes = {{2, 4}, {0, 1}};
  const obs::Json j = to_json(c);
  const FuzzCase back = case_from_json(obs::Json::parse(j.dump()));
  EXPECT_EQ(back, c);
}

TEST(FuzzCase, MalformedJsonIsRejected) {
  FuzzCase c = k4_case();
  obs::Json j = to_json(c);
  j.set("program", "no-such-program");
  EXPECT_THROW(case_from_json(j), CheckFailure);
}

TEST(FuzzCase, TreeCatalogEntriesAreTrees) {
  for (std::size_t i = 0; i < tree_catalog_size(); ++i) {
    const Graph t = tree_catalog(i);
    EXPECT_EQ(t.num_edges(), t.num_vertices() - 1) << "catalog " << i;
    EXPECT_GE(t.degree(0), 1u) << "catalog " << i << " not rooted at 0";
  }
}

TEST(Generator, IsAPureFunctionOfTheSeed) {
  const FuzzCase a = generate_case(42);
  const FuzzCase b = generate_case(42);
  EXPECT_EQ(a, b);
  // And different seeds explore different cases (program/host variety).
  std::set<std::string> shapes;
  for (std::uint64_t s = 0; s < 32; ++s) {
    const FuzzCase c = generate_case(s);
    shapes.insert(to_json(c).dump());
    EXPECT_GE(c.num_vertices, pattern_graph(c).num_vertices());
    for (const auto& ev : c.crashes) EXPECT_LT(ev.node, c.num_vertices);
  }
  EXPECT_GT(shapes.size(), 20u);
}

testing::AssertionResult clean(const FuzzCase& c,
                               CaseExpectation* expect = nullptr) {
  const auto divergence = check_case(c, expect);
  if (!divergence) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << divergence->check << " — " << divergence->detail;
}

TEST(Differential, PassesOnDeterministicCliqueFixtures) {
  // Positive (K_4 contains K_3) and negative (C_5 has no triangle).
  CaseExpectation expect;
  EXPECT_TRUE(clean(k4_case(), &expect));
  EXPECT_TRUE(expect.truth);
  EXPECT_TRUE(expect.detected);

  FuzzCase neg;
  neg.program = ProgramKind::Clique;
  neg.param = 3;
  neg.num_vertices = 5;
  neg.edges = build::cycle(5).edges();
  EXPECT_TRUE(clean(neg, &expect));
  EXPECT_FALSE(expect.truth);
  EXPECT_FALSE(expect.detected);
}

TEST(Differential, PassesOnRandomizedDetectorsWithFaults) {
  FuzzCase c;
  c.program = ProgramKind::PipelinedCycle;
  c.param = 4;
  c.num_vertices = 6;
  c.edges = build::cycle(6).edges();
  Graph host = build_graph(c);
  // Plant a C_4 chord so the pattern exists: 0-1-2-3-0 via edge {0, 3}.
  host.add_edge(0, 3);
  c.edges = host.edges();
  c.repetitions = 3;
  c.seed = 11;
  c.drop = 0.1;
  c.corrupt = 0.1;
  c.corrupt_headers = true;
  c.crashes = {{5, 3}};
  EXPECT_TRUE(clean(c));
}

TEST(Differential, PassesOnTreeAndEvenCycleFixtures) {
  FuzzCase tree;
  tree.program = ProgramKind::Tree;
  tree.param = 1;  // K_{1,3}
  tree.num_vertices = 7;
  tree.edges = build::star(4).edges();
  tree.repetitions = 2;
  tree.seed = 3;
  EXPECT_TRUE(clean(tree));

  FuzzCase ec;
  ec.program = ProgramKind::EvenCycle;
  ec.param = 4;
  ec.num_vertices = 8;
  ec.edges = build::complete_bipartite(2, 3).edges();  // contains C_4
  ec.repetitions = 2;
  ec.seed = 5;
  EXPECT_TRUE(clean(ec));
}

TEST(Shrink, MinimizesUnderASyntheticPredicate) {
  // "Failing" = the case still contains edge {0, 1} and a crash event.
  const CasePredicate predicate = [](const FuzzCase& c) {
    const bool has_edge =
        std::find(c.edges.begin(), c.edges.end(),
                  std::make_pair(Vertex{0}, Vertex{1})) != c.edges.end();
    return has_edge && !c.crashes.empty();
  };
  FuzzCase big;
  big.program = ProgramKind::Clique;
  big.param = 3;
  big.num_vertices = 12;
  big.edges = build::complete(12).edges();
  big.repetitions = 1;
  big.drop = 0.3;
  big.corrupt = 0.2;
  big.corrupt_headers = true;
  big.max_delay = 8;
  big.crashes = {{1, 2}, {2, 1}, {0, 0}};
  ASSERT_TRUE(predicate(big));

  const FuzzCase small = shrink_case(big, predicate, 2000);
  EXPECT_TRUE(predicate(small));
  EXPECT_EQ(small.edges.size(), 1u);  // only {0, 1} survives
  EXPECT_EQ(small.crashes.size(), 1u);
  EXPECT_EQ(small.drop, 0.0);
  EXPECT_EQ(small.corrupt, 0.0);
  EXPECT_FALSE(small.corrupt_headers);
  EXPECT_EQ(small.max_delay, 1u);
  // Trailing isolated vertices trimmed down to the pattern size.
  EXPECT_EQ(small.num_vertices, 3u);
}

TEST(Shrink, RejectsAPassingCase) {
  const CasePredicate never = [](const FuzzCase&) { return false; };
  EXPECT_THROW(shrink_case(k4_case(), never, 10), CheckFailure);
}

TEST(Fuzzer, CorpusEntryRoundTrips) {
  const FuzzCase c = k4_case();
  const Divergence d{"sync-vs-async-verdicts", "details here"};
  const obs::Json doc = corpus_entry(c, d);
  CaseExpectation expect;
  Divergence found;
  const FuzzCase back =
      corpus_case(obs::Json::parse(doc.dump()), &expect, &found);
  EXPECT_EQ(back, c);
  EXPECT_EQ(found.check, d.check);
  EXPECT_EQ(found.detail, d.detail);
  EXPECT_TRUE(expect.truth);      // K_4 contains K_3
  EXPECT_TRUE(expect.detected);   // the deterministic detector finds it
}

TEST(Differential, ResumeContractHoldsAcrossGeneratedCases) {
  // check_case now verifies the checkpoint/kill/resume contract (sync and
  // async, fault-free and faulty), supervised slice-resume at --jobs 1 and
  // 4, and the node-recovery oracle. Sweep a fixed window of generated
  // cases wide enough to exercise every one of those paths, including the
  // scheduled-crash cases the recovery oracle needs.
  std::uint32_t crash_cases = 0;
  for (std::uint64_t seed = 500; seed < 530; ++seed) {
    const FuzzCase c = generate_case(seed);
    if (!c.crashes.empty()) ++crash_cases;
    EXPECT_TRUE(clean(c)) << "case seed " << seed;
  }
  EXPECT_GE(crash_cases, 5u);  // the window must keep covering recovery
}

TEST(Fuzzer, FixedSeedSmokeRunFindsNoDivergence) {
  FuzzOptions options;
  options.seconds = 0.0;  // case-count bound only
  options.max_cases = 25;
  options.seed = 1;
  std::ostringstream log;
  const FuzzReport report = run_fuzzer(options, log);
  EXPECT_EQ(report.cases, 25u);
  EXPECT_TRUE(report.ok()) << log.str();
}

}  // namespace
}  // namespace csd::fuzz
