// Tests for weighted cycle detection (the [CKP17] problem of §1.2): the
// weight-accumulating color-coded detector against the exhaustive oracle,
// and the round-budget blow-up that makes the weighted problem hard.
#include <gtest/gtest.h>

#include "detect/pipelined_cycle.hpp"
#include "detect/weighted_cycle.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/rng.hpp"

namespace csd::detect {
namespace {

/// Deterministic pseudo-random symmetric weights in [0, cap].
EdgeWeightFn hashed_weights(std::uint64_t cap, std::uint64_t salt) {
  return [cap, salt](Vertex u, Vertex v) {
    if (u > v) std::swap(u, v);
    std::uint64_t s = (static_cast<std::uint64_t>(u) << 32) ^ v ^ salt;
    return splitmix64(s) % (cap + 1);
  };
}

TEST(WeightedCycle, DetectsTheRightWeightOnly) {
  // A lone C_4 with known weights: detected at exactly its weight, not at
  // neighbors of that weight.
  const Graph g = build::cycle(4);
  const auto weight = hashed_weights(5, 1);
  std::uint64_t true_weight = 0;
  for (Vertex v = 0; v < 4; ++v) true_weight += weight(v, (v + 1) % 4);

  WeightedCycleConfig cfg;
  cfg.length = 4;
  cfg.repetitions = 400;
  for (std::int64_t delta = -2; delta <= 2; ++delta) {
    const auto target =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(true_weight) +
                                   delta);
    cfg.target_weight = target;
    const bool detected =
        detect_weighted_cycle(g, cfg, weight, 64, 7).detected;
    EXPECT_EQ(detected, delta == 0) << "delta " << delta;
  }
}

TEST(WeightedCycle, AgreesWithOracleOnRandomGraphs) {
  Rng rng(5);
  const auto weight = hashed_weights(3, 9);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = build::gnp(14, 0.22, rng);
    for (const std::uint64_t target : {0ull, 4ull, 8ull}) {
      WeightedCycleConfig cfg;
      cfg.length = 4;
      cfg.target_weight = target;
      cfg.repetitions = 250;
      const bool detected =
          detect_weighted_cycle(g, cfg, weight, 64,
                                100 + static_cast<std::uint64_t>(trial))
              .detected;
      const bool truth = oracle::has_weighted_cycle(g, 4, target, weight);
      // One-sided: a rejection must be genuine; detection may need more
      // repetitions, so only the positive direction is asserted strictly.
      if (detected) {
        EXPECT_TRUE(truth) << "trial " << trial << " W " << target;
      }
      if (!truth) {
        EXPECT_FALSE(detected);
      }
    }
  }
}

TEST(WeightedCycle, ZeroWeightsReduceToPlainDetection) {
  Rng rng(11);
  Graph g = build::random_tree(40, rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  const auto zero = [](Vertex, Vertex) -> std::uint64_t { return 0; };
  WeightedCycleConfig cfg;
  cfg.length = 4;
  cfg.target_weight = 0;
  cfg.repetitions = 500;
  EXPECT_TRUE(detect_weighted_cycle(g, cfg, zero, 64, 3).detected);
}

TEST(WeightedCycle, BudgetBlowsUpLinearlyInW) {
  // The cost of the weights, in the open: the round budget scales with
  // W+1, while the unweighted baseline is independent of W.
  const std::uint64_t n = 100;
  WeightedCycleConfig small;
  small.length = 8;
  small.target_weight = 0;
  WeightedCycleConfig large = small;
  large.target_weight = 99;
  EXPECT_EQ(weighted_cycle_round_budget(n, small), n + 9);
  EXPECT_EQ(weighted_cycle_round_budget(n, large), 100 * n + 9);
  EXPECT_EQ(pipelined_cycle_round_budget(n, 8), n + 9);
}

TEST(WeightedCycle, BandwidthGrowsWithWeightRange) {
  WeightedCycleConfig cfg;
  cfg.length = 8;
  cfg.target_weight = (1u << 20) - 1;
  EXPECT_GE(weighted_cycle_min_bandwidth(1024, cfg), 10u + 3u + 20u);
  const Graph g = build::cycle(8);
  cfg.repetitions = 1;
  EXPECT_THROW(detect_weighted_cycle(
                   g, cfg, [](Vertex, Vertex) -> std::uint64_t { return 1; },
                   /*bandwidth=*/8, 1),
               CheckFailure);
}

TEST(WeightedCycle, OracleCountsWeightsExactly) {
  // Two vertex-disjoint C_3 with different weights inside one graph.
  Graph g = build::disjoint_copies(build::cycle(3), 2);
  const auto weight = [](Vertex u, Vertex v) -> std::uint64_t {
    return (u < 3 && v < 3) ? 1 : 2;  // first triangle weight 3, second 6
  };
  EXPECT_TRUE(oracle::has_weighted_cycle(g, 3, 3, weight));
  EXPECT_TRUE(oracle::has_weighted_cycle(g, 3, 6, weight));
  EXPECT_FALSE(oracle::has_weighted_cycle(g, 3, 4, weight));
  EXPECT_FALSE(oracle::has_weighted_cycle(g, 3, 5, weight));
}

}  // namespace
}  // namespace csd::detect
