// Randomized consistency tests ("fuzzing") for the simulator engines:
// programs that send random payloads on random ports must never break the
// accounting invariants, and the two engines must agree on everything
// observable.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

/// Sends a random subset of ports a random-length payload each round;
/// rejects with small probability; halts at a per-node random round.
class FuzzProgram final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    Rng& rng = api.rng();
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      if (!rng.chance(2, 3)) continue;
      const std::uint64_t cap = api.bandwidth() == 0 ? 40 : api.bandwidth();
      const auto len = rng.below(cap + 1);
      BitVec payload;
      for (std::uint64_t b = 0; b < len; ++b) payload.push_back(rng.coin());
      api.send(p, std::move(payload));
    }
    if (rng.chance(1, 50)) api.reject();
    if (api.round() >= 3 + rng.below(10)) api.halt();
  }
};

ProgramFactory fuzz_factory() {
  return [](std::uint32_t) { return std::make_unique<FuzzProgram>(); };
}

TEST(SimulatorFuzz, MetricsAreInternallyConsistent) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = build::gnp(15, 0.3, rng);
    NetworkConfig cfg;
    cfg.bandwidth = 16;
    cfg.seed = 100 + static_cast<std::uint64_t>(trial);
    cfg.max_rounds = 64;
    cfg.record_transcript = true;

    std::uint64_t observed_bits = 0, observed_messages = 0;
    cfg.on_message = [&](std::uint64_t, std::uint32_t, std::uint32_t,
                         std::uint64_t bits) {
      observed_bits += bits;
      ++observed_messages;
    };
    Network net(g, cfg);
    const auto outcome = net.run(fuzz_factory());
    ASSERT_TRUE(outcome.completed);

    // Observer == metrics == transcript == per-node tallies.
    EXPECT_EQ(observed_bits, outcome.metrics.total_bits);
    EXPECT_EQ(observed_messages, outcome.metrics.messages);
    EXPECT_EQ(outcome.transcript.size(), outcome.metrics.messages);
    std::uint64_t per_node_sum = 0, transcript_bits = 0;
    for (const auto bits : outcome.metrics.bits_sent_by_node)
      per_node_sum += bits;
    for (const auto& entry : outcome.transcript)
      transcript_bits += entry.payload.size();
    EXPECT_EQ(per_node_sum, outcome.metrics.total_bits);
    EXPECT_EQ(transcript_bits, outcome.metrics.total_bits);
    EXPECT_LE(outcome.metrics.max_message_bits, 16u);

    // Verdict aggregation is the OR of per-node rejects.
    bool any_reject = false;
    for (const auto v : outcome.verdicts) any_reject |= v == Verdict::Reject;
    EXPECT_EQ(any_reject, outcome.detected);
  }
}

TEST(SimulatorFuzz, TranscriptSourcesAreRealEdges) {
  Rng rng(2);
  const Graph g = build::gnp(12, 0.35, rng);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.record_transcript = true;
  cfg.max_rounds = 64;
  Network net(g, cfg);
  const auto outcome = net.run(fuzz_factory());
  for (const auto& entry : outcome.transcript) {
    EXPECT_TRUE(g.has_edge(entry.src, entry.dst))
        << entry.src << "->" << entry.dst;
    EXPECT_LE(entry.payload.size(), 8u);
  }
  // At most one message per directed edge per round.
  std::map<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>, int>
      count;
  for (const auto& entry : outcome.transcript) {
    const auto key = std::make_tuple(entry.round, entry.src, entry.dst);
    EXPECT_EQ(++count[key], 1);
  }
}

TEST(SimulatorFuzz, AsyncAgreesWithSyncOnRandomPrograms) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = build::gnp(12, 0.3, rng);
    const std::uint64_t seed = 500 + static_cast<std::uint64_t>(trial);

    NetworkConfig sync_cfg;
    sync_cfg.bandwidth = 12;
    sync_cfg.seed = seed;
    sync_cfg.max_rounds = 64;
    const auto sync_outcome = run_congest(g, sync_cfg, fuzz_factory());
    ASSERT_TRUE(sync_outcome.completed);

    AsyncConfig async_cfg;
    async_cfg.bandwidth = 12;
    async_cfg.seed = seed;
    async_cfg.max_pulses = 64;
    async_cfg.max_delay = 1 + static_cast<std::uint32_t>(trial) * 2;
    const auto async_outcome = run_async(g, async_cfg, fuzz_factory());
    EXPECT_TRUE(async_outcome.completed);
    EXPECT_EQ(async_outcome.verdicts, sync_outcome.verdicts);
    EXPECT_EQ(async_outcome.payload_bits, sync_outcome.metrics.total_bits);
    EXPECT_EQ(async_outcome.pulses, sync_outcome.metrics.rounds);
  }
}

TEST(SimulatorFuzz, FaultMatrixIsDeterministicAndTerminates) {
  // Sweep a grid of fault environments over both wire disciplines: every
  // combination must terminate within the pulse cap (no hang), and running
  // the same seed twice must reproduce the FaultReport exactly.
  Rng rng(6);
  const double drop_rates[] = {0.0, 0.2, 0.5};
  const double corrupt_rates[] = {0.0, 0.1};
  std::uint64_t combo = 0;
  for (const auto mode : {TransportMode::Raw, TransportMode::Reliable}) {
    for (const double drop : drop_rates) {
      for (const double corrupt : corrupt_rates) {
        for (const bool crash : {false, true}) {
          const Graph g = build::gnp(10, 0.3, rng);
          AsyncConfig cfg;
          cfg.bandwidth = 12;
          cfg.seed = 700 + combo++;
          cfg.max_pulses = 48;
          cfg.max_delay = 3;
          cfg.transport = mode;
          cfg.faults.drop = drop;
          cfg.faults.corrupt = corrupt;
          if (crash) cfg.faults.crashes = {{2, 1}, {7, 2}};
          const auto a = run_async(g, cfg, fuzz_factory());
          const auto b = run_async(g, cfg, fuzz_factory());
          EXPECT_EQ(a.faults, b.faults)
              << "mode=" << static_cast<int>(mode) << " drop=" << drop
              << " corrupt=" << corrupt << " crash=" << crash;
          EXPECT_EQ(a.verdicts, b.verdicts);
          EXPECT_EQ(a.payload_bits, b.payload_bits);
          EXPECT_EQ(a.transport_bits, b.transport_bits);
          EXPECT_LE(a.pulses, 48u);
          if (crash) {
            // A node can stall (drops) or halt before its crash round, so
            // the crash count is only exact on loss-free links.
            EXPECT_LE(a.faults.crashed_nodes.size(), 2u);
            if (drop == 0.0) {
              EXPECT_EQ(a.faults.crashed_nodes.size(), 2u);
            }
          }
        }
      }
    }
  }
}

TEST(SimulatorFuzz, ReliableTransportRestoresFuzzEquivalence) {
  // FuzzProgram exercises data-driven sends, random payload lengths and
  // per-node halting times; the ARQ transport must reproduce the fault-free
  // synchronous outcome under heavy loss anyway.
  Rng rng(8);
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    const Graph g = build::gnp(12, 0.3, rng);
    NetworkConfig sync_cfg;
    sync_cfg.bandwidth = 12;
    sync_cfg.seed = 800 + trial;
    sync_cfg.max_rounds = 64;
    const auto sync_outcome = run_congest(g, sync_cfg, fuzz_factory());
    ASSERT_TRUE(sync_outcome.completed);

    AsyncConfig cfg;
    cfg.bandwidth = 12;
    cfg.seed = 800 + trial;
    cfg.max_pulses = 64;
    cfg.max_delay = 5;
    cfg.transport = TransportMode::Reliable;
    cfg.faults.drop = 0.3;
    cfg.faults.corrupt = 0.05;
    const auto outcome = run_async(g, cfg, fuzz_factory());
    ASSERT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.verdicts, sync_outcome.verdicts);
    EXPECT_EQ(outcome.payload_bits, sync_outcome.metrics.total_bits);
    EXPECT_EQ(outcome.pulses, sync_outcome.metrics.rounds);
  }
}

TEST(SimulatorFuzz, SyncEngineFaultsAreDeterministicToo) {
  Rng rng(9);
  const Graph g = build::gnp(12, 0.3, rng);
  NetworkConfig cfg;
  cfg.bandwidth = 12;
  cfg.seed = 17;
  cfg.max_rounds = 64;
  cfg.faults.drop = 0.25;
  cfg.faults.corrupt = 0.1;
  cfg.faults.crashes = {{3, 4}};
  const auto a = run_congest(g, cfg, fuzz_factory());
  const auto b = run_congest(g, cfg, fuzz_factory());
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_GT(a.faults.frames_dropped, 0u);
  EXPECT_EQ(a.faults.crashed_nodes, (std::vector<std::uint32_t>{3}));
}

TEST(SimulatorFuzz, DeterministicAcrossRepeatedRuns) {
  Rng rng(4);
  const Graph g = build::gnp(14, 0.25, rng);
  NetworkConfig cfg;
  cfg.bandwidth = 10;
  cfg.seed = 99;
  cfg.max_rounds = 64;
  const auto a = run_congest(g, cfg, fuzz_factory());
  const auto b = run_congest(g, cfg, fuzz_factory());
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

}  // namespace
}  // namespace csd::congest
