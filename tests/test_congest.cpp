// Tests for the CONGEST simulator: round semantics, bandwidth enforcement,
// metrics accounting, transcripts, identifiers, and the congested-clique
// helpers.
#include <gtest/gtest.h>

#include <memory>

#include "congest/clique.hpp"
#include "congest/network.hpp"
#include "graph/builders.hpp"
#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::congest {
namespace {

/// Broadcasts its id once, collects neighbor ids, halts after `rounds`.
class GossipOnce final : public NodeProgram {
 public:
  explicit GossipOnce(std::uint64_t rounds) : rounds_(rounds) {}
  void on_round(NodeApi& api) override {
    const unsigned bits = wire::bits_for(api.network_size());
    if (api.round() == 0) {
      wire::Writer w;
      w.u(api.id(), bits);
      api.broadcast(std::move(w).take());
    }
    if (api.round() == 1) {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        ASSERT_TRUE(msg != nullptr);
        wire::Reader r(*msg);
        EXPECT_EQ(r.u(bits), api.neighbor_id(p));
      }
    }
    if (api.round() + 1 >= rounds_) api.halt();
  }

 private:
  std::uint64_t rounds_;
};

TEST(Network, MessagesDeliveredNextRoundToCorrectPort) {
  const Graph g = build::cycle(6);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  auto outcome = run_congest(
      g, cfg, [](std::uint32_t) { return std::make_unique<GossipOnce>(2); });
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(outcome.metrics.rounds, 2u);
  EXPECT_EQ(outcome.metrics.messages, 12u);  // 6 nodes x 2 ports
}

TEST(Network, DefaultIdsAreIndices) {
  const Graph g = build::path(4);
  Network net(g, NetworkConfig{});
  ASSERT_EQ(net.ids().size(), 4u);
  EXPECT_EQ(net.ids()[3], 3u);
}

TEST(Network, CustomIdsVisibleToPrograms) {
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.bandwidth = 0;
  cfg.namespace_size = 128;
  Network net(g, cfg, {42, 99});
  std::vector<NodeId> observed(2);

  class IdProbe final : public NodeProgram {
   public:
    IdProbe(NodeId* slot, NodeId* peer) : slot_(slot), peer_(peer) {}
    void on_round(NodeApi& api) override {
      *slot_ = api.id();
      *peer_ = api.neighbor_id(0);
      api.halt();
    }

   private:
    NodeId* slot_;
    NodeId* peer_;
  };

  std::vector<NodeId> peers(2);
  auto outcome = net.run([&](std::uint32_t v) {
    return std::make_unique<IdProbe>(&observed[v], &peers[v]);
  });
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(observed[0], 42u);
  EXPECT_EQ(observed[1], 99u);
  EXPECT_EQ(peers[0], 99u);
  EXPECT_EQ(peers[1], 42u);
}

class OverBudgetSender final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    BitVec big(100, true);
    api.broadcast(big);  // exceeds any small bandwidth
    api.halt();
  }
};

TEST(Network, BandwidthEnforced) {
  // Over-budget sends no longer abort the run: the payload is truncated to
  // B bits and a Bandwidth violation is recorded on the outcome.
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  auto outcome = run_congest(g, cfg, [](std::uint32_t) {
    return std::make_unique<OverBudgetSender>();
  });
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.metrics.max_message_bits, 8u);
  ASSERT_EQ(outcome.faults.violations.size(), 2u);  // one per sender
  for (const auto& violation : outcome.faults.violations)
    EXPECT_EQ(violation.kind, ViolationKind::Bandwidth);
}

TEST(Network, UnboundedBandwidthIsLocalModel) {
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.bandwidth = 0;  // LOCAL
  auto outcome = run_congest(g, cfg, [](std::uint32_t) {
    return std::make_unique<OverBudgetSender>();
  });
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.metrics.max_message_bits, 100u);
}

class DoubleSender final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    BitVec first(1);
    first.set(0, true);
    api.send(0, first);
    api.send(0, BitVec(2));  // second send on same port: model violation
    api.halt();
  }
};

TEST(Network, OneMessagePerEdgePerRound) {
  // The second send on a port is ignored (first wins) and recorded as a
  // DuplicateSend violation instead of aborting the run.
  const Graph g = build::path(2);
  auto outcome = run_congest(g, NetworkConfig{}, [](std::uint32_t) {
    return std::make_unique<DoubleSender>();
  });
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.metrics.max_message_bits, 1u);  // first send delivered
  ASSERT_EQ(outcome.faults.violations.size(), 2u);  // one per node
  for (const auto& violation : outcome.faults.violations)
    EXPECT_EQ(violation.kind, ViolationKind::DuplicateSend);
}

class NeverHalts final : public NodeProgram {
 public:
  void on_round(NodeApi&) override {}
};

TEST(Network, RoundCapStopsRunaways) {
  const Graph g = build::path(3);
  NetworkConfig cfg;
  cfg.max_rounds = 10;
  auto outcome = run_congest(
      g, cfg, [](std::uint32_t) { return std::make_unique<NeverHalts>(); });
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.metrics.rounds, 10u);
}

class RejectIfIndexZero final : public NodeProgram {
 public:
  explicit RejectIfIndexZero(bool is_zero) : is_zero_(is_zero) {}
  void on_round(NodeApi& api) override {
    if (is_zero_) api.reject();
    api.halt();
  }

 private:
  bool is_zero_;
};

TEST(Network, VerdictAggregation) {
  const Graph g = build::path(3);
  auto outcome = run_congest(g, NetworkConfig{}, [](std::uint32_t v) {
    return std::make_unique<RejectIfIndexZero>(v == 0);
  });
  EXPECT_TRUE(outcome.detected);
  EXPECT_EQ(outcome.verdicts[0], Verdict::Reject);
  EXPECT_EQ(outcome.verdicts[1], Verdict::Accept);
}

class PingOnce final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    if (api.round() == 0 && api.id() == 0) {
      BitVec three(3, true);
      api.send(0, three);
    }
    if (api.round() == 1) api.halt();
  }
};

TEST(Network, MetricsCountBits) {
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.bandwidth = 4;
  auto outcome = run_congest(
      g, cfg, [](std::uint32_t) { return std::make_unique<PingOnce>(); });
  EXPECT_EQ(outcome.metrics.total_bits, 3u);
  EXPECT_EQ(outcome.metrics.messages, 1u);
  EXPECT_EQ(outcome.metrics.bits_sent_by_node[0], 3u);
  EXPECT_EQ(outcome.metrics.bits_sent_by_node[1], 0u);
}

TEST(Network, TranscriptRecordsMessages) {
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.record_transcript = true;
  auto outcome = run_congest(
      g, cfg, [](std::uint32_t) { return std::make_unique<PingOnce>(); });
  ASSERT_EQ(outcome.transcript.size(), 1u);
  EXPECT_EQ(outcome.transcript[0].src, 0u);
  EXPECT_EQ(outcome.transcript[0].dst, 1u);
  EXPECT_EQ(outcome.transcript[0].round, 0u);
  EXPECT_EQ(outcome.transcript[0].payload.size(), 3u);
}

TEST(Network, ObserverSeesMessages) {
  const Graph g = build::path(2);
  NetworkConfig cfg;
  std::uint64_t observed_bits = 0;
  cfg.on_message = [&](std::uint64_t, std::uint32_t src, std::uint32_t dst,
                       std::uint64_t bits) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(dst, 1u);
    observed_bits += bits;
  };
  run_congest(g, cfg,
              [](std::uint32_t) { return std::make_unique<PingOnce>(); });
  EXPECT_EQ(observed_bits, 3u);
}

TEST(Network, RngIsPerNodeAndSeedDeterministic) {
  const Graph g = build::path(2);

  class RngProbe final : public NodeProgram {
   public:
    explicit RngProbe(std::uint64_t* out) : out_(out) {}
    void on_round(NodeApi& api) override {
      *out_ = api.rng()();
      api.halt();
    }

   private:
    std::uint64_t* out_;
  };

  std::vector<std::uint64_t> draws_a(2), draws_b(2);
  NetworkConfig cfg;
  cfg.seed = 77;
  Network(g, cfg).run([&](std::uint32_t v) {
    return std::make_unique<RngProbe>(&draws_a[v]);
  });
  Network(g, cfg).run([&](std::uint32_t v) {
    return std::make_unique<RngProbe>(&draws_b[v]);
  });
  EXPECT_EQ(draws_a, draws_b);       // deterministic per seed
  EXPECT_NE(draws_a[0], draws_a[1]);  // nodes draw independently
}

TEST(RunAmplified, AggregatesDetection) {
  const Graph g = build::path(2);

  // Rejects only when the node rng's first draw is even: a ~1/2 chance per
  // repetition, so 20 repetitions detect with overwhelming probability.
  class CoinReject final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.rng()() % 2 == 0) api.reject();
      api.halt();
    }
  };

  NetworkConfig cfg;
  cfg.seed = 5;
  const auto factory = [](std::uint32_t) {
    return std::make_unique<CoinReject>();
  };

  // Default driver: stop after the first rejecting repetition (one-sided
  // error makes further repetitions redundant) and account honestly.
  auto outcome = run_amplified(g, cfg, factory, 20);
  EXPECT_TRUE(outcome.detected);
  EXPECT_EQ(outcome.metrics.repetitions_executed +
                outcome.metrics.repetitions_skipped,
            20u);
  // Each executed repetition is exactly one round; costs cover only what ran.
  EXPECT_EQ(outcome.metrics.rounds, outcome.metrics.repetitions_executed);

  // Exhaustive mode: every repetition runs and the costs sum over all 20.
  AmplifyOptions all;
  all.early_exit = false;
  auto full = run_amplified(g, cfg, factory, 20, all);
  EXPECT_TRUE(full.detected);
  EXPECT_EQ(full.metrics.repetitions_executed, 20u);
  EXPECT_EQ(full.metrics.repetitions_skipped, 0u);
  EXPECT_EQ(full.metrics.rounds, 20u);  // summed over repetitions
}

// -------------------------------------------------- namespace & broadcast --
TEST(Network, NamespaceDefaultsToSizeAndIsVisible) {
  const Graph g = build::path(3);

  class NamespaceProbe final : public NodeProgram {
   public:
    explicit NamespaceProbe(std::uint64_t* out) : out_(out) {}
    void on_round(NodeApi& api) override {
      *out_ = api.namespace_size();
      api.halt();
    }

   private:
    std::uint64_t* out_;
  };

  std::uint64_t seen = 0;
  run_congest(g, NetworkConfig{}, [&](std::uint32_t) {
    return std::make_unique<NamespaceProbe>(&seen);
  });
  EXPECT_EQ(seen, 3u);

  NetworkConfig wide;
  wide.namespace_size = 1000;
  run_congest(g, wide, [&](std::uint32_t) {
    return std::make_unique<NamespaceProbe>(&seen);
  });
  EXPECT_EQ(seen, 1000u);
}

TEST(Network, RejectsIdsOutsideNamespace) {
  const Graph g = build::path(2);
  NetworkConfig cfg;
  cfg.namespace_size = 10;
  Network net(g, cfg, {3, 11});
  EXPECT_THROW(net.run([](std::uint32_t) {
    return std::make_unique<NeverHalts>();
  }),
               CheckFailure);
}

class PerPortSender final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      BitVec payload;
      payload.append_bits(p, 4);  // different content per port
      api.send(p, payload);
    }
    api.halt();
  }
};

TEST(Network, BroadcastOnlyRejectsPerPortMessages) {
  const Graph g = build::path(3);  // middle node has two ports
  NetworkConfig cfg;
  cfg.broadcast_only = true;
  auto outcome = run_congest(g, cfg, [](std::uint32_t) {
    return std::make_unique<PerPortSender>();
  });
  EXPECT_TRUE(outcome.completed);
  // Only the middle node has two ports with differing payloads.
  ASSERT_EQ(outcome.faults.violations.size(), 1u);
  EXPECT_EQ(outcome.faults.violations[0].kind,
            ViolationKind::BroadcastMismatch);
  EXPECT_EQ(outcome.faults.violations[0].node, 1u);
}

TEST(Network, ScheduledCrashProducesFaultReport) {
  // A crashed node falls silent: it stops executing rounds and its queued
  // messages are discarded, but the run continues for everyone else.
  class HaltAtThree final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.round() >= 3) api.halt();
    }
  };
  const Graph g = build::path(3);
  NetworkConfig cfg;
  cfg.max_rounds = 8;
  cfg.faults.crashes = {{1, 1}};
  auto outcome = run_congest(
      g, cfg, [](std::uint32_t) { return std::make_unique<HaltAtThree>(); });
  EXPECT_FALSE(outcome.completed);  // the crashed node never halts
  EXPECT_EQ(outcome.faults.crashed_nodes, (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(outcome.faults.stalled_nodes.empty());  // ends halt anyway
  EXPECT_FALSE(outcome.faults.detected_by_survivors);
}

TEST(Network, ProgramFaultCrashesNodeNotProcess) {
  // Under a fault plan a throwing program becomes a crashed node with a
  // ProgramFault violation; without one, the engine stays fail-fast.
  class ThrowsAtTwo final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      CSD_CHECK_MSG(api.round() != 2 || api.id() != 0, "decode exploded");
      if (api.round() >= 4) api.halt();
    }
  };
  const Graph g = build::path(2);
  const auto factory = [](std::uint32_t) {
    return std::make_unique<ThrowsAtTwo>();
  };

  NetworkConfig strict;
  strict.max_rounds = 8;
  EXPECT_THROW(run_congest(g, strict, factory), CheckFailure);

  NetworkConfig graceful = strict;
  graceful.faults.crashes = {{1, 1000}};  // any plan enables degradation
  auto outcome = run_congest(g, graceful, factory);
  EXPECT_EQ(outcome.faults.crashed_nodes, (std::vector<std::uint32_t>{0}));
  ASSERT_EQ(outcome.faults.violations.size(), 1u);
  EXPECT_EQ(outcome.faults.violations[0].kind, ViolationKind::ProgramFault);
  EXPECT_EQ(outcome.faults.violations[0].node, 0u);
  EXPECT_EQ(outcome.faults.violations[0].round, 2u);
}

TEST(Network, BroadcastOnlyAllowsUniformMessages) {
  const Graph g = build::cycle(5);
  NetworkConfig cfg;
  cfg.broadcast_only = true;
  cfg.bandwidth = 8;
  auto outcome = run_congest(
      g, cfg, [](std::uint32_t) { return std::make_unique<GossipOnce>(2); });
  EXPECT_TRUE(outcome.completed);
}

// ------------------------------------------------------ congested clique --
TEST(Clique, PortPeerInverse) {
  for (Vertex v = 0; v < 8; ++v)
    for (std::uint32_t p = 0; p < 7; ++p) {
      const Vertex w = clique_peer(v, p);
      EXPECT_NE(w, v);
      EXPECT_EQ(clique_port(v, w), p);
    }
}

TEST(Clique, PortsMatchCompleteTopology) {
  const Graph k5 = build::complete(5);
  for (Vertex v = 0; v < 5; ++v) {
    const auto nbrs = k5.neighbors(v);
    for (std::uint32_t p = 0; p < nbrs.size(); ++p)
      EXPECT_EQ(nbrs[p], clique_peer(v, p));
  }
}

TEST(Clique, RunsProgramsAllToAll) {
  class CountNeighbors final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      EXPECT_EQ(api.degree(), api.network_size() - 1);
      api.halt();
    }
  };
  auto outcome = run_congested_clique(6, NetworkConfig{}, [](std::uint32_t) {
    return std::make_unique<CountNeighbors>();
  });
  EXPECT_TRUE(outcome.completed);
}

}  // namespace
}  // namespace csd::congest
