// Tests for the sharded superstep engine (congest/shard.hpp) and its
// Partitioner: partition invariants and balance bounds, and the hard
// bit-identity contract — every outcome field the classic sync engine
// promises to be deterministic must be byte-for-byte identical at every
// worker count, either partition policy, and any --jobs fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "congest/network.hpp"
#include "congest/partition.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/generator.hpp"
#include "graph/builders.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace csd::congest {
namespace {

std::string trace_jsonl(const RunOutcome& outcome) {
  std::ostringstream os;
  outcome.trace.write_jsonl(os);
  return os.str();
}

/// Full deterministic-outcome comparison: everything the determinism
/// contract covers (deliberately not timers or trace_bytes-vs-capacity
/// internals — trace JSONL equality subsumes the trace).
void expect_outcomes_identical(const RunOutcome& a, const RunOutcome& b,
                               const std::string& label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.detected, b.detected) << label;
  EXPECT_EQ(a.verdicts, b.verdicts) << label;
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds) << label;
  EXPECT_EQ(a.metrics.messages, b.metrics.messages) << label;
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits) << label;
  EXPECT_EQ(a.metrics.max_message_bits, b.metrics.max_message_bits) << label;
  EXPECT_EQ(a.metrics.bits_sent_by_node, b.metrics.bits_sent_by_node)
      << label;
  EXPECT_TRUE(a.faults == b.faults) << label;
  EXPECT_EQ(trace_jsonl(a), trace_jsonl(b)) << label;
  ASSERT_EQ(a.transcript.size(), b.transcript.size()) << label;
  for (std::size_t i = 0; i < a.transcript.size(); ++i) {
    EXPECT_EQ(a.transcript[i].round, b.transcript[i].round) << label;
    EXPECT_EQ(a.transcript[i].src, b.transcript[i].src) << label;
    EXPECT_EQ(a.transcript[i].dst, b.transcript[i].dst) << label;
    EXPECT_TRUE(a.transcript[i].payload == b.transcript[i].payload) << label;
  }
}

/// Traffic-heavy randomized program: phase declarations, per-node RNG,
/// variable-size messages, staggered halts, and occasional rejects — every
/// order-sensitive engine feature in one workload.
class Chatter final : public NodeProgram {
 public:
  explicit Chatter(std::uint64_t rounds) : rounds_(rounds) {}
  void on_round(NodeApi& api) override {
    api.phase(api.round() < rounds_ / 2 ? "spread" : "collect");
    const std::uint64_t bits = 1 + api.rng().below(api.bandwidth());
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      if (api.rng().below(4) == 0) continue;  // skip some ports
      wire::Writer w;
      w.u(api.rng().below(1ull << std::min<std::uint64_t>(bits, 32)),
          static_cast<unsigned>(std::min<std::uint64_t>(bits, 32)));
      api.send(p, std::move(w).take());
    }
    if (api.rng().below(1000) == 0) api.reject();
    if (api.round() + 1 >= rounds_ + api.id() % 5) api.halt();
  }

 private:
  std::uint64_t rounds_;
};

/// Violates the model on purpose (duplicate send, bandwidth overrun) so the
/// merged violation list's order is pinned against the classic engine.
class Naughty final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    if (api.round() == 0 && api.degree() > 0) {
      wire::Writer w1;
      w1.u(1, 4);
      api.send(0, std::move(w1).take());
      wire::Writer w2;
      w2.u(2, 4);
      api.send(0, std::move(w2).take());  // duplicate send
      if (api.degree() > 1) {
        BitVec big;
        for (int i = 0; i < 100; ++i) big.push_back(true);
        api.send(1, std::move(big));  // bandwidth overrun
      }
    }
    if (api.round() >= 1) api.halt();
  }
};

ProgramFactory chatter(std::uint64_t rounds) {
  return [rounds](std::uint32_t) { return std::make_unique<Chatter>(rounds); };
}

// ---------------------------------------------------------------------------
// Partitioner invariants
// ---------------------------------------------------------------------------

TEST(Partition, OwnedListsPartitionVerticesAndEdges) {
  Rng rng(99);
  const std::vector<Graph> families = {
      build::path(64), build::cycle(64), build::complete(24),
      build::gnp(80, 0.1, rng)};
  for (const Graph& g : families) {
    const GraphCsr& csr = g.csr();
    for (const std::uint32_t w_count : {1u, 2u, 3u, 8u, 64u, 100u}) {
      for (const auto policy :
           {PartitionPolicy::Range, PartitionPolicy::Hash}) {
        const Partition part = Partition::build(csr, w_count, policy);
        std::vector<std::uint8_t> seen(g.num_vertices(), 0);
        std::uint64_t edges = 0;
        for (std::uint32_t w = 0; w < w_count; ++w) {
          Vertex prev = 0;
          bool first = true;
          for (const Vertex v : part.owned(w)) {
            ASSERT_LT(v, g.num_vertices());
            EXPECT_EQ(part.owner(v), w);
            EXPECT_TRUE(first || v > prev) << "owned list not ascending";
            ASSERT_EQ(seen[v], 0) << "vertex owned twice";
            seen[v] = 1;
            prev = v;
            first = false;
          }
          edges += part.owned_directed_edges(w);
        }
        for (Vertex v = 0; v < g.num_vertices(); ++v)
          EXPECT_EQ(seen[v], 1) << "vertex " << v << " unowned";
        // Edge ownership (by source vertex) partitions the dense index.
        EXPECT_EQ(edges, csr.num_directed_edges());
        // Directed cuts come in reverse pairs.
        EXPECT_EQ(part.cut_directed_edges() % 2, 0u);
      }
    }
  }
}

TEST(Partition, RangePolicyIsContiguousAndEdgeBalanced) {
  Rng rng(7);
  const std::vector<Graph> families = {build::path(200), build::cycle(200),
                                       build::gnp(160, 0.08, rng)};
  for (const Graph& g : families) {
    const GraphCsr& csr = g.csr();
    std::uint64_t max_weight = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      max_weight = std::max<std::uint64_t>(max_weight, g.degree(v) + 1);
    for (const std::uint32_t w_count : {2u, 4u, 8u}) {
      const Partition part =
          Partition::build(csr, w_count, PartitionPolicy::Range);
      // Contiguity: owners are non-decreasing in vertex order.
      for (Vertex v = 1; v < g.num_vertices(); ++v)
        EXPECT_GE(part.owner(v), part.owner(v - 1));
      // Balance: no worker exceeds its weight share by more than one
      // vertex's worth of weight (the greedy cut's granularity).
      const std::uint64_t total = csr.num_directed_edges() + g.num_vertices();
      for (std::uint32_t w = 0; w < w_count; ++w) {
        const std::uint64_t weight =
            part.owned_directed_edges(w) + part.owned(w).size();
        EXPECT_LE(weight, total / w_count + max_weight)
            << "worker " << w << " of " << w_count;
      }
    }
  }
}

TEST(Partition, HashPolicyBalancesVertices) {
  Rng rng(13);
  const Graph g = build::gnp(512, 0.03, rng);
  const Partition part =
      Partition::build(g.csr(), 8, PartitionPolicy::Hash);
  for (std::uint32_t w = 0; w < 8; ++w) {
    // Fixed mixer, so this is a deterministic property, not a flaky one:
    // each worker holds 64 +- 32 of the 512 vertices.
    EXPECT_GE(part.owned(w).size(), 32u);
    EXPECT_LE(part.owned(w).size(), 96u);
  }
}

TEST(Partition, DigestPinsAssignment) {
  const Graph g = build::cycle(32);
  const Partition a = Partition::build(g.csr(), 4, PartitionPolicy::Range);
  const Partition b = Partition::build(g.csr(), 4, PartitionPolicy::Range);
  const Partition c = Partition::build(g.csr(), 4, PartitionPolicy::Hash);
  const Partition d = Partition::build(g.csr(), 5, PartitionPolicy::Range);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(a.digest(), d.digest());
}

// ---------------------------------------------------------------------------
// Bit-identity: sharded vs classic
// ---------------------------------------------------------------------------

TEST(Shard, W1BitIdenticalToClassicOnFuzzSmokeCorpus) {
  for (std::uint64_t case_seed = 1; case_seed <= 25; ++case_seed) {
    const fuzz::FuzzCase c = fuzz::generate_case(case_seed);
    const Graph host = fuzz::build_graph(c);
    const std::uint64_t bandwidth = fuzz::effective_bandwidth(c, host);
    NetworkConfig cfg;
    cfg.bandwidth = bandwidth;
    cfg.max_rounds = fuzz::round_budget(c, host, bandwidth);
    cfg.seed = c.seed;
    cfg.trace.enabled = true;
    if (c.has_faults()) cfg.faults = fuzz::fault_plan(c);
    const ProgramFactory factory = fuzz::make_program(c);

    const Network classic(host, cfg);
    NetworkConfig sharded_cfg = cfg;
    sharded_cfg.shard.workers = 1;
    const Network sharded(host, sharded_cfg);
    expect_outcomes_identical(classic.run(factory), sharded.run(factory),
                              "case seed " + std::to_string(case_seed));
  }
}

TEST(Shard, MatrixBitIdenticalAcrossWorkersAndPolicies) {
  Rng rng(17);
  Graph g = build::random_tree(96, rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  NetworkConfig cfg;
  cfg.bandwidth = 24;
  cfg.max_rounds = 64;
  cfg.seed = 41;
  cfg.trace.enabled = true;
  cfg.trace.per_edge = true;
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(chatter(12));
  EXPECT_GT(reference.metrics.messages, 0u);
  for (const std::uint32_t w_count : {1u, 2u, 8u}) {
    for (const auto policy : {PartitionPolicy::Range, PartitionPolicy::Hash}) {
      NetworkConfig shard_cfg = cfg;
      shard_cfg.shard.workers = w_count;
      shard_cfg.shard.policy = policy;
      const Network net(g, shard_cfg);
      expect_outcomes_identical(
          reference, net.run(chatter(12)),
          "W=" + std::to_string(w_count) + " policy " +
              std::string(to_string(policy)));
    }
  }
}

TEST(Shard, AmplifiedRunsIdenticalAtEveryWorkersAndJobs) {
  Rng rng(29);
  const Graph g = build::gnp(48, 0.08, rng);
  NetworkConfig cfg;
  cfg.bandwidth = 16;
  cfg.max_rounds = 40;
  cfg.seed = 5;
  cfg.trace.enabled = true;
  AmplifyOptions opts;
  opts.jobs = 1;
  opts.early_exit = false;
  const RunOutcome reference = run_amplified(g, cfg, chatter(8), 6, opts);
  for (const std::uint32_t w_count : {1u, 2u, 8u}) {
    for (const unsigned jobs : {1u, 4u}) {
      NetworkConfig shard_cfg = cfg;
      shard_cfg.shard.workers = w_count;
      AmplifyOptions sharded_opts = opts;
      sharded_opts.jobs = jobs;
      const RunOutcome other =
          run_amplified(g, shard_cfg, chatter(8), 6, sharded_opts);
      expect_outcomes_identical(reference, other,
                                "W=" + std::to_string(w_count) + " jobs=" +
                                    std::to_string(jobs));
    }
  }
}

TEST(Shard, FaultyRunBitIdenticalIncludingReportOrder) {
  const Graph g = build::cycle(40);
  NetworkConfig cfg;
  cfg.bandwidth = 16;
  cfg.max_rounds = 48;
  cfg.seed = 3;
  cfg.trace.enabled = true;
  cfg.faults.drop = 0.08;
  cfg.faults.corrupt = 0.05;
  cfg.faults.crashes.push_back({7, 4});
  cfg.faults.crashes.push_back({23, 9});
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(chatter(16));
  EXPECT_FALSE(reference.faults.crashed_nodes.empty());
  for (const std::uint32_t w_count : {2u, 8u}) {
    NetworkConfig shard_cfg = cfg;
    shard_cfg.shard.workers = w_count;
    shard_cfg.shard.policy = PartitionPolicy::Hash;
    const Network net(g, shard_cfg);
    expect_outcomes_identical(reference, net.run(chatter(16)),
                              "faulty W=" + std::to_string(w_count));
  }
}

TEST(Shard, ViolationListOrderMatchesClassic) {
  const Graph g = build::complete(12);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 8;
  const auto naughty = [](std::uint32_t) { return std::make_unique<Naughty>(); };
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(naughty);
  ASSERT_GE(reference.faults.violations.size(), 12u);
  NetworkConfig shard_cfg = cfg;
  shard_cfg.shard.workers = 5;
  shard_cfg.shard.policy = PartitionPolicy::Hash;
  const Network net(g, shard_cfg);
  const RunOutcome sharded = net.run(naughty);
  ASSERT_EQ(sharded.faults.violations.size(),
            reference.faults.violations.size());
  for (std::size_t i = 0; i < reference.faults.violations.size(); ++i)
    EXPECT_TRUE(sharded.faults.violations[i] == reference.faults.violations[i])
        << "violation " << i << " out of order";
}

TEST(Shard, TranscriptAndOnMessageReplayInClassicOrder) {
  const Graph g = build::grid(6, 6);
  NetworkConfig cfg;
  cfg.bandwidth = 12;
  cfg.max_rounds = 24;
  cfg.seed = 9;
  cfg.record_transcript = true;
  using Event = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t,
                           std::uint64_t>;
  std::vector<Event> classic_events;
  cfg.on_message = [&](std::uint64_t r, std::uint32_t s, std::uint32_t d,
                       std::uint64_t bits) {
    classic_events.emplace_back(r, s, d, bits);
  };
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(chatter(6));
  ASSERT_FALSE(reference.transcript.empty());

  std::vector<Event> sharded_events;
  NetworkConfig shard_cfg = cfg;
  shard_cfg.shard.workers = 4;
  shard_cfg.on_message = [&](std::uint64_t r, std::uint32_t s,
                             std::uint32_t d, std::uint64_t bits) {
    sharded_events.emplace_back(r, s, d, bits);
  };
  const Network net(g, shard_cfg);
  expect_outcomes_identical(reference, net.run(chatter(6)), "transcript");
  EXPECT_EQ(classic_events, sharded_events);
}

TEST(Shard, BroadcastOnlyModeMatches) {
  const Graph g = build::star(9);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 6;
  cfg.broadcast_only = true;
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(chatter(3));
  NetworkConfig shard_cfg = cfg;
  shard_cfg.shard.workers = 3;
  const Network net(g, shard_cfg);
  expect_outcomes_identical(reference, net.run(chatter(3)), "broadcast");
}

// ---------------------------------------------------------------------------
// Checkpoints, resume, snapshots
// ---------------------------------------------------------------------------

TEST(Shard, SnapshotsAreBitIdenticalAndResumeAcrossWorkerCounts) {
  Rng rng(31);
  const Graph g = build::gnp(56, 0.07, rng);
  NetworkConfig cfg;
  cfg.bandwidth = 16;
  cfg.max_rounds = 48;
  cfg.seed = 21;
  cfg.trace.enabled = true;
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(chatter(10));
  ASSERT_GE(reference.metrics.rounds, 6u);

  NetworkConfig ckpt_cfg = cfg;
  ckpt_cfg.checkpoint_at_round = 5;
  const Network classic_ckpt(g, ckpt_cfg);
  const RunOutcome classic_observed = classic_ckpt.run(chatter(10));
  ASSERT_NE(classic_observed.checkpoint, nullptr);
  const std::string classic_snap_json =
      to_json(*classic_observed.checkpoint).dump();

  for (const std::uint32_t w_count : {1u, 2u, 8u}) {
    NetworkConfig shard_ckpt = ckpt_cfg;
    shard_ckpt.shard.workers = w_count;
    shard_ckpt.shard.policy = PartitionPolicy::Hash;
    const Network net(g, shard_ckpt);
    const RunOutcome observed = net.run(chatter(10));
    ASSERT_NE(observed.checkpoint, nullptr);
    // csd-ckpt-v1 snapshots are bit-identical at every worker count.
    EXPECT_EQ(to_json(*observed.checkpoint).dump(), classic_snap_json)
        << "snapshot differs at W=" << w_count;
    // A snapshot taken at W resumes at any other worker count (and on the
    // classic engine) to the uninterrupted outcome.
    NetworkConfig resume_cfg = cfg;
    resume_cfg.shard.workers = w_count == 8 ? 2 : 8;
    const Network resume_net(g, resume_cfg);
    const RunOutcome resumed =
        resume_net.resume(chatter(10), *observed.checkpoint);
    EXPECT_EQ(resumed.verdicts, reference.verdicts);
    EXPECT_EQ(resumed.metrics.messages, reference.metrics.messages);
    EXPECT_EQ(resumed.metrics.total_bits, reference.metrics.total_bits);
    EXPECT_TRUE(resumed.faults == reference.faults);
    const RunOutcome classic_resumed =
        classic.resume(chatter(10), *observed.checkpoint);
    EXPECT_EQ(classic_resumed.metrics.total_bits,
              reference.metrics.total_bits);
  }
}

// ---------------------------------------------------------------------------
// Hooks and counters
// ---------------------------------------------------------------------------

TEST(Shard, SuperstepStatsAccountEveryDeliveredFrame) {
  const Graph g = build::cycle(32);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 32;
  cfg.shard.workers = 4;  // Range on a cycle: 4 contiguous arcs, 8 cut edges
  std::uint64_t hook_frames = 0;
  bool saw_halt_vote = false;
  std::uint64_t last_round = 0;
  cfg.shard.on_superstep = [&](const ShardSuperstepStats& s) {
    hook_frames += s.channel_frames + s.local_frames;
    saw_halt_vote = saw_halt_vote || s.voted_halt;
    last_round = s.round;
  };
  const Network net(g, cfg);
  const RunOutcome outcome = net.run(chatter(8));
  // Fault-free: every accounted message was delivered either locally or
  // through a channel, and the hook saw each exactly once.
  EXPECT_EQ(hook_frames, outcome.metrics.messages);
  // Staggered halts (id % 5): some worker goes all-halted while others run.
  EXPECT_TRUE(saw_halt_vote);
  EXPECT_GT(last_round, 0u);
}

TEST(Shard, CombinerRunsOnChannelsWithoutChangingTheOutcome) {
  const Graph g = build::cycle(24);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 24;
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(chatter(6));
  NetworkConfig shard_cfg = cfg;
  shard_cfg.shard.workers = 4;
  std::uint64_t invocations = 0;
  shard_cfg.shard.combiner = [&](std::uint32_t, std::uint32_t,
                                 ShardChannel& channel) {
    ++invocations;  // worker-threaded in general; single-channel here per pair
    // Reverse the batch: the engine must re-sort to the edge merge order.
    const auto used = static_cast<std::ptrdiff_t>(channel.used);
    std::reverse(channel.edges.begin(), channel.edges.begin() + used);
    std::reverse(channel.payloads.begin(), channel.payloads.begin() + used);
  };
  const Network net(g, shard_cfg);
  expect_outcomes_identical(reference, net.run(chatter(6)), "combiner");
  EXPECT_GT(invocations, 0u);
}

TEST(Shard, ChannelCountersSurfaceInMetricsAndTraceSummary) {
  const Graph g = build::cycle(32);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 32;
  cfg.trace.enabled = true;
  cfg.shard.workers = 4;
  cfg.shard.channel_counters = true;
  const Network net(g, cfg);
  const RunOutcome outcome = net.run(chatter(8));
  EXPECT_EQ(outcome.metrics.counters.value("shard_workers"), 4u);
  EXPECT_EQ(outcome.metrics.counters.value("shard_cut_edges"), 8u);
  std::uint64_t channel_bytes = 0;
  for (std::uint32_t w = 0; w < 4; ++w)
    channel_bytes += outcome.metrics.counters.value(
        obs::worker_counter_name("shard_channel_bytes", w));
  EXPECT_GT(channel_bytes, 0u);
  EXPECT_NE(trace_jsonl(outcome).find("shard_channel_bytes_w0"),
            std::string::npos);

  // Off by default: the determinism matrix never sees worker-dependent
  // counters.
  NetworkConfig plain = cfg;
  plain.shard.channel_counters = false;
  const Network plain_net(g, plain);
  const RunOutcome plain_outcome = plain_net.run(chatter(8));
  EXPECT_EQ(plain_outcome.metrics.counters.value("shard_workers"), 0u);
  EXPECT_EQ(trace_jsonl(plain_outcome).find("shard_workers"),
            std::string::npos);
}

TEST(Shard, StallWindowFiresIdentically) {
  /// Never halts, never sends: the watchdog must cut both engines at the
  /// same round with the same report.
  class Mute final : public NodeProgram {
   public:
    void on_round(NodeApi&) override {}
  };
  const Graph g = build::path(10);
  NetworkConfig cfg;
  cfg.max_rounds = 1000;
  cfg.stall_window = 7;
  const auto factory = [](std::uint32_t) { return std::make_unique<Mute>(); };
  const Network classic(g, cfg);
  const RunOutcome reference = classic.run(factory);
  EXPECT_EQ(reference.faults.watchdog_stalls, 1u);
  NetworkConfig shard_cfg = cfg;
  shard_cfg.shard.workers = 3;
  const Network net(g, shard_cfg);
  expect_outcomes_identical(reference, net.run(factory), "stall");
}

}  // namespace
}  // namespace csd::congest
