// Tests for the asynchronous engine + frame synchronizer: the paper's
// algorithms must behave identically (verdicts, payload bits, pulse counts)
// under adversarially jittered message delays as under the synchronous
// simulator — which is what justifies studying them synchronously.
#include <gtest/gtest.h>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "detect/clique_detect.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/tree_detect.hpp"
#include "congest/primitives.hpp"
#include "detect/weighted_cycle.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

/// Runs the same program on both engines with matching seeds and asserts
/// bit-level equivalence of the observable outcome.
void expect_equivalent(const Graph& g, const ProgramFactory& factory,
                       std::uint64_t bandwidth, std::uint64_t seed,
                       std::uint64_t max_rounds, std::uint32_t max_delay) {
  NetworkConfig sync_cfg;
  sync_cfg.bandwidth = bandwidth;
  sync_cfg.seed = seed;
  sync_cfg.max_rounds = max_rounds;
  const auto sync_outcome = run_congest(g, sync_cfg, factory);
  ASSERT_TRUE(sync_outcome.completed);

  AsyncConfig async_cfg;
  async_cfg.bandwidth = bandwidth;
  async_cfg.seed = seed;
  async_cfg.max_pulses = max_rounds;
  async_cfg.max_delay = max_delay;
  const auto async_outcome = run_async(g, async_cfg, factory);

  EXPECT_TRUE(async_outcome.completed);
  EXPECT_EQ(async_outcome.detected, sync_outcome.detected);
  EXPECT_EQ(async_outcome.verdicts, sync_outcome.verdicts);
  EXPECT_EQ(async_outcome.payload_bits, sync_outcome.metrics.total_bits);
  EXPECT_EQ(async_outcome.pulses, sync_outcome.metrics.rounds);
}

TEST(AsyncEngine, PipelinedCycleEquivalence) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = build::gnp(20, 0.15, rng);
    expect_equivalent(g, detect::pipelined_cycle_program(4), 64,
                      300 + static_cast<std::uint64_t>(trial),
                      detect::pipelined_cycle_round_budget(20, 4) + 1,
                      1 + static_cast<std::uint32_t>(trial) * 3);
  }
}

TEST(AsyncEngine, EvenCycleEquivalence) {
  Rng rng(7);
  Graph g = build::random_tree(40, rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  detect::EvenCycleConfig cfg;
  cfg.k = 2;
  for (const std::uint32_t delay : {1u, 4u, 16u}) {
    for (std::uint64_t seed = 40; seed < 44; ++seed) {
      expect_equivalent(
          g, detect::even_cycle_program(cfg), 64, seed,
          detect::make_even_cycle_schedule(40, cfg).total_rounds() + 1,
          delay);
    }
  }
}

TEST(AsyncEngine, EvenCycleK3AndWeightedCycleEquivalence) {
  const Graph g = build::disjoint_copies(build::cycle(6), 4);
  detect::EvenCycleConfig cfg;
  cfg.k = 3;
  cfg.c_num = 1;
  expect_equivalent(
      g, detect::even_cycle_program(cfg), 64, 5,
      detect::make_even_cycle_schedule(g.num_vertices(), cfg).total_rounds() +
          1,
      7);

  detect::WeightedCycleConfig wcfg;
  wcfg.length = 4;
  wcfg.target_weight = 3;
  const auto weight = [](Vertex, Vertex) -> std::uint64_t { return 1; };
  const Graph host = build::complete(6);
  expect_equivalent(
      host, detect::weighted_cycle_program(wcfg, weight), 64, 9,
      detect::weighted_cycle_round_budget(host.num_vertices(), wcfg) + 1, 11);
}

TEST(AsyncEngine, CliqueDetectEquivalence) {
  // Nodes halt at *different* pulses here (degree-dependent streaming),
  // exercising the halted-port protocol of the synchronizer.
  Rng rng(9);
  const Graph g = build::gnp(18, 0.4, rng);
  expect_equivalent(g, detect::clique_detect_program(3), 16, 1,
                    detect::clique_detect_round_budget(18, g.max_degree(), 16) +
                        2,
                    6);
}

TEST(AsyncEngine, TreeDetectEquivalence) {
  const Graph g = build::grid(5, 5);
  expect_equivalent(g, detect::tree_detect_program(build::star(3)), 32, 11,
                    detect::tree_detect_round_budget(build::star(3)) + 1, 9);
}

TEST(AsyncEngine, BfsAggregateEquivalence) {
  // The primitive uses per-port messages (parent announcements), data-
  // driven sends and early halting — a good stress of the synchronizer.
  Rng rng(15);
  Graph g = build::random_tree(24, rng);
  g.add_edge_if_absent(3, 17);
  g.add_edge_if_absent(5, 21);
  BfsAggregateConfig cfg;
  cfg.contribution = [](std::uint32_t v) { return v + 1; };

  BfsAggregateResult sync_sink, async_sink;
  for (auto* sink : {&sync_sink, &async_sink}) {
    sink->distance.assign(24, 0);
    sink->parent.assign(24, 0);
    sink->aggregate.assign(24, 0);
    sink->reached.assign(24, false);
  }
  NetworkConfig sync_cfg;
  sync_cfg.bandwidth = 64;
  sync_cfg.max_rounds = bfs_aggregate_round_budget(24);
  const auto sync_outcome =
      run_congest(g, sync_cfg, bfs_aggregate_program(cfg, &sync_sink));
  ASSERT_TRUE(sync_outcome.completed);

  AsyncConfig async_cfg;
  async_cfg.bandwidth = 64;
  async_cfg.max_pulses = bfs_aggregate_round_budget(24);
  async_cfg.max_delay = 13;
  const auto async_outcome =
      run_async(g, async_cfg, bfs_aggregate_program(cfg, &async_sink));
  EXPECT_TRUE(async_outcome.completed);
  EXPECT_EQ(async_sink.distance, sync_sink.distance);
  EXPECT_EQ(async_sink.parent, sync_sink.parent);
  EXPECT_EQ(async_sink.aggregate, sync_sink.aggregate);
}

TEST(AsyncEngine, BroadcastOnlyEnforcedToo) {
  class PerPortSender final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        BitVec payload;
        payload.append_bits(p, 4);
        api.send(p, payload);
      }
      api.halt();
    }
  };
  AsyncConfig cfg;
  cfg.broadcast_only = true;
  auto outcome = run_async(build::path(3), cfg, [](std::uint32_t) {
    return std::make_unique<PerPortSender>();
  });
  EXPECT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.faults.violations.size(), 1u);  // middle node only
  EXPECT_EQ(outcome.faults.violations[0].kind,
            ViolationKind::BroadcastMismatch);
  EXPECT_EQ(outcome.faults.violations[0].node, 1u);
}

TEST(AsyncEngine, DelayDistributionDoesNotChangeOutcome) {
  // Same program seed under wildly different jitter: identical results,
  // different virtual times.
  Rng rng(13);
  const Graph g = build::gnp(16, 0.2, rng);
  AsyncConfig tight;
  tight.bandwidth = 64;
  tight.seed = 21;
  tight.max_pulses = 200;
  tight.max_delay = 1;
  AsyncConfig loose = tight;
  loose.max_delay = 50;
  const auto a = run_async(g, tight, detect::pipelined_cycle_program(3));
  const auto b = run_async(g, loose, detect::pipelined_cycle_program(3));
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.payload_bits, b.payload_bits);
  EXPECT_LT(a.virtual_time, b.virtual_time);
}

TEST(AsyncEngine, OverheadChargesFullFrameHeaderPerFrame) {
  const Graph g = build::cycle(6);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 50;
  const auto outcome =
      run_async(g, cfg, detect::pipelined_cycle_program(3));
  // Every frame carries its pulse plus the halted/has-payload flags; all of
  // it is synchronizer overhead and all of it must be charged.
  EXPECT_EQ(Frame::kOverheadBits, Frame::kPulseWireBits + 2);
  EXPECT_EQ(outcome.overhead_bits, Frame::kOverheadBits * outcome.frames);
  // One frame per port per pulse while running.
  EXPECT_GE(outcome.frames, 12u);  // at least pulse 0 everywhere
}

TEST(AsyncEngine, PulseCapFlagsIncompleteRuns) {
  class NeverHalts final : public NodeProgram {
   public:
    void on_round(NodeApi&) override {}
  };
  const Graph g = build::path(3);
  AsyncConfig cfg;
  cfg.max_pulses = 5;
  const auto outcome = run_async(
      g, cfg, [](std::uint32_t) { return std::make_unique<NeverHalts>(); });
  EXPECT_FALSE(outcome.completed);
  EXPECT_LE(outcome.pulses, 5u);
}

TEST(AsyncEngine, CustomIdsRespectNamespace) {
  const Graph g = build::path(2);
  AsyncConfig cfg;
  cfg.namespace_size = 8;

  class IdProbe final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.id() == 7) api.reject();
      api.halt();
    }
  };
  const auto outcome = run_async(
      g, cfg, {3, 7}, [](std::uint32_t) { return std::make_unique<IdProbe>(); });
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);

  EXPECT_THROW(run_async(g, cfg, {3, 9},
                         [](std::uint32_t) {
                           return std::make_unique<IdProbe>();
                         }),
               CheckFailure);
}

// ----------------------------------------------- faults + ARQ transport --

TEST(AsyncEngine, ReliableTransportBitExactUnderHeavyFaults) {
  // Acceptance bar for the reliable transport: with 30% frame drops and 5%
  // payload corruption, the C_{2k} detector's observable outcome (verdicts,
  // payload bits, pulse count) is bit-identical to the fault-free
  // synchronous engine on 200 randomized instances.
  Rng rng(77);
  detect::EvenCycleConfig cycle_cfg;
  cycle_cfg.k = 2;
  int planted = 0, detections = 0;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    const Vertex n = 10 + static_cast<Vertex>(rng.below(8));
    Graph g = build::random_tree(n, rng);
    if (rng.coin()) {
      build::plant_subgraph(g, build::cycle(4), rng);
      ++planted;
    }
    const std::uint64_t seed = 1000 + trial;
    const std::uint64_t budget =
        detect::make_even_cycle_schedule(n, cycle_cfg).total_rounds() + 1;

    NetworkConfig sync_cfg;
    sync_cfg.bandwidth = 64;
    sync_cfg.seed = seed;
    sync_cfg.max_rounds = budget;
    const auto sync_outcome =
        run_congest(g, sync_cfg, detect::even_cycle_program(cycle_cfg));
    ASSERT_TRUE(sync_outcome.completed);

    AsyncConfig cfg;
    cfg.bandwidth = 64;
    cfg.seed = seed;
    cfg.max_pulses = budget;
    cfg.max_delay = 1 + static_cast<std::uint32_t>(rng.below(6));
    cfg.faults.drop = 0.3;
    cfg.faults.corrupt = 0.05;
    cfg.transport = TransportMode::Reliable;
    const auto outcome =
        run_async(g, cfg, detect::even_cycle_program(cycle_cfg));

    ASSERT_TRUE(outcome.completed) << "trial " << trial;
    EXPECT_EQ(outcome.verdicts, sync_outcome.verdicts) << "trial " << trial;
    EXPECT_EQ(outcome.payload_bits, sync_outcome.metrics.total_bits);
    EXPECT_EQ(outcome.pulses, sync_outcome.metrics.rounds);
    EXPECT_EQ(outcome.faults.transport_failures, 0u);
    EXPECT_TRUE(outcome.faults.stalled_nodes.empty());
    if (outcome.detected) ++detections;
  }
  // The sweep must actually exercise both verdicts and real faults.
  EXPECT_GT(planted, 50);
  EXPECT_GT(detections, 0);
}

TEST(AsyncEngine, ReliableTransportTriangleUnderFaults) {
  // Same bar for the clique (triangle) detector, whose nodes halt at
  // different pulses — the transport must keep retransmitting below nodes
  // that already halted gracefully.
  Rng rng(41);
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const Vertex n = 12 + static_cast<Vertex>(rng.below(4));
    const Graph g = build::gnp(n, 0.35, rng);
    const std::uint64_t seed = 3000 + trial;
    const std::uint64_t budget =
        detect::clique_detect_round_budget(n, g.max_degree(), 16) + 2;

    NetworkConfig sync_cfg;
    sync_cfg.bandwidth = 16;
    sync_cfg.seed = seed;
    sync_cfg.max_rounds = budget;
    const auto sync_outcome =
        run_congest(g, sync_cfg, detect::clique_detect_program(3));
    ASSERT_TRUE(sync_outcome.completed);

    AsyncConfig cfg;
    cfg.bandwidth = 16;
    cfg.seed = seed;
    cfg.max_pulses = budget;
    cfg.max_delay = 4;
    cfg.faults.drop = 0.3;
    cfg.faults.corrupt = 0.05;
    cfg.transport = TransportMode::Reliable;
    const auto outcome = run_async(g, cfg, detect::clique_detect_program(3));

    ASSERT_TRUE(outcome.completed) << "trial " << trial;
    EXPECT_EQ(outcome.verdicts, sync_outcome.verdicts);
    EXPECT_EQ(outcome.payload_bits, sync_outcome.metrics.total_bits);
  }
}

TEST(AsyncEngine, RawModeFaultsStallButNeverHang) {
  // Without the transport the same faults must not hang or crash the run:
  // starved ports stall their nodes, the event queue drains, and the
  // outcome carries a populated, deterministic FaultReport.
  Rng rng(31);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const Graph g = build::gnp(12, 0.3, rng);
    AsyncConfig cfg;
    cfg.bandwidth = 64;
    cfg.seed = 600 + trial;
    cfg.max_pulses = detect::pipelined_cycle_round_budget(12, 4) + 1;
    cfg.faults.drop = 0.5;
    cfg.faults.corrupt = 0.1;  // TransportMode::Raw is the default
    const auto a = run_async(g, cfg, detect::pipelined_cycle_program(4));
    const auto b = run_async(g, cfg, detect::pipelined_cycle_program(4));

    EXPECT_FALSE(a.completed);
    EXPECT_GT(a.faults.frames_dropped, 0u);
    EXPECT_FALSE(a.faults.stalled_nodes.empty());
    EXPECT_FALSE(a.faults.clean());
    // Same seed, same plan -> identical report and verdicts.
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.verdicts, b.verdicts);
    EXPECT_EQ(a.payload_bits, b.payload_bits);
  }
}

TEST(AsyncEngine, ScheduledCrashIsSilent) {
  // A crash is not a graceful halt: no "I am done" frame is emitted, so in
  // raw mode the neighbors starve and stall.
  class HaltAtThree final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.round() >= 3) api.halt();
    }
  };
  AsyncConfig cfg;
  cfg.max_pulses = 10;
  cfg.faults.crashes = {{1, 1}};
  const auto outcome = run_async(build::path(3), cfg, [](std::uint32_t) {
    return std::make_unique<HaltAtThree>();
  });
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.faults.crashed_nodes, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(outcome.faults.stalled_nodes, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(outcome.pulses, 2u);  // neighbors got exactly the pulse-0 frame
}

TEST(AsyncEngine, SurvivorVerdictsExcludeCrashedNodes) {
  // detected_by_survivors is the answer the surviving network reports: a
  // verdict held only by a node that later crashed does not count.
  class RejectThenLinger final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.round() == 0 && api.id() == 0) api.reject();
    }
  };
  AsyncConfig cfg;
  cfg.max_pulses = 8;
  cfg.faults.crashes = {{0, 1}};
  const auto outcome = run_async(build::path(2), cfg, [](std::uint32_t) {
    return std::make_unique<RejectThenLinger>();
  });
  EXPECT_TRUE(outcome.detected);  // the verdict was reached...
  EXPECT_FALSE(outcome.faults.detected_by_survivors);  // ...then lost
  EXPECT_EQ(outcome.faults.crashed_nodes, (std::vector<std::uint32_t>{0}));
}

TEST(AsyncEngine, TransportOverheadAccountedSeparately) {
  // Faults inflate transport_bits (retransmissions, acks) but never the
  // CONGEST payload accounting.
  const Graph g = build::cycle(8);
  AsyncConfig clean;
  clean.bandwidth = 32;
  clean.seed = 5;
  clean.max_pulses = detect::pipelined_cycle_round_budget(8, 4) + 1;
  clean.transport = TransportMode::Reliable;
  AsyncConfig faulty = clean;
  faulty.faults.drop = 0.25;
  const auto base = run_async(g, clean, detect::pipelined_cycle_program(4));
  const auto hard = run_async(g, faulty, detect::pipelined_cycle_program(4));
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(hard.completed);
  EXPECT_EQ(base.payload_bits, hard.payload_bits);
  EXPECT_EQ(base.verdicts, hard.verdicts);
  EXPECT_EQ(base.faults.retransmissions, 0u);
  EXPECT_GT(hard.faults.retransmissions, 0u);
  EXPECT_GT(hard.transport_bits, base.transport_bits);
  EXPECT_GT(hard.acks, 0u);
}

}  // namespace
}  // namespace csd::congest
