// Tests for the asynchronous engine + frame synchronizer: the paper's
// algorithms must behave identically (verdicts, payload bits, pulse counts)
// under adversarially jittered message delays as under the synchronous
// simulator — which is what justifies studying them synchronously.
#include <gtest/gtest.h>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "detect/clique_detect.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/tree_detect.hpp"
#include "congest/primitives.hpp"
#include "detect/weighted_cycle.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

/// Runs the same program on both engines with matching seeds and asserts
/// bit-level equivalence of the observable outcome.
void expect_equivalent(const Graph& g, const ProgramFactory& factory,
                       std::uint64_t bandwidth, std::uint64_t seed,
                       std::uint64_t max_rounds, std::uint32_t max_delay) {
  NetworkConfig sync_cfg;
  sync_cfg.bandwidth = bandwidth;
  sync_cfg.seed = seed;
  sync_cfg.max_rounds = max_rounds;
  const auto sync_outcome = run_congest(g, sync_cfg, factory);
  ASSERT_TRUE(sync_outcome.completed);

  AsyncConfig async_cfg;
  async_cfg.bandwidth = bandwidth;
  async_cfg.seed = seed;
  async_cfg.max_pulses = max_rounds;
  async_cfg.max_delay = max_delay;
  const auto async_outcome = run_async(g, async_cfg, factory);

  EXPECT_TRUE(async_outcome.completed);
  EXPECT_EQ(async_outcome.detected, sync_outcome.detected);
  EXPECT_EQ(async_outcome.verdicts, sync_outcome.verdicts);
  EXPECT_EQ(async_outcome.payload_bits, sync_outcome.metrics.total_bits);
  EXPECT_EQ(async_outcome.pulses, sync_outcome.metrics.rounds);
}

TEST(AsyncEngine, PipelinedCycleEquivalence) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = build::gnp(20, 0.15, rng);
    expect_equivalent(g, detect::pipelined_cycle_program(4), 64,
                      300 + static_cast<std::uint64_t>(trial),
                      detect::pipelined_cycle_round_budget(20, 4) + 1,
                      1 + static_cast<std::uint32_t>(trial) * 3);
  }
}

TEST(AsyncEngine, EvenCycleEquivalence) {
  Rng rng(7);
  Graph g = build::random_tree(40, rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  detect::EvenCycleConfig cfg;
  cfg.k = 2;
  for (const std::uint32_t delay : {1u, 4u, 16u}) {
    for (std::uint64_t seed = 40; seed < 44; ++seed) {
      expect_equivalent(
          g, detect::even_cycle_program(cfg), 64, seed,
          detect::make_even_cycle_schedule(40, cfg).total_rounds() + 1,
          delay);
    }
  }
}

TEST(AsyncEngine, EvenCycleK3AndWeightedCycleEquivalence) {
  const Graph g = build::disjoint_copies(build::cycle(6), 4);
  detect::EvenCycleConfig cfg;
  cfg.k = 3;
  cfg.c_num = 1;
  expect_equivalent(
      g, detect::even_cycle_program(cfg), 64, 5,
      detect::make_even_cycle_schedule(g.num_vertices(), cfg).total_rounds() +
          1,
      7);

  detect::WeightedCycleConfig wcfg;
  wcfg.length = 4;
  wcfg.target_weight = 3;
  const auto weight = [](Vertex, Vertex) -> std::uint64_t { return 1; };
  const Graph host = build::complete(6);
  expect_equivalent(
      host, detect::weighted_cycle_program(wcfg, weight), 64, 9,
      detect::weighted_cycle_round_budget(host.num_vertices(), wcfg) + 1, 11);
}

TEST(AsyncEngine, CliqueDetectEquivalence) {
  // Nodes halt at *different* pulses here (degree-dependent streaming),
  // exercising the halted-port protocol of the synchronizer.
  Rng rng(9);
  const Graph g = build::gnp(18, 0.4, rng);
  expect_equivalent(g, detect::clique_detect_program(3), 16, 1,
                    detect::clique_detect_round_budget(18, g.max_degree(), 16) +
                        2,
                    6);
}

TEST(AsyncEngine, TreeDetectEquivalence) {
  const Graph g = build::grid(5, 5);
  expect_equivalent(g, detect::tree_detect_program(build::star(3)), 32, 11,
                    detect::tree_detect_round_budget(build::star(3)) + 1, 9);
}

TEST(AsyncEngine, BfsAggregateEquivalence) {
  // The primitive uses per-port messages (parent announcements), data-
  // driven sends and early halting — a good stress of the synchronizer.
  Rng rng(15);
  Graph g = build::random_tree(24, rng);
  g.add_edge_if_absent(3, 17);
  g.add_edge_if_absent(5, 21);
  BfsAggregateConfig cfg;
  cfg.contribution = [](std::uint32_t v) { return v + 1; };

  BfsAggregateResult sync_sink, async_sink;
  for (auto* sink : {&sync_sink, &async_sink}) {
    sink->distance.assign(24, 0);
    sink->parent.assign(24, 0);
    sink->aggregate.assign(24, 0);
    sink->reached.assign(24, false);
  }
  NetworkConfig sync_cfg;
  sync_cfg.bandwidth = 64;
  sync_cfg.max_rounds = bfs_aggregate_round_budget(24);
  const auto sync_outcome =
      run_congest(g, sync_cfg, bfs_aggregate_program(cfg, &sync_sink));
  ASSERT_TRUE(sync_outcome.completed);

  AsyncConfig async_cfg;
  async_cfg.bandwidth = 64;
  async_cfg.max_pulses = bfs_aggregate_round_budget(24);
  async_cfg.max_delay = 13;
  const auto async_outcome =
      run_async(g, async_cfg, bfs_aggregate_program(cfg, &async_sink));
  EXPECT_TRUE(async_outcome.completed);
  EXPECT_EQ(async_sink.distance, sync_sink.distance);
  EXPECT_EQ(async_sink.parent, sync_sink.parent);
  EXPECT_EQ(async_sink.aggregate, sync_sink.aggregate);
}

TEST(AsyncEngine, BroadcastOnlyEnforcedToo) {
  class PerPortSender final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        BitVec payload;
        payload.append_bits(p, 4);
        api.send(p, payload);
      }
      api.halt();
    }
  };
  AsyncConfig cfg;
  cfg.broadcast_only = true;
  EXPECT_THROW(run_async(build::path(3), cfg,
                         [](std::uint32_t) {
                           return std::make_unique<PerPortSender>();
                         }),
               CheckFailure);
}

TEST(AsyncEngine, DelayDistributionDoesNotChangeOutcome) {
  // Same program seed under wildly different jitter: identical results,
  // different virtual times.
  Rng rng(13);
  const Graph g = build::gnp(16, 0.2, rng);
  AsyncConfig tight;
  tight.bandwidth = 64;
  tight.seed = 21;
  tight.max_pulses = 200;
  tight.max_delay = 1;
  AsyncConfig loose = tight;
  loose.max_delay = 50;
  const auto a = run_async(g, tight, detect::pipelined_cycle_program(3));
  const auto b = run_async(g, loose, detect::pipelined_cycle_program(3));
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.payload_bits, b.payload_bits);
  EXPECT_LT(a.virtual_time, b.virtual_time);
}

TEST(AsyncEngine, OverheadIsTwoBitsPerFrame) {
  const Graph g = build::cycle(6);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 50;
  const auto outcome =
      run_async(g, cfg, detect::pipelined_cycle_program(3));
  EXPECT_EQ(outcome.overhead_bits, 2 * outcome.frames);
  // One frame per port per pulse while running.
  EXPECT_GE(outcome.frames, 12u);  // at least pulse 0 everywhere
}

TEST(AsyncEngine, PulseCapFlagsIncompleteRuns) {
  class NeverHalts final : public NodeProgram {
   public:
    void on_round(NodeApi&) override {}
  };
  const Graph g = build::path(3);
  AsyncConfig cfg;
  cfg.max_pulses = 5;
  const auto outcome = run_async(
      g, cfg, [](std::uint32_t) { return std::make_unique<NeverHalts>(); });
  EXPECT_FALSE(outcome.completed);
  EXPECT_LE(outcome.pulses, 5u);
}

TEST(AsyncEngine, CustomIdsRespectNamespace) {
  const Graph g = build::path(2);
  AsyncConfig cfg;
  cfg.namespace_size = 8;

  class IdProbe final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.id() == 7) api.reject();
      api.halt();
    }
  };
  const auto outcome = run_async(
      g, cfg, {3, 7}, [](std::uint32_t) { return std::make_unique<IdProbe>(); });
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);

  EXPECT_THROW(run_async(g, cfg, {3, 9},
                         [](std::uint32_t) {
                           return std::make_unique<IdProbe>();
                         }),
               CheckFailure);
}

}  // namespace
}  // namespace csd::congest
