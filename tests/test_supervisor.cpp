// Supervisor tests: parity with run_amplified on the healthy path,
// jobs-invariance, retry-with-reseed, stall reports, round budgets, and
// slice-wise pause/resume through amplified checkpoints.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "congest/supervisor.hpp"
#include "detect/pipelined_cycle.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "graph/builders.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

void expect_outcomes_equal(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_EQ(a.metrics.max_message_bits, b.metrics.max_message_bits);
  EXPECT_EQ(a.metrics.bits_sent_by_node, b.metrics.bits_sent_by_node);
  EXPECT_EQ(a.metrics.repetitions_executed, b.metrics.repetitions_executed);
  EXPECT_EQ(a.metrics.repetitions_skipped, b.metrics.repetitions_skipped);
  EXPECT_EQ(a.faults.frames_dropped, b.faults.frames_dropped);
  EXPECT_EQ(a.faults.frames_corrupted, b.faults.frames_corrupted);
  EXPECT_EQ(a.faults.crashed_nodes, b.faults.crashed_nodes);
  EXPECT_EQ(a.faults.watchdog_stalls, b.faults.watchdog_stalls);
  EXPECT_EQ(a.faults.detected_by_survivors, b.faults.detected_by_survivors);
}

/// Node 0 floods a one-bit ping; every other node relays it once and halts
/// only when it arrives. Under lossy links a repetition completes only when
/// the flood reaches everyone, so the supervisor's retry-with-reseed path
/// gets genuinely seed-dependent fodder while staying reproducible per seed.
class FlakyPing final : public NodeProgram {
 public:
  void on_round(NodeApi& api) override {
    BitVec ping;
    ping.push_back(true);
    if (api.round() == 0) {
      if (api.id() == 0) {
        api.broadcast(ping);
        api.halt();
      }
      return;
    }
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      if (api.inbox(p) != nullptr) {
        api.broadcast(ping);  // relay, then leave
        api.halt();
        return;
      }
    }
  }
};

ProgramFactory flaky_ping_factory() {
  return [](std::uint32_t) { return std::make_unique<FlakyPing>(); };
}

TEST(Supervisor, MatchesRunAmplifiedOnTheHealthyPath) {
  Rng rng(21);
  const Graph g = build::gnp(12, 0.35, rng);  // dense enough for triangles
  const auto factory = detect::pipelined_cycle_program(3);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 80;
  cfg.seed = 5;
  for (const bool early_exit : {true, false}) {
    AmplifyOptions amp;
    amp.jobs = 1;
    amp.early_exit = early_exit;
    const RunOutcome reference = run_amplified(g, cfg, factory, 6, amp);

    SupervisorConfig sup;
    sup.jobs = 1;
    sup.early_exit = early_exit;
    const Supervisor supervisor(g, cfg, sup);
    const SupervisedResult result = supervisor.run(factory, 6);
    expect_outcomes_equal(result.outcome, reference);
    EXPECT_EQ(result.planned, 6u);
    EXPECT_EQ(result.retries_used, 0u);
    EXPECT_FALSE(result.deadline_hit);
    EXPECT_FALSE(result.paused);
    EXPECT_TRUE(result.stalls.empty());
    ASSERT_NE(result.checkpoint, nullptr);
    EXPECT_EQ(result.checkpoint->kind, Snapshot::Kind::Amplified);
  }
}

TEST(Supervisor, OutcomesAreJobsInvariant) {
  Rng rng(22);
  const Graph g = build::gnp(10, 0.3, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 80;
  cfg.seed = 13;
  cfg.faults.drop = 0.1;
  cfg.faults.corrupt = 0.1;
  SupervisorConfig sup1;
  sup1.jobs = 1;
  sup1.max_retries = 3;
  SupervisorConfig sup4 = sup1;
  sup4.jobs = 4;
  const SupervisedResult a = Supervisor(g, cfg, sup1).run(factory, 8);
  const SupervisedResult b = Supervisor(g, cfg, sup4).run(factory, 8);
  expect_outcomes_equal(a.outcome, b.outcome);
  EXPECT_EQ(a.retries_used, b.retries_used);
  ASSERT_EQ(a.stalls.size(), b.stalls.size());
  for (std::size_t i = 0; i < a.stalls.size(); ++i) {
    EXPECT_EQ(a.stalls[i].repetition, b.stalls[i].repetition);
    EXPECT_EQ(a.stalls[i].seed, b.stalls[i].seed);
    EXPECT_EQ(a.stalls[i].rounds, b.stalls[i].rounds);
  }
}

TEST(Supervisor, RetriesReseedFaultKilledRepetitions) {
  const Graph g = build::path(3);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 5;
  cfg.seed = 3;
  cfg.faults.drop = 0.4;  // many floods die; retries must rescue the reps
  SupervisorConfig sup;
  sup.max_retries = 12;
  const Supervisor supervisor(g, cfg, sup);
  const SupervisedResult result = supervisor.run(flaky_ping_factory(), 3);
  EXPECT_TRUE(result.outcome.completed);
  EXPECT_GT(result.retries_used, 0u);
  EXPECT_TRUE(result.stalls.empty());

  // Retry decisions are part of the determinism contract.
  const SupervisedResult again = supervisor.run(flaky_ping_factory(), 3);
  EXPECT_EQ(result.retries_used, again.retries_used);
  expect_outcomes_equal(result.outcome, again.outcome);
}

TEST(Supervisor, StallReportsSurfaceUnhealthyRepetitions) {
  const Graph g = build::path(3);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 50;
  cfg.seed = 7;
  cfg.faults.crashes = {{1, 0}};  // the relay dies: nothing ever completes
  SupervisorConfig sup;
  sup.early_exit = false;
  sup.stall_window = 4;  // let the engine watchdog cut each repetition
  const Supervisor supervisor(g, cfg, sup);
  const SupervisedResult result = supervisor.run(flaky_ping_factory(), 3);
  EXPECT_FALSE(result.outcome.completed);
  ASSERT_EQ(result.stalls.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.stalls[i].repetition, i);
    EXPECT_TRUE(result.stalls[i].incomplete);
    EXPECT_TRUE(result.stalls[i].watchdog);
    // The report carries the round the watchdog fired at plus the
    // repetition's counter scope — enough to localize the stall without
    // re-running.
    EXPECT_GT(result.stalls[i].rounds, 0u);
    EXPECT_EQ(result.stalls[i].counters.value("watchdog_stalls"), 1u);
  }
  EXPECT_EQ(result.outcome.faults.watchdog_stalls, 3u);
}

TEST(Supervisor, StallReportCountersLocateTheStuckWorker) {
  const Graph g = build::path(3);
  NetworkConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_rounds = 50;
  cfg.seed = 7;
  cfg.faults.crashes = {{1, 0}};
  cfg.shard.workers = 2;
  cfg.shard.channel_counters = true;  // opt into W-dependent counters
  SupervisorConfig sup;
  sup.early_exit = false;
  sup.stall_window = 4;
  const Supervisor supervisor(g, cfg, sup);
  const SupervisedResult result = supervisor.run(flaky_ping_factory(), 1);
  ASSERT_EQ(result.stalls.size(), 1u);
  const StallReport& stall = result.stalls[0];
  EXPECT_TRUE(stall.watchdog);
  EXPECT_GT(stall.rounds, 0u);
  // With --shard-counters on, the per-worker last-progress counters ride
  // along in the report's scope: every worker's entry is present and none
  // advanced past the round the watchdog cut the repetition at.
  for (std::uint32_t w = 0; w < 2; ++w) {
    bool found = false;
    const std::string name = obs::worker_counter_name("shard_last_progress", w);
    for (const auto& [key, value] : stall.counters.entries())
      if (key == name) {
        found = true;
        EXPECT_LE(value, stall.rounds);
      }
    EXPECT_TRUE(found) << name << " missing from the stall scope";
  }
}

TEST(Supervisor, RoundBudgetFlagsSlowRepetitions) {
  const Graph g = build::cycle(8);
  const auto factory = detect::pipelined_cycle_program(3);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 80;
  cfg.seed = 9;
  SupervisorConfig sup;
  sup.early_exit = false;
  sup.round_budget = 1;  // every healthy repetition exceeds one round
  const Supervisor supervisor(g, cfg, sup);
  const SupervisedResult result = supervisor.run(factory, 2);
  EXPECT_TRUE(result.outcome.completed);
  ASSERT_EQ(result.stalls.size(), 2u);
  for (const StallReport& stall : result.stalls) {
    EXPECT_TRUE(stall.over_budget);
    EXPECT_FALSE(stall.incomplete);
    EXPECT_FALSE(stall.watchdog);
  }
}

TEST(Supervisor, SliceWiseResumeMatchesTheUninterruptedRun) {
  Rng rng(24);
  const Graph g = build::gnp(10, 0.3, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 80;
  cfg.seed = 17;
  cfg.faults.drop = 0.05;
  SupervisorConfig plain;
  plain.jobs = 2;
  plain.early_exit = false;
  plain.max_retries = 2;
  const Supervisor uninterrupted(g, cfg, plain);
  const SupervisedResult reference = uninterrupted.run(factory, 7);

  SupervisorConfig sliced = plain;
  sliced.max_reps_per_call = 3;
  const Supervisor supervisor(g, cfg, sliced);
  SupervisedResult slice = supervisor.run(factory, 7);
  EXPECT_TRUE(slice.paused);
  int slices = 1;
  while (slice.paused) {
    ASSERT_NE(slice.checkpoint, nullptr);
    // JSON round trip: pausing is only useful if the file survives a kill.
    const Snapshot reparsed = snapshot_from_json(
        obs::Json::parse(to_json(*slice.checkpoint).dump()));
    slice = supervisor.resume(factory, 7, reparsed);
    ASSERT_LE(++slices, 3);  // ceil(7 / 3) slices must suffice
  }
  expect_outcomes_equal(slice.outcome, reference.outcome);
  // retries_used is carried through the checkpoints, so the last slice
  // reports the same total as the uninterrupted run.
  EXPECT_EQ(slice.retries_used, reference.retries_used);
  EXPECT_EQ(slices, 3);
}

TEST(Supervisor, ResumeRejectsForeignOrMismatchedSnapshots) {
  const Graph g = build::cycle(6);
  const auto factory = detect::pipelined_cycle_program(3);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 60;
  cfg.seed = 19;
  SupervisorConfig sup;
  sup.early_exit = false;
  sup.max_reps_per_call = 1;
  const Supervisor supervisor(g, cfg, sup);
  const SupervisedResult first = supervisor.run(factory, 3);
  ASSERT_TRUE(first.paused);
  ASSERT_NE(first.checkpoint, nullptr);
  // Wrong repetition count.
  EXPECT_THROW(supervisor.resume(factory, 5, *first.checkpoint), CheckFailure);
  // Wrong topology.
  const Supervisor other(build::path(6), cfg, sup);
  EXPECT_THROW(other.resume(factory, 3, *first.checkpoint), CheckFailure);
  // Wrong kind.
  Snapshot sync_snap;
  sync_snap.kind = Snapshot::Kind::Sync;
  EXPECT_THROW(supervisor.resume(factory, 3, sync_snap), CheckFailure);
}

TEST(Supervisor, DeadlineCutsSchedulingButNeverTheAnswer) {
  Rng rng(26);
  const Graph g = build::gnp(12, 0.3, rng);
  const auto factory = detect::pipelined_cycle_program(4);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 120;
  cfg.seed = 29;
  SupervisorConfig plain;
  plain.early_exit = false;
  const SupervisedResult reference = Supervisor(g, cfg, plain).run(factory, 24);

  SupervisorConfig rushed = plain;
  rushed.deadline_ms = 1;
  SupervisedResult result = Supervisor(g, cfg, rushed).run(factory, 24);
  // Whether or not the wall clock expired (inherently nondeterministic),
  // the final aggregate after resuming must match the uninterrupted run:
  // the deadline only ever cuts scheduling at a wave boundary.
  if (result.deadline_hit) {
    ASSERT_NE(result.checkpoint, nullptr);
    result = Supervisor(g, cfg, plain).resume(factory, 24, *result.checkpoint);
  }
  EXPECT_FALSE(result.deadline_hit);
  expect_outcomes_equal(result.outcome, reference.outcome);
}

}  // namespace
}  // namespace csd::congest
