// Tests for the observability layer: the JSON model, the bench report
// schema, and the per-round trace — including the two contracts the rest of
// the repo leans on: traces are bit-identical at every --jobs count, and a
// disabled trace costs exactly nothing (trace_bytes == 0, metrics
// unchanged).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "detect/even_cycle.hpp"
#include "graph/builders.hpp"
#include "obs/bench_report.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_series.hpp"
#include "obs/metrics_v2.hpp"
#include "obs/round_trace.hpp"
#include "obs/trace_analysis.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd {
namespace {

// ---------------------------------------------------------------- Json ----

TEST(Json, ScalarDumpAndParseRoundTrip) {
  obs::Json obj = obs::Json::object();
  obj.set("null", obs::Json());
  obj.set("bool", obs::Json(true));
  obj.set("uint", obs::Json(std::uint64_t{18446744073709551615ull}));
  obj.set("int", obs::Json(std::int64_t{-42}));
  obj.set("double", obs::Json(0.1));
  obj.set("integral_double", obs::Json(3.0));
  obj.set("string", obs::Json("he\"llo\n\t\x01"));
  obs::Json arr = obs::Json::array();
  arr.push(obs::Json(std::uint64_t{1}));
  arr.push(obs::Json("two"));
  obj.set("arr", std::move(arr));

  const std::string text = obj.dump();
  const obs::Json parsed = obs::Json::parse(text);
  EXPECT_EQ(parsed, obj);
  // Dumping the parse again is a fixpoint — the serialization is canonical.
  EXPECT_EQ(parsed.dump(), text);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  obs::Json obj = obs::Json::object();
  obj.set("zebra", obs::Json(std::uint64_t{1}));
  obj.set("alpha", obs::Json(std::uint64_t{2}));
  obj.set("mid", obs::Json(std::uint64_t{3}));
  EXPECT_EQ(obj.dump(-1), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, DoublesSurviveShortestRoundTrip) {
  for (const double v : {0.1, 1e-9, 123456.789, 2.5e300, -0.0625}) {
    const obs::Json parsed = obs::Json::parse(obs::Json(v).dump());
    EXPECT_EQ(parsed.as_double(), v);
  }
  // Integral doubles keep a ".0" marker so they parse back as doubles.
  EXPECT_EQ(obs::Json(3.0).dump(), "3.0");
  EXPECT_EQ(obs::Json::parse("3.0").kind(), obs::Json::Kind::Double);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse("{"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("[1,]"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("01"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("true false"), CheckFailure);
}

// --------------------------------------------------------- BenchReport ----

TEST(BenchReport, SchemaRoundTripsThroughParse) {
  obs::BenchReport report("unit_test");
  report.param("n", std::uint64_t{64}).param("rate", 0.25);
  report.seed(7).seed(11);
  auto& m = report.measurement("table/row0");
  m.value("rounds", std::uint64_t{12});
  m.value("verdict", true);
  m.value("label", "planted");
  report.measurement("table/row1").value("rounds", std::uint64_t{13});
  report.set_wall_clock_ms(1.5);

  const obs::Json doc = obs::Json::parse(report.to_json().dump());
  EXPECT_EQ(doc.at("schema").as_string(), obs::kBenchSchema);
  EXPECT_EQ(doc.at("name").as_string(), "unit_test");
  EXPECT_FALSE(doc.at("smoke").as_bool());
  EXPECT_EQ(doc.at("params").at("n").as_uint(), 64u);
  EXPECT_EQ(doc.at("seeds").items().size(), 2u);
  const auto& measurements = doc.at("measurements").items();
  ASSERT_EQ(measurements.size(), 2u);
  EXPECT_EQ(measurements[0].at("name").as_string(), "table/row0");
  EXPECT_EQ(measurements[0].at("values").at("rounds").as_uint(), 12u);
  EXPECT_TRUE(measurements[0].at("values").at("verdict").as_bool());
  EXPECT_EQ(doc.at("env").at("wall_clock_ms").as_double(), 1.5);
  // git_sha is always stamped (possibly "unknown" outside a git checkout).
  EXPECT_FALSE(doc.at("env").at("git_sha").as_string().empty());
}

TEST(BenchReport, MeasurementReferencesStayStable) {
  obs::BenchReport report("stability");
  auto& first = report.measurement("a");
  for (int i = 0; i < 100; ++i)
    report.measurement("m" + std::to_string(i));
  first.value("still_valid", true);  // would crash if `first` dangled
  EXPECT_TRUE(report.to_json()
                  .at("measurements")
                  .items()[0]
                  .at("values")
                  .at("still_valid")
                  .as_bool());
}

// ------------------------------------------------------------ RunTrace ----

congest::RunOutcome traced_run_opts(const Graph& g, unsigned jobs,
                                    const obs::TraceOptions& trace,
                                    std::uint32_t reps) {
  detect::EvenCycleConfig cfg;
  cfg.k = 2;
  cfg.repetitions = reps;
  cfg.trace = trace;
  congest::NetworkConfig net_cfg;
  net_cfg.bandwidth = 64;
  net_cfg.seed = 5;
  net_cfg.trace = cfg.trace;
  net_cfg.max_rounds =
      detect::make_even_cycle_schedule(g.num_vertices(), cfg).total_rounds() +
      1;
  congest::AmplifyOptions options;
  options.jobs = jobs;
  options.early_exit = false;  // every repetition contributes a segment
  return congest::run_amplified(g, net_cfg, detect::even_cycle_program(cfg),
                                reps, options);
}

congest::RunOutcome traced_run(const Graph& g, unsigned jobs,
                               bool enable_trace, std::uint32_t reps) {
  obs::TraceOptions trace;
  trace.enabled = enable_trace;
  return traced_run_opts(g, jobs, trace, reps);
}

Graph trace_host() {
  Rng rng(17);
  Graph g = build::random_tree(24, rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  return g;
}

TEST(RunTrace, BitIdenticalAcrossJobsCounts) {
  const Graph g = trace_host();
  const auto reference = traced_run(g, 1, true, 6);
  ASSERT_GT(reference.trace.segments(), 0u);
  std::ostringstream ref_os;
  reference.trace.write_jsonl(ref_os);

  for (const unsigned jobs : {4u, 0u}) {
    const auto outcome = traced_run(g, jobs, true, 6);
    std::ostringstream os;
    outcome.trace.write_jsonl(os);
    EXPECT_EQ(os.str(), ref_os.str()) << "jobs = " << jobs;
    EXPECT_EQ(outcome.metrics.total_bits, reference.metrics.total_bits);
    EXPECT_EQ(outcome.metrics.rounds, reference.metrics.rounds);
  }
}

TEST(RunTrace, TraceTotalsMatchRunMetrics) {
  const Graph g = trace_host();
  const auto outcome = traced_run(g, 1, true, 4);
  std::uint64_t traced_messages = 0, traced_bits = 0;
  for (const auto& round : outcome.trace.rounds()) {
    traced_messages += round.messages;
    traced_bits += round.bits;
  }
  EXPECT_EQ(traced_messages, outcome.metrics.messages);
  EXPECT_EQ(traced_bits, outcome.metrics.total_bits);
  EXPECT_EQ(outcome.trace.segments(), 4u);
}

TEST(RunTrace, DisabledTraceHasZeroOverheadAndSameMetrics) {
  const Graph g = trace_host();
  const auto off = traced_run(g, 1, false, 4);
  const auto on = traced_run(g, 1, true, 4);

  EXPECT_EQ(off.metrics.trace_bytes, 0u) << "disabled trace must not "
                                            "allocate observer storage";
  EXPECT_EQ(off.trace.segments(), 0u);
  EXPECT_EQ(off.trace.approx_bytes(), 0u);
  EXPECT_GT(on.metrics.trace_bytes, 0u);

  // Observation is passive: enabling the trace changes no model-level
  // number.
  EXPECT_EQ(off.detected, on.detected);
  EXPECT_EQ(off.metrics.rounds, on.metrics.rounds);
  EXPECT_EQ(off.metrics.messages, on.metrics.messages);
  EXPECT_EQ(off.metrics.total_bits, on.metrics.total_bits);
  EXPECT_EQ(off.metrics.max_message_bits, on.metrics.max_message_bits);
}

TEST(RunTrace, JsonlDocumentIsWellFormedAndConsistent) {
  const Graph g = trace_host();
  const auto outcome = traced_run(g, 1, true, 2);
  std::ostringstream os;
  outcome.trace.write_jsonl(os);

  std::istringstream is(os.str());
  std::string line;
  std::vector<obs::Json> lines;
  while (std::getline(is, line)) lines.push_back(obs::Json::parse(line));
  ASSERT_GE(lines.size(), 3u);  // header + >=1 round + summary

  const obs::Json& header = lines.front();
  EXPECT_EQ(header.at("schema").as_string(), "csd-trace-v2");
  EXPECT_EQ(header.at("nodes").as_uint(), g.num_vertices());
  EXPECT_EQ(header.at("segments").as_uint(), 2u);
  EXPECT_EQ(header.at("rounds").as_uint(), lines.size() - 2);

  const obs::Json& summary = lines.back();
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].at("round").as_uint(), i - 1);
    bits += lines[i].at("bits").as_uint();
  }
  EXPECT_EQ(summary.at("total_bits").as_uint(), bits);
  EXPECT_EQ(summary.at("total_bits").as_uint(), outcome.metrics.total_bits);
}

TEST(RunTrace, AppendRebasesRoundsAndAdoptsIntoDisabled) {
  obs::TraceOptions opts;
  opts.enabled = true;
  obs::RunTrace a(2, opts), b(2, opts);
  a.record(0, 0, 1, 8);
  a.record(1, 1, 0, 16);
  b.record(0, 1, 0, 32);

  obs::RunTrace merged;  // disabled: append adopts the first trace wholesale
  merged.append(a);
  merged.append(b);
  ASSERT_EQ(merged.rounds().size(), 3u);
  EXPECT_EQ(merged.rounds()[2].round, 2u);  // b's round 0 re-based after a
  EXPECT_EQ(merged.rounds()[2].bits, 32u);
  EXPECT_EQ(merged.segments(), 2u);
}

TEST(RunTrace, AppendIntoConfiguredDisabledReceiverIsANoOp) {
  obs::TraceOptions on;
  on.enabled = true;
  obs::RunTrace donor(3, on);
  donor.record(0, 0, 1, 8);
  donor.record(1, 2, 0, 16);

  obs::TraceOptions off;  // enabled defaults to false
  obs::RunTrace receiver(3, off);
  receiver.append(donor);

  // The deliberately disabled receiver must NOT inherit the donor's options
  // (the historical bug: `*this = other` turned it into an enabled trace).
  EXPECT_FALSE(receiver.enabled());
  EXPECT_TRUE(receiver.rounds().empty());
  EXPECT_EQ(receiver.total_messages(), 0u);
  EXPECT_EQ(receiver.total_bits(), 0u);
  EXPECT_EQ(receiver.segments(), 0u);
  EXPECT_EQ(receiver.approx_bytes(), 0u);

  // It stays inert on further appends and further record() calls.
  receiver.append(donor);
  receiver.record(0, 0, 1, 64);
  EXPECT_FALSE(receiver.enabled());
  EXPECT_TRUE(receiver.rounds().empty());
}

TEST(RunTrace, AppendAdoptsMultiSegmentDonorIntoDefaultConstructed) {
  obs::TraceOptions opts;
  opts.enabled = true;
  obs::RunTrace a(2, opts), b(2, opts), c(2, opts);
  a.record(0, 0, 1, 4);
  b.record(0, 1, 0, 8);
  c.record(0, 0, 1, 2);

  obs::RunTrace donor;  // accumulator: adopts a, then merges b
  donor.append(a);
  donor.append(b);
  ASSERT_EQ(donor.segments(), 2u);

  obs::RunTrace receiver;  // adopting a multi-segment donor keeps boundaries
  receiver.append(donor);
  EXPECT_TRUE(receiver.enabled());
  EXPECT_EQ(receiver.segments(), 2u);
  ASSERT_EQ(receiver.rounds().size(), 2u);
  EXPECT_EQ(receiver.rounds()[1].round, 1u);
  EXPECT_EQ(receiver.total_bits(), 12u);

  // And the adopted receiver keeps merging like a normal enabled trace.
  receiver.append(c);
  EXPECT_EQ(receiver.segments(), 3u);
  EXPECT_EQ(receiver.total_bits(), 14u);
}

// ------------------------------------------------- RunTrace (schema v2) ----

// The v2 JSONL emitter is a pure function of the recorded data; pin it
// byte-for-byte on a tiny hand-built trace covering phases, meta, per-edge
// records, and finish_run padding.
TEST(RunTrace, GoldenJsonlOutput) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.per_node = false;
  opts.histogram = false;
  opts.per_edge = true;
  obs::RunTrace trace(2, opts);
  trace.record(0, 0, 1, 8);
  trace.set_phase(0, "alpha");
  trace.record(1, 1, 0, 16);
  trace.set_phase(1, "beta");
  trace.set_meta("program", "unit");
  trace.set_meta("n", "2");
  trace.finish_run(3);  // pads a quiet trailing round

  std::ostringstream os;
  trace.write_jsonl(os);
  const std::string expected =
      R"({"type":"header","schema":"csd-trace-v2","nodes":2,"rounds":3,)"
      R"("segments":1,"per_node":false,"per_edge":true,)"
      R"("meta":{"program":"unit","n":"2"}})"
      "\n"
      R"({"type":"round","round":0,"messages":1,"bits":8,"phase":"alpha"})"
      "\n"
      R"({"type":"round","round":1,"messages":1,"bits":16,"phase":"beta"})"
      "\n"
      R"({"type":"round","round":2,"messages":0,"bits":0})"
      "\n"
      R"({"type":"edge","src":0,"dst":1,"messages":1,"bits":8})"
      "\n"
      R"({"type":"edge","src":1,"dst":0,"messages":1,"bits":16})"
      "\n"
      R"({"type":"summary","total_messages":2,"total_bits":24,)"
      R"("phases":[{"name":"alpha","rounds":1,"messages":1,"bits":8},)"
      R"({"name":"beta","rounds":1,"messages":1,"bits":16}]})"
      "\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(RunTrace, FirstPhaseDeclarationWins) {
  obs::TraceOptions opts;
  opts.enabled = true;
  obs::RunTrace trace(2, opts);
  trace.set_phase(0, "first");
  trace.set_phase(0, "second");  // ignored: phases are per-round constants
  std::ostringstream os;
  trace.write_jsonl(os);
  EXPECT_NE(os.str().find("\"phase\":\"first\""), std::string::npos);
  EXPECT_EQ(os.str().find("second"), std::string::npos);
}

TEST(RunTrace, CountersAppearInSummaryOnlyWhenNonZero) {
  obs::TraceOptions opts;
  opts.enabled = true;
  obs::RunTrace clean(2, opts);
  obs::MetricsRegistry zeros;
  zeros.add("retransmissions", 0);
  zeros.add("checksum_rejects", 0);
  clean.set_counters(zeros);
  std::ostringstream clean_os;
  clean.write_jsonl(clean_os);
  // All-zero counters are omitted so clean sync and async traces stay
  // byte-identical (the sync engine has no transport counters to report).
  EXPECT_EQ(clean_os.str().find("counters"), std::string::npos);

  obs::RunTrace dirty(2, opts);
  obs::MetricsRegistry mixed;
  mixed.add("retransmissions", 3);
  mixed.add("checksum_rejects", 0);
  dirty.set_counters(mixed);
  std::ostringstream dirty_os;
  dirty.write_jsonl(dirty_os);
  EXPECT_NE(dirty_os.str().find(R"("counters":{"retransmissions":3})"),
            std::string::npos);
  EXPECT_EQ(dirty_os.str().find("checksum_rejects"), std::string::npos);
}

TEST(RunTrace, PerEdgeTraceBitIdenticalAcrossJobsCounts) {
  const Graph g = trace_host();
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.per_node = false;
  opts.per_edge = true;
  const auto reference = traced_run_opts(g, 1, opts, 6);
  std::ostringstream ref_os;
  reference.trace.write_jsonl(ref_os);
  ASSERT_NE(ref_os.str().find("\"type\":\"edge\""), std::string::npos);

  for (const unsigned jobs : {4u, 0u}) {
    const auto outcome = traced_run_opts(g, jobs, opts, 6);
    std::ostringstream os;
    outcome.trace.write_jsonl(os);
    EXPECT_EQ(os.str(), ref_os.str()) << "jobs = " << jobs;
  }
}

TEST(RunTrace, DisabledTraceStaysFreeWithPerEdgeAndTimersRequested) {
  const Graph g = trace_host();
  obs::TraceOptions opts;  // enabled stays false
  opts.per_edge = true;
  opts.timers = true;
  const auto outcome = traced_run_opts(g, 1, opts, 2);
  EXPECT_EQ(outcome.metrics.trace_bytes, 0u);
  EXPECT_EQ(outcome.trace.approx_bytes(), 0u);
  EXPECT_TRUE(outcome.trace.rounds().empty());
  // Engine timers are independent of the trace: they live in RunMetrics and
  // stay available even when the per-round trace is off.
  EXPECT_TRUE(outcome.metrics.timers.enabled);
}

TEST(RunTrace, PhaseAttributionCoversAllTrafficInEvenCycleRun) {
  const Graph g = trace_host();
  const auto outcome = traced_run(g, 1, true, 2);
  std::ostringstream os;
  outcome.trace.write_jsonl(os);
  std::istringstream is(os.str());
  const auto instances = obs::parse_trace_jsonl(is);
  ASSERT_EQ(instances.size(), 1u);
  const obs::TraceInstance& instance = instances.front();

  ASSERT_FALSE(instance.phases.empty());
  std::vector<std::string> names;
  std::uint64_t phase_rounds = 0, phase_bits = 0;
  for (const auto& phase : instance.phases) {
    names.push_back(phase.name);
    phase_rounds += phase.rounds;
    phase_bits += phase.bits;
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "phase1-pipeline"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "phase2-peel"),
            names.end());
  // Every message is sent from some on_round call, and every on_round call
  // declares a phase — so phases account for all traffic. Only quiet padded
  // rounds after the last halt may be unattributed.
  EXPECT_EQ(phase_bits, instance.total_bits);
  EXPECT_LE(phase_rounds, instance.declared_rounds);
  EXPECT_GT(phase_rounds, 0u);
}

// ------------------------------------------------------------- Metrics ----

TEST(Metrics, RegistryAccumulatesAndMergesByName) {
  obs::MetricsRegistry a;
  a.add("x", 1);
  a.add("y", 2);
  a.add("x", 3);  // accumulates into the existing entry
  EXPECT_EQ(a.value("x"), 4u);
  EXPECT_EQ(a.value("y"), 2u);
  EXPECT_EQ(a.value("missing"), 0u);

  obs::MetricsRegistry b;
  b.add("y", 10);
  b.add("z", 5);
  a.merge(b);
  ASSERT_EQ(a.entries().size(), 3u);  // insertion order: x, y, z
  EXPECT_EQ(a.entries()[0].first, "x");
  EXPECT_EQ(a.entries()[2].first, "z");
  EXPECT_EQ(a.value("y"), 12u);
  EXPECT_EQ(a.value("z"), 5u);
}

TEST(Metrics, EngineTimersMerge) {
  obs::EngineTimers a, b;
  a.enabled = true;
  a.compute_ns = 10;
  a.delivery_ns = 20;
  b.enabled = true;
  b.compute_ns = 1;
  b.transport_ns = 5;
  a.merge(b);
  EXPECT_EQ(a.compute_ns, 11u);
  EXPECT_EQ(a.delivery_ns, 20u);
  EXPECT_EQ(a.transport_ns, 5u);
  EXPECT_EQ(a.total_ns(), 36u);
}

// ------------------------------------------------------- TraceAnalysis ----

obs::TraceInstance parse_single(const std::string& jsonl) {
  std::istringstream is(jsonl);
  auto instances = obs::parse_trace_jsonl(is);
  CSD_CHECK(instances.size() == 1);
  return std::move(instances.front());
}

TEST(TraceAnalysis, ParsesEmittedTraceRoundTrip) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.per_node = false;
  opts.histogram = false;
  opts.per_edge = true;
  obs::RunTrace trace(4, opts);
  trace.record(0, 0, 2, 8);
  trace.record(0, 1, 3, 8);
  trace.record(1, 2, 0, 32);
  trace.set_phase(0, "seed");
  trace.set_phase(1, "echo");
  trace.set_meta("program", "toy");
  trace.set_meta("n", "4");
  trace.finish_run(2);
  std::ostringstream os;
  trace.write_jsonl(os);

  const obs::TraceInstance instance = parse_single(os.str());
  EXPECT_EQ(instance.nodes, 4u);
  EXPECT_EQ(instance.declared_rounds, 2u);
  EXPECT_EQ(instance.segments, 1u);
  EXPECT_TRUE(instance.per_edge);
  EXPECT_EQ(instance.meta_value("program"), "toy");
  EXPECT_EQ(instance.meta_number("n"), 4.0);
  EXPECT_FALSE(instance.meta_number("program").has_value());
  EXPECT_EQ(instance.fit_group(), "toy");
  ASSERT_EQ(instance.rounds.size(), 2u);
  EXPECT_EQ(instance.rounds[0].phase, "seed");
  ASSERT_EQ(instance.edges.size(), 3u);
  EXPECT_EQ(instance.total_bits, 48u);
  EXPECT_EQ(instance.rounds_per_segment(), 2.0);

  // Edges (0,2) and (1,3) cross the cut at boundary 2; (2,0) crosses back.
  EXPECT_EQ(obs::cut_traffic_bits(instance, 2), 48u);
  EXPECT_EQ(obs::cut_traffic_bits(instance, 1), 8u + 32u);
  const auto top = obs::top_edges_by_bits(instance, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].bits, 32u);
  EXPECT_EQ(top[1].src, 0u);  // 8-bit tie broken by (src, dst)
  EXPECT_EQ(top[1].dst, 2u);
}

TEST(TraceAnalysis, ParseRejectsMalformedStreams) {
  std::istringstream no_summary(
      R"({"type":"header","schema":"csd-trace-v2","nodes":1,"rounds":0,)"
      R"("segments":1,"per_node":false,"per_edge":false})"
      "\n");
  EXPECT_THROW(obs::parse_trace_jsonl(no_summary), CheckFailure);

  std::istringstream orphan_round(
      R"({"type":"round","round":0,"messages":0,"bits":0})"
      "\n");
  EXPECT_THROW(obs::parse_trace_jsonl(orphan_round), CheckFailure);

  std::istringstream bad_schema(
      R"({"type":"header","schema":"csd-trace-v9","nodes":1,"rounds":0,)"
      R"("segments":1,"per_node":false})"
      "\n");
  EXPECT_THROW(obs::parse_trace_jsonl(bad_schema), CheckFailure);
}

TEST(TraceAnalysis, FitPowerLawRecoversSyntheticExponent) {
  std::vector<std::pair<double, double>> xy;
  for (const double x : {8.0, 16.0, 32.0, 64.0, 128.0})
    xy.emplace_back(x, 3.0 * std::pow(x, 0.7));
  const auto fit = obs::fit_power_law(xy);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->exponent, 0.7, 1e-9);
  EXPECT_NEAR(fit->log_coeff, std::log(3.0), 1e-9);
  EXPECT_EQ(fit->points, 5u);

  // A slope needs two distinct abscissae.
  EXPECT_FALSE(obs::fit_power_law({{4.0, 1.0}, {4.0, 2.0}}).has_value());
  EXPECT_FALSE(obs::fit_power_law({{4.0, 1.0}}).has_value());
  // Non-positive points are skipped, not fatal.
  xy.emplace_back(0.0, 5.0);
  EXPECT_NEAR(obs::fit_power_law(xy)->exponent, 0.7, 1e-9);
}

TEST(TraceAnalysis, RoundsVsNGroupsByMetaGroupThenProgram) {
  const auto make = [](const char* program, const char* group, const char* n,
                       std::uint64_t rounds) {
    obs::TraceOptions opts;
    opts.enabled = true;
    opts.per_node = false;
    obs::RunTrace trace(2, opts);
    trace.set_meta("program", program);
    if (group != nullptr) trace.set_meta("group", group);
    trace.set_meta("n", n);
    trace.finish_run(rounds);
    std::ostringstream os;
    trace.write_jsonl(os);
    return os.str();
  };
  const std::string jsonl = make("even_cycle", nullptr, "128", 85) +
                            make("even_cycle", nullptr, "512", 155) +
                            make("even_cycle", "negatives", "128", 85);
  std::istringstream is(jsonl);
  const auto instances = obs::parse_trace_jsonl(is);
  const auto groups = obs::rounds_vs_n_points(instances);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, "even_cycle");
  ASSERT_EQ(groups[0].second.size(), 2u);
  EXPECT_EQ(groups[1].first, "negatives");
  const auto fit = obs::fit_power_law(groups[0].second);
  ASSERT_TRUE(fit.has_value());
  // ln(155/85) / ln(4) — comfortably under the Thm 1.1 exponent of 0.5.
  EXPECT_NEAR(fit->exponent, 0.433, 0.01);
}

// --------------------------------------------------------- ChromeTrace ----

TEST(ChromeTrace, EmitsValidTraceEventJson) {
  const Graph g = trace_host();
  obs::TraceOptions opts;
  opts.enabled = true;
  const auto outcome = traced_run_opts(g, 1, opts, 2);
  std::ostringstream jsonl;
  outcome.trace.write_jsonl(jsonl);
  std::istringstream is(jsonl.str());
  const auto instances = obs::parse_trace_jsonl(is);

  std::ostringstream os;
  obs::write_chrome_trace(os, instances);
  const obs::Json doc = obs::Json::parse(os.str());
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());

  bool saw_process_name = false, saw_span = false, saw_counter = false;
  for (const obs::Json& event : events) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") {
      saw_process_name = true;
      EXPECT_EQ(event.at("name").as_string(), "process_name");
    } else if (ph == "X") {
      saw_span = true;
      EXPECT_GT(event.at("dur").as_uint(), 0u);
      EXPECT_FALSE(event.at("name").as_string().empty());
    } else if (ph == "C") {
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);  // run is far below counter_round_cap
}

TEST(ChromeTrace, CounterTrackRespectsRoundCap) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.per_node = false;
  obs::RunTrace trace(2, opts);
  trace.record(0, 0, 1, 8);
  trace.set_phase(0, "only");
  trace.finish_run(8);
  std::ostringstream jsonl;
  trace.write_jsonl(jsonl);
  std::istringstream is(jsonl.str());
  const auto instances = obs::parse_trace_jsonl(is);

  obs::ChromeTraceOptions chrome;
  chrome.counter_round_cap = 4;  // 8 rounds > cap: no counter track
  std::ostringstream os;
  obs::write_chrome_trace(os, instances, chrome);
  const obs::Json doc = obs::Json::parse(os.str());
  bool saw_counter = false, saw_span = false;
  for (const obs::Json& event : doc.at("traceEvents").items()) {
    saw_counter = saw_counter || event.at("ph").as_string() == "C";
    saw_span = saw_span || event.at("ph").as_string() == "X";
  }
  EXPECT_FALSE(saw_counter);
  EXPECT_TRUE(saw_span);  // spans always survive the cap
}

// ------------------------------------------------------ csd-metrics-v2 ----

TEST(RunTrace, SummaryCountersEmitSortedByName) {
  obs::TraceOptions opts;
  opts.enabled = true;
  obs::RunTrace trace(2, opts);
  obs::MetricsRegistry counters;
  counters.add("zeta", 1);  // insertion order deliberately unsorted
  counters.add("alpha", 2);
  counters.add("mid", 0);  // zero: omitted from the summary entirely
  trace.set_counters(counters);
  std::ostringstream os;
  trace.write_jsonl(os);
  // DESIGN.md §14: summary counters serialize in sorted-name order, so the
  // summary line is independent of engine registration order.
  EXPECT_NE(os.str().find(R"("counters":{"alpha":2,"zeta":1})"),
            std::string::npos)
      << os.str();
}

TEST(TelemetryV2, CountersGaugesHistogramsRegisterAndSnapshot) {
  obs::Telemetry telemetry;
  const obs::Counter hits = telemetry.counter("hits");
  hits.add();
  hits.add(4);
  EXPECT_EQ(hits.value(), 5u);
  // Same name resolves to the same cell.
  EXPECT_EQ(telemetry.counter("hits").value(), 5u);

  const obs::Gauge depth = telemetry.gauge("depth");
  depth.set(7);
  depth.set(3);
  EXPECT_EQ(depth.value(), 3u);
  EXPECT_EQ(depth.high_water(), 7u);

  const obs::Histogram sizes = telemetry.histogram("sizes");
  sizes.observe(0);  // bucket 0: zeros
  sizes.observe(1);  // bucket 1: [1, 2)
  sizes.observe(5);  // bucket 3: [4, 8)
  const obs::Json doc = telemetry.metrics_json();
  EXPECT_EQ(doc.at("counters").at("hits").as_uint(), 5u);
  EXPECT_EQ(doc.at("gauges").at("depth").at("value").as_uint(), 3u);
  EXPECT_EQ(doc.at("gauges").at("depth").at("high_water").as_uint(), 7u);
  const auto& buckets = doc.at("histograms").at("sizes").items();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].items()[0].as_uint(), 0u);
  EXPECT_EQ(buckets[0].items()[1].as_uint(), 1u);
  EXPECT_EQ(buckets[2].items()[0].as_uint(), 3u);
}

TEST(TelemetryV2, NullHandlesAreInert) {
  // Default-constructed handles are the disabled path: safe no-ops.
  const obs::Counter counter;
  const obs::Gauge gauge;
  const obs::Histogram histogram;
  counter.add(3);
  gauge.set(9);
  histogram.observe(42);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0u);
  EXPECT_EQ(gauge.high_water(), 0u);
}

TEST(TelemetryV2, WorkerCounterNamesAreStable) {
  EXPECT_EQ(obs::worker_counter_name("shard_channel_frames", 3),
            "shard_channel_frames_w3");
}

TEST(TelemetryV2, FlightRecorderKeepsTheMostRecentEvents) {
  // Requested capacities round up to the 64-slot floor.
  obs::Telemetry telemetry(/*ring_capacity=*/4);
  for (std::uint64_t i = 0; i < 100; ++i)
    telemetry.record(obs::EventKind::Retransmit, 1, i, i * 10);
  EXPECT_EQ(telemetry.events_recorded(), 100u);
  const auto events = telemetry.events();
  ASSERT_EQ(events.size(), 64u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at, 36u + i);  // oldest-first window [36, 100)
    EXPECT_EQ(events[i].kind, obs::EventKind::Retransmit);
  }

  const obs::Json doc = telemetry.blackbox_json("unit-test");
  EXPECT_EQ(doc.at("schema").as_string(), "csd-blackbox-v1");
  EXPECT_EQ(doc.at("reason").as_string(), "unit-test");
  EXPECT_EQ(doc.at("events_recorded").as_uint(), 100u);
  EXPECT_EQ(doc.at("events_kept").as_uint(), 64u);
  EXPECT_EQ(doc.at("torn").as_uint(), 0u);
  ASSERT_EQ(doc.at("events").items().size(), 64u);
  EXPECT_EQ(doc.at("events").items()[0].at("kind").as_string(),
            "retransmit");
}

TEST(TelemetryV2, SamplerSeriesRoundTripsThroughParser) {
  const std::string path = testing::TempDir() + "csd_metrics_series.jsonl";
  obs::Telemetry telemetry;
  const obs::Counter ticks = telemetry.counter("ticks");
  const obs::Histogram payload = telemetry.histogram("payload");
  telemetry.start_sampler(path, /*period_ms=*/60000);
  EXPECT_TRUE(telemetry.sampling());
  ticks.add(17);
  payload.observe(9);  // bucket 4: [8, 16)
  telemetry.stop_sampler();  // flushes one final sample
  EXPECT_FALSE(telemetry.sampling());

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  const obs::MetricsSeries series = obs::parse_metrics_series(is);
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.back().counter("ticks"), 17u);
  for (const auto& [name, buckets] : series.back().histograms) {
    ASSERT_EQ(name, "payload");
    // The percentile query reports the bucket's exclusive upper edge.
    EXPECT_EQ(obs::histogram_percentile(buckets, 50.0), 16u);
  }
}

TEST(TelemetryV2, EngineOutcomesBitIdenticalWithTelemetryAttached) {
  const Graph g = trace_host();
  const auto run = [&](obs::Telemetry* telemetry, std::uint32_t workers) {
    detect::EvenCycleConfig cfg;
    cfg.k = 2;
    cfg.repetitions = 4;
    cfg.amplify.early_exit = false;
    cfg.trace.enabled = true;
    cfg.shard.workers = workers;
    cfg.telemetry = telemetry;
    return detect::detect_even_cycle(g, cfg, 64, 5);
  };
  const auto jsonl = [](congest::RunOutcome outcome) {
    std::ostringstream os;
    outcome.trace.write_jsonl(os);
    return os.str();
  };

  auto plain = run(nullptr, 0);
  obs::Telemetry telemetry;
  auto instrumented = run(&telemetry, 0);
  obs::Telemetry sharded_telemetry;
  auto sharded = run(&sharded_telemetry, 2);

  // The telemetry plane is write-only: verdict, metrics and the full trace
  // stream are unaffected by attaching it, on both engines.
  EXPECT_EQ(plain.detected, instrumented.detected);
  EXPECT_EQ(plain.metrics.rounds, instrumented.metrics.rounds);
  EXPECT_EQ(plain.metrics.messages, instrumented.metrics.messages);
  EXPECT_EQ(plain.metrics.total_bits, instrumented.metrics.total_bits);
  EXPECT_EQ(jsonl(plain), jsonl(instrumented));
  EXPECT_EQ(plain.detected, sharded.detected);
  EXPECT_EQ(jsonl(plain), jsonl(sharded));

  // ...and the plane did observe the runs.
  EXPECT_GT(telemetry.counter("sync_rounds").value(), 0u);
  EXPECT_EQ(telemetry.counter("sync_messages").value(),
            instrumented.metrics.messages);
  EXPECT_GT(sharded_telemetry.counter("shard_supersteps").value(), 0u);
  EXPECT_GT(sharded_telemetry.events_recorded(), 0u);
}

TEST(TelemetryV2, SeriesParserRejectsMalformedStreams) {
  const auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return obs::parse_metrics_series(is);
  };
  EXPECT_THROW(parse("{\"schema\":\"wrong\"}\n"), CheckFailure);
  EXPECT_THROW(parse("not json\n"), CheckFailure);
}

}  // namespace
}  // namespace csd
