// Tests for the observability layer: the JSON model, the bench report
// schema, and the per-round trace — including the two contracts the rest of
// the repo leans on: traces are bit-identical at every --jobs count, and a
// disabled trace costs exactly nothing (trace_bytes == 0, metrics
// unchanged).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "detect/even_cycle.hpp"
#include "graph/builders.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/round_trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd {
namespace {

// ---------------------------------------------------------------- Json ----

TEST(Json, ScalarDumpAndParseRoundTrip) {
  obs::Json obj = obs::Json::object();
  obj.set("null", obs::Json());
  obj.set("bool", obs::Json(true));
  obj.set("uint", obs::Json(std::uint64_t{18446744073709551615ull}));
  obj.set("int", obs::Json(std::int64_t{-42}));
  obj.set("double", obs::Json(0.1));
  obj.set("integral_double", obs::Json(3.0));
  obj.set("string", obs::Json("he\"llo\n\t\x01"));
  obs::Json arr = obs::Json::array();
  arr.push(obs::Json(std::uint64_t{1}));
  arr.push(obs::Json("two"));
  obj.set("arr", std::move(arr));

  const std::string text = obj.dump();
  const obs::Json parsed = obs::Json::parse(text);
  EXPECT_EQ(parsed, obj);
  // Dumping the parse again is a fixpoint — the serialization is canonical.
  EXPECT_EQ(parsed.dump(), text);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  obs::Json obj = obs::Json::object();
  obj.set("zebra", obs::Json(std::uint64_t{1}));
  obj.set("alpha", obs::Json(std::uint64_t{2}));
  obj.set("mid", obs::Json(std::uint64_t{3}));
  EXPECT_EQ(obj.dump(-1), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, DoublesSurviveShortestRoundTrip) {
  for (const double v : {0.1, 1e-9, 123456.789, 2.5e300, -0.0625}) {
    const obs::Json parsed = obs::Json::parse(obs::Json(v).dump());
    EXPECT_EQ(parsed.as_double(), v);
  }
  // Integral doubles keep a ".0" marker so they parse back as doubles.
  EXPECT_EQ(obs::Json(3.0).dump(), "3.0");
  EXPECT_EQ(obs::Json::parse("3.0").kind(), obs::Json::Kind::Double);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse("{"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("[1,]"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("01"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), CheckFailure);
  EXPECT_THROW(obs::Json::parse("true false"), CheckFailure);
}

// --------------------------------------------------------- BenchReport ----

TEST(BenchReport, SchemaRoundTripsThroughParse) {
  obs::BenchReport report("unit_test");
  report.param("n", std::uint64_t{64}).param("rate", 0.25);
  report.seed(7).seed(11);
  auto& m = report.measurement("table/row0");
  m.value("rounds", std::uint64_t{12});
  m.value("verdict", true);
  m.value("label", "planted");
  report.measurement("table/row1").value("rounds", std::uint64_t{13});
  report.set_wall_clock_ms(1.5);

  const obs::Json doc = obs::Json::parse(report.to_json().dump());
  EXPECT_EQ(doc.at("schema").as_string(), obs::kBenchSchema);
  EXPECT_EQ(doc.at("name").as_string(), "unit_test");
  EXPECT_FALSE(doc.at("smoke").as_bool());
  EXPECT_EQ(doc.at("params").at("n").as_uint(), 64u);
  EXPECT_EQ(doc.at("seeds").items().size(), 2u);
  const auto& measurements = doc.at("measurements").items();
  ASSERT_EQ(measurements.size(), 2u);
  EXPECT_EQ(measurements[0].at("name").as_string(), "table/row0");
  EXPECT_EQ(measurements[0].at("values").at("rounds").as_uint(), 12u);
  EXPECT_TRUE(measurements[0].at("values").at("verdict").as_bool());
  EXPECT_EQ(doc.at("env").at("wall_clock_ms").as_double(), 1.5);
  // git_sha is always stamped (possibly "unknown" outside a git checkout).
  EXPECT_FALSE(doc.at("env").at("git_sha").as_string().empty());
}

TEST(BenchReport, MeasurementReferencesStayStable) {
  obs::BenchReport report("stability");
  auto& first = report.measurement("a");
  for (int i = 0; i < 100; ++i)
    report.measurement("m" + std::to_string(i));
  first.value("still_valid", true);  // would crash if `first` dangled
  EXPECT_TRUE(report.to_json()
                  .at("measurements")
                  .items()[0]
                  .at("values")
                  .at("still_valid")
                  .as_bool());
}

// ------------------------------------------------------------ RunTrace ----

congest::RunOutcome traced_run(const Graph& g, unsigned jobs,
                               bool enable_trace, std::uint32_t reps) {
  detect::EvenCycleConfig cfg;
  cfg.k = 2;
  cfg.repetitions = reps;
  cfg.trace.enabled = enable_trace;
  congest::NetworkConfig net_cfg;
  net_cfg.bandwidth = 64;
  net_cfg.seed = 5;
  net_cfg.trace = cfg.trace;
  net_cfg.max_rounds =
      detect::make_even_cycle_schedule(g.num_vertices(), cfg).total_rounds() +
      1;
  congest::AmplifyOptions options;
  options.jobs = jobs;
  options.early_exit = false;  // every repetition contributes a segment
  return congest::run_amplified(g, net_cfg, detect::even_cycle_program(cfg),
                                reps, options);
}

Graph trace_host() {
  Rng rng(17);
  Graph g = build::random_tree(24, rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  return g;
}

TEST(RunTrace, BitIdenticalAcrossJobsCounts) {
  const Graph g = trace_host();
  const auto reference = traced_run(g, 1, true, 6);
  ASSERT_GT(reference.trace.segments(), 0u);
  std::ostringstream ref_os;
  reference.trace.write_jsonl(ref_os);

  for (const unsigned jobs : {4u, 0u}) {
    const auto outcome = traced_run(g, jobs, true, 6);
    std::ostringstream os;
    outcome.trace.write_jsonl(os);
    EXPECT_EQ(os.str(), ref_os.str()) << "jobs = " << jobs;
    EXPECT_EQ(outcome.metrics.total_bits, reference.metrics.total_bits);
    EXPECT_EQ(outcome.metrics.rounds, reference.metrics.rounds);
  }
}

TEST(RunTrace, TraceTotalsMatchRunMetrics) {
  const Graph g = trace_host();
  const auto outcome = traced_run(g, 1, true, 4);
  std::uint64_t traced_messages = 0, traced_bits = 0;
  for (const auto& round : outcome.trace.rounds()) {
    traced_messages += round.messages;
    traced_bits += round.bits;
  }
  EXPECT_EQ(traced_messages, outcome.metrics.messages);
  EXPECT_EQ(traced_bits, outcome.metrics.total_bits);
  EXPECT_EQ(outcome.trace.segments(), 4u);
}

TEST(RunTrace, DisabledTraceHasZeroOverheadAndSameMetrics) {
  const Graph g = trace_host();
  const auto off = traced_run(g, 1, false, 4);
  const auto on = traced_run(g, 1, true, 4);

  EXPECT_EQ(off.metrics.trace_bytes, 0u) << "disabled trace must not "
                                            "allocate observer storage";
  EXPECT_EQ(off.trace.segments(), 0u);
  EXPECT_EQ(off.trace.approx_bytes(), 0u);
  EXPECT_GT(on.metrics.trace_bytes, 0u);

  // Observation is passive: enabling the trace changes no model-level
  // number.
  EXPECT_EQ(off.detected, on.detected);
  EXPECT_EQ(off.metrics.rounds, on.metrics.rounds);
  EXPECT_EQ(off.metrics.messages, on.metrics.messages);
  EXPECT_EQ(off.metrics.total_bits, on.metrics.total_bits);
  EXPECT_EQ(off.metrics.max_message_bits, on.metrics.max_message_bits);
}

TEST(RunTrace, JsonlDocumentIsWellFormedAndConsistent) {
  const Graph g = trace_host();
  const auto outcome = traced_run(g, 1, true, 2);
  std::ostringstream os;
  outcome.trace.write_jsonl(os);

  std::istringstream is(os.str());
  std::string line;
  std::vector<obs::Json> lines;
  while (std::getline(is, line)) lines.push_back(obs::Json::parse(line));
  ASSERT_GE(lines.size(), 3u);  // header + >=1 round + summary

  const obs::Json& header = lines.front();
  EXPECT_EQ(header.at("schema").as_string(), "csd-trace-v1");
  EXPECT_EQ(header.at("nodes").as_uint(), g.num_vertices());
  EXPECT_EQ(header.at("segments").as_uint(), 2u);
  EXPECT_EQ(header.at("rounds").as_uint(), lines.size() - 2);

  const obs::Json& summary = lines.back();
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].at("round").as_uint(), i - 1);
    bits += lines[i].at("bits").as_uint();
  }
  EXPECT_EQ(summary.at("total_bits").as_uint(), bits);
  EXPECT_EQ(summary.at("total_bits").as_uint(), outcome.metrics.total_bits);
}

TEST(RunTrace, AppendRebasesRoundsAndAdoptsIntoDisabled) {
  obs::TraceOptions opts;
  opts.enabled = true;
  obs::RunTrace a(2, opts), b(2, opts);
  a.record(0, 0, 8);
  a.record(1, 1, 16);
  b.record(0, 1, 32);

  obs::RunTrace merged;  // disabled: append adopts the first trace wholesale
  merged.append(a);
  merged.append(b);
  ASSERT_EQ(merged.rounds().size(), 3u);
  EXPECT_EQ(merged.rounds()[2].round, 2u);  // b's round 0 re-based after a
  EXPECT_EQ(merged.rounds()[2].bits, 32u);
  EXPECT_EQ(merged.segments(), 2u);
}

TEST(RunTrace, AppendIntoConfiguredDisabledReceiverIsANoOp) {
  obs::TraceOptions on;
  on.enabled = true;
  obs::RunTrace donor(3, on);
  donor.record(0, 0, 8);
  donor.record(1, 2, 16);

  obs::TraceOptions off;  // enabled defaults to false
  obs::RunTrace receiver(3, off);
  receiver.append(donor);

  // The deliberately disabled receiver must NOT inherit the donor's options
  // (the historical bug: `*this = other` turned it into an enabled trace).
  EXPECT_FALSE(receiver.enabled());
  EXPECT_TRUE(receiver.rounds().empty());
  EXPECT_EQ(receiver.total_messages(), 0u);
  EXPECT_EQ(receiver.total_bits(), 0u);
  EXPECT_EQ(receiver.segments(), 0u);
  EXPECT_EQ(receiver.approx_bytes(), 0u);

  // It stays inert on further appends and further record() calls.
  receiver.append(donor);
  receiver.record(0, 0, 64);
  EXPECT_FALSE(receiver.enabled());
  EXPECT_TRUE(receiver.rounds().empty());
}

TEST(RunTrace, AppendAdoptsMultiSegmentDonorIntoDefaultConstructed) {
  obs::TraceOptions opts;
  opts.enabled = true;
  obs::RunTrace a(2, opts), b(2, opts), c(2, opts);
  a.record(0, 0, 4);
  b.record(0, 1, 8);
  c.record(0, 0, 2);

  obs::RunTrace donor;  // accumulator: adopts a, then merges b
  donor.append(a);
  donor.append(b);
  ASSERT_EQ(donor.segments(), 2u);

  obs::RunTrace receiver;  // adopting a multi-segment donor keeps boundaries
  receiver.append(donor);
  EXPECT_TRUE(receiver.enabled());
  EXPECT_EQ(receiver.segments(), 2u);
  ASSERT_EQ(receiver.rounds().size(), 2u);
  EXPECT_EQ(receiver.rounds()[1].round, 1u);
  EXPECT_EQ(receiver.total_bits(), 12u);

  // And the adopted receiver keeps merging like a normal enabled trace.
  receiver.append(c);
  EXPECT_EQ(receiver.segments(), 3u);
  EXPECT_EQ(receiver.total_bits(), 14u);
}

}  // namespace
}  // namespace csd
