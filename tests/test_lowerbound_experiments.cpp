// Tests for the executable lower-bound experiments: the Theorem 1.2
// reduction (cut accounting + correctness), the §4 fooling adversary, the
// §5 one-round information experiment, Lemma 1.3 clique counting, and the
// information-theory estimators they rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "comm/cut_simulator.hpp"
#include "detect/triangle.hpp"
#include "graph/builders.hpp"
#include "info/entropy.hpp"
#include "lowerbound/fooling.hpp"
#include "lowerbound/oneround.hpp"
#include "lowerbound/reduction.hpp"
#include "lowerbound/turan_counts.hpp"
#include "support/rng.hpp"

namespace csd::lb {
namespace {

// ------------------------------------------------------------- entropy --
TEST(Info, EntropyBasics) {
  EXPECT_DOUBLE_EQ(info::entropy_from_counts({}), 0.0);
  EXPECT_DOUBLE_EQ(info::entropy_from_counts({7}), 0.0);
  EXPECT_NEAR(info::entropy_from_counts({5, 5}), 1.0, 1e-12);
  EXPECT_NEAR(info::entropy_from_counts({1, 1, 1, 1}), 2.0, 1e-12);
  EXPECT_NEAR(info::entropy_from_counts({3, 1}),
              -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25)), 1e-12);
}

TEST(Info, MutualInformationIndependentIsZero) {
  info::JointDistribution joint;
  for (std::uint64_t x = 0; x < 2; ++x)
    for (std::uint64_t y = 0; y < 4; ++y) joint.add(x, y, 10);
  EXPECT_NEAR(joint.mutual_information(), 0.0, 1e-12);
  EXPECT_NEAR(joint.entropy_x(), 1.0, 1e-12);
  EXPECT_NEAR(joint.entropy_y(), 2.0, 1e-12);
}

TEST(Info, MutualInformationDeterministicIsEntropy) {
  info::JointDistribution joint;
  for (std::uint64_t x = 0; x < 4; ++x) joint.add(x, x * 17 + 3, 5);
  EXPECT_NEAR(joint.mutual_information(), 2.0, 1e-12);
  EXPECT_NEAR(joint.conditional_entropy_x_given_y(), 0.0, 1e-12);
}

TEST(Info, NoisyChannelInformation) {
  // Binary symmetric channel with flip prob 0.25: I = 1 - H(0.25).
  info::JointDistribution joint;
  joint.add(0, 0, 3000);
  joint.add(0, 1, 1000);
  joint.add(1, 1, 3000);
  joint.add(1, 0, 1000);
  const double h_flip = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(joint.mutual_information(), 1.0 - h_flip, 1e-9);
}

TEST(Info, ConditionalMutualInformation) {
  // Given Z, X and Y are perfectly correlated; marginally X,Y would look
  // the same. I(X;Y|Z) should be 1 bit.
  info::ConditionalMutualInformation cmi;
  for (std::uint64_t z = 0; z < 2; ++z) {
    cmi.add(z, 0, z == 0 ? 0 : 1, 50);
    cmi.add(z, 1, z == 0 ? 1 : 0, 50);
  }
  EXPECT_NEAR(cmi.value(), 1.0, 1e-12);
  EXPECT_EQ(cmi.total(), 200u);
}

// ---------------------------------------------------------- cut simulator --
TEST(CutSimulator, CountsOnlyCrossingBits) {
  // Path A - shared - B: every A→shared message crosses, shared→A doesn't.
  const Graph g = build::path(3);
  const std::vector<comm::Owner> owner = {comm::Owner::Alice,
                                          comm::Owner::Shared,
                                          comm::Owner::Bob};
  congest::NetworkConfig cfg;
  cfg.bandwidth = 8;

  class ChattyProgram final : public congest::NodeProgram {
   public:
    void on_round(congest::NodeApi& api) override {
      BitVec payload(4, true);
      api.broadcast(payload);
      if (api.round() == 1) api.halt();
    }
  };

  const auto cost = comm::simulate_across_cut(
      g, owner, cfg,
      [](std::uint32_t) { return std::make_unique<ChattyProgram>(); });
  // Rounds 0 and 1; per round: A→shared 4 bits, B→shared 4 bits; the
  // shared node's messages to A and B are computable by both players.
  EXPECT_EQ(cost.bits_alice_to_bob, 8u);
  EXPECT_EQ(cost.bits_bob_to_alice, 8u);
  EXPECT_EQ(cost.crossing_messages, 4u);
  EXPECT_EQ(cost.cut_edges, 2u);
  EXPECT_EQ(cost.max_bits_per_round, 8u);
}

// -------------------------------------------------------------- reduction --
TEST(Reduction, DetectsExactlyWhenInputsIntersect) {
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint32_t n = 4, k = 2;
    const bool intersecting = trial % 2 == 0;
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.25, intersecting, rng);
    const auto report = run_reduction(
        k, n, inst, 32, 100 + static_cast<std::uint64_t>(trial));
    EXPECT_EQ(report.detected, intersecting) << "trial " << trial;
    EXPECT_EQ(report.expected_contains, intersecting);
    EXPECT_GT(report.crossing_bits, 0u);
  }
}

TEST(Reduction, CutMatchesTheory) {
  Rng rng(18);
  for (const std::uint32_t n : {4u, 9u, 16u}) {
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.1, true, rng);
    const auto report = run_reduction(2, n, inst, 32, 5);
    const auto frame = build_gkn_frame(2, n);
    // Cut = 6m + marker-clique fixed edges.
    EXPECT_GE(report.cut_edges, 6u * frame.layout.m);
    EXPECT_LE(report.cut_edges, 6u * frame.layout.m + 16);
  }
}

TEST(Reduction, ImpliedLowerBoundGrowsSuperlinearly) {
  // n²/(cut·B) with cut = Θ(k n^{1/k}): doubling n should scale the implied
  // bound by ~2^{2-1/k} > 2.
  Rng rng(19);
  const auto small_inst = comm::random_disjointness(16 * 16, 0.05, false, rng);
  const auto large_inst = comm::random_disjointness(64 * 64, 0.05, false, rng);
  const auto small = run_reduction(2, 16, small_inst, 32, 7);
  const auto large = run_reduction(2, 64, large_inst, 32, 7);
  const double growth = large.implied_round_lower_bound() /
                        small.implied_round_lower_bound();
  // 4x n: expect ~4^{1.5} = 8 growth; allow slack for ceil effects.
  EXPECT_GT(growth, 4.0);
}

TEST(Reduction, CrossingBitsRespectPerRoundBudget) {
  Rng rng(20);
  const std::uint32_t n = 6;
  const auto inst = comm::random_disjointness(36, 0.2, true, rng);
  const auto report = run_reduction(2, n, inst, 16, 9);
  EXPECT_LE(report.max_crossing_bits_per_round, report.cut_edges * 16 * 2);
}

// ---------------------------------------------------------------- fooling --
TEST(Fooling, TruncatedAlgorithmIsFooled) {
  // 2-bit ids over a namespace of 24: transcripts collide massively and the
  // adversary must find a box and a fooling hexagon.
  FoolingConfig cfg;
  cfg.namespace_size = 24;
  cfg.algorithm = detect::id_exchange_triangle_program(2);
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  const auto report = run_fooling_adversary(cfg);
  EXPECT_EQ(report.executions, 512u);
  EXPECT_TRUE(report.all_triangles_rejected);
  EXPECT_TRUE(report.box_found);
  EXPECT_TRUE(report.transcripts_match) << "Claim 4.4 violated";
  EXPECT_TRUE(report.hexagon_fooled);
}

TEST(Fooling, FullIdAlgorithmIsSafe) {
  // With full ⌈log N⌉-bit ids every transcript class is a single triple:
  // no box can exist and the adversary must fail.
  FoolingConfig cfg;
  cfg.namespace_size = 24;
  cfg.algorithm = detect::id_exchange_triangle_program(
      detect::id_exchange_sound_bits(24));
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  const auto report = run_fooling_adversary(cfg);
  EXPECT_TRUE(report.all_triangles_rejected);
  EXPECT_EQ(report.largest_class, 1u);
  EXPECT_FALSE(report.box_found);
  EXPECT_FALSE(report.hexagon_fooled);
}

TEST(Fooling, ThresholdMatchesLogN) {
  // For N = 48 (parts of 16), 4-bit truncation is exactly log2(16): ids
  // within a part are distinguished and no class exceeds 1; at 2 bits the
  // adversary wins.
  for (const std::uint32_t c : {2u, 4u}) {
    FoolingConfig cfg;
    cfg.namespace_size = 48;
    cfg.algorithm = detect::id_exchange_triangle_program(c);
    cfg.bandwidth = 64;
    cfg.max_rounds = 8;
    const auto report = run_fooling_adversary(cfg);
    if (c == 2) {
      EXPECT_TRUE(report.box_found && report.hexagon_fooled);
    } else {
      EXPECT_FALSE(report.box_found);
    }
  }
}

TEST(Fooling, AdversaryBeatsHashedFingerprintsPastTruncationThreshold) {
  // At N = 48 truncation is safe from c = 4 on, but salted hashes collide
  // within parts (birthday bound), so the adversary still wins at c = 5.
  FoolingConfig cfg;
  cfg.namespace_size = 48;
  cfg.algorithm = detect::hashed_id_exchange_triangle_program(5, 12345);
  cfg.bandwidth = 64;
  cfg.max_rounds = 8;
  const auto report = run_fooling_adversary(cfg);
  EXPECT_TRUE(report.all_triangles_rejected);
  EXPECT_TRUE(report.box_found);
  EXPECT_TRUE(report.hexagon_fooled);
  EXPECT_TRUE(report.transcripts_match);
}

TEST(Fooling, RejectsBadNamespace) {
  FoolingConfig cfg;
  cfg.namespace_size = 7;
  cfg.algorithm = detect::id_exchange_triangle_program(2);
  EXPECT_THROW(run_fooling_adversary(cfg), CheckFailure);
}

// --------------------------------------------------------------- oneround --
TEST(OneRound, SampleShapesAndHiddenSpecials) {
  Rng rng(23);
  const auto sample = sample_gt(10, rng);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sample.input[s].neighbor_ids.size(), 12u);
    EXPECT_EQ(sample.input[s].present.size(), 12u);
    // The two other specials' ids appear somewhere in the permuted list.
    for (std::uint32_t t = 0; t < 3; ++t) {
      if (t == s) continue;
      const auto& ids = sample.input[s].neighbor_ids;
      EXPECT_NE(std::find(ids.begin(), ids.end(), sample.special_id[t]),
                ids.end());
    }
  }
}

TEST(OneRound, TriangleProbabilityIsOneEighth) {
  Rng rng(29);
  std::uint64_t triangles = 0;
  const std::uint64_t trials = 20000;
  for (std::uint64_t i = 0; i < trials; ++i)
    triangles += sample_gt(4, rng).has_triangle();
  EXPECT_NEAR(static_cast<double>(triangles) / static_cast<double>(trials),
              0.125, 0.01);
}

TEST(OneRound, BloomErrorVanishesWithLargeBandwidth) {
  const auto protocol = make_bloom_protocol(99);
  const auto tight = evaluate_one_round(*protocol, 32, 4, 4000, 31);
  const auto roomy = evaluate_one_round(*protocol, 32, 512, 4000, 31);
  EXPECT_GT(tight.error, 0.04);   // ~1/8 · (1 - e^{-n/2B})² regime
  EXPECT_LT(roomy.error, 0.02);
  EXPECT_NEAR(roomy.false_negative, 0.0, 1e-9);  // Blooms never miss
}

TEST(OneRound, IdSampleNeedsLogFactorMoreBits) {
  const auto protocol = make_id_sample_protocol(7);
  // With B = n bits, fewer than n/65 records fit: detection nearly blind.
  const auto starved = evaluate_one_round(*protocol, 32, 32, 4000, 37);
  EXPECT_GT(starved.error, 0.08);
  // With B = 65(n+2) bits every record fits: exact.
  const auto full = evaluate_one_round(*protocol, 32, 65 * 34, 4000, 37);
  EXPECT_NEAR(full.error, 0.0, 1e-9);
}

TEST(OneRound, ThreeRoundsBeatTheOneRoundWall) {
  // The Theorem 5.1 wall is a one-round phenomenon: with three rounds the
  // protocol is exact as soon as one identifier fits the bandwidth.
  const auto starved = evaluate_interactive(64, 8, 5000, 3);
  EXPECT_GT(starved.error, 0.1);  // cannot even ask: trivial error
  const auto enough = evaluate_interactive(64, 32, 5000, 3);
  EXPECT_DOUBLE_EQ(enough.error, 0.0);
  EXPECT_DOUBLE_EQ(enough.false_negative, 0.0);
  EXPECT_DOUBLE_EQ(enough.false_positive, 0.0);
}

TEST(OneRound, InformationGrowsWithBandwidth) {
  const auto protocol = make_bloom_protocol(3);
  const auto narrow = evaluate_one_round(*protocol, 12, 2, 30000, 41);
  const auto wide = evaluate_one_round(*protocol, 12, 64, 30000, 41);
  EXPECT_LT(narrow.info_accept, 0.12);
  EXPECT_GT(wide.info_accept, 0.5);
  EXPECT_GE(wide.info_messages, wide.info_accept * 0.5);
}

TEST(OneRound, AcceptInformationBoundsAreConsistent) {
  // Data processing: what the accept bit reveals cannot exceed H(X_bc)=1.
  const auto protocol = make_bloom_protocol(5);
  const auto stats = evaluate_one_round(*protocol, 8, 128, 20000, 43);
  EXPECT_LE(stats.info_accept, 1.0 + 1e-9);
}

// ---------------------------------------------------------------- lemma 1.3
TEST(Lemma13, CliqueCountWithinBound) {
  Rng rng(47);
  const struct {
    Graph g;
    const char* name;
  } hosts[] = {
      {build::complete(12), "K12"},
      {build::gnp(20, 0.4, rng), "gnp"},
      {build::complete_bipartite(8, 8), "K88"},
      {build::grid(5, 5), "grid"},
  };
  for (const auto& host : hosts) {
    for (const std::uint32_t s : {2u, 3u, 4u}) {
      const auto report = check_clique_count_bound(host.g, s, host.name);
      EXPECT_LE(report.ratio, 1.0 + 1e-9)
          << host.name << " s=" << s << " violates Lemma 1.3";
    }
  }
}

TEST(Lemma13, CliquesApproachTheExtremalRatio) {
  // K_t pushes the ratio toward 2^{s/2}/s! as t grows.
  for (const std::uint32_t s : {3u, 4u}) {
    const auto small = check_clique_count_bound(build::complete(8), s, "K8");
    const auto large = check_clique_count_bound(build::complete(20), s, "K20");
    EXPECT_GT(large.ratio, small.ratio);
    EXPECT_LT(large.ratio, clique_host_limit_ratio(s));
    EXPECT_GT(large.ratio, clique_host_limit_ratio(s) * 0.5);
  }
}

TEST(Lemma13, EdgeCountExactForS2) {
  Rng rng(49);
  const Graph g = build::gnm(15, 40, rng);
  const auto report = check_clique_count_bound(g, 2, "gnm");
  EXPECT_EQ(report.clique_count, 40u);
  EXPECT_NEAR(report.ratio, 1.0, 1e-9);  // m / m^{1} = 1: tight at s = 2
}

}  // namespace
}  // namespace csd::lb
