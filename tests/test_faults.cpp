// Unit tests for the fault-injection layer and the reliable ARQ transport:
// CRC correctness, deterministic fault fates, crash scheduling, and the
// sender/receiver protocol state machines (acks, reordering, duplicates,
// backoff, bounded retries) — all without spinning up an engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "congest/async.hpp"
#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "congest/transport.hpp"
#include "graph/builders.hpp"
#include "support/check.hpp"
#include "support/crc.hpp"

namespace csd::congest {
namespace {

// ------------------------------------------------------------------ CRC --
TEST(Crc32, KnownAnswerCheckValue) {
  // The canonical CRC-32 check value: ASCII "123456789" -> 0xCBF43926.
  // Bytes are fed LSB-first, the reflected algorithm's bit order.
  Crc32 crc;
  for (const char c : std::string("123456789"))
    crc.bits(static_cast<std::uint64_t>(static_cast<unsigned char>(c)), 8);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, DetectsEverySingleBitFlip) {
  BitVec payload;
  payload.append_bits(0xDEADBEEFCAFEULL, 48);
  const std::uint32_t reference = crc32_bits(payload);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    BitVec flipped = payload;
    flipped.flip(i);
    EXPECT_NE(crc32_bits(flipped), reference) << "missed flip at bit " << i;
  }
}

TEST(Crc32, PacketChecksumCoversSeqPulseAndFlags) {
  const TransportConfig cfg;
  Frame frame;
  frame.payload.emplace();
  frame.payload->append_bits(0b1011, 4);
  const std::uint32_t base = packet_checksum(7, frame, cfg);
  EXPECT_NE(packet_checksum(8, frame, cfg), base);  // seq covered
  Frame halted = frame;
  halted.sender_halted = true;
  EXPECT_NE(packet_checksum(7, halted, cfg), base);  // flag covered
  Frame empty;
  EXPECT_NE(packet_checksum(7, empty, cfg), base);  // has_payload covered
  // Regression: the pulse field rides on every frame and the synchronizer
  // hard-depends on it, so the CRC must cover it — a single flipped pulse
  // bit must change the checksum (historically it did not).
  for (unsigned bit = 0; bit < Frame::kPulseWireBits; ++bit) {
    Frame pulse_flip = frame;
    pulse_flip.pulse ^= 1ULL << bit;
    EXPECT_NE(packet_checksum(7, pulse_flip, cfg), base)
        << "pulse bit " << bit << " not covered by the CRC";
  }
}

// ------------------------------------------------------------- injector --
TEST(FaultInjector, DeterministicPerLinkStreams) {
  const Graph g = build::cycle(5);
  FaultPlan plan;
  plan.drop = 0.4;
  plan.corrupt = 0.3;
  FaultInjector a(plan, 99, g);
  FaultInjector b(plan, 99, g);
  FaultInjector other_seed(plan, 100, g);
  bool any_difference = false;
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.next_fate(2, 1, 64);
    const auto fb = b.next_fate(2, 1, 64);
    EXPECT_EQ(fa.dropped, fb.dropped);
    EXPECT_EQ(fa.corrupted, fb.corrupted);
    EXPECT_EQ(fa.corrupt_bit, fb.corrupt_bit);
    const auto fo = other_seed.next_fate(2, 1, 64);
    any_difference |= fa.dropped != fo.dropped || fa.corrupted != fo.corrupted;
  }
  EXPECT_TRUE(any_difference) << "seed does not influence fates";
}

TEST(FaultInjector, FatesIndependentOfPayloadSize) {
  // The drop/corrupt decisions must not depend on payload size (only the
  // corrupt-bit position does), so accounting-order differences between
  // engines cannot change the fault pattern.
  const Graph g = build::path(2);
  FaultPlan plan;
  plan.drop = 0.5;
  FaultInjector a(plan, 7, g);
  FaultInjector b(plan, 7, g);
  for (int i = 0; i < 100; ++i) {
    const auto fa = a.next_fate(0, 0, 8);
    const auto fb = b.next_fate(0, 0, 1024);
    EXPECT_EQ(fa.dropped, fb.dropped);
  }
}

TEST(FaultInjector, NoPayloadNeverCorrupts) {
  const Graph g = build::path(2);
  FaultPlan plan;
  plan.corrupt = 1.0;
  FaultInjector inj(plan, 3, g);
  for (int i = 0; i < 50; ++i) {
    const auto fate = inj.next_fate(0, 0, 0);
    EXPECT_FALSE(fate.corrupted);
    EXPECT_FALSE(fate.dropped);
  }
  const auto fate = inj.next_fate(0, 0, 16);
  EXPECT_TRUE(fate.corrupted);
  EXPECT_LT(fate.corrupt_bit, 16u);
}

TEST(FaultInjector, EarliestCrashWinsAndValidates) {
  const Graph g = build::cycle(4);
  FaultPlan plan;
  plan.crashes = {{2, 9}, {2, 4}, {0, 1}};
  FaultInjector inj(plan, 1, g);
  EXPECT_EQ(inj.crash_round(2), std::optional<std::uint64_t>(4));
  EXPECT_EQ(inj.crash_round(0), std::optional<std::uint64_t>(1));
  EXPECT_EQ(inj.crash_round(1), std::nullopt);

  FaultPlan bad;
  bad.crashes = {{7, 0}};  // node out of range
  EXPECT_THROW(FaultInjector(bad, 1, g), CheckFailure);
  FaultPlan bad_p;
  bad_p.drop = 1.5;
  EXPECT_THROW(FaultInjector(bad_p, 1, g), CheckFailure);
}

// ------------------------------------------------------- link sender ARQ --
Frame test_frame(std::uint64_t pulse, std::uint64_t bits = 8) {
  Frame frame;
  frame.pulse = pulse;
  frame.payload.emplace();
  frame.payload->append_bits(pulse * 17 + 3, static_cast<unsigned>(bits));
  return frame;
}

TEST(LinkSender, ConsecutiveSeqAndAckSettles) {
  LinkSender sender{TransportConfig{}};
  const DataPacket p0 = sender.packet(test_frame(0));
  const DataPacket p1 = sender.packet(test_frame(1));
  EXPECT_EQ(p0.seq, 0u);
  EXPECT_EQ(p1.seq, 1u);
  EXPECT_EQ(sender.in_flight(), 2u);
  EXPECT_TRUE(sender.on_ack(0));
  EXPECT_FALSE(sender.on_ack(0));  // duplicate ack is harmless
  EXPECT_EQ(sender.in_flight(), 1u);
  EXPECT_EQ(sender.on_timeout(0), LinkSender::TimeoutAction::Settled);
}

TEST(LinkSender, RetransmitPreservesPacketBits) {
  LinkSender sender{TransportConfig{}};
  const DataPacket original = sender.packet(test_frame(4, 32));
  EXPECT_EQ(sender.on_timeout(original.seq),
            LinkSender::TimeoutAction::Retransmit);
  const DataPacket again = sender.retransmit_packet(original.seq);
  EXPECT_EQ(again.seq, original.seq);
  EXPECT_EQ(again.crc, original.crc);
  EXPECT_EQ(packet_checksum(again.seq, again.frame, TransportConfig{}),
            again.crc);
}

TEST(LinkSender, ExponentialBackoffThenGiveUp) {
  TransportConfig cfg;
  cfg.max_retries = 3;
  LinkSender sender{cfg};
  const DataPacket p = sender.packet(test_frame(0));
  EXPECT_EQ(sender.timeout_for(p.seq, 10), 10u);  // first transmission
  EXPECT_EQ(sender.on_timeout(p.seq), LinkSender::TimeoutAction::Retransmit);
  EXPECT_EQ(sender.timeout_for(p.seq, 10), 20u);
  EXPECT_EQ(sender.on_timeout(p.seq), LinkSender::TimeoutAction::Retransmit);
  EXPECT_EQ(sender.timeout_for(p.seq, 10), 40u);
  EXPECT_EQ(sender.on_timeout(p.seq), LinkSender::TimeoutAction::Retransmit);
  EXPECT_EQ(sender.timeout_for(p.seq, 10), 80u);
  EXPECT_EQ(sender.on_timeout(p.seq), LinkSender::TimeoutAction::GiveUp);
  EXPECT_EQ(sender.in_flight(), 0u);
  EXPECT_EQ(sender.on_timeout(p.seq), LinkSender::TimeoutAction::Settled);
}

// ---------------------------------------------------- link receiver ARQ --
TEST(LinkReceiver, InOrderDeliveryAndAcks) {
  LinkSender sender{TransportConfig{}};
  LinkReceiver receiver;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto accept = receiver.on_data(sender.packet(test_frame(i)));
    EXPECT_TRUE(accept.send_ack);
    EXPECT_EQ(accept.ack_seq, i);
    EXPECT_FALSE(accept.duplicate);
    ASSERT_EQ(accept.deliver.size(), 1u);
    EXPECT_EQ(accept.deliver[0].pulse, i);
  }
  EXPECT_EQ(receiver.next_expected(), 4u);
}

TEST(LinkReceiver, ReorderBufferReleasesInSequence) {
  LinkSender sender{TransportConfig{}};
  LinkReceiver receiver;
  const DataPacket p0 = sender.packet(test_frame(0));
  const DataPacket p1 = sender.packet(test_frame(1));
  const DataPacket p2 = sender.packet(test_frame(2));
  const auto late = receiver.on_data(p2);  // out of order: buffered
  EXPECT_TRUE(late.send_ack);
  EXPECT_TRUE(late.deliver.empty());
  const auto mid = receiver.on_data(p1);
  EXPECT_TRUE(mid.deliver.empty());
  const auto first = receiver.on_data(p0);  // releases all three, in order
  ASSERT_EQ(first.deliver.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(first.deliver[i].pulse, i);
}

TEST(LinkReceiver, DuplicatesReAckedButNotRedelivered) {
  LinkSender sender{TransportConfig{}};
  LinkReceiver receiver;
  const DataPacket p = sender.packet(test_frame(0));
  ASSERT_EQ(receiver.on_data(p).deliver.size(), 1u);
  const auto dup = receiver.on_data(p);  // retransmit after a lost ack
  EXPECT_TRUE(dup.send_ack);             // re-ack so the sender settles
  EXPECT_TRUE(dup.duplicate);
  EXPECT_TRUE(dup.deliver.empty());
}

TEST(LinkReceiver, CorruptedPacketRejectedWithoutAck) {
  LinkSender sender{TransportConfig{}};
  LinkReceiver receiver;
  DataPacket p = sender.packet(test_frame(0, 16));
  p.frame.payload->flip(5);
  const auto accept = receiver.on_data(p);
  EXPECT_TRUE(accept.checksum_reject);
  EXPECT_FALSE(accept.send_ack);
  EXPECT_TRUE(accept.deliver.empty());
  EXPECT_EQ(receiver.next_expected(), 0u);  // nothing delivered
}

TEST(LinkReceiver, CorruptedPulseRejectedByChecksum) {
  // Regression for the CRC gap: a flipped header (pulse) bit used to pass
  // the checksum and reach the synchronizer with a bogus pulse number. The
  // receiver must treat it exactly like a corrupted payload — discard, no
  // ack — so the sender's retransmission heals it.
  LinkSender sender{TransportConfig{}};
  LinkReceiver receiver{TransportConfig{}};
  DataPacket p = sender.packet(test_frame(3, 8));
  p.frame.pulse ^= 1ULL << 40;
  const auto accept = receiver.on_data(p);
  EXPECT_TRUE(accept.checksum_reject);
  EXPECT_FALSE(accept.send_ack);
  EXPECT_TRUE(accept.deliver.empty());

  DataPacket clean = sender.retransmit_packet(p.seq);
  const auto healed = receiver.on_data(clean);
  EXPECT_TRUE(healed.send_ack);
  ASSERT_EQ(healed.deliver.size(), 1u);
  EXPECT_EQ(healed.deliver[0].pulse, 3u);
}

TEST(LinkSender, SeqOverflowOfOnWireFieldIsRejected) {
  // TransportConfig::seq_bits is the width the wire carries and the CRC
  // hashes; the sender's 64-bit counter must never silently outgrow it.
  TransportConfig cfg;
  cfg.seq_bits = 2;
  LinkSender sender{cfg};
  for (int i = 0; i < 4; ++i) {
    const DataPacket p = sender.packet(test_frame(0));
    sender.on_ack(p.seq);
  }
  EXPECT_THROW(sender.packet(test_frame(0)), CheckFailure);
}

// ---------------------------------------------------------------- report --
// ------------------------------------------- detection flag semantics --
// `detected` counts every Reject ever issued — including by a node that
// crashed afterwards — because it is the fault-free-model answer the
// paper's one-sided-error analysis speaks about. `detected_by_survivors`
// is the operator's view: Rejects collectable from nodes alive at the end.
TEST(FaultReport, RejectFromLaterCrashedNodeCountsAsDetectedOnly) {
  class RejectThenLinger final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.id() == 0 && api.round() == 0) api.reject();
      if (api.round() >= 2) api.halt();
    }
  };

  NetworkConfig cfg;
  cfg.max_rounds = 8;
  cfg.faults.crashes.push_back({0, 1});  // node 0 rejects, then dies
  const auto outcome =
      run_congest(build::path(2), cfg, [](std::uint32_t) {
        return std::make_unique<RejectThenLinger>();
      });

  EXPECT_TRUE(outcome.detected);
  EXPECT_FALSE(outcome.faults.detected_by_survivors);
  EXPECT_FALSE(outcome.completed);  // a crashed node never counts as halted
  ASSERT_EQ(outcome.faults.crashed_nodes.size(), 1u);
  EXPECT_EQ(outcome.faults.crashed_nodes[0], 0u);
}

TEST(FaultReport, CrashAtRoundZeroPreemptsTheFirstRound) {
  // A round-0 crash wins against the node's own round-0 program: the
  // would-be rejector never executes, so nothing is detected anywhere.
  class RejectAtZero final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.id() == 0 && api.round() == 0) api.reject();
      if (api.round() >= 1) api.halt();
    }
  };
  NetworkConfig cfg;
  cfg.max_rounds = 4;
  cfg.faults.crashes.push_back({0, 0});
  const auto outcome =
      run_congest(build::path(2), cfg, [](std::uint32_t) {
        return std::make_unique<RejectAtZero>();
      });
  EXPECT_FALSE(outcome.detected);
  EXPECT_FALSE(outcome.faults.detected_by_survivors);
  ASSERT_EQ(outcome.faults.crashed_nodes.size(), 1u);
  EXPECT_EQ(outcome.faults.crashed_nodes[0], 0u);
}

TEST(FaultReport, AllNodesCrashedAtRoundZeroLeaveAnEmptyRun) {
  class RejectAtZero final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      api.reject();
      api.halt();
    }
  };
  NetworkConfig cfg;
  cfg.max_rounds = 4;
  for (std::uint32_t v = 0; v < 3; ++v) cfg.faults.crashes.push_back({v, 0});
  const auto outcome =
      run_congest(build::cycle(3), cfg, [](std::uint32_t) {
        return std::make_unique<RejectAtZero>();
      });
  EXPECT_FALSE(outcome.detected);
  EXPECT_FALSE(outcome.faults.detected_by_survivors);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.faults.crashed_nodes.size(), 3u);
  EXPECT_EQ(outcome.metrics.messages, 0u);
}

TEST(FaultReport, SoleRejectorSurvivesItsCrashedNeighborhood) {
  // Every neighbor of the one rejecting node dies before the reject is
  // issued. The verdict is still collectable — the rejector itself is the
  // survivor — so detected and detected_by_survivors agree.
  class CenterRejects final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.id() == 0 && api.round() == 1) api.reject();
      if (api.round() >= 2) api.halt();
    }
  };
  const Graph g = build::star(4);  // center 0 + 4 leaves
  NetworkConfig cfg;
  cfg.max_rounds = 6;
  for (std::uint32_t leaf = 1; leaf <= 4; ++leaf)
    cfg.faults.crashes.push_back({leaf, 0});
  const auto outcome = run_congest(g, cfg, [](std::uint32_t) {
    return std::make_unique<CenterRejects>();
  });
  EXPECT_TRUE(outcome.detected);
  EXPECT_TRUE(outcome.faults.detected_by_survivors);
  EXPECT_FALSE(outcome.completed);  // the crashed leaves never halt
  EXPECT_EQ(outcome.faults.crashed_nodes.size(), 4u);
}

TEST(FaultReport, RecoveryRestoresTheRejectingSurvivor) {
  // Reject-then-crash, async engine. Without recovery the reject is a
  // detected-only artifact (its issuer is dead at the end); with recovery
  // the inbox-log replay reproduces the Reject on the restored replica, so
  // the survivor view regains the verdict and the run completes.
  class RejectThenLinger final : public NodeProgram {
   public:
    void on_round(NodeApi& api) override {
      if (api.id() == 0 && api.round() == 0) api.reject();
      if (api.round() >= 2) api.halt();
    }
  };
  const Graph g = build::path(2);
  AsyncConfig cfg;
  cfg.max_pulses = 8;
  cfg.transport = TransportMode::Reliable;
  cfg.faults.crashes.push_back({0, 1});
  const auto factory = [](std::uint32_t) {
    return std::make_unique<RejectThenLinger>();
  };

  const auto without = run_async(g, cfg, factory);
  EXPECT_TRUE(without.detected);
  EXPECT_FALSE(without.faults.detected_by_survivors);
  EXPECT_TRUE(without.faults.recovered_nodes.empty());

  cfg.recovery.enabled = true;
  cfg.recovery.rejoin_delay = 1;
  const auto with = run_async(g, cfg, factory);
  EXPECT_TRUE(with.detected);
  EXPECT_TRUE(with.faults.detected_by_survivors);
  EXPECT_TRUE(with.completed);
  ASSERT_EQ(with.faults.recovered_nodes.size(), 1u);
  EXPECT_EQ(with.faults.recovered_nodes[0], 0u);
  EXPECT_GE(with.faults.replayed_pulses, 1u);
}

TEST(FaultReport, CleanAndSummary) {
  FaultReport report;
  EXPECT_TRUE(report.clean());
  report.frames_dropped = 3;
  report.crashed_nodes = {2};
  report.violations.push_back({ViolationKind::Bandwidth, 1, 4, "too big"});
  EXPECT_FALSE(report.clean());
  const std::string text = summarize(report);
  EXPECT_NE(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("bandwidth"), std::string::npos);
}

}  // namespace
}  // namespace csd::congest
