// Checkpoint/restore tests: the csd-ckpt-v1 format and its bit-identical
// resume contract on both engines, the zero-observer property of capture,
// node recovery in the async engine, and the stall watchdogs.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "congest/snapshot.hpp"
#include "detect/pipelined_cycle.hpp"
#include "graph/builders.hpp"
#include "obs/json.hpp"
#include "obs/metrics_series.hpp"
#include "obs/metrics_v2.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::congest {
namespace {

void expect_reports_equal(const FaultReport& a, const FaultReport& b) {
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.frames_corrupted, b.frames_corrupted);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.checksum_rejects, b.checksum_rejects);
  EXPECT_EQ(a.duplicate_packets, b.duplicate_packets);
  EXPECT_EQ(a.duplicate_acks, b.duplicate_acks);
  EXPECT_EQ(a.transport_failures, b.transport_failures);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.recovered_nodes, b.recovered_nodes);
  EXPECT_EQ(a.replayed_pulses, b.replayed_pulses);
  EXPECT_EQ(a.watchdog_stalls, b.watchdog_stalls);
  EXPECT_EQ(a.stalled_nodes, b.stalled_nodes);
  EXPECT_EQ(a.detected_by_survivors, b.detected_by_survivors);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].kind, b.violations[i].kind);
    EXPECT_EQ(a.violations[i].node, b.violations[i].node);
    EXPECT_EQ(a.violations[i].round, b.violations[i].round);
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
  }
}

/// The resumed trace must match the uninterrupted one for every round at or
/// past the checkpoint round. Phase labels are compared by NAME: the two
/// traces intern names in first-use order, so indices may differ when the
/// pre-checkpoint prefix declared phases the resumed run never saw.
void expect_trace_suffix_equal(const obs::RunTrace& full,
                               const obs::RunTrace& resumed,
                               std::uint64_t from_round) {
  ASSERT_TRUE(full.enabled());
  ASSERT_TRUE(resumed.enabled());
  const auto& a = full.rounds();
  const auto& b = resumed.rounds();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = from_round; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].messages, b[i].messages) << "round " << i;
    EXPECT_EQ(a[i].bits, b[i].bits) << "round " << i;
    EXPECT_EQ(a[i].node_messages, b[i].node_messages) << "round " << i;
    EXPECT_EQ(a[i].node_bits, b[i].node_bits) << "round " << i;
    const std::string phase_a =
        a[i].phase >= 0
            ? full.phase_names()[static_cast<std::size_t>(a[i].phase)]
            : "";
    const std::string phase_b =
        b[i].phase >= 0
            ? resumed.phase_names()[static_cast<std::size_t>(b[i].phase)]
            : "";
    EXPECT_EQ(phase_a, phase_b) << "round " << i;
  }
}

NetworkConfig faulty_sync_config() {
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 60;
  cfg.seed = 41;
  cfg.faults.drop = 0.15;
  cfg.faults.corrupt = 0.2;
  cfg.faults.crashes = {{2, 5}, {7, 9}};
  cfg.trace.enabled = true;
  return cfg;
}

// ---------------------------------------------------------------- sync --

TEST(SyncCheckpoint, CaptureIsAZeroObserver) {
  Rng rng(3);
  const Graph g = build::gnp(12, 0.3, rng);
  const auto factory = detect::pipelined_cycle_program(4);
  NetworkConfig plain = faulty_sync_config();
  NetworkConfig observed = plain;
  observed.checkpoint_at_round = 3;
  const auto a = run_congest(g, plain, factory);
  const auto b = run_congest(g, observed, factory);
  ASSERT_NE(b.checkpoint, nullptr);
  EXPECT_EQ(b.checkpoint->kind, Snapshot::Kind::Sync);
  EXPECT_EQ(b.checkpoint->sync.round, 3u);
  // Capturing changed nothing: same verdicts, metrics, report, trace.
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_EQ(a.metrics.bits_sent_by_node, b.metrics.bits_sent_by_node);
  expect_reports_equal(a.faults, b.faults);
  expect_trace_suffix_equal(a.trace, b.trace, 0);
}

TEST(SyncCheckpoint, ResumeIsBitIdentical) {
  Rng rng(4);
  const Graph g = build::gnp(14, 0.25, rng);
  const auto factory = detect::pipelined_cycle_program(4);
  NetworkConfig cfg = faulty_sync_config();
  cfg.checkpoint_at_round = 4;
  const Network net(g, cfg);
  const auto full = net.run(factory);
  ASSERT_NE(full.checkpoint, nullptr);

  const auto resumed = net.resume(factory, *full.checkpoint);
  EXPECT_EQ(resumed.verdicts, full.verdicts);
  EXPECT_EQ(resumed.detected, full.detected);
  EXPECT_EQ(resumed.completed, full.completed);
  EXPECT_EQ(resumed.metrics.rounds, full.metrics.rounds);
  EXPECT_EQ(resumed.metrics.messages, full.metrics.messages);
  EXPECT_EQ(resumed.metrics.total_bits, full.metrics.total_bits);
  EXPECT_EQ(resumed.metrics.max_message_bits, full.metrics.max_message_bits);
  EXPECT_EQ(resumed.metrics.bits_sent_by_node,
            full.metrics.bits_sent_by_node);
  expect_reports_equal(resumed.faults, full.faults);
  expect_trace_suffix_equal(full.trace, resumed.trace, 4);
}

TEST(SyncCheckpoint, ResumeStaysBitIdenticalWithTelemetryAttached) {
  Rng rng(4);
  const Graph g = build::gnp(14, 0.25, rng);
  const auto factory = detect::pipelined_cycle_program(4);

  // Baseline: the same checkpointed faulty run with no telemetry at all.
  NetworkConfig plain_cfg = faulty_sync_config();
  plain_cfg.checkpoint_at_round = 4;
  const Network plain_net(g, plain_cfg);
  const auto full = plain_net.run(factory);
  ASSERT_NE(full.checkpoint, nullptr);

  // Instrumented: sampler streaming to disk and the flight recorder armed
  // for the whole save + resume cycle.
  const std::string series_path =
      testing::TempDir() + "csd_resume_series.jsonl";
  obs::Telemetry telemetry;
  telemetry.start_sampler(series_path, /*period_ms=*/1);
  NetworkConfig cfg = faulty_sync_config();
  cfg.checkpoint_at_round = 4;
  cfg.telemetry = &telemetry;
  const Network net(g, cfg);
  const auto run = net.run(factory);
  ASSERT_NE(run.checkpoint, nullptr);
  const auto resumed = net.resume(factory, *run.checkpoint);
  telemetry.stop_sampler();

  // The telemetry pointer is outside the config digest and the engine
  // treats the plane as write-only, so the snapshot and every
  // deterministic output match the uninstrumented baseline bit for bit.
  EXPECT_EQ(to_json(*run.checkpoint).dump(),
            to_json(*full.checkpoint).dump());
  EXPECT_EQ(resumed.verdicts, full.verdicts);
  EXPECT_EQ(resumed.detected, full.detected);
  EXPECT_EQ(resumed.completed, full.completed);
  EXPECT_EQ(resumed.metrics.rounds, full.metrics.rounds);
  EXPECT_EQ(resumed.metrics.messages, full.metrics.messages);
  EXPECT_EQ(resumed.metrics.total_bits, full.metrics.total_bits);
  EXPECT_EQ(resumed.metrics.bits_sent_by_node,
            full.metrics.bits_sent_by_node);
  expect_reports_equal(resumed.faults, full.faults);
  expect_trace_suffix_equal(full.trace, resumed.trace, 4);

  // The wall-clock series may differ run to run (that's the point of
  // keeping it out of the deterministic trace); it only has to exist and
  // parse, and the recorder must have seen the induced fault events.
  std::ifstream is(series_path);
  ASSERT_TRUE(is.good());
  const obs::MetricsSeries series = obs::parse_metrics_series(is);
  EXPECT_FALSE(series.empty());
  EXPECT_GT(telemetry.events_recorded(), 0u);
  EXPECT_GT(telemetry.counter("sync_node_crashes").value(), 0u);
}

TEST(SyncCheckpoint, JsonAndFileRoundTripPreserveTheResumeContract) {
  Rng rng(5);
  const Graph g = build::gnp(10, 0.35, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  NetworkConfig cfg = faulty_sync_config();
  cfg.checkpoint_at_round = 3;
  const Network net(g, cfg);
  const auto full = net.run(factory);
  ASSERT_NE(full.checkpoint, nullptr);

  // In-memory JSON round trip.
  const obs::Json doc = to_json(*full.checkpoint);
  const Snapshot reparsed = snapshot_from_json(obs::Json::parse(doc.dump()));
  const auto resumed = net.resume(factory, reparsed);
  EXPECT_EQ(resumed.verdicts, full.verdicts);
  expect_reports_equal(resumed.faults, full.faults);

  // File round trip.
  const std::string path = testing::TempDir() + "csd_ckpt_roundtrip.json";
  save_snapshot(path, *full.checkpoint);
  const Snapshot loaded = load_snapshot(path);
  const auto resumed2 = net.resume(factory, loaded);
  EXPECT_EQ(resumed2.verdicts, full.verdicts);
  EXPECT_EQ(resumed2.metrics.total_bits, full.metrics.total_bits);
  expect_reports_equal(resumed2.faults, full.faults);
}

TEST(SyncCheckpoint, ResumeRejectsForeignSnapshots) {
  Rng rng(6);
  const Graph g = build::cycle(8);
  const auto factory = detect::pipelined_cycle_program(3);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 40;
  cfg.seed = 9;
  cfg.checkpoint_at_round = 3;
  const Network net(g, cfg);
  const auto full = net.run(factory);
  ASSERT_NE(full.checkpoint, nullptr);

  // Different topology.
  const Network other_topology(build::path(8), cfg);
  EXPECT_THROW(other_topology.resume(factory, *full.checkpoint),
               CheckFailure);
  // Different engine configuration.
  NetworkConfig other_cfg = cfg;
  other_cfg.bandwidth = 32;
  const Network other_config(g, other_cfg);
  EXPECT_THROW(other_config.resume(factory, *full.checkpoint), CheckFailure);
  // Changing only the checkpoint round is allowed: it is not part of the
  // identity digest (a resumed run may checkpoint elsewhere).
  NetworkConfig reckpt = cfg;
  reckpt.checkpoint_at_round = 0;
  const Network recheckpoint(g, reckpt);
  const auto resumed = recheckpoint.resume(factory, *full.checkpoint);
  EXPECT_EQ(resumed.verdicts, full.verdicts);
  EXPECT_EQ(resumed.checkpoint, nullptr);
}

TEST(SyncCheckpoint, NoCheckpointWhenTheRunEndsFirst) {
  const Graph g = build::cycle(6);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 200;
  cfg.checkpoint_at_round = 150;  // far past the program's halting round
  const auto outcome =
      run_congest(g, cfg, detect::pipelined_cycle_program(3));
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.checkpoint, nullptr);
  EXPECT_EQ(outcome.metrics.counters.value("checkpoints_taken"), 0);
}

TEST(SyncCheckpoint, AmplifiedKeepsTheFirstRepetitionsSnapshot) {
  Rng rng(8);
  const Graph g = build::gnp(10, 0.3, rng);
  NetworkConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_rounds = 60;
  cfg.seed = 77;
  cfg.checkpoint_at_round = 2;
  AmplifyOptions options;
  options.jobs = 2;
  options.early_exit = false;
  const auto combined = run_amplified(g, cfg, detect::pipelined_cycle_program(3),
                                      4, options);
  ASSERT_NE(combined.checkpoint, nullptr);
  EXPECT_EQ(combined.checkpoint->kind, Snapshot::Kind::Sync);
  // The kept snapshot is repetition 0's: its seed is the first derived one.
  EXPECT_EQ(combined.checkpoint->sync.identity.seed,
            derive_seed(cfg.seed, 0x5eedULL + 0));
}

TEST(SyncWatchdog, CutsSilentRunsAfterTheWindow) {
  class SilentForever final : public NodeProgram {
   public:
    void on_round(NodeApi&) override {}  // never sends, never halts
  };
  const Graph g = build::path(4);
  NetworkConfig cfg;
  cfg.max_rounds = 1000;
  cfg.stall_window = 5;
  const auto outcome = run_congest(g, cfg, [](std::uint32_t) {
    return std::make_unique<SilentForever>();
  });
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.faults.watchdog_stalls, 1u);
  EXPECT_EQ(outcome.metrics.rounds, 5u);  // window rounds, then the cut
  EXPECT_EQ(outcome.metrics.counters.value("watchdog_stalls"), 1);
}

// --------------------------------------------------------------- async --

AsyncConfig faulty_async_config(TransportMode mode) {
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 120;
  cfg.seed = 23;
  cfg.max_delay = 5;
  cfg.transport = mode;
  cfg.faults.drop = mode == TransportMode::Reliable ? 0.2 : 0.05;
  cfg.faults.corrupt = 0.1;
  cfg.faults.crashes = {{1, 6}};
  cfg.trace.enabled = true;
  return cfg;
}

void expect_async_equal(const AsyncRunOutcome& a, const AsyncRunOutcome& b) {
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.pulses, b.pulses);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.payload_bits, b.payload_bits);
  EXPECT_EQ(a.overhead_bits, b.overhead_bits);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.transport_bits, b.transport_bits);
  EXPECT_EQ(a.acks, b.acks);
  expect_reports_equal(a.faults, b.faults);
}

TEST(AsyncCheckpoint, CaptureIsAZeroObserver) {
  Rng rng(11);
  const Graph g = build::gnp(10, 0.3, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  const AsyncConfig plain = faulty_async_config(TransportMode::Reliable);
  AsyncConfig observed = plain;
  observed.checkpoint_at_pulse = 3;
  const auto a = run_async(g, plain, factory);
  const auto b = run_async(g, observed, factory);
  ASSERT_NE(b.checkpoint, nullptr);
  EXPECT_EQ(b.checkpoint->kind, Snapshot::Kind::Async);
  expect_async_equal(a, b);
  expect_trace_suffix_equal(a.trace, b.trace, 0);
}

TEST(AsyncCheckpoint, ResumeIsBitIdenticalRawAndReliable) {
  Rng rng(12);
  const Graph g = build::gnp(11, 0.3, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  for (const TransportMode mode :
       {TransportMode::Raw, TransportMode::Reliable}) {
    AsyncConfig cfg = faulty_async_config(mode);
    cfg.checkpoint_at_pulse = 2;
    const auto full = run_async(g, cfg, factory);
    ASSERT_NE(full.checkpoint, nullptr);

    // JSON round trip on the way, so the serialized form is what resumes.
    const Snapshot reparsed =
        snapshot_from_json(obs::Json::parse(to_json(*full.checkpoint).dump()));
    const auto resumed = resume_async(g, cfg, factory, reparsed);
    expect_async_equal(full, resumed);
    expect_trace_suffix_equal(full.trace, resumed.trace,
                              full.checkpoint->async_state.pulses);
  }
}

TEST(AsyncCheckpoint, ResumeRejectsForeignSnapshots) {
  const Graph g = build::cycle(8);
  const auto factory = detect::pipelined_cycle_program(3);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 60;
  cfg.seed = 31;
  cfg.checkpoint_at_pulse = 2;
  const auto full = run_async(g, cfg, factory);
  ASSERT_NE(full.checkpoint, nullptr);
  EXPECT_THROW(resume_async(build::path(8), cfg, factory, *full.checkpoint),
               CheckFailure);
  AsyncConfig other = cfg;
  other.max_delay = cfg.max_delay + 1;
  EXPECT_THROW(resume_async(g, other, factory, *full.checkpoint),
               CheckFailure);
  AsyncConfig reseeded = cfg;
  reseeded.seed = cfg.seed + 1;
  EXPECT_THROW(resume_async(g, reseeded, factory, *full.checkpoint),
               CheckFailure);
}

// ------------------------------------------------------------- recovery --

TEST(AsyncRecovery, ScheduledCrashRejoinsAndMatchesFaultFreeVerdicts) {
  Rng rng(14);
  const Graph g = build::gnp(10, 0.35, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 400;
  cfg.seed = 47;
  cfg.max_delay = 4;
  cfg.transport = TransportMode::Reliable;
  const auto clean = run_async(g, cfg, factory);
  ASSERT_TRUE(clean.completed);

  AsyncConfig crashed = cfg;
  crashed.faults.crashes = {{3, 4}};
  const auto dead = run_async(g, crashed, factory);
  EXPECT_FALSE(dead.completed);  // without recovery the crash is final

  AsyncConfig recovering = crashed;
  recovering.recovery.enabled = true;
  const auto healed = run_async(g, recovering, factory);
  EXPECT_TRUE(healed.completed);
  EXPECT_EQ(healed.verdicts, clean.verdicts);
  EXPECT_EQ(healed.detected, clean.detected);
  ASSERT_EQ(healed.faults.crashed_nodes, std::vector<std::uint32_t>{3});
  ASSERT_EQ(healed.faults.recovered_nodes, std::vector<std::uint32_t>{3});
  EXPECT_EQ(healed.faults.replayed_pulses, 4u);  // pulses 0..3 replayed
  EXPECT_EQ(healed.counters.value("recovered_nodes"), 1);
  EXPECT_EQ(healed.counters.value("replayed_pulses"), 4);
}

TEST(AsyncRecovery, CrashAtPulseZeroRecoversFromAnEmptyHistory) {
  const Graph g = build::cycle(6);
  const auto factory = detect::pipelined_cycle_program(3);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 300;
  cfg.seed = 51;
  cfg.transport = TransportMode::Reliable;
  cfg.faults.crashes = {{0, 0}};
  cfg.recovery.enabled = true;
  const auto outcome = run_async(g, cfg, factory);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.faults.recovered_nodes, std::vector<std::uint32_t>{0});
  EXPECT_EQ(outcome.faults.replayed_pulses, 0u);  // nothing to replay
}

TEST(AsyncRecovery, RecoveryBudgetIsHonored) {
  const Graph g = build::path(3);
  const auto factory = detect::pipelined_cycle_program(3);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 200;
  cfg.transport = TransportMode::Reliable;
  cfg.faults.crashes = {{1, 2}};
  cfg.recovery.enabled = true;
  cfg.recovery.max_recoveries = 0;  // policy on, budget zero -> stays dead
  const auto outcome = run_async(g, cfg, factory);
  EXPECT_FALSE(outcome.completed);
  EXPECT_TRUE(outcome.faults.recovered_nodes.empty());
}

TEST(AsyncRecovery, ResumeAcrossAPendingRecoveryIsBitIdentical) {
  // Checkpoint while the crashed node is down (its Recover event still in
  // the queue): the snapshot must carry the pending rejoin and the parked
  // transport conversations across the resume.
  Rng rng(15);
  const Graph g = build::gnp(9, 0.4, rng);
  const auto factory = detect::pipelined_cycle_program(3);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 400;
  cfg.seed = 61;
  cfg.max_delay = 4;
  cfg.transport = TransportMode::Reliable;
  cfg.faults.crashes = {{2, 3}};
  cfg.recovery.enabled = true;
  cfg.recovery.rejoin_delay = 200;  // long outage: capture lands inside it
  cfg.checkpoint_at_pulse = 4;
  const auto full = run_async(g, cfg, factory);
  ASSERT_NE(full.checkpoint, nullptr);
  ASSERT_TRUE(full.completed);
  ASSERT_EQ(full.faults.recovered_nodes, std::vector<std::uint32_t>{2});

  const Snapshot reparsed =
      snapshot_from_json(obs::Json::parse(to_json(*full.checkpoint).dump()));
  const auto resumed = resume_async(g, cfg, factory, reparsed);
  expect_async_equal(full, resumed);
}

TEST(AsyncWatchdog, CutsAStarvedRunInsteadOfGrindingThroughRetries) {
  // A crashed hub starves the leaves; on reliable links their senders keep
  // retransmitting into the void with backed-off timers, so the event clock
  // races ahead of the last delivery. The watchdog should cut the run with
  // a structured report instead of grinding through the retry horizon.
  const Graph g = build::star(5);
  const auto factory = detect::pipelined_cycle_program(3);
  AsyncConfig cfg;
  cfg.bandwidth = 64;
  cfg.max_pulses = 5000;
  cfg.transport = TransportMode::Reliable;
  cfg.faults.crashes = {{0, 1}};  // the hub
  cfg.stall_window = 2;
  const auto outcome = run_async(g, cfg, factory);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.faults.watchdog_stalls, 1u);
  EXPECT_EQ(outcome.counters.value("watchdog_stalls"), 1);
}

}  // namespace
}  // namespace csd::congest
