// Tests for the Theorem 1.2 constructions: H_k (Figure 1) and the family
// G_{k,n} (Definition 2 / Figure 2), including machine checks of Property 1
// and Lemma 3.1 (the latter cross-validated against the VF2 oracle at small
// sizes).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "comm/disjointness.hpp"
#include "graph/algorithms.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/hk.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace csd::lb {
namespace {

// ------------------------------------------------------------------- H_k --
TEST(Hk, SizeIsLinearInK) {
  for (const std::uint32_t k : {1u, 2u, 5u, 20u}) {
    const auto hk = build_hk(k);
    EXPECT_EQ(hk.graph.num_vertices(), 44 + 6 * k);
    EXPECT_EQ(hk.graph.num_vertices(), hk.layout.num_vertices());
  }
}

TEST(Hk, DiameterIsThree) {
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    const auto hk = build_hk(k);
    EXPECT_EQ(diameter(hk.graph), 3u) << "k=" << k;
  }
}

TEST(Hk, ContainsExactlyTheFiveMarkerCliqueSizes) {
  const auto hk = build_hk(2);
  // A K_10 exists (clique 10) but no K_11.
  EXPECT_TRUE(oracle::has_clique(hk.graph, 10));
  EXPECT_FALSE(oracle::has_clique(hk.graph, 11));
}

TEST(Hk, EndpointDegreesAreAsConstructed) {
  const std::uint32_t k = 3;
  const auto hk = build_hk(k);
  for (const Side s : {Side::Top, Side::Bottom})
    for (const Corner d : {Corner::A, Corner::B}) {
      // k triangle corners + 1 marker + 1 top-bottom partner.
      EXPECT_EQ(hk.graph.degree(hk.layout.endpoint(s, d)), k + 2);
    }
}

TEST(Hk, TriangleCornersFormTriangles) {
  const std::uint32_t k = 2;
  const auto hk = build_hk(k);
  for (const Side s : {Side::Top, Side::Bottom})
    for (std::uint32_t i = 0; i < k; ++i) {
      const Vertex a = hk.layout.triangle_vertex(s, i, Corner::A);
      const Vertex b = hk.layout.triangle_vertex(s, i, Corner::B);
      const Vertex m = hk.layout.triangle_vertex(s, i, Corner::Mid);
      EXPECT_TRUE(hk.graph.has_edge(a, b));
      EXPECT_TRUE(hk.graph.has_edge(b, m));
      EXPECT_TRUE(hk.graph.has_edge(a, m));
    }
}

TEST(Hk, TopBottomEdgesPresent) {
  const auto hk = build_hk(2);
  EXPECT_TRUE(hk.graph.has_edge(hk.layout.endpoint(Side::Top, Corner::A),
                                hk.layout.endpoint(Side::Bottom, Corner::A)));
  EXPECT_TRUE(hk.graph.has_edge(hk.layout.endpoint(Side::Top, Corner::B),
                                hk.layout.endpoint(Side::Bottom, Corner::B)));
  EXPECT_FALSE(hk.graph.has_edge(hk.layout.endpoint(Side::Top, Corner::A),
                                 hk.layout.endpoint(Side::Bottom, Corner::B)));
}

TEST(Hk, MarkerAssignmentMatchesOwnership) {
  // A-classes use Alice's cliques {6,8}, B-classes Bob's {7,9}, Mid 10.
  EXPECT_EQ(marker_clique_size(Side::Top, Corner::A), 6u);
  EXPECT_EQ(marker_clique_size(Side::Bottom, Corner::A), 8u);
  EXPECT_EQ(marker_clique_size(Side::Top, Corner::B), 7u);
  EXPECT_EQ(marker_clique_size(Side::Bottom, Corner::B), 9u);
  EXPECT_EQ(marker_clique_size(Side::Top, Corner::Mid), 10u);
  EXPECT_EQ(marker_clique_size(Side::Bottom, Corner::Mid), 10u);
}

// ----------------------------------------------------------------- G_{k,n}
TEST(Gkn, FrameSizeMatchesDefinition) {
  for (const std::uint32_t k : {2u, 3u})
    for (const std::uint32_t n : {2u, 5u, 9u}) {
      const auto g = build_gkn_frame(k, n);
      EXPECT_EQ(g.layout.m,
                k * static_cast<std::uint32_t>(ceil_kth_root(n, k)));
      EXPECT_EQ(g.graph.num_vertices(), 4 * n + 6 * g.layout.m + 40);
    }
}

TEST(Gkn, Property1DiameterThree) {
  for (const std::uint32_t n : {2u, 6u}) {
    const auto g = build_gkn_frame(2, n);
    EXPECT_EQ(diameter(g.graph), 3u) << "n=" << n;
  }
}

TEST(Gkn, SubsetEncodingIsInjective) {
  const auto g = build_gkn_frame(2, 9);
  std::set<std::vector<std::uint32_t>> seen;
  for (std::uint32_t i = 0; i < 9; ++i) {
    const auto q = g.layout.subset_of(i);
    EXPECT_EQ(q.size(), 2u);
    seen.insert(q);
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(Gkn, EndpointWiredToItsSubsetTriangles) {
  const std::uint32_t k = 2, n = 5;
  const auto g = build_gkn_frame(k, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto q = g.layout.subset_of(i);
    const Vertex end = g.layout.endpoint(Side::Top, Corner::A, i);
    for (std::uint32_t j = 0; j < g.layout.m; ++j) {
      const bool wired = g.graph.has_edge(
          end, g.layout.triangle_vertex(Side::Top, j, Corner::A));
      const bool in_q = std::find(q.begin(), q.end(), j) != q.end();
      EXPECT_EQ(wired, in_q) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Gkn, Lemma31StructuralMatchesDisjointness) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t n = 4;
    const bool intersecting = trial % 2 == 0;
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.2, intersecting, rng);
    const auto g = build_gxy(2, n, inst);
    EXPECT_EQ(contains_hk_structurally(g), intersecting)
        << "trial " << trial;
  }
}

TEST(Gkn, Lemma31AgreesWithVf2OracleSmall) {
  // The structural criterion must coincide with genuine H_k-subgraph
  // containment (Lemma 3.1). Cross-check with VF2 at the smallest size.
  Rng rng(57);
  const std::uint32_t k = 1, n = 2;
  const auto hk = build_hk(k);
  for (int trial = 0; trial < 6; ++trial) {
    const bool intersecting = trial % 2 == 0;
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.3, intersecting, rng);
    const auto g = build_gxy(k, n, inst);
    SubgraphSearchOptions opts;
    opts.max_steps = 50'000'000;
    EXPECT_EQ(contains_subgraph(g.graph, hk.graph, opts), intersecting)
        << "VF2 disagrees with Lemma 3.1 at trial " << trial;
    EXPECT_EQ(contains_hk_structurally(g), intersecting);
  }
}

TEST(Gkn, OwnershipPartitionShapes) {
  const auto g = build_gkn_frame(2, 6);
  const auto owner = gkn_ownership(g.layout);
  ASSERT_EQ(owner.size(), g.graph.num_vertices());
  std::size_t alice = 0, bob = 0, shared = 0;
  for (const auto o : owner) {
    if (o == comm::Owner::Alice) ++alice;
    if (o == comm::Owner::Bob) ++bob;
    if (o == comm::Owner::Shared) ++shared;
  }
  // Alice: 2n endpoints + 2m corners + cliques 6+8; Bob symmetric (7+9);
  // shared: 2m mid corners + clique 10.
  EXPECT_EQ(alice, 2u * 6 + 2u * g.layout.m + 14);
  EXPECT_EQ(bob, 2u * 6 + 2u * g.layout.m + 16);
  EXPECT_EQ(shared, 2u * g.layout.m + 10);
}

TEST(Gkn, CutSizeIsOrderKTimesRoot) {
  // The structural cut should be 6m + O(1) edges, m = k⌈n^{1/k}⌉.
  for (const std::uint32_t n : {4u, 16u, 64u}) {
    const auto g = build_gkn_frame(2, n);
    const auto owner = gkn_ownership(g.layout);
    std::uint64_t cut = 0;
    for (const auto& [u, v] : g.graph.edges()) {
      const bool priv_u = owner[u] != comm::Owner::Shared;
      const bool priv_v = owner[v] != comm::Owner::Shared;
      if ((priv_u || priv_v) && owner[u] != owner[v]) ++cut;
    }
    EXPECT_GE(cut, 6u * g.layout.m);
    EXPECT_LE(cut, 6u * g.layout.m + 16);
  }
}

TEST(Gkn, InputEdgesOnlyBetweenMatchingEndpoints) {
  Rng rng(59);
  const std::uint32_t n = 4;
  const auto inst = comm::random_disjointness(16, 0.4, true, rng);
  const auto with_inputs = build_gxy(2, n, inst);
  const auto frame = build_gkn_frame(2, n);
  // Every extra edge relative to the frame joins a top endpoint to a bottom
  // endpoint of the same direction.
  const auto frame_edges = frame.graph.edges();
  std::set<std::pair<Vertex, Vertex>> frame_set(frame_edges.begin(),
                                                frame_edges.end());
  const auto& l = with_inputs.layout;
  for (const auto& e : with_inputs.graph.edges()) {
    if (frame_set.count(e)) continue;
    bool matches = false;
    for (const Corner dir : {Corner::A, Corner::B})
      for (std::uint32_t i = 0; i < n && !matches; ++i)
        for (std::uint32_t j = 0; j < n && !matches; ++j)
          matches = e == std::minmax({l.endpoint(Side::Top, dir, i),
                                      l.endpoint(Side::Bottom, dir, j)});
    EXPECT_TRUE(matches) << "unexpected edge " << e.first << "," << e.second;
  }
}

TEST(Gkn, BuildRejectsWrongUniverse) {
  comm::DisjointnessInstance inst;
  inst.universe = 5;  // not n^2
  EXPECT_THROW(build_gxy(2, 3, inst), CheckFailure);
}

// ---------------------------------------------------------- disjointness --
TEST(Disjointness, RandomInstancesRespectFlag) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    const bool want = trial % 2 == 0;
    const auto inst = comm::random_disjointness(64, 0.15, want, rng);
    EXPECT_EQ(inst.intersects(), want);
    for (const auto e : inst.x) EXPECT_LT(e, 64u);
    EXPECT_TRUE(std::is_sorted(inst.x.begin(), inst.x.end()));
    EXPECT_TRUE(std::is_sorted(inst.y.begin(), inst.y.end()));
  }
}

TEST(Disjointness, PairElementRoundTrip) {
  for (std::uint64_t i = 0; i < 7; ++i)
    for (std::uint64_t j = 0; j < 7; ++j) {
      const auto e = comm::pair_to_element(i, j, 7);
      EXPECT_LT(e, 49u);
      EXPECT_EQ(comm::element_to_pair(e, 7), std::make_pair(i, j));
    }
}

}  // namespace
}  // namespace csd::lb
