file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_gkn.dir/bench_fig2_gkn.cpp.o"
  "CMakeFiles/bench_fig2_gkn.dir/bench_fig2_gkn.cpp.o.d"
  "bench_fig2_gkn"
  "bench_fig2_gkn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_gkn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
