# Empty compiler generated dependencies file for bench_abl_phases.
# This may be replaced when dependencies are built.
