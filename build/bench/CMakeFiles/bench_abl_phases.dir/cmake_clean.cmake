file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_phases.dir/bench_abl_phases.cpp.o"
  "CMakeFiles/bench_abl_phases.dir/bench_abl_phases.cpp.o.d"
  "bench_abl_phases"
  "bench_abl_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
