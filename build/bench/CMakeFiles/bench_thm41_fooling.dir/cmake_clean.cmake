file(REMOVE_RECURSE
  "CMakeFiles/bench_thm41_fooling.dir/bench_thm41_fooling.cpp.o"
  "CMakeFiles/bench_thm41_fooling.dir/bench_thm41_fooling.cpp.o.d"
  "bench_thm41_fooling"
  "bench_thm41_fooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm41_fooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
