# Empty compiler generated dependencies file for bench_thm41_fooling.
# This may be replaced when dependencies are built.
