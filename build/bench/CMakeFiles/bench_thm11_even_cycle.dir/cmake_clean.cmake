file(REMOVE_RECURSE
  "CMakeFiles/bench_thm11_even_cycle.dir/bench_thm11_even_cycle.cpp.o"
  "CMakeFiles/bench_thm11_even_cycle.dir/bench_thm11_even_cycle.cpp.o.d"
  "bench_thm11_even_cycle"
  "bench_thm11_even_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm11_even_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
