# Empty dependencies file for bench_thm11_even_cycle.
# This may be replaced when dependencies are built.
