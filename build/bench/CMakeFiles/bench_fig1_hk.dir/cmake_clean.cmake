file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hk.dir/bench_fig1_hk.cpp.o"
  "CMakeFiles/bench_fig1_hk.dir/bench_fig1_hk.cpp.o.d"
  "bench_fig1_hk"
  "bench_fig1_hk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
