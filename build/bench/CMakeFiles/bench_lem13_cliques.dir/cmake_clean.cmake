file(REMOVE_RECURSE
  "CMakeFiles/bench_lem13_cliques.dir/bench_lem13_cliques.cpp.o"
  "CMakeFiles/bench_lem13_cliques.dir/bench_lem13_cliques.cpp.o.d"
  "bench_lem13_cliques"
  "bench_lem13_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lem13_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
