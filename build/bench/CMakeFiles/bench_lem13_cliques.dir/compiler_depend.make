# Empty compiler generated dependencies file for bench_lem13_cliques.
# This may be replaced when dependencies are built.
