# Empty dependencies file for bench_thm51_oneround.
# This may be replaced when dependencies are built.
