file(REMOVE_RECURSE
  "CMakeFiles/bench_thm51_oneround.dir/bench_thm51_oneround.cpp.o"
  "CMakeFiles/bench_thm51_oneround.dir/bench_thm51_oneround.cpp.o.d"
  "bench_thm51_oneround"
  "bench_thm51_oneround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm51_oneround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
