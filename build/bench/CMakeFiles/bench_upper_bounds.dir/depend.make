# Empty dependencies file for bench_upper_bounds.
# This may be replaced when dependencies are built.
