file(REMOVE_RECURSE
  "CMakeFiles/bench_list_cliques.dir/bench_list_cliques.cpp.o"
  "CMakeFiles/bench_list_cliques.dir/bench_list_cliques.cpp.o.d"
  "bench_list_cliques"
  "bench_list_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_list_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
