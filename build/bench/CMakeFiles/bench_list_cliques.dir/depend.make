# Empty dependencies file for bench_list_cliques.
# This may be replaced when dependencies are built.
