# Empty dependencies file for bench_thm12_superlinear.
# This may be replaced when dependencies are built.
