file(REMOVE_RECURSE
  "CMakeFiles/bench_thm12_superlinear.dir/bench_thm12_superlinear.cpp.o"
  "CMakeFiles/bench_thm12_superlinear.dir/bench_thm12_superlinear.cpp.o.d"
  "bench_thm12_superlinear"
  "bench_thm12_superlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm12_superlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
