file(REMOVE_RECURSE
  "CMakeFiles/bench_sec34_bipartite.dir/bench_sec34_bipartite.cpp.o"
  "CMakeFiles/bench_sec34_bipartite.dir/bench_sec34_bipartite.cpp.o.d"
  "bench_sec34_bipartite"
  "bench_sec34_bipartite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec34_bipartite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
