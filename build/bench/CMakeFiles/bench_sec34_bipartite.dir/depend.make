# Empty dependencies file for bench_sec34_bipartite.
# This may be replaced when dependencies are built.
