file(REMOVE_RECURSE
  "CMakeFiles/bench_related_testing.dir/bench_related_testing.cpp.o"
  "CMakeFiles/bench_related_testing.dir/bench_related_testing.cpp.o.d"
  "bench_related_testing"
  "bench_related_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
