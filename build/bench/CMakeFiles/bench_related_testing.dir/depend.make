# Empty dependencies file for bench_related_testing.
# This may be replaced when dependencies are built.
