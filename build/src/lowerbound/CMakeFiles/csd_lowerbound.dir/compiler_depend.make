# Empty compiler generated dependencies file for csd_lowerbound.
# This may be replaced when dependencies are built.
