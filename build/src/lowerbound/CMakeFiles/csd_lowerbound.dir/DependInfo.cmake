
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowerbound/fooling.cpp" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/fooling.cpp.o" "gcc" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/fooling.cpp.o.d"
  "/root/repo/src/lowerbound/gkn.cpp" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/gkn.cpp.o" "gcc" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/gkn.cpp.o.d"
  "/root/repo/src/lowerbound/hk.cpp" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/hk.cpp.o" "gcc" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/hk.cpp.o.d"
  "/root/repo/src/lowerbound/oneround.cpp" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/oneround.cpp.o" "gcc" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/oneround.cpp.o.d"
  "/root/repo/src/lowerbound/reduction.cpp" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/reduction.cpp.o" "gcc" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/reduction.cpp.o.d"
  "/root/repo/src/lowerbound/turan_counts.cpp" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/turan_counts.cpp.o" "gcc" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/turan_counts.cpp.o.d"
  "/root/repo/src/lowerbound/variants.cpp" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/variants.cpp.o" "gcc" "src/lowerbound/CMakeFiles/csd_lowerbound.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/csd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/congest/CMakeFiles/csd_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/csd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/csd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/info/CMakeFiles/csd_info.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
