file(REMOVE_RECURSE
  "libcsd_lowerbound.a"
)
