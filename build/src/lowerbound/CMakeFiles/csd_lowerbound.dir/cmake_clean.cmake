file(REMOVE_RECURSE
  "CMakeFiles/csd_lowerbound.dir/fooling.cpp.o"
  "CMakeFiles/csd_lowerbound.dir/fooling.cpp.o.d"
  "CMakeFiles/csd_lowerbound.dir/gkn.cpp.o"
  "CMakeFiles/csd_lowerbound.dir/gkn.cpp.o.d"
  "CMakeFiles/csd_lowerbound.dir/hk.cpp.o"
  "CMakeFiles/csd_lowerbound.dir/hk.cpp.o.d"
  "CMakeFiles/csd_lowerbound.dir/oneround.cpp.o"
  "CMakeFiles/csd_lowerbound.dir/oneround.cpp.o.d"
  "CMakeFiles/csd_lowerbound.dir/reduction.cpp.o"
  "CMakeFiles/csd_lowerbound.dir/reduction.cpp.o.d"
  "CMakeFiles/csd_lowerbound.dir/turan_counts.cpp.o"
  "CMakeFiles/csd_lowerbound.dir/turan_counts.cpp.o.d"
  "CMakeFiles/csd_lowerbound.dir/variants.cpp.o"
  "CMakeFiles/csd_lowerbound.dir/variants.cpp.o.d"
  "libcsd_lowerbound.a"
  "libcsd_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
