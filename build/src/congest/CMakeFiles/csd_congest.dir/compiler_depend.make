# Empty compiler generated dependencies file for csd_congest.
# This may be replaced when dependencies are built.
