file(REMOVE_RECURSE
  "CMakeFiles/csd_congest.dir/async.cpp.o"
  "CMakeFiles/csd_congest.dir/async.cpp.o.d"
  "CMakeFiles/csd_congest.dir/clique.cpp.o"
  "CMakeFiles/csd_congest.dir/clique.cpp.o.d"
  "CMakeFiles/csd_congest.dir/clique_router.cpp.o"
  "CMakeFiles/csd_congest.dir/clique_router.cpp.o.d"
  "CMakeFiles/csd_congest.dir/network.cpp.o"
  "CMakeFiles/csd_congest.dir/network.cpp.o.d"
  "CMakeFiles/csd_congest.dir/primitives.cpp.o"
  "CMakeFiles/csd_congest.dir/primitives.cpp.o.d"
  "libcsd_congest.a"
  "libcsd_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
