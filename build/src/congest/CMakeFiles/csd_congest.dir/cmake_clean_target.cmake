file(REMOVE_RECURSE
  "libcsd_congest.a"
)
