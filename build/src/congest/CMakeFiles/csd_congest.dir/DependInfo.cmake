
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/congest/async.cpp" "src/congest/CMakeFiles/csd_congest.dir/async.cpp.o" "gcc" "src/congest/CMakeFiles/csd_congest.dir/async.cpp.o.d"
  "/root/repo/src/congest/clique.cpp" "src/congest/CMakeFiles/csd_congest.dir/clique.cpp.o" "gcc" "src/congest/CMakeFiles/csd_congest.dir/clique.cpp.o.d"
  "/root/repo/src/congest/clique_router.cpp" "src/congest/CMakeFiles/csd_congest.dir/clique_router.cpp.o" "gcc" "src/congest/CMakeFiles/csd_congest.dir/clique_router.cpp.o.d"
  "/root/repo/src/congest/network.cpp" "src/congest/CMakeFiles/csd_congest.dir/network.cpp.o" "gcc" "src/congest/CMakeFiles/csd_congest.dir/network.cpp.o.d"
  "/root/repo/src/congest/primitives.cpp" "src/congest/CMakeFiles/csd_congest.dir/primitives.cpp.o" "gcc" "src/congest/CMakeFiles/csd_congest.dir/primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/csd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
