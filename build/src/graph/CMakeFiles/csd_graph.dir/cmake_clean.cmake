file(REMOVE_RECURSE
  "CMakeFiles/csd_graph.dir/algorithms.cpp.o"
  "CMakeFiles/csd_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/csd_graph.dir/builders.cpp.o"
  "CMakeFiles/csd_graph.dir/builders.cpp.o.d"
  "CMakeFiles/csd_graph.dir/graph.cpp.o"
  "CMakeFiles/csd_graph.dir/graph.cpp.o.d"
  "CMakeFiles/csd_graph.dir/io.cpp.o"
  "CMakeFiles/csd_graph.dir/io.cpp.o.d"
  "CMakeFiles/csd_graph.dir/oracle.cpp.o"
  "CMakeFiles/csd_graph.dir/oracle.cpp.o.d"
  "CMakeFiles/csd_graph.dir/vf2.cpp.o"
  "CMakeFiles/csd_graph.dir/vf2.cpp.o.d"
  "libcsd_graph.a"
  "libcsd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
