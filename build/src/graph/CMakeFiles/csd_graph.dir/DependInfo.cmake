
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/graph/CMakeFiles/csd_graph.dir/algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/csd_graph.dir/algorithms.cpp.o.d"
  "/root/repo/src/graph/builders.cpp" "src/graph/CMakeFiles/csd_graph.dir/builders.cpp.o" "gcc" "src/graph/CMakeFiles/csd_graph.dir/builders.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/csd_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/csd_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/csd_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/csd_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/oracle.cpp" "src/graph/CMakeFiles/csd_graph.dir/oracle.cpp.o" "gcc" "src/graph/CMakeFiles/csd_graph.dir/oracle.cpp.o.d"
  "/root/repo/src/graph/vf2.cpp" "src/graph/CMakeFiles/csd_graph.dir/vf2.cpp.o" "gcc" "src/graph/CMakeFiles/csd_graph.dir/vf2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/csd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
