# Empty compiler generated dependencies file for csd_graph.
# This may be replaced when dependencies are built.
