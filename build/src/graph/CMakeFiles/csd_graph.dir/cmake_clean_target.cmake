file(REMOVE_RECURSE
  "libcsd_graph.a"
)
