file(REMOVE_RECURSE
  "libcsd_comm.a"
)
