# Empty compiler generated dependencies file for csd_comm.
# This may be replaced when dependencies are built.
