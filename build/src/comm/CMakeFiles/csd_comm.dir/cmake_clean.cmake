file(REMOVE_RECURSE
  "CMakeFiles/csd_comm.dir/cut_simulator.cpp.o"
  "CMakeFiles/csd_comm.dir/cut_simulator.cpp.o.d"
  "CMakeFiles/csd_comm.dir/disjointness.cpp.o"
  "CMakeFiles/csd_comm.dir/disjointness.cpp.o.d"
  "libcsd_comm.a"
  "libcsd_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
