file(REMOVE_RECURSE
  "CMakeFiles/csd_detect.dir/clique_detect.cpp.o"
  "CMakeFiles/csd_detect.dir/clique_detect.cpp.o.d"
  "CMakeFiles/csd_detect.dir/clique_listing.cpp.o"
  "CMakeFiles/csd_detect.dir/clique_listing.cpp.o.d"
  "CMakeFiles/csd_detect.dir/collect.cpp.o"
  "CMakeFiles/csd_detect.dir/collect.cpp.o.d"
  "CMakeFiles/csd_detect.dir/even_cycle.cpp.o"
  "CMakeFiles/csd_detect.dir/even_cycle.cpp.o.d"
  "CMakeFiles/csd_detect.dir/pipelined_cycle.cpp.o"
  "CMakeFiles/csd_detect.dir/pipelined_cycle.cpp.o.d"
  "CMakeFiles/csd_detect.dir/tree_detect.cpp.o"
  "CMakeFiles/csd_detect.dir/tree_detect.cpp.o.d"
  "CMakeFiles/csd_detect.dir/triangle.cpp.o"
  "CMakeFiles/csd_detect.dir/triangle.cpp.o.d"
  "CMakeFiles/csd_detect.dir/triangle_tester.cpp.o"
  "CMakeFiles/csd_detect.dir/triangle_tester.cpp.o.d"
  "CMakeFiles/csd_detect.dir/weighted_cycle.cpp.o"
  "CMakeFiles/csd_detect.dir/weighted_cycle.cpp.o.d"
  "libcsd_detect.a"
  "libcsd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
