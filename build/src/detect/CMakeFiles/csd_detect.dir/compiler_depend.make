# Empty compiler generated dependencies file for csd_detect.
# This may be replaced when dependencies are built.
