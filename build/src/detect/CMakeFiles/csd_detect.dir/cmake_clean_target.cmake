file(REMOVE_RECURSE
  "libcsd_detect.a"
)
