
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/clique_detect.cpp" "src/detect/CMakeFiles/csd_detect.dir/clique_detect.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/clique_detect.cpp.o.d"
  "/root/repo/src/detect/clique_listing.cpp" "src/detect/CMakeFiles/csd_detect.dir/clique_listing.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/clique_listing.cpp.o.d"
  "/root/repo/src/detect/collect.cpp" "src/detect/CMakeFiles/csd_detect.dir/collect.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/collect.cpp.o.d"
  "/root/repo/src/detect/even_cycle.cpp" "src/detect/CMakeFiles/csd_detect.dir/even_cycle.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/even_cycle.cpp.o.d"
  "/root/repo/src/detect/pipelined_cycle.cpp" "src/detect/CMakeFiles/csd_detect.dir/pipelined_cycle.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/pipelined_cycle.cpp.o.d"
  "/root/repo/src/detect/tree_detect.cpp" "src/detect/CMakeFiles/csd_detect.dir/tree_detect.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/tree_detect.cpp.o.d"
  "/root/repo/src/detect/triangle.cpp" "src/detect/CMakeFiles/csd_detect.dir/triangle.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/triangle.cpp.o.d"
  "/root/repo/src/detect/triangle_tester.cpp" "src/detect/CMakeFiles/csd_detect.dir/triangle_tester.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/triangle_tester.cpp.o.d"
  "/root/repo/src/detect/weighted_cycle.cpp" "src/detect/CMakeFiles/csd_detect.dir/weighted_cycle.cpp.o" "gcc" "src/detect/CMakeFiles/csd_detect.dir/weighted_cycle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/csd_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/csd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
