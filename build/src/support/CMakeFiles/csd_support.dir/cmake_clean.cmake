file(REMOVE_RECURSE
  "CMakeFiles/csd_support.dir/combinatorics.cpp.o"
  "CMakeFiles/csd_support.dir/combinatorics.cpp.o.d"
  "CMakeFiles/csd_support.dir/mathutil.cpp.o"
  "CMakeFiles/csd_support.dir/mathutil.cpp.o.d"
  "CMakeFiles/csd_support.dir/rng.cpp.o"
  "CMakeFiles/csd_support.dir/rng.cpp.o.d"
  "CMakeFiles/csd_support.dir/table.cpp.o"
  "CMakeFiles/csd_support.dir/table.cpp.o.d"
  "libcsd_support.a"
  "libcsd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
