# Empty compiler generated dependencies file for csd_support.
# This may be replaced when dependencies are built.
