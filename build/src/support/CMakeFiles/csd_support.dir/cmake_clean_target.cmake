file(REMOVE_RECURSE
  "libcsd_support.a"
)
