file(REMOVE_RECURSE
  "CMakeFiles/csd_info.dir/entropy.cpp.o"
  "CMakeFiles/csd_info.dir/entropy.cpp.o.d"
  "libcsd_info.a"
  "libcsd_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
