# Empty dependencies file for csd_info.
# This may be replaced when dependencies are built.
