file(REMOVE_RECURSE
  "libcsd_info.a"
)
