file(REMOVE_RECURSE
  "CMakeFiles/csd_cli.dir/cli.cpp.o"
  "CMakeFiles/csd_cli.dir/cli.cpp.o.d"
  "libcsd_cli.a"
  "libcsd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
