file(REMOVE_RECURSE
  "libcsd_cli.a"
)
