# Empty compiler generated dependencies file for csd_cli.
# This may be replaced when dependencies are built.
