file(REMOVE_RECURSE
  "CMakeFiles/csd.dir/main.cpp.o"
  "CMakeFiles/csd.dir/main.cpp.o.d"
  "csd"
  "csd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
