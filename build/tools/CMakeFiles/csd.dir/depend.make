# Empty dependencies file for csd.
# This may be replaced when dependencies are built.
