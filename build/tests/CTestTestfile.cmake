# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_congest[1]_include.cmake")
include("/root/repo/build/tests/test_detect_cycles[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound_gkn[1]_include.cmake")
include("/root/repo/build/tests/test_detect_subgraphs[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound_variants[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_async[1]_include.cmake")
include("/root/repo/build/tests/test_io_cli[1]_include.cmake")
include("/root/repo/build/tests/test_simulator_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_clique_router[1]_include.cmake")
include("/root/repo/build/tests/test_weighted_cycle[1]_include.cmake")
