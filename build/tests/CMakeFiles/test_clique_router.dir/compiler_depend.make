# Empty compiler generated dependencies file for test_clique_router.
# This may be replaced when dependencies are built.
