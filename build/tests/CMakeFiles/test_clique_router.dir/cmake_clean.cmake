file(REMOVE_RECURSE
  "CMakeFiles/test_clique_router.dir/test_clique_router.cpp.o"
  "CMakeFiles/test_clique_router.dir/test_clique_router.cpp.o.d"
  "test_clique_router"
  "test_clique_router.pdb"
  "test_clique_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
