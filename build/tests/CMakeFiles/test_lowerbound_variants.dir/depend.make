# Empty dependencies file for test_lowerbound_variants.
# This may be replaced when dependencies are built.
