file(REMOVE_RECURSE
  "CMakeFiles/test_lowerbound_variants.dir/test_lowerbound_variants.cpp.o"
  "CMakeFiles/test_lowerbound_variants.dir/test_lowerbound_variants.cpp.o.d"
  "test_lowerbound_variants"
  "test_lowerbound_variants.pdb"
  "test_lowerbound_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowerbound_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
