# Empty compiler generated dependencies file for test_detect_subgraphs.
# This may be replaced when dependencies are built.
