file(REMOVE_RECURSE
  "CMakeFiles/test_detect_subgraphs.dir/test_detect_subgraphs.cpp.o"
  "CMakeFiles/test_detect_subgraphs.dir/test_detect_subgraphs.cpp.o.d"
  "test_detect_subgraphs"
  "test_detect_subgraphs.pdb"
  "test_detect_subgraphs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_subgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
