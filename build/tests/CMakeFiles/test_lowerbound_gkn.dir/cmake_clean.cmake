file(REMOVE_RECURSE
  "CMakeFiles/test_lowerbound_gkn.dir/test_lowerbound_gkn.cpp.o"
  "CMakeFiles/test_lowerbound_gkn.dir/test_lowerbound_gkn.cpp.o.d"
  "test_lowerbound_gkn"
  "test_lowerbound_gkn.pdb"
  "test_lowerbound_gkn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowerbound_gkn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
