# Empty compiler generated dependencies file for test_lowerbound_gkn.
# This may be replaced when dependencies are built.
