file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_fuzz.dir/test_simulator_fuzz.cpp.o"
  "CMakeFiles/test_simulator_fuzz.dir/test_simulator_fuzz.cpp.o.d"
  "test_simulator_fuzz"
  "test_simulator_fuzz.pdb"
  "test_simulator_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
