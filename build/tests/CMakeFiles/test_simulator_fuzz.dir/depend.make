# Empty dependencies file for test_simulator_fuzz.
# This may be replaced when dependencies are built.
