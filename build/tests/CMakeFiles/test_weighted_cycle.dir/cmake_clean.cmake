file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_cycle.dir/test_weighted_cycle.cpp.o"
  "CMakeFiles/test_weighted_cycle.dir/test_weighted_cycle.cpp.o.d"
  "test_weighted_cycle"
  "test_weighted_cycle.pdb"
  "test_weighted_cycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
