# Empty dependencies file for test_weighted_cycle.
# This may be replaced when dependencies are built.
