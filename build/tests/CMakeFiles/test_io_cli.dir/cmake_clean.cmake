file(REMOVE_RECURSE
  "CMakeFiles/test_io_cli.dir/test_io_cli.cpp.o"
  "CMakeFiles/test_io_cli.dir/test_io_cli.cpp.o.d"
  "test_io_cli"
  "test_io_cli.pdb"
  "test_io_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
