# Empty dependencies file for test_io_cli.
# This may be replaced when dependencies are built.
