file(REMOVE_RECURSE
  "CMakeFiles/test_lowerbound_experiments.dir/test_lowerbound_experiments.cpp.o"
  "CMakeFiles/test_lowerbound_experiments.dir/test_lowerbound_experiments.cpp.o.d"
  "test_lowerbound_experiments"
  "test_lowerbound_experiments.pdb"
  "test_lowerbound_experiments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowerbound_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
