# Empty dependencies file for test_detect_cycles.
# This may be replaced when dependencies are built.
