file(REMOVE_RECURSE
  "CMakeFiles/test_detect_cycles.dir/test_detect_cycles.cpp.o"
  "CMakeFiles/test_detect_cycles.dir/test_detect_cycles.cpp.o.d"
  "test_detect_cycles"
  "test_detect_cycles.pdb"
  "test_detect_cycles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
