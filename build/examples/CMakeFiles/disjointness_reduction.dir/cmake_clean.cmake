file(REMOVE_RECURSE
  "CMakeFiles/disjointness_reduction.dir/disjointness_reduction.cpp.o"
  "CMakeFiles/disjointness_reduction.dir/disjointness_reduction.cpp.o.d"
  "disjointness_reduction"
  "disjointness_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjointness_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
