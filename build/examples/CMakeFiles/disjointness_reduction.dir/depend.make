# Empty dependencies file for disjointness_reduction.
# This may be replaced when dependencies are built.
