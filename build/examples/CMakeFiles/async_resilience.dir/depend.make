# Empty dependencies file for async_resilience.
# This may be replaced when dependencies are built.
