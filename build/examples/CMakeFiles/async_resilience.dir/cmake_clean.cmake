file(REMOVE_RECURSE
  "CMakeFiles/async_resilience.dir/async_resilience.cpp.o"
  "CMakeFiles/async_resilience.dir/async_resilience.cpp.o.d"
  "async_resilience"
  "async_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
