file(REMOVE_RECURSE
  "CMakeFiles/triangle_bandwidth.dir/triangle_bandwidth.cpp.o"
  "CMakeFiles/triangle_bandwidth.dir/triangle_bandwidth.cpp.o.d"
  "triangle_bandwidth"
  "triangle_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
