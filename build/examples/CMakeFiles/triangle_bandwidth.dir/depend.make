# Empty dependencies file for triangle_bandwidth.
# This may be replaced when dependencies are built.
