file(REMOVE_RECURSE
  "CMakeFiles/cycle_census.dir/cycle_census.cpp.o"
  "CMakeFiles/cycle_census.dir/cycle_census.cpp.o.d"
  "cycle_census"
  "cycle_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
