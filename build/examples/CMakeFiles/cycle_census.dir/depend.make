# Empty dependencies file for cycle_census.
# This may be replaced when dependencies are built.
