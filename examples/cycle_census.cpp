// Cycle census: run every cycle detector in the library over a zoo of
// graphs and print a verdict matrix, cross-checked against the oracle.
//
// Demonstrates: detect_cycle_pipelined (any C_L, linear rounds),
// detect_even_cycle (C_4/C_6, sublinear rounds), tree/clique detection on
// the same hosts, and the cost metrics exposed by the simulator.
#include <iostream>

#include "detect/clique_detect.hpp"
#include "detect/collect.hpp"
#include "detect/triangle_tester.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/tree_detect.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace csd;
  Rng rng(2718);

  struct Host {
    std::string name;
    Graph g;
  };
  std::vector<Host> hosts;
  hosts.push_back({"C_12", build::cycle(12)});
  hosts.push_back({"Petersen", build::petersen()});
  hosts.push_back({"grid 5x5", build::grid(5, 5)});
  hosts.push_back({"K_7", build::complete(7)});
  hosts.push_back({"K_{4,4}", build::complete_bipartite(4, 4)});
  hosts.push_back({"tree(64)", build::random_tree(64, rng)});
  hosts.push_back({"G(40,.12)", build::gnp(40, 0.12, rng)});
  hosts.push_back({"polarity ER_5", build::polarity_graph(5)});
  hosts.push_back({"GQ(4,3)", build::generalized_quadrangle_incidence(3)});

  print_banner(std::cout, "Cycle & clique census",
               "distributed verdict / oracle truth per cell; "
               "rounds are per repetition");

  Table table({"host", "n", "m", "C4 (Thm1.1)", "C6 (Thm1.1)", "C5 (baseline)",
               "K3 (exchange)", "K3 (tester)", "K4 (exchange)",
               "star4 (tree cc)", "Petersen (LOCAL)"});
  for (const auto& host : hosts) {
    const auto verdict = [](bool algo, bool truth) {
      return std::string(algo ? "yes" : "no") + "/" + (truth ? "yes" : "no");
    };

    detect::EvenCycleConfig c4;
    c4.k = 2;
    c4.repetitions = 600;
    detect::EvenCycleConfig c6;
    c6.k = 3;
    c6.repetitions = 600;
    detect::PipelinedCycleConfig c5;
    c5.length = 5;
    c5.repetitions = 600;
    detect::TreeDetectConfig star;
    star.tree = build::star(4);
    star.repetitions = 400;
    detect::TriangleTesterConfig tester;
    tester.query_rounds = 64;

    table.row()
        .cell(host.name)
        .cell(std::uint64_t{host.g.num_vertices()})
        .cell(host.g.num_edges())
        .cell(verdict(detect::detect_even_cycle(host.g, c4, 64, 1).detected,
                      oracle::has_cycle_of_length(host.g, 4)))
        .cell(verdict(detect::detect_even_cycle(host.g, c6, 64, 2).detected,
                      oracle::has_cycle_of_length(host.g, 6)))
        .cell(verdict(
            detect::detect_cycle_pipelined(host.g, c5, 64, 3).detected,
            oracle::has_cycle_of_length(host.g, 5)))
        .cell(verdict(detect::detect_clique(host.g, 3, 64, 4).detected,
                      oracle::has_clique(host.g, 3)))
        .cell(verdict(
            detect::test_triangle_freeness(host.g, tester, 64, 7).detected,
            oracle::has_clique(host.g, 3)))
        .cell(verdict(detect::detect_clique(host.g, 4, 64, 5).detected,
                      oracle::has_clique(host.g, 4)))
        .cell(verdict(detect::detect_tree(host.g, star, 64, 6).detected,
                      oracle::has_tree(host.g, star.tree)))
        .cell(verdict(
            detect::detect_subgraph_local(host.g, build::petersen()).detected,
            contains_subgraph(host.g, build::petersen())));
  }
  table.print(std::cout);
  std::cout << "\nEach cell is algorithm/oracle; the sides should agree (the\n"
               "randomized detectors are one-sided and amplified, so a rare\n"
               "'no/yes' is a missed detection, never a false alarm; the\n"
               "property tester is *expected* to miss sparse triangles).\n";
  return 0;
}
