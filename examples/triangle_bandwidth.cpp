// The two triangle lower bounds of the paper, live:
//
//   1. §4 (Theorem 4.1): a deterministic triangle-vs-hexagon distinguisher
//      that sends too few identifier bits is fooled by an adversarial
//      identifier assignment — found automatically by the transcript
//      adversary.
//   2. §5 (Theorem 5.1): a one-round randomized detector on the template
//      graph needs bandwidth proportional to its degree; we sweep B and
//      watch the error collapse at B ~ n.
#include <iostream>

#include "detect/triangle.hpp"
#include "lowerbound/fooling.hpp"
#include "lowerbound/oneround.hpp"
#include "support/mathutil.hpp"

int main() {
  using namespace csd;

  std::cout << "== Part 1: fooling a deterministic algorithm (Thm 4.1) ==\n";
  const std::uint64_t N = 48;  // namespace size
  for (const std::uint32_t c : {2u, static_cast<std::uint32_t>(
                                        ceil_log2(N / 3))}) {
    lb::FoolingConfig cfg;
    cfg.namespace_size = N;
    cfg.algorithm = detect::id_exchange_triangle_program(c);
    cfg.bandwidth = 64;
    cfg.max_rounds = 8;
    const auto report = lb::run_fooling_adversary(cfg);
    std::cout << "\n  c = " << c << " id bits (" << 4 * c
              << " bits/node total):\n"
              << "    " << report.executions << " triangle runs, "
              << report.distinct_transcripts << " transcripts, largest class "
              << report.largest_class << '\n';
    if (report.box_found) {
      std::cout << "    box found -> hexagon ids:";
      for (const auto id : report.hexagon) std::cout << ' ' << id;
      std::cout << "\n    Claim 4.4 transcripts match: "
                << (report.transcripts_match ? "yes" : "no")
                << "; algorithm fooled on the hexagon: "
                << (report.hexagon_fooled ? "YES (rejects a C_6!)" : "no")
                << '\n';
    } else {
      std::cout << "    no K^(3)(2) box exists — every class is too small; "
                   "the adversary fails (c is at the Theta(log N) "
                   "threshold)\n";
    }
  }

  std::cout << "\n== Part 2: one-round bandwidth threshold (Thm 5.1) ==\n";
  const auto protocol = lb::make_bloom_protocol(7);
  const std::uint64_t n = 48;
  std::cout << "  template graph with n = " << n
            << " spokes per special node; trivial error = 1/8\n";
  for (const std::uint64_t b : {4u, 16u, 48u, 192u, 768u}) {
    const auto stats = lb::evaluate_one_round(*protocol, n, b, 20000, 3);
    std::cout << "  B = " << b << " bits (B/n = "
              << static_cast<double>(b) / static_cast<double>(n)
              << "): error = " << stats.error
              << ", I(X_bc; accept_a) = " << stats.info_accept << '\n';
  }
  std::cout << "\nBelow B ~ n the sketch cannot say whether the hidden edge\n"
               "{v_b, v_c} exists and the error hugs 1/8; past B ~ n it\n"
               "collapses — the Omega(Delta) bandwidth wall of Theorem 5.1.\n";
  return 0;
}
