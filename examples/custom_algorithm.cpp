// How to write your own CONGEST algorithm against this library's API — a
// fully commented walkthrough implementing a small but real protocol:
// distributed *maximum degree* computation (every node learns Δ(G)) by
// flooding the running maximum, then using it to size a neighborhood
// exchange that counts each node's triangles.
//
// This demonstrates the complete NodeProgram surface:
//   * per-round structure (inbox → state update → sends → halt),
//   * bit-exact messages via the wire codec,
//   * the bandwidth contract,
//   * verdicts and metrics.
#include <algorithm>
#include <iostream>

#include "congest/network.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace {

using namespace csd;

/// Phase 1 of the walkthrough: every node learns the maximum degree.
///
/// Protocol: each node keeps a running maximum, initially its own degree,
/// and re-broadcasts whenever the maximum improves. A standard flooding
/// argument shows the true maximum reaches everyone within diameter rounds;
/// since nodes know n (the standard CONGEST assumption) they can simply run
/// n rounds and stop.
class MaxDegreeProgram final : public congest::NodeProgram {
 public:
  explicit MaxDegreeProgram(std::uint32_t* result_slot)
      : result_slot_(result_slot) {}

  void on_round(congest::NodeApi& api) override {
    // Degrees are < n, so a degree field needs ⌈log2 n⌉ bits. Check the
    // bandwidth contract once — the Network would throw on oversized sends.
    const unsigned degree_bits = wire::bits_for(api.network_size());
    CSD_CHECK(api.bandwidth() == 0 || api.bandwidth() >= degree_bits);

    bool improved = false;
    if (api.round() == 0) {
      best_ = api.degree();
      improved = true;  // announce the initial claim
    } else {
      // The inbox holds at most one message per port, sent last round.
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader r(*msg);
        const auto heard = static_cast<std::uint32_t>(r.u(degree_bits));
        if (heard > best_) {
          best_ = heard;
          improved = true;
        }
      }
    }

    if (improved) {
      wire::Writer w;
      w.u(best_, degree_bits);
      api.broadcast(std::move(w).take());  // same payload on every port
    }

    // n rounds always suffice (diameter < n); then expose the answer and
    // stop. A detection algorithm would call api.reject() here instead.
    if (api.round() + 1 >= api.network_size()) {
      *result_slot_ = best_;
      api.halt();
    }
  }

 private:
  std::uint32_t* result_slot_;
  std::uint32_t best_ = 0;
};

}  // namespace

int main() {
  Rng rng(11);
  Graph g = build::random_tree(120, rng);
  build::plant_subgraph(g, build::star(9), rng);  // hide a degree spike

  std::cout << "Custom-algorithm walkthrough: distributed max degree\n"
            << "host: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, true max degree " << g.max_degree() << "\n\n";

  std::vector<std::uint32_t> learned(g.num_vertices(), 0);
  congest::NetworkConfig cfg;
  cfg.bandwidth = 16;  // plenty for one ⌈log2 n⌉-bit field
  cfg.max_rounds = g.num_vertices() + 1;
  const auto outcome = congest::run_congest(g, cfg, [&](std::uint32_t v) {
    return std::make_unique<MaxDegreeProgram>(&learned[v]);
  });

  const bool all_correct =
      std::all_of(learned.begin(), learned.end(),
                  [&](std::uint32_t d) { return d == g.max_degree(); });
  std::cout << "run completed: " << (outcome.completed ? "yes" : "no") << '\n'
            << "every node learned Delta: " << (all_correct ? "yes" : "NO")
            << '\n'
            << "rounds: " << outcome.metrics.rounds << " (cap was n = "
            << g.num_vertices() << ")\n"
            << "total bits on wires: " << outcome.metrics.total_bits << '\n'
            << "messages: " << outcome.metrics.messages << '\n';
  std::cout << "\nThat is the whole API: subclass congest::NodeProgram,\n"
            << "read the inbox, write bit-exact messages, halt. Everything\n"
            << "else in this library (Theorem 1.1's detector included) is\n"
            << "built from exactly these pieces.\n";
  return all_correct && outcome.completed ? 0 : 1;
}
