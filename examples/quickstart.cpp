// Quickstart: build a graph, run the paper's sublinear C_4 detector on the
// CONGEST simulator, and compare with the exhaustive oracle.
//
//   $ ./quickstart
//
// Walks through the three core objects of the library:
//   1. csd::Graph           — the topology,
//   2. csd::congest::*      — the simulator and its cost accounting,
//   3. csd::detect::*       — the paper's detection algorithms.
#include <iostream>

#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/rng.hpp"

int main() {
  using namespace csd;

  // 1. A 1000-vertex forest with one planted 4-cycle.
  Rng rng(/*seed=*/7);
  Graph g = build::random_tree(1000, rng);
  const auto planted = build::plant_subgraph(g, build::cycle(4), rng);
  std::cout << "Host graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges; C_4 planted on vertices";
  for (const Vertex v : planted) std::cout << ' ' << v;
  std::cout << "\nGround truth (exhaustive oracle): "
            << (oracle::has_cycle_of_length(g, 4) ? "contains C_4"
                                                  : "C_4-free")
            << "\n\n";

  // 2. The Theorem 1.1 detector: O(n^{1/2}) rounds per repetition for C_4,
  //    Θ(log n)-bit messages, one-sided error amplified by repetitions.
  detect::EvenCycleConfig cfg;
  cfg.k = 2;            // detect C_{2k} = C_4
  cfg.c_num = 1;        // Turán constant: ex(n, C_4) <= n^{3/2} suffices
  cfg.repetitions = 150;
  const std::uint64_t bandwidth = 32;  // bits per edge per round
  const auto outcome = detect::detect_even_cycle(g, cfg, bandwidth, /*seed=*/1);

  std::cout << "Even-cycle detector (Thm 1.1): "
            << (outcome.detected ? "REJECT (C_4 found)" : "accept") << '\n'
            << "  rounds (all repetitions): " << outcome.metrics.rounds << '\n'
            << "  rounds per repetition:    "
            << outcome.metrics.rounds / cfg.repetitions << '\n'
            << "  total bits on wires:      " << outcome.metrics.total_bits
            << "\n\n";

  // 3. The linear-round folklore baseline needs ~n rounds per repetition.
  detect::PipelinedCycleConfig base_cfg;
  base_cfg.length = 4;
  base_cfg.repetitions = 150;
  const auto baseline = detect::detect_cycle_pipelined(g, base_cfg, bandwidth,
                                                       /*seed=*/1);
  std::cout << "Pipelined baseline:  "
            << (baseline.detected ? "REJECT (C_4 found)" : "accept")
            << ", rounds per repetition: "
            << baseline.metrics.rounds / base_cfg.repetitions << '\n';
  const auto fast = outcome.metrics.rounds / cfg.repetitions;
  const auto slow = baseline.metrics.rounds / base_cfg.repetitions;
  std::cout << "\nThe sublinear detector spends " << fast
            << " rounds per repetition vs the baseline's " << slow << " — a "
            << (fast < slow ? static_cast<double>(slow) /
                                  static_cast<double>(fast)
                            : 0.0)
            << "x speedup at n = 1000, and the gap widens as n^{1/2} vs n.\n";
  return 0;
}
