// Walkthrough of the Theorem 1.2 reduction: encode a set-disjointness
// instance as a graph G_{X,Y}, simulate an H_k-detection algorithm across
// the Alice/Bob cut, and read the answer off the verdict — paying only
// cut-crossing bits.
//
// This is the paper's superlinear-lower-bound machinery running for real.
#include <iostream>

#include "comm/disjointness.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/reduction.hpp"
#include "support/rng.hpp"

int main() {
  using namespace csd;
  const std::uint32_t k = 2, n = 8;
  Rng rng(1234);

  std::cout << "Theorem 1.2 reduction demo (k = " << k << ", n = " << n
            << ", universe [n]^2 = " << n * n << ")\n\n";

  for (const bool intersecting : {true, false}) {
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.12, intersecting, rng);
    std::cout << "Instance with |X| = " << inst.x.size()
              << ", |Y| = " << inst.y.size() << ", X cap Y "
              << (inst.intersects() ? "!=" : "==") << " empty:\n";
    if (inst.intersects()) {
      const auto common = inst.intersection();
      const auto [i, j] = comm::element_to_pair(common.front(), n);
      std::cout << "  shared pair (i,j) = (" << i << "," << j
                << ") -> both the A-edge and B-edge between top-" << i
                << " and bottom-" << j << " exist, closing a copy of H_k\n";
    }

    const auto report = lb::run_reduction(k, n, inst, /*bandwidth=*/32,
                                          /*seed=*/5);
    std::cout << "  G_{X,Y}: " << report.graph_size
              << " vertices, simulation cut " << report.cut_edges
              << " edges\n"
              << "  simulated algorithm: "
              << (report.detected ? "REJECT (H_k found)" : "accept")
              << " after " << report.rounds << " rounds\n"
              << "  bits Alice<->Bob: " << report.crossing_bits
              << " (max/round " << report.max_crossing_bits_per_round << ")\n"
              << "  correct: "
              << (report.detected == inst.intersects() ? "yes" : "NO")
              << "\n\n";
  }

  std::cout
      << "Because disjointness on [n]^2 needs Omega(n^2) bits and one round\n"
         "moves at most cut*B = O(k n^{1/k} B) bits across, ANY CONGEST\n"
         "algorithm for H_k-freeness needs Omega(n^{2-1/k}/(Bk)) rounds —\n"
         "superlinear, on a diameter-3 graph (Theorem 1.2).\n";
  return 0;
}
