// Why the synchronous CONGEST abstraction is safe: run the Theorem 1.1
// detector over the event-driven asynchronous engine under increasingly
// hostile message jitter, and watch the outcome stay bit-for-bit identical
// to the synchronous run — only the virtual completion time stretches.
#include <iostream>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "detect/even_cycle.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace csd;

  Rng rng(5);
  Graph g = build::random_tree(120, rng);
  build::plant_subgraph(g, build::cycle(4), rng);

  detect::EvenCycleConfig cfg;
  cfg.k = 2;
  const std::uint64_t seed = 17, bandwidth = 64;
  const auto rounds =
      detect::make_even_cycle_schedule(g.num_vertices(), cfg).total_rounds();

  congest::NetworkConfig sync_cfg;
  sync_cfg.bandwidth = bandwidth;
  sync_cfg.seed = seed;
  sync_cfg.max_rounds = rounds + 1;
  const auto sync_outcome =
      congest::run_congest(g, sync_cfg, detect::even_cycle_program(cfg));
  std::cout << "Synchronous run: "
            << (sync_outcome.detected ? "REJECT" : "accept") << ", "
            << sync_outcome.metrics.rounds << " rounds, "
            << sync_outcome.metrics.total_bits << " payload bits\n\n";

  print_banner(std::cout,
               "Same algorithm, asynchronous network + frame synchronizer",
               "per-link delays drawn uniformly from [1, max_delay]");
  Table table({"max delay", "identical verdicts", "identical payload bits",
               "pulses", "virtual completion time", "sync overhead bits"});
  for (const std::uint32_t delay : {1u, 4u, 16u, 64u, 256u}) {
    congest::AsyncConfig async_cfg;
    async_cfg.bandwidth = bandwidth;
    async_cfg.seed = seed;
    async_cfg.max_pulses = rounds + 1;
    async_cfg.max_delay = delay;
    const auto outcome =
        congest::run_async(g, async_cfg, detect::even_cycle_program(cfg));
    table.row()
        .cell(delay)
        .cell(outcome.verdicts == sync_outcome.verdicts)
        .cell(outcome.payload_bits == sync_outcome.metrics.total_bits)
        .cell(outcome.pulses)
        .cell(outcome.virtual_time)
        .cell(outcome.overhead_bits);
  }
  table.print(std::cout);
  std::cout
      << "\nThe verdict, every node's local decision, and every payload bit\n"
         "are independent of timing; only virtual time scales with jitter.\n"
         "That determinism is what lets the paper reason synchronously.\n";
  return 0;
}
