// LIST — §1.1: K_s listing in the Congested Clique.
//
// The paper extends the Ω̃(n^{1/3}) triangle-listing lower bound to
// Ω̃(n^{1-2/s}) for K_s. We pair it with the matching deterministic upper
// bound (DLP-style routing, detect/clique_listing) and measure:
//   * measured rounds vs n on dense inputs, with the fitted growth
//     exponent against 1 - 2/s;
//   * completeness: the distributed listing equals the exhaustive oracle.
#include <cmath>
#include <vector>
#include <iostream>

#include "bench_common.hpp"
#include "detect/clique_listing.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("list_cliques", argc, argv);

  print_banner(std::cout,
               "LIST: congested-clique K_s listing rounds vs n (dense input)",
               "theory: Theta(n^{1-2/s}) rounds; lower bound from Lemma 1.3");

  for (const std::uint32_t s : {3u, 4u}) {
    bench::ReportedTable table(ctx, "s" + std::to_string(s),
                               {"n", "groups", "oracle count", "listed",
                                "complete", "rounds", "fitted exp",
                                "theory exp"});
    const double theory = 1.0 - 2.0 / s;
    double prev_rounds = 0, prev_n = 0;
    Rng rng(1000 + s);
    ctx.seed(1000 + s);
    std::vector<Vertex> sizes =
        s == 3 ? std::vector<Vertex>{16, 32, 64, 128, 256}
               : std::vector<Vertex>{16, 32, 64, 128};
    if (ctx.smoke()) sizes.resize(s == 3 ? 3 : 2);
    for (const Vertex n : sizes) {
      const Graph g = build::gnp(n, 0.5, rng);
      detect::CliqueListingResult result;
      const auto outcome =
          detect::list_cliques_congested_clique(g, s, 64, &result);
      const auto expected = oracle::list_cliques(g, s);
      const bool complete = result.all_sorted() == expected &&
                            result.total() == expected.size();
      std::string fitted = "-";
      if (prev_n > 0) {
        char buf[32];
        std::snprintf(
            buf, sizeof buf, "%.3f",
            std::log(static_cast<double>(outcome.metrics.rounds) /
                     prev_rounds) /
                std::log(static_cast<double>(n) / prev_n));
        fitted = buf;
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(std::uint64_t{detect::clique_listing_groups(n, s)})
          .cell(static_cast<std::uint64_t>(expected.size()))
          .cell(result.total())
          .cell(complete)
          .cell(outcome.metrics.rounds)
          .cell(fitted)
          .cell(theory, 3);
      prev_rounds = static_cast<double>(outcome.metrics.rounds);
      prev_n = static_cast<double>(n);
    }
    std::cout << "\n-- s = " << s << " --\n";
    table.print(std::cout);
  }
  std::cout
      << "\nExpected: 'complete' everywhere (every K_s listed exactly once\n"
         "across owners); the fitted exponent trends toward 1 - 2/s as n\n"
         "grows (group-count rounding dominates at small n).\n";
  return ctx.finish(std::cout);
}
