// MICRO — google-benchmark microbenchmarks of the substrate: simulator
// round throughput, wire codec, bit vectors, the subgraph oracles, and the
// lower-bound constructions. These guard the cost model of every other
// bench (a slow simulator would bound experiment sizes, not the theory).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "congest/async.hpp"
#include "congest/clique_router.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "detect/clique_detect.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "graph/vf2.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/hk.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace {

using namespace csd;

/// Broadcast-one-bit-per-round program used to measure raw round cost.
class PingProgram final : public congest::NodeProgram {
 public:
  explicit PingProgram(std::uint64_t rounds) : rounds_(rounds) {}
  void on_round(congest::NodeApi& api) override {
    BitVec bit(1, true);
    api.broadcast(bit);
    if (api.round() + 1 >= rounds_) api.halt();
  }

 private:
  std::uint64_t rounds_;
};

void BM_SimulatorRounds(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = build::cycle(n);
  congest::NetworkConfig cfg;
  cfg.bandwidth = 8;
  for (auto _ : state) {
    auto outcome = congest::run_congest(g, cfg, [](std::uint32_t) {
      return std::make_unique<PingProgram>(32);
    });
    benchmark::DoNotOptimize(outcome.metrics.total_bits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          32);
}
BENCHMARK(BM_SimulatorRounds)->Arg(64)->Arg(512)->Arg(4096);

void BM_WireVarintRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    wire::Writer w;
    for (std::uint64_t v = 1; v < 1u << 20; v <<= 1) w.varint(v * 0x9e37);
    wire::Reader r(w.bits());
    std::uint64_t sum = 0;
    while (!r.at_end()) sum += r.varint();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_WireVarintRoundTrip);

void BM_BitVecIntersect(benchmark::State& state) {
  Rng rng(1);
  BitVec a(4096), b(4096);
  for (int i = 0; i < 1024; ++i) {
    a.set(rng.below(4096));
    b.set(rng.below(4096));
  }
  for (auto _ : state) {
    BitVec c = a;
    c &= b;
    benchmark::DoNotOptimize(c.count());
  }
}
BENCHMARK(BM_BitVecIntersect);

void BM_BitVecIntersectCount(benchmark::State& state) {
  // The allocation-free counterpart of BM_BitVecIntersect: the word-parallel
  // primitive the detection hot paths (IdSet::intersects, clique bit-rows)
  // actually call.
  Rng rng(1);
  BitVec a(4096), b(4096);
  for (int i = 0; i < 1024; ++i) {
    a.set(rng.below(4096));
    b.set(rng.below(4096));
  }
  for (auto _ : state) benchmark::DoNotOptimize(intersect_count(a, b));
}
BENCHMARK(BM_BitVecIntersectCount);

void BM_BitVecForEachSet(benchmark::State& state) {
  Rng rng(1);
  BitVec a(4096);
  for (int i = 0; i < 256; ++i) a.set(rng.below(4096));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for_each_set(a, [&](std::size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitVecForEachSet);

void BM_OracleCycleSearch(benchmark::State& state) {
  Rng rng(2);
  const Graph g = build::gnm(static_cast<Vertex>(state.range(0)),
                             static_cast<std::uint64_t>(state.range(0)) * 3,
                             rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle::has_cycle_of_length(g, 6));
}
BENCHMARK(BM_OracleCycleSearch)->Arg(64)->Arg(256);

void BM_Vf2PlantedPetersen(benchmark::State& state) {
  Rng rng(3);
  Graph host = build::gnp(60, 0.05, rng);
  build::plant_subgraph(host, build::petersen(), rng);
  const Graph pattern = build::petersen();
  for (auto _ : state)
    benchmark::DoNotOptimize(contains_subgraph(host, pattern));
}
BENCHMARK(BM_Vf2PlantedPetersen);

void BM_Vf2HkIntoGxy(benchmark::State& state) {
  Rng rng(4);
  const auto inst = comm::random_disjointness(9, 0.3, true, rng);
  const auto gxy = lb::build_gxy(1, 3, inst);
  const auto hk = lb::build_hk(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(contains_subgraph(gxy.graph, hk.graph));
}
BENCHMARK(BM_Vf2HkIntoGxy);

void BM_BuildGknFrame(benchmark::State& state) {
  for (auto _ : state) {
    const auto g = lb::build_gkn_frame(2, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(g.graph.num_edges());
  }
}
BENCHMARK(BM_BuildGknFrame)->Arg(64)->Arg(512);

void BM_EvenCycleRepetition(benchmark::State& state) {
  Rng rng(5);
  Graph g = build::random_tree(static_cast<Vertex>(state.range(0)), rng);
  build::plant_subgraph(g, build::cycle(4), rng);
  detect::EvenCycleConfig cfg;
  cfg.k = 2;
  cfg.c_num = 1;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto outcome = detect::detect_even_cycle(g, cfg, 64, ++seed);
    benchmark::DoNotOptimize(outcome.detected);
  }
}
BENCHMARK(BM_EvenCycleRepetition)->Arg(128)->Arg(512);

void BM_CliqueDetectTriangle(benchmark::State& state) {
  Rng rng(6);
  const Graph g = build::gnp(static_cast<Vertex>(state.range(0)), 0.1, rng);
  for (auto _ : state) {
    auto outcome = detect::detect_clique(g, 3, 32, 1);
    benchmark::DoNotOptimize(outcome.detected);
  }
}
BENCHMARK(BM_CliqueDetectTriangle)->Arg(64)->Arg(256);

void BM_AsyncSynchronizerOverhead(benchmark::State& state) {
  const Graph g = build::cycle(static_cast<Vertex>(state.range(0)));
  congest::AsyncConfig cfg;
  cfg.bandwidth = 8;
  cfg.max_delay = 4;
  for (auto _ : state) {
    auto outcome = congest::run_async(g, cfg, [](std::uint32_t) {
      return std::make_unique<PingProgram>(32);
    });
    benchmark::DoNotOptimize(outcome.payload_bits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 32);
}
BENCHMARK(BM_AsyncSynchronizerOverhead)->Arg(64)->Arg(512);

void BM_CliqueRouterThroughput(benchmark::State& state) {
  Rng rng(11);
  congest::CliqueRouteRequest request;
  request.num_nodes = static_cast<Vertex>(state.range(0));
  request.payload_bits = 16;
  for (int i = 0; i < 2000; ++i)
    request.messages.push_back(
        {static_cast<Vertex>(rng.below(request.num_nodes)),
         static_cast<Vertex>(rng.below(request.num_nodes)),
         [&] {
           BitVec payload;
           payload.append_bits(rng.below(1u << 16), 16);
           return payload;
         }()});
  for (auto _ : state) {
    auto result = congest::route_in_clique(request);
    benchmark::DoNotOptimize(result.rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
}
BENCHMARK(BM_CliqueRouterThroughput)->Arg(16)->Arg(64);

void BM_BfsAggregate(benchmark::State& state) {
  Rng rng(12);
  Graph g = build::random_tree(static_cast<Vertex>(state.range(0)), rng);
  congest::BfsAggregateConfig cfg;
  cfg.contribution = [](std::uint32_t) { return 1; };
  for (auto _ : state) {
    auto result = congest::run_bfs_aggregate(g, cfg, 64, 1);
    benchmark::DoNotOptimize(result.aggregate[0]);
  }
}
BENCHMARK(BM_BfsAggregate)->Arg(64)->Arg(256);

/// Console reporter that additionally mirrors every finished run into the
/// shared bench report. All values are wall-clock (`_ns` keys), so the
/// regression gate applies its timing tolerance, never exact equality.
class ReportingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(bench::BenchContext& ctx) : ctx_(ctx) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      auto& m = ctx_.report().measurement(run.benchmark_name());
      m.value("real_time_ns", run.GetAdjustedRealTime());
      m.value("cpu_time_ns", run.GetAdjustedCPUTime());
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::BenchContext& ctx_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("micro", argc, argv);
  // Strip the harness flags; benchmark::Initialize rejects unknown ones.
  std::vector<char*> bm_argv;
  std::string min_time = "--benchmark_min_time=0.01";  // 1.7.x: seconds
  bm_argv.push_back(argv[0]);
  if (ctx.smoke()) bm_argv.push_back(min_time.data());
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") continue;
    if (arg == "--json" || arg == "--jobs") {
      ++i;  // skip the value
      continue;
    }
    bm_argv.push_back(argv[i]);
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());
  ReportingReporter reporter(ctx);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return ctx.finish(std::cout);
}
