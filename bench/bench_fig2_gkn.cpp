// FIG2 — Figure 2 / Definition 2: the lower-bound family G_{k,n}.
//
// Reproduces the construction's quantitative claims:
//   * Property 1: every member has diameter 3 and Θ(n) vertices;
//   * the simulation cut is 6m + O(1) edges, m = k⌈n^{1/k}⌉ — the
//     Θ(k n^{1/k}) that drives the Ω(n^{2-1/k}/(Bk)) bound;
//   * Lemma 3.1: a copy of H_k exists iff X ∩ Y ≠ ∅, cross-checked with
//     the VF2 subgraph-isomorphism oracle at small sizes.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "comm/disjointness.hpp"
#include "graph/algorithms.hpp"
#include "graph/vf2.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/hk.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("fig2_gkn", argc, argv);

  print_banner(std::cout, "FIG2: the family G_{k,n} (Definition 2)",
               "Property 1, cut size, Lemma 3.1");

  const std::vector<std::uint32_t> shape_sizes =
      ctx.smoke() ? std::vector<std::uint32_t>{4, 16, 64}
                  : std::vector<std::uint32_t>{4, 16, 64, 256};
  bench::ReportedTable shape(ctx, "shape",
                             {"k", "n", "m=k*ceil(n^(1/k))", "vertices",
                              "edges", "diameter", "cut edges", "cut - 6m"});
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    for (const std::uint32_t n : shape_sizes) {
      const auto g = lb::build_gkn_frame(k, n);
      const auto owner = lb::gkn_ownership(g.layout);
      std::uint64_t cut = 0;
      for (const auto& [u, v] : g.graph.edges()) {
        const bool priv_u = owner[u] != comm::Owner::Shared;
        const bool priv_v = owner[v] != comm::Owner::Shared;
        if ((priv_u || priv_v) && owner[u] != owner[v]) ++cut;
      }
      shape.row()
          .cell(k)
          .cell(n)
          .cell(std::uint64_t{g.layout.m})
          .cell(std::uint64_t{g.graph.num_vertices()})
          .cell(g.graph.num_edges())
          .cell(static_cast<std::uint64_t>(diameter(g.graph)))
          .cell(cut)
          .cell(cut - 6ull * g.layout.m);
    }
  }
  shape.print(std::cout);
  std::cout << "\nExpected: diameter always 3; cut - 6m is the constant\n"
               "marker-clique contribution (independent of n).\n";

  print_banner(std::cout, "Lemma 3.1 on random disjointness instances",
               "structural criterion vs ground truth, 20 instances per cell");
  const int lemma_trials = ctx.smoke() ? 6 : 20;
  bench::ReportedTable lemma(
      ctx, "lemma31", {"k", "n", "instances", "structural == (X cap Y != 0)"});
  Rng rng(2024);
  ctx.seed(2024);
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    for (const std::uint32_t n : {4u, 8u}) {
      bool all_match = true;
      for (int trial = 0; trial < lemma_trials; ++trial) {
        const auto inst = comm::random_disjointness(
            static_cast<std::uint64_t>(n) * n, 0.15, trial % 2 == 0, rng);
        const auto g = lb::build_gxy(k, n, inst);
        all_match &= lb::contains_hk_structurally(g) == inst.intersects();
      }
      lemma.row().cell(k).cell(n).cell(lemma_trials).cell(all_match);
    }
  }
  lemma.print(std::cout);

  print_banner(std::cout, "Lemma 3.1 vs the VF2 oracle (small sizes)",
               "genuine H_k-subgraph containment, exhaustive search");
  const int vf2_trials = ctx.smoke() ? 2 : 8;
  const std::vector<std::uint32_t> vf2_ks =
      ctx.smoke() ? std::vector<std::uint32_t>{1}
                  : std::vector<std::uint32_t>{1, 2};
  bench::ReportedTable vf2_table(
      ctx, "vf2", {"k", "n", "instances", "VF2 == structural == truth"});
  for (const std::uint32_t k : vf2_ks) {
    const auto hk = lb::build_hk(k);
    bool all_match = true;
    const std::uint32_t n = 3;
    for (int trial = 0; trial < vf2_trials; ++trial) {
      const auto inst = comm::random_disjointness(
          static_cast<std::uint64_t>(n) * n, 0.2, trial % 2 == 0, rng);
      const auto g = lb::build_gxy(k, n, inst);
      SubgraphSearchOptions opts;
      opts.max_steps = 200'000'000;
      const bool vf2 = contains_subgraph(g.graph, hk.graph, opts);
      all_match &= vf2 == inst.intersects() &&
                   lb::contains_hk_structurally(g) == inst.intersects();
    }
    vf2_table.row().cell(k).cell(n).cell(vf2_trials).cell(all_match);
  }
  vf2_table.print(std::cout);
  return ctx.finish(std::cout);
}
