// ABL — §6 internals: ablation of the two phases of the C_2k detector and
// the amplification curve.
//
// Phase I catches cycles through high-degree (>= n^{1/(k-1)}) nodes; phase
// II removes those nodes and catches cycles among the low-degree remainder.
// We isolate each phase on C_6 (k = 3 — for k = 2 the degree threshold is n
// and phase I is vacuous by design):
//
//   * "wheel": a hub of degree ~n adjacent to a rim cycle C_19 — every C_6
//     goes through the hub, so phase II (which removes the hub) is blind;
//   * "copies": disjoint C_6 copies — no high-degree nodes exist, so phase
//     I (which only launches tokens from high-degree nodes) is blind.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "detect/even_cycle.hpp"
#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace csd;

/// Wheel: hub 0 + rim C_19. The only C_6 copies are hub + 5 consecutive rim
/// vertices (19 of them); the rim alone is C_19-free of short cycles.
Graph wheel_instance() {
  Graph g = build::cycle(19);
  const Vertex hub = g.add_vertex();
  for (Vertex v = 0; v < 19; ++v) g.add_edge(hub, v);
  return g;
}

/// Eight disjoint C_6 copies: all degrees are 2.
Graph copies_instance() { return build::disjoint_copies(build::cycle(6), 8); }

double detection_rate(const Graph& g, bool phase1, bool phase2,
                      std::uint32_t repetitions, std::uint32_t trials) {
  std::uint32_t hits = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    detect::EvenCycleConfig cfg;
    cfg.k = 3;
    cfg.c_num = 1;
    cfg.enable_phase1 = phase1;
    cfg.enable_phase2 = phase2;
    cfg.repetitions = repetitions;
    hits += detect::detect_even_cycle(g, cfg, 64, 777 + t).detected;
  }
  return static_cast<double>(hits) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("abl_phases", argc, argv);
  const std::uint32_t trials = ctx.smoke() ? 3 : 12;
  const std::uint32_t wheel_reps = ctx.smoke() ? 400 : 1500;
  const std::uint32_t copies_reps = ctx.smoke() ? 250 : 1000;
  ctx.param("trials", trials)
      .param("wheel_reps", wheel_reps)
      .param("copies_reps", copies_reps);
  ctx.seed(777).seed(9000);

  print_banner(std::cout, "ABL: phase ablation of the C_6 detector (k = 3)",
               "cells: detection rate over " + std::to_string(trials) +
                   " trials (" + std::to_string(wheel_reps) + "/" +
                   std::to_string(copies_reps) + " reps each)");

  const Graph wheel = wheel_instance();
  const Graph copies = copies_instance();
  CSD_CHECK(oracle::has_cycle_of_length(wheel, 6));
  CSD_CHECK(oracle::has_cycle_of_length(copies, 6));

  bench::ReportedTable ablation(
      ctx, "ablation", {"variant", "wheel (hub C6s)", "disjoint C6 copies"});
  const struct {
    const char* name;
    bool p1, p2;
  } variants[] = {{"full algorithm", true, true},
                  {"phase I only", true, false},
                  {"phase II only", false, true},
                  {"neither (control)", false, false}};
  for (const auto& variant : variants) {
    ablation.row()
        .cell(variant.name)
        .cell(detection_rate(wheel, variant.p1, variant.p2, wheel_reps,
                             trials),
              2)
        .cell(detection_rate(copies, variant.p1, variant.p2, copies_reps,
                             trials),
              2);
  }
  ablation.print(std::cout);
  std::cout
      << "\nExpected: the full algorithm detects both instances with high\n"
         "rate; phase I alone matches it on the wheel but scores 0.00 on\n"
         "the copies (no high-degree node ever launches a token); phase II\n"
         "alone scores 0.00 on the wheel (every C_6 passes through the\n"
         "removed hub) but matches on the copies; the control detects\n"
         "nothing. This is exactly the case split of Section 6.\n";

  print_banner(std::cout,
               "Phase-II substrate: the layer decomposition across families",
               "threshold d = 4M/n; up-degree must stay <= d and waves "
               "within ceil(log2 n)+1");
  Rng lrng(2024);
  ctx.seed(2024);
  bench::ReportedTable layering(ctx, "layering",
                                {"family", "n", "m", "d", "layers used",
                                 "wave cap", "max up-degree", "unassigned"});
  struct LayerHost {
    std::string name;
    Graph g;
  };
  std::vector<LayerHost> layer_hosts;
  layer_hosts.push_back({"tree(200)", build::random_tree(200, lrng)});
  layer_hosts.push_back({"G(120, 4/n)", build::gnm(120, 240, lrng)});
  layer_hosts.push_back({"polarity ER_7", build::polarity_graph(7)});
  layer_hosts.push_back({"grid 12x12", build::grid(12, 12)});
  for (const auto& host : layer_hosts) {
    const auto n = host.g.num_vertices();
    detect::EvenCycleConfig cfg6;
    cfg6.k = 3;
    const auto sched = detect::make_even_cycle_schedule(n, cfg6);
    const auto threshold = static_cast<std::uint32_t>(sched.peel_degree);
    const auto cap = static_cast<std::uint32_t>(sched.layer_waves);
    const auto decomposition = layer_decomposition(host.g, threshold, cap);
    layering.row()
        .cell(host.name)
        .cell(std::uint64_t{n})
        .cell(host.g.num_edges())
        .cell(std::uint64_t{threshold})
        .cell(std::uint64_t{decomposition.num_layers})
        .cell(std::uint64_t{cap})
        .cell(std::uint64_t{max_up_degree(host.g, decomposition)})
        .cell(static_cast<std::uint64_t>(decomposition.unassigned.size()));
  }
  layering.print(std::cout);
  std::cout << "\nExpected: zero unassigned nodes, up-degree <= d, and far\n"
               "fewer waves than the ceil(log2 n)+1 cap on these sparse\n"
               "families — the guarantee phase II's windows are sized by.\n";

  print_banner(std::cout, "Lemma 6.1: phase-I queues drain within R1",
               "probe over the C_4-free polarity graphs (|E| <= M, many "
               "high-degree origins); 5 seeds each");
  bench::ReportedTable drain(ctx, "drain",
                             {"graph", "n", "|E|", "M", "R1",
                              "max queue seen", "last busy round",
                              "deadline rejects"});
  const std::vector<std::uint32_t> qs =
      ctx.smoke() ? std::vector<std::uint32_t>{5, 7}
                  : std::vector<std::uint32_t>{5, 7, 11};
  for (const std::uint32_t q : qs) {
    const Graph er = build::polarity_graph(q);
    detect::EvenCycleConfig cfg6;
    cfg6.k = 3;
    const auto sched =
        detect::make_even_cycle_schedule(er.num_vertices(), cfg6);
    std::uint64_t max_queue = 0, last_busy = 0;
    bool any_reject = false;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      detect::EvenCycleProbe probe;
      congest::NetworkConfig net_cfg;
      net_cfg.bandwidth = 64;
      net_cfg.seed = seed;
      net_cfg.max_rounds = sched.total_rounds() + 1;
      congest::run_congest(er, net_cfg,
                           detect::even_cycle_program(cfg6, &probe));
      max_queue = std::max(max_queue, probe.max_phase1_queue);
      last_busy = std::max(last_busy, probe.phase1_drained_round);
      any_reject |= probe.phase1_deadline_reject;
    }
    drain.row()
        .cell("ER_" + std::to_string(q))
        .cell(std::uint64_t{er.num_vertices()})
        .cell(er.num_edges())
        .cell(sched.edge_bound_m)
        .cell(sched.phase1_rounds)
        .cell(max_queue)
        .cell(last_busy)
        .cell(any_reject);
  }
  drain.print(std::cout);
  std::cout << "\nExpected: 'last busy round' <= R1 and no deadline rejects\n"
               "on |E| <= M instances — Lemma 6.1 observed directly.\n";

  print_banner(std::cout,
               "Amplification on the wheel: detection vs repetitions",
               "per-repetition success ~ 19*2/6^6; one-sided, so "
               "repetitions only help");
  const std::uint32_t amp_seeds = ctx.smoke() ? 6 : 25;
  bench::ReportedTable amp(
      ctx, "amplification",
      {"repetitions", "detection rate (" + std::to_string(amp_seeds) +
                          " seeds)"});
  const std::vector<std::uint32_t> rep_counts =
      ctx.smoke() ? std::vector<std::uint32_t>{25, 100, 400}
                  : std::vector<std::uint32_t>{25, 100, 400, 1600};
  for (const std::uint32_t reps : rep_counts) {
    std::uint32_t hits = 0;
    for (std::uint32_t t = 0; t < amp_seeds; ++t) {
      detect::EvenCycleConfig cfg;
      cfg.k = 3;
      cfg.c_num = 1;
      cfg.repetitions = reps;
      hits += detect::detect_even_cycle(wheel, cfg, 64, 9000 + t).detected;
    }
    amp.row().cell(reps).cell(static_cast<double>(hits) / amp_seeds, 2);
  }
  amp.print(std::cout);
  std::cout << "\nExpected: the rate climbs toward 1.0 as repetitions grow,\n"
               "reflecting the (2k)^{-2k}-scale single-shot probability\n"
               "being amplified (Corollary 6.2 / 'putting it together').\n";
  return ctx.finish(std::cout);
}
