// SEC34 — §3.4: why the bipartite lower bound needs an involved gadget.
//
// Theorem 1.2's construction is rigidified twice over: marker cliques pin
// every vertex class, and the triangle bodies cannot fold into bipartite
// wiring. §3.4 must do without both (a bipartite H cannot contain
// triangles or odd cliques). We ablate the two rigidifiers and measure,
// per variant, whether Lemma 3.1 ("H ⊆ G_{X,Y} ⟺ X ∩ Y ≠ ∅") survives on
// random instances — the fully bipartite naive variant fails, exhibiting
// the obstruction the paper's gadget must overcome.
#include <iostream>

#include "bench_common.hpp"
#include "comm/disjointness.hpp"
#include "graph/algorithms.hpp"
#include "graph/vf2.hpp"
#include "lowerbound/variants.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("sec34_bipartite", argc, argv);
  const int per_side = ctx.smoke() ? 5 : 20;
  ctx.param("instances_per_side", per_side);
  ctx.seed(99);

  print_banner(std::cout,
               "SEC34: rigidifier ablation of the Theorem 1.2 construction",
               std::to_string(per_side) + " intersecting + " +
                   std::to_string(per_side) +
                   " disjoint instances per variant "
                   "(k=1, n=6, dense inputs); VF2 exhaustive containment");

  bench::ReportedTable table(ctx, "ablation",
                             {"body", "markers", "bipartite",
                              "holds on intersecting",
                              "violations on disjoint", "Lemma 3.1"});
  for (const bool triangle_body : {true, false}) {
    for (const bool markers : {true, false}) {
      lb::ConstructionVariant v;
      v.triangle_body = triangle_body;
      v.markers = markers;
      Rng rng(99);
      const std::uint32_t k = 1, n = 6;
      const auto hk = lb::build_hk_variant(k, v);
      const Graph pattern =
          v.markers ? hk.graph : lb::strip_isolated(hk.graph);
      const bool bipartite = is_bipartite(lb::strip_isolated(hk.graph)) &&
                             !triangle_body && !markers;

      std::uint32_t hold = 0, violations = 0;
      for (int trial = 0; trial < 2 * per_side; ++trial) {
        const bool intersecting = trial < per_side;
        const auto inst = comm::random_disjointness(
            static_cast<std::uint64_t>(n) * n, 0.5, intersecting, rng);
        const auto g = lb::build_gxy_variant(k, n, inst, v);
        SubgraphSearchOptions opts;
        opts.max_steps = 500'000'000;
        const bool found = contains_subgraph(g.graph, pattern, opts);
        if (intersecting && found) ++hold;
        if (!intersecting && found) ++violations;
      }
      table.row()
          .cell(triangle_body ? "triangle" : "path")
          .cell(markers)
          .cell(bipartite)
          .cell(std::to_string(hold) + "/" + std::to_string(per_side))
          .cell(std::to_string(violations) + "/" + std::to_string(per_side))
          .cell(violations == 0 && hold == static_cast<std::uint32_t>(per_side)
                    ? "holds"
                    : "VIOLATED");
    }
  }
  table.print(std::cout);
  std::cout
      << "\nExpected: the construction stays sound as long as either\n"
         "rigidifier is present; the fully bipartite naive variant (path\n"
         "bodies, no markers) admits H-copies on DISJOINT inputs — the\n"
         "pattern folds through same-side input edges. This is the\n"
         "obstruction that makes Section 3.4's bipartite gadget 'much more\n"
         "involved', and our instantiation also shows the marker cliques\n"
         "alone already rigidify the non-bipartite construction.\n";
  return ctx.finish(std::cout);
}
