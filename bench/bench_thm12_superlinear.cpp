// THM12 — Theorem 1.2 / §3.3: the near-quadratic lower bound via the
// executable disjointness reduction.
//
// Tables:
//   1. For each k, the simulation cut Θ(k n^{1/k}) and the implied round
//      lower bound n²/(cut·B), with the growth exponent fitted against the
//      theorem's 2 - 1/k.
//   2. Live reductions at small n: the simulated collect-and-check
//      algorithm must answer the disjointness instance correctly, and the
//      bits it ships across the cut are measured.
//   3. The CONGEST/LOCAL separation: the same H_k is found in O(1) LOCAL
//      rounds by radius-3 ball collection.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "comm/disjointness.hpp"
#include "detect/collect.hpp"
#include "graph/algorithms.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/reduction.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("thm12_superlinear", argc, argv);
  constexpr std::uint64_t kBandwidth = 32;
  ctx.param("bandwidth", kBandwidth);

  print_banner(std::cout,
               "THM12: implied round lower bound n^2/(cut*B) vs n",
               "cut = 6m + O(1), m = k*ceil(n^(1/k)); theory exponent 2-1/k");

  bench::ReportedTable implied(ctx, "implied",
                               {"k", "n", "cut edges", "implied LB rounds",
                                "fitted exp", "theory exp 2-1/k"});
  for (const std::uint32_t k : {1u, 2u, 3u, 4u}) {
    double prev_lb = 0, prev_n = 0;
    for (const std::uint32_t n : {16u, 64u, 256u, 1024u}) {
      const auto frame = lb::build_gkn_frame(k, n);
      const auto owner = lb::gkn_ownership(frame.layout);
      std::uint64_t cut = 0;
      for (const auto& [u, v] : frame.graph.edges()) {
        const bool priv_u = owner[u] != comm::Owner::Shared;
        const bool priv_v = owner[v] != comm::Owner::Shared;
        if ((priv_u || priv_v) && owner[u] != owner[v]) ++cut;
      }
      const double lb_rounds =
          static_cast<double>(n) * n /
          (static_cast<double>(cut) * static_cast<double>(kBandwidth));
      std::string fitted = "-";
      if (prev_n > 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f",
                      std::log(lb_rounds / prev_lb) /
                          std::log(static_cast<double>(n) / prev_n));
        fitted = buf;
      }
      implied.row()
          .cell(k)
          .cell(n)
          .cell(cut)
          .cell(lb_rounds, 1)
          .cell(fitted)
          .cell(2.0 - 1.0 / k, 3);
      prev_lb = lb_rounds;
      prev_n = n;
    }
  }
  implied.print(std::cout);

  print_banner(std::cout, "The near-quadratic regime: k = ceil(log2 n)",
               "m = k*ceil(n^(1/k)) = 2k, so the cut is O(log n) and the "
               "implied bound approaches n^2 / (B log n)");
  bench::ReportedTable quadratic(ctx, "quadratic",
                                 {"n", "k = ceil(log2 n)", "cut edges",
                                  "implied LB rounds", "effective exponent"});
  const std::vector<std::uint32_t> quad_sizes =
      ctx.smoke() ? std::vector<std::uint32_t>{64, 256, 1024}
                  : std::vector<std::uint32_t>{64, 256, 1024, 4096};
  for (const std::uint32_t n : quad_sizes) {
    const auto k = ceil_log2(n);
    const auto frame = lb::build_gkn_frame(k, n);
    const auto owner = lb::gkn_ownership(frame.layout);
    std::uint64_t cut = 0;
    for (const auto& [u, v] : frame.graph.edges()) {
      const bool priv_u = owner[u] != comm::Owner::Shared;
      const bool priv_v = owner[v] != comm::Owner::Shared;
      if ((priv_u || priv_v) && owner[u] != owner[v]) ++cut;
    }
    const double lb_rounds =
        static_cast<double>(n) * n /
        (static_cast<double>(cut) * static_cast<double>(kBandwidth));
    quadratic.row()
        .cell(n)
        .cell(k)
        .cell(cut)
        .cell(lb_rounds, 1)
        .cell(std::log(lb_rounds) / std::log(static_cast<double>(n)), 3);
  }
  quadratic.print(std::cout);
  std::cout << "\nTaking k = Theta(log n) pushes the exponent to 2 - o(1):\n"
               "a nearly-quadratic CONGEST lower bound for a diameter-3,\n"
               "O(log n)-size subgraph (the paper's headline separation,\n"
               "nearly the largest possible LOCAL/CONGEST gap).\n";

  print_banner(std::cout, "Live reductions (collect-and-check simulated "
                          "across the Alice/Bob cut)",
               "correctness + measured crossing traffic");
  bench::ReportedTable live(ctx, "live",
                            {"k", "n", "X cap Y", "detected", "rounds",
                             "crossing bits", "cut edges", "max bits/round"});
  Rng rng(99);
  ctx.seed(99);
  const std::vector<std::uint32_t> live_sizes =
      ctx.smoke() ? std::vector<std::uint32_t>{4, 8}
                  : std::vector<std::uint32_t>{4, 8, 16};
  for (const std::uint32_t k : {1u, 2u}) {
    for (const std::uint32_t n : live_sizes) {
      for (const bool intersecting : {true, false}) {
        const auto inst = comm::random_disjointness(
            static_cast<std::uint64_t>(n) * n, 0.1, intersecting, rng);
        const auto report = lb::run_reduction(k, n, inst, kBandwidth, 5);
        live.row()
            .cell(k)
            .cell(n)
            .cell(intersecting)
            .cell(report.detected)
            .cell(report.rounds)
            .cell(report.crossing_bits)
            .cell(report.cut_edges)
            .cell(report.max_crossing_bits_per_round);
      }
    }
  }
  live.print(std::cout);

  print_banner(std::cout, "CONGEST vs LOCAL separation",
               "radius-3 LOCAL ball collection decides H_k-ness in 3 rounds");
  bench::ReportedTable local(ctx, "local",
                             {"k", "n", "LOCAL rounds", "detected",
                              "expected"});
  for (const bool intersecting : {true, false}) {
    const std::uint32_t k = 2, n = 8;
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.15, intersecting, rng);
    const auto g = lb::build_gxy(k, n, inst);
    congest::NetworkConfig cfg;
    cfg.bandwidth = 0;  // LOCAL
    cfg.max_rounds = 8;
    const auto layout = g.layout;
    const auto outcome = congest::run_congest(
        g.graph, cfg,
        detect::local_ball_program(3, [layout](const Graph& ball) {
          return lb::contains_hk_structurally(layout, ball);
        }));
    local.row()
        .cell(k)
        .cell(n)
        .cell(outcome.metrics.rounds)
        .cell(outcome.detected)
        .cell(intersecting);
  }
  local.print(std::cout);
  std::cout << "\nExpected: detected == expected everywhere; LOCAL needs a\n"
               "constant number of rounds while the CONGEST bound above is\n"
               "superlinear — an exponential-in-rounds separation.\n";
  return ctx.finish(std::cout);
}
