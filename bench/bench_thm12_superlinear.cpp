// THM12 — Theorem 1.2 / §3.3: the near-quadratic lower bound via the
// executable disjointness reduction.
//
// Tables:
//   1. For each k, the simulation cut Θ(k n^{1/k}) and the implied round
//      lower bound n²/(cut·B), with the growth exponent fitted against the
//      theorem's 2 - 1/k.
//   2. Live reductions at small n: the simulated collect-and-check
//      algorithm must answer the disjointness instance correctly, and the
//      bits it ships across the cut are measured.
//   3. The CONGEST/LOCAL separation: the same H_k is found in O(1) LOCAL
//      rounds by radius-3 ball collection.
//   4. A small multi-seed batch through simulate_across_cut_batch —
//      per-seed crossing bits are deterministic rows, so the PR-time
//      baseline exercises the batched data path on every platform.
//
// With --scale (nightly): structural-cut sweeps to n = 262144 and a
// multi-seed random-traffic cut sweep to n = 131072, both emitting
// bootstrap-fitted exponent rows into the "lb_fit" section that
// tools/lb_gate.py gates against the k·n^{1/k} theory; plus an honest
// batched-vs-per-seed throughput table (wall clock, kept out of the JSON
// report because it is not deterministic).
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/cut_simulator.hpp"
#include "comm/disjointness.hpp"
#include "detect/collect.hpp"
#include "graph/algorithms.hpp"
#include "lowerbound/gkn.hpp"
#include "lowerbound/reduction.hpp"
#include "obs/lb_fit.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

/// Structural cut of the G_{k,n} frame under its canonical ownership.
std::uint64_t gkn_cut(std::uint32_t k, std::uint32_t n) {
  const auto frame = csd::lb::build_gkn_frame(k, n);
  const auto owner = csd::lb::gkn_ownership(frame.layout);
  return csd::comm::count_cut_edges(frame.graph, owner);
}

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("thm12_superlinear", argc, argv);
  bool scale = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--scale") scale = true;
  constexpr std::uint64_t kBandwidth = 32;
  ctx.param("bandwidth", kBandwidth).param("scale", scale);

  print_banner(std::cout,
               "THM12: implied round lower bound n^2/(cut*B) vs n",
               "cut = 6m + O(1), m = k*ceil(n^(1/k)); theory exponent 2-1/k");

  bench::ReportedTable implied(ctx, "implied",
                               {"k", "n", "cut edges", "implied LB rounds",
                                "fitted exp", "theory exp 2-1/k"});
  for (const std::uint32_t k : {1u, 2u, 3u, 4u}) {
    double prev_lb = 0, prev_n = 0;
    for (const std::uint32_t n : {16u, 64u, 256u, 1024u}) {
      const std::uint64_t cut = gkn_cut(k, n);
      const double lb_rounds =
          static_cast<double>(n) * n /
          (static_cast<double>(cut) * static_cast<double>(kBandwidth));
      std::string fitted = "-";
      if (prev_n > 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f",
                      std::log(lb_rounds / prev_lb) /
                          std::log(static_cast<double>(n) / prev_n));
        fitted = buf;
      }
      implied.row()
          .cell(k)
          .cell(n)
          .cell(cut)
          .cell(lb_rounds, 1)
          .cell(fitted)
          .cell(2.0 - 1.0 / k, 3);
      prev_lb = lb_rounds;
      prev_n = n;
    }
  }
  implied.print(std::cout);

  print_banner(std::cout, "The near-quadratic regime: k = ceil(log2 n)",
               "m = k*ceil(n^(1/k)) = 2k, so the cut is O(log n) and the "
               "implied bound approaches n^2 / (B log n)");
  bench::ReportedTable quadratic(ctx, "quadratic",
                                 {"n", "k = ceil(log2 n)", "cut edges",
                                  "implied LB rounds", "effective exponent"});
  const std::vector<std::uint32_t> quad_sizes =
      ctx.smoke() ? std::vector<std::uint32_t>{64, 256, 1024}
                  : std::vector<std::uint32_t>{64, 256, 1024, 4096};
  for (const std::uint32_t n : quad_sizes) {
    const auto k = ceil_log2(n);
    const std::uint64_t cut = gkn_cut(k, n);
    const double lb_rounds =
        static_cast<double>(n) * n /
        (static_cast<double>(cut) * static_cast<double>(kBandwidth));
    quadratic.row()
        .cell(n)
        .cell(k)
        .cell(cut)
        .cell(lb_rounds, 1)
        .cell(std::log(lb_rounds) / std::log(static_cast<double>(n)), 3);
  }
  quadratic.print(std::cout);
  std::cout << "\nTaking k = Theta(log n) pushes the exponent to 2 - o(1):\n"
               "a nearly-quadratic CONGEST lower bound for a diameter-3,\n"
               "O(log n)-size subgraph (the paper's headline separation,\n"
               "nearly the largest possible LOCAL/CONGEST gap).\n";

  print_banner(std::cout, "Live reductions (collect-and-check simulated "
                          "across the Alice/Bob cut)",
               "correctness + measured crossing traffic");
  bench::ReportedTable live(ctx, "live",
                            {"k", "n", "X cap Y", "detected", "rounds",
                             "crossing bits", "cut edges", "max bits/round"});
  Rng rng(99);
  ctx.seed(99);
  const std::vector<std::uint32_t> live_sizes =
      ctx.smoke() ? std::vector<std::uint32_t>{4, 8}
                  : std::vector<std::uint32_t>{4, 8, 16};
  for (const std::uint32_t k : {1u, 2u}) {
    for (const std::uint32_t n : live_sizes) {
      for (const bool intersecting : {true, false}) {
        const auto inst = comm::random_disjointness(
            static_cast<std::uint64_t>(n) * n, 0.1, intersecting, rng);
        const auto report = lb::run_reduction(k, n, inst, kBandwidth, 5);
        live.row()
            .cell(k)
            .cell(n)
            .cell(intersecting)
            .cell(report.detected)
            .cell(report.rounds)
            .cell(report.crossing_bits)
            .cell(report.cut_edges)
            .cell(report.max_crossing_bits_per_round);
      }
    }
  }
  live.print(std::cout);

  print_banner(std::cout, "CONGEST vs LOCAL separation",
               "radius-3 LOCAL ball collection decides H_k-ness in 3 rounds");
  bench::ReportedTable local(ctx, "local",
                             {"k", "n", "LOCAL rounds", "detected",
                              "expected"});
  for (const bool intersecting : {true, false}) {
    const std::uint32_t k = 2, n = 8;
    const auto inst = comm::random_disjointness(
        static_cast<std::uint64_t>(n) * n, 0.15, intersecting, rng);
    const auto g = lb::build_gxy(k, n, inst);
    congest::NetworkConfig cfg;
    cfg.bandwidth = 0;  // LOCAL
    cfg.max_rounds = 8;
    const auto layout = g.layout;
    const auto outcome = congest::run_congest(
        g.graph, cfg,
        detect::local_ball_program(3, [layout](const Graph& ball) {
          return lb::contains_hk_structurally(layout, ball);
        }));
    local.row()
        .cell(k)
        .cell(n)
        .cell(outcome.metrics.rounds)
        .cell(outcome.detected)
        .cell(intersecting);
  }
  local.print(std::cout);
  std::cout << "\nExpected: detected == expected everywhere; LOCAL needs a\n"
               "constant number of rounds while the CONGEST bound above is\n"
               "superlinear — an exponential-in-rounds separation.\n";

  print_banner(std::cout,
               "Batched cut accounting: one frame, many seeds",
               "simulate_across_cut_batch rows are bit-identical at any "
               "--jobs; the random-traffic probe gives per-seed spread");
  bench::ReportedTable batch_table(
      ctx, "batch",
      {"seed", "crossing bits", "crossing msgs", "max bits/round", "rounds",
       "cut edges"});
  {
    const std::uint32_t k = 2, n = 256;
    const auto frame = lb::build_gkn_frame(k, n);
    const auto owner = lb::gkn_ownership(frame.layout);
    congest::NetworkConfig cfg;
    cfg.bandwidth = kBandwidth;
    cfg.max_rounds = 8;
    const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
    for (const auto s : seeds) ctx.seed(s);
    const auto batch = comm::simulate_across_cut_batch(
        frame.graph, owner, cfg, comm::random_traffic_program(2), seeds, 2);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch_table.row()
          .cell(batch.seeds[i])
          .cell(batch.total_crossing_bits(i))
          .cell(batch.crossing_messages[i])
          .cell(batch.max_bits_per_round[i])
          .cell(batch.rounds[i])
          .cell(batch.cut_edges);
    }
  }
  batch_table.print(std::cout);

  if (scale) {
    print_banner(std::cout,
                 "[scale] structural cut to n = 262144",
                 "cut = Theta(k n^(1/k)); fitted exponent gated at 1/k by "
                 "tools/lb_gate.py");
    bench::ReportedTable structural(
        ctx, "scale_structural", {"k", "n", "cut edges", "vertices"});
    bench::ReportedTable lb_fit(
        ctx, "lb_fit",
        {"group", "exponent", "lo95", "hi95", "theory", "tol", "points",
         "seeds"});
    const std::vector<std::uint32_t> scale_sizes = {4096, 16384, 65536,
                                                    262144};
    for (const std::uint32_t k : {2u, 3u, 4u}) {
      std::vector<std::pair<double, double>> xy;
      for (const std::uint32_t n : scale_sizes) {
        const auto frame = lb::build_gkn_frame(k, n);
        const auto owner = lb::gkn_ownership(frame.layout);
        const std::uint64_t cut = comm::count_cut_edges(frame.graph, owner);
        structural.row()
            .cell(k)
            .cell(n)
            .cell(cut)
            .cell(frame.graph.num_vertices());
        xy.emplace_back(static_cast<double>(n), static_cast<double>(cut));
      }
      // Deterministic points: one value per size, so the interval is the
      // point estimate itself (resamples would all coincide).
      const auto fit = obs::bootstrap_power_law(xy, 0, 7);
      CSD_CHECK(fit.has_value());
      lb_fit.row()
          .cell("cut-structural-k" + std::to_string(k))
          .cell(fit->fit.exponent, 4)
          .cell(fit->exponent_lo, 4)
          .cell(fit->exponent_hi, 4)
          .cell(1.0 / k, 4)
          .cell(0.06, 3)
          .cell(static_cast<std::uint64_t>(xy.size()))
          .cell(static_cast<std::uint64_t>(1));
    }
    structural.print(std::cout);

    print_banner(std::cout,
                 "[scale] random-traffic crossing bits, multi-seed batches",
                 "k = 2; per-seed totals bootstrap to an error-barred "
                 "exponent vs the sqrt(n) structural theory");
    bench::ReportedTable traffic(
        ctx, "scale_traffic",
        {"n", "seeds", "mean crossing bits", "min", "max", "cut edges"});
    const std::vector<std::uint32_t> traffic_sizes = {8192, 32768, 131072};
    const std::uint32_t traffic_seeds = 6;
    std::vector<std::pair<double, double>> traffic_xy;
    for (const std::uint32_t n : traffic_sizes) {
      const auto frame = lb::build_gkn_frame(2, n);
      const auto owner = lb::gkn_ownership(frame.layout);
      congest::NetworkConfig cfg;
      cfg.bandwidth = kBandwidth;
      cfg.max_rounds = 8;
      std::vector<std::uint64_t> seeds(traffic_seeds);
      for (std::uint32_t s = 0; s < traffic_seeds; ++s)
        seeds[s] = derive_seed(1200, s);
      const auto batch = comm::simulate_across_cut_batch(
          frame.graph, owner, cfg, comm::random_traffic_program(2), seeds, 0);
      double sum = 0;
      std::uint64_t lo = ~0ULL, hi = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::uint64_t bits = batch.total_crossing_bits(i);
        traffic_xy.emplace_back(static_cast<double>(n),
                                static_cast<double>(bits));
        sum += static_cast<double>(bits);
        lo = std::min(lo, bits);
        hi = std::max(hi, bits);
      }
      traffic.row()
          .cell(n)
          .cell(traffic_seeds)
          .cell(sum / traffic_seeds, 1)
          .cell(lo)
          .cell(hi)
          .cell(batch.cut_edges);
    }
    traffic.print(std::cout);
    const auto traffic_fit = obs::bootstrap_power_law(traffic_xy, 200, 7);
    CSD_CHECK(traffic_fit.has_value());
    lb_fit.row()
        .cell("cut-traffic-k2")
        .cell(traffic_fit->fit.exponent, 4)
        .cell(traffic_fit->exponent_lo, 4)
        .cell(traffic_fit->exponent_hi, 4)
        .cell(0.5, 4)
        .cell(0.08, 3)
        .cell(static_cast<std::uint64_t>(traffic_sizes.size()))
        .cell(static_cast<std::uint64_t>(traffic_seeds));
    lb_fit.print(std::cout);

    print_banner(std::cout,
                 "[scale] batched vs per-seed throughput (wall clock)",
                 "same workload; per-seed path rebuilds the Network every "
                 "seed, the batch builds once and fans out. Not recorded in "
                 "the JSON report (nondeterministic).");
    {
      const std::uint32_t n = 32768;
      const auto frame = lb::build_gkn_frame(2, n);
      const auto owner = lb::gkn_ownership(frame.layout);
      congest::NetworkConfig cfg;
      cfg.bandwidth = kBandwidth;
      cfg.max_rounds = 8;
      std::vector<std::uint64_t> seeds(8);
      for (std::uint32_t s = 0; s < seeds.size(); ++s)
        seeds[s] = derive_seed(1300, s);
      const auto factory = comm::random_traffic_program(2);

      const double t0 = now_ns();
      std::uint64_t check_seq = 0;
      for (const auto s : seeds) {
        const auto one = comm::simulate_across_cut_batch(
            frame.graph, owner, cfg, factory, {s}, 1);
        check_seq += one.total_crossing_bits(0);
      }
      const double t1 = now_ns();
      const auto batched = comm::simulate_across_cut_batch(
          frame.graph, owner, cfg, factory, seeds, 0);
      const double t2 = now_ns();
      std::uint64_t check_batch = 0;
      for (std::size_t i = 0; i < batched.size(); ++i)
        check_batch += batched.total_crossing_bits(i);
      CSD_CHECK_MSG(check_seq == check_batch,
                    "batch diverged from per-seed totals");

      Table wall({"n", "seeds", "per-seed ms", "batched ms", "speedup"});
      wall.row()
          .cell(n)
          .cell(seeds.size())
          .cell((t1 - t0) / 1e6, 1)
          .cell((t2 - t1) / 1e6, 1)
          .cell((t1 - t0) / (t2 - t1), 2);
      wall.print(std::cout);
    }
  }
  return ctx.finish(std::cout);
}
