// UPPER — scaling of the substrate upper bounds the paper leans on:
//   * K_s detection by neighborhood exchange: Θ(Δ·log n / B) rounds
//     (the [10]-style O(n)-round worst case, but degree-adaptive);
//   * tree detection: O(height) rounds, independent of n;
//   * universal collection: Θ(m + D) rounds.
// These are the baselines the lower bounds are measured against.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "detect/clique_detect.hpp"
#include "detect/collect.hpp"
#include "detect/tree_detect.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("upper_bounds", argc, argv);

  print_banner(std::cout,
               "UPPER: neighborhood-exchange rounds vs degree and bandwidth",
               "K_{d} star-of-cliques hosts; rounds should scale ~ d*log(n)/B");
  bench::ReportedTable exchange(ctx, "exchange",
                                {"n", "max degree", "B", "rounds",
                                 "rounds*B/(deg*idbits)"});
  const std::vector<Vertex> degrees =
      ctx.smoke() ? std::vector<Vertex>{8, 32}
                  : std::vector<Vertex>{8, 32, 128};
  for (const Vertex d : degrees) {
    const Graph g = build::complete(d + 1);  // every vertex has degree d
    for (const std::uint64_t b : {8u, 32u, 128u}) {
      const auto outcome = detect::detect_clique(g, 3, b, 1);
      const double idbits = static_cast<double>(wire::bits_for(d + 1));
      exchange.row()
          .cell(std::uint64_t{d + 1})
          .cell(std::uint64_t{d})
          .cell(b)
          .cell(outcome.metrics.rounds)
          .cell(static_cast<double>(outcome.metrics.rounds) *
                    static_cast<double>(b) / (d * idbits),
                2);
    }
  }
  exchange.print(std::cout);
  std::cout << "\nExpected: the normalized column is ~constant: rounds track\n"
               "deg*log(n)/B, the Theta(Delta log n / B) exchange cost.\n";

  print_banner(std::cout, "UPPER: tree detection is O(height), not O(n)",
               "star K_{1,3} pattern over growing hosts, 1 repetition");
  bench::ReportedTable tree(ctx, "tree", {"host n", "rounds"});
  Rng rng(9);
  ctx.seed(9);
  const std::vector<Vertex> tree_sizes =
      ctx.smoke() ? std::vector<Vertex>{25, 100, 400}
                  : std::vector<Vertex>{25, 100, 400, 1600};
  for (const Vertex n : tree_sizes) {
    const Graph g = build::grid(n / 5, 5);
    detect::TreeDetectConfig cfg;
    cfg.tree = build::star(3);
    cfg.repetitions = 1;
    tree.row()
        .cell(std::uint64_t{g.num_vertices()})
        .cell(detect::detect_tree(g, cfg, 32, 1).metrics.rounds);
  }
  tree.print(std::cout);

  print_banner(std::cout, "UPPER: universal collection is Theta(m + D)",
               "edge gossip until every node knows the whole graph");
  bench::ReportedTable collect(ctx, "collect",
                               {"n", "m", "rounds", "rounds/(m+n)"});
  const std::vector<Vertex> collect_sizes =
      ctx.smoke() ? std::vector<Vertex>{32, 64}
                  : std::vector<Vertex>{32, 64, 128};
  for (const Vertex n : collect_sizes) {
    for (const std::uint64_t m : {2u * n, 4u * n}) {
      Graph g = build::random_tree(n, rng);
      while (g.num_edges() < m)
        g.add_edge_if_absent(static_cast<Vertex>(rng.below(n)),
                             static_cast<Vertex>(rng.below(n)));
      const auto outcome = detect::detect_by_collection(
          g, [](const Graph&) { return false; }, 32, 1);
      collect.row()
          .cell(std::uint64_t{n})
          .cell(g.num_edges())
          .cell(outcome.metrics.rounds)
          .cell(static_cast<double>(outcome.metrics.rounds) /
                    static_cast<double>(g.num_edges() + n),
                2);
    }
  }
  collect.print(std::cout);
  std::cout << "\nExpected: collection rounds track m (the generic algorithm\n"
               "the Theorem 1.2 lower bound shows is near-optimal for H_k up\n"
               "to the n^{1/k} cut factor).\n";
  return ctx.finish(std::cout);
}
