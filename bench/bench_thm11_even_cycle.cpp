// THM11 — Theorem 1.1 / §6: C_2k detection in O(n^{1-1/(k(k-1))}) rounds.
//
// Three reproduction tables:
//   1. Round complexity vs n for k = 2, 3, 4 (measured on real runs where
//      feasible, schedule elsewhere), with the log-log growth exponent
//      fitted between consecutive sizes against the theorem's
//      1 - 1/(k(k-1)).
//   2. Crossover against the linear-round pipelined baseline: who wins at
//      which n (the paper's headline: even cycles are sublinear, unlike odd
//      cycles, which stay Θ(n) by [DKO14]).
//   3. Detection quality: planted-cycle instances vs cycle-free controls.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "congest/run_batch.hpp"
#include "detect/even_cycle.hpp"
#include "detect/pipelined_cycle.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

double fitted_exponent(double r1, double r2, double n1, double n2) {
  return std::log(r2 / r1) / std::log(n2 / n1);
}

/// `--jobs N` fans amplification repetitions over N worker threads
/// (0 = all hardware threads). Verdicts and metrics are identical for
/// every N; only wall-clock changes.
unsigned parse_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--jobs") == 0)
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
  return 1;
}

/// `--workers W` runs each live repetition on the sharded superstep engine
/// (congest/shard.hpp; 0 = classic loop). Every reported number is
/// bit-identical for every W — the flag only changes wall-clock — so the
/// model-level baseline comparison stays exact.
unsigned parse_workers(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--workers") == 0)
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("thm11_even_cycle", argc, argv);
  congest::AmplifyOptions amplify;
  amplify.jobs = parse_jobs(argc, argv);
  congest::ShardSpec shard;
  shard.workers = parse_workers(argc, argv);
  ctx.report().env("jobs", congest::resolve_jobs(amplify.jobs));
  ctx.report().env("workers", shard.workers);

  print_banner(std::cout,
               "THM11: C_2k detection rounds vs n (one repetition)",
               "schedule-exact rounds; fitted exponent vs 1 - 1/(k(k-1))");

  bench::ReportedTable growth(
      ctx, "growth", {"k", "cycle", "n", "rounds", "fitted exp", "theory exp"});
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    detect::EvenCycleConfig cfg;
    cfg.k = k;
    cfg.c_num = 1;
    const double theory = 1.0 - 1.0 / (k * (k - 1.0));
    std::uint64_t prev_rounds = 0, prev_n = 0;
    for (std::uint64_t n = 1u << 10; n <= (1u << 20); n <<= 2) {
      const auto sched = detect::make_even_cycle_schedule(n, cfg);
      growth.row()
          .cell(k)
          .cell("C_" + std::to_string(2 * k))
          .cell(n)
          .cell(sched.total_rounds())
          .cell(prev_n == 0
                    ? std::string("-")
                    : [&] {
                        std::string s(16, '\0');
                        const double e = fitted_exponent(
                            static_cast<double>(prev_rounds),
                            static_cast<double>(sched.total_rounds()),
                            static_cast<double>(prev_n),
                            static_cast<double>(n));
                        s.resize(static_cast<std::size_t>(
                            std::snprintf(s.data(), s.size(), "%.3f", e)));
                        return s;
                      }())
          .cell(theory, 3);
      prev_rounds = sched.total_rounds();
      prev_n = n;
    }
  }
  growth.print(std::cout);

  print_banner(std::cout, "Crossover vs the linear-round baseline",
               "sublinear wins once n is large enough; odd cycles have no "
               "sublinear algorithm [DKO14]");
  bench::ReportedTable crossover(ctx, "crossover",
                                 {"k", "n", "even-cycle rounds",
                                  "baseline rounds (n+2k)", "sublinear wins"});
  for (const std::uint32_t k : {2u, 3u}) {
    detect::EvenCycleConfig cfg;
    cfg.k = k;
    cfg.c_num = 1;
    for (std::uint64_t n = 1u << 8; n <= (1u << 22); n <<= 2) {
      const auto rounds = detect::make_even_cycle_schedule(n, cfg).total_rounds();
      const auto baseline = detect::pipelined_cycle_round_budget(n, 2 * k);
      crossover.row()
          .cell(k)
          .cell(n)
          .cell(rounds)
          .cell(baseline)
          .cell(rounds < baseline);
    }
  }
  crossover.print(std::cout);

  print_banner(std::cout, "Live runs: measured rounds and detection quality",
               "C_4 on sparse hosts (" +
                   std::to_string(congest::resolve_jobs(amplify.jobs)) +
                   " worker thread(s)); every rejection is checked against "
                   "the oracle (one-sided error)");
  bench::ReportedTable quality(ctx, "quality",
                               {"n", "instance", "reps", "executed",
                                "measured rounds/rep", "detected", "oracle"});
  Rng rng(7);
  ctx.seed(7).seed(11).seed(13).seed(17);
  const std::vector<std::uint64_t> live_sizes =
      ctx.smoke() ? std::vector<std::uint64_t>{128, 512}
                  : std::vector<std::uint64_t>{128, 512, 2048};
  // With --trace, every live run below appends one stamped JSONL instance
  // to the trace file. The planted/control C_4 rows share the fit group
  // "even_cycle" (same schedule, so `csd analyze --expect-exponent 0.5`
  // checks Thm 1.1's n^{1-1/(k(k-1))} growth on them); the extremal hard
  // negatives get their own group so their fixed sizes don't pollute the
  // fit.
  const auto write_trace = [&](congest::RunOutcome& outcome,
                               const char* group, const char* instance,
                               std::uint64_t n, std::uint32_t k,
                               std::uint64_t seed) {
    if (!ctx.tracing()) return;
    outcome.trace.set_meta("program", "even_cycle");
    outcome.trace.set_meta("group", group);
    outcome.trace.set_meta("instance", instance);
    outcome.trace.set_meta("n", std::to_string(n));
    outcome.trace.set_meta("k", std::to_string(k));
    outcome.trace.set_meta("seed", std::to_string(seed));
    outcome.trace.write_jsonl(ctx.trace_stream());
  };
  for (const std::uint64_t n : live_sizes) {
    // Planted C_4 in a forest vs a cycle-free control.
    for (const bool planted : {true, false}) {
      Graph g = build::random_tree(static_cast<Vertex>(n), rng);
      if (planted) build::plant_subgraph(g, build::cycle(4), rng);
      detect::EvenCycleConfig cfg;
      cfg.k = 2;
      cfg.c_num = 1;
      cfg.repetitions = ctx.smoke() ? 80 : (n >= 2048 ? 150 : 400);
      cfg.amplify = amplify;
      cfg.shard = shard;
      cfg.trace = ctx.trace_options();
      cfg.telemetry = ctx.telemetry();
      auto outcome = detect::detect_even_cycle(g, cfg, 64, 11);
      quality.row()
          .cell(n)
          .cell(planted ? "forest + planted C4" : "forest (control)")
          .cell(std::uint64_t{cfg.repetitions})
          .cell(outcome.metrics.repetitions_executed)
          .cell(outcome.metrics.rounds / outcome.metrics.repetitions_executed)
          .cell(outcome.detected)
          .cell(oracle::has_cycle_of_length(g, 4));
      write_trace(outcome, "even_cycle",
                  planted ? "planted" : "control", n, 2, 11);
    }
  }
  // The extremal hard negatives: C4-free polarity graph and the girth-8
  // generalized quadrangle (C6-free) at near-extremal density — they
  // exercise the phase-I edge budget without false positives.
  {
    const Graph er = build::polarity_graph(7);  // 57 vertices, C4-free
    detect::EvenCycleConfig cfg;
    cfg.k = 2;
    cfg.repetitions = ctx.smoke() ? 50 : 200;
    cfg.amplify = amplify;
    cfg.shard = shard;
    cfg.trace = ctx.trace_options();
    cfg.telemetry = ctx.telemetry();
    auto outcome = detect::detect_even_cycle(er, cfg, 64, 13);
    quality.row()
        .cell(std::uint64_t{er.num_vertices()})
        .cell("polarity ER_7 (C4-free, dense)")
        .cell(std::uint64_t{cfg.repetitions})
        .cell(outcome.metrics.repetitions_executed)
        .cell(outcome.metrics.rounds / outcome.metrics.repetitions_executed)
        .cell(outcome.detected)
        .cell(false);
    write_trace(outcome, "even_cycle_hard_negative", "polarity_ER7",
                er.num_vertices(), 2, 13);
  }
  {
    const Graph gq = build::generalized_quadrangle_incidence(3);
    detect::EvenCycleConfig cfg;
    cfg.k = 3;
    cfg.repetitions = ctx.smoke() ? 25 : 100;
    cfg.amplify = amplify;
    cfg.shard = shard;
    cfg.trace = ctx.trace_options();
    cfg.telemetry = ctx.telemetry();
    auto outcome = detect::detect_even_cycle(gq, cfg, 64, 17);
    quality.row()
        .cell(std::uint64_t{gq.num_vertices()})
        .cell("GQ(4,3) (C6-free, girth 8)")
        .cell(std::uint64_t{cfg.repetitions})
        .cell(outcome.metrics.repetitions_executed)
        .cell(outcome.metrics.rounds / outcome.metrics.repetitions_executed)
        .cell(outcome.detected)
        .cell(false);
    write_trace(outcome, "even_cycle_hard_negative", "GQ43",
                gq.num_vertices(), 3, 17);
  }
  quality.print(std::cout);

  print_banner(std::cout, "Hot path: engine-timer split on a fixed workload",
               "delivery share of wall time; tools/check_delivery_share.py "
               "gates this against the committed baseline in CI");
  // The workload is the same at --smoke and full scale on purpose: the CI
  // smoke run and the committed baseline must measure identical work. The
  // `rounds` column is model-level and exact; the `_ns` columns are wall
  // clock, which bench_compare.py treats with timing tolerance (and skips
  // outright below its sub-second noise floor).
  bench::ReportedTable hotpath(ctx, "hotpath",
                               {"n", "reps", "rounds", "elapsed_ns",
                                "timers_compute_ns", "timers_delivery_ns"});
  {
    Rng hot_rng(23);
    ctx.seed(23).seed(19);
    // Cycle-free control: no early-out on detection, so every repetition
    // executes and the run is long enough for a stable timer split.
    Graph g = build::random_tree(512, hot_rng);
    detect::EvenCycleConfig cfg;
    cfg.k = 2;
    cfg.c_num = 1;
    cfg.repetitions = 400;  // ~0.2 s: long enough for a stable timer split
    cfg.amplify = amplify;
    cfg.shard = shard;
    cfg.trace = ctx.trace_options();
    cfg.telemetry = ctx.telemetry();
    cfg.trace.timers = true;  // honored even when the trace itself is off
    const auto start = std::chrono::steady_clock::now();
    auto outcome = detect::detect_even_cycle(g, cfg, 64, 19);
    const auto elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    hotpath.row()
        .cell(std::uint64_t{512})
        .cell(std::uint64_t{cfg.repetitions})
        .cell(outcome.metrics.rounds)
        .cell(elapsed_ns)
        .cell(outcome.metrics.timers.compute_ns)
        .cell(outcome.metrics.timers.delivery_ns);
    write_trace(outcome, "even_cycle_hotpath", "planted_hotpath", 512, 2, 19);
  }
  hotpath.print(std::cout);
  std::cout << "\nExpected: fitted exponents approach the theory column as n\n"
               "grows; detection matches the oracle column on every row.\n";
  return ctx.finish(std::cout);
}
