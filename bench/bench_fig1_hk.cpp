// FIG1 — Figure 1 of the paper: the graph H_k.
//
// Machine-checks the construction's claimed properties across k:
//   * |V(H_k)| = O(k) (exactly 6k + 44 in this instantiation),
//   * diameter exactly 3 (the marker cliques collapse all distances),
//   * the marker cliques are the only large cliques (K_10 yes, K_11 no),
//   * the body contributes exactly 2k triangles outside the cliques.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/oracle.hpp"
#include "lowerbound/hk.hpp"
#include "support/combinatorics.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("fig1_hk", argc, argv);

  print_banner(std::cout, "FIG1: the Theorem 1.2 subgraph H_k",
               "size O(k), diameter 3, marker-clique structure");

  const std::vector<std::uint32_t> ks =
      ctx.smoke() ? std::vector<std::uint32_t>{1, 2, 4}
                  : std::vector<std::uint32_t>{1, 2, 3, 4, 6, 8, 12, 16};
  bench::ReportedTable table(
      ctx, "hk",
      {"k", "vertices", "6k+44", "edges", "diameter", "has K_10", "has K_11",
       "#triangles", "non-marker triangles (=6k)"});
  for (const std::uint32_t k : ks) {
    const auto hk = lb::build_hk(k);
    const std::uint64_t triangles = oracle::count_cliques(hk.graph, 3);
    // Triangles fully inside the marker structure: C(s,3) per clique plus
    // C(5,3) among special vertices minus the ones counted inside... the
    // special 5-clique's triangles are NOT inside any single marker clique,
    // so the fixed contribution is Σ C(s,3) + C(5,3).
    std::uint64_t marker_triangles = binomial(5, 3);
    for (const std::uint32_t s : {6u, 7u, 8u, 9u, 10u})
      marker_triangles += binomial(s, 3);
    table.row()
        .cell(k)
        .cell(std::uint64_t{hk.graph.num_vertices()})
        .cell(std::uint64_t{6 * k + 44})
        .cell(hk.graph.num_edges())
        .cell(static_cast<std::uint64_t>(diameter(hk.graph)))
        .cell(oracle::has_clique(hk.graph, 10))
        .cell(oracle::has_clique(hk.graph, 11))
        .cell(triangles)
        .cell(triangles - marker_triangles);
  }
  table.print(std::cout);

  std::cout
      << "\nExpected: vertices == 6k+44, diameter == 3, K_10 present, K_11\n"
         "absent, and exactly 6k triangles outside the marker structure:\n"
         "2k body triangles plus 4k endpoint-corner-marker triangles (each\n"
         "endpoint closes one triangle with each of its k corners through\n"
         "their shared marker vertex).\n";
  return ctx.finish(std::cout);
}
