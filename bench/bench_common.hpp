// Shared harness for the bench binaries: every bench keeps printing its
// human-readable reproduction table(s) AND mirrors each row into a
// csd-bench-v1 BenchReport (obs/bench_report.hpp), so one `--json DIR` flag
// turns any bench into a machine-diffable artifact for tools/bench_compare.py.
//
// Usage pattern (see any bench_*.cpp):
//
//   int main(int argc, char** argv) {
//     bench::BenchContext ctx("fig1_hk", argc, argv);
//     bench::ReportedTable table(ctx, "hk", {"k", "vertices", ...});
//     for (...) table.row().cell(k).cell(n)...;
//     table.print(std::cout);
//     return ctx.finish(std::cout);
//   }
//
// Flags understood here (unknown flags are left for the bench to parse):
//   --smoke       shrink the workload (each bench checks ctx.smoke());
//                 recorded in the report so baselines can't be compared
//                 against full runs by mistake
//   --json DIR    write BENCH_<name>.json into DIR at ctx.finish()
//   --trace FILE  benches that run live instances (and opt in via
//                 ctx.trace_options()) concatenate one stamped JSONL trace
//                 per instance into FILE for `csd analyze` /
//                 tools/trace_report.py; benches without live runs ignore it
//   --metrics-out FILE / --metrics-period MS / --blackbox FILE
//                 same csd-metrics-v2 plane as the csd CLI: benches that run
//                 live engines pass ctx.telemetry() into their configs; the
//                 sampler appends JSONL to FILE while the bench runs, and
//                 ctx.finish() stops it and writes the flight-recorder dump.
//                 Neither flag present -> ctx.telemetry() is nullptr and the
//                 measured workload is byte-for-byte the uninstrumented one
//                 (the bench-smoke overhead gate in CI holds this to <= 3%)
//
// Determinism contract: everything a ReportedTable records is a pure
// function of the workload (cells carry the raw numeric values, not the
// formatted strings), so reports are bit-identical across re-runs and
// thread counts. Wall clock and git SHA live in the report's "env" object.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/metrics_v2.hpp"
#include "obs/round_trace.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace csd::bench {

/// Per-binary harness state: flag parsing + the BenchReport being built.
class BenchContext {
 public:
  BenchContext(std::string name, int argc, char** argv)
      : report_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        smoke_ = true;
      } else if (arg == "--json") {
        CSD_CHECK_MSG(i + 1 < argc, "--json needs a directory");
        json_dir_ = argv[++i];
      } else if (arg == "--trace") {
        CSD_CHECK_MSG(i + 1 < argc, "--trace needs a file");
        trace_path_ = argv[++i];
      } else if (arg == "--metrics-out") {
        CSD_CHECK_MSG(i + 1 < argc, "--metrics-out needs a file");
        metrics_path_ = argv[++i];
      } else if (arg == "--metrics-period") {
        CSD_CHECK_MSG(i + 1 < argc, "--metrics-period needs milliseconds");
        metrics_period_ms_ = std::stoull(argv[++i]);
        CSD_CHECK_MSG(metrics_period_ms_ >= 1,
                      "--metrics-period wants milliseconds >= 1");
      } else if (arg == "--blackbox") {
        CSD_CHECK_MSG(i + 1 < argc, "--blackbox needs a file");
        blackbox_path_ = argv[++i];
      }
    }
    report_.set_smoke(smoke_);
    if (!metrics_path_.empty() || !blackbox_path_.empty()) {
      telemetry_ = std::make_unique<obs::Telemetry>();
      if (!metrics_path_.empty())
        telemetry_->start_sampler(metrics_path_, metrics_period_ms_);
    }
  }

  bool smoke() const noexcept { return smoke_; }
  obs::BenchReport& report() noexcept { return report_; }

  /// The optional csd-metrics-v2 plane: nullptr unless --metrics-out or
  /// --blackbox was given, so the default bench run pays nothing. Benches
  /// with live engine runs forward this into their NetworkConfig /
  /// detector configs; pure-math benches can ignore it.
  obs::Telemetry* telemetry() const noexcept { return telemetry_.get(); }

  bool tracing() const noexcept { return !trace_path_.empty(); }

  /// Trace options for live runs: enabled iff --trace was given, per-edge
  /// attribution on, per-node arrays off (edges are what the congestion
  /// analyses read, and per-node rows dominate memory on big hosts).
  obs::TraceOptions trace_options() const {
    obs::TraceOptions options;
    options.enabled = tracing();
    options.per_node = false;
    options.per_edge = true;
    return options;
  }

  /// The --trace output stream, opened on first use.
  std::ostream& trace_stream() {
    CSD_CHECK_MSG(tracing(), "trace_stream() without --trace");
    if (!trace_os_.is_open()) {
      trace_os_.open(trace_path_);
      CSD_CHECK_MSG(trace_os_.good(),
                    "cannot write trace file '" << trace_path_ << "'");
    }
    return trace_os_;
  }

  BenchContext& param(const std::string& key, obs::Json value) {
    report_.param(key, std::move(value));
    return *this;
  }
  BenchContext& seed(std::uint64_t seed) {
    report_.seed(seed);
    return *this;
  }

  /// Call as `return ctx.finish(std::cout);` — stamps the wall clock and
  /// writes BENCH_<name>.json when --json was given.
  int finish(std::ostream& os) {
    report_.set_wall_clock_ms(timer_.elapsed_ms());
    if (telemetry_ != nullptr) {
      telemetry_->stop_sampler();
      if (!metrics_path_.empty())
        os << "[metrics] wrote " << metrics_path_ << '\n';
      // A bench exits cleanly by construction; the dump is still written
      // (reason bench-exit) so the overhead gate exercises the full path.
      if (!blackbox_path_.empty() &&
          telemetry_->dump_blackbox(blackbox_path_, "bench-exit"))
        os << "[blackbox] wrote " << blackbox_path_ << '\n';
    }
    if (!json_dir_.empty()) {
      const std::string path = report_.write_into(json_dir_);
      os << "\n[json] wrote " << path << '\n';
    }
    if (trace_os_.is_open()) os << "[trace] wrote " << trace_path_ << '\n';
    return 0;
  }

 private:
  obs::BenchReport report_;
  obs::WallTimer timer_;
  bool smoke_ = false;
  std::string json_dir_;
  std::string trace_path_;
  std::ofstream trace_os_;
  std::string metrics_path_;
  std::string blackbox_path_;
  std::uint64_t metrics_period_ms_ = 250;
  std::unique_ptr<obs::Telemetry> telemetry_;
};

/// A Table whose rows are mirrored into the context's BenchReport: row i of
/// section S becomes measurement "S/row<i>" with one value per column,
/// keyed by the column header. Numeric cells record the raw value (the
/// printed table may round doubles; the report never does).
class ReportedTable {
 public:
  ReportedTable(BenchContext& ctx, std::string section,
                std::vector<std::string> headers)
      : ctx_(ctx),
        section_(std::move(section)),
        headers_(headers),
        table_(std::move(headers)) {}

  class Row {
   public:
    Row& cell(const std::string& value) { return add(value, obs::Json(value)); }
    Row& cell(const char* value) {
      return add(value, obs::Json(std::string(value)));
    }
    Row& cell(double value, int precision = 3) {
      owner_->table_.cell(value, precision);
      record(obs::Json(value));
      return *this;
    }
    Row& cell(bool value) { return add(value, obs::Json(value)); }
    template <typename T>
      requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    Row& cell(T value) {
      return add(value, obs::Json(value));
    }

   private:
    friend class ReportedTable;
    Row(ReportedTable* owner, obs::BenchReport::Measurement* m)
        : owner_(owner), measurement_(m) {}

    template <typename T>
    Row& add(const T& value, obs::Json json) {
      owner_->table_.cell(value);
      record(std::move(json));
      return *this;
    }
    void record(obs::Json json) {
      const std::size_t col = column_++;
      const std::string& key = col < owner_->headers_.size()
                                   ? owner_->headers_[col]
                                   : "col" + std::to_string(col);
      measurement_->value(key, std::move(json));
    }

    ReportedTable* owner_;
    obs::BenchReport::Measurement* measurement_;
    std::size_t column_ = 0;
  };

  Row row() {
    table_.row();
    auto& m = ctx_.report().measurement(
        section_ + "/row" + std::to_string(next_row_++));
    return Row(this, &m);
  }

  std::size_t row_count() const noexcept { return table_.row_count(); }
  void print(std::ostream& os) const { table_.print(os); }

 private:
  BenchContext& ctx_;
  std::string section_;
  std::vector<std::string> headers_;
  Table table_;
  std::size_t next_row_ = 0;
};

}  // namespace csd::bench
