// RELATED — §1.2: exact detection vs the property-testing relaxation.
//
// The paper stresses it solves the *exact* H-freeness problem, in contrast
// to the distributed property-testing line ([CFSV16] etc.). We quantify
// that gap: the edge-sampling tester runs in O(1) rounds independent of n
// and catches triangle-dense graphs, but is blind to isolated triangles —
// whereas exact detection (neighborhood exchange) pays Θ(Δ·log n/B) rounds
// and never misses.
#include <iostream>

#include "bench_common.hpp"
#include "detect/clique_detect.hpp"
#include "detect/pipelined_cycle.hpp"
#include "detect/triangle_tester.hpp"
#include "detect/weighted_cycle.hpp"
#include "graph/builders.hpp"
#include "graph/oracle.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace csd;

/// Three hubs of degree ~`leaves`+2 sharing the only triangle: the tester
/// must sample exactly the two co-hub ports at one hub to find it.
Graph hidden_triangle_host(Vertex leaves_per_hub) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  for (Vertex hub = 0; hub < 3; ++hub) {
    const Vertex first = g.add_vertices(leaves_per_hub);
    for (Vertex leaf = 0; leaf < leaves_per_hub; ++leaf)
      g.add_edge(hub, first + leaf);
  }
  return g;
}

double tester_rate(const Graph& g, std::uint32_t query_rounds,
                   std::uint32_t trials) {
  detect::TriangleTesterConfig cfg;
  cfg.query_rounds = query_rounds;
  std::uint32_t hits = 0;
  for (std::uint32_t t = 0; t < trials; ++t)
    hits += detect::test_triangle_freeness(g, cfg, 32, 500 + t).detected;
  return static_cast<double>(hits) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("related_testing", argc, argv);
  const std::uint32_t tester_trials = ctx.smoke() ? 8 : 30;
  ctx.param("tester_trials", tester_trials);
  ctx.seed(31).seed(500);

  print_banner(std::cout,
               "RELATED: exact triangle detection vs property testing",
               "tester: 16 query rounds, rate over " +
                   std::to_string(tester_trials) +
                   " seeds; exact: neighborhood exchange, deterministic");

  Rng rng(31);
  struct Host {
    std::string name;
    Graph g;
    const char* farness;
  };
  Graph lone_triangle = hidden_triangle_host(65);
  std::vector<Host> hosts;
  hosts.push_back({"K_20", build::complete(20), "far from triangle-free"});
  hosts.push_back({"G(60,0.4)", build::gnp(60, 0.4, rng), "far"});
  hosts.push_back({"G(60,0.08)", build::gnp(60, 0.08, rng), "few triangles"});
  hosts.push_back({"3 hubs, 1 triangle", std::move(lone_triangle), "eps-close"});
  hosts.push_back({"Petersen", build::petersen(), "triangle-free"});
  hosts.push_back({"K_{9,9}", build::complete_bipartite(9, 9),
                   "triangle-free"});

  bench::ReportedTable table(ctx, "tester_vs_exact",
                             {"host", "n", "truth", "tester rate",
                              "tester rounds", "exact verdict",
                              "exact rounds"});
  for (const auto& host : hosts) {
    const bool truth = oracle::has_clique(host.g, 3);
    const auto exact = detect::detect_clique(host.g, 3, 32, 1);
    detect::TriangleTesterConfig cfg;
    cfg.query_rounds = 16;
    table.row()
        .cell(host.name)
        .cell(std::uint64_t{host.g.num_vertices()})
        .cell(truth)
        .cell(tester_rate(host.g, 16, tester_trials), 2)
        .cell(detect::triangle_tester_round_budget(cfg))
        .cell(exact.detected)
        .cell(exact.metrics.rounds);
  }
  table.print(std::cout);

  print_banner(std::cout,
               "Weighted cycle detection ([CKP17], the other §1.2 context)",
               "C_8 of weight exactly W on a 60-vertex host; tokens cannot "
               "be deduplicated across weights");
  bench::ReportedTable weighted(ctx, "weighted",
                                {"W", "round budget", "unweighted C_8 budget",
                                 "budget ratio"});
  const Vertex wn = 60;
  for (const std::uint64_t w : {0ull, 7ull, 63ull, 511ull}) {
    detect::WeightedCycleConfig wcfg;
    wcfg.length = 8;
    wcfg.target_weight = w;
    const auto budget = detect::weighted_cycle_round_budget(wn, wcfg);
    const auto plain = detect::pipelined_cycle_round_budget(wn, 8);
    weighted.row()
        .cell(w)
        .cell(budget)
        .cell(plain)
        .cell(static_cast<double>(budget) / static_cast<double>(plain), 1);
  }
  weighted.print(std::cout);
  std::cout
      << "\nThe weight target multiplies the pipeline depth by W+1: for\n"
         "W = poly(n) that is the near-quadratic regime in which [CKP17]\n"
         "proved the first Omega~(n^2) CONGEST bounds — Theorem 1.2 of the\n"
         "paper then achieved superlinear hardness with NO weights.\n";

  std::cout
      << "\nExpected: the tester's rounds are constant and its rate is ~1 on\n"
         "triangle-dense hosts and 0 on triangle-free ones, but poor on the\n"
         "eps-close host (one triangle hidden among three high-degree\n"
         "hubs) — which the exact algorithm always finds, at a\n"
         "Theta(Delta log n / B) round cost. The paper's lower bounds\n"
         "(Thm 4.1, Thm 5.1) price exactly this exactness.\n";
  return ctx.finish(std::cout);
}
