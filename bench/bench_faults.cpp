// FAULTS — detection under faulty links: accuracy and overhead vs drop
// probability for the THM11 even-cycle detector and the UPPER clique
// (triangle) detector.
//
// Three reproduction tables per detector:
//   1. Reliable ARQ transport: the verdict stays bit-identical to the
//      fault-free synchronous run at every drop rate (accuracy 1.0); the
//      price is transport overhead (seq/CRC fields, acks, retransmissions)
//      and virtual time, both growing with the drop rate. Payload bits
//      never change — the CONGEST accounting is fault-invariant.
//   2. Raw links: drops starve synchronizer ports, so runs stall and the
//      detector silently loses instances; accuracy decays as drop grows.
//   3. Crash recovery: a scheduled mid-run crash with RecoveryPolicy off
//      vs on — recovery-off loses the crashed node's verdict and never
//      completes; recovery-on rejoins the node by inbox-log replay and
//      restores both accuracy columns to 1.0 at a measured overhead.
//
// All faults are seeded: re-running this binary reproduces every number.
// `--jobs N` fans the per-instance runs of each sweep cell over N worker
// threads (0 = all hardware threads); the reduction is sequential in
// instance order, so every table is bit-identical for every N.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "congest/async.hpp"
#include "congest/network.hpp"
#include "congest/run_batch.hpp"
#include "detect/clique_detect.hpp"
#include "detect/even_cycle.hpp"
#include "graph/builders.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace csd;

constexpr double kCorrupt = 0.05;
constexpr int kInstances = 10;  // pool size; g_instances <= kInstances run

unsigned g_jobs = 1;
int g_instances = kInstances;
std::vector<double> g_drop_rates = {0.0, 0.05, 0.1, 0.2, 0.3};

struct Detector {
  const char* name;
  congest::ProgramFactory factory;
  std::uint64_t bandwidth;
  std::uint64_t budget;  // rounds / pulses
};

struct SweepPoint {
  double accuracy = 0.0;       // async verdict == fault-free sync verdict
  double completed = 0.0;      // fraction of runs that fully halted
  double avg_pulses = 0.0;
  double avg_payload_bits = 0.0;
  double avg_transport_bits = 0.0;
  double avg_retransmissions = 0.0;
  double avg_stalled = 0.0;
  double avg_virtual_time = 0.0;
};

/// One (detector, drop, mode) cell: run `kInstances` seeded instances on
/// planted/control graphs and compare against the clean synchronous run.
/// The instances are independent, so they fan out over the run driver's
/// worker pool; the averages are reduced sequentially in instance order,
/// keeping every double sum bit-stable across jobs counts.
SweepPoint sweep(const Detector& det, const Graph& (*instance)(int),
                 double drop, congest::TransportMode mode) {
  struct InstanceResult {
    bool match = false;
    bool completed = false;
    std::uint64_t pulses = 0;
    std::uint64_t payload_bits = 0;
    std::uint64_t transport_bits = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t stalled = 0;
    std::uint64_t virtual_time = 0;
  };
  std::vector<InstanceResult> results(static_cast<std::size_t>(g_instances));
  const congest::RunBatch batch(g_jobs);
  batch.for_each_index(static_cast<std::size_t>(g_instances),
                       [&](std::size_t idx) {
    const Graph& g = instance(static_cast<int>(idx));
    const std::uint64_t seed = 100 + static_cast<std::uint64_t>(idx);

    congest::NetworkConfig sync_cfg;
    sync_cfg.bandwidth = det.bandwidth;
    sync_cfg.seed = seed;
    sync_cfg.max_rounds = det.budget;
    const auto truth = congest::run_congest(g, sync_cfg, det.factory);

    congest::AsyncConfig cfg;
    cfg.bandwidth = det.bandwidth;
    cfg.seed = seed;
    cfg.max_pulses = det.budget;
    cfg.faults.drop = drop;
    cfg.faults.corrupt = drop == 0.0 ? 0.0 : kCorrupt;
    cfg.transport = mode;
    const auto outcome = congest::run_async(g, cfg, det.factory);

    auto& r = results[idx];
    r.match = outcome.detected == truth.detected;
    r.completed = outcome.completed;
    r.pulses = outcome.pulses;
    r.payload_bits = outcome.payload_bits;
    r.transport_bits = outcome.transport_bits;
    r.retransmissions = outcome.faults.retransmissions;
    r.stalled = outcome.faults.stalled_nodes.size();
    r.virtual_time = outcome.virtual_time;
  });

  SweepPoint point;
  for (const auto& r : results) {
    point.accuracy += r.match ? 1.0 : 0.0;
    point.completed += r.completed ? 1.0 : 0.0;
    point.avg_pulses += static_cast<double>(r.pulses);
    point.avg_payload_bits += static_cast<double>(r.payload_bits);
    point.avg_transport_bits += static_cast<double>(r.transport_bits);
    point.avg_retransmissions += static_cast<double>(r.retransmissions);
    point.avg_stalled += static_cast<double>(r.stalled);
    point.avg_virtual_time += static_cast<double>(r.virtual_time);
  }
  point.accuracy /= g_instances;
  point.completed /= g_instances;
  point.avg_pulses /= g_instances;
  point.avg_payload_bits /= g_instances;
  point.avg_transport_bits /= g_instances;
  point.avg_retransmissions /= g_instances;
  point.avg_stalled /= g_instances;
  point.avg_virtual_time /= g_instances;
  return point;
}

struct RecoveryPoint {
  double accuracy = 0.0;           // detected == fault-free sync verdict
  double survivor_accuracy = 0.0;  // survivors' view == fault-free verdict
  double completed = 0.0;
  double avg_recovered = 0.0;
  double avg_replayed = 0.0;
  double avg_virtual_time = 0.0;
  double avg_transport_bits = 0.0;
};

/// One (detector, drop, recovery on/off) cell under a scheduled mid-run
/// crash on reliable links. Recovery-off shows what the crash costs the
/// survivor verdict; recovery-on shows what the rejoin-replay costs in
/// virtual time and transport bits to win that verdict back.
RecoveryPoint recovery_sweep(const Detector& det, const Graph& (*instance)(int),
                             double drop, bool recover) {
  struct InstanceResult {
    bool match = false;
    bool survivor_match = false;
    bool completed = false;
    std::uint64_t recovered = 0;
    std::uint64_t replayed = 0;
    std::uint64_t virtual_time = 0;
    std::uint64_t transport_bits = 0;
  };
  std::vector<InstanceResult> results(static_cast<std::size_t>(g_instances));
  const congest::RunBatch batch(g_jobs);
  batch.for_each_index(static_cast<std::size_t>(g_instances),
                       [&](std::size_t idx) {
    const Graph& g = instance(static_cast<int>(idx));
    const std::uint64_t seed = 100 + static_cast<std::uint64_t>(idx);

    congest::NetworkConfig sync_cfg;
    sync_cfg.bandwidth = det.bandwidth;
    sync_cfg.seed = seed;
    sync_cfg.max_rounds = det.budget;
    const auto truth = congest::run_congest(g, sync_cfg, det.factory);

    congest::AsyncConfig cfg;
    cfg.bandwidth = det.bandwidth;
    cfg.seed = seed;
    cfg.max_pulses = det.budget;
    cfg.faults.drop = drop;
    cfg.faults.crashes.push_back({1, 2});
    cfg.transport = congest::TransportMode::Reliable;
    cfg.recovery.enabled = recover;
    cfg.recovery.rejoin_delay = 1;
    const auto outcome = congest::run_async(g, cfg, det.factory);

    auto& r = results[idx];
    r.match = outcome.detected == truth.detected;
    r.survivor_match = outcome.faults.detected_by_survivors == truth.detected;
    r.completed = outcome.completed;
    r.recovered = outcome.faults.recovered_nodes.size();
    r.replayed = outcome.faults.replayed_pulses;
    r.virtual_time = outcome.virtual_time;
    r.transport_bits = outcome.transport_bits;
  });

  RecoveryPoint point;
  for (const auto& r : results) {
    point.accuracy += r.match ? 1.0 : 0.0;
    point.survivor_accuracy += r.survivor_match ? 1.0 : 0.0;
    point.completed += r.completed ? 1.0 : 0.0;
    point.avg_recovered += static_cast<double>(r.recovered);
    point.avg_replayed += static_cast<double>(r.replayed);
    point.avg_virtual_time += static_cast<double>(r.virtual_time);
    point.avg_transport_bits += static_cast<double>(r.transport_bits);
  }
  point.accuracy /= g_instances;
  point.survivor_accuracy /= g_instances;
  point.completed /= g_instances;
  point.avg_recovered /= g_instances;
  point.avg_replayed /= g_instances;
  point.avg_virtual_time /= g_instances;
  point.avg_transport_bits /= g_instances;
  return point;
}

/// Instance pools (built once; half planted, half control).
const Graph& cycle_instance(int i) {
  static std::vector<Graph> pool = [] {
    std::vector<Graph> graphs;
    Rng rng(2024);
    for (int k = 0; k < kInstances; ++k) {
      Graph g = build::random_tree(40, rng);
      if (k % 2 == 0) build::plant_subgraph(g, build::cycle(4), rng);
      graphs.push_back(std::move(g));
    }
    return graphs;
  }();
  return pool[static_cast<std::size_t>(i)];
}

const Graph& triangle_instance(int i) {
  static std::vector<Graph> pool = [] {
    std::vector<Graph> graphs;
    Rng rng(4048);
    for (int k = 0; k < kInstances; ++k)
      graphs.push_back(build::gnp(24, k % 2 == 0 ? 0.30 : 0.12, rng));
    return graphs;
  }();
  return pool[static_cast<std::size_t>(i)];
}

void run_tables(bench::BenchContext& ctx, const char* slug,
                const Detector& det, const Graph& (*instance)(int)) {
  bench::ReportedTable reliable(ctx, std::string(slug) + "_reliable",
                                {"drop", "accuracy", "pulses", "payload bits",
                                 "transport bits", "retrans", "virt time"});
  for (const double drop : g_drop_rates) {
    const auto p = sweep(det, instance, drop, congest::TransportMode::Reliable);
    reliable.row()
        .cell(drop, 2)
        .cell(p.accuracy, 2)
        .cell(p.avg_pulses, 1)
        .cell(p.avg_payload_bits, 0)
        .cell(p.avg_transport_bits, 0)
        .cell(p.avg_retransmissions, 1)
        .cell(p.avg_virtual_time, 0);
  }
  std::cout << "\n[" << det.name << "] reliable ARQ transport "
            << "(corrupt = " << kCorrupt << " when drop > 0)\n";
  reliable.print(std::cout);

  bench::ReportedTable raw(ctx, std::string(slug) + "_raw",
                           {"drop", "accuracy", "completed", "stalled nodes",
                            "pulses", "payload bits"});
  for (const double drop : g_drop_rates) {
    const auto p = sweep(det, instance, drop, congest::TransportMode::Raw);
    raw.row()
        .cell(drop, 2)
        .cell(p.accuracy, 2)
        .cell(p.completed, 2)
        .cell(p.avg_stalled, 1)
        .cell(p.avg_pulses, 1)
        .cell(p.avg_payload_bits, 0);
  }
  std::cout << "\n[" << det.name << "] raw links (no transport)\n";
  raw.print(std::cout);

  bench::ReportedTable recovery(ctx, std::string(slug) + "_recovery",
                                {"drop", "recovery", "accuracy", "survivors",
                                 "completed", "recovered", "replayed",
                                 "virt time", "transport bits"});
  for (const double drop : g_drop_rates) {
    for (const bool recover : {false, true}) {
      const auto p = recovery_sweep(det, instance, drop, recover);
      recovery.row()
          .cell(drop, 2)
          .cell(recover ? "on" : "off")
          .cell(p.accuracy, 2)
          .cell(p.survivor_accuracy, 2)
          .cell(p.completed, 2)
          .cell(p.avg_recovered, 1)
          .cell(p.avg_replayed, 1)
          .cell(p.avg_virtual_time, 0)
          .cell(p.avg_transport_bits, 0);
    }
  }
  std::cout << "\n[" << det.name << "] crash at round 2, reliable links: "
            << "recovery overhead vs survivor accuracy\n";
  recovery.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("faults", argc, argv);
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--jobs") == 0)
      g_jobs = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
  if (ctx.smoke()) {
    g_instances = 4;
    g_drop_rates = {0.0, 0.1, 0.3};
  }
  ctx.param("instances", g_instances).param("corrupt", kCorrupt);
  ctx.seed(2024).seed(4048).seed(100);
  ctx.report().env("jobs", congest::resolve_jobs(g_jobs));
  print_banner(std::cout,
               "FAULTS: detection accuracy & overhead vs drop probability",
               "reliable ARQ restores the synchronous verdict bit-for-bit; "
               "raw links lose instances to stalls (" +
                   std::to_string(congest::resolve_jobs(g_jobs)) +
                   " worker thread(s))");

  detect::EvenCycleConfig cycle_cfg;
  cycle_cfg.k = 2;
  Detector thm11{
      "THM11 C_4 even-cycle", detect::even_cycle_program(cycle_cfg), 64,
      detect::make_even_cycle_schedule(40, cycle_cfg).total_rounds() + 1};
  run_tables(ctx, "cycle", thm11, cycle_instance);

  Detector upper{"UPPER K_3 clique", detect::clique_detect_program(3), 16,
                 0};
  // Budget needs the densest instance's max degree.
  std::uint64_t max_degree = 0;
  for (int i = 0; i < g_instances; ++i)
    max_degree = std::max<std::uint64_t>(max_degree,
                                         triangle_instance(i).max_degree());
  upper.budget = detect::clique_detect_round_budget(24, max_degree, 16) + 2;
  run_tables(ctx, "triangle", upper, triangle_instance);

  std::cout << "\nAll fault draws are seeded; the tables are reproducible "
               "run-to-run.\n";
  return ctx.finish(std::cout);
}
