// LEM13 — Lemma 1.3: any graph with m edges has at most O(m^{s/2}) copies
// of K_s (the engine of the Ω̃(n^{1-2/s}) congested-clique listing bound).
//
// Exhaustive K_s counting across graph families, normalized by m^{s/2}.
// The ratio must stay <= 1 everywhere, and complete graphs should approach
// the extremal constant 2^{s/2}/s!.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/builders.hpp"
#include "lowerbound/turan_counts.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("lem13_cliques", argc, argv);

  print_banner(std::cout, "LEM13: #K_s vs m^{s/2} across graph families",
               "ratio = count / m^{s/2}; must stay <= 1 (Lemma 1.3)");

  Rng rng(4242);
  ctx.seed(4242);
  struct Host {
    Graph g;
    const char* name;
  };
  std::vector<Host> hosts;
  hosts.push_back({build::complete(10), "K_10"});
  hosts.push_back({build::complete(16), "K_16"});
  if (!ctx.smoke()) hosts.push_back({build::complete(24), "K_24"});
  hosts.push_back({build::complete_bipartite(10, 10), "K_{10,10}"});
  hosts.push_back({build::gnp(24, 0.3, rng), "G(24,0.3)"});
  if (!ctx.smoke()) hosts.push_back({build::gnp(24, 0.7, rng), "G(24,0.7)"});
  hosts.push_back({build::grid(6, 6), "grid 6x6"});
  hosts.push_back({build::petersen(), "Petersen"});
  hosts.push_back({build::polarity_graph(5), "polarity ER_5"});

  for (const std::uint32_t s : {3u, 4u, 5u}) {
    bench::ReportedTable table(ctx, "s" + std::to_string(s),
                               {"family", "n", "m", "#K_s", "m^{s/2}", "ratio",
                                "clique-host limit 2^{s/2}/s!"});
    for (const auto& host : hosts) {
      const auto report = lb::check_clique_count_bound(host.g, s, host.name);
      table.row()
          .cell(host.name)
          .cell(report.n)
          .cell(report.m)
          .cell(report.clique_count)
          .cell(report.bound, 1)
          .cell(report.ratio, 4)
          .cell(lb::clique_host_limit_ratio(s), 4);
    }
    std::cout << "\n-- s = " << s << " --\n";
    table.print(std::cout);
  }
  std::cout
      << "\nExpected: every ratio <= 1; complete graphs climb toward the\n"
         "limit column as they grow; triangle-free families (bipartite,\n"
         "grid, Petersen) sit at 0 for s >= 3.\n";
  return ctx.finish(std::cout);
}
