// THM51 — Theorem 5.1 / §5 (Figure 3): one-round triangle detection needs
// bandwidth B = Ω(Δ).
//
// Tables:
//   1. Distributional error under μ vs bandwidth for the Bloom-sketch
//      protocol (threshold at B ≈ n, matching Ω(Δ) up to constants) and
//      the explicit-id-sample protocol (threshold at B ≈ n log n — the
//      log-factor gap the paper leaves open).
//   2. Empirical information at node a conditioned on X_ab = X_ac = 1:
//      the Lemma 5.4 decomposition I(X_bc; M_ba) + I(X_bc; M_ca) and the
//      Lemma 5.3 accept-bit proxy I(X_bc; acc_a) — both near zero for
//      B << n and rising once B ≈ n.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "lowerbound/oneround.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("thm51_oneround", argc, argv);
  const std::uint64_t samples = ctx.smoke() ? 2000 : 20000;
  const std::uint64_t info_samples = ctx.smoke() ? 6000 : 60000;
  ctx.param("samples", samples).param("info_samples", info_samples);
  ctx.seed(31).seed(37).seed(51).seed(41);

  print_banner(std::cout,
               "THM51: one-round error vs bandwidth on the template graph",
               "n = 64 spokes per special node; " + std::to_string(samples) +
                   " samples per cell; trivial error = 1/8 = 0.125");

  const auto bloom = lb::make_bloom_protocol(17);
  const auto sample = lb::make_id_sample_protocol(17);
  bench::ReportedTable error(ctx, "error",
                             {"B bits", "B/n", "bloom error", "bloom FP",
                              "bloom FN", "id-sample error", "id-sample FN"});
  const std::uint64_t n = 64;
  const std::vector<std::uint64_t> bandwidths =
      ctx.smoke()
          ? std::vector<std::uint64_t>{2, 16, 64, 256, 4096}
          : std::vector<std::uint64_t>{2, 8, 16, 32, 64, 128, 256, 1024, 4096};
  for (const std::uint64_t b : bandwidths) {
    const auto bs = lb::evaluate_one_round(*bloom, n, b, samples, 31);
    const auto is = lb::evaluate_one_round(*sample, n, b, samples, 37);
    error.row()
        .cell(b)
        .cell(static_cast<double>(b) / static_cast<double>(n), 2)
        .cell(bs.error, 4)
        .cell(bs.false_positive, 4)
        .cell(bs.false_negative, 4)
        .cell(is.error, 4)
        .cell(is.false_negative, 4);
  }
  error.print(std::cout);
  std::cout
      << "\nExpected: bloom error stays near the trivial 1/8 while B << n\n"
         "and collapses once B = Omega(n); the id-sample protocol needs an\n"
         "extra ~65x (its records carry 65 bits each) — the log-factor gap\n"
         "of Section 1.1. Bloom FN is exactly 0 (no false negatives).\n";

  print_banner(std::cout,
               "Why 'one round' matters: the 3-round protocol at O(log n) "
               "bits",
               "round 1 flags specials, round 2 asks by id, round 3 answers");
  bench::ReportedTable rounds3(
      ctx, "rounds3",
      {"B bits", "B/n", "3-round error", "bloom error (1 round)"});
  for (const std::uint64_t b : {8u, 16u, 32u, 64u}) {
    const auto multi = lb::evaluate_interactive(n, b, samples, 51);
    const auto one = lb::evaluate_one_round(*bloom, n, b, samples, 51);
    rounds3.row()
        .cell(b)
        .cell(static_cast<double>(b) / static_cast<double>(n), 2)
        .cell(multi.error, 4)
        .cell(one.error, 4);
  }
  rounds3.print(std::cout);
  std::cout
      << "\nExpected: once B fits one identifier (~"
      << wire::bits_for(n * n * n) + 1
      << " bits) the 3-round error is exactly 0 while every one-round\n"
         "protocol still hugs the trivial error — the Omega(Delta) wall is\n"
         "a one-round phenomenon, which is precisely how Theorem 5.1 is\n"
         "stated.\n";


  print_banner(std::cout,
               "Information at node a, conditioned on X_ab = X_ac = 1",
               "n = 12; plug-in estimators over 60000 samples; Lemma 5.3 "
               "needs >= 0.3 somewhere for a correct protocol");
  bench::ReportedTable info(ctx, "info",
                            {"B bits", "B/n", "I(X_bc; msgs) raw",
                             "shuffle bias", "corrected", "I(X_bc; acc_a)",
                             "error at this B"});
  const std::uint64_t n_small = 12;
  const std::vector<std::uint64_t> info_bandwidths =
      ctx.smoke() ? std::vector<std::uint64_t>{1, 4, 16, 64}
                  : std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32, 64, 128};
  for (const std::uint64_t b : info_bandwidths) {
    const auto stats =
        lb::evaluate_one_round(*bloom, n_small, b, info_samples, 41);
    info.row()
        .cell(b)
        .cell(static_cast<double>(b) / static_cast<double>(n_small), 2)
        .cell(stats.info_messages, 4)
        .cell(stats.info_messages_null, 4)
        .cell(std::max(0.0, stats.info_messages - stats.info_messages_null),
              4)
        .cell(stats.info_accept, 4)
        .cell(stats.error, 4);
  }
  info.print(std::cout);
  std::cout
      << "\nReading guide: the corrected message information is reliable\n"
         "only while 2^B << #samples (B <= 8 here); in that regime it obeys\n"
         "Lemma 5.4's O(|M|/n) growth. The accept-bit column (a 1-bit\n"
         "variable, estimable at every B) is the Lemma 5.3 proxy: it stays\n"
         "near 0 while B << n and crosses the 0.3 threshold around B ~ n —\n"
         "exactly when the error collapses. That conjunction is the\n"
         "mechanism behind the Omega(Delta) bandwidth bound.\n";
  return ctx.finish(std::cout);
}
