// THM51 — Theorem 5.1 / §5 (Figure 3): one-round triangle detection needs
// bandwidth B = Ω(Δ).
//
// Tables:
//   1. Distributional error under μ vs bandwidth for the Bloom-sketch
//      protocol (threshold at B ≈ n, matching Ω(Δ) up to constants) and
//      the explicit-id-sample protocol (threshold at B ≈ n log n — the
//      log-factor gap the paper leaves open).
//   2. Empirical information at node a conditioned on X_ab = X_ac = 1:
//      the Lemma 5.4 decomposition I(X_bc; M_ba) + I(X_bc; M_ca) and the
//      Lemma 5.3 accept-bit proxy I(X_bc; acc_a) — both near zero for
//      B << n and rising once B ≈ n. The information columns carry the
//      *unclamped* plug-in values: negative entries are finite-sample bias
//      made visible, not estimator bugs.
//   3. A small evaluate_one_round_batch fan-out whose per-seed rows are
//      bit-identical to sequential evaluate_one_round — the PR-time
//      baseline exercises the batched path on every platform.
//
// With --scale (nightly): the Bloom error-collapse threshold B*(n) is
// located per seed at n up to 131072 (geometric bracket + bisection over
// the permutation-free fast sampler), bootstrap-fitted against the Ω(Δ)
// theory exponent 1, and gated by tools/lb_gate.py; the word-sliced
// interactive evaluator contrasts the one-round wall with the 3-round
// O(log n) protocol at the same sizes.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "congest/run_batch.hpp"
#include "lowerbound/oneround.hpp"
#include "obs/lb_fit.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("thm51_oneround", argc, argv);
  bool scale = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--scale") scale = true;
  const std::uint64_t samples = ctx.smoke() ? 2000 : 20000;
  const std::uint64_t info_samples = ctx.smoke() ? 6000 : 60000;
  ctx.param("samples", samples)
      .param("info_samples", info_samples)
      .param("scale", scale);
  ctx.seed(31).seed(37).seed(51).seed(41);

  print_banner(std::cout,
               "THM51: one-round error vs bandwidth on the template graph",
               "n = 64 spokes per special node; " + std::to_string(samples) +
                   " samples per cell; trivial error = 1/8 = 0.125");

  const auto bloom = lb::make_bloom_protocol(17);
  const auto sample = lb::make_id_sample_protocol(17);
  bench::ReportedTable error(ctx, "error",
                             {"B bits", "B/n", "bloom error", "bloom FP",
                              "bloom FN", "id-sample error", "id-sample FN"});
  const std::uint64_t n = 64;
  const std::vector<std::uint64_t> bandwidths =
      ctx.smoke()
          ? std::vector<std::uint64_t>{2, 16, 64, 256, 4096}
          : std::vector<std::uint64_t>{2, 8, 16, 32, 64, 128, 256, 1024, 4096};
  for (const std::uint64_t b : bandwidths) {
    const auto bs = lb::evaluate_one_round(*bloom, n, b, samples, 31);
    const auto is = lb::evaluate_one_round(*sample, n, b, samples, 37);
    error.row()
        .cell(b)
        .cell(static_cast<double>(b) / static_cast<double>(n), 2)
        .cell(bs.error, 4)
        .cell(bs.false_positive, 4)
        .cell(bs.false_negative, 4)
        .cell(is.error, 4)
        .cell(is.false_negative, 4);
  }
  error.print(std::cout);
  std::cout
      << "\nExpected: bloom error stays near the trivial 1/8 while B << n\n"
         "and collapses once B = Omega(n); the id-sample protocol needs an\n"
         "extra ~65x (its records carry 65 bits each) — the log-factor gap\n"
         "of Section 1.1. Bloom FN is exactly 0 (no false negatives).\n";

  print_banner(std::cout,
               "Why 'one round' matters: the 3-round protocol at O(log n) "
               "bits",
               "round 1 flags specials, round 2 asks by id, round 3 answers");
  bench::ReportedTable rounds3(
      ctx, "rounds3",
      {"B bits", "B/n", "3-round error", "bloom error (1 round)"});
  for (const std::uint64_t b : {8u, 16u, 32u, 64u}) {
    const auto multi = lb::evaluate_interactive(n, b, samples, 51);
    const auto one = lb::evaluate_one_round(*bloom, n, b, samples, 51);
    rounds3.row()
        .cell(b)
        .cell(static_cast<double>(b) / static_cast<double>(n), 2)
        .cell(multi.error, 4)
        .cell(one.error, 4);
  }
  rounds3.print(std::cout);
  std::cout
      << "\nExpected: once B fits one identifier (~"
      << wire::bits_for(n * n * n) + 1
      << " bits) the 3-round error is exactly 0 while every one-round\n"
         "protocol still hugs the trivial error — the Omega(Delta) wall is\n"
         "a one-round phenomenon, which is precisely how Theorem 5.1 is\n"
         "stated.\n";


  print_banner(std::cout,
               "Information at node a, conditioned on X_ab = X_ac = 1",
               "n = 12; plug-in estimators over 60000 samples; Lemma 5.3 "
               "needs >= 0.3 somewhere for a correct protocol");
  bench::ReportedTable info(ctx, "info",
                            {"B bits", "B/n", "I(X_bc; msgs) raw",
                             "shuffle bias", "corrected", "I(X_bc; acc_a)",
                             "error at this B"});
  const std::uint64_t n_small = 12;
  const std::vector<std::uint64_t> info_bandwidths =
      ctx.smoke() ? std::vector<std::uint64_t>{1, 4, 16, 64}
                  : std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32, 64, 128};
  for (const std::uint64_t b : info_bandwidths) {
    const auto stats =
        lb::evaluate_one_round(*bloom, n_small, b, info_samples, 41);
    info.row()
        .cell(b)
        .cell(static_cast<double>(b) / static_cast<double>(n_small), 2)
        .cell(stats.info_messages_raw, 4)
        .cell(stats.info_messages_null_raw, 4)
        .cell(stats.info_messages_raw - stats.info_messages_null_raw, 4)
        .cell(stats.info_accept, 4)
        .cell(stats.error, 4);
  }
  info.print(std::cout);
  std::cout
      << "\nReading guide: the corrected message information is reliable\n"
         "only while 2^B << #samples (B <= 8 here); in that regime it obeys\n"
         "Lemma 5.4's O(|M|/n) growth. The raw columns are unclamped plug-in\n"
         "values, so slightly negative entries are finite-sample bias made\n"
         "visible (the shuffle control calibrates it). The accept-bit column\n"
         "(a 1-bit variable, estimable at every B) is the Lemma 5.3 proxy:\n"
         "it stays near 0 while B << n and crosses the 0.3 threshold around\n"
         "B ~ n — exactly when the error collapses. That conjunction is the\n"
         "mechanism behind the Omega(Delta) bandwidth bound.\n";

  print_banner(std::cout,
               "Batched evaluation: per-seed rows, bit-identical fan-out",
               "evaluate_one_round_batch at --jobs 3 equals sequential "
               "evaluate_one_round row by row");
  bench::ReportedTable batch_table(
      ctx, "batch",
      {"seed", "error", "FP", "FN", "fast error", "matches sequential"});
  {
    const std::uint64_t batch_n = 64, batch_b = 48, batch_samples = 1000;
    const std::vector<std::uint64_t> batch_seeds = {61, 62, 63};
    for (const auto s : batch_seeds) ctx.seed(s);
    lb::OneRoundBatchOptions opts;
    opts.jobs = 3;
    const auto rows = lb::evaluate_one_round_batch(
        *bloom, batch_n, batch_b, batch_samples, batch_seeds, opts);
    lb::OneRoundBatchOptions fast_opts;
    fast_opts.jobs = 3;
    fast_opts.fast_sampling = true;
    const auto fast_rows = lb::evaluate_one_round_batch(
        *bloom, batch_n, batch_b, batch_samples, batch_seeds, fast_opts);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto seq = lb::evaluate_one_round(*bloom, batch_n, batch_b,
                                              batch_samples, batch_seeds[i]);
      batch_table.row()
          .cell(batch_seeds[i])
          .cell(rows[i].error, 4)
          .cell(rows[i].false_positive, 4)
          .cell(rows[i].false_negative, 4)
          .cell(fast_rows[i].error, 4)
          .cell(rows[i].error == seq.error &&
                rows[i].info_messages_raw == seq.info_messages_raw);
    }
  }
  batch_table.print(std::cout);

  if (scale) {
    print_banner(std::cout,
                 "[scale] Bloom error-collapse threshold B*(n) to n = 131072",
                 "per seed: geometric bracket then bisection on the fast "
                 "sampler; fitted exponent gated at the Omega(Delta) "
                 "theory 1.0 by tools/lb_gate.py");
    bench::ReportedTable threshold(
        ctx, "scale_threshold",
        {"n", "seed", "B*", "B*/n", "error at B*"});
    bench::ReportedTable lb_fit(
        ctx, "lb_fit",
        {"group", "exponent", "lo95", "hi95", "theory", "tol", "points",
         "seeds"});
    const double target = 0.05;
    const std::uint64_t scale_samples = 256;
    const std::vector<std::uint64_t> scale_sizes = {16384, 65536, 131072};
    const std::vector<std::uint64_t> scale_seeds = {101, 102, 103, 104};

    // One cell = (size, seed); each runs its own bracket + bisection, so
    // cells fan across a RunBatch (per-cell state only, folded in order).
    struct Cell {
      std::uint64_t n = 0, seed = 0, threshold_b = 0;
      double error_at = 0;
    };
    std::vector<Cell> cells;
    for (const auto sz : scale_sizes)
      for (const auto sd : scale_seeds) cells.push_back({sz, sd, 0, 0.0});

    const auto error_at = [&](std::uint64_t nn, std::uint64_t b,
                              std::uint64_t sd) {
      lb::OneRoundBatchOptions opts;
      opts.jobs = 1;
      opts.fast_sampling = true;
      return lb::evaluate_one_round_batch(*bloom, nn, b, scale_samples, {sd},
                                          opts)[0]
          .error;
    };
    const congest::RunBatch cell_runner(0);
    cell_runner.for_each_index(cells.size(), [&](std::size_t i) {
      Cell& cell = cells[i];
      // Geometric bracket: first power-of-two multiple of n/64 with error
      // below target.
      std::uint64_t lo = std::max<std::uint64_t>(1, cell.n / 64);
      std::uint64_t hi = lo;
      double err = error_at(cell.n, hi, cell.seed);
      while (err > target && hi < 8 * cell.n) {
        lo = hi;
        hi *= 2;
        err = error_at(cell.n, hi, cell.seed);
      }
      // Bisect [lo, hi] down to ~3% relative resolution.
      double err_hi = err;
      for (int step = 0; step < 5 && hi - lo > hi / 32; ++step) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const double err_mid = error_at(cell.n, mid, cell.seed);
        if (err_mid <= target) {
          hi = mid;
          err_hi = err_mid;
        } else {
          lo = mid;
        }
      }
      cell.threshold_b = hi;
      cell.error_at = err_hi;
    });

    std::vector<std::pair<double, double>> xy;
    for (const auto& cell : cells) {
      threshold.row()
          .cell(cell.n)
          .cell(cell.seed)
          .cell(cell.threshold_b)
          .cell(static_cast<double>(cell.threshold_b) /
                    static_cast<double>(cell.n),
                3)
          .cell(cell.error_at, 4);
      xy.emplace_back(static_cast<double>(cell.n),
                      static_cast<double>(cell.threshold_b));
    }
    threshold.print(std::cout);
    const auto fit = obs::bootstrap_power_law(xy, 200, 7);
    CSD_CHECK(fit.has_value());
    lb_fit.row()
        .cell("bloom-threshold")
        .cell(fit->fit.exponent, 4)
        .cell(fit->exponent_lo, 4)
        .cell(fit->exponent_hi, 4)
        .cell(1.0, 4)
        .cell(0.2, 3)
        .cell(static_cast<std::uint64_t>(scale_sizes.size()))
        .cell(static_cast<std::uint64_t>(scale_seeds.size()));
    lb_fit.print(std::cout);

    print_banner(std::cout,
                 "[scale] word-sliced interactive evaluator at n = 131072",
                 "64 samples per 3 rng words; the 3-round protocol is exact "
                 "once B fits the round-2 query, one-round needs B = "
                 "Omega(n)");
    bench::ReportedTable sliced(
        ctx, "scale_interactive",
        {"n", "B bits", "samples", "error", "expected"});
    const std::uint64_t big_n = 131072;
    const std::uint64_t query_bits =
        wire::bits_for(big_n * big_n * big_n) + 1;  // matches the evaluator
    for (const std::uint64_t b : {std::uint64_t{32}, query_bits}) {
      const auto stats =
          lb::evaluate_interactive_sliced(big_n, b, 1 << 22, 71);
      sliced.row()
          .cell(big_n)
          .cell(b)
          .cell(stats.samples)
          .cell(stats.error, 5)
          .cell(b >= query_bits ? 0.0 : 0.125, 3);
    }
    sliced.print(std::cout);
  }
  return ctx.finish(std::cout);
}
