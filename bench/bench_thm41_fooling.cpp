// THM41 — Theorem 4.1 / §4: deterministic triangle-vs-hexagon
// distinguishing needs Ω(log N) bits.
//
// The adversary is run against the c-bit ID-exchange algorithm family for a
// sweep of namespace sizes N and budgets c. Expected picture:
//   * c < log2(N/3): transcript classes are large, the Erdős box exists,
//     Claim 4.4 holds on the assembled hexagon and the algorithm is fooled;
//   * c >= log2(N/3): every transcript class is a singleton, no box exists,
//     the adversary fails — the O(log N) upper bound is tight.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "detect/triangle.hpp"
#include "lowerbound/fooling.hpp"
#include "support/mathutil.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("thm41_fooling", argc, argv);

  print_banner(std::cout,
               "THM41: the fooling adversary vs c-bit ID exchange",
               "total per-node communication is 4c bits; threshold at "
               "c = log2(N/3)");

  const std::vector<std::uint64_t> namespaces =
      ctx.smoke() ? std::vector<std::uint64_t>{12, 24}
                  : std::vector<std::uint64_t>{12, 24, 48, 96};
  bench::ReportedTable table(
      ctx, "id_exchange",
      {"N", "c bits", "bits/node", "transcripts", "largest class", "box found",
       "Claim 4.4", "hexagon fooled", "c >= log2(N/3)"});
  for (const std::uint64_t N : namespaces) {
    const auto threshold = ceil_log2(N / 3);
    for (std::uint32_t c = 1; c <= threshold + 1; ++c) {
      lb::FoolingConfig cfg;
      cfg.namespace_size = N;
      cfg.algorithm = detect::id_exchange_triangle_program(c);
      cfg.bandwidth = 64;
      cfg.max_rounds = 8;
      const auto report = lb::run_fooling_adversary(cfg);
      table.row()
          .cell(N)
          .cell(c)
          .cell(report.max_total_bits_per_node)
          .cell(report.distinct_transcripts)
          .cell(report.largest_class)
          .cell(report.box_found)
          .cell(report.box_found ? (report.transcripts_match ? "holds" : "FAIL")
                                 : "-")
          .cell(report.hexagon_fooled)
          .cell(c >= threshold);
    }
  }
  table.print(std::cout);

  print_banner(std::cout,
               "The adversary is generic: salted-hash fingerprints at N = 96",
               "hash collisions within a part push the safe budget to "
               "~2 log2(N/3) (birthday bound) — the adversary still wins");
  bench::ReportedTable hashed(
      ctx, "hashed",
      {"c bits", "largest class", "box found", "hexagon fooled"});
  ctx.seed(12345);
  const std::uint64_t hashed_namespace = ctx.smoke() ? 24 : 96;
  const std::uint32_t hashed_max_c = ctx.smoke() ? 7 : 11;
  for (std::uint32_t c = 3; c <= hashed_max_c; ++c) {
    lb::FoolingConfig cfg;
    cfg.namespace_size = hashed_namespace;
    cfg.algorithm = detect::hashed_id_exchange_triangle_program(c, 12345);
    cfg.bandwidth = 64;
    cfg.max_rounds = 8;
    const auto report = lb::run_fooling_adversary(cfg);
    hashed.row()
        .cell(c)
        .cell(report.largest_class)
        .cell(report.box_found)
        .cell(report.hexagon_fooled);
  }
  hashed.print(std::cout);

  std::cout
      << "\nExpected: below the threshold column the box is found, Claim 4.4\n"
         "holds and the hexagon is (wrongly) rejected; at or above it the\n"
         "adversary fails. This reproduces the Omega(log N) bound and its\n"
         "tightness on the lower-bound graph.\n";
  return ctx.finish(std::cout);
}
