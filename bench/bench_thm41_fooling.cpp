// THM41 — Theorem 4.1 / §4: deterministic triangle-vs-hexagon
// distinguishing needs Ω(log N) bits.
//
// The adversary is run against the c-bit ID-exchange algorithm family for a
// sweep of namespace sizes N and budgets c. Expected picture:
//   * c < log2(N/3): transcript classes are large, the Erdős box exists,
//     Claim 4.4 holds on the assembled hexagon and the algorithm is fooled;
//   * c >= log2(N/3): every transcript class is a singleton, no box exists,
//     the adversary fails — the O(log N) upper bound is tight.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "detect/triangle.hpp"
#include "lowerbound/fooling.hpp"
#include "support/mathutil.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace csd;
  bench::BenchContext ctx("thm41_fooling", argc, argv);
  bool scale = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--scale") scale = true;
  ctx.param("scale", scale);

  print_banner(std::cout,
               "THM41: the fooling adversary vs c-bit ID exchange",
               "total per-node communication is 4c bits; threshold at "
               "c = log2(N/3)");

  const std::vector<std::uint64_t> namespaces =
      ctx.smoke() ? std::vector<std::uint64_t>{12, 24}
                  : std::vector<std::uint64_t>{12, 24, 48, 96};
  bench::ReportedTable table(
      ctx, "id_exchange",
      {"N", "c bits", "bits/node", "transcripts", "largest class", "box found",
       "Claim 4.4", "hexagon fooled", "c >= log2(N/3)"});
  for (const std::uint64_t N : namespaces) {
    const auto threshold = ceil_log2(N / 3);
    for (std::uint32_t c = 1; c <= threshold + 1; ++c) {
      lb::FoolingConfig cfg;
      cfg.namespace_size = N;
      cfg.algorithm = detect::id_exchange_triangle_program(c);
      cfg.bandwidth = 64;
      cfg.max_rounds = 8;
      const auto report = lb::run_fooling_adversary(cfg);
      table.row()
          .cell(N)
          .cell(c)
          .cell(report.max_total_bits_per_node)
          .cell(report.distinct_transcripts)
          .cell(report.largest_class)
          .cell(report.box_found)
          .cell(report.box_found ? (report.transcripts_match ? "holds" : "FAIL")
                                 : "-")
          .cell(report.hexagon_fooled)
          .cell(c >= threshold);
    }
  }
  table.print(std::cout);

  print_banner(std::cout,
               "The adversary is generic: salted-hash fingerprints at N = 96",
               "hash collisions within a part push the safe budget to "
               "~2 log2(N/3) (birthday bound) — the adversary still wins");
  bench::ReportedTable hashed(
      ctx, "hashed",
      {"c bits", "largest class", "box found", "hexagon fooled"});
  ctx.seed(12345);
  const std::uint64_t hashed_namespace = ctx.smoke() ? 24 : 96;
  const std::uint32_t hashed_max_c = ctx.smoke() ? 7 : 11;
  for (std::uint32_t c = 3; c <= hashed_max_c; ++c) {
    lb::FoolingConfig cfg;
    cfg.namespace_size = hashed_namespace;
    cfg.algorithm = detect::hashed_id_exchange_triangle_program(c, 12345);
    cfg.bandwidth = 64;
    cfg.max_rounds = 8;
    const auto report = lb::run_fooling_adversary(cfg);
    hashed.row()
        .cell(c)
        .cell(report.largest_class)
        .cell(report.box_found)
        .cell(report.hexagon_fooled);
  }
  hashed.print(std::cout);

  std::cout
      << "\nExpected: below the threshold column the box is found, Claim 4.4\n"
         "holds and the hexagon is (wrongly) rejected; at or above it the\n"
         "adversary fails. This reproduces the Omega(log N) bound and its\n"
         "tightness on the lower-bound graph.\n";

  print_banner(std::cout,
               "Sampled transcript collisions (pigeonhole pressure)",
               "uniform triples instead of exhaustive enumeration; expected "
               "pairs = C(S,2) / 2^(3c) for the c-bit ID exchange");
  bench::ReportedTable sampled(
      ctx, "sampled",
      {"N", "c bits", "samples", "transcripts", "largest class",
       "collision pairs", "expected pairs"});
  const auto sampled_row = [&](std::uint64_t N, std::uint32_t c,
                               std::uint64_t samples) {
    lb::FoolingConfig cfg;
    cfg.namespace_size = N;
    cfg.algorithm = detect::id_exchange_triangle_program(c);
    cfg.bandwidth = 64;
    cfg.max_rounds = 8;
    // Seed varies with N: part sizes are powers of two, so a shared seed
    // would reproduce the same truncated-id stream at every N and the
    // sweep's rows would be literal copies of each other.
    const auto report =
        lb::sample_transcript_collisions(cfg, samples, 4100 + N, 0);
    const double s = static_cast<double>(samples);
    const double expected =
        s * (s - 1.0) / 2.0 / std::pow(2.0, 3.0 * c);
    sampled.row()
        .cell(N)
        .cell(c)
        .cell(report.samples)
        .cell(report.distinct_transcripts)
        .cell(report.largest_class)
        .cell(report.collision_pairs)
        .cell(expected, 1);
  };
  for (const std::uint32_t c : {2u, 3u}) sampled_row(24, c, 2000);
  if (scale) {
    // The (N/3)^3 exhaustive enumeration is hopeless at N >= 10^5; sampling
    // sees C(S,2)/2^(3c) colliding pairs, so the collision cliff sits at
    // c ~ (2/3) log2 S rather than log2(N/3) — the table checks the
    // prediction, the exhaustive table above checks the threshold.
    for (const std::uint64_t N : {49152ull, 98304ull, 196608ull})
      for (const std::uint32_t c : {6u, 8u, 10u, 12u}) sampled_row(N, c, 50000);
  }
  sampled.print(std::cout);
  std::cout
      << "\nExpected: collision pairs track C(S,2)/2^(3c) (ids truncated to\n"
         "c bits are uniform because parts are power-of-two sized), and the\n"
         "largest class shrinks to a singleton as c grows — the same\n"
         "pigeonhole pressure the box theorem amplifies, measured at\n"
         "namespace sizes the exhaustive adversary cannot touch.\n";
  return ctx.finish(std::cout);
}
