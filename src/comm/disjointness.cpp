#include "comm/disjointness.hpp"

#include <algorithm>

#include "support/bits.hpp"
#include "support/check.hpp"

namespace csd::comm {

bool DisjointnessInstance::intersects() const {
  return !intersection().empty();
}

std::vector<std::uint64_t> DisjointnessInstance::intersection() const {
  std::vector<std::uint64_t> out;
  std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                        std::back_inserter(out));
  return out;
}

DisjointnessInstance random_disjointness(std::uint64_t universe,
                                         double density,
                                         bool force_intersecting, Rng& rng) {
  CSD_CHECK(universe > 0);
  DisjointnessInstance inst;
  inst.universe = universe;
  for (std::uint64_t e = 0; e < universe; ++e) {
    if (rng.uniform() < density) inst.x.push_back(e);
    if (rng.uniform() < density) inst.y.push_back(e);
  }
  if (force_intersecting) {
    const std::uint64_t common = rng.below(universe);
    if (!std::binary_search(inst.x.begin(), inst.x.end(), common)) {
      inst.x.push_back(common);
      std::sort(inst.x.begin(), inst.x.end());
    }
    if (!std::binary_search(inst.y.begin(), inst.y.end(), common)) {
      inst.y.push_back(common);
      std::sort(inst.y.begin(), inst.y.end());
    }
  } else {
    // Strip the intersection out of Y so the instance is disjoint.
    const auto common = inst.intersection();
    std::vector<std::uint64_t> kept;
    std::set_difference(inst.y.begin(), inst.y.end(), common.begin(),
                        common.end(), std::back_inserter(kept));
    inst.y = std::move(kept);
  }
  CSD_CHECK(inst.intersects() == force_intersecting);
  return inst;
}

std::uint64_t DisjointnessBatch::intersect_mask() const {
  std::uint64_t mask = 0;
  for (std::uint64_t e = 0; e < universe; ++e)
    mask |= x_slices[e] & y_slices[e];
  return mask & lane_mask();
}

DisjointnessInstance DisjointnessBatch::instance(std::uint32_t i) const {
  CSD_CHECK(i < count);
  const std::uint64_t lane = 1ULL << i;
  DisjointnessInstance inst;
  inst.universe = universe;
  for (std::uint64_t e = 0; e < universe; ++e) {
    if (x_slices[e] & lane) inst.x.push_back(e);
    if (y_slices[e] & lane) inst.y.push_back(e);
  }
  return inst;
}

DisjointnessBatch random_disjointness_batch(std::uint64_t universe,
                                            double density,
                                            std::uint64_t force_mask,
                                            std::uint32_t count, Rng& rng) {
  CSD_CHECK(universe > 0);
  CSD_CHECK(count >= 1 && count <= 64);
  DisjointnessBatch batch;
  batch.universe = universe;
  batch.count = count;
  const std::uint64_t lanes = batch.lane_mask();
  CSD_CHECK_MSG((force_mask & ~lanes) == 0,
                "force_mask names lanes beyond count");
  batch.x_slices.resize(universe);
  batch.y_slices.resize(universe);

  for (std::uint64_t e = 0; e < universe; ++e) {
    std::uint64_t xw, yw;
    if (density == 0.5) {
      // One draw fills all 64 lanes: iid fair bits per (element, instance).
      xw = rng() & lanes;
      yw = rng() & lanes;
    } else {
      xw = yw = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (rng.uniform() < density) xw |= 1ULL << i;
        if (rng.uniform() < density) yw |= 1ULL << i;
      }
    }
    batch.x_slices[e] = xw;
    batch.y_slices[e] = yw;
  }

  // Disjoint lanes: strip any accidental intersection out of Y, as the
  // scalar generator does.
  const std::uint64_t strip = lanes & ~force_mask;
  for (std::uint64_t e = 0; e < universe; ++e)
    batch.y_slices[e] &= ~(batch.x_slices[e] & strip);

  // Intersecting lanes: plant one common element per lane.
  std::uint64_t forced = force_mask;
  while (forced != 0) {
    const auto i = static_cast<std::uint32_t>(countr_zero64(forced));
    forced &= forced - 1;
    const std::uint64_t common = rng.below(universe);
    batch.x_slices[common] |= 1ULL << i;
    batch.y_slices[common] |= 1ULL << i;
  }

  CSD_CHECK(batch.intersect_mask() == force_mask);
  return batch;
}

}  // namespace csd::comm
