#include "comm/disjointness.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace csd::comm {

bool DisjointnessInstance::intersects() const {
  return !intersection().empty();
}

std::vector<std::uint64_t> DisjointnessInstance::intersection() const {
  std::vector<std::uint64_t> out;
  std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                        std::back_inserter(out));
  return out;
}

DisjointnessInstance random_disjointness(std::uint64_t universe,
                                         double density,
                                         bool force_intersecting, Rng& rng) {
  CSD_CHECK(universe > 0);
  DisjointnessInstance inst;
  inst.universe = universe;
  for (std::uint64_t e = 0; e < universe; ++e) {
    if (rng.uniform() < density) inst.x.push_back(e);
    if (rng.uniform() < density) inst.y.push_back(e);
  }
  if (force_intersecting) {
    const std::uint64_t common = rng.below(universe);
    if (!std::binary_search(inst.x.begin(), inst.x.end(), common)) {
      inst.x.push_back(common);
      std::sort(inst.x.begin(), inst.x.end());
    }
    if (!std::binary_search(inst.y.begin(), inst.y.end(), common)) {
      inst.y.push_back(common);
      std::sort(inst.y.begin(), inst.y.end());
    }
  } else {
    // Strip the intersection out of Y so the instance is disjoint.
    const auto common = inst.intersection();
    std::vector<std::uint64_t> kept;
    std::set_difference(inst.y.begin(), inst.y.end(), common.begin(),
                        common.end(), std::back_inserter(kept));
    inst.y = std::move(kept);
  }
  CSD_CHECK(inst.intersects() == force_intersecting);
  return inst;
}

}  // namespace csd::comm
