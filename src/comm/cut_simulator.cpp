#include "comm/cut_simulator.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace csd::comm {

CutCost simulate_across_cut(const Graph& topology,
                            const std::vector<Owner>& owner,
                            const congest::NetworkConfig& config,
                            const congest::ProgramFactory& factory) {
  CSD_CHECK_MSG(owner.size() == topology.num_vertices(),
                "ownership partition size mismatch");

  CutCost cost;
  for (const auto& [u, v] : topology.edges()) {
    const bool priv_u = owner[u] != Owner::Shared;
    const bool priv_v = owner[v] != Owner::Shared;
    // An edge is on the simulation cut if a message along it can carry
    // information a player is missing: any edge leaving a private part.
    if ((priv_u || priv_v) && owner[u] != owner[v]) ++cost.cut_edges;
  }

  std::uint64_t current_round = static_cast<std::uint64_t>(-1);
  std::uint64_t round_bits = 0;
  congest::NetworkConfig instrumented = config;
  instrumented.on_message = [&](std::uint64_t round, std::uint32_t src,
                                std::uint32_t dst, std::uint64_t bits) {
    const Owner from = owner[src];
    const Owner to = owner[dst];
    // Alice must tell Bob everything her private nodes send into Bob's
    // private nodes or the shared part (Bob simulates both), and vice versa.
    const bool a_to_b = from == Owner::Alice && to != Owner::Alice;
    const bool b_to_a = from == Owner::Bob && to != Owner::Bob;
    if (!a_to_b && !b_to_a) return;
    if (round != current_round) {
      cost.max_bits_per_round = std::max(cost.max_bits_per_round, round_bits);
      round_bits = 0;
      current_round = round;
    }
    round_bits += bits;
    ++cost.crossing_messages;
    if (a_to_b)
      cost.bits_alice_to_bob += bits;
    else
      cost.bits_bob_to_alice += bits;
  };

  congest::Network net(topology, instrumented);
  cost.outcome = net.run(factory);
  cost.max_bits_per_round = std::max(cost.max_bits_per_round, round_bits);
  return cost;
}

}  // namespace csd::comm
