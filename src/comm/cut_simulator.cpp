#include "comm/cut_simulator.hpp"

#include <algorithm>
#include <utility>

#include "congest/run_batch.hpp"
#include "support/check.hpp"

namespace csd::comm {

namespace {

// Crossing-bit accumulator for one run. Per-round bits are keyed by round
// number (not by "did the round change since the last message"), so a round
// that reappears after another — as async delivery order permits — keeps
// accumulating into its own bucket instead of resetting a shared one.
struct CutAccum {
  std::uint64_t bits_alice_to_bob = 0;
  std::uint64_t bits_bob_to_alice = 0;
  std::uint64_t crossing_messages = 0;
  std::vector<std::uint64_t> round_bits;

  std::uint64_t max_bits_per_round() const {
    std::uint64_t best = 0;
    for (const std::uint64_t b : round_bits) best = std::max(best, b);
    return best;
  }
};

void account(CutAccum& accum, const std::vector<Owner>& owner,
             std::uint64_t round, std::uint32_t src, std::uint32_t dst,
             std::uint64_t bits) {
  const Owner from = owner[src];
  const Owner to = owner[dst];
  // Alice must tell Bob everything her private nodes send into Bob's
  // private nodes or the shared part (Bob simulates both), and vice versa.
  const bool a_to_b = from == Owner::Alice && to != Owner::Alice;
  const bool b_to_a = from == Owner::Bob && to != Owner::Bob;
  if (!a_to_b && !b_to_a) return;
  if (round >= accum.round_bits.size()) accum.round_bits.resize(round + 1, 0);
  accum.round_bits[round] += bits;
  ++accum.crossing_messages;
  if (a_to_b)
    accum.bits_alice_to_bob += bits;
  else
    accum.bits_bob_to_alice += bits;
}

// The batch path shares one instrumented NetworkConfig across every seed,
// so the observer cannot capture a per-run accumulator; it dereferences
// this thread-local instead. Safe under RunBatch (each worker sets it
// before its run) and under the sharded engine (shard.cpp replays
// on_message on the coordinating thread — the one that called run()).
thread_local CutAccum* tl_accum = nullptr;

}  // namespace

std::uint64_t count_cut_edges(const Graph& topology,
                              const std::vector<Owner>& owner) {
  CSD_CHECK_MSG(owner.size() == topology.num_vertices(),
                "ownership partition size mismatch");
  std::uint64_t cut = 0;
  for (const auto& [u, v] : topology.edges()) {
    const bool priv_u = owner[u] != Owner::Shared;
    const bool priv_v = owner[v] != Owner::Shared;
    // An edge is on the simulation cut if a message along it can carry
    // information a player is missing: any edge leaving a private part.
    if ((priv_u || priv_v) && owner[u] != owner[v]) ++cut;
  }
  return cut;
}

CutCost simulate_across_cut(const Graph& topology,
                            const std::vector<Owner>& owner,
                            const congest::NetworkConfig& config,
                            const congest::ProgramFactory& factory) {
  CutCost cost;
  cost.cut_edges = count_cut_edges(topology, owner);

  CutAccum accum;
  congest::NetworkConfig instrumented = config;
  instrumented.on_message = [&accum, &owner, prior = config.on_message](
                                std::uint64_t round, std::uint32_t src,
                                std::uint32_t dst, std::uint64_t bits) {
    if (prior) prior(round, src, dst, bits);
    account(accum, owner, round, src, dst, bits);
  };

  congest::Network net(topology, instrumented);
  cost.outcome = net.run(factory);
  cost.bits_alice_to_bob = accum.bits_alice_to_bob;
  cost.bits_bob_to_alice = accum.bits_bob_to_alice;
  cost.crossing_messages = accum.crossing_messages;
  cost.max_bits_per_round = accum.max_bits_per_round();
  return cost;
}

CutCostBatch simulate_across_cut_batch(const Graph& topology,
                                       const std::vector<Owner>& owner,
                                       const congest::NetworkConfig& config,
                                       const congest::ProgramFactory& factory,
                                       const std::vector<std::uint64_t>& seeds,
                                       unsigned jobs) {
  CutCostBatch batch;
  batch.cut_edges = count_cut_edges(topology, owner);
  batch.seeds = seeds;
  const std::size_t n = seeds.size();
  batch.bits_alice_to_bob.resize(n);
  batch.bits_bob_to_alice.resize(n);
  batch.crossing_messages.resize(n);
  batch.max_bits_per_round.resize(n);
  batch.rounds.resize(n);
  batch.detected.resize(n);
  batch.completed.resize(n);
  if (n == 0) return batch;

  congest::NetworkConfig instrumented = config;
  instrumented.on_message = [&owner, prior = config.on_message](
                                std::uint64_t round, std::uint32_t src,
                                std::uint32_t dst, std::uint64_t bits) {
    if (prior) prior(round, src, dst, bits);
    if (tl_accum != nullptr) account(*tl_accum, owner, round, src, dst, bits);
  };

  // One topology copy + CSR materialization + neighbor-table build for the
  // whole batch: this amortization is the point of the API.
  const congest::Network net(topology, instrumented);
  std::vector<CutAccum> accums(n);

  const congest::RunBatch runner(jobs);
  runner.for_each_index(n, [&](std::size_t i) {
    tl_accum = &accums[i];
    const congest::RunOutcome outcome = net.run(factory, seeds[i]);
    tl_accum = nullptr;
    batch.bits_alice_to_bob[i] = accums[i].bits_alice_to_bob;
    batch.bits_bob_to_alice[i] = accums[i].bits_bob_to_alice;
    batch.crossing_messages[i] = accums[i].crossing_messages;
    batch.max_bits_per_round[i] = accums[i].max_bits_per_round();
    batch.rounds[i] = outcome.metrics.rounds;
    batch.detected[i] = outcome.detected ? 1 : 0;
    batch.completed[i] = outcome.completed ? 1 : 0;
  });
  return batch;
}

congest::ProgramFactory random_traffic_program(std::uint64_t rounds) {
  class Traffic final : public congest::NodeProgram {
   public:
    explicit Traffic(std::uint64_t rounds) : rounds_(rounds) {}

    void on_round(congest::NodeApi& api) override {
      if (api.round() >= rounds_) {
        api.halt();
        return;
      }
      const std::uint64_t cap =
          api.bandwidth() == 0 ? 64 : api.bandwidth();
      for (std::uint32_t port = 0; port < api.degree(); ++port) {
        const std::uint64_t len = 1 + api.rng().below(cap);
        BitVec payload = api.scratch();
        std::uint64_t remaining = len;
        while (remaining > 0) {
          const unsigned chunk =
              remaining > 64 ? 64u : static_cast<unsigned>(remaining);
          payload.append_bits(api.rng()(), chunk);
          remaining -= chunk;
        }
        api.send(port, std::move(payload));
      }
    }

   private:
    std::uint64_t rounds_;
  };
  return [rounds](std::uint32_t) { return std::make_unique<Traffic>(rounds); };
}

}  // namespace csd::comm
