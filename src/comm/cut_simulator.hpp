// Two-party simulation of a CONGEST execution across a vertex partition.
//
// This is the cost-accounting engine of the Theorem 1.2 reduction (§3.3):
// Alice simulates her part V_A plus the shared part U, Bob simulates V_B
// plus U. The only information a player is missing is what the other
// player's private nodes send toward anything the player simulates, so the
// communication cost of simulating one round is exactly the bits carried on
// messages from V_A into V_B ∪ U (Alice→Bob) and from V_B into V_A ∪ U
// (Bob→Alice). Randomness is public (shared seed), which is the setting of
// the randomized disjointness lower bound.
//
// Two entry points share the accounting logic:
//   * simulate_across_cut — one (config, factory, seed) run, one CutCost;
//   * simulate_across_cut_batch — many seeds over ONE topology/CSR build
//     and ONE ownership scan, fanned across congest::RunBatch. Per-seed
//     rows land in a structure-of-arrays CutCostBatch, written in seed
//     order, so results are bit-identical at every jobs count.
// Both chain to (never clobber) any caller-supplied on_message hook, and
// both key per-round bit accounting by round number, so async delivery
// order (the same round observed again after another) cannot undercount
// max_bits_per_round.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::comm {

enum class Owner : std::uint8_t { Alice, Bob, Shared };

struct CutCost {
  congest::RunOutcome outcome;
  std::uint64_t bits_alice_to_bob = 0;
  std::uint64_t bits_bob_to_alice = 0;
  /// Number of messages that crossed the cut in either direction.
  std::uint64_t crossing_messages = 0;
  /// Maximum crossing bits charged in any single round.
  std::uint64_t max_bits_per_round = 0;
  /// Topology edges with one endpoint private to each player or private/shared
  /// (the structural cut the simulation pays for).
  std::uint64_t cut_edges = 0;

  std::uint64_t total_crossing_bits() const {
    return bits_alice_to_bob + bits_bob_to_alice;
  }
};

/// Edges on the simulation cut of `owner`: one endpoint private to each
/// player, or private on one side and shared on the other. A pure function
/// of (topology, ownership) — every seed of a batch shares it.
std::uint64_t count_cut_edges(const Graph& topology,
                              const std::vector<Owner>& owner);

/// Run `factory` over `topology` and account the two-party simulation cost
/// under the given ownership partition. `owner.size()` must equal the number
/// of vertices. A caller-supplied config.on_message hook keeps firing for
/// every delivered message (the simulator chains its instrumentation).
CutCost simulate_across_cut(const Graph& topology,
                            const std::vector<Owner>& owner,
                            const congest::NetworkConfig& config,
                            const congest::ProgramFactory& factory);

/// Per-seed cut costs of a batch, structure-of-arrays: row i is the run with
/// seeds[i]. Full RunOutcomes are deliberately not retained (a batch of
/// thousands of seeds over a 10^5-node frame would hold thousands of verdict
/// vectors); the flags a sweep needs are copied out per seed.
struct CutCostBatch {
  std::vector<std::uint64_t> seeds;
  std::vector<std::uint64_t> bits_alice_to_bob;
  std::vector<std::uint64_t> bits_bob_to_alice;
  std::vector<std::uint64_t> crossing_messages;
  std::vector<std::uint64_t> max_bits_per_round;
  std::vector<std::uint64_t> rounds;
  std::vector<std::uint8_t> detected;
  std::vector<std::uint8_t> completed;
  /// Structural cut of (topology, owner): identical for every row.
  std::uint64_t cut_edges = 0;

  std::size_t size() const noexcept { return seeds.size(); }
  std::uint64_t total_crossing_bits(std::size_t i) const {
    return bits_alice_to_bob[i] + bits_bob_to_alice[i];
  }
};

/// Run `factory` once per seed over ONE Network (one topology copy, one CSR
/// materialization, one ownership scan) and account each run's two-party
/// cost. Rows are written in seed order; with `jobs` > 1 the seeds fan
/// across a congest::RunBatch and the result is bit-identical to jobs == 1
/// (each run is a pure function of its seed; accumulators are per-seed).
/// A caller-supplied config.on_message hook is chained, not clobbered; with
/// jobs > 1 it must be safe to invoke concurrently.
CutCostBatch simulate_across_cut_batch(const Graph& topology,
                                       const std::vector<Owner>& owner,
                                       const congest::NetworkConfig& config,
                                       const congest::ProgramFactory& factory,
                                       const std::vector<std::uint64_t>& seeds,
                                       unsigned jobs = 1);

/// Measurement probe for cut-cost sweeps: every node spends `rounds` rounds
/// sending a payload of seed-dependent random length (1..bandwidth bits,
/// 1..64 in the LOCAL model) on every port, then halts. Unlike the
/// structural cut, the crossing-bit total of this probe genuinely varies
/// with the run seed, which is what gives a multi-seed batch nonzero spread
/// for bootstrap error bars.
congest::ProgramFactory random_traffic_program(std::uint64_t rounds);

}  // namespace csd::comm
