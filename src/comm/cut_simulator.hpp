// Two-party simulation of a CONGEST execution across a vertex partition.
//
// This is the cost-accounting engine of the Theorem 1.2 reduction (§3.3):
// Alice simulates her part V_A plus the shared part U, Bob simulates V_B
// plus U. The only information a player is missing is what the other
// player's private nodes send toward anything the player simulates, so the
// communication cost of simulating one round is exactly the bits carried on
// messages from V_A into V_B ∪ U (Alice→Bob) and from V_B into V_A ∪ U
// (Bob→Alice). Randomness is public (shared seed), which is the setting of
// the randomized disjointness lower bound.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::comm {

enum class Owner : std::uint8_t { Alice, Bob, Shared };

struct CutCost {
  congest::RunOutcome outcome;
  std::uint64_t bits_alice_to_bob = 0;
  std::uint64_t bits_bob_to_alice = 0;
  /// Number of messages that crossed the cut in either direction.
  std::uint64_t crossing_messages = 0;
  /// Maximum crossing bits charged in any single round.
  std::uint64_t max_bits_per_round = 0;
  /// Topology edges with one endpoint private to each player or private/shared
  /// (the structural cut the simulation pays for).
  std::uint64_t cut_edges = 0;

  std::uint64_t total_crossing_bits() const {
    return bits_alice_to_bob + bits_bob_to_alice;
  }
};

/// Run `factory` over `topology` and account the two-party simulation cost
/// under the given ownership partition. `owner.size()` must equal the number
/// of vertices.
CutCost simulate_across_cut(const Graph& topology,
                            const std::vector<Owner>& owner,
                            const congest::NetworkConfig& config,
                            const congest::ProgramFactory& factory);

}  // namespace csd::comm
