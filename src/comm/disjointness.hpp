// Two-party set disjointness — the source problem of the §3 reduction.
//
// Alice holds X ⊆ [U], Bob holds Y ⊆ [U]; they must decide X ∩ Y = ∅.
// By [Kalyanasundaram–Schnitger '92, Razborov '92] this costs Ω(U) bits even
// for randomized protocols. We do not re-prove that bound; instances built
// here feed the executable reduction of Theorem 1.2, whose *cost side*
// (bits per simulated round across the cut) we measure.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace csd::comm {

/// A disjointness instance over universe {0, ..., universe-1}, with sets
/// stored as sorted element lists.
struct DisjointnessInstance {
  std::uint64_t universe = 0;
  std::vector<std::uint64_t> x;
  std::vector<std::uint64_t> y;

  /// True iff X ∩ Y != ∅.
  bool intersects() const;

  /// Elements of X ∩ Y (sorted).
  std::vector<std::uint64_t> intersection() const;
};

/// Random instance: each element joins X (resp. Y) iid with density; then if
/// `force_intersecting`, one common element is planted, otherwise any
/// intersection is removed (from Y).
DisjointnessInstance random_disjointness(std::uint64_t universe,
                                         double density,
                                         bool force_intersecting, Rng& rng);

/// Up to 64 disjointness instances over one universe, stored element-major
/// and bit-sliced: bit i of x_slices[e] says whether instance i put element
/// e into X. Set operations then run word-parallel across the whole batch —
/// one AND+OR per element answers "which instances intersect?" for 64
/// instances at once, which is how the scaled transcript sweeps enumerate
/// instances without 64 separate passes.
struct DisjointnessBatch {
  std::uint64_t universe = 0;
  std::uint32_t count = 0;               // instances = live lanes (<= 64)
  std::vector<std::uint64_t> x_slices;   // [universe] lane words
  std::vector<std::uint64_t> y_slices;   // [universe] lane words

  /// Bit i set iff instance i intersects. One AND+OR per element.
  std::uint64_t intersect_mask() const;

  /// Lane word with every live instance's bit set.
  std::uint64_t lane_mask() const noexcept {
    return count == 64 ? ~0ULL : (1ULL << count) - 1;
  }

  /// Scatter lane i back to a scalar instance (sorted element lists).
  DisjointnessInstance instance(std::uint32_t i) const;
};

/// Batch counterpart of random_disjointness: `count` instances, each element
/// joining X (resp. Y) iid with `density` per instance; instances whose bit
/// is set in `force_mask` get a planted common element, the others have any
/// intersection stripped (from Y). The density==0.5 fast path fills a whole
/// lane word per element from one rng draw.
DisjointnessBatch random_disjointness_batch(std::uint64_t universe,
                                            double density,
                                            std::uint64_t force_mask,
                                            std::uint32_t count, Rng& rng);

/// Interpret a pair index (i, j) in [n]×[n] as a universe element of [n²].
constexpr std::uint64_t pair_to_element(std::uint64_t i, std::uint64_t j,
                                        std::uint64_t n) noexcept {
  return i * n + j;
}

constexpr std::pair<std::uint64_t, std::uint64_t> element_to_pair(
    std::uint64_t e, std::uint64_t n) noexcept {
  return {e / n, e % n};
}

}  // namespace csd::comm
