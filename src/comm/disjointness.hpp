// Two-party set disjointness — the source problem of the §3 reduction.
//
// Alice holds X ⊆ [U], Bob holds Y ⊆ [U]; they must decide X ∩ Y = ∅.
// By [Kalyanasundaram–Schnitger '92, Razborov '92] this costs Ω(U) bits even
// for randomized protocols. We do not re-prove that bound; instances built
// here feed the executable reduction of Theorem 1.2, whose *cost side*
// (bits per simulated round across the cut) we measure.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace csd::comm {

/// A disjointness instance over universe {0, ..., universe-1}, with sets
/// stored as sorted element lists.
struct DisjointnessInstance {
  std::uint64_t universe = 0;
  std::vector<std::uint64_t> x;
  std::vector<std::uint64_t> y;

  /// True iff X ∩ Y != ∅.
  bool intersects() const;

  /// Elements of X ∩ Y (sorted).
  std::vector<std::uint64_t> intersection() const;
};

/// Random instance: each element joins X (resp. Y) iid with density; then if
/// `force_intersecting`, one common element is planted, otherwise any
/// intersection is removed (from Y).
DisjointnessInstance random_disjointness(std::uint64_t universe,
                                         double density,
                                         bool force_intersecting, Rng& rng);

/// Interpret a pair index (i, j) in [n]×[n] as a universe element of [n²].
constexpr std::uint64_t pair_to_element(std::uint64_t i, std::uint64_t j,
                                        std::uint64_t n) noexcept {
  return i * n + j;
}

constexpr std::pair<std::uint64_t, std::uint64_t> element_to_pair(
    std::uint64_t e, std::uint64_t n) noexcept {
  return {e / n, e % n};
}

}  // namespace csd::comm
