// Plug-in (maximum-likelihood) estimators for Shannon entropy, conditional
// entropy, and (conditional) mutual information over empirical samples of
// discrete variables.
//
// Used by the §5 experiment to measure how much information one-round
// messages carry about the hidden triangle edge X_bc:
//     I(X_bc ; M_ba, M_ca | N_a, X_ab = 1, X_ac = 1).
// Variables are presented as 64-bit symbols (messages are hashed BitVecs;
// collisions only *underestimate* information, which is the conservative
// direction for a lower-bound experiment).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace csd::info {

/// Shannon entropy (bits) of an empirical distribution given by counts.
double entropy_from_counts(const std::vector<std::uint64_t>& counts);

/// Accumulates joint samples (x, y) and computes plug-in estimates.
class JointDistribution {
 public:
  void add(std::uint64_t x, std::uint64_t y, std::uint64_t weight = 1);

  std::uint64_t total() const noexcept { return total_; }

  /// H(X), H(Y), H(X, Y) in bits.
  double entropy_x() const;
  double entropy_y() const;
  double entropy_joint() const;

  /// I(X; Y) = H(X) + H(Y) − H(X,Y), clamped at 0 (plug-in can dip below by
  /// floating-point noise only).
  double mutual_information() const;

  /// H(X | Y) = H(X,Y) − H(Y).
  double conditional_entropy_x_given_y() const;

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> x_counts_;
  std::unordered_map<std::uint64_t, std::uint64_t> y_counts_;
  // Joint keyed by (x hashed with y); exact pairs kept to avoid collisions.
  struct PairHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p)
        const noexcept {
      // splitmix-style combine.
      std::uint64_t h = p.first * 0x9e3779b97f4a7c15ULL;
      h ^= (p.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t,
                     PairHash>
      joint_counts_;
  std::uint64_t total_ = 0;
};

/// I(X; Y | Z): average over z-slices of the slice MI, weighted by slice
/// mass. Samples are (z, x, y) triples.
class ConditionalMutualInformation {
 public:
  void add(std::uint64_t z, std::uint64_t x, std::uint64_t y,
           std::uint64_t weight = 1);

  double value() const;
  std::uint64_t total() const noexcept { return total_; }

 private:
  std::unordered_map<std::uint64_t, JointDistribution> slices_;
  std::uint64_t total_ = 0;
};

}  // namespace csd::info
