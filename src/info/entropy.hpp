// Plug-in (maximum-likelihood) estimators for Shannon entropy, conditional
// entropy, and (conditional) mutual information over empirical samples of
// discrete variables.
//
// Used by the §5 experiment to measure how much information one-round
// messages carry about the hidden triangle edge X_bc:
//     I(X_bc ; M_ba, M_ca | N_a, X_ab = 1, X_ac = 1).
// Variables are presented as 64-bit symbols (messages are hashed BitVecs;
// collisions only *underestimate* information, which is the conservative
// direction for a lower-bound experiment).
//
// Counting runs over flat open-addressing tables (info/flat_counts.hpp),
// sized once per batch via reserve(). All entropy sums fold probabilities
// in the canonical ascending-key order of sorted_items(), so estimates are
// bit-identical regardless of insertion order, reserve hints, or the number
// of workers that produced the samples.
//
// Clamping policy: the plug-in I(X;Y) can dip below zero (finite-sample
// noise), and historically the estimator clamped it to 0 silently. That
// masks estimator bias exactly where the batched sweeps need to detect it,
// so both faces are exposed: *_raw() returns the unclamped value and the
// clamped accessor keeps its old contract. Bootstrap fits (obs/lb_fit.hpp)
// consume the raw values; presentation layers may clamp.
#pragma once

#include <cstdint>
#include <vector>

#include "info/flat_counts.hpp"

namespace csd::info {

/// Shannon entropy (bits) of an empirical distribution given by counts.
double entropy_from_counts(const std::vector<std::uint64_t>& counts);

/// Accumulates joint samples (x, y) and computes plug-in estimates.
class JointDistribution {
 public:
  void add(std::uint64_t x, std::uint64_t y, std::uint64_t weight = 1);

  /// Pre-size the count tables for a batch: expected distinct symbols per
  /// marginal (the joint table takes the larger hint — with one tiny
  /// alphabet the joint support is bounded by the big one times it).
  /// Optional — tables grow on demand — but a batch that reserves never
  /// rehashes, and the hints never change a result (summation order is
  /// canonical).
  void reserve(std::size_t expected_distinct_x,
               std::size_t expected_distinct_y);

  std::uint64_t total() const noexcept { return total_; }

  /// H(X), H(Y), H(X, Y) in bits.
  double entropy_x() const;
  double entropy_y() const;
  double entropy_joint() const;

  /// I(X; Y) = H(X) + H(Y) − H(X,Y), clamped at 0 (plug-in can dip below by
  /// floating-point noise only).
  double mutual_information() const;
  /// The same estimate without the clamp; negative values expose the
  /// finite-sample bias the clamped accessor hides.
  double mutual_information_raw() const;

  /// H(X | Y) = H(X,Y) − H(Y), clamped at 0.
  double conditional_entropy_x_given_y() const;
  /// Unclamped variant.
  double conditional_entropy_x_given_y_raw() const;

 private:
  FlatCounts x_counts_;
  FlatCounts y_counts_;
  FlatPairCounts joint_counts_;
  std::uint64_t total_ = 0;
};

/// I(X; Y | Z): average over z-slices of the slice MI, weighted by slice
/// mass. Samples are (z, x, y) triples.
class ConditionalMutualInformation {
 public:
  void add(std::uint64_t z, std::uint64_t x, std::uint64_t y,
           std::uint64_t weight = 1);

  /// Pre-size for a batch: `expected_slices` distinct z symbols, each slice
  /// reserving `expected_distinct_per_slice` symbols per marginal.
  void reserve(std::size_t expected_slices,
               std::size_t expected_distinct_per_slice);

  /// Weighted average of the *clamped* per-slice MI (historic contract).
  double value() const;
  /// Weighted average of the raw per-slice MI; value() − value_raw() is the
  /// total clamp mass (0 when no slice went negative).
  double value_raw() const;
  std::uint64_t total() const noexcept { return total_; }

 private:
  double weighted_sum(bool raw) const;

  FlatIndex slice_index_;                  // z symbol -> slices_ position
  std::vector<std::uint64_t> slice_keys_;  // z symbol per slice
  std::vector<JointDistribution> slices_;
  std::size_t slice_reserve_hint_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace csd::info
