#include "info/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/check.hpp"

namespace csd::info {

namespace {

// Entropy folded in the canonical order the caller provides (ascending key
// order from sorted_items); the fold order is part of the determinism
// contract, so every path below funnels through here.
template <typename Items, typename CountOf>
double entropy_of_items(const Items& items, std::uint64_t total,
                        const CountOf& count_of) {
  if (total == 0) return 0.0;
  double h = 0.0;
  const double dt = static_cast<double>(total);
  for (const auto& item : items) {
    const std::uint64_t c = count_of(item);
    if (c == 0) continue;
    const double p = static_cast<double>(c) / dt;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double entropy_from_counts(const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto c : counts) {
    CSD_CHECK_MSG(c <= std::numeric_limits<std::uint64_t>::max() - total,
                  "entropy_from_counts: total would wrap past 2^64");
    total += c;
  }
  return entropy_of_items(counts, total,
                          [](std::uint64_t c) { return c; });
}

void JointDistribution::add(std::uint64_t x, std::uint64_t y,
                            std::uint64_t weight) {
  CSD_CHECK(weight > 0);
  CSD_CHECK_MSG(weight <= std::numeric_limits<std::uint64_t>::max() - total_,
                "JointDistribution::add: total weight would wrap past 2^64");
  x_counts_.add(x, weight);
  y_counts_.add(y, weight);
  joint_counts_.add(x, y, weight);
  total_ += weight;
}

void JointDistribution::reserve(std::size_t expected_distinct_x,
                                std::size_t expected_distinct_y) {
  x_counts_.reserve(expected_distinct_x);
  y_counts_.reserve(expected_distinct_y);
  joint_counts_.reserve(std::max(expected_distinct_x, expected_distinct_y));
}

double JointDistribution::entropy_x() const {
  return entropy_of_items(x_counts_.sorted_items(), total_,
                          [](const FlatCounts::Item& i) { return i.count; });
}

double JointDistribution::entropy_y() const {
  return entropy_of_items(y_counts_.sorted_items(), total_,
                          [](const FlatCounts::Item& i) { return i.count; });
}

double JointDistribution::entropy_joint() const {
  return entropy_of_items(
      joint_counts_.sorted_items(), total_,
      [](const FlatPairCounts::Item& i) { return i.count; });
}

double JointDistribution::mutual_information_raw() const {
  return entropy_x() + entropy_y() - entropy_joint();
}

double JointDistribution::mutual_information() const {
  return std::max(0.0, mutual_information_raw());
}

double JointDistribution::conditional_entropy_x_given_y_raw() const {
  return entropy_joint() - entropy_y();
}

double JointDistribution::conditional_entropy_x_given_y() const {
  return std::max(0.0, conditional_entropy_x_given_y_raw());
}

void ConditionalMutualInformation::add(std::uint64_t z, std::uint64_t x,
                                       std::uint64_t y, std::uint64_t weight) {
  CSD_CHECK(weight > 0);
  CSD_CHECK_MSG(
      weight <= std::numeric_limits<std::uint64_t>::max() - total_,
      "ConditionalMutualInformation::add: total weight would wrap past 2^64");
  const std::uint32_t pos = slice_index_.find_or_insert(z);
  if (pos == slices_.size()) {
    slice_keys_.push_back(z);
    slices_.emplace_back();
    if (slice_reserve_hint_ != 0)
      slices_.back().reserve(slice_reserve_hint_, slice_reserve_hint_);
  }
  slices_[pos].add(x, y, weight);
  total_ += weight;
}

void ConditionalMutualInformation::reserve(
    std::size_t expected_slices, std::size_t expected_distinct_per_slice) {
  slice_index_.reserve(expected_slices);
  slice_keys_.reserve(expected_slices);
  slices_.reserve(expected_slices);
  slice_reserve_hint_ = expected_distinct_per_slice;
  for (auto& slice : slices_)
    slice.reserve(expected_distinct_per_slice, expected_distinct_per_slice);
}

double ConditionalMutualInformation::weighted_sum(bool raw) const {
  if (total_ == 0) return 0.0;
  // Canonical order: ascending z symbol, independent of first-seen order.
  std::vector<std::size_t> order(slices_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return slice_keys_[a] < slice_keys_[b];
  });
  double sum = 0.0;
  for (const std::size_t pos : order) {
    const JointDistribution& slice = slices_[pos];
    const double w =
        static_cast<double>(slice.total()) / static_cast<double>(total_);
    sum += w * (raw ? slice.mutual_information_raw()
                    : slice.mutual_information());
  }
  return sum;
}

double ConditionalMutualInformation::value() const {
  return weighted_sum(/*raw=*/false);
}

double ConditionalMutualInformation::value_raw() const {
  return weighted_sum(/*raw=*/true);
}

}  // namespace csd::info
