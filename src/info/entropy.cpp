#include "info/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace csd::info {

namespace {

template <typename Map>
double entropy_of_map(const Map& counts, std::uint64_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  const double dt = static_cast<double>(total);
  for (const auto& [sym, c] : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / dt;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double entropy_from_counts(const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  const double dt = static_cast<double>(total);
  for (const auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / dt;
    h -= p * std::log2(p);
  }
  return h;
}

void JointDistribution::add(std::uint64_t x, std::uint64_t y,
                            std::uint64_t weight) {
  CSD_CHECK(weight > 0);
  x_counts_[x] += weight;
  y_counts_[y] += weight;
  joint_counts_[{x, y}] += weight;
  total_ += weight;
}

double JointDistribution::entropy_x() const {
  return entropy_of_map(x_counts_, total_);
}

double JointDistribution::entropy_y() const {
  return entropy_of_map(y_counts_, total_);
}

double JointDistribution::entropy_joint() const {
  return entropy_of_map(joint_counts_, total_);
}

double JointDistribution::mutual_information() const {
  return std::max(0.0, entropy_x() + entropy_y() - entropy_joint());
}

double JointDistribution::conditional_entropy_x_given_y() const {
  return std::max(0.0, entropy_joint() - entropy_y());
}

void ConditionalMutualInformation::add(std::uint64_t z, std::uint64_t x,
                                       std::uint64_t y, std::uint64_t weight) {
  slices_[z].add(x, y, weight);
  total_ += weight;
}

double ConditionalMutualInformation::value() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [z, slice] : slices_) {
    const double w =
        static_cast<double>(slice.total()) / static_cast<double>(total_);
    sum += w * slice.mutual_information();
  }
  return sum;
}

}  // namespace csd::info
