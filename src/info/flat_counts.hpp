// Flat open-addressing count tables for the batched entropy estimators.
//
// The §5 measurement loop feeds millions of (symbol, weight) samples through
// JointDistribution::add; the per-sample cost of the original
// std::unordered_map backing (node allocation, pointer-chasing probes) was
// the dominant term. These tables are the replacement: power-of-two arrays
// of {key, count} slots, linear probing, no deletions, sized once per batch
// via reserve(). A slot is occupied iff its count is nonzero, which is sound
// because add() rejects zero weights.
//
// Determinism contract: iteration for entropy sums is NOT over table order
// (which depends on capacity and insertion history) but over sorted_items(),
// the canonical ascending-key order. Every consumer that folds doubles must
// use it so results are bit-identical regardless of backend, reserve hints,
// or insertion order — the property the batch-vs-sequential oracle checks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/check.hpp"

namespace csd::info {

namespace detail {

/// splitmix64 finalizer: the avalanche step without the sequence state.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// key -> summed weight. Occupied iff count != 0.
class FlatCounts {
 public:
  struct Item {
    std::uint64_t key;
    std::uint64_t count;
  };

  FlatCounts() : slots_(kMinCapacity) {}

  /// Size the table for `expected_distinct` keys (load factor <= 0.7) so a
  /// batch of adds never rehashes mid-stream. Never shrinks.
  void reserve(std::size_t expected_distinct) {
    std::size_t want = kMinCapacity;
    while (want * 7 < expected_distinct * 10) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  void add(std::uint64_t key, std::uint64_t weight) {
    CSD_CHECK_MSG(weight > 0, "FlatCounts::add: zero-weight sample");
    CSD_CHECK_MSG(
        weight <= std::numeric_limits<std::uint64_t>::max() - total_,
        "FlatCounts::add: total weight would wrap past 2^64");
    if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
    Item& slot = probe(key);
    if (slot.count == 0) {
      slot.key = key;
      ++size_;
    }
    slot.count += weight;  // cannot wrap: count <= total_ and total_ checked
    total_ += weight;
  }

  std::uint64_t count(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::mix64(key) & mask;; i = (i + 1) & mask) {
      const Item& slot = slots_[i];
      if (slot.count == 0) return 0;
      if (slot.key == key) return slot.count;
    }
  }

  std::uint64_t total() const noexcept { return total_; }
  std::size_t distinct() const noexcept { return size_; }

  /// Occupied slots in ascending key order — the canonical summation order.
  std::vector<Item> sorted_items() const {
    std::vector<Item> items;
    items.reserve(size_);
    for (const Item& slot : slots_)
      if (slot.count != 0) items.push_back(slot);
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.key < b.key; });
    return items;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  Item& probe(std::uint64_t key) noexcept {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::mix64(key) & mask;; i = (i + 1) & mask) {
      Item& slot = slots_[i];
      if (slot.count == 0 || slot.key == key) return slot;
    }
  }

  void rehash(std::size_t capacity) {
    std::vector<Item> old = std::move(slots_);
    slots_.assign(capacity, Item{0, 0});
    for (const Item& slot : old) {
      if (slot.count == 0) continue;
      Item& fresh = probe(slot.key);
      fresh = slot;
    }
  }

  std::vector<Item> slots_;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// (x, y) pair -> summed weight. Same contract as FlatCounts; pairs are
/// stored exactly (no hashing of the key itself), so there are no
/// collisions to bias the joint entropy.
class FlatPairCounts {
 public:
  struct Item {
    std::uint64_t x;
    std::uint64_t y;
    std::uint64_t count;
  };

  FlatPairCounts() : slots_(kMinCapacity) {}

  void reserve(std::size_t expected_distinct) {
    std::size_t want = kMinCapacity;
    while (want * 7 < expected_distinct * 10) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  void add(std::uint64_t x, std::uint64_t y, std::uint64_t weight) {
    CSD_CHECK_MSG(weight > 0, "FlatPairCounts::add: zero-weight sample");
    CSD_CHECK_MSG(
        weight <= std::numeric_limits<std::uint64_t>::max() - total_,
        "FlatPairCounts::add: total weight would wrap past 2^64");
    if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
    Item& slot = probe(x, y);
    if (slot.count == 0) {
      slot.x = x;
      slot.y = y;
      ++size_;
    }
    slot.count += weight;
    total_ += weight;
  }

  std::uint64_t count(std::uint64_t x, std::uint64_t y) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(x, y) & mask;; i = (i + 1) & mask) {
      const Item& slot = slots_[i];
      if (slot.count == 0) return 0;
      if (slot.x == x && slot.y == y) return slot.count;
    }
  }

  std::uint64_t total() const noexcept { return total_; }
  std::size_t distinct() const noexcept { return size_; }

  /// Occupied slots sorted by (x, y) — the canonical summation order.
  std::vector<Item> sorted_items() const {
    std::vector<Item> items;
    items.reserve(size_);
    for (const Item& slot : slots_)
      if (slot.count != 0) items.push_back(slot);
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    return items;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  static std::uint64_t hash(std::uint64_t x, std::uint64_t y) noexcept {
    return detail::mix64(detail::mix64(x) + y);
  }

  Item& probe(std::uint64_t x, std::uint64_t y) noexcept {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(x, y) & mask;; i = (i + 1) & mask) {
      Item& slot = slots_[i];
      if (slot.count == 0 || (slot.x == x && slot.y == y)) return slot;
    }
  }

  void rehash(std::size_t capacity) {
    std::vector<Item> old = std::move(slots_);
    slots_.assign(capacity, Item{0, 0, 0});
    for (const Item& slot : old) {
      if (slot.count == 0) continue;
      Item& fresh = probe(slot.x, slot.y);
      fresh = slot;
    }
  }

  std::vector<Item> slots_;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// key -> dense position in insertion order (no counts). Used to index
/// conditional slices without a per-sample unordered_map lookup.
class FlatIndex {
 public:
  static constexpr std::uint32_t npos = 0xffffffffu;

  FlatIndex() : slots_(kMinCapacity) {}

  void reserve(std::size_t expected_distinct) {
    std::size_t want = kMinCapacity;
    while (want * 7 < expected_distinct * 10) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  /// Position of `key`, assigning the next dense position on first sight.
  std::uint32_t find_or_insert(std::uint64_t key) {
    if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
    Slot& slot = probe(slots_, key);
    if (slot.pos_plus_one == 0) {
      CSD_CHECK_MSG(size_ < npos, "FlatIndex: too many distinct keys");
      slot.key = key;
      slot.pos_plus_one = static_cast<std::uint32_t>(++size_);
    }
    return slot.pos_plus_one - 1;
  }

  std::uint32_t find(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::mix64(key) & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.pos_plus_one == 0) return npos;
      if (slot.key == key) return slot.pos_plus_one - 1;
    }
  }

  std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    std::uint64_t key;
    std::uint32_t pos_plus_one;  // 0 = empty
  };

  static Slot& probe(std::vector<Slot>& slots, std::uint64_t key) noexcept {
    const std::size_t mask = slots.size() - 1;
    for (std::size_t i = detail::mix64(key) & mask;; i = (i + 1) & mask) {
      Slot& slot = slots[i];
      if (slot.pos_plus_one == 0 || slot.key == key) return slot;
    }
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{0, 0});
    for (const Slot& slot : old) {
      if (slot.pos_plus_one == 0) continue;
      probe(slots_, slot.key) = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace csd::info
