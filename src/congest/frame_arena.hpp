// Arena-allocated frame plane, structure-of-arrays layout.
//
// One run allocates two flat arenas — outboxes and inboxes — over the
// directed edges of the topology, indexed by the CSR dense edge index
// `csr.offsets[v] + port`. Payload buffers and presence flags live in
// *separate* flat arrays: the per-round scans (reset presence, find present
// outbox slots) walk a dense byte array instead of striding over 40-byte
// slots, and a round's delivery *swaps* the payload buffer of a present
// outbox slot into the reverse-edge inbox slot — no per-message copy, and
// buffer capacity circulates between the two arenas for the run's lifetime.
//
// Presence is the only truth: a payload whose presence byte is 0 is
// unobservable, so resets clear presence bytes and deliberately leave stale
// payload bits in place (they are overwritten by the next swap-in). This is
// what makes `reset_presence()` a memset instead of an O(E) walk that
// touches every BitVec.
//
// Ownership: the engine owns both arenas for the duration of a run;
// NodeState instances hold raw row pointers into them (attach_frames) and
// must not outlive the arenas.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/graph.hpp"
#include "support/bitvec.hpp"

namespace csd::congest::detail {

/// Flat payload + presence arrays over the directed edges of a topology,
/// rows addressed via the Graph's CSR offsets. The CSR (and the Graph that
/// owns it) must outlive the arena.
class FrameArena {
 public:
  FrameArena() = default;

  explicit FrameArena(const GraphCsr& csr)
      : offsets_(&csr.offsets),
        payloads_(static_cast<std::size_t>(csr.num_directed_edges())),
        present_(static_cast<std::size_t>(csr.num_directed_edges()), 0) {}

  /// First payload / presence byte of `v`'s row; ports index from it
  /// contiguously.
  BitVec* payload_row(Vertex v) noexcept {
    return payloads_.data() + (*offsets_)[v];
  }
  std::uint8_t* present_row(Vertex v) noexcept {
    return present_.data() + (*offsets_)[v];
  }

  BitVec& payload(std::uint64_t e) noexcept { return payloads_[e]; }
  std::uint8_t& present(std::uint64_t e) noexcept { return present_[e]; }
  std::size_t size() const noexcept { return payloads_.size(); }

  /// Mark every slot absent. One memset over E bytes; payload buffers keep
  /// both their heap storage and their (now unobservable) contents.
  void reset_presence() noexcept {
    if (!present_.empty())
      std::memset(present_.data(), 0, present_.size());
  }

 private:
  const std::vector<std::uint64_t>* offsets_ = nullptr;
  std::vector<BitVec> payloads_;
  std::vector<std::uint8_t> present_;
};

}  // namespace csd::congest::detail
