// Asynchronous message-passing engine + synchronizer.
//
// The CONGEST model is synchronous; real networks are not. This engine runs
// the *same* NodeProgram objects over an event-driven network with
// adversarially jittered per-message delays (seeded, FIFO per link) under a
// classic frame synchronizer: every pulse, every node sends exactly one
// frame per incident edge — [halted][has_payload][payload] — and advances
// to the next pulse only once the current pulse's frame has arrived on
// every live port. With FIFO links this reproduces the synchronous
// execution exactly: per-node verdicts, payload bits, and message contents
// all match the synchronous engine bit-for-bit (tested), at the cost of
// 2 synchronizer-overhead bits per edge per pulse.
//
// This justifies studying the paper's algorithms on the synchronous
// simulator: nothing in their behaviour depends on timing.
#pragma once

#include <cstdint>

#include "congest/network.hpp"

namespace csd::congest {

struct AsyncConfig {
  /// Per-edge payload bandwidth per pulse (0 = unbounded), as in CONGEST.
  std::uint64_t bandwidth = 32;
  /// Pulse cap, mirroring NetworkConfig::max_rounds.
  std::uint64_t max_pulses = 1'000'000;
  /// Seed for node-local randomness (same derivation as the synchronous
  /// engine, so programs draw identical randomness) and for link delays.
  std::uint64_t seed = 1;
  std::uint64_t namespace_size = 0;
  /// Broadcast-only CONGEST enforcement, as in NetworkConfig.
  bool broadcast_only = false;
  /// Each frame's link delay is drawn uniformly from [1, max_delay].
  std::uint32_t max_delay = 8;
};

struct AsyncRunOutcome {
  bool completed = false;
  std::vector<Verdict> verdicts;
  bool detected = false;
  /// Pulses executed (== synchronous rounds when the run completes).
  std::uint64_t pulses = 0;
  /// Virtual time of the last delivery (event-queue clock).
  std::uint64_t virtual_time = 0;
  /// Program payload bits (comparable to the synchronous metrics).
  std::uint64_t payload_bits = 0;
  /// Synchronizer framing overhead in bits (2 per frame).
  std::uint64_t overhead_bits = 0;
  std::uint64_t frames = 0;
};

/// Run `factory`'s programs over `topology` asynchronously under the frame
/// synchronizer. Equivalent to Network::run with the matching config.
AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          const ProgramFactory& factory);

/// Run with explicit identifiers.
AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          std::vector<NodeId> ids,
                          const ProgramFactory& factory);

}  // namespace csd::congest
