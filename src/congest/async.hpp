// Asynchronous message-passing engine + synchronizer.
//
// The CONGEST model is synchronous; real networks are not. This engine runs
// the *same* NodeProgram objects over an event-driven network with
// adversarially jittered per-message delays (seeded, FIFO per link) under a
// classic frame synchronizer: every pulse, every node sends exactly one
// frame per incident edge — [halted][has_payload][payload] — and advances
// to the next pulse only once the current pulse's frame has arrived on
// every live port. With FIFO links this reproduces the synchronous
// execution exactly: per-node verdicts, payload bits, and message contents
// all match the synchronous engine bit-for-bit (tested), at the cost of
// Frame::kOverheadBits synchronizer-overhead bits (pulse + flags) per edge
// per pulse.
//
// This justifies studying the paper's algorithms on the synchronous
// simulator: nothing in their behaviour depends on timing.
//
// Links may additionally be *faulty* (congest/faults.hpp): seeded frame
// drops, payload bit-flips, and node crashes. Two wire disciplines:
//   * TransportMode::Raw — faults hit the synchronizer directly. A dropped
//     frame starves its destination port (the node stalls; the event queue
//     drains and the run ends with the stall recorded — no hang), and a
//     corrupted payload reaches the program (a program that throws on it
//     is recorded as crashed).
//   * TransportMode::Reliable — the ARQ transport (congest/transport.hpp)
//     sits under the synchronizer: CRC-checked, acked, retransmitted
//     packets restore exact FIFO semantics, so verdicts and payload bits
//     match the synchronous engine bit-for-bit even on heavily faulty
//     links. Transport overhead (seq + CRC fields, acks, retransmissions)
//     is accounted separately in transport_bits and never pollutes the
//     CONGEST payload accounting.
#pragma once

#include <cstdint>
#include <memory>

#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "congest/snapshot.hpp"
#include "congest/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/round_trace.hpp"

namespace csd::congest {

/// Node recovery for the async engine: a node killed by a *scheduled* crash
/// (FaultPlan::crash_schedule) rejoins after a configurable virtual-time
/// delay, rebuilding its program state by replaying its logged inbox history
/// — the in-engine model of "restart the host and restore its checkpoint".
/// Program-faulted nodes never recover: the fault is a deterministic
/// function of a delivered payload, so a restored replica would re-crash on
/// the same input.
///
/// While a node is down its neighbors' ARQ senders keep retransmitting into
/// the void; the engine parks those retransmission timers (and the dead
/// node's own pending-packet timers) instead of abandoning them, so after
/// the rejoin the backlogs drain and — on reliable links — the run finishes
/// with the fault-free verdicts (tested; see also the fuzzer's recovery
/// oracle).
struct RecoveryPolicy {
  bool enabled = false;
  /// Virtual-time ticks between the crash and the rejoin; 0 derives
  /// 4 * RTO (long enough that neighbors' timers have fired at least once).
  std::uint64_t rejoin_delay = 0;
  /// Recovery budget per node; crashes beyond it are final.
  std::uint32_t max_recoveries = 1;
};

struct AsyncConfig {
  /// Per-edge payload bandwidth per pulse (0 = unbounded), as in CONGEST.
  std::uint64_t bandwidth = 32;
  /// Pulse cap, mirroring NetworkConfig::max_rounds.
  std::uint64_t max_pulses = 1'000'000;
  /// Seed for node-local randomness (same derivation as the synchronous
  /// engine, so programs draw identical randomness) and for link delays.
  std::uint64_t seed = 1;
  std::uint64_t namespace_size = 0;
  /// Broadcast-only CONGEST enforcement, as in NetworkConfig.
  bool broadcast_only = false;
  /// Each frame's link delay is drawn uniformly from [1, max_delay].
  std::uint32_t max_delay = 8;
  /// Fault environment (drops, corruption, crashes). Empty = fault-free.
  FaultPlan faults;
  /// Wire discipline; Reliable restores exact semantics under faults.
  TransportMode transport = TransportMode::Raw;
  TransportConfig transport_cfg;
  /// Per-pulse observability. Accounted at the synchronizer's frame
  /// emission (sender side, payload-carrying frames only), so a fault-free
  /// async trace matches the synchronous engine's trace bit-for-bit.
  obs::TraceOptions trace;
  /// Crash recovery (see RecoveryPolicy). Enabling it turns on inbox
  /// logging so any node can be replayed back to life.
  RecoveryPolicy recovery;
  /// Capture a csd-ckpt-v1 snapshot into AsyncRunOutcome::checkpoint the
  /// first time the pulse counter reaches this value (0 = never). Capture
  /// happens between two scheduler events and never perturbs the run.
  std::uint64_t checkpoint_at_pulse = 0;
  /// Stall watchdog: cut the run (faults.watchdog_stalls = 1) when the
  /// event clock advances `stall_window * RTO` past the last delivery or
  /// recovery without progress. 0 = disabled.
  std::uint64_t stall_window = 0;
  /// Optional csd-metrics-v2 plane (non-owning; must outlive the run).
  /// Write-only and excluded from config_digest, exactly like the sync
  /// engine's NetworkConfig::telemetry. nullptr = zero cost.
  obs::Telemetry* telemetry = nullptr;
};

struct AsyncRunOutcome {
  bool completed = false;
  std::vector<Verdict> verdicts;
  bool detected = false;
  /// Pulses executed (== synchronous rounds when the run completes).
  std::uint64_t pulses = 0;
  /// Virtual time of the last delivery (event-queue clock).
  std::uint64_t virtual_time = 0;
  /// Program payload bits (comparable to the synchronous metrics). Counted
  /// once per frame when the synchronizer hands it to the wire; drops and
  /// retransmissions never change it.
  std::uint64_t payload_bits = 0;
  /// Synchronizer framing overhead in bits (Frame::kOverheadBits per frame:
  /// the pulse field plus the halted/has-payload flags).
  std::uint64_t overhead_bits = 0;
  std::uint64_t frames = 0;
  /// Reliable-transport overhead in bits: seq + CRC fields on first
  /// transmissions, full packets for retransmissions, and ack packets.
  std::uint64_t transport_bits = 0;
  /// Ack packets sent by the reliable transport.
  std::uint64_t acks = 0;
  /// Structured fault/violation account (see congest/faults.hpp).
  FaultReport faults;
  /// Per-pulse payload trajectory (empty unless config.trace.enabled).
  obs::RunTrace trace;
  /// Trace storage footprint in bytes; 0 when tracing is disabled.
  std::uint64_t trace_bytes = 0;
  /// Engine counters by name (the FaultReport counters, surfaced uniformly
  /// across both engines — see fault_counters).
  obs::MetricsRegistry counters;
  /// Wall-clock split (compute / synchronizer delivery / transport), filled
  /// only when config.trace.timers is set. Never part of the trace or of
  /// any determinism digest: wall clocks are not reproducible.
  obs::EngineTimers timers;
  /// The csd-ckpt-v1 snapshot captured at config.checkpoint_at_pulse
  /// (nullptr when none was requested or the run ended first). Feed it to
  /// resume_async — with the same topology, ids, and config — to continue
  /// the run bit-identically.
  std::shared_ptr<const Snapshot> checkpoint;
};

/// Run `factory`'s programs over `topology` asynchronously under the frame
/// synchronizer. Equivalent to Network::run with the matching config.
AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          const ProgramFactory& factory);

/// Run with explicit identifiers.
AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          std::vector<NodeId> ids,
                          const ProgramFactory& factory);

/// Resume an async run from a csd-ckpt-v1 snapshot captured by a run with
/// the same topology, identifiers, and configuration (CHECK-enforced via
/// the snapshot identity digests). The continuation is bit-identical to the
/// uninterrupted run: verdicts, FaultReport, accounting, and the trace
/// suffix for pulses >= the capture point all match.
AsyncRunOutcome resume_async(const Graph& topology, const AsyncConfig& config,
                             std::vector<NodeId> ids,
                             const ProgramFactory& factory,
                             const Snapshot& snapshot);

/// Resume with the default identity assignment ids[v] = v.
AsyncRunOutcome resume_async(const Graph& topology, const AsyncConfig& config,
                             const ProgramFactory& factory,
                             const Snapshot& snapshot);

}  // namespace csd::congest
