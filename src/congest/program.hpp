// Node-program interface for the CONGEST simulator.
//
// A distributed algorithm is a NodeProgram factory: the Network instantiates
// one program per node, then drives synchronous rounds. In each round the
// program sees the messages delivered this round (sent by neighbors in the
// previous round), may send at most one message of at most B bits per
// incident edge, and may set its verdict or halt.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "support/bitvec.hpp"
#include "support/rng.hpp"

namespace csd::congest {

/// Network-wide identifier of a node. Identifier assignment is separate from
/// topology (several lower bounds quantify over adversarial/random IDs).
using NodeId = std::uint64_t;

/// Local decision of a node. Following Definition 1 of the paper: on a graph
/// containing H some node must Reject; on an H-free graph all must Accept.
enum class Verdict : std::uint8_t { Accept, Reject };

/// The per-round, per-node view handed to a NodeProgram. All model
/// interaction flows through this interface; programs cannot observe
/// anything else (no shared memory, no global state).
class NodeApi {
 public:
  virtual ~NodeApi() = default;

  /// This node's identifier.
  virtual NodeId id() const = 0;
  /// Number of incident edges; ports are 0..degree()-1.
  virtual std::uint32_t degree() const = 0;
  /// Identifier of the neighbor across `port` (KT1 assumption: nodes know
  /// their neighbors' identifiers; costs one round otherwise).
  virtual NodeId neighbor_id(std::uint32_t port) const = 0;
  /// Current round number (0-based).
  virtual std::uint64_t round() const = 0;
  /// Number of nodes in the network (standard global-knowledge assumption).
  virtual std::uint64_t network_size() const = 0;
  /// Identifier namespace size N >= network_size(); all ids are in [0, N).
  /// Algorithms encode identifiers in ⌈log2 N⌉ bits.
  virtual std::uint64_t namespace_size() const = 0;
  /// Per-edge bandwidth in bits per round; 0 means unbounded (LOCAL model).
  virtual std::uint64_t bandwidth() const = 0;

  /// Message received on `port` this round; nullptr if none. The buffer is
  /// engine-owned and valid until the end of the current on_round call.
  virtual const BitVec* inbox(std::uint32_t port) const = 0;

  /// Queue `payload` for delivery to the neighbor on `port` next round.
  /// At most one send per port per round; at most bandwidth() bits.
  virtual void send(std::uint32_t port, BitVec payload) = 0;
  /// Send the same payload on every port.
  virtual void broadcast(const BitVec& payload) = 0;

  /// Node-local deterministic randomness (derived from the run seed).
  virtual Rng& rng() = 0;

  /// An empty payload buffer recycled from this node's already-consumed
  /// inbox messages (contents cleared, heap capacity retained). Semantically
  /// identical to `BitVec{}`; building outgoing payloads from it (e.g.
  /// `wire::Writer w(api.scratch());`) eliminates the one heap allocation
  /// per message per round that otherwise dominates tight send loops.
  virtual BitVec scratch() { return BitVec{}; }

  /// Annotate the current round with the algorithmic phase it belongs to
  /// ("phase1-pipeline", "peel", ...). Purely observational: a no-op unless
  /// the run records a trace (obs/round_trace.hpp), in which case the round
  /// is attributed to `name` in the trace's phase spans. Programs must
  /// derive the name from the round number (not from node-local state) so
  /// every node declares the same phase for a round — the trace keeps the
  /// first declaration.
  virtual void phase(std::string_view name) { (void)name; }

  /// Set this node's verdict to Reject ("I detected a copy of H"). Sticky.
  virtual void reject() = 0;
  /// Stop participating after this round. The run ends when all halt.
  virtual void halt() = 0;
};

/// A distributed algorithm, instantiated once per node.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once per round, in increasing round order. Round 0 has an empty
  /// inbox. The program must eventually call api.halt() on every node (or
  /// the network stops at its round cap and flags it).
  virtual void on_round(NodeApi& api) = 0;
};

/// Creates the program for the node with the given topology index. The same
/// factory is used for every node (uniform algorithms), but the factory may
/// inspect the index — used by lower-bound harnesses that wire special roles.
using ProgramFactory =
    std::function<std::unique_ptr<NodeProgram>(std::uint32_t /*node index*/)>;

}  // namespace csd::congest
