#include "congest/primitives.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/wire.hpp"

namespace csd::congest {

namespace {

std::uint64_t fold(Aggregate kind, std::uint64_t a, std::uint64_t b) {
  switch (kind) {
    case Aggregate::Sum:
      return a + b;
    case Aggregate::Min:
      return std::min(a, b);
    case Aggregate::Max:
      return std::max(a, b);
  }
  CSD_CHECK(false);
  return 0;
}

/// Wire tags for the value phase.
constexpr std::uint64_t kTagUp = 0;    // convergecast toward the root
constexpr std::uint64_t kTagDown = 1;  // final aggregate toward the leaves

class BfsAggregateProgram final : public NodeProgram {
 public:
  BfsAggregateProgram(const BfsAggregateConfig& cfg,
                      BfsAggregateResult* result, std::uint32_t index)
      : cfg_(cfg), result_(result), index_(index) {}

  void on_round(NodeApi& api) override {
    const std::uint64_t n = api.network_size();
    const unsigned id_bits = wire::bits_for(api.namespace_size());
    const unsigned dist_bits = wire::bits_for(n + 1);
    if (api.round() == 0) {
      CSD_CHECK_MSG(
          api.bandwidth() == 0 ||
              api.bandwidth() >=
                  bfs_aggregate_min_bandwidth(api.namespace_size(),
                                              cfg_.value_bits),
          "bandwidth too small for BFS aggregation");
      best_root_ = api.id();
      best_dist_ = 0;
      parent_port_ = kSelfParent;
      value_ = cfg_.contribution ? cfg_.contribution(index_) : 0;
      child_port_.assign(api.degree(), false);
      child_value_seen_.assign(api.degree(), false);
      improved_ = true;  // announce the initial claim
    }

    if (api.round() < n) {
      election_round(api, id_bits, dist_bits);
      return;
    }
    if (api.round() == n) {
      // Final election messages arrive this round, then everyone announces
      // parent/non-parent per port.
      election_absorb(api, id_bits, dist_bits, /*allow_improve=*/true);
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        wire::Writer w;
        w.boolean(parent_port_ != kSelfParent &&
                  p == static_cast<std::uint32_t>(parent_port_));
        api.send(p, std::move(w).take());
      }
      return;
    }
    if (api.round() == n + 1) {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        CSD_CHECK_MSG(msg != nullptr, "missing parent announcement");
        wire::Reader r(*msg);
        child_port_[p] = r.boolean();
      }
      children_known_ = true;
    } else if (api.round() > n + 1) {
      // Value phase: collect convergecast values and/or the downcast.
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader r(*msg);
        const std::uint64_t tag = r.u(1);
        const std::uint64_t value = r.u(cfg_.value_bits);
        if (tag == kTagUp) {
          CSD_CHECK_MSG(child_port_[p], "up-value from a non-child");
          CSD_CHECK(!child_value_seen_[p]);
          child_value_seen_[p] = true;
          value_ = fold(cfg_.fold, value_, value);
        } else {
          CSD_CHECK_MSG(parent_port_ != kSelfParent &&
                            p == static_cast<std::uint32_t>(parent_port_),
                        "down-value from a non-parent");
          finish(api, value);
          return;
        }
      }
    }

    if (!children_known_ || done_) return;

    const bool all_children_in = [&] {
      for (std::uint32_t p = 0; p < api.degree(); ++p)
        if (child_port_[p] && !child_value_seen_[p]) return false;
      return true;
    }();
    if (!all_children_in) return;

    if (parent_port_ == kSelfParent) {
      // Root: the fold is complete; push it down and finish.
      finish(api, value_);
    } else if (!sent_up_) {
      wire::Writer w;
      w.u(kTagUp, 1);
      w.u(value_, cfg_.value_bits);
      api.send(static_cast<std::uint32_t>(parent_port_), std::move(w).take());
      sent_up_ = true;
    }
  }

 private:
  static constexpr std::int64_t kSelfParent = -1;

  void election_round(NodeApi& api, unsigned id_bits, unsigned dist_bits) {
    if (api.round() > 0)
      election_absorb(api, id_bits, dist_bits, /*allow_improve=*/true);
    if (improved_) {
      wire::Writer w;
      w.u(best_root_, id_bits);
      w.u(best_dist_, dist_bits);
      api.broadcast(std::move(w).take());
      improved_ = false;
    }
  }

  void election_absorb(NodeApi& api, unsigned id_bits, unsigned dist_bits,
                       bool allow_improve) {
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      const auto* msg = api.inbox(p);
      if (msg == nullptr) continue;
      wire::Reader r(*msg);
      const NodeId root = r.u(id_bits);
      const std::uint64_t dist = r.u(dist_bits);
      if (!allow_improve) continue;
      if (root < best_root_ ||
          (root == best_root_ && dist + 1 < best_dist_)) {
        best_root_ = root;
        best_dist_ = dist + 1;
        parent_port_ = static_cast<std::int64_t>(p);
        improved_ = true;
      }
    }
  }

  void finish(NodeApi& api, std::uint64_t final_value) {
    for (std::uint32_t p = 0; p < api.degree(); ++p) {
      if (!child_port_[p]) continue;
      wire::Writer w;
      w.u(kTagDown, 1);
      w.u(final_value, cfg_.value_bits);
      api.send(p, std::move(w).take());
    }
    result_->distance[index_] = static_cast<std::uint32_t>(best_dist_);
    result_->parent[index_] =
        parent_port_ == kSelfParent
            ? index_
            : topology_neighbor(api, static_cast<std::uint32_t>(parent_port_));
    result_->aggregate[index_] = final_value;
    result_->reached[index_] = true;
    if (cfg_.reject_if && cfg_.reject_if(final_value)) api.reject();
    done_ = true;
    api.halt();
  }

  /// Topology index of the neighbor on `port`: identifiers are not indices
  /// in general, so the sink records the *identifier* when they differ.
  std::uint32_t topology_neighbor(NodeApi& api, std::uint32_t port) const {
    return static_cast<std::uint32_t>(api.neighbor_id(port));
  }

  BfsAggregateConfig cfg_;
  BfsAggregateResult* result_;
  std::uint32_t index_;
  NodeId best_root_ = 0;
  std::uint64_t best_dist_ = 0;
  std::int64_t parent_port_ = kSelfParent;
  bool improved_ = false;
  bool children_known_ = false;
  bool sent_up_ = false;
  bool done_ = false;
  std::uint64_t value_ = 0;
  std::vector<bool> child_port_;
  std::vector<bool> child_value_seen_;
};

}  // namespace

ProgramFactory bfs_aggregate_program(const BfsAggregateConfig& cfg,
                                     BfsAggregateResult* result) {
  CSD_CHECK(result != nullptr);
  return [cfg, result](std::uint32_t index) {
    return std::make_unique<BfsAggregateProgram>(cfg, result, index);
  };
}

std::uint64_t bfs_aggregate_round_budget(std::uint64_t n) {
  return 3 * n + 8;
}

std::uint64_t bfs_aggregate_min_bandwidth(std::uint64_t namespace_size,
                                          std::uint32_t value_bits) {
  return std::max<std::uint64_t>(
      wire::bits_for(namespace_size) + wire::bits_for(namespace_size + 1),
      1 + value_bits);
}

BfsAggregateResult run_bfs_aggregate(const Graph& g,
                                     const BfsAggregateConfig& cfg,
                                     std::uint64_t bandwidth,
                                     std::uint64_t seed) {
  BfsAggregateResult result;
  const Vertex n = g.num_vertices();
  result.distance.assign(n, 0);
  result.parent.assign(n, 0);
  result.aggregate.assign(n, 0);
  result.reached.assign(n, false);
  NetworkConfig net_cfg;
  net_cfg.bandwidth = bandwidth;
  net_cfg.seed = seed;
  net_cfg.max_rounds = bfs_aggregate_round_budget(n);
  run_congest(g, net_cfg, bfs_aggregate_program(cfg, &result));
  return result;
}

}  // namespace csd::congest
