#include "congest/snapshot.hpp"

#include <bit>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace csd::congest {

namespace {

// ------------------------------------------------------- JSON helpers --

obs::Json bitvec_to_json(const BitVec& bits) {
  obs::Json j = obs::Json::object();
  j.set("n", static_cast<std::uint64_t>(bits.size()));
  obs::Json words = obs::Json::array();
  for (const std::uint64_t w : bits.words()) words.push(w);
  j.set("w", std::move(words));
  return j;
}

BitVec bitvec_from_json(const obs::Json& j) {
  const std::uint64_t n = j.at("n").as_uint();
  BitVec bits;
  std::uint64_t remaining = n;
  for (const obs::Json& word : j.at("w").items()) {
    const unsigned width =
        remaining >= 64 ? 64u : static_cast<unsigned>(remaining);
    CSD_CHECK_MSG(width > 0, "bit vector has more words than bits");
    bits.append_bits(word.as_uint(), width);
    remaining -= width;
  }
  CSD_CHECK_MSG(remaining == 0, "bit vector has fewer words than bits");
  return bits;
}

obs::Json payload_to_json(const std::optional<BitVec>& payload) {
  if (!payload.has_value()) return obs::Json();
  return bitvec_to_json(*payload);
}

std::optional<BitVec> payload_from_json(const obs::Json& j) {
  if (j.is_null()) return std::nullopt;
  return bitvec_from_json(j);
}

obs::Json rng_to_json(const RngState& state) {
  obs::Json j = obs::Json::array();
  for (const std::uint64_t word : state) j.push(word);
  return j;
}

RngState rng_from_json(const obs::Json& j) {
  CSD_CHECK_MSG(j.items().size() == 4, "RNG state must have 4 words");
  RngState state{};
  for (std::size_t i = 0; i < 4; ++i) state[i] = j.items()[i].as_uint();
  return state;
}

obs::Json streams_to_json(
    const std::vector<std::vector<RngState>>& streams) {
  obs::Json j = obs::Json::array();
  for (const auto& per_port : streams) {
    obs::Json row = obs::Json::array();
    for (const auto& state : per_port) row.push(rng_to_json(state));
    j.push(std::move(row));
  }
  return j;
}

std::vector<std::vector<RngState>> streams_from_json(const obs::Json& j) {
  std::vector<std::vector<RngState>> streams;
  streams.reserve(j.items().size());
  for (const obs::Json& row : j.items()) {
    auto& per_port = streams.emplace_back();
    per_port.reserve(row.items().size());
    for (const obs::Json& state : row.items())
      per_port.push_back(rng_from_json(state));
  }
  return streams;
}

obs::Json u64s_to_json(const std::vector<std::uint64_t>& values) {
  obs::Json j = obs::Json::array();
  for (const std::uint64_t v : values) j.push(v);
  return j;
}

std::vector<std::uint64_t> u64s_from_json(const obs::Json& j) {
  std::vector<std::uint64_t> values;
  values.reserve(j.items().size());
  for (const obs::Json& v : j.items()) values.push_back(v.as_uint());
  return values;
}

obs::Json u32s_to_json(const std::vector<std::uint32_t>& values) {
  obs::Json j = obs::Json::array();
  for (const std::uint32_t v : values) j.push(v);
  return j;
}

std::vector<std::uint32_t> u32s_from_json(const obs::Json& j) {
  std::vector<std::uint32_t> values;
  values.reserve(j.items().size());
  for (const obs::Json& v : j.items())
    values.push_back(static_cast<std::uint32_t>(v.as_uint()));
  return values;
}

obs::Json u8s_to_json(const std::vector<std::uint8_t>& values) {
  obs::Json j = obs::Json::array();
  for (const std::uint8_t v : values) j.push(static_cast<std::uint64_t>(v));
  return j;
}

std::vector<std::uint8_t> u8s_from_json(const obs::Json& j) {
  std::vector<std::uint8_t> values;
  values.reserve(j.items().size());
  for (const obs::Json& v : j.items())
    values.push_back(static_cast<std::uint8_t>(v.as_uint()));
  return values;
}

obs::Json frame_to_json(const Frame& frame) {
  obs::Json j = obs::Json::object();
  j.set("p", frame.pulse);
  j.set("h", frame.sender_halted);
  j.set("pl", payload_to_json(frame.payload));
  return j;
}

Frame frame_from_json(const obs::Json& j) {
  Frame frame;
  frame.pulse = j.at("p").as_uint();
  frame.sender_halted = j.at("h").as_bool();
  frame.payload = payload_from_json(j.at("pl"));
  return frame;
}

obs::Json inbox_log_to_json(const InboxLog& log) {
  obs::Json rounds = obs::Json::array();
  for (const auto& row : log.entries) {
    obs::Json ports = obs::Json::array();
    for (const auto& payload : row) ports.push(payload_to_json(payload));
    rounds.push(std::move(ports));
  }
  return rounds;
}

InboxLog inbox_log_from_json(const obs::Json& j) {
  InboxLog log;
  log.entries.reserve(j.items().size());
  for (const obs::Json& row : j.items()) {
    auto& ports = log.entries.emplace_back();
    ports.reserve(row.items().size());
    for (const obs::Json& payload : row.items())
      ports.push_back(payload_from_json(payload));
  }
  return log;
}

obs::Json identity_to_json(const SnapshotIdentity& identity) {
  obs::Json j = obs::Json::object();
  j.set("topology", identity.topology);
  j.set("config", identity.config);
  j.set("seed", identity.seed);
  return j;
}

SnapshotIdentity identity_from_json(const obs::Json& j) {
  SnapshotIdentity identity;
  identity.topology = j.at("topology").as_uint();
  identity.config = j.at("config").as_uint();
  identity.seed = j.at("seed").as_uint();
  return identity;
}

obs::Json report_to_json(const FaultReport& report) {
  obs::Json j = obs::Json::object();
  j.set("frames_dropped", report.frames_dropped);
  j.set("frames_corrupted", report.frames_corrupted);
  j.set("retransmissions", report.retransmissions);
  j.set("checksum_rejects", report.checksum_rejects);
  j.set("duplicate_packets", report.duplicate_packets);
  j.set("duplicate_acks", report.duplicate_acks);
  j.set("transport_failures", report.transport_failures);
  j.set("crashed_nodes", u32s_to_json(report.crashed_nodes));
  j.set("recovered_nodes", u32s_to_json(report.recovered_nodes));
  j.set("replayed_pulses", report.replayed_pulses);
  j.set("watchdog_stalls", report.watchdog_stalls);
  j.set("stalled_nodes", u32s_to_json(report.stalled_nodes));
  obs::Json violations = obs::Json::array();
  for (const auto& violation : report.violations) {
    obs::Json v = obs::Json::object();
    v.set("kind", static_cast<std::uint64_t>(violation.kind));
    v.set("node", violation.node);
    v.set("round", violation.round);
    v.set("detail", violation.detail);
    violations.push(std::move(v));
  }
  j.set("violations", std::move(violations));
  j.set("detected_by_survivors", report.detected_by_survivors);
  return j;
}

FaultReport report_from_json(const obs::Json& j) {
  FaultReport report;
  report.frames_dropped = j.at("frames_dropped").as_uint();
  report.frames_corrupted = j.at("frames_corrupted").as_uint();
  report.retransmissions = j.at("retransmissions").as_uint();
  report.checksum_rejects = j.at("checksum_rejects").as_uint();
  report.duplicate_packets = j.at("duplicate_packets").as_uint();
  report.duplicate_acks = j.at("duplicate_acks").as_uint();
  report.transport_failures = j.at("transport_failures").as_uint();
  report.crashed_nodes = u32s_from_json(j.at("crashed_nodes"));
  report.recovered_nodes = u32s_from_json(j.at("recovered_nodes"));
  report.replayed_pulses = j.at("replayed_pulses").as_uint();
  report.watchdog_stalls = j.at("watchdog_stalls").as_uint();
  report.stalled_nodes = u32s_from_json(j.at("stalled_nodes"));
  for (const obs::Json& v : j.at("violations").items()) {
    ProtocolViolation violation;
    const std::uint64_t kind = v.at("kind").as_uint();
    CSD_CHECK_MSG(kind <= static_cast<std::uint64_t>(
                              ViolationKind::ProgramFault),
                  "unknown violation kind " << kind);
    violation.kind = static_cast<ViolationKind>(kind);
    violation.node = static_cast<std::uint32_t>(v.at("node").as_uint());
    violation.round = v.at("round").as_uint();
    violation.detail = v.at("detail").as_string();
    report.violations.push_back(std::move(violation));
  }
  report.detected_by_survivors = j.at("detected_by_survivors").as_bool();
  return report;
}

obs::Json sender_state_to_json(const LinkSenderState& state) {
  obs::Json j = obs::Json::object();
  j.set("next_seq", state.next_seq);
  obs::Json pending = obs::Json::array();
  for (const auto& entry : state.pending) {
    obs::Json e = obs::Json::object();
    e.set("seq", entry.seq);
    e.set("frame", frame_to_json(entry.frame));
    e.set("crc", entry.crc);
    e.set("attempts", entry.attempts);
    pending.push(std::move(e));
  }
  j.set("pending", std::move(pending));
  return j;
}

LinkSenderState sender_state_from_json(const obs::Json& j) {
  LinkSenderState state;
  state.next_seq = j.at("next_seq").as_uint();
  for (const obs::Json& e : j.at("pending").items()) {
    LinkSenderState::PendingEntry entry;
    entry.seq = e.at("seq").as_uint();
    entry.frame = frame_from_json(e.at("frame"));
    entry.crc = static_cast<std::uint32_t>(e.at("crc").as_uint());
    entry.attempts = static_cast<std::uint32_t>(e.at("attempts").as_uint());
    state.pending.push_back(std::move(entry));
  }
  return state;
}

obs::Json receiver_state_to_json(const LinkReceiverState& state) {
  obs::Json j = obs::Json::object();
  j.set("next_expected", state.next_expected);
  obs::Json reorder = obs::Json::array();
  for (const auto& entry : state.reorder) {
    obs::Json e = obs::Json::object();
    e.set("seq", entry.seq);
    e.set("frame", frame_to_json(entry.frame));
    reorder.push(std::move(e));
  }
  j.set("reorder", std::move(reorder));
  return j;
}

LinkReceiverState receiver_state_from_json(const obs::Json& j) {
  LinkReceiverState state;
  state.next_expected = j.at("next_expected").as_uint();
  for (const obs::Json& e : j.at("reorder").items()) {
    LinkReceiverState::ReorderEntry entry;
    entry.seq = e.at("seq").as_uint();
    entry.frame = frame_from_json(e.at("frame"));
    state.reorder.push_back(std::move(entry));
  }
  return state;
}

obs::Json sync_to_json(const SyncSnapshot& snap) {
  obs::Json j = obs::Json::object();
  j.set("identity", identity_to_json(snap.identity));
  j.set("round", snap.round);
  obs::Json inbox = obs::Json::array();
  for (const auto& log : snap.inbox) inbox.push(inbox_log_to_json(log));
  j.set("inbox", std::move(inbox));
  j.set("crashed", u8s_to_json(snap.crashed));
  j.set("halted", u8s_to_json(snap.halted));
  j.set("messages", snap.messages);
  j.set("total_bits", snap.total_bits);
  j.set("max_message_bits", snap.max_message_bits);
  j.set("bits_sent_by_node", u64s_to_json(snap.bits_sent_by_node));
  j.set("trace_bytes", snap.trace_bytes);
  j.set("faults", report_to_json(snap.faults));
  j.set("fault_streams", streams_to_json(snap.fault_streams));
  return j;
}

SyncSnapshot sync_from_json(const obs::Json& j) {
  SyncSnapshot snap;
  snap.identity = identity_from_json(j.at("identity"));
  snap.round = j.at("round").as_uint();
  for (const obs::Json& log : j.at("inbox").items())
    snap.inbox.push_back(inbox_log_from_json(log));
  snap.crashed = u8s_from_json(j.at("crashed"));
  snap.halted = u8s_from_json(j.at("halted"));
  snap.messages = j.at("messages").as_uint();
  snap.total_bits = j.at("total_bits").as_uint();
  snap.max_message_bits = j.at("max_message_bits").as_uint();
  snap.bits_sent_by_node = u64s_from_json(j.at("bits_sent_by_node"));
  snap.trace_bytes = j.at("trace_bytes").as_uint();
  snap.faults = report_from_json(j.at("faults"));
  snap.fault_streams = streams_from_json(j.at("fault_streams"));
  return snap;
}

obs::Json event_to_json(const EventRecord& event) {
  obs::Json j = obs::Json::object();
  j.set("t", event.time);
  j.set("q", event.seq);
  j.set("k", static_cast<std::uint64_t>(event.kind));
  j.set("s", event.src);
  j.set("sp", event.src_port);
  j.set("d", event.dst);
  j.set("dp", event.dst_port);
  j.set("ls", event.link_seq);
  if (event.kind == 0) {
    j.set("ps", event.packet_seq);
    j.set("pc", event.packet_crc);
    j.set("f", frame_to_json(event.frame));
  }
  return j;
}

EventRecord event_from_json(const obs::Json& j) {
  EventRecord event;
  event.time = j.at("t").as_uint();
  event.seq = j.at("q").as_uint();
  event.kind = static_cast<std::uint8_t>(j.at("k").as_uint());
  CSD_CHECK_MSG(event.kind <= 3, "unknown event kind");
  event.src = static_cast<std::uint32_t>(j.at("s").as_uint());
  event.src_port = static_cast<std::uint32_t>(j.at("sp").as_uint());
  event.dst = static_cast<std::uint32_t>(j.at("d").as_uint());
  event.dst_port = static_cast<std::uint32_t>(j.at("dp").as_uint());
  event.link_seq = j.at("ls").as_uint();
  if (event.kind == 0) {
    event.packet_seq = j.at("ps").as_uint();
    event.packet_crc = static_cast<std::uint32_t>(j.at("pc").as_uint());
    event.frame = frame_from_json(j.at("f"));
  }
  return event;
}

obs::Json async_node_to_json(const AsyncNodeSnapshot& node) {
  obs::Json j = obs::Json::object();
  j.set("pulse", node.pulse);
  j.set("local_time", node.local_time);
  obs::Json arrived = obs::Json::array();
  for (const auto& queue : node.arrived) {
    obs::Json frames = obs::Json::array();
    for (const Frame& frame : queue) frames.push(frame_to_json(frame));
    arrived.push(std::move(frames));
  }
  j.set("arrived", std::move(arrived));
  j.set("port_dead", u8s_to_json(node.port_dead));
  j.set("running", static_cast<std::uint64_t>(node.running));
  j.set("crashed", static_cast<std::uint64_t>(node.crashed));
  j.set("halted", static_cast<std::uint64_t>(node.halted));
  j.set("crash_done", static_cast<std::uint64_t>(node.crash_done));
  j.set("recoveries_used", node.recoveries_used);
  j.set("inbox", inbox_log_to_json(node.inbox));
  obs::Json senders = obs::Json::array();
  for (const auto& state : node.senders)
    senders.push(sender_state_to_json(state));
  j.set("senders", std::move(senders));
  obs::Json receivers = obs::Json::array();
  for (const auto& state : node.receivers)
    receivers.push(receiver_state_to_json(state));
  j.set("receivers", std::move(receivers));
  j.set("link_watermark", u64s_to_json(node.link_watermark));
  return j;
}

AsyncNodeSnapshot async_node_from_json(const obs::Json& j) {
  AsyncNodeSnapshot node;
  node.pulse = j.at("pulse").as_uint();
  node.local_time = j.at("local_time").as_uint();
  for (const obs::Json& queue : j.at("arrived").items()) {
    auto& frames = node.arrived.emplace_back();
    for (const obs::Json& frame : queue.items())
      frames.push_back(frame_from_json(frame));
  }
  node.port_dead = u8s_from_json(j.at("port_dead"));
  node.running = static_cast<std::uint8_t>(j.at("running").as_uint());
  node.crashed = static_cast<std::uint8_t>(j.at("crashed").as_uint());
  node.halted = static_cast<std::uint8_t>(j.at("halted").as_uint());
  node.crash_done = static_cast<std::uint8_t>(j.at("crash_done").as_uint());
  node.recoveries_used =
      static_cast<std::uint32_t>(j.at("recoveries_used").as_uint());
  node.inbox = inbox_log_from_json(j.at("inbox"));
  for (const obs::Json& state : j.at("senders").items())
    node.senders.push_back(sender_state_from_json(state));
  for (const obs::Json& state : j.at("receivers").items())
    node.receivers.push_back(receiver_state_from_json(state));
  node.link_watermark = u64s_from_json(j.at("link_watermark"));
  return node;
}

obs::Json async_to_json(const AsyncSnapshot& snap) {
  obs::Json j = obs::Json::object();
  j.set("identity", identity_to_json(snap.identity));
  obs::Json nodes = obs::Json::array();
  for (const auto& node : snap.nodes) nodes.push(async_node_to_json(node));
  j.set("nodes", std::move(nodes));
  obs::Json events = obs::Json::array();
  for (const auto& event : snap.events) events.push(event_to_json(event));
  j.set("events", std::move(events));
  j.set("next_event_seq", snap.next_event_seq);
  j.set("delay_rng", rng_to_json(snap.delay_rng));
  j.set("fault_streams", streams_to_json(snap.fault_streams));
  j.set("halted_count", snap.halted_count);
  j.set("stopped_count", snap.stopped_count);
  j.set("pending_recoveries", snap.pending_recoveries);
  j.set("pulses", snap.pulses);
  j.set("virtual_time", snap.virtual_time);
  j.set("payload_bits", snap.payload_bits);
  j.set("overhead_bits", snap.overhead_bits);
  j.set("frames", snap.frames);
  j.set("transport_bits", snap.transport_bits);
  j.set("acks", snap.acks);
  j.set("terminal", static_cast<std::uint64_t>(snap.terminal));
  j.set("faults", report_to_json(snap.faults));
  return j;
}

AsyncSnapshot async_from_json(const obs::Json& j) {
  AsyncSnapshot snap;
  snap.identity = identity_from_json(j.at("identity"));
  for (const obs::Json& node : j.at("nodes").items())
    snap.nodes.push_back(async_node_from_json(node));
  for (const obs::Json& event : j.at("events").items())
    snap.events.push_back(event_from_json(event));
  snap.next_event_seq = j.at("next_event_seq").as_uint();
  snap.delay_rng = rng_from_json(j.at("delay_rng"));
  snap.fault_streams = streams_from_json(j.at("fault_streams"));
  snap.halted_count =
      static_cast<std::uint32_t>(j.at("halted_count").as_uint());
  snap.stopped_count =
      static_cast<std::uint32_t>(j.at("stopped_count").as_uint());
  snap.pending_recoveries =
      static_cast<std::uint32_t>(j.at("pending_recoveries").as_uint());
  snap.pulses = j.at("pulses").as_uint();
  snap.virtual_time = j.at("virtual_time").as_uint();
  snap.payload_bits = j.at("payload_bits").as_uint();
  snap.overhead_bits = j.at("overhead_bits").as_uint();
  snap.frames = j.at("frames").as_uint();
  snap.transport_bits = j.at("transport_bits").as_uint();
  snap.acks = j.at("acks").as_uint();
  snap.terminal = j.at("terminal").as_uint() != 0 ? 1 : 0;
  snap.faults = report_from_json(j.at("faults"));
  return snap;
}

obs::Json amplified_to_json(const AmplifiedSnapshot& snap) {
  obs::Json j = obs::Json::object();
  j.set("identity", identity_to_json(snap.identity));
  j.set("next_repetition", snap.next_repetition);
  j.set("repetitions", snap.repetitions);
  j.set("completed", static_cast<std::uint64_t>(snap.completed));
  j.set("detected", static_cast<std::uint64_t>(snap.detected));
  j.set("verdict_reject", u8s_to_json(snap.verdict_reject));
  j.set("rounds", snap.rounds);
  j.set("messages", snap.messages);
  j.set("total_bits", snap.total_bits);
  j.set("max_message_bits", snap.max_message_bits);
  j.set("bits_sent_by_node", u64s_to_json(snap.bits_sent_by_node));
  j.set("repetitions_executed", snap.repetitions_executed);
  j.set("repetitions_skipped", snap.repetitions_skipped);
  j.set("trace_bytes", snap.trace_bytes);
  j.set("retries_used", snap.retries_used);
  j.set("faults", report_to_json(snap.faults));
  return j;
}

AmplifiedSnapshot amplified_from_json(const obs::Json& j) {
  AmplifiedSnapshot snap;
  snap.identity = identity_from_json(j.at("identity"));
  snap.next_repetition =
      static_cast<std::uint32_t>(j.at("next_repetition").as_uint());
  snap.repetitions =
      static_cast<std::uint32_t>(j.at("repetitions").as_uint());
  snap.completed = static_cast<std::uint8_t>(j.at("completed").as_uint());
  snap.detected = static_cast<std::uint8_t>(j.at("detected").as_uint());
  snap.verdict_reject = u8s_from_json(j.at("verdict_reject"));
  snap.rounds = j.at("rounds").as_uint();
  snap.messages = j.at("messages").as_uint();
  snap.total_bits = j.at("total_bits").as_uint();
  snap.max_message_bits = j.at("max_message_bits").as_uint();
  snap.bits_sent_by_node = u64s_from_json(j.at("bits_sent_by_node"));
  snap.repetitions_executed =
      static_cast<std::uint32_t>(j.at("repetitions_executed").as_uint());
  snap.repetitions_skipped =
      static_cast<std::uint32_t>(j.at("repetitions_skipped").as_uint());
  snap.trace_bytes = j.at("trace_bytes").as_uint();
  snap.retries_used =
      static_cast<std::uint32_t>(j.at("retries_used").as_uint());
  snap.faults = report_from_json(j.at("faults"));
  return snap;
}

}  // namespace

std::uint64_t topology_digest(const Graph& topology,
                              const std::vector<NodeId>& ids) {
  std::uint64_t h = kDigestSeed;
  const Vertex n = topology.num_vertices();
  h = digest_mix(h, n);
  for (Vertex v = 0; v < n; ++v)
    for (const Vertex w : topology.neighbors(v)) h = digest_mix(h, w);
  for (const NodeId id : ids) h = digest_mix(h, id);
  return h;
}

std::uint64_t fault_plan_digest(const FaultPlan& plan) {
  std::uint64_t h = kDigestSeed;
  h = digest_mix(h, std::bit_cast<std::uint64_t>(plan.drop));
  h = digest_mix(h, std::bit_cast<std::uint64_t>(plan.corrupt));
  h = digest_mix(h, plan.corrupt_headers ? 1 : 0);
  for (const CrashEvent& crash : plan.crashes) {
    h = digest_mix(h, crash.node);
    h = digest_mix(h, crash.round);
  }
  return h;
}

const char* to_string(Snapshot::Kind kind) noexcept {
  switch (kind) {
    case Snapshot::Kind::Sync:
      return "sync";
    case Snapshot::Kind::Async:
      return "async";
    case Snapshot::Kind::Amplified:
      return "amplified";
  }
  return "?";
}

obs::Json to_json(const Snapshot& snapshot) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", kSnapshotSchema);
  doc.set("kind", to_string(snapshot.kind));
  switch (snapshot.kind) {
    case Snapshot::Kind::Sync:
      doc.set("state", sync_to_json(snapshot.sync));
      break;
    case Snapshot::Kind::Async:
      doc.set("state", async_to_json(snapshot.async_state));
      break;
    case Snapshot::Kind::Amplified:
      doc.set("state", amplified_to_json(snapshot.amplified));
      break;
  }
  return doc;
}

Snapshot snapshot_from_json(const obs::Json& doc) {
  CSD_CHECK_MSG(doc.at("schema").as_string() == kSnapshotSchema,
                "unknown snapshot schema '" << doc.at("schema").as_string()
                                            << "'");
  Snapshot snapshot;
  const std::string& kind = doc.at("kind").as_string();
  if (kind == "sync") {
    snapshot.kind = Snapshot::Kind::Sync;
    snapshot.sync = sync_from_json(doc.at("state"));
  } else if (kind == "async") {
    snapshot.kind = Snapshot::Kind::Async;
    snapshot.async_state = async_from_json(doc.at("state"));
  } else if (kind == "amplified") {
    snapshot.kind = Snapshot::Kind::Amplified;
    snapshot.amplified = amplified_from_json(doc.at("state"));
  } else {
    CSD_CHECK_MSG(false, "unknown snapshot kind '" << kind << "'");
  }
  return snapshot;
}

void save_snapshot(const std::string& path, const Snapshot& snapshot) {
  std::ofstream out(path);
  CSD_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  to_json(snapshot).write(out, 1);
  out << '\n';
  CSD_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream in(path);
  CSD_CHECK_MSG(in.good(), "cannot open snapshot '" << path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  return snapshot_from_json(obs::Json::parse(text.str()));
}

}  // namespace csd::congest
