// Deterministic fault injection for the CONGEST engines.
//
// A FaultPlan describes an adversarial-but-reproducible environment: every
// transmission on a directed link may be dropped or have one payload bit
// flipped, and nodes may crash at a scheduled round. All randomness is
// derived from the run seed with one independent stream per directed link,
// consumed once per transmission in link-FIFO order, so the fate of the
// i-th transmission on a link is a pure function of (seed, link, i) — the
// same plan over the same seed yields the same FaultReport on every run,
// on either engine.
//
// Faults never abort the process. Instead of the historical throw-on-
// violation behavior, both engines degrade gracefully and record what
// happened in a structured FaultReport carried on the run outcome:
// protocol violations (bandwidth overruns, duplicate sends, broadcast-mode
// mismatches), crashed nodes (scheduled crashes and program faults on
// corrupted input), stalled nodes (live but starved of frames), and the
// reliable-transport counters (retransmissions, checksum rejects, link
// failures).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "support/bitvec.hpp"
#include "support/rng.hpp"

namespace csd::congest {

/// Crash node (topology index) at the start of `round`: the node executes
/// rounds < `round` normally, then falls silent forever — unlike a graceful
/// halt, no "I am done" frame is emitted, so neighbors cannot tell a crashed
/// peer from a slow one.
struct CrashEvent {
  std::uint32_t node = 0;
  std::uint64_t round = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// The fault environment of one run. Default-constructed = fault-free.
struct FaultPlan {
  /// Probability that a transmission is dropped on the wire.
  double drop = 0.0;
  /// Probability that a transmission has one uniformly random payload bit
  /// flipped (frames without payload cannot be corrupted).
  double corrupt = 0.0;
  /// Extend the corrupt-bit draw to the frame header (async engines only):
  /// the flipped bit is drawn uniformly over pulse + halted-flag + payload
  /// bits instead of payload bits alone, so even payload-free frames can be
  /// corrupted. Under TransportMode::Reliable the CRC covers the header and
  /// rejects such packets; under Raw a corrupted pulse desynchronizes the
  /// destination port (recorded as a stall). The synchronous engine has no
  /// frame headers and ignores this flag.
  bool corrupt_headers = false;
  /// Scheduled crash-at-round events (at most one per node is honored; the
  /// earliest wins).
  std::vector<CrashEvent> crashes;

  bool has_link_faults() const noexcept { return drop > 0.0 || corrupt > 0.0; }
  bool empty() const noexcept { return !has_link_faults() && crashes.empty(); }
};

/// What went wrong, where. Violations replace the old throw-on-violation
/// behavior of the engines: the offending send is clamped (see network.hpp)
/// and the run continues with a diagnosable outcome.
enum class ViolationKind : std::uint8_t {
  /// Message exceeded the per-edge bandwidth; payload truncated to B bits.
  Bandwidth,
  /// Second send on one port in one round; the later send is ignored.
  DuplicateSend,
  /// broadcast_only mode saw two different payloads in one round; the send
  /// is honored anyway and the mismatch recorded.
  BroadcastMismatch,
  /// The node program threw while processing its inbox (typically a wire
  /// decode of a corrupted payload); the node is marked crashed.
  ProgramFault,
};

const char* to_string(ViolationKind kind) noexcept;

struct ProtocolViolation {
  ViolationKind kind = ViolationKind::Bandwidth;
  std::uint32_t node = 0;   // topology index
  std::uint64_t round = 0;  // round (sync) / pulse (async)
  std::string detail;

  friend bool operator==(const ProtocolViolation&,
                         const ProtocolViolation&) = default;
};

/// Structured account of every fault observed in a run. Equality-comparable
/// so determinism (same seed -> same report) is directly assertable.
struct FaultReport {
  // Link-level events (both engines).
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;

  // Reliable-transport counters (async engine, TransportMode::Reliable).
  std::uint64_t retransmissions = 0;
  std::uint64_t checksum_rejects = 0;   // corrupted packets caught by CRC
  std::uint64_t duplicate_packets = 0;  // retransmit raced a late ack
  std::uint64_t duplicate_acks = 0;     // ack for an already-settled packet
  std::uint64_t transport_failures = 0; // packets that exhausted retries

  /// Nodes that crashed (scheduled crash or program fault), in crash order.
  std::vector<std::uint32_t> crashed_nodes;
  /// Nodes that crashed and later rejoined under a RecoveryPolicy (async
  /// engine), in rejoin order. A recovered node counts as a survivor.
  std::vector<std::uint32_t> recovered_nodes;
  /// Pulses deterministically re-executed from inbox logs to rebuild
  /// program state on rejoin/resume (not charged to any accounting).
  std::uint64_t replayed_pulses = 0;
  /// 1 if the stall watchdog cut the run short (no delivery progress for
  /// the configured window) instead of letting it spin to the cap.
  std::uint64_t watchdog_stalls = 0;
  /// Nodes still live but unhalted when the run ended — starved of frames
  /// by drops or crashed neighbors, or cut off by the round/pulse cap —
  /// in index order.
  std::vector<std::uint32_t> stalled_nodes;
  /// Clamped protocol violations, in occurrence order.
  std::vector<ProtocolViolation> violations;

  /// OR of Verdict::Reject over nodes that did NOT crash — the answer the
  /// surviving network actually reports.
  bool detected_by_survivors = false;

  bool clean() const noexcept {
    return frames_dropped == 0 && frames_corrupted == 0 &&
           retransmissions == 0 && checksum_rejects == 0 &&
           duplicate_packets == 0 && duplicate_acks == 0 &&
           transport_failures == 0 && crashed_nodes.empty() &&
           recovered_nodes.empty() && replayed_pulses == 0 &&
           watchdog_stalls == 0 && stalled_nodes.empty() &&
           violations.empty();
  }

  friend bool operator==(const FaultReport&, const FaultReport&) = default;
};

/// Render a one-line-per-field human summary (used by the CLI).
std::string summarize(const FaultReport& report);

/// The report's counters as a named-metric registry — the bridge into
/// RunMetrics::counters / AsyncRunOutcome::counters and the trace summary.
/// Node/violation lists contribute their sizes ("crashed_nodes", ...).
obs::MetricsRegistry fault_counters(const FaultReport& report);

/// Draws fault fates deterministically. One RNG stream per directed link
/// (src, src-port), advanced a fixed number of times per transmission, so
/// fates are independent of event interleaving and of each other.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                const Graph& topology);

  /// Fate of the next transmission on the directed link (src, port).
  /// `corruptible_bits` sizes the corrupt-bit draw (the caller decides what
  /// is corruptible: payload only, or header + payload when the plan sets
  /// corrupt_headers); a transmission with 0 corruptible bits is never
  /// corrupted. Advances the link stream by a fixed number of draws either
  /// way, so fates stay a pure function of (seed, link, transmission index).
  struct Fate {
    bool dropped = false;
    bool corrupted = false;
    std::size_t corrupt_bit = 0;  // valid iff corrupted
  };
  Fate next_fate(std::uint32_t src, std::uint32_t port,
                 std::size_t corruptible_bits);

  /// Round at which `node` is scheduled to crash, if any.
  std::optional<std::uint64_t> crash_round(std::uint32_t node) const;

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Snapshot/restore of every link stream's RNG position, [src][port].
  /// Restoring mid-run resumes the exact fate sequence, which is what makes
  /// checkpointed runs bit-identical to straight-through ones.
  std::vector<std::vector<std::array<std::uint64_t, 4>>> save_streams() const;
  void restore_streams(
      const std::vector<std::vector<std::array<std::uint64_t, 4>>>& streams);

 private:
  FaultPlan plan_;
  std::vector<std::vector<Rng>> link_rng_;  // [src][port]
  std::vector<std::optional<std::uint64_t>> crash_round_;
};

}  // namespace csd::congest
