#include "congest/clique_router.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "congest/clique.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/wire.hpp"

namespace csd::congest {

namespace {

struct Record {
  Vertex final_dst = 0;
  bool at_relay = false;  // next hop is the final destination
  BitVec payload;
};

/// Static per-source queues + per-link load accounting.
struct Plan {
  std::vector<std::map<Vertex, std::deque<Record>>> queues;  // per src
  std::vector<std::vector<BitVec>> local;                    // src == dst
  std::uint64_t max_stage1 = 0;
  std::uint64_t max_stage2 = 0;
};

Vertex relay_of(Vertex src, Vertex dst, std::uint64_t seq,
                std::uint64_t salt, Vertex n) {
  std::uint64_t key = (static_cast<std::uint64_t>(src) << 40) ^
                      (static_cast<std::uint64_t>(dst) << 16) ^ seq;
  key = derive_seed(key, salt);
  return static_cast<Vertex>(key % n);
}

Plan build_plan(const CliqueRouteRequest& request) {
  const Vertex n = request.num_nodes;
  Plan plan;
  plan.queues.resize(n);
  plan.local.resize(n);
  std::map<std::pair<Vertex, Vertex>, std::uint64_t> stage1, stage2;
  std::map<std::pair<Vertex, Vertex>, std::uint64_t> pair_seq;
  for (const auto& message : request.messages) {
    CSD_CHECK_MSG(message.src < n && message.dst < n,
                  "routed message endpoint out of range");
    CSD_CHECK_MSG(message.payload.size() == request.payload_bits,
                  "payload width mismatch: " << message.payload.size()
                                             << " != "
                                             << request.payload_bits);
    if (message.src == message.dst) {
      plan.local[message.src].push_back(message.payload);
      continue;
    }
    const std::uint64_t seq = pair_seq[{message.src, message.dst}]++;
    const Vertex relay =
        relay_of(message.src, message.dst, seq, request.salt, n);
    if (relay == message.src) {
      plan.queues[message.src][message.dst].push_back(
          {message.dst, true, message.payload});
      ++stage2[{message.src, message.dst}];
    } else if (relay == message.dst) {
      plan.queues[message.src][message.dst].push_back(
          {message.dst, false, message.payload});
      ++stage1[{message.src, message.dst}];
    } else {
      plan.queues[message.src][relay].push_back(
          {message.dst, false, message.payload});
      ++stage1[{message.src, relay}];
      ++stage2[{relay, message.dst}];
    }
  }
  for (const auto& [link, load] : stage1)
    plan.max_stage1 = std::max(plan.max_stage1, load);
  for (const auto& [link, load] : stage2)
    plan.max_stage2 = std::max(plan.max_stage2, load);
  return plan;
}

std::uint64_t plan_budget(const Plan& plan) {
  // Stage-1 queues drain within max_stage1 rounds; the last relayed record
  // becomes sendable one round later and the merged FIFO then drains within
  // max_stage2 more rounds.
  return plan.max_stage1 + plan.max_stage2 + 3;
}

class RouterProgram final : public NodeProgram {
 public:
  RouterProgram(std::map<Vertex, std::deque<Record>> queues,
                std::uint64_t payload_bits, std::uint64_t budget,
                std::vector<BitVec>* sink)
      : queues_(std::move(queues)),
        payload_bits_(payload_bits),
        budget_(budget),
        sink_(sink) {}

  void on_round(NodeApi& api) override {
    const unsigned id_bits = wire::bits_for(api.network_size());
    const auto self = static_cast<Vertex>(api.id());

    api.phase(api.round() == 0          ? "route-inject"
              : api.round() >= budget_  ? "route-drain"
                                        : "route-relay");
    if (api.round() > 0) {
      for (std::uint32_t p = 0; p < api.degree(); ++p) {
        const auto* msg = api.inbox(p);
        if (msg == nullptr) continue;
        wire::Reader r(*msg);
        Record record;
        record.at_relay = r.boolean();
        record.final_dst = static_cast<Vertex>(r.u(id_bits));
        record.payload = r.raw(payload_bits_);
        if (record.at_relay || record.final_dst == self) {
          sink_->push_back(std::move(record.payload));
        } else {
          record.at_relay = true;
          queues_[record.final_dst].push_back(std::move(record));
        }
      }
    }

    if (api.round() >= budget_) {
      CSD_CHECK_MSG(queues_.empty(), "router queues failed to drain");
      api.halt();
      return;
    }

    for (auto it = queues_.begin(); it != queues_.end();) {
      auto& [dst, queue] = *it;
      Record record = std::move(queue.front());
      queue.pop_front();
      wire::Writer w;
      w.boolean(record.at_relay);
      w.u(record.final_dst, id_bits);
      w.raw(record.payload);
      api.send(clique_port(self, dst), std::move(w).take());
      it = queue.empty() ? queues_.erase(it) : std::next(it);
    }
  }

 private:
  std::map<Vertex, std::deque<Record>> queues_;
  std::uint64_t payload_bits_;
  std::uint64_t budget_;
  std::vector<BitVec>* sink_;
};

}  // namespace

std::uint64_t clique_route_min_bandwidth(std::uint64_t n,
                                         std::uint64_t payload_bits) {
  return 1 + wire::bits_for(n) + payload_bits;
}

std::uint64_t clique_route_round_budget(const CliqueRouteRequest& request) {
  return plan_budget(build_plan(request));
}

CliqueRouteResult route_in_clique(const CliqueRouteRequest& request) {
  const Vertex n = request.num_nodes;
  CSD_CHECK_MSG(n >= 2, "congested clique needs >= 2 nodes");
  CSD_CHECK_MSG(
      request.bandwidth == 0 ||
          request.bandwidth >=
              clique_route_min_bandwidth(n, request.payload_bits),
      "bandwidth too small for routed records");
  Plan plan = build_plan(request);
  const std::uint64_t budget = plan_budget(plan);

  CliqueRouteResult result;
  result.delivered.assign(n, {});
  result.max_stage1_load = plan.max_stage1;
  result.max_stage2_load = plan.max_stage2;
  for (Vertex v = 0; v < n; ++v)
    for (auto& payload : plan.local[v])
      result.delivered[v].push_back(std::move(payload));

  NetworkConfig cfg;
  cfg.bandwidth = request.bandwidth;
  cfg.max_rounds = budget + 2;
  const auto outcome = run_congested_clique(
      n, cfg, [&](std::uint32_t v) {
        return std::make_unique<RouterProgram>(std::move(plan.queues[v]),
                                               request.payload_bits, budget,
                                               &result.delivered[v]);
      });
  CSD_CHECK_MSG(outcome.completed, "routing did not complete in budget");
  result.rounds = outcome.metrics.rounds;
  result.total_bits = outcome.metrics.total_bits;
  return result;
}

}  // namespace csd::congest
