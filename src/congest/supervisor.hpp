// Run supervisor for long amplified detection runs.
//
// run_amplified answers "what does the algorithm say" for a batch of
// repetitions; the Supervisor answers "keep a long batch alive and
// restartable on real hardware". It drives repetitions through RunBatch in
// waves and adds three robustness layers on top of the same aggregation
// rules (merge_amplified, so the answer is bit-identical to run_amplified
// when nothing goes wrong):
//
//   * deadlines — a per-repetition round budget (deterministic, checked on
//     the merged outcomes in repetition order) and a wall-clock deadline
//     (checked between waves; inherently nondeterministic, which is why it
//     only ever cuts *scheduling*, never changes a merged repetition);
//   * a stall watchdog — NetworkConfig::stall_window is applied to every
//     repetition, and each repetition that ends stalled (watchdog cut,
//     crashed-out, or over its round budget) is surfaced as a structured
//     StallReport instead of a silently weird aggregate;
//   * retry-with-reseed — a fault-killed repetition (it did not complete:
//     crashes or drops starved it, or the watchdog cut it) is re-run with a
//     seed derived deterministically from its repetition seed and attempt
//     number, up to a budget. Retries never touch healthy repetitions, so
//     the fault-free path stays byte-identical to run_amplified.
//
// Progress is checkpointed at repetition granularity: after every wave the
// Supervisor snapshots the aggregate (csd-ckpt-v1, kind "amplified"), and
// Supervisor::resume continues from any such snapshot — same verdicts,
// same FaultReport, same retry decisions — at any --jobs count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "congest/snapshot.hpp"
#include "obs/metrics.hpp"

namespace csd::congest {

struct SupervisorConfig {
  /// Worker threads per wave (RunBatch semantics: outcomes are
  /// bit-identical at every value). 0 = one per hardware thread.
  unsigned jobs = 1;
  /// Stop scheduling after the first detecting repetition (one-sided
  /// detection; mirrors AmplifyOptions::early_exit).
  bool early_exit = true;
  /// Wall-clock deadline in milliseconds, checked between waves (0 = none).
  /// On expiry the remaining repetitions are recorded as skipped, the
  /// aggregate-so-far is returned, and the checkpoint allows resuming.
  std::uint64_t deadline_ms = 0;
  /// Per-repetition round budget (0 = none): a repetition that runs this
  /// many rounds or more is flagged in a StallReport. Deterministic and
  /// jobs-invariant (evaluated on merged outcomes in repetition order).
  std::uint64_t round_budget = 0;
  /// Engine stall watchdog applied to every repetition (0 = keep the
  /// NetworkConfig::stall_window the caller already set).
  std::uint64_t stall_window = 0;
  /// Retries per fault-killed repetition (0 = never retry). Attempt k
  /// reruns with derive_seed(repetition_seed, 0x9e7 + k) — deterministic,
  /// so a resumed supervisor makes the very same retry decisions.
  std::uint32_t max_retries = 0;
  /// Cap on repetitions merged by one run/resume call (0 = no cap): a
  /// deterministic pause point for driving a long batch in slices — run
  /// this many, checkpoint, come back later. Unlike the wall-clock
  /// deadline this cut is reproducible at every --jobs count (waves are
  /// shrunk to land exactly on it). Retries do not count against it.
  std::uint32_t max_reps_per_call = 0;
};

/// One repetition that ended unhealthy (after exhausting its retries).
struct StallReport {
  std::uint32_t repetition = 0;
  /// Seed of the attempt whose outcome was merged (last retry, if any).
  std::uint64_t seed = 0;
  /// Rounds the merged attempt executed before it was cut or gave up.
  std::uint64_t rounds = 0;
  /// Nodes alive but not halted when the repetition ended.
  std::uint32_t stalled_nodes = 0;
  bool watchdog = false;      ///< cut by the engine stall watchdog
  bool over_budget = false;   ///< rounds >= SupervisorConfig::round_budget
  bool incomplete = false;    ///< some node never halted (crash/starvation)
  /// The merged attempt's engine counters (fault counters, checkpoint
  /// count, and — under the sharded engine with channel_counters — the
  /// per-worker shard_channel_* and shard_last_progress_w<N> counters that
  /// locate which worker stopped making progress).
  obs::MetricsRegistry counters;
};

struct SupervisedResult {
  /// Aggregate over the merged repetitions, under run_amplified's exact
  /// rules. metrics.counters is rebuilt from the merged FaultReport so the
  /// run and resume paths report identically.
  RunOutcome outcome;
  std::uint32_t planned = 0;       ///< repetitions requested
  std::uint32_t retries_used = 0;  ///< total reseeded re-runs
  bool deadline_hit = false;       ///< wall-clock deadline expired
  /// max_reps_per_call cut scheduling with work left: resume from
  /// `checkpoint` to continue the slice sequence.
  bool paused = false;
  std::vector<StallReport> stalls; ///< unhealthy repetitions, in order
  /// Aggregate frozen after the last completed wave (kind "amplified");
  /// null only when no wave completed. Feed to Supervisor::resume.
  std::shared_ptr<const Snapshot> checkpoint;
};

class Supervisor {
 public:
  /// The config's stall_window is overridden by SupervisorConfig's when
  /// that one is nonzero. The topology is copied (Network semantics).
  Supervisor(Graph topology, NetworkConfig config, SupervisorConfig sup);

  /// Drive `repetitions` repetitions (seeded exactly like run_amplified:
  /// derive_seed(config.seed, 0x5eed + rep)) under supervision.
  SupervisedResult run(const ProgramFactory& factory,
                       std::uint32_t repetitions) const;

  /// Continue from an amplified checkpoint captured by run/resume with the
  /// same topology, config, seed, and repetition count (identity digests
  /// CHECKed). Bit-identical continuation: verdicts, FaultReport, and retry
  /// decisions all match the uninterrupted run; the trace covers only the
  /// repetitions merged after the resume point.
  SupervisedResult resume(const ProgramFactory& factory,
                          std::uint32_t repetitions,
                          const Snapshot& snapshot) const;

  const Network& network() const noexcept { return net_; }

 private:
  SupervisedResult drive(const ProgramFactory& factory,
                         std::uint32_t repetitions,
                         const Snapshot* resume_from) const;

  Network net_;
  SupervisorConfig sup_;
};

}  // namespace csd::congest
