#include "congest/partition.hpp"

#include "congest/snapshot.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace csd::congest {

std::string_view to_string(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::Range:
      return "range";
    case PartitionPolicy::Hash:
      return "hash";
  }
  return "?";
}

bool parse_partition_policy(std::string_view text, PartitionPolicy& out) {
  if (text == "range") {
    out = PartitionPolicy::Range;
    return true;
  }
  if (text == "hash") {
    out = PartitionPolicy::Hash;
    return true;
  }
  return false;
}

Partition Partition::build(const GraphCsr& csr, std::uint32_t workers,
                           PartitionPolicy policy) {
  CSD_CHECK_MSG(workers >= 1, "Partition::build needs at least one worker");
  const Vertex n = csr.offsets.empty()
                       ? 0
                       : static_cast<Vertex>(csr.offsets.size() - 1);
  Partition part;
  part.workers_ = workers;
  part.policy_ = policy;
  part.owner_.resize(n);
  part.owned_.assign(workers, {});
  part.owned_edges_.assign(workers, 0);

  if (policy == PartitionPolicy::Hash) {
    // SIKeyHash-style stateless assignment: a fixed splitmix64 mix of the
    // vertex index mod W. The constant is arbitrary but frozen — changing
    // it would re-shuffle every partition digest.
    for (Vertex v = 0; v < n; ++v)
      part.owner_[v] =
          static_cast<std::uint32_t>(derive_seed(0x5AA2Dull, v) % workers);
  } else {
    // Contiguous ranges balanced by directed-edge count. Each vertex
    // weighs degree + 1 (the +1 keeps isolated vertices from piling onto
    // one worker); worker w takes vertices until the cumulative weight
    // reaches its share of the total.
    const std::uint64_t total = csr.num_directed_edges() + n;
    std::uint64_t acc = 0;
    std::uint32_t w = 0;
    for (Vertex v = 0; v < n; ++v) {
      while (w + 1 < workers &&
             acc * workers >= static_cast<std::uint64_t>(w + 1) * total)
        ++w;
      part.owner_[v] = w;
      acc += (csr.offsets[v + 1] - csr.offsets[v]) + 1;
    }
  }

  for (Vertex v = 0; v < n; ++v) {
    const std::uint32_t w = part.owner_[v];
    part.owned_[w].push_back(v);
    part.owned_edges_[w] += csr.offsets[v + 1] - csr.offsets[v];
    for (const Vertex u : csr.row(v))
      if (part.owner_[u] != w) ++part.cut_edges_;
  }
  return part;
}

std::uint64_t Partition::digest() const noexcept {
  std::uint64_t h = kDigestSeed;
  h = digest_mix(h, workers_);
  h = digest_mix(h, static_cast<std::uint64_t>(policy_));
  for (const std::uint32_t w : owner_) h = digest_mix(h, w);
  return h;
}

}  // namespace csd::congest
