#include "congest/run_batch.hpp"

#include <atomic>
#include <exception>
#include <limits>
#include <thread>

#include "support/check.hpp"

namespace csd::congest {

namespace {

constexpr std::uint32_t kNoCut = std::numeric_limits<std::uint32_t>::max();

/// Atomically lower `target` to `value` (monotone min).
void atomic_min(std::atomic<std::uint32_t>& target, std::uint32_t value) {
  std::uint32_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_acq_rel)) {
  }
}

}  // namespace

unsigned resolve_jobs(unsigned jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

RunBatch::RunBatch(unsigned jobs) : jobs_(resolve_jobs(jobs)) {}

RunBatch::Result RunBatch::execute(const std::vector<Task>& tasks,
                                   bool stop_after_detection) const {
  Result result;
  result.outcomes.resize(tasks.size());
  if (tasks.empty()) return result;
  for (const Task& task : tasks)
    CSD_CHECK_MSG(task.network != nullptr && task.factory != nullptr,
                  "RunBatch task missing network or factory");

  const std::size_t workers =
      std::min<std::size_t>(jobs_, tasks.size());
  if (workers <= 1) {
    // Inline sequential path: the reference semantics the parallel path
    // must reproduce bit-for-bit.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      result.outcomes[i] =
          tasks[i].network->run(*tasks[i].factory, tasks[i].seed);
      if (stop_after_detection && result.outcomes[i]->detected) break;
    }
  } else {
    std::vector<std::exception_ptr> errors(tasks.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint32_t> first_detected{kNoCut};
    const auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) return;
        // Skip only tasks strictly beyond a known detection index m >= r*;
        // since first_detected is a monotone min converging on r*, every
        // task with index <= r* is claimed and executed.
        if (stop_after_detection &&
            i > first_detected.load(std::memory_order_acquire))
          continue;
        try {
          RunOutcome outcome =
              tasks[i].network->run(*tasks[i].factory, tasks[i].seed);
          if (stop_after_detection && outcome.detected)
            atomic_min(first_detected, static_cast<std::uint32_t>(i));
          result.outcomes[i] = std::move(outcome);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& thread : pool) thread.join();

    const std::uint32_t cut =
        stop_after_detection ? first_detected.load() : kNoCut;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (i > cut) {
        // Beyond the deterministic prefix: discard whatever a fast worker
        // may have computed so the result is thread-count independent.
        result.outcomes[i].reset();
        continue;
      }
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
  }

  for (const auto& slot : result.outcomes)
    if (slot.has_value()) ++result.executed;
  result.skipped =
      static_cast<std::uint32_t>(tasks.size()) - result.executed;
  return result;
}

void RunBatch::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min<std::size_t>(jobs_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> next{0};
  const auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& thread : pool) thread.join();
  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);
}

}  // namespace csd::congest
