// Relay-balanced routing in the Congested Clique — the communication
// primitive behind DLP-style subgraph listing (and, in spirit, Lenzen's
// routing theorem: bounded per-node send/receive volume routes in few
// rounds).
//
// Input: a multiset of (src → dst, payload) messages with uniform payload
// width. Direct delivery would bottleneck on the heaviest (src, dst) link;
// instead every message hops through a pseudo-random relay keyed by
// (src, dst, sequence), so both hops spread over all n links of each node.
// The round cost is ⌈max per-link stage-1 load⌉ + ⌈max stage-2 load⌉ + O(1),
// which for L messages per node is O(L/n) + O(1) with high probability.
//
// The router runs as a self-contained congested-clique execution and hands
// back the payloads delivered to each node; callers do their (free) local
// computation on the result. clique_listing is built on this primitive.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::congest {

struct RoutedMessage {
  Vertex src = 0;
  Vertex dst = 0;
  BitVec payload;  // width must equal CliqueRouteRequest::payload_bits
};

struct CliqueRouteRequest {
  Vertex num_nodes = 0;
  /// Uniform payload width in bits (every message must match).
  std::uint64_t payload_bits = 0;
  std::vector<RoutedMessage> messages;
  /// Per-link bandwidth; must fit one routed record
  /// (2 + ⌈log2 n⌉ + payload_bits). 0 = unbounded.
  std::uint64_t bandwidth = 64;
  /// Relay-choice salt (deterministic given the salt).
  std::uint64_t salt = 0x5a17;
};

struct CliqueRouteResult {
  /// delivered[v] = payloads that reached node v (arrival order).
  std::vector<std::vector<BitVec>> delivered;
  std::uint64_t rounds = 0;
  std::uint64_t total_bits = 0;
  /// Static per-link loads the budget was derived from.
  std::uint64_t max_stage1_load = 0;
  std::uint64_t max_stage2_load = 0;
};

/// Minimum bandwidth for a routed record.
std::uint64_t clique_route_min_bandwidth(std::uint64_t n,
                                         std::uint64_t payload_bits);

/// Round budget the request will take (computed from the static plan).
std::uint64_t clique_route_round_budget(const CliqueRouteRequest& request);

/// Execute the routing. Throws CheckFailure on malformed requests
/// (payload width mismatch, src/dst out of range, bandwidth too small).
CliqueRouteResult route_in_clique(const CliqueRouteRequest& request);

}  // namespace csd::congest
