#include "congest/clique.hpp"

#include "graph/builders.hpp"

namespace csd::congest {

RunOutcome run_congested_clique(Vertex n, const NetworkConfig& config,
                                const ProgramFactory& factory) {
  const Graph topology = build::complete(n);
  Network net(topology, config);
  return net.run(factory);
}

}  // namespace csd::congest
