// Deterministic node-to-worker partitioning for the sharded superstep
// engine (congest/shard.cpp).
//
// A Partition is a pure function of (topology, workers, policy): no seeds,
// no wall clock, no platform dependence. That purity is what lets the
// sharded engine promise bit-identical outcomes at every worker count — the
// partition only decides *which thread* executes a node and *which channel*
// carries a frame, never what the node computes or what the frame says.
//
// Two policies, mirroring the standard Pregel choices:
//   * Hash  — owner(v) = mix64(v) mod W. Stateless, balanced in
//     expectation on any vertex distribution, oblivious to topology;
//     adjacent vertices usually land on different workers (high cut).
//   * Range — contiguous vertex ranges weighted by CSR degree, so every
//     worker owns about the same number of directed edges (the unit of
//     per-round work). Builders in this library lay out structured
//     instances (paths, cycles, planted gadgets) with locality, so Range
//     usually cuts far fewer edges than Hash.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "support/bitvec.hpp"

namespace csd::congest {

enum class PartitionPolicy : std::uint8_t { Range = 0, Hash = 1 };

std::string_view to_string(PartitionPolicy policy);
/// Parse "range" / "hash" (exact, lowercase). Returns false on anything else.
bool parse_partition_policy(std::string_view text, PartitionPolicy& out);

/// One (src_worker, dst_worker) frame batch, exchanged at the superstep
/// barrier. Structure-of-arrays over the first `used` entries: `edges[i]`
/// is the dense directed-edge index of the send (CSR offsets[src] + port)
/// and `payloads[i]` the post-fault payload exactly as the receiver will
/// see it. The engine fills channels in ascending edge order and drains
/// them in (src_worker, edge) order — the merge-order rule that makes the
/// exchange deterministic. `payloads` is high-water sized so BitVec heap
/// buffers recycle across rounds instead of reallocating.
struct ShardChannel {
  std::vector<std::uint64_t> edges;
  std::vector<BitVec> payloads;
  std::size_t used = 0;

  /// Append a frame, swapping the payload out of `slot` (the sender's
  /// arena slot donates its buffer; the channel's retired buffer, if any,
  /// lands back in the slot).
  void push(std::uint64_t edge, BitVec& slot) {
    if (used == payloads.size()) {
      edges.push_back(edge);
      payloads.emplace_back();
    } else {
      edges[used] = edge;
    }
    std::swap(payloads[used], slot);
    ++used;
  }
  void reset() noexcept { used = 0; }
};

/// One worker's channel traffic in one superstep, sampled for the
/// aggregator hook (ShardSpec::on_superstep).
struct ShardSuperstepStats {
  std::uint64_t round = 0;
  std::uint32_t worker = 0;
  /// Frames / payload bits this worker pushed onto cross-worker channels.
  std::uint64_t channel_frames = 0;
  std::uint64_t channel_bits = 0;
  /// Frames it delivered worker-locally (both endpoints owned).
  std::uint64_t local_frames = 0;
  /// Vote-to-halt: every owned node was halted or crashed this superstep.
  bool voted_halt = false;
};

/// Sharded-execution knobs, carried by NetworkConfig. Sharding is an
/// execution strategy, not part of the model: it is deliberately excluded
/// from Network::config_digest(), so csd-ckpt-v1 snapshots resume across
/// worker counts and every outcome field is bit-identical at any W.
struct ShardSpec {
  /// 0 = classic single-loop sync engine; W >= 1 = sharded superstep
  /// engine with W workers (W = 1 still runs the full superstep machinery
  /// on the calling thread — that is the equivalence anchor the tests pin).
  std::uint32_t workers = 0;
  PartitionPolicy policy = PartitionPolicy::Range;
  /// Optional combiner: invoked once per non-empty outgoing channel after
  /// the outbox scan, before the barrier. May rewrite payloads in place
  /// (e.g. transport-level compression) but must preserve the frame
  /// semantics — the engine re-sorts the channel by edge index afterwards,
  /// so reordering is allowed, dropping or inventing frames is not.
  std::function<void(std::uint32_t src_worker, std::uint32_t dst_worker,
                     ShardChannel& channel)>
      combiner;
  /// Optional aggregator: observes per-worker superstep stats at the
  /// barrier, invoked on the coordinating thread in (round, worker) order.
  std::function<void(const ShardSuperstepStats&)> on_superstep;
  /// Surface per-worker channel traffic as engine counters
  /// (shard_channel_frames_w*/shard_channel_bytes_w*) in
  /// RunMetrics::counters and hence the trace summary. Off by default:
  /// these counters depend on W, so the determinism matrix runs without
  /// them and the nightly sweep runs with them.
  bool channel_counters = false;
};

/// Immutable node-to-worker assignment. Built once per run; O(n) memory.
class Partition {
 public:
  /// `workers` >= 1. Vertices with no owner never exist: owner(v) < workers
  /// for every v, and the owned lists partition [0, n).
  static Partition build(const GraphCsr& csr, std::uint32_t workers,
                         PartitionPolicy policy);

  std::uint32_t workers() const noexcept { return workers_; }
  PartitionPolicy policy() const noexcept { return policy_; }
  std::uint32_t owner(Vertex v) const noexcept { return owner_[v]; }
  const std::vector<std::uint32_t>& owners() const noexcept { return owner_; }
  /// Vertices owned by `w`, ascending. The engine iterates these in order —
  /// together with the channel merge-order rule this reproduces the classic
  /// engine's global ascending-vertex order exactly.
  const std::vector<Vertex>& owned(std::uint32_t w) const noexcept {
    return owned_[w];
  }
  /// Directed edges whose source is owned by `w` (the per-worker share of
  /// the dense edge index; these shares partition [0, num_directed_edges)).
  std::uint64_t owned_directed_edges(std::uint32_t w) const noexcept {
    return owned_edges_[w];
  }
  /// Directed edges whose endpoints live on different workers (each
  /// crossing edge counted once per direction).
  std::uint64_t cut_directed_edges() const noexcept { return cut_edges_; }
  /// FNV digest over (workers, policy, owner map); stamped into traces by
  /// callers that want to pin the assignment.
  std::uint64_t digest() const noexcept;

 private:
  std::uint32_t workers_ = 1;
  PartitionPolicy policy_ = PartitionPolicy::Range;
  std::vector<std::uint32_t> owner_;
  std::vector<std::vector<Vertex>> owned_;
  std::vector<std::uint64_t> owned_edges_;
  std::uint64_t cut_edges_ = 0;
};

}  // namespace csd::congest
