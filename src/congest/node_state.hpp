// Internal: concrete per-node state + NodeApi implementation, shared by the
// synchronous Network and the asynchronous engine (which presents the same
// pulse-by-pulse API through its synchronizer).
#pragma once

#include <optional>
#include <sstream>
#include <vector>

#include "congest/faults.hpp"
#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "obs/round_trace.hpp"
#include "support/check.hpp"

namespace csd::congest::detail {

class NodeState final : public NodeApi {
 public:
  /// `violations` (owned by the engine, non-null) receives clamped protocol
  /// violations; see network.hpp for the clamping semantics.
  NodeState(const Graph& topology, Vertex index, NodeId node_id,
            std::uint64_t run_seed, std::uint64_t network_size,
            std::uint64_t namespace_size, std::uint64_t bandwidth,
            bool broadcast_only, std::vector<ProtocolViolation>* violations)
      : topology_(topology),
        index_(index),
        id_(node_id),
        network_size_(network_size),
        namespace_size_(namespace_size),
        bandwidth_(bandwidth),
        broadcast_only_(broadcast_only),
        violations_(violations),
        rng_(derive_seed(run_seed, index)) {
    CSD_CHECK(violations_ != nullptr);
    const auto deg = topology.degree(index);
    inbox_.resize(deg);
    outbox_.resize(deg);
  }

  // NodeApi -----------------------------------------------------------
  NodeId id() const override { return id_; }
  std::uint32_t degree() const override { return topology_.degree(index_); }
  NodeId neighbor_id(std::uint32_t port) const override {
    CSD_CHECK_MSG(port < degree(), "neighbor_id: port out of range");
    return (*neighbor_ids_)[port];
  }
  std::uint64_t round() const override { return round_; }
  std::uint64_t network_size() const override { return network_size_; }
  std::uint64_t namespace_size() const override { return namespace_size_; }
  std::uint64_t bandwidth() const override { return bandwidth_; }

  const std::optional<BitVec>& inbox(std::uint32_t port) const override {
    CSD_CHECK_MSG(port < degree(), "inbox: port out of range");
    return inbox_[port];
  }

  void send(std::uint32_t port, BitVec payload) override {
    CSD_CHECK_MSG(!halted_, "halted node cannot send");
    CSD_CHECK_MSG(port < degree(), "send: port out of range");
    if (bandwidth_ != 0 && payload.size() > bandwidth_) {
      std::ostringstream detail;
      detail << "message of " << payload.size() << " bits exceeds bandwidth "
             << bandwidth_ << "; truncated";
      record_violation(ViolationKind::Bandwidth, detail.str());
      payload.truncate(bandwidth_);
    }
    if (outbox_[port].has_value()) {
      std::ostringstream detail;
      detail << "two sends on port " << port << " in one round; second send "
             << "ignored";
      record_violation(ViolationKind::DuplicateSend, detail.str());
      return;
    }
    if (broadcast_only_) {
      if (round_payload_.has_value()) {
        if (!(*round_payload_ == payload))
          record_violation(ViolationKind::BroadcastMismatch,
                           "broadcast-only CONGEST: all messages in a round "
                           "must be identical");
      } else {
        round_payload_ = payload;
      }
    }
    outbox_[port] = std::move(payload);
  }

  void broadcast(const BitVec& payload) override {
    for (std::uint32_t p = 0; p < degree(); ++p) send(p, payload);
  }

  Rng& rng() override { return rng_; }

  BitVec scratch() override {
    if (pool_.empty()) return BitVec{};
    BitVec buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();  // vector storage is retained, so capacity is reused
    return buf;
  }

  void phase(std::string_view name) override {
    // Engines only wire a trace when one is recording, so the disabled-path
    // cost is the same single predicted branch record() pays.
    if (trace_ != nullptr) trace_->set_phase(round_, name);
  }

  void reject() override { verdict_ = Verdict::Reject; }
  void halt() override { halted_ = true; }

  // Simulator plumbing --------------------------------------------------
  /// Route NodeApi::phase declarations into `trace` (nullptr = discard).
  /// The engine owns the trace; it must outlive this NodeState.
  void set_trace(obs::RunTrace* trace) { trace_ = trace; }

  /// Redirect violation recording (non-null, engine-owned). Snapshot resume
  /// and node recovery replay past rounds through a scratch sink — the
  /// restored FaultReport already carries those violations — then point the
  /// node back at the live report before handing it to the run loop.
  void set_violation_sink(std::vector<ProtocolViolation>* violations) {
    CSD_CHECK(violations != nullptr);
    violations_ = violations;
  }

  void set_neighbor_ids(std::vector<NodeId> ids) {
    owned_neighbor_ids_ = std::move(ids);
    neighbor_ids_ = &owned_neighbor_ids_;
  }
  /// Share a table owned by the engine (computed once per topology and
  /// reused across runs/repetitions); must outlive this NodeState.
  void set_neighbor_ids(const std::vector<NodeId>* shared) {
    neighbor_ids_ = shared;
  }
  void begin_round(std::uint64_t r) {
    round_ = r;
    round_payload_.reset();
    for (auto& slot : outbox_) slot.reset();
  }
  void clear_inbox() {
    // Retire consumed payload buffers into the scratch pool instead of
    // freeing them; the pool is capped at the node degree (the most buffers
    // a round can retire) so programs that never call scratch() don't leak.
    for (auto& slot : inbox_) {
      if (slot.has_value() && pool_.size() < inbox_.size())
        pool_.push_back(std::move(*slot));
      slot.reset();
    }
  }
  void deliver(std::uint32_t port, BitVec payload) {
    inbox_[port] = std::move(payload);
  }
  std::optional<BitVec>& outbox(std::uint32_t port) { return outbox_[port]; }
  void discard_outbox() {
    for (auto& slot : outbox_) slot.reset();
  }
  bool halted() const { return halted_; }
  Verdict verdict() const { return verdict_; }
  Vertex index() const { return index_; }

 private:
  void record_violation(ViolationKind kind, std::string detail) {
    violations_->push_back(
        {kind, static_cast<std::uint32_t>(index_), round_, std::move(detail)});
  }

  const Graph& topology_;
  Vertex index_;
  NodeId id_;
  std::uint64_t network_size_;
  std::uint64_t namespace_size_;
  std::uint64_t bandwidth_;
  bool broadcast_only_;
  std::vector<ProtocolViolation>* violations_;
  obs::RunTrace* trace_ = nullptr;
  Rng rng_;
  std::optional<BitVec> round_payload_;
  std::uint64_t round_ = 0;
  std::vector<NodeId> owned_neighbor_ids_;
  const std::vector<NodeId>* neighbor_ids_ = &owned_neighbor_ids_;
  std::vector<std::optional<BitVec>> inbox_;
  std::vector<std::optional<BitVec>> outbox_;
  std::vector<BitVec> pool_;  // retired payload buffers (see scratch())
  bool halted_ = false;
  Verdict verdict_ = Verdict::Accept;
};

}  // namespace csd::congest::detail
