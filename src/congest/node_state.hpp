// Internal: concrete per-node state + NodeApi implementation, shared by the
// synchronous Network and the asynchronous engine (which presents the same
// pulse-by-pulse API through its synchronizer).
//
// A NodeState does not own its message slots: the engine allocates one
// inbox and one outbox FrameArena per run (frame_arena.hpp) and attaches
// each node to its contiguous row via attach_frames(). Sends and deliveries
// swap payload buffers into the slots instead of copying them, and the
// buffers displaced by sends feed the scratch() pool.
#pragma once

#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "congest/faults.hpp"
#include "congest/frame_arena.hpp"
#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "obs/round_trace.hpp"
#include "support/check.hpp"

namespace csd::congest::detail {

class NodeState final : public NodeApi {
 public:
  /// `violations` (owned by the engine, non-null) receives clamped protocol
  /// violations; see network.hpp for the clamping semantics.
  NodeState(const Graph& topology, Vertex index, NodeId node_id,
            std::uint64_t run_seed, std::uint64_t network_size,
            std::uint64_t namespace_size, std::uint64_t bandwidth,
            bool broadcast_only, std::vector<ProtocolViolation>* violations)
      : index_(index),
        id_(node_id),
        degree_(topology.degree(index)),
        network_size_(network_size),
        namespace_size_(namespace_size),
        bandwidth_(bandwidth),
        broadcast_only_(broadcast_only),
        violations_(violations),
        rng_(derive_seed(run_seed, index)) {
    CSD_CHECK(violations_ != nullptr);
  }

  /// Point this node at its rows in the engine-owned frame arenas (payload
  /// buffers and presence bytes are separate flat arrays). Must be called
  /// before the first round; the arenas must outlive this NodeState.
  void attach_frames(BitVec* inbox_payload, std::uint8_t* inbox_present,
                     BitVec* outbox_payload, std::uint8_t* outbox_present) {
    inbox_payload_ = inbox_payload;
    inbox_present_ = inbox_present;
    outbox_payload_ = outbox_payload;
    outbox_present_ = outbox_present;
  }

  // NodeApi -----------------------------------------------------------
  NodeId id() const override { return id_; }
  std::uint32_t degree() const override { return degree_; }
  NodeId neighbor_id(std::uint32_t port) const override {
    CSD_CHECK_MSG(port < degree_, "neighbor_id: port out of range");
    return neighbor_ids_[port];
  }
  std::uint64_t round() const override { return round_; }
  std::uint64_t network_size() const override { return network_size_; }
  std::uint64_t namespace_size() const override { return namespace_size_; }
  std::uint64_t bandwidth() const override { return bandwidth_; }

  const BitVec* inbox(std::uint32_t port) const override {
    CSD_CHECK_MSG(port < degree_, "inbox: port out of range");
    return inbox_present_[port] != 0 ? &inbox_payload_[port] : nullptr;
  }

  void send(std::uint32_t port, BitVec payload) override {
    CSD_CHECK_MSG(!halted_, "halted node cannot send");
    CSD_CHECK_MSG(port < degree_, "send: port out of range");
    if (bandwidth_ != 0 && payload.size() > bandwidth_) {
      std::ostringstream detail;
      detail << "message of " << payload.size() << " bits exceeds bandwidth "
             << bandwidth_ << "; truncated";
      record_violation(ViolationKind::Bandwidth, detail.str());
      payload.truncate(bandwidth_);
    }
    if (outbox_present_[port] != 0) {
      std::ostringstream detail;
      detail << "two sends on port " << port << " in one round; second send "
             << "ignored";
      record_violation(ViolationKind::DuplicateSend, detail.str());
      return;
    }
    if (broadcast_only_) {
      if (round_payload_.has_value()) {
        if (!(*round_payload_ == payload))
          record_violation(ViolationKind::BroadcastMismatch,
                           "broadcast-only CONGEST: all messages in a round "
                           "must be identical");
      } else {
        round_payload_ = payload;
      }
    }
    // Swap the message into the arena slot; the displaced buffer (stale
    // contents, unobservable while absent) retires into the scratch pool so
    // its capacity keeps circulating.
    std::swap(outbox_payload_[port], payload);
    outbox_present_[port] = 1;
    if (pool_.size() < degree_) pool_.push_back(std::move(payload));
  }

  void broadcast(const BitVec& payload) override {
    for (std::uint32_t p = 0; p < degree_; ++p) {
      BitVec copy = scratch();
      copy.assign(payload);
      send(p, std::move(copy));
    }
  }

  Rng& rng() override { return rng_; }

  BitVec scratch() override {
    if (pool_.empty()) return BitVec{};
    BitVec buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();  // vector storage is retained, so capacity is reused
    return buf;
  }

  void phase(std::string_view name) override {
    // Engines only wire a trace when one is recording, so the disabled-path
    // cost is the same single predicted branch record() pays.
    if (trace_ != nullptr) trace_->set_phase(round_, name);
    else if (phase_slot_ != nullptr && !phase_slot_->has_value())
      phase_slot_->emplace(name);
  }

  void reject() override { verdict_ = Verdict::Reject; }
  void halt() override { halted_ = true; }

  // Simulator plumbing --------------------------------------------------
  /// Route NodeApi::phase declarations into `trace` (nullptr = discard).
  /// The engine owns the trace; it must outlive this NodeState.
  void set_trace(obs::RunTrace* trace) { trace_ = trace; }

  /// Sharded-engine alternative to set_trace: RunTrace::set_phase is not
  /// thread-safe, so worker-owned nodes park their round's first phase
  /// declaration in this per-worker slot instead; the coordinator forwards
  /// it into the trace at the barrier. Ignored while a trace is attached.
  void set_phase_slot(std::optional<std::string>* slot) { phase_slot_ = slot; }

  /// Redirect violation recording (non-null, engine-owned). Snapshot resume
  /// and node recovery replay past rounds through a scratch sink — the
  /// restored FaultReport already carries those violations — then point the
  /// node back at the live report before handing it to the run loop.
  void set_violation_sink(std::vector<ProtocolViolation>* violations) {
    CSD_CHECK(violations != nullptr);
    violations_ = violations;
  }

  void set_neighbor_ids(std::vector<NodeId> ids) {
    owned_neighbor_ids_ = std::move(ids);
    neighbor_ids_ = owned_neighbor_ids_.data();
  }
  /// Share a row of a flat table owned by the engine (computed once per
  /// topology, reused across runs/repetitions); must outlive this NodeState
  /// and hold degree() entries.
  void set_neighbor_ids(const NodeId* shared) { neighbor_ids_ = shared; }
  void begin_round(std::uint64_t r) {
    round_ = r;
    round_payload_.reset();
    // Presence bytes only: the delivery pass already consumed this node's
    // outbox presence, but a crash/resume path may leave stragglers.
    if (degree_ > 0) std::memset(outbox_present_, 0, degree_);
  }
  void clear_inbox() {
    if (degree_ > 0) std::memset(inbox_present_, 0, degree_);
  }
  void deliver(std::uint32_t port, BitVec payload) {
    std::swap(inbox_payload_[port], payload);
    inbox_present_[port] = 1;
  }
  bool outbox_present(std::uint32_t port) const {
    return outbox_present_[port] != 0;
  }
  BitVec& outbox_payload(std::uint32_t port) { return outbox_payload_[port]; }
  void consume_outbox(std::uint32_t port) { outbox_present_[port] = 0; }
  void discard_outbox() {
    if (degree_ > 0) std::memset(outbox_present_, 0, degree_);
  }
  bool halted() const { return halted_; }
  Verdict verdict() const { return verdict_; }
  Vertex index() const { return index_; }

 private:
  void record_violation(ViolationKind kind, std::string detail) {
    violations_->push_back(
        {kind, static_cast<std::uint32_t>(index_), round_, std::move(detail)});
  }

  Vertex index_;
  NodeId id_;
  std::uint32_t degree_;
  std::uint64_t network_size_;
  std::uint64_t namespace_size_;
  std::uint64_t bandwidth_;
  bool broadcast_only_;
  std::vector<ProtocolViolation>* violations_;
  obs::RunTrace* trace_ = nullptr;
  std::optional<std::string>* phase_slot_ = nullptr;
  Rng rng_;
  std::optional<BitVec> round_payload_;
  std::uint64_t round_ = 0;
  std::vector<NodeId> owned_neighbor_ids_;
  const NodeId* neighbor_ids_ = nullptr;
  // Arena rows, engine-owned (attach_frames): payload buffers and presence
  // bytes are parallel arrays indexed by port.
  BitVec* inbox_payload_ = nullptr;
  std::uint8_t* inbox_present_ = nullptr;
  BitVec* outbox_payload_ = nullptr;
  std::uint8_t* outbox_present_ = nullptr;
  std::vector<BitVec> pool_;  // retired payload buffers (see scratch())
  bool halted_ = false;
  Verdict verdict_ = Verdict::Accept;
};

}  // namespace csd::congest::detail
