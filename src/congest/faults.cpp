#include "congest/faults.hpp"

#include <sstream>

#include "support/check.hpp"

namespace csd::congest {

const char* to_string(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::Bandwidth:
      return "bandwidth";
    case ViolationKind::DuplicateSend:
      return "duplicate-send";
    case ViolationKind::BroadcastMismatch:
      return "broadcast-mismatch";
    case ViolationKind::ProgramFault:
      return "program-fault";
  }
  return "?";
}

std::string summarize(const FaultReport& report) {
  std::ostringstream os;
  os << "frames dropped:     " << report.frames_dropped << '\n'
     << "frames corrupted:   " << report.frames_corrupted << '\n'
     << "retransmissions:    " << report.retransmissions << '\n'
     << "checksum rejects:   " << report.checksum_rejects << '\n'
     << "duplicate packets:  " << report.duplicate_packets << '\n'
     << "duplicate acks:     " << report.duplicate_acks << '\n'
     << "transport failures: " << report.transport_failures << '\n';
  os << "crashed nodes:     ";
  if (report.crashed_nodes.empty()) os << " none";
  for (const auto v : report.crashed_nodes) os << ' ' << v;
  os << '\n' << "recovered nodes:   ";
  if (report.recovered_nodes.empty()) os << " none";
  for (const auto v : report.recovered_nodes) os << ' ' << v;
  if (report.replayed_pulses > 0)
    os << '\n' << "replayed pulses:    " << report.replayed_pulses;
  if (report.watchdog_stalls > 0)
    os << '\n' << "watchdog stalls:    " << report.watchdog_stalls;
  os << '\n' << "stalled nodes:     ";
  if (report.stalled_nodes.empty()) os << " none";
  for (const auto v : report.stalled_nodes) os << ' ' << v;
  os << '\n' << "violations:         " << report.violations.size();
  for (const auto& violation : report.violations)
    os << "\n  [" << to_string(violation.kind) << "] node " << violation.node
       << " round " << violation.round << ": " << violation.detail;
  os << '\n'
     << "survivors detect:   "
     << (report.detected_by_survivors ? "REJECT" : "accept") << '\n';
  return os.str();
}

obs::MetricsRegistry fault_counters(const FaultReport& report) {
  obs::MetricsRegistry counters;
  counters.add("frames_dropped", report.frames_dropped);
  counters.add("frames_corrupted", report.frames_corrupted);
  counters.add("retransmissions", report.retransmissions);
  counters.add("checksum_rejects", report.checksum_rejects);
  counters.add("duplicate_packets", report.duplicate_packets);
  counters.add("duplicate_acks", report.duplicate_acks);
  counters.add("transport_failures", report.transport_failures);
  counters.add("crashed_nodes", report.crashed_nodes.size());
  counters.add("recovered_nodes", report.recovered_nodes.size());
  counters.add("replayed_pulses", report.replayed_pulses);
  counters.add("watchdog_stalls", report.watchdog_stalls);
  counters.add("stalled_nodes", report.stalled_nodes.size());
  counters.add("violations", report.violations.size());
  return counters;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                             const Graph& topology)
    : plan_(plan) {
  CSD_CHECK_MSG(plan_.drop >= 0.0 && plan_.drop <= 1.0,
                "drop probability " << plan_.drop << " outside [0, 1]");
  CSD_CHECK_MSG(plan_.corrupt >= 0.0 && plan_.corrupt <= 1.0,
                "corrupt probability " << plan_.corrupt << " outside [0, 1]");
  const Vertex n = topology.num_vertices();
  link_rng_.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto deg = topology.degree(v);
    link_rng_[v].reserve(deg);
    for (std::uint32_t p = 0; p < deg; ++p)
      link_rng_[v].emplace_back(derive_seed(
          derive_seed(seed, 0xfa017ULL), (static_cast<std::uint64_t>(v) << 20) | p));
  }
  crash_round_.resize(n);
  for (const auto& crash : plan_.crashes) {
    CSD_CHECK_MSG(crash.node < n,
                  "crash event names node " << crash.node << " but the "
                  "topology has " << n << " nodes");
    auto& slot = crash_round_[crash.node];
    if (!slot.has_value() || crash.round < *slot) slot = crash.round;
  }
}

FaultInjector::Fate FaultInjector::next_fate(std::uint32_t src,
                                             std::uint32_t port,
                                             std::size_t corruptible_bits) {
  CSD_DCHECK(src < link_rng_.size());
  CSD_DCHECK(port < link_rng_[src].size());
  Rng& rng = link_rng_[src][port];
  // Always make the same three draws so the stream position after the i-th
  // transmission is independent of earlier fates.
  const double drop_draw = rng.uniform();
  const double corrupt_draw = rng.uniform();
  const std::uint64_t bit_draw = rng();
  Fate fate;
  fate.dropped = drop_draw < plan_.drop;
  if (!fate.dropped && corruptible_bits > 0 && corrupt_draw < plan_.corrupt) {
    fate.corrupted = true;
    fate.corrupt_bit = static_cast<std::size_t>(bit_draw % corruptible_bits);
  }
  return fate;
}

std::vector<std::vector<std::array<std::uint64_t, 4>>>
FaultInjector::save_streams() const {
  std::vector<std::vector<std::array<std::uint64_t, 4>>> streams;
  streams.reserve(link_rng_.size());
  for (const auto& per_port : link_rng_) {
    auto& out = streams.emplace_back();
    out.reserve(per_port.size());
    for (const auto& rng : per_port) out.push_back(rng.state());
  }
  return streams;
}

void FaultInjector::restore_streams(
    const std::vector<std::vector<std::array<std::uint64_t, 4>>>& streams) {
  CSD_CHECK_MSG(streams.size() == link_rng_.size(),
                "snapshot fault streams cover " << streams.size()
                << " nodes, topology has " << link_rng_.size());
  for (std::size_t v = 0; v < streams.size(); ++v) {
    CSD_CHECK_MSG(streams[v].size() == link_rng_[v].size(),
                  "snapshot fault streams for node " << v << " cover "
                  << streams[v].size() << " ports, topology has "
                  << link_rng_[v].size());
    for (std::size_t p = 0; p < streams[v].size(); ++p)
      link_rng_[v][p].set_state(streams[v][p]);
  }
}

std::optional<std::uint64_t> FaultInjector::crash_round(
    std::uint32_t node) const {
  CSD_DCHECK(node < crash_round_.size());
  return crash_round_[node];
}

}  // namespace csd::congest
