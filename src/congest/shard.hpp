// Internal: the sharded superstep engine behind NetworkConfig::shard.
//
// Network::run_impl dispatches here when shard.workers >= 1. The engine
// runs the same CONGEST round semantics as the classic single-loop path,
// Pregel-style: a deterministic Partition assigns each node to one of W
// workers, every worker executes its owned nodes' compute + outbox scan in
// ascending vertex order (superstep phase A), cross-worker frames travel
// through per-worker-pair ShardChannels exchanged at the barrier, and
// destination workers drain their incoming channels in (src_worker, dense
// edge index) order (phase B). Workers vote to halt once every owned node
// is halted or crashed, and skip their superstep until a frame arrives for
// a checkpoint log (none can: halted nodes never recover under this
// engine, so the vote is final).
//
// Hard contract, tested by test_shard and gated by the shard-determinism
// CI job: every outcome field that the classic engine promises to be
// bit-identical at any --jobs (verdicts, FaultReport, accounting,
// csd-trace-v2 traces, transcripts, csd-ckpt-v1 snapshots) is additionally
// bit-identical at any worker count W and either partition policy. The two
// ingredients:
//   * all order-sensitive side effects (trace records, transcript entries,
//     on_message callbacks, violation and crash lists) are buffered
//     per-worker in ascending order and replayed on the coordinating
//     thread in the global merge order (ascending vertex / dense edge
//     index per round) — exactly the classic engine's iteration order;
//   * everything else the round loop touches is naturally order-free:
//     fault fates are per-link RNG streams, per-round trace rows are sums,
//     inbox slots and log rows are per-(node, port) cells, and accounting
//     is sums/maxes folded at the barrier.
//
// Caveats a caller inherits by turning sharding on: node programs of one
// run execute concurrently, so a custom ProgramFactory must not share
// mutable state between its program instances (the library's never do),
// and ShardSpec::combiner runs on worker threads (keep it pure).
#pragma once

#include "congest/network.hpp"

namespace csd::congest::detail {

/// Sharded equivalent of the classic run loop; same inputs, bit-identical
/// outputs. `resume_from` replays a csd-ckpt-v1 sync snapshot exactly like
/// Network::resume — snapshots do not record the worker count that took
/// them, so any W resumes any snapshot.
RunOutcome run_sharded(const Network& net, const ProgramFactory& factory,
                       std::uint64_t seed, const SyncSnapshot* resume_from);

}  // namespace csd::congest::detail
