#include "congest/transport.hpp"

#include "support/check.hpp"
#include "support/crc.hpp"

namespace csd::congest {

std::uint32_t packet_checksum(std::uint64_t seq, const Frame& frame,
                              const TransportConfig& config) {
  Crc32 crc;
  crc.bits(seq, config.seq_bits);
  crc.bits(frame.pulse, Frame::kPulseWireBits);
  crc.bit(frame.sender_halted);
  crc.bit(frame.payload.has_value());
  if (frame.payload.has_value()) crc.raw(*frame.payload);
  return crc.value();
}

DataPacket LinkSender::packet(Frame frame) {
  DataPacket packet;
  packet.seq = next_seq_++;
  CSD_CHECK_MSG(config_.seq_bits >= 64 || (packet.seq >> config_.seq_bits) == 0,
                "sequence number " << packet.seq << " overflows the "
                << config_.seq_bits << "-bit on-wire field");
  packet.crc = packet_checksum(packet.seq, frame, config_);
  packet.frame = frame;
  pending_.emplace(packet.seq, Pending{std::move(frame), packet.crc, 1});
  return packet;
}

bool LinkSender::on_ack(std::uint64_t seq) {
  return pending_.erase(seq) != 0;
}

LinkSender::TimeoutAction LinkSender::on_timeout(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return TimeoutAction::Settled;
  if (it->second.attempts > config_.max_retries) {
    pending_.erase(it);
    return TimeoutAction::GiveUp;
  }
  ++it->second.attempts;
  return TimeoutAction::Retransmit;
}

DataPacket LinkSender::retransmit_packet(std::uint64_t seq) const {
  const auto it = pending_.find(seq);
  CSD_CHECK_MSG(it != pending_.end(), "retransmit of settled packet " << seq);
  return DataPacket{seq, it->second.frame, it->second.crc};
}

std::uint64_t LinkSender::timeout_for(std::uint64_t seq,
                                      std::uint64_t base_rto) const {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return base_rto;
  // attempts = k means the k-th transmission was just sent: back off 2^(k-1),
  // capped to keep virtual times sane on long retry chains.
  const std::uint32_t shift =
      it->second.attempts > 16 ? 16u : it->second.attempts - 1;
  return base_rto << shift;
}

std::vector<std::uint64_t> LinkSender::pending_seqs() const {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(pending_.size());
  for (const auto& [seq, pending] : pending_) seqs.push_back(seq);
  return seqs;
}

LinkSenderState LinkSender::save_state() const {
  LinkSenderState state;
  state.next_seq = next_seq_;
  state.pending.reserve(pending_.size());
  for (const auto& [seq, pending] : pending_)
    state.pending.push_back(
        {seq, pending.frame, pending.crc, pending.attempts});
  return state;
}

void LinkSender::restore_state(const LinkSenderState& state) {
  next_seq_ = state.next_seq;
  pending_.clear();
  for (const auto& entry : state.pending)
    pending_.emplace(entry.seq,
                     Pending{entry.frame, entry.crc, entry.attempts});
}

LinkReceiver::Accept LinkReceiver::on_data(const DataPacket& packet) {
  Accept accept;
  if (packet_checksum(packet.seq, packet.frame, config_) != packet.crc) {
    accept.checksum_reject = true;
    return accept;
  }
  accept.send_ack = true;
  accept.ack_seq = packet.seq;
  if (packet.seq < next_expected_ ||
      reorder_.find(packet.seq) != reorder_.end()) {
    accept.duplicate = true;
    return accept;
  }
  reorder_.emplace(packet.seq, packet.frame);
  for (auto it = reorder_.find(next_expected_); it != reorder_.end();
       it = reorder_.find(next_expected_)) {
    accept.deliver.push_back(std::move(it->second));
    reorder_.erase(it);
    ++next_expected_;
  }
  return accept;
}

LinkReceiverState LinkReceiver::save_state() const {
  LinkReceiverState state;
  state.next_expected = next_expected_;
  state.reorder.reserve(reorder_.size());
  for (const auto& [seq, frame] : reorder_)
    state.reorder.push_back({seq, frame});
  return state;
}

void LinkReceiver::restore_state(const LinkReceiverState& state) {
  next_expected_ = state.next_expected;
  reorder_.clear();
  for (const auto& entry : state.reorder)
    reorder_.emplace(entry.seq, entry.frame);
}

}  // namespace csd::congest
