#include "congest/shard.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "congest/node_state.hpp"
#include "congest/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_v2.hpp"
#include "support/check.hpp"

namespace csd::congest::detail {
namespace {

// One message as the observers saw it at the sender, recorded during the
// outbox scan and replayed on the coordinator in ascending dense-edge
// order. Only populated when an observer (trace / transcript / on_message)
// is attached; the payload copy only when a transcript is recording.
struct SentRecord {
  std::uint64_t edge = 0;
  Vertex src = 0;
  Vertex dst = 0;
  std::uint64_t bits = 0;
  BitVec payload;
};

// Per-worker execution context. Round-scoped members are reset by the
// coordinator between supersteps; run-scoped accumulators are folded into
// the outcome at checkpoints and at the end. Workers only ever touch their
// own context (plus the channels addressed to them in phase B), so no
// member needs a lock.
struct WorkerCtx {
  std::uint32_t id = 0;
  std::uint32_t live = 0;  // owned nodes neither halted nor crashed

  // Run-scoped accounting (on top of any resume base).
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::uint64_t channel_frames_total = 0;
  std::uint64_t channel_bits_total = 0;
  // Last round this worker made progress (halt, crash, or frame shipped) —
  // surfaced per worker in channel_counters and in supervisor StallReports.
  std::uint64_t last_progress_round = 0;

  // Round-scoped scratch.
  bool all_stopped = true;
  bool progressed = false;
  std::uint64_t round_dropped = 0;
  std::uint64_t round_corrupted = 0;
  std::uint64_t round_channel_frames = 0;
  std::uint64_t round_channel_bits = 0;
  std::uint64_t round_local_frames = 0;
  std::vector<ProtocolViolation> violations;  // ascending node index
  std::vector<Vertex> crashes;                // ascending node index
  std::vector<SentRecord> sent;               // ascending edge index
  std::optional<std::string> phase;           // first NodeApi::phase this round

  std::vector<ShardChannel> out;  // one per destination worker

  // First exception this worker hit, with the vertex it was processing
  // (the coordinator rethrows the globally smallest vertex's exception to
  // match the classic engine's fail-fast order).
  std::exception_ptr error;
  Vertex error_vertex = std::numeric_limits<Vertex>::max();
};

// Persistent superstep crew: worker 0 runs on the coordinating thread,
// workers 1..W-1 on dedicated threads woken per phase. Jobs must not throw
// (run_sharded wraps them); the pool only synchronizes.
class SuperstepPool {
 public:
  explicit SuperstepPool(std::uint32_t workers) : workers_(workers) {
    threads_.reserve(workers_ > 0 ? workers_ - 1 : 0);
    for (std::uint32_t w = 1; w < workers_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  }

  ~SuperstepPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      quit_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  SuperstepPool(const SuperstepPool&) = delete;
  SuperstepPool& operator=(const SuperstepPool&) = delete;

  /// Run job(w) for every worker and wait for all of them (the barrier).
  void run(const std::function<void(std::uint32_t)>& job) {
    if (workers_ <= 1) {
      job(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      remaining_ = workers_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    job(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop(std::uint32_t w) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(std::uint32_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] { return quit_ || generation_ != seen; });
        if (quit_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(w);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--remaining_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::uint32_t workers_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint32_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint32_t remaining_ = 0;
  bool quit_ = false;
};

// Restore a combiner-rewritten channel to ascending edge order (the merge-
// order invariant phase B relies on). Skipped when no combiner ran: the
// scan fills channels in ascending order already.
void sort_channel(ShardChannel& channel) {
  std::vector<std::uint32_t> perm(channel.used);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return channel.edges[a] < channel.edges[b];
  });
  std::vector<std::uint64_t> edges(channel.used);
  std::vector<BitVec> payloads(channel.used);
  for (std::uint32_t i = 0; i < channel.used; ++i) {
    edges[i] = channel.edges[perm[i]];
    payloads[i] = std::move(channel.payloads[perm[i]]);
  }
  std::copy(edges.begin(), edges.end(), channel.edges.begin());
  std::move(payloads.begin(), payloads.end(), channel.payloads.begin());
}

// K-way merge of per-worker, per-round event lists into the classic
// engine's global order (ascending key; ties impossible — keys are node or
// edge indices owned by exactly one worker). W is small: repeated min-scan.
template <typename T, typename Key, typename Consume>
void merge_rounds(std::vector<WorkerCtx>& workers,
                  std::vector<T> WorkerCtx::* member, Key key,
                  Consume consume) {
  const std::uint32_t w_count = static_cast<std::uint32_t>(workers.size());
  std::vector<std::size_t> pos(w_count, 0);
  while (true) {
    std::uint32_t best = w_count;
    std::uint64_t best_key = 0;
    for (std::uint32_t w = 0; w < w_count; ++w) {
      auto& list = workers[w].*member;
      if (pos[w] >= list.size()) continue;
      const std::uint64_t k = key(list[pos[w]]);
      if (best == w_count || k < best_key) {
        best = w;
        best_key = k;
      }
    }
    if (best == w_count) break;
    consume(std::move((workers[best].*member)[pos[best]++]));
  }
  for (std::uint32_t w = 0; w < w_count; ++w) (workers[w].*member).clear();
}

}  // namespace

RunOutcome run_sharded(const Network& net, const ProgramFactory& factory,
                       std::uint64_t seed, const SyncSnapshot* resume_from) {
  const Graph& topology = net.topology();
  const NetworkConfig& config = net.config();
  const GraphCsr& csr = net.csr();
  const std::vector<std::uint32_t>& rev_port = net.rev_port();
  const std::vector<std::uint64_t>& rev_edge = net.rev_edge();
  const std::vector<NodeId>& ids = net.ids();
  const Vertex n = topology.num_vertices();
  const std::uint32_t w_count = config.shard.workers;
  CSD_CHECK(w_count >= 1);

  std::uint64_t namespace_size = config.namespace_size;
  if (namespace_size == 0) namespace_size = n;
  for (const NodeId id : ids)
    CSD_CHECK_MSG(id < namespace_size,
                  "identifier " << id << " outside namespace ["
                                << namespace_size << ")");

  RunOutcome outcome;
  outcome.metrics.bits_sent_by_node.assign(n, 0);
  outcome.trace = obs::RunTrace(n, config.trace);

  const Partition part = Partition::build(csr, w_count, config.shard.policy);
  std::vector<WorkerCtx> workers(w_count);
  for (std::uint32_t w = 0; w < w_count; ++w) {
    workers[w].id = w;
    workers[w].out.resize(w_count);
    workers[w].live = static_cast<std::uint32_t>(part.owned(w).size());
  }

  detail::FrameArena inbox_arena(csr);
  detail::FrameArena outbox_arena(csr);

  // Nodes route violations straight into their owner's per-round buffer;
  // the coordinator merges buffers into the FaultReport at every barrier,
  // so the report lists events in the classic engine's order.
  std::vector<std::unique_ptr<NodeState>> nodes;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  nodes.reserve(n);
  programs.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<NodeState>(
        topology, v, ids[v], seed, n, namespace_size, config.bandwidth,
        config.broadcast_only, &workers[part.owner(v)].violations));
    nodes.back()->set_neighbor_ids(net.neighbor_ids_flat().data() +
                                   csr.offsets[v]);
    nodes.back()->attach_frames(
        inbox_arena.payload_row(v), inbox_arena.present_row(v),
        outbox_arena.payload_row(v), outbox_arena.present_row(v));
    programs.push_back(factory(v));
    CSD_CHECK_MSG(programs.back() != nullptr, "factory returned null program");
  }

  const bool faulty = !config.faults.empty();
  std::optional<FaultInjector> injector;
  if (faulty) injector.emplace(config.faults, seed, topology);
  // Byte flags, not vector<bool>: workers set disjoint entries in parallel.
  std::vector<std::uint8_t> crashed(n, 0);

  const std::uint64_t checkpoint_at = config.checkpoint_at_round;
  const bool logging = checkpoint_at > 0;
  if (logging || resume_from != nullptr)
    CSD_CHECK_MSG(!config.record_transcript && !config.on_message,
                  "checkpoint/resume is incompatible with record_transcript "
                  "and on_message observers");
  std::vector<InboxLog> inbox_log(logging ? n : 0);
  const auto log_row = [&](Vertex v, std::uint64_t r)
      -> std::vector<std::optional<BitVec>>& {
    auto& entries = inbox_log[v].entries;
    while (entries.size() <= r)
      entries.emplace_back(topology.degree(v));
    return entries[r];
  };

  // Sharded timer split: phase A wall time (compute + outbox scan) counts
  // as compute_ns, the barrier work + channel drain as delivery_ns. The
  // buckets approximate the classic engine's split; like there, timings
  // stay out of the trace and out of every determinism contract.
  using Clock = std::chrono::steady_clock;
  const bool timing = config.trace.timers;
  outcome.metrics.timers.enabled = timing;
  const auto elapsed_ns = [](Clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
  };

  // Accounting base restored from a snapshot; workers accumulate deltas on
  // top and the two are folded at checkpoints and at the end.
  std::uint64_t base_messages = 0;
  std::uint64_t base_total_bits = 0;
  std::uint64_t base_max_message_bits = 0;

  std::uint64_t start_round = 0;
  if (resume_from != nullptr) {
    const SyncSnapshot& snap = *resume_from;
    CSD_CHECK_MSG(snap.identity.topology == topology_digest(topology, ids),
                  "snapshot belongs to a different topology/identifier "
                  "assignment");
    CSD_CHECK_MSG(snap.identity.config == net.config_digest(),
                  "snapshot belongs to a different engine configuration");
    CSD_CHECK_MSG(snap.inbox.size() == n && snap.crashed.size() == n &&
                      snap.halted.size() == n &&
                      snap.bits_sent_by_node.size() == n,
                  "snapshot node count mismatch");
    start_round = snap.round;

    base_messages = snap.messages;
    base_total_bits = snap.total_bits;
    base_max_message_bits = snap.max_message_bits;
    outcome.metrics.bits_sent_by_node = snap.bits_sent_by_node;
    outcome.faults = snap.faults;
    if (faulty) injector->restore_streams(snap.fault_streams);

    // Sequential replay, identical to the classic engine's: the log already
    // contains every delivered payload, so replay needs no worker fan-out.
    std::vector<ProtocolViolation> replay_violations;
    for (Vertex v = 0; v < n; ++v)
      nodes[v]->set_violation_sink(&replay_violations);
    for (std::uint64_t r = 0; r < start_round; ++r) {
      for (Vertex v = 0; v < n; ++v) {
        if (nodes[v]->halted() || crashed[v]) continue;
        if (faulty) {
          if (const auto when = injector->crash_round(v);
              when.has_value() && r >= *when) {
            crashed[v] = 1;
            nodes[v]->discard_outbox();
            continue;
          }
        }
        nodes[v]->clear_inbox();
        const auto& entries = snap.inbox[v].entries;
        if (r < entries.size())
          for (std::uint32_t p = 0; p < entries[r].size(); ++p)
            if (entries[r][p].has_value())
              nodes[v]->deliver(p, BitVec(*entries[r][p]));
        nodes[v]->begin_round(r);
        if (faulty) {
          try {
            programs[v]->on_round(*nodes[v]);
          } catch (const CheckFailure&) {
            crashed[v] = 1;
            nodes[v]->discard_outbox();
          }
        } else {
          programs[v]->on_round(*nodes[v]);
        }
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      CSD_CHECK_MSG(crashed[v] == snap.crashed[v],
                    "resume replay diverged: node " << v << " crash state");
      CSD_CHECK_MSG(nodes[v]->halted() == (snap.halted[v] != 0),
                    "resume replay diverged: node " << v << " halt state");
      nodes[v]->discard_outbox();
      nodes[v]->set_violation_sink(&workers[part.owner(v)].violations);
      nodes[v]->clear_inbox();
      const auto& entries = snap.inbox[v].entries;
      if (start_round < entries.size())
        for (std::uint32_t p = 0; p < entries[start_round].size(); ++p)
          if (entries[start_round][p].has_value())
            nodes[v]->deliver(p, BitVec(*entries[start_round][p]));
      if (logging) inbox_log[v].entries = snap.inbox[v].entries;
    }
    for (std::uint32_t w = 0; w < w_count; ++w) {
      std::uint32_t live = 0;
      for (const Vertex v : part.owned(w))
        if (!nodes[v]->halted() && !crashed[v]) ++live;
      workers[w].live = live;
    }
  }

  // NodeApi::phase declarations land in the owner's per-round slot; the
  // coordinator forwards the lowest set slot into the trace. All library
  // programs derive the phase from the round number (the documented
  // contract — every node agrees), so worker order never shows.
  if (outcome.trace)
    for (Vertex v = 0; v < n; ++v)
      nodes[v]->set_phase_slot(&workers[part.owner(v)].phase);

  const bool observing = static_cast<bool>(outcome.trace) ||
                         config.record_transcript ||
                         static_cast<bool>(config.on_message);
  const bool transcripting = config.record_transcript;
  bool checkpoint_taken = false;

  const auto fold_accounting = [&](std::uint64_t& messages,
                                   std::uint64_t& total_bits,
                                   std::uint64_t& max_bits) {
    messages = base_messages;
    total_bits = base_total_bits;
    max_bits = base_max_message_bits;
    for (const WorkerCtx& w : workers) {
      messages += w.messages;
      total_bits += w.total_bits;
      max_bits = std::max(max_bits, w.max_message_bits);
    }
  };

  std::uint64_t round = start_round;
  std::uint64_t last_progress = start_round;
  for (WorkerCtx& ctx : workers) ctx.last_progress_round = start_round;

  // csd-metrics-v2 instrumentation, coordinator-side only: workers tally
  // into their round-scoped scratch as before and the barrier publishes the
  // tallies, so the hot phase-A path is untouched and the ring records
  // events in the deterministic merge order. Write-only; nullptr = inert.
  obs::Telemetry* const telemetry = config.telemetry;
  obs::Counter m_supersteps, m_channel_frames, m_channel_bits, m_local_frames,
      m_drops, m_corrupts, m_crashes;
  obs::Histogram m_exchange_hist;
  std::vector<obs::Counter> m_worker_frames;
  if (telemetry != nullptr) {
    m_supersteps = telemetry->counter("shard_supersteps");
    m_channel_frames = telemetry->counter("shard_channel_frames");
    m_channel_bits = telemetry->counter("shard_channel_bits");
    m_local_frames = telemetry->counter("shard_local_frames");
    m_drops = telemetry->counter("shard_frames_dropped");
    m_corrupts = telemetry->counter("shard_frames_corrupted");
    m_crashes = telemetry->counter("shard_node_crashes");
    m_exchange_hist = telemetry->histogram("shard_exchange_frames");
    m_worker_frames.reserve(w_count);
    for (std::uint32_t w = 0; w < w_count; ++w)
      m_worker_frames.push_back(telemetry->counter(
          obs::worker_counter_name("shard_channel_frames", w)));
  }

  // Phase A: compute owned nodes, then scan the owned outbox slice —
  // account, apply fault fates, deliver locally, batch remote frames.
  const auto phase_a = [&](std::uint32_t w) {
    WorkerCtx& ctx = workers[w];
    if (ctx.live == 0) return;  // vote-to-halt: nothing to run or ship
    const auto& owned = part.owned(w);
    for (const Vertex v : owned) {
      if (nodes[v]->halted() || crashed[v]) continue;
      if (faulty) {
        if (const auto when = injector->crash_round(v);
            when.has_value() && round >= *when) {
          crashed[v] = 1;
          nodes[v]->discard_outbox();
          ctx.crashes.push_back(v);
          --ctx.live;
          ctx.progressed = true;
          continue;
        }
      }
      ctx.all_stopped = false;
      nodes[v]->begin_round(round);
      if (faulty) {
        try {
          programs[v]->on_round(*nodes[v]);
        } catch (const CheckFailure& failure) {
          ctx.violations.push_back(
              {ViolationKind::ProgramFault, v, round, failure.what()});
          crashed[v] = 1;
          nodes[v]->discard_outbox();
          ctx.crashes.push_back(v);
          --ctx.live;
          ctx.progressed = true;
          continue;
        }
      } else {
        ctx.error_vertex = v;  // fail-fast bookkeeping, see catch below
        programs[v]->on_round(*nodes[v]);
      }
      if (nodes[v]->halted()) {
        --ctx.live;
        ctx.progressed = true;
      }
    }
    // Fresh inboxes for round + 1 before any delivery lands in them. Only
    // this worker writes its nodes' inbox rows (locally here, remotely in
    // its own phase B), so the reset never races.
    for (const Vertex v : owned) nodes[v]->clear_inbox();
    for (const Vertex v : owned) {
      if (crashed[v]) continue;
      const auto nbrs = csr.row(v);
      const std::uint64_t base = csr.offsets[v];
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        const std::uint64_t e = base + p;
        std::uint8_t& out_present = outbox_arena.present(e);
        if (out_present == 0) continue;
        out_present = 0;
        BitVec& payload = outbox_arena.payload(e);
        ++ctx.messages;
        ctx.total_bits += payload.size();
        outcome.metrics.bits_sent_by_node[v] += payload.size();
        ctx.max_message_bits =
            std::max<std::uint64_t>(ctx.max_message_bits, payload.size());
        if (observing) {
          SentRecord rec{e, v, nbrs[p], payload.size(), {}};
          if (transcripting) rec.payload = payload;
          ctx.sent.push_back(std::move(rec));
        }
        if (faulty) {
          const auto fate = injector->next_fate(v, p, payload.size());
          if (fate.dropped) {
            ++ctx.round_dropped;
            continue;
          }
          if (fate.corrupted) {
            ++ctx.round_corrupted;
            payload.flip(fate.corrupt_bit);
          }
        }
        ctx.progressed = true;
        const Vertex dst = nbrs[p];
        const std::uint32_t dw = part.owner(dst);
        if (dw == w) {
          ++ctx.round_local_frames;
          if (logging && !checkpoint_taken && round + 1 <= checkpoint_at)
            log_row(dst, round + 1)[rev_port[e]] = payload;
          std::swap(inbox_arena.payload(rev_edge[e]), payload);
          inbox_arena.present(rev_edge[e]) = 1;
        } else {
          ++ctx.round_channel_frames;
          ctx.round_channel_bits += payload.size();
          ctx.out[dw].push(e, payload);
        }
      }
    }
    if (config.shard.combiner) {
      for (std::uint32_t dw = 0; dw < w_count; ++dw) {
        if (dw == w || ctx.out[dw].used == 0) continue;
        config.shard.combiner(w, dw, ctx.out[dw]);
        sort_channel(ctx.out[dw]);
      }
    }
  };

  // Phase B: drain every channel addressed to this worker in (src_worker,
  // edge) order — the deterministic merge order.
  const auto phase_b = [&](std::uint32_t w) {
    for (std::uint32_t src = 0; src < w_count; ++src) {
      ShardChannel& channel = workers[src].out[w];
      for (std::size_t i = 0; i < channel.used; ++i) {
        const std::uint64_t e = channel.edges[i];
        BitVec& payload = channel.payloads[i];
        if (logging && !checkpoint_taken && round + 1 <= checkpoint_at) {
          const Vertex dst = csr.neighbors[e];
          log_row(dst, round + 1)[rev_port[e]] = payload;
        }
        std::swap(inbox_arena.payload(rev_edge[e]), payload);
        inbox_arena.present(rev_edge[e]) = 1;
      }
      channel.reset();
    }
  };

  // Jobs never throw across the pool: exceptions park in the context and
  // the coordinator rethrows the one from the globally smallest vertex
  // (each worker stops at its first thrower, so its unrun vertices cannot
  // beat it — the classic fail-fast order).
  const auto guarded = [&workers](auto job) {
    return [&workers, job](std::uint32_t w) {
      try {
        job(w);
      } catch (...) {
        workers[w].error = std::current_exception();
      }
    };
  };
  const auto rethrow_any = [&] {
    std::uint32_t best = w_count;
    for (std::uint32_t w = 0; w < w_count; ++w) {
      if (!workers[w].error) continue;
      if (best == w_count ||
          workers[w].error_vertex < workers[best].error_vertex)
        best = w;
    }
    if (best != w_count) std::rethrow_exception(workers[best].error);
  };

  SuperstepPool pool(w_count);
  const std::function<void(std::uint32_t)> phase_a_job = guarded(phase_a);
  const std::function<void(std::uint32_t)> phase_b_job = guarded(phase_b);

  for (; round < config.max_rounds; ++round) {
    if (config.stall_window != 0 &&
        round >= last_progress + config.stall_window) {
      outcome.faults.watchdog_stalls = 1;
      if (telemetry != nullptr)
        telemetry->record(obs::EventKind::WatchdogStall, 0, round,
                          round - last_progress);
      break;
    }
    if (checkpoint_at != 0 && round == checkpoint_at && !checkpoint_taken) {
      auto snap = std::make_shared<Snapshot>();
      snap->kind = Snapshot::Kind::Sync;
      SyncSnapshot& s = snap->sync;
      s.identity = {topology_digest(topology, ids), net.config_digest(),
                    seed};
      s.round = round;
      s.inbox.resize(n);
      for (Vertex v = 0; v < n; ++v) {
        log_row(v, round);  // pad every log to round + 1 rows
        s.inbox[v].entries = inbox_log[v].entries;
      }
      s.crashed.resize(n);
      s.halted.resize(n);
      for (Vertex v = 0; v < n; ++v) {
        s.crashed[v] = crashed[v];
        s.halted[v] = nodes[v]->halted() ? 1 : 0;
      }
      fold_accounting(s.messages, s.total_bits, s.max_message_bits);
      s.bits_sent_by_node = outcome.metrics.bits_sent_by_node;
      s.trace_bytes = outcome.trace.approx_bytes();
      s.faults = outcome.faults;
      if (faulty) s.fault_streams = injector->save_streams();
      outcome.checkpoint = std::move(snap);
      checkpoint_taken = true;
      if (telemetry != nullptr)
        telemetry->record(obs::EventKind::CheckpointSave, 0, round);
    }

    for (WorkerCtx& ctx : workers) {
      ctx.all_stopped = true;
      ctx.progressed = false;
      ctx.round_dropped = 0;
      ctx.round_corrupted = 0;
      ctx.round_channel_frames = 0;
      ctx.round_channel_bits = 0;
      ctx.round_local_frames = 0;
      ctx.phase.reset();
    }

    const auto compute_start = timing ? Clock::now() : Clock::time_point{};
    pool.run(phase_a_job);
    rethrow_any();
    if (timing) outcome.metrics.timers.compute_ns += elapsed_ns(compute_start);

    const auto barrier_start = timing ? Clock::now() : Clock::time_point{};
    bool all_stopped = true;
    bool progressed = false;
    for (const WorkerCtx& ctx : workers) {
      all_stopped = all_stopped && ctx.all_stopped;
      progressed = progressed || ctx.progressed;
      outcome.faults.frames_dropped += ctx.round_dropped;
      outcome.faults.frames_corrupted += ctx.round_corrupted;
      if (telemetry != nullptr) {
        m_drops.add(ctx.round_dropped);
        m_corrupts.add(ctx.round_corrupted);
      }
    }
    merge_rounds(
        workers, &WorkerCtx::crashes,
        [](const Vertex v) { return static_cast<std::uint64_t>(v); },
        [&](Vertex v) {
          outcome.faults.crashed_nodes.push_back(v);
          if (telemetry != nullptr) {
            m_crashes.add();
            telemetry->record(obs::EventKind::NodeCrash, v, round);
          }
        });
    merge_rounds(
        workers, &WorkerCtx::violations,
        [](const ProtocolViolation& pv) {
          return static_cast<std::uint64_t>(pv.node);
        },
        [&](ProtocolViolation&& pv) {
          if (telemetry != nullptr)
            telemetry->record(obs::EventKind::Violation, pv.node, round);
          outcome.faults.violations.push_back(std::move(pv));
        });
    if (observing) {
      merge_rounds(
          workers, &WorkerCtx::sent,
          [](const SentRecord& rec) { return rec.edge; },
          [&](SentRecord&& rec) {
            if (outcome.trace)
              outcome.trace.record(round, rec.src, rec.dst, rec.bits);
            if (transcripting)
              outcome.transcript.push_back(
                  {round, rec.src, rec.dst, std::move(rec.payload)});
            if (config.on_message)
              config.on_message(round, rec.src, rec.dst, rec.bits);
          });
    }
    if (outcome.trace) {
      for (WorkerCtx& ctx : workers)
        if (ctx.phase.has_value()) {
          outcome.trace.set_phase(round, *ctx.phase);
          break;
        }
    }
    if (all_stopped) {
      if (timing)
        outcome.metrics.timers.delivery_ns += elapsed_ns(barrier_start);
      break;
    }

    pool.run(phase_b_job);
    rethrow_any();
    if (timing)
      outcome.metrics.timers.delivery_ns += elapsed_ns(barrier_start);

    for (WorkerCtx& ctx : workers) {
      ctx.channel_frames_total += ctx.round_channel_frames;
      ctx.channel_bits_total += ctx.round_channel_bits;
    }
    if (telemetry != nullptr) {
      m_supersteps.add();
      std::uint64_t exchanged = 0;
      for (const WorkerCtx& ctx : workers) {
        exchanged += ctx.round_channel_frames;
        m_channel_frames.add(ctx.round_channel_frames);
        m_channel_bits.add(ctx.round_channel_bits);
        m_local_frames.add(ctx.round_local_frames);
        m_worker_frames[ctx.id].add(ctx.round_channel_frames);
        if (ctx.round_channel_frames != 0)
          telemetry->record(obs::EventKind::ChannelExchange, ctx.id, round,
                            ctx.round_channel_frames);
      }
      m_exchange_hist.observe(exchanged);
      telemetry->record(obs::EventKind::SuperstepBarrier, 0, round, exchanged);
    }
    if (config.shard.on_superstep) {
      for (const WorkerCtx& ctx : workers)
        config.shard.on_superstep({round, ctx.id, ctx.round_channel_frames,
                                   ctx.round_channel_bits,
                                   ctx.round_local_frames, ctx.live == 0});
    }
    if (progressed) {
      last_progress = round + 1;
      for (WorkerCtx& ctx : workers)
        if (ctx.progressed) ctx.last_progress_round = round + 1;
    }
  }

  outcome.metrics.rounds = round;
  fold_accounting(outcome.metrics.messages, outcome.metrics.total_bits,
                  outcome.metrics.max_message_bits);
  outcome.completed =
      std::all_of(nodes.begin(), nodes.end(),
                  [](const auto& node) { return node->halted(); });
  outcome.verdicts.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    outcome.verdicts.push_back(nodes[v]->verdict());
    if (nodes[v]->verdict() == Verdict::Reject) outcome.detected = true;
    if (!crashed[v] && nodes[v]->verdict() == Verdict::Reject)
      outcome.faults.detected_by_survivors = true;
    if (!crashed[v] && !nodes[v]->halted())
      outcome.faults.stalled_nodes.push_back(v);
  }
  outcome.metrics.counters = fault_counters(outcome.faults);
  if (outcome.checkpoint != nullptr)
    outcome.metrics.counters.add("checkpoints_taken", 1);
  if (config.shard.channel_counters) {
    // Opt-in only: these depend on W (and on the partition), so the
    // determinism matrix runs without them and the nightly sweep with.
    outcome.metrics.counters.add("shard_workers", w_count);
    outcome.metrics.counters.add("shard_cut_edges", part.cut_directed_edges());
    for (const WorkerCtx& ctx : workers) {
      outcome.metrics.counters.add(
          obs::worker_counter_name("shard_channel_frames", ctx.id),
          ctx.channel_frames_total);
      outcome.metrics.counters.add(
          obs::worker_counter_name("shard_channel_bytes", ctx.id),
          (ctx.channel_bits_total + 7) / 8);
      // Per-worker stall provenance: the last round this worker halted a
      // node, crashed one, or shipped a frame. Supervisor StallReports
      // carry these through to the post-mortem.
      outcome.metrics.counters.add(
          obs::worker_counter_name("shard_last_progress", ctx.id),
          ctx.last_progress_round);
    }
  }
  if (outcome.trace) {
    outcome.trace.finish_run(round);
    outcome.trace.set_counters(outcome.metrics.counters);
  }
  outcome.metrics.trace_bytes = outcome.trace.approx_bytes();
  return outcome;
}

}  // namespace csd::congest::detail
