// Deterministic parallel run driver.
//
// Every measurement in this reproduction funnels through many independent
// Network::run invocations — amplification repetitions, seed sweeps, size
// sweeps. Each run is a pure function of (topology, config, factory, seed):
// node randomness is derived per node from the run seed, the fault injector
// is seeded per link, and runs share no mutable state. RunBatch exploits
// exactly that purity: it fans runs across a fixed-size worker group and
// guarantees BIT-IDENTICAL results regardless of the thread count, because
// parallelism only changes *when* a run executes, never what it computes.
//
// Early exit (one-sided detection) is also deterministic: the batch is cut
// at r* = the lowest-indexed task that detects. Workers claim tasks in
// index order, so every task with index <= r* is guaranteed to have run;
// tasks beyond r* that a parallel worker happened to finish are discarded.
// The reported result is therefore a pure function of the task list — the
// same at --jobs 1, 4, or hardware_concurrency.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "congest/network.hpp"

namespace csd::congest {

/// Resolve a jobs knob: 0 = one worker per hardware thread (minimum 1).
unsigned resolve_jobs(unsigned jobs) noexcept;

class RunBatch {
 public:
  /// `jobs` worker threads per execute() call; 0 = hardware_concurrency.
  explicit RunBatch(unsigned jobs = 0);

  unsigned jobs() const noexcept { return jobs_; }

  /// One independent run: network and factory must outlive execute(), and
  /// both must be safe to use from multiple threads (see Network::run).
  struct Task {
    const Network* network = nullptr;
    const ProgramFactory* factory = nullptr;
    std::uint64_t seed = 0;
  };

  struct Result {
    /// outcomes[i] is engaged iff task i is part of the deterministic
    /// prefix (always, unless cut by stop_after_detection), in task order.
    std::vector<std::optional<RunOutcome>> outcomes;
    std::uint32_t executed = 0;  // engaged outcomes
    std::uint32_t skipped = 0;   // tasks beyond the early-exit cut
  };

  /// Run all tasks. With `stop_after_detection`, the result is cut after
  /// the lowest-indexed detecting task (detection is one-sided, so later
  /// tasks cannot change the answer). If a task throws (e.g. CheckFailure
  /// from a mis-budgeted program), the exception of the lowest-indexed
  /// throwing task inside the deterministic prefix is rethrown — exactly
  /// what a sequential loop would have surfaced.
  Result execute(const std::vector<Task>& tasks,
                 bool stop_after_detection = false) const;

  /// Generic deterministic fan-out: invoke `fn(i)` for i in [0, count),
  /// distributed over the worker group. `fn` must only touch per-index
  /// state (write results into slot i of a pre-sized vector); reduce
  /// sequentially afterwards to keep floating-point sums bit-stable.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn) const;

 private:
  unsigned jobs_;
};

}  // namespace csd::congest
