#include "congest/network.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "congest/node_state.hpp"
#include "congest/run_batch.hpp"
#include "support/check.hpp"

namespace csd::congest {

using detail::NodeState;

Network::Network(Graph topology, NetworkConfig config)
    : topology_(std::move(topology)), config_(config) {
  ids_.resize(topology_.num_vertices());
  for (Vertex v = 0; v < topology_.num_vertices(); ++v) ids_[v] = v;
  build_topology_tables();
}

Network::Network(Graph topology, NetworkConfig config,
                 std::vector<NodeId> ids)
    : topology_(std::move(topology)), config_(config), ids_(std::move(ids)) {
  CSD_CHECK_MSG(ids_.size() == topology_.num_vertices(),
                "identifier assignment size mismatch");
  build_topology_tables();
}

// Port mapping: port p of node v leads to topology_.neighbors(v)[p]; for
// delivery we need the reverse port on the receiving side. Built once per
// topology in O(sum deg) expected time via per-vertex port maps (the old
// per-run std::find scan was O(sum deg^2) and re-paid on every repetition).
void Network::build_topology_tables() {
  const Vertex n = topology_.num_vertices();
  std::vector<std::unordered_map<Vertex, std::uint32_t>> port_of(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = topology_.neighbors(v);
    port_of[v].reserve(nbrs.size());
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) port_of[v][nbrs[p]] = p;
  }
  reverse_port_.resize(n);
  neighbor_ids_.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = topology_.neighbors(v);
    reverse_port_[v].resize(nbrs.size());
    neighbor_ids_[v].resize(nbrs.size());
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      const Vertex w = nbrs[p];
      const auto it = port_of[w].find(v);
      CSD_CHECK(it != port_of[w].end());
      reverse_port_[v][p] = it->second;
      neighbor_ids_[v][p] = ids_[w];
    }
  }
}

RunOutcome Network::run(const ProgramFactory& factory) const {
  return run(factory, config_.seed);
}

RunOutcome Network::run(const ProgramFactory& factory,
                        std::uint64_t seed) const {
  const Vertex n = topology_.num_vertices();

  std::uint64_t namespace_size = config_.namespace_size;
  if (namespace_size == 0) namespace_size = n;
  for (const NodeId id : ids_)
    CSD_CHECK_MSG(id < namespace_size,
                  "identifier " << id << " outside namespace ["
                                << namespace_size << ")");

  RunOutcome outcome;
  outcome.metrics.bits_sent_by_node.assign(n, 0);
  outcome.trace = obs::RunTrace(n, config_.trace);

  std::vector<std::unique_ptr<NodeState>> nodes;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  nodes.reserve(n);
  programs.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<NodeState>(
        topology_, v, ids_[v], seed, n, namespace_size,
        config_.bandwidth, config_.broadcast_only,
        &outcome.faults.violations));
    nodes.back()->set_neighbor_ids(&neighbor_ids_[v]);
    if (outcome.trace) nodes.back()->set_trace(&outcome.trace);
    programs.push_back(factory(v));
    CSD_CHECK_MSG(programs.back() != nullptr, "factory returned null program");
  }

  const bool faulty = !config_.faults.empty();
  std::optional<FaultInjector> injector;
  if (faulty) injector.emplace(config_.faults, seed, topology_);
  std::vector<bool> crashed(n, false);
  const auto crash = [&](Vertex v) {
    crashed[v] = true;
    nodes[v]->discard_outbox();
    outcome.faults.crashed_nodes.push_back(v);
  };

  // Opt-in wall-clock split (TraceOptions::timers): program execution vs.
  // message delivery. Two clock reads per round when enabled, nothing when
  // not; the timings land in RunMetrics, never in the trace (the trace is a
  // pure function of the model-level data, wall clocks are not).
  using Clock = std::chrono::steady_clock;
  const bool timing = config_.trace.timers;
  outcome.metrics.timers.enabled = timing;
  const auto elapsed_ns = [](Clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
  };

  std::uint64_t round = 0;
  for (; round < config_.max_rounds; ++round) {
    bool all_stopped = true;
    const auto compute_start = timing ? Clock::now() : Clock::time_point{};
    for (Vertex v = 0; v < n; ++v) {
      if (nodes[v]->halted() || crashed[v]) continue;
      if (faulty) {
        if (const auto when = injector->crash_round(v);
            when.has_value() && round >= *when) {
          crash(v);
          continue;
        }
      }
      all_stopped = false;
      nodes[v]->begin_round(round);
      if (faulty) {
        // Graceful degradation: a program that throws (typically a wire
        // decode of a corrupted payload) becomes a crashed node, not a
        // crashed process. Without faults, programming errors still
        // propagate — fail fast.
        try {
          programs[v]->on_round(*nodes[v]);
        } catch (const CheckFailure& failure) {
          outcome.faults.violations.push_back(
              {ViolationKind::ProgramFault, v, round, failure.what()});
          crash(v);
        }
      } else {
        programs[v]->on_round(*nodes[v]);
      }
    }
    if (timing) outcome.metrics.timers.compute_ns += elapsed_ns(compute_start);
    if (all_stopped) break;

    // Deliver: outboxes of this round become inboxes of the next.
    const auto delivery_start = timing ? Clock::now() : Clock::time_point{};
    for (Vertex v = 0; v < n; ++v) nodes[v]->clear_inbox();
    for (Vertex v = 0; v < n; ++v) {
      if (crashed[v]) continue;
      const auto nbrs = topology_.neighbors(v);
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        auto& slot = nodes[v]->outbox(p);
        if (!slot.has_value()) continue;
        BitVec payload = std::move(*slot);
        slot.reset();
        ++outcome.metrics.messages;
        outcome.metrics.total_bits += payload.size();
        outcome.metrics.bits_sent_by_node[v] += payload.size();
        outcome.metrics.max_message_bits =
            std::max<std::uint64_t>(outcome.metrics.max_message_bits,
                                    payload.size());
        if (outcome.trace)
          outcome.trace.record(round, v, nbrs[p], payload.size());
        if (config_.record_transcript)
          outcome.transcript.push_back({round, v, nbrs[p], payload});
        if (config_.on_message)
          config_.on_message(round, v, nbrs[p], payload.size());
        if (faulty) {
          const auto fate = injector->next_fate(v, p, payload.size());
          if (fate.dropped) {
            ++outcome.faults.frames_dropped;
            continue;
          }
          if (fate.corrupted) {
            ++outcome.faults.frames_corrupted;
            payload.flip(fate.corrupt_bit);
          }
        }
        nodes[nbrs[p]]->deliver(reverse_port_[v][p], std::move(payload));
      }
    }
    if (timing)
      outcome.metrics.timers.delivery_ns += elapsed_ns(delivery_start);
  }

  outcome.metrics.rounds = round;
  outcome.completed =
      std::all_of(nodes.begin(), nodes.end(),
                  [](const auto& node) { return node->halted(); });
  outcome.verdicts.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    outcome.verdicts.push_back(nodes[v]->verdict());
    if (nodes[v]->verdict() == Verdict::Reject) outcome.detected = true;
    if (!crashed[v] && nodes[v]->verdict() == Verdict::Reject)
      outcome.faults.detected_by_survivors = true;
    if (!crashed[v] && !nodes[v]->halted())
      outcome.faults.stalled_nodes.push_back(v);
  }
  outcome.metrics.counters = fault_counters(outcome.faults);
  if (outcome.trace) {
    // Materialize quiet trailing rounds so trace rounds == metrics.rounds
    // (the exponent fit divides by segments to recover per-repetition
    // rounds), and surface the engine counters in the summary.
    outcome.trace.finish_run(round);
    outcome.trace.set_counters(outcome.metrics.counters);
  }
  outcome.metrics.trace_bytes = outcome.trace.approx_bytes();
  return outcome;
}

RunOutcome run_congest(const Graph& topology, const NetworkConfig& config,
                       const ProgramFactory& factory) {
  Network net(topology, config);
  return net.run(factory);
}

RunOutcome run_amplified(const Graph& topology, const NetworkConfig& config,
                         const ProgramFactory& factory,
                         std::uint32_t repetitions,
                         const AmplifyOptions& options) {
  CSD_CHECK(repetitions >= 1);
  const Network net(topology, config);

  std::vector<std::uint64_t> seeds(repetitions);
  for (std::uint32_t rep = 0; rep < repetitions; ++rep)
    seeds[rep] = derive_seed(config.seed, 0x5eedULL + rep);
  std::vector<RunBatch::Task> tasks(repetitions);
  for (std::uint32_t rep = 0; rep < repetitions; ++rep)
    tasks[rep] = {&net, &factory, seeds[rep]};

  const RunBatch batch(options.jobs);
  RunBatch::Result result = batch.execute(tasks, options.early_exit);

  const Vertex n = topology.num_vertices();
  RunOutcome combined;
  combined.completed = true;
  combined.verdicts.assign(n, Verdict::Accept);
  combined.metrics.bits_sent_by_node.assign(n, 0);
  combined.metrics.repetitions_executed = result.executed;
  combined.metrics.repetitions_skipped = result.skipped;
  for (auto& slot : result.outcomes) {
    if (!slot.has_value()) continue;  // skipped by early exit
    RunOutcome& rep = *slot;
    combined.completed = combined.completed && rep.completed;
    combined.detected = combined.detected || rep.detected;
    for (Vertex v = 0; v < n; ++v)
      if (rep.verdicts[v] == Verdict::Reject)
        combined.verdicts[v] = Verdict::Reject;
    combined.metrics.rounds += rep.metrics.rounds;
    combined.metrics.messages += rep.metrics.messages;
    combined.metrics.total_bits += rep.metrics.total_bits;
    combined.metrics.max_message_bits =
        std::max(combined.metrics.max_message_bits,
                 rep.metrics.max_message_bits);
    for (Vertex v = 0; v < n; ++v)
      combined.metrics.bits_sent_by_node[v] +=
          rep.metrics.bits_sent_by_node[v];
    combined.transcript.insert(
        combined.transcript.end(),
        std::make_move_iterator(rep.transcript.begin()),
        std::make_move_iterator(rep.transcript.end()));
    // Traces merge in repetition order — the deterministic task order the
    // batch guarantees — so the combined trace is jobs-count independent.
    combined.trace.append(rep.trace);
    combined.metrics.trace_bytes += rep.metrics.trace_bytes;
    combined.metrics.counters.merge(rep.metrics.counters);
    combined.metrics.timers.merge(rep.metrics.timers);
    FaultReport& f = combined.faults;
    FaultReport& rf = rep.faults;
    f.frames_dropped += rf.frames_dropped;
    f.frames_corrupted += rf.frames_corrupted;
    f.retransmissions += rf.retransmissions;
    f.checksum_rejects += rf.checksum_rejects;
    f.duplicate_packets += rf.duplicate_packets;
    f.duplicate_acks += rf.duplicate_acks;
    f.transport_failures += rf.transport_failures;
    f.crashed_nodes.insert(f.crashed_nodes.end(), rf.crashed_nodes.begin(),
                           rf.crashed_nodes.end());
    f.stalled_nodes.insert(f.stalled_nodes.end(), rf.stalled_nodes.begin(),
                           rf.stalled_nodes.end());
    f.violations.insert(f.violations.end(),
                        std::make_move_iterator(rf.violations.begin()),
                        std::make_move_iterator(rf.violations.end()));
    f.detected_by_survivors =
        f.detected_by_survivors || rf.detected_by_survivors;
  }
  return combined;
}

}  // namespace csd::congest
