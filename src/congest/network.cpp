#include "congest/network.hpp"

#include <algorithm>
#include <utility>

#include "congest/node_state.hpp"
#include "support/check.hpp"

namespace csd::congest {

using detail::NodeState;

Network::Network(Graph topology, NetworkConfig config)
    : topology_(std::move(topology)), config_(config) {
  ids_.resize(topology_.num_vertices());
  for (Vertex v = 0; v < topology_.num_vertices(); ++v) ids_[v] = v;
}

Network::Network(Graph topology, NetworkConfig config,
                 std::vector<NodeId> ids)
    : topology_(std::move(topology)), config_(config), ids_(std::move(ids)) {
  CSD_CHECK_MSG(ids_.size() == topology_.num_vertices(),
                "identifier assignment size mismatch");
}

RunOutcome Network::run(const ProgramFactory& factory) {
  const Vertex n = topology_.num_vertices();

  // Port mapping: port p of node v leads to topology_.neighbors(v)[p]. For
  // delivery we need the reverse port on the receiving side.
  std::vector<std::vector<std::uint32_t>> reverse_port(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = topology_.neighbors(v);
    reverse_port[v].resize(nbrs.size());
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      const Vertex w = nbrs[p];
      const auto back = topology_.neighbors(w);
      const auto it = std::find(back.begin(), back.end(), v);
      CSD_CHECK(it != back.end());
      reverse_port[v][p] = static_cast<std::uint32_t>(it - back.begin());
    }
  }

  std::uint64_t namespace_size = config_.namespace_size;
  if (namespace_size == 0) namespace_size = n;
  for (const NodeId id : ids_)
    CSD_CHECK_MSG(id < namespace_size,
                  "identifier " << id << " outside namespace ["
                                << namespace_size << ")");

  RunOutcome outcome;
  outcome.metrics.bits_sent_by_node.assign(n, 0);

  std::vector<std::unique_ptr<NodeState>> nodes;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  nodes.reserve(n);
  programs.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<NodeState>(
        topology_, v, ids_[v], config_.seed, n, namespace_size,
        config_.bandwidth, config_.broadcast_only,
        &outcome.faults.violations));
    std::vector<NodeId> neighbor_ids;
    for (const Vertex w : topology_.neighbors(v))
      neighbor_ids.push_back(ids_[w]);
    nodes.back()->set_neighbor_ids(std::move(neighbor_ids));
    programs.push_back(factory(v));
    CSD_CHECK_MSG(programs.back() != nullptr, "factory returned null program");
  }

  const bool faulty = !config_.faults.empty();
  std::optional<FaultInjector> injector;
  if (faulty) injector.emplace(config_.faults, config_.seed, topology_);
  std::vector<bool> crashed(n, false);
  const auto crash = [&](Vertex v) {
    crashed[v] = true;
    nodes[v]->discard_outbox();
    outcome.faults.crashed_nodes.push_back(v);
  };

  std::uint64_t round = 0;
  for (; round < config_.max_rounds; ++round) {
    bool all_stopped = true;
    for (Vertex v = 0; v < n; ++v) {
      if (nodes[v]->halted() || crashed[v]) continue;
      if (faulty) {
        if (const auto when = injector->crash_round(v);
            when.has_value() && round >= *when) {
          crash(v);
          continue;
        }
      }
      all_stopped = false;
      nodes[v]->begin_round(round);
      if (faulty) {
        // Graceful degradation: a program that throws (typically a wire
        // decode of a corrupted payload) becomes a crashed node, not a
        // crashed process. Without faults, programming errors still
        // propagate — fail fast.
        try {
          programs[v]->on_round(*nodes[v]);
        } catch (const CheckFailure& failure) {
          outcome.faults.violations.push_back(
              {ViolationKind::ProgramFault, v, round, failure.what()});
          crash(v);
        }
      } else {
        programs[v]->on_round(*nodes[v]);
      }
    }
    if (all_stopped) break;

    // Deliver: outboxes of this round become inboxes of the next.
    for (Vertex v = 0; v < n; ++v) nodes[v]->clear_inbox();
    for (Vertex v = 0; v < n; ++v) {
      if (crashed[v]) continue;
      const auto nbrs = topology_.neighbors(v);
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        auto& slot = nodes[v]->outbox(p);
        if (!slot.has_value()) continue;
        BitVec payload = std::move(*slot);
        slot.reset();
        ++outcome.metrics.messages;
        outcome.metrics.total_bits += payload.size();
        outcome.metrics.bits_sent_by_node[v] += payload.size();
        outcome.metrics.max_message_bits =
            std::max<std::uint64_t>(outcome.metrics.max_message_bits,
                                    payload.size());
        if (config_.record_transcript)
          outcome.transcript.push_back({round, v, nbrs[p], payload});
        if (config_.on_message)
          config_.on_message(round, v, nbrs[p], payload.size());
        if (faulty) {
          const auto fate = injector->next_fate(v, p, payload.size());
          if (fate.dropped) {
            ++outcome.faults.frames_dropped;
            continue;
          }
          if (fate.corrupted) {
            ++outcome.faults.frames_corrupted;
            payload.flip(fate.corrupt_bit);
          }
        }
        nodes[nbrs[p]]->deliver(reverse_port[v][p], std::move(payload));
      }
    }
  }

  outcome.metrics.rounds = round;
  outcome.completed =
      std::all_of(nodes.begin(), nodes.end(),
                  [](const auto& node) { return node->halted(); });
  outcome.verdicts.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    outcome.verdicts.push_back(nodes[v]->verdict());
    if (nodes[v]->verdict() == Verdict::Reject) outcome.detected = true;
    if (!crashed[v] && nodes[v]->verdict() == Verdict::Reject)
      outcome.faults.detected_by_survivors = true;
    if (!crashed[v] && !nodes[v]->halted())
      outcome.faults.stalled_nodes.push_back(v);
  }
  return outcome;
}

RunOutcome run_congest(const Graph& topology, const NetworkConfig& config,
                       const ProgramFactory& factory) {
  Network net(topology, config);
  return net.run(factory);
}

RunOutcome run_amplified(const Graph& topology, const NetworkConfig& config,
                         const ProgramFactory& factory,
                         std::uint32_t repetitions) {
  CSD_CHECK(repetitions >= 1);
  RunOutcome combined;
  std::uint64_t total_rounds = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t total_messages = 0;
  bool detected = false;
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    NetworkConfig rep_config = config;
    rep_config.seed = derive_seed(config.seed, 0x5eedULL + rep);
    Network net(topology, rep_config);
    combined = net.run(factory);
    total_rounds += combined.metrics.rounds;
    total_bits += combined.metrics.total_bits;
    total_messages += combined.metrics.messages;
    detected = detected || combined.detected;
  }
  combined.detected = detected;
  combined.metrics.rounds = total_rounds;
  combined.metrics.total_bits = total_bits;
  combined.metrics.messages = total_messages;
  return combined;
}

}  // namespace csd::congest
