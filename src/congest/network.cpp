#include "congest/network.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "congest/node_state.hpp"
#include "congest/run_batch.hpp"
#include "congest/shard.hpp"
#include "obs/metrics_v2.hpp"
#include "support/check.hpp"

namespace csd::congest {

using detail::NodeState;

Network::Network(Graph topology, NetworkConfig config)
    : topology_(std::move(topology)), config_(config) {
  ids_.resize(topology_.num_vertices());
  for (Vertex v = 0; v < topology_.num_vertices(); ++v) ids_[v] = v;
  build_topology_tables();
}

Network::Network(Graph topology, NetworkConfig config,
                 std::vector<NodeId> ids)
    : topology_(std::move(topology)), config_(config), ids_(std::move(ids)) {
  CSD_CHECK_MSG(ids_.size() == topology_.num_vertices(),
                "identifier assignment size mismatch");
  build_topology_tables();
}

// Port mapping: port p of node v leads to topology_.neighbors(v)[p]; for
// delivery we need the reverse port on the receiving side. Built once per
// topology in O(sum deg) expected time via per-vertex port maps (the old
// per-run std::find scan was O(sum deg^2) and re-paid on every repetition).
// The tables are flat arrays over the CSR's dense directed-edge index, so
// the delivery loop walks them linearly with no pointer chasing.
void Network::build_topology_tables() {
  const Vertex n = topology_.num_vertices();
  csr_ = &topology_.csr();  // materialize once; shared const reads after
  const auto& offsets = csr_->offsets;
  std::vector<std::unordered_map<Vertex, std::uint32_t>> port_of(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = csr_->row(v);
    port_of[v].reserve(nbrs.size());
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) port_of[v][nbrs[p]] = p;
  }
  const auto m2 = static_cast<std::size_t>(csr_->num_directed_edges());
  rev_port_.resize(m2);
  rev_edge_.resize(m2);
  neighbor_ids_flat_.resize(m2);
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = csr_->row(v);
    const std::uint64_t base = offsets[v];
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      const Vertex w = nbrs[p];
      const auto it = port_of[w].find(v);
      CSD_CHECK(it != port_of[w].end());
      rev_port_[base + p] = it->second;
      rev_edge_[base + p] = offsets[w] + it->second;
      neighbor_ids_flat_[base + p] = ids_[w];
    }
  }
}

// NetworkConfig::shard is deliberately NOT digested: the sharded engine is
// bit-identical to the classic loop, so a snapshot taken at one worker
// count must resume at any other (test_shard pins this).
std::uint64_t Network::config_digest() const {
  std::uint64_t h = kDigestSeed;
  h = digest_mix(h, config_.bandwidth);
  h = digest_mix(h, config_.max_rounds);
  h = digest_mix(h, config_.namespace_size);
  h = digest_mix(h, config_.broadcast_only ? 1 : 0);
  h = digest_mix(h, fault_plan_digest(config_.faults));
  return h;
}

RunOutcome Network::run(const ProgramFactory& factory) const {
  return run_impl(factory, config_.seed, nullptr);
}

RunOutcome Network::run(const ProgramFactory& factory,
                        std::uint64_t seed) const {
  return run_impl(factory, seed, nullptr);
}

RunOutcome Network::resume(const ProgramFactory& factory,
                           const Snapshot& snapshot) const {
  CSD_CHECK_MSG(snapshot.kind == Snapshot::Kind::Sync,
                "Network::resume needs a sync snapshot, got "
                    << to_string(snapshot.kind));
  return run_impl(factory, snapshot.sync.identity.seed, &snapshot.sync);
}

RunOutcome Network::run_impl(const ProgramFactory& factory,
                             std::uint64_t seed,
                             const SyncSnapshot* resume_from) const {
  if (config_.shard.workers != 0)
    return detail::run_sharded(*this, factory, seed, resume_from);
  const Vertex n = topology_.num_vertices();

  std::uint64_t namespace_size = config_.namespace_size;
  if (namespace_size == 0) namespace_size = n;
  for (const NodeId id : ids_)
    CSD_CHECK_MSG(id < namespace_size,
                  "identifier " << id << " outside namespace ["
                                << namespace_size << ")");

  RunOutcome outcome;
  outcome.metrics.bits_sent_by_node.assign(n, 0);
  outcome.trace = obs::RunTrace(n, config_.trace);

  // The run's frame plane: every directed edge gets one outbox and one
  // inbox slot; delivery swaps payload buffers between the two arenas.
  detail::FrameArena inbox_arena(*csr_);
  detail::FrameArena outbox_arena(*csr_);

  std::vector<std::unique_ptr<NodeState>> nodes;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  nodes.reserve(n);
  programs.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<NodeState>(
        topology_, v, ids_[v], seed, n, namespace_size,
        config_.bandwidth, config_.broadcast_only,
        &outcome.faults.violations));
    nodes.back()->set_neighbor_ids(neighbor_ids_flat_.data() +
                                   csr_->offsets[v]);
    nodes.back()->attach_frames(
        inbox_arena.payload_row(v), inbox_arena.present_row(v),
        outbox_arena.payload_row(v), outbox_arena.present_row(v));
    if (outcome.trace) nodes.back()->set_trace(&outcome.trace);
    programs.push_back(factory(v));
    CSD_CHECK_MSG(programs.back() != nullptr, "factory returned null program");
  }

  const bool faulty = !config_.faults.empty();
  std::optional<FaultInjector> injector;
  if (faulty) injector.emplace(config_.faults, seed, topology_);

  // csd-metrics-v2 instrumentation: register handles once (mutex), update
  // lock-free per round. Everything below is write-only — the engine never
  // reads the plane back, so the run is bit-identical with or without it.
  obs::Telemetry* const telemetry = config_.telemetry;
  obs::Counter m_rounds, m_messages, m_bits, m_drops, m_corrupts, m_crashes;
  obs::Gauge m_arena, m_arena_capacity;
  obs::Histogram m_round_bits;
  if (telemetry != nullptr) {
    m_rounds = telemetry->counter("sync_rounds");
    m_messages = telemetry->counter("sync_messages");
    m_bits = telemetry->counter("sync_bits");
    m_drops = telemetry->counter("sync_frames_dropped");
    m_corrupts = telemetry->counter("sync_frames_corrupted");
    m_crashes = telemetry->counter("sync_node_crashes");
    m_arena = telemetry->gauge("sync_arena_frames");
    m_arena_capacity = telemetry->gauge("sync_arena_capacity");
    m_arena_capacity.set(inbox_arena.size());
    m_round_bits = telemetry->histogram("sync_round_bits");
  }

  std::vector<bool> crashed(n, false);
  const auto crash = [&](Vertex v, std::uint64_t at) {
    crashed[v] = true;
    nodes[v]->discard_outbox();
    outcome.faults.crashed_nodes.push_back(v);
    if (telemetry != nullptr) {
      m_crashes.add();
      telemetry->record(obs::EventKind::NodeCrash, v, at);
    }
  };

  // Inbox logging feeds checkpoint capture: every payload delivered (post-
  // corruption, exactly what the program will see) is copied into a per-node
  // round-indexed log, the raw material of program-state replay. Serialized
  // observers are impossible, so checkpointing excludes them.
  const std::uint64_t checkpoint_at = config_.checkpoint_at_round;
  const bool logging = checkpoint_at > 0;
  if (logging || resume_from != nullptr)
    CSD_CHECK_MSG(!config_.record_transcript && !config_.on_message,
                  "checkpoint/resume is incompatible with record_transcript "
                  "and on_message observers");
  std::vector<InboxLog> inbox_log(logging ? n : 0);
  const auto log_row = [&](Vertex v, std::uint64_t r)
      -> std::vector<std::optional<BitVec>>& {
    auto& entries = inbox_log[v].entries;
    while (entries.size() <= r)
      entries.emplace_back(topology_.degree(
          static_cast<Vertex>(v)));
    return entries[r];
  };

  // Opt-in wall-clock split (TraceOptions::timers): program execution vs.
  // message delivery. Two clock reads per round when enabled, nothing when
  // not; the timings land in RunMetrics, never in the trace (the trace is a
  // pure function of the model-level data, wall clocks are not).
  using Clock = std::chrono::steady_clock;
  const bool timing = config_.trace.timers;
  outcome.metrics.timers.enabled = timing;
  const auto elapsed_ns = [](Clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
  };

  std::uint64_t start_round = 0;
  if (resume_from != nullptr) {
    const SyncSnapshot& snap = *resume_from;
    CSD_CHECK_MSG(snap.identity.topology == topology_digest(topology_, ids_),
                  "snapshot belongs to a different topology/identifier "
                  "assignment");
    CSD_CHECK_MSG(snap.identity.config == config_digest(),
                  "snapshot belongs to a different engine configuration");
    CSD_CHECK_MSG(snap.inbox.size() == n && snap.crashed.size() == n &&
                      snap.halted.size() == n &&
                      snap.bits_sent_by_node.size() == n,
                  "snapshot node count mismatch");
    start_round = snap.round;

    // Restore accounting and the fault-plan cursor.
    outcome.metrics.messages = snap.messages;
    outcome.metrics.total_bits = snap.total_bits;
    outcome.metrics.max_message_bits = snap.max_message_bits;
    outcome.metrics.bits_sent_by_node = snap.bits_sent_by_node;
    outcome.faults = snap.faults;
    if (faulty) injector->restore_streams(snap.fault_streams);

    // Rebuild program state by replaying the logged inboxes through the
    // fresh programs: same guards as the live loop, but zero accounting, no
    // trace, and violations routed to a scratch sink (the restored
    // FaultReport already carries everything from rounds < start_round).
    std::vector<ProtocolViolation> replay_violations;
    for (Vertex v = 0; v < n; ++v) {
      nodes[v]->set_violation_sink(&replay_violations);
      nodes[v]->set_trace(nullptr);
    }
    for (std::uint64_t r = 0; r < start_round; ++r) {
      for (Vertex v = 0; v < n; ++v) {
        if (nodes[v]->halted() || crashed[v]) continue;
        if (faulty) {
          if (const auto when = injector->crash_round(v);
              when.has_value() && r >= *when) {
            crashed[v] = true;
            nodes[v]->discard_outbox();
            continue;
          }
        }
        nodes[v]->clear_inbox();
        const auto& entries = snap.inbox[v].entries;
        if (r < entries.size())
          for (std::uint32_t p = 0; p < entries[r].size(); ++p)
            if (entries[r][p].has_value())
              nodes[v]->deliver(p, BitVec(*entries[r][p]));
        nodes[v]->begin_round(r);
        if (faulty) {
          try {
            programs[v]->on_round(*nodes[v]);
          } catch (const CheckFailure&) {
            crashed[v] = true;
            nodes[v]->discard_outbox();
          }
        } else {
          programs[v]->on_round(*nodes[v]);
        }
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      CSD_CHECK_MSG(crashed[v] == (snap.crashed[v] != 0),
                    "resume replay diverged: node " << v << " crash state");
      CSD_CHECK_MSG(nodes[v]->halted() == (snap.halted[v] != 0),
                    "resume replay diverged: node " << v << " halt state");
      // Replayed sends were already delivered before the snapshot (their
      // payloads are in the log rows); drop them so the live delivery
      // phase does not ship the final replayed round's outbox twice.
      // begin_round alone cannot clean this up — a node that halted during
      // replay never begins another round.
      nodes[v]->discard_outbox();
      nodes[v]->set_violation_sink(&outcome.faults.violations);
      if (outcome.trace) nodes[v]->set_trace(&outcome.trace);
      // The live inbox for round start_round is the last logged row.
      nodes[v]->clear_inbox();
      const auto& entries = snap.inbox[v].entries;
      if (start_round < entries.size())
        for (std::uint32_t p = 0; p < entries[start_round].size(); ++p)
          if (entries[start_round][p].has_value())
            nodes[v]->deliver(p, BitVec(*entries[start_round][p]));
      if (logging) inbox_log[v].entries = snap.inbox[v].entries;
    }
  }

  std::uint64_t round = start_round;
  std::uint64_t last_progress = start_round;
  for (; round < config_.max_rounds; ++round) {
    if (config_.stall_window != 0 &&
        round >= last_progress + config_.stall_window) {
      outcome.faults.watchdog_stalls = 1;
      if (telemetry != nullptr)
        telemetry->record(obs::EventKind::WatchdogStall, 0, round,
                          round - last_progress);
      break;
    }
    if (checkpoint_at != 0 && round == checkpoint_at &&
        outcome.checkpoint == nullptr) {
      auto snap = std::make_shared<Snapshot>();
      snap->kind = Snapshot::Kind::Sync;
      SyncSnapshot& s = snap->sync;
      s.identity = {topology_digest(topology_, ids_), config_digest(), seed};
      s.round = round;
      s.inbox.resize(n);
      for (Vertex v = 0; v < n; ++v) {
        log_row(v, round);  // pad every log to round+1 rows
        s.inbox[v].entries = inbox_log[v].entries;
      }
      s.crashed.resize(n);
      s.halted.resize(n);
      for (Vertex v = 0; v < n; ++v) {
        s.crashed[v] = crashed[v] ? 1 : 0;
        s.halted[v] = nodes[v]->halted() ? 1 : 0;
      }
      s.messages = outcome.metrics.messages;
      s.total_bits = outcome.metrics.total_bits;
      s.max_message_bits = outcome.metrics.max_message_bits;
      s.bits_sent_by_node = outcome.metrics.bits_sent_by_node;
      s.trace_bytes = outcome.trace.approx_bytes();
      s.faults = outcome.faults;
      if (faulty) s.fault_streams = injector->save_streams();
      outcome.checkpoint = std::move(snap);
      if (telemetry != nullptr)
        telemetry->record(obs::EventKind::CheckpointSave, 0, round);
    }
    bool all_stopped = true;
    bool progressed = false;
    const auto compute_start = timing ? Clock::now() : Clock::time_point{};
    for (Vertex v = 0; v < n; ++v) {
      if (nodes[v]->halted() || crashed[v]) continue;
      if (faulty) {
        if (const auto when = injector->crash_round(v);
            when.has_value() && round >= *when) {
          crash(v, round);
          progressed = true;
          continue;
        }
      }
      all_stopped = false;
      nodes[v]->begin_round(round);
      if (faulty) {
        // Graceful degradation: a program that throws (typically a wire
        // decode of a corrupted payload) becomes a crashed node, not a
        // crashed process. Without faults, programming errors still
        // propagate — fail fast.
        try {
          programs[v]->on_round(*nodes[v]);
        } catch (const CheckFailure& failure) {
          outcome.faults.violations.push_back(
              {ViolationKind::ProgramFault, v, round, failure.what()});
          if (telemetry != nullptr)
            telemetry->record(obs::EventKind::Violation, v, round);
          crash(v, round);
          progressed = true;
        }
      } else {
        programs[v]->on_round(*nodes[v]);
      }
      if (nodes[v]->halted()) progressed = true;
    }
    if (timing) outcome.metrics.timers.compute_ns += elapsed_ns(compute_start);
    if (all_stopped) break;

    // Deliver: outboxes of this round become inboxes of the next. A present
    // outbox slot's payload buffer is *swapped* into the reverse-edge inbox
    // slot — no copy; the receiver's retired buffer lands in the sender's
    // outbox slot and keeps circulating between the arenas.
    const auto delivery_start = timing ? Clock::now() : Clock::time_point{};
    const std::uint64_t messages_before = outcome.metrics.messages;
    const std::uint64_t bits_before = outcome.metrics.total_bits;
    std::uint64_t arena_frames = 0;
    inbox_arena.reset_presence();
    for (Vertex v = 0; v < n; ++v) {
      if (crashed[v]) continue;
      const auto nbrs = csr_->row(v);
      const std::uint64_t base = csr_->offsets[v];
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        std::uint8_t& out_present = outbox_arena.present(base + p);
        if (out_present == 0) continue;
        out_present = 0;
        BitVec& payload = outbox_arena.payload(base + p);
        ++outcome.metrics.messages;
        outcome.metrics.total_bits += payload.size();
        outcome.metrics.bits_sent_by_node[v] += payload.size();
        outcome.metrics.max_message_bits =
            std::max<std::uint64_t>(outcome.metrics.max_message_bits,
                                    payload.size());
        if (outcome.trace)
          outcome.trace.record(round, v, nbrs[p], payload.size());
        if (config_.record_transcript)
          outcome.transcript.push_back({round, v, nbrs[p], payload});
        if (config_.on_message)
          config_.on_message(round, v, nbrs[p], payload.size());
        if (faulty) {
          const auto fate = injector->next_fate(v, p, payload.size());
          if (fate.dropped) {
            ++outcome.faults.frames_dropped;
            if (telemetry != nullptr) {
              m_drops.add();
              telemetry->record(obs::EventKind::FrameDropped, v, round);
            }
            continue;
          }
          if (fate.corrupted) {
            ++outcome.faults.frames_corrupted;
            payload.flip(fate.corrupt_bit);
            if (telemetry != nullptr) {
              m_corrupts.add();
              telemetry->record(obs::EventKind::FrameCorrupted, v, round);
            }
          }
        }
        progressed = true;
        if (logging && outcome.checkpoint == nullptr &&
            round + 1 <= checkpoint_at)
          log_row(nbrs[p], round + 1)[rev_port_[base + p]] = payload;
        std::swap(inbox_arena.payload(rev_edge_[base + p]), payload);
        inbox_arena.present(rev_edge_[base + p]) = 1;
        ++arena_frames;
      }
    }
    if (timing)
      outcome.metrics.timers.delivery_ns += elapsed_ns(delivery_start);
    if (telemetry != nullptr) {
      const std::uint64_t round_bits = outcome.metrics.total_bits - bits_before;
      m_rounds.add();
      m_messages.add(outcome.metrics.messages - messages_before);
      m_bits.add(round_bits);
      m_arena.set(arena_frames);
      m_round_bits.observe(round_bits);
    }
    if (progressed) last_progress = round + 1;
  }

  outcome.metrics.rounds = round;
  outcome.completed =
      std::all_of(nodes.begin(), nodes.end(),
                  [](const auto& node) { return node->halted(); });
  outcome.verdicts.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    outcome.verdicts.push_back(nodes[v]->verdict());
    if (nodes[v]->verdict() == Verdict::Reject) outcome.detected = true;
    if (!crashed[v] && nodes[v]->verdict() == Verdict::Reject)
      outcome.faults.detected_by_survivors = true;
    if (!crashed[v] && !nodes[v]->halted())
      outcome.faults.stalled_nodes.push_back(v);
  }
  outcome.metrics.counters = fault_counters(outcome.faults);
  if (outcome.checkpoint != nullptr)
    outcome.metrics.counters.add("checkpoints_taken", 1);
  if (outcome.trace) {
    // Materialize quiet trailing rounds so trace rounds == metrics.rounds
    // (the exponent fit divides by segments to recover per-repetition
    // rounds), and surface the engine counters in the summary.
    outcome.trace.finish_run(round);
    outcome.trace.set_counters(outcome.metrics.counters);
  }
  outcome.metrics.trace_bytes = outcome.trace.approx_bytes();
  return outcome;
}

RunOutcome run_congest(const Graph& topology, const NetworkConfig& config,
                       const ProgramFactory& factory) {
  Network net(topology, config);
  return net.run(factory);
}

RunOutcome make_amplified_accumulator(Vertex n) {
  RunOutcome combined;
  combined.completed = true;
  combined.verdicts.assign(n, Verdict::Accept);
  combined.metrics.bits_sent_by_node.assign(n, 0);
  combined.metrics.repetitions_executed = 0;
  combined.metrics.repetitions_skipped = 0;
  return combined;
}

void merge_amplified(RunOutcome& combined, RunOutcome&& rep) {
  const Vertex n = static_cast<Vertex>(combined.verdicts.size());
  CSD_CHECK_MSG(rep.verdicts.size() == n,
                "merge_amplified: node count mismatch");
  combined.completed = combined.completed && rep.completed;
  combined.detected = combined.detected || rep.detected;
  for (Vertex v = 0; v < n; ++v)
    if (rep.verdicts[v] == Verdict::Reject)
      combined.verdicts[v] = Verdict::Reject;
  combined.metrics.rounds += rep.metrics.rounds;
  combined.metrics.messages += rep.metrics.messages;
  combined.metrics.total_bits += rep.metrics.total_bits;
  combined.metrics.max_message_bits = std::max(
      combined.metrics.max_message_bits, rep.metrics.max_message_bits);
  for (Vertex v = 0; v < n; ++v)
    combined.metrics.bits_sent_by_node[v] += rep.metrics.bits_sent_by_node[v];
  combined.metrics.repetitions_executed += rep.metrics.repetitions_executed;
  combined.metrics.repetitions_skipped += rep.metrics.repetitions_skipped;
  combined.transcript.insert(combined.transcript.end(),
                             std::make_move_iterator(rep.transcript.begin()),
                             std::make_move_iterator(rep.transcript.end()));
  // Traces merge in repetition order — the deterministic task order the
  // batch guarantees — so the combined trace is jobs-count independent.
  combined.trace.append(rep.trace);
  combined.metrics.trace_bytes += rep.metrics.trace_bytes;
  combined.metrics.counters.merge(rep.metrics.counters);
  combined.metrics.timers.merge(rep.metrics.timers);
  if (combined.checkpoint == nullptr) combined.checkpoint = rep.checkpoint;
  FaultReport& f = combined.faults;
  FaultReport& rf = rep.faults;
  f.frames_dropped += rf.frames_dropped;
  f.frames_corrupted += rf.frames_corrupted;
  f.retransmissions += rf.retransmissions;
  f.checksum_rejects += rf.checksum_rejects;
  f.duplicate_packets += rf.duplicate_packets;
  f.duplicate_acks += rf.duplicate_acks;
  f.transport_failures += rf.transport_failures;
  f.replayed_pulses += rf.replayed_pulses;
  f.watchdog_stalls += rf.watchdog_stalls;
  f.crashed_nodes.insert(f.crashed_nodes.end(), rf.crashed_nodes.begin(),
                         rf.crashed_nodes.end());
  f.recovered_nodes.insert(f.recovered_nodes.end(),
                           rf.recovered_nodes.begin(),
                           rf.recovered_nodes.end());
  f.stalled_nodes.insert(f.stalled_nodes.end(), rf.stalled_nodes.begin(),
                         rf.stalled_nodes.end());
  f.violations.insert(f.violations.end(),
                      std::make_move_iterator(rf.violations.begin()),
                      std::make_move_iterator(rf.violations.end()));
  f.detected_by_survivors =
      f.detected_by_survivors || rf.detected_by_survivors;
}

RunOutcome run_amplified(const Graph& topology, const NetworkConfig& config,
                         const ProgramFactory& factory,
                         std::uint32_t repetitions,
                         const AmplifyOptions& options) {
  CSD_CHECK(repetitions >= 1);
  const Network net(topology, config);

  std::vector<std::uint64_t> seeds(repetitions);
  for (std::uint32_t rep = 0; rep < repetitions; ++rep)
    seeds[rep] = derive_seed(config.seed, 0x5eedULL + rep);
  std::vector<RunBatch::Task> tasks(repetitions);
  for (std::uint32_t rep = 0; rep < repetitions; ++rep)
    tasks[rep] = {&net, &factory, seeds[rep]};

  const RunBatch batch(options.jobs);
  RunBatch::Result result = batch.execute(tasks, options.early_exit);

  RunOutcome combined = make_amplified_accumulator(topology.num_vertices());
  for (auto& slot : result.outcomes) {
    if (!slot.has_value()) continue;  // skipped by early exit
    merge_amplified(combined, std::move(*slot));
  }
  combined.metrics.repetitions_executed = result.executed;
  combined.metrics.repetitions_skipped = result.skipped;
  return combined;
}

}  // namespace csd::congest
