#include "congest/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "congest/run_batch.hpp"
#include "obs/metrics_v2.hpp"
#include "support/check.hpp"

namespace csd::congest {

namespace {

/// A repetition the faults killed: some node never halted (crashed out or
/// starved) or the engine watchdog cut it. Retry candidates.
bool fault_killed(const RunOutcome& outcome) {
  return !outcome.completed || outcome.faults.watchdog_stalls != 0;
}

Snapshot make_amplified_snapshot(const SnapshotIdentity& identity,
                                 const RunOutcome& combined,
                                 std::uint32_t next_repetition,
                                 std::uint32_t repetitions,
                                 std::uint32_t retries_used) {
  Snapshot snap;
  snap.kind = Snapshot::Kind::Amplified;
  AmplifiedSnapshot& amp = snap.amplified;
  amp.identity = identity;
  amp.next_repetition = next_repetition;
  amp.repetitions = repetitions;
  amp.completed = combined.completed ? 1 : 0;
  amp.detected = combined.detected ? 1 : 0;
  amp.verdict_reject.resize(combined.verdicts.size());
  for (std::size_t v = 0; v < combined.verdicts.size(); ++v)
    amp.verdict_reject[v] = combined.verdicts[v] == Verdict::Reject ? 1 : 0;
  amp.rounds = combined.metrics.rounds;
  amp.messages = combined.metrics.messages;
  amp.total_bits = combined.metrics.total_bits;
  amp.max_message_bits = combined.metrics.max_message_bits;
  amp.bits_sent_by_node = combined.metrics.bits_sent_by_node;
  amp.repetitions_executed = combined.metrics.repetitions_executed;
  amp.repetitions_skipped = combined.metrics.repetitions_skipped;
  amp.trace_bytes = combined.metrics.trace_bytes;
  amp.retries_used = retries_used;
  amp.faults = combined.faults;
  return snap;
}

NetworkConfig with_stall_window(NetworkConfig config,
                                const SupervisorConfig& sup) {
  if (sup.stall_window != 0) config.stall_window = sup.stall_window;
  return config;
}

}  // namespace

Supervisor::Supervisor(Graph topology, NetworkConfig config,
                       SupervisorConfig sup)
    : net_(std::move(topology), with_stall_window(config, sup)), sup_(sup) {}

SupervisedResult Supervisor::run(const ProgramFactory& factory,
                                 std::uint32_t repetitions) const {
  return drive(factory, repetitions, nullptr);
}

SupervisedResult Supervisor::resume(const ProgramFactory& factory,
                                    std::uint32_t repetitions,
                                    const Snapshot& snapshot) const {
  return drive(factory, repetitions, &snapshot);
}

SupervisedResult Supervisor::drive(const ProgramFactory& factory,
                                   std::uint32_t repetitions,
                                   const Snapshot* resume_from) const {
  CSD_CHECK(repetitions >= 1);
  const Vertex n = net_.topology().num_vertices();
  const SnapshotIdentity identity{topology_digest(net_.topology(), net_.ids()),
                                  net_.config_digest(), net_.config().seed};

  SupervisedResult result;
  result.planned = repetitions;
  RunOutcome combined = make_amplified_accumulator(n);
  std::uint32_t start_rep = 0;

  if (resume_from != nullptr) {
    CSD_CHECK_MSG(resume_from->kind == Snapshot::Kind::Amplified,
                  "Supervisor::resume needs an amplified snapshot, got "
                      << to_string(resume_from->kind));
    const AmplifiedSnapshot& amp = resume_from->amplified;
    CSD_CHECK_MSG(amp.identity == identity,
                  "snapshot belongs to a different topology/config/seed");
    CSD_CHECK_MSG(amp.repetitions == repetitions,
                  "snapshot planned " << amp.repetitions
                                      << " repetitions, caller asked for "
                                      << repetitions);
    CSD_CHECK_MSG(amp.verdict_reject.size() == n &&
                      amp.bits_sent_by_node.size() == n,
                  "snapshot node count mismatch");
    start_rep = amp.next_repetition;
    result.retries_used = amp.retries_used;
    combined.completed = amp.completed != 0;
    combined.detected = amp.detected != 0;
    for (Vertex v = 0; v < n; ++v)
      combined.verdicts[v] =
          amp.verdict_reject[v] != 0 ? Verdict::Reject : Verdict::Accept;
    combined.metrics.rounds = amp.rounds;
    combined.metrics.messages = amp.messages;
    combined.metrics.total_bits = amp.total_bits;
    combined.metrics.max_message_bits = amp.max_message_bits;
    combined.metrics.bits_sent_by_node = amp.bits_sent_by_node;
    combined.metrics.repetitions_executed = amp.repetitions_executed;
    combined.metrics.repetitions_skipped = amp.repetitions_skipped;
    combined.metrics.trace_bytes = amp.trace_bytes;
    combined.faults = amp.faults;
  }

  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();
  const auto deadline_expired = [&] {
    if (sup_.deadline_ms == 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - started);
    return static_cast<std::uint64_t>(elapsed.count()) >= sup_.deadline_ms;
  };

  const RunBatch batch(sup_.jobs);
  const std::uint32_t wave_size = std::max(1u, resolve_jobs(sup_.jobs));
  bool detected = combined.detected;
  std::uint32_t rep = start_rep;

  std::uint32_t merged_this_call = 0;
  while (rep < repetitions && !(sup_.early_exit && detected)) {
    if (deadline_expired()) {
      result.deadline_hit = true;
      break;
    }
    std::uint32_t wave = std::min<std::uint32_t>(wave_size, repetitions - rep);
    if (sup_.max_reps_per_call != 0) {
      if (merged_this_call >= sup_.max_reps_per_call) {
        result.paused = true;
        break;
      }
      wave = std::min(wave, sup_.max_reps_per_call - merged_this_call);
    }
    std::vector<std::uint64_t> seeds(wave);
    std::vector<RunBatch::Task> tasks(wave);
    for (std::uint32_t i = 0; i < wave; ++i) {
      seeds[i] = derive_seed(net_.config().seed, 0x5eedULL + (rep + i));
      tasks[i] = {&net_, &factory, seeds[i]};
    }
    RunBatch::Result wave_result = batch.execute(tasks, sup_.early_exit);

    std::uint32_t processed = 0;
    for (std::uint32_t i = 0; i < wave; ++i) {
      auto& slot = wave_result.outcomes[i];
      if (!slot.has_value()) break;  // beyond the wave's early-exit cut
      RunOutcome rep_outcome = std::move(*slot);
      std::uint64_t merged_seed = seeds[i];
      // Retry-with-reseed: deterministic seed chain off the repetition
      // seed, so a resumed supervisor re-derives the same decisions.
      std::uint32_t attempt = 0;
      while (fault_killed(rep_outcome) && attempt < sup_.max_retries) {
        merged_seed = derive_seed(seeds[i], 0x9e7ULL + attempt);
        rep_outcome = net_.run(factory, merged_seed);
        ++attempt;
        ++result.retries_used;
      }
      const bool over_budget = sup_.round_budget != 0 &&
                               rep_outcome.metrics.rounds >= sup_.round_budget;
      if (fault_killed(rep_outcome) || over_budget) {
        StallReport report;
        report.repetition = rep + i;
        report.seed = merged_seed;
        report.rounds = rep_outcome.metrics.rounds;
        report.stalled_nodes = static_cast<std::uint32_t>(
            rep_outcome.faults.stalled_nodes.size());
        report.watchdog = rep_outcome.faults.watchdog_stalls != 0;
        report.over_budget = over_budget;
        report.incomplete = !rep_outcome.completed;
        report.counters = rep_outcome.metrics.counters;
        if (obs::Telemetry* telemetry = net_.config().telemetry)
          telemetry->record(obs::EventKind::StallReport, report.repetition,
                            report.rounds, report.stalled_nodes);
        result.stalls.push_back(std::move(report));
      }
      merge_amplified(combined, std::move(rep_outcome));
      ++processed;
      detected = combined.detected;
      if (sup_.early_exit && detected) break;
    }
    rep += processed;
    merged_this_call += processed;
    result.checkpoint = std::make_shared<Snapshot>(make_amplified_snapshot(
        identity, combined, rep, repetitions, result.retries_used));
    if (processed < wave) break;  // early exit cut inside this wave
  }

  combined.metrics.repetitions_skipped =
      repetitions - combined.metrics.repetitions_executed;
  // Rebuild the counters from the merged report: the per-repetition
  // counter registries are not serialized, and every fault counter is a
  // linear function of the report, so run and resume stay identical.
  combined.metrics.counters = fault_counters(combined.faults);
  result.outcome = std::move(combined);
  return result;
}

}  // namespace csd::congest
