// Classic CONGEST building blocks: distributed BFS-tree construction,
// convergecast aggregation up the tree, and broadcast down it.
//
// These are the standard O(D)-round primitives every CONGEST library ships;
// here they power the leader-based collection variant of the universal
// detector and give the tests an independent cross-check of the simulator
// (tree distances must equal the centralized BFS oracle).
//
// All three phases run in one program:
//   1. BFS flood from the root (smallest identifier by default):
//      (root id, distance) waves; each node adopts the first wave,
//      breaking ties toward the smallest parent id. O(D) rounds.
//   2. Convergecast: once a node has heard from all children-candidates
//      (one "child"/"non-child" bit per neighbor), it folds its children's
//      aggregates into its own and reports to its parent. O(D) rounds.
//   3. Broadcast: the root floods the final aggregate down the tree.
//
// The aggregate is a user-supplied commutative fold over 64-bit values
// (sum/min/max/count), fixed-width encoded.
#pragma once

#include <cstdint>
#include <functional>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::congest {

enum class Aggregate : std::uint8_t { Sum, Min, Max };

struct BfsAggregateConfig {
  /// Value each node contributes (given its topology index).
  std::function<std::uint64_t(std::uint32_t)> contribution;
  Aggregate fold = Aggregate::Sum;
  /// Bits per value field on the wire.
  std::uint32_t value_bits = 32;
  /// Reject (for harness visibility) if the final aggregate satisfies this
  /// predicate; optional.
  std::function<bool(std::uint64_t)> reject_if;
};

/// Result sink, indexed by topology index; lifetime must cover the run.
struct BfsAggregateResult {
  std::vector<std::uint32_t> distance;  // hops from the root
  std::vector<std::uint32_t> parent;    // topology index; root points to self
  std::vector<std::uint64_t> aggregate; // final fold, broadcast to everyone
  std::vector<bool> reached;
};

/// Program factory: BFS + convergecast + broadcast rooted at the node with
/// the smallest identifier. Requires a connected topology (unreached nodes
/// are reported in the sink, not an error). Rounds: O(D); bandwidth:
/// id bits + value bits + O(1).
ProgramFactory bfs_aggregate_program(const BfsAggregateConfig& cfg,
                                     BfsAggregateResult* result);

/// Round budget for an n-node network (the program self-terminates earlier;
/// this is the max_rounds safety cap).
std::uint64_t bfs_aggregate_round_budget(std::uint64_t n);

std::uint64_t bfs_aggregate_min_bandwidth(std::uint64_t namespace_size,
                                          std::uint32_t value_bits);

/// Convenience: run over g and return the filled sink.
BfsAggregateResult run_bfs_aggregate(const Graph& g,
                                     const BfsAggregateConfig& cfg,
                                     std::uint64_t bandwidth,
                                     std::uint64_t seed);

}  // namespace csd::congest
