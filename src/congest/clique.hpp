// Congested Clique helpers.
//
// In the Congested Clique model the communication topology is the complete
// graph K_n while the *input* graph G lives on the same node set: node v
// knows its incident G-edges, and every ordered pair of nodes can exchange
// B = O(log n) bits per round. We reuse the CONGEST Network with a K_n
// topology; programs receive the input graph by capture at construction,
// which matches the model's input assumption exactly.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace csd::congest {

/// Port of node `v` leading to node `w` in the canonical K_n topology built
/// by build::complete (adjacency sorted ascending, self omitted).
constexpr std::uint32_t clique_port(Vertex v, Vertex w) noexcept {
  return w < v ? w : w - 1;
}

/// Inverse of clique_port: which node does port `p` of node `v` reach.
constexpr Vertex clique_peer(Vertex v, std::uint32_t p) noexcept {
  return p < v ? p : p + 1;
}

/// Run a congested-clique algorithm: `n` = number of nodes of the input
/// graph, topology K_n. The factory captures the input graph itself.
RunOutcome run_congested_clique(Vertex n, const NetworkConfig& config,
                                const ProgramFactory& factory);

}  // namespace csd::congest
