// Deterministic engine snapshots: the csd-ckpt-v1 format.
//
// A Snapshot freezes a run mid-flight so it can be discarded and resumed
// later — on another process, another day — with the contract that the
// resumed run is *bit-identical* to the uninterrupted one: same verdicts,
// same FaultReport, same trace suffix, at every --jobs count. Three
// granularities share the schema:
//   * SyncSnapshot      — the synchronous Network at a round boundary;
//   * AsyncSnapshot     — the async engine between two events (scheduler
//                         queue, synchronizer state, ARQ endpoints, RNG
//                         streams, fault-plan cursor — everything);
//   * AmplifiedSnapshot — an amplified/supervised batch at a repetition
//                         boundary (the aggregated prefix outcome).
//
// Program state is NOT serialized. NodeProgram objects are arbitrary user
// code, so the snapshot instead records every node's *delivered inbox log*
// (sender-based message logging): programs are pure functions of their
// inbox history and their seeded RNG draws, so replaying the logged inboxes
// through a freshly constructed program — sends discarded, violations
// routed to a scratch sink — reconstructs its internal state bit-exactly.
// The replay is fault-transparent: logged payloads are post-corruption, and
// the fault injector's stream positions are restored directly, so no fate
// is ever re-drawn.
//
// Zero-observer contract: capturing a checkpoint never perturbs the run it
// is captured from. Logging copies payloads, capture copies state, and no
// RNG is consumed — a run with checkpointing enabled reaches the very same
// outcome as one without (fuzzer-enforced, src/fuzz/differential.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "congest/faults.hpp"
#include "congest/program.hpp"
#include "congest/transport.hpp"
#include "graph/graph.hpp"
#include "obs/json.hpp"
#include "support/bitvec.hpp"

namespace csd::congest {

inline constexpr const char* kSnapshotSchema = "csd-ckpt-v1";

/// Raw xoshiro256** position (Rng::state / Rng::set_state).
using RngState = std::array<std::uint64_t, 4>;

/// Delivered-inbox history of one node. entries[r][p] holds the payload
/// that reached port p's inbox for consumption at round/pulse r (post-
/// corruption — exactly what the program saw), nullopt when the port was
/// silent. entries[0] is always all-nullopt: round 0 has an empty inbox by
/// construction. This is the raw material of program-state reconstruction.
struct InboxLog {
  std::vector<std::vector<std::optional<BitVec>>> entries;
};

/// Fingerprint of the run a snapshot belongs to. Resume CHECK-fails on a
/// mismatch instead of silently replaying a log against the wrong topology
/// or fault plan.
struct SnapshotIdentity {
  std::uint64_t topology = 0;  ///< digest over n, adjacency, identifiers
  std::uint64_t config = 0;    ///< digest over the engine knobs + fault plan
  std::uint64_t seed = 0;      ///< the run seed (per-repetition under batch)

  friend bool operator==(const SnapshotIdentity&,
                         const SnapshotIdentity&) = default;
};

/// FNV-1a step for the digests above.
constexpr std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 1099511628211ULL;
  return h;
}
inline constexpr std::uint64_t kDigestSeed = 1469598103934665603ULL;

/// Digest over vertex count, full adjacency, and identifier assignment.
std::uint64_t topology_digest(const Graph& topology,
                              const std::vector<NodeId>& ids);

/// Digest over a fault plan (drop/corrupt probabilities bit-exactly,
/// corrupt_headers, crash schedule). Folded into the config digests.
std::uint64_t fault_plan_digest(const FaultPlan& plan);

// ---------------------------------------------------------------- sync --

/// The synchronous Network frozen at the top of round `round`: delivery for
/// round-1 -> round has happened (the live inbox is entries[round] of each
/// log), no round-`round` program has run.
struct SyncSnapshot {
  SnapshotIdentity identity;
  std::uint64_t round = 0;
  std::vector<InboxLog> inbox;  // per node
  // Replay-derived state, stored for validation: resume CHECKs its replay
  // reproduces exactly these flags before trusting the reconstruction.
  std::vector<std::uint8_t> crashed;
  std::vector<std::uint8_t> halted;
  // Accounting accumulated over rounds < round.
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::vector<std::uint64_t> bits_sent_by_node;
  std::uint64_t trace_bytes = 0;
  FaultReport faults;
  /// Fault-injector stream positions, [src][port]; empty when fault-free.
  std::vector<std::vector<RngState>> fault_streams;
};

// --------------------------------------------------------------- async --

/// One scheduler event (mirror of the engine-internal Event struct).
struct EventRecord {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;
  std::uint8_t kind = 0;  // 0 Data, 1 Ack, 2 Timer, 3 Recover
  std::uint32_t src = 0;
  std::uint32_t src_port = 0;
  std::uint32_t dst = 0;
  std::uint32_t dst_port = 0;
  std::uint64_t link_seq = 0;
  std::uint64_t packet_seq = 0;  // Data only
  std::uint32_t packet_crc = 0;  // Data only
  Frame frame;                   // Data only
};

/// Per-node async state: synchronizer bookkeeping, buffered frames, ARQ
/// endpoints, recovery bookkeeping, and the inbox log for program replay.
struct AsyncNodeSnapshot {
  std::uint64_t pulse = 0;
  std::uint64_t local_time = 0;
  std::vector<std::vector<Frame>> arrived;  // per port, FIFO order
  std::vector<std::uint8_t> port_dead;
  std::uint8_t running = 1;
  std::uint8_t crashed = 0;
  std::uint8_t halted = 0;     // validation (replay-derived)
  std::uint8_t crash_done = 0; // scheduled crash already honored
  std::uint32_t recoveries_used = 0;
  InboxLog inbox;
  std::vector<LinkSenderState> senders;      // reliable mode only, per port
  std::vector<LinkReceiverState> receivers;  // reliable mode only, per port
  std::vector<std::uint64_t> link_watermark; // per src-port
};

/// The async engine frozen between two scheduler events.
struct AsyncSnapshot {
  SnapshotIdentity identity;
  std::vector<AsyncNodeSnapshot> nodes;
  std::vector<EventRecord> events;
  std::uint64_t next_event_seq = 0;
  RngState delay_rng{};
  std::vector<std::vector<RngState>> fault_streams;
  std::uint32_t halted_count = 0;
  std::uint32_t stopped_count = 0;
  std::uint32_t pending_recoveries = 0;
  // Accumulated outcome fields.
  std::uint64_t pulses = 0;
  std::uint64_t virtual_time = 0;
  std::uint64_t payload_bits = 0;
  std::uint64_t overhead_bits = 0;
  std::uint64_t frames = 0;
  std::uint64_t transport_bits = 0;
  std::uint64_t acks = 0;
  /// Captured after the event loop already ended (the requested pulse was
  /// crossed inside the final event's cascade). The frozen state IS the
  /// final state: resume skips the event loop — the leftover events were
  /// abandoned by the original run and must stay abandoned.
  std::uint8_t terminal = 0;
  FaultReport faults;
};

// ----------------------------------------------------------- amplified --

/// An amplified/supervised batch frozen at a repetition boundary: the
/// aggregate (run_amplified rules) over repetitions < next_repetition.
struct AmplifiedSnapshot {
  SnapshotIdentity identity;
  std::uint32_t next_repetition = 0;
  std::uint32_t repetitions = 0;  // total planned
  std::uint8_t completed = 1;
  std::uint8_t detected = 0;
  std::vector<std::uint8_t> verdict_reject;  // per node
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::vector<std::uint64_t> bits_sent_by_node;
  std::uint32_t repetitions_executed = 0;
  std::uint32_t repetitions_skipped = 0;
  std::uint64_t trace_bytes = 0;
  std::uint32_t retries_used = 0;
  FaultReport faults;
};

// ------------------------------------------------------------- wrapper --

struct Snapshot {
  enum class Kind : std::uint8_t { Sync, Async, Amplified };
  Kind kind = Kind::Sync;
  // Exactly one of these is meaningful, selected by `kind`.
  SyncSnapshot sync;
  AsyncSnapshot async_state;
  AmplifiedSnapshot amplified;
};

const char* to_string(Snapshot::Kind kind) noexcept;

/// Serialize to the csd-ckpt-v1 JSON document (deterministic: insertion-
/// ordered objects, integer-exact numbers).
obs::Json to_json(const Snapshot& snapshot);

/// Strict parse; CheckFailure on schema violations.
Snapshot snapshot_from_json(const obs::Json& doc);

/// File round-trip (pretty-printed JSON). CheckFailure on I/O errors.
void save_snapshot(const std::string& path, const Snapshot& snapshot);
Snapshot load_snapshot(const std::string& path);

}  // namespace csd::congest
