// Synchronous CONGEST network simulator.
//
// The Network owns the topology, the identifier assignment, and the round
// loop. It enforces the model's cost constraints exactly:
//   * at most one message per directed edge per round,
//   * at most B bits per message (config.bandwidth; 0 = LOCAL model),
// and it accounts every bit sent. Optionally it records a full transcript
// (round, src, dst, payload) — the raw material of the §4 fooling argument.
//
// Protocol violations degrade gracefully instead of aborting the run.
// Historically the engines threw CheckFailure on any model violation (and
// release builds were left with whatever verdict the partial run produced);
// both engines now share one structured path — the violation is *clamped*
// and recorded in RunOutcome::faults:
//   * bandwidth overrun      -> payload truncated to B bits, recorded;
//   * duplicate send on port -> second send ignored, recorded;
//   * broadcast-only mismatch-> send honored as-is, recorded.
// API misuse that cannot be clamped (port out of range, send after halt,
// identifiers outside the namespace) still throws CheckFailure.
//
// A NetworkConfig may also carry a FaultPlan (congest/faults.hpp): seeded
// per-link frame drops, payload bit-flips, and node crash-at-round events.
// Under faults the run still terminates (round cap at worst) and the
// outcome's FaultReport describes exactly what happened; a node program
// that throws while decoding a corrupted payload is marked crashed rather
// than taking the process down.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "congest/faults.hpp"
#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "support/bitvec.hpp"

namespace csd::congest {

struct NetworkConfig {
  /// Per-edge bandwidth in bits per round. 0 = unbounded (LOCAL model).
  std::uint64_t bandwidth = 32;
  /// Hard cap on rounds; a run that does not halt by then is flagged.
  std::uint64_t max_rounds = 1'000'000;
  /// Seed for all node-local randomness.
  std::uint64_t seed = 1;
  /// Identifier namespace size N: all ids lie in [0, N). 0 = derive as the
  /// number of nodes (the dense default namespace). Algorithms size their
  /// id fields as ⌈log2 N⌉ bits, so the namespace is part of the cost model
  /// (§4 quantifies lower bounds in N explicitly).
  std::uint64_t namespace_size = 0;
  /// Broadcast CONGEST ([DKO14], [KR17]): a node must send the *same*
  /// message on every edge it uses in a round (enforced per send).
  bool broadcast_only = false;
  /// Record every message (memory-heavy; used by the fooling machinery).
  bool record_transcript = false;
  /// Optional observer invoked for every delivered message; used by the
  /// two-party cut simulator to account bits without storing transcripts.
  std::function<void(std::uint64_t round, std::uint32_t src, std::uint32_t dst,
                     std::uint64_t bits)>
      on_message;
  /// Fault environment (drops, corruption, crashes). Empty = fault-free.
  /// Metrics and transcripts account what the sender put on the wire;
  /// corruption is applied after accounting, before delivery.
  FaultPlan faults;
};

/// One recorded message (only populated when record_transcript is set).
struct TranscriptEntry {
  std::uint64_t round;
  std::uint32_t src;  // topology index
  std::uint32_t dst;  // topology index
  BitVec payload;
};

/// Aggregate cost metrics of a run.
struct RunMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  /// Largest single-message size observed (must be <= bandwidth unless 0).
  std::uint64_t max_message_bits = 0;
  /// Per-node total bits sent (indexed by topology index).
  std::vector<std::uint64_t> bits_sent_by_node;
};

struct RunOutcome {
  /// True iff every node halted gracefully before max_rounds (a crashed
  /// node never counts as halted).
  bool completed = false;
  /// Verdict per node (topology index). Global answer below.
  std::vector<Verdict> verdicts;
  /// True iff some node rejected — i.e. the algorithm claims "H present".
  bool detected = false;
  RunMetrics metrics;
  std::vector<TranscriptEntry> transcript;
  /// Structured fault/violation account; FaultReport::clean() on a healthy
  /// run. See congest/faults.hpp.
  FaultReport faults;
};

/// Synchronous simulator over a fixed topology and identifier assignment.
/// The topology is copied: a Network never dangles on a temporary graph.
class Network {
 public:
  /// Identifiers default to the topology index (ids[v] = v).
  Network(Graph topology, NetworkConfig config);
  Network(Graph topology, NetworkConfig config, std::vector<NodeId> ids);

  /// Run `factory`-created programs to completion (or the round cap).
  RunOutcome run(const ProgramFactory& factory);

  const Graph& topology() const noexcept { return topology_; }
  const std::vector<NodeId>& ids() const noexcept { return ids_; }
  const NetworkConfig& config() const noexcept { return config_; }

 private:
  Graph topology_;
  NetworkConfig config_;
  std::vector<NodeId> ids_;
};

/// Convenience: run `factory` over `topology` and return the outcome.
RunOutcome run_congest(const Graph& topology, const NetworkConfig& config,
                       const ProgramFactory& factory);

/// Run a randomized detection algorithm `repetitions` times with derived
/// seeds and report "detected" if any repetition rejects (one-sided
/// amplification, as in §6 "putting everything together"). Returns the
/// outcome of the final repetition with `detected` OR-ed across repetitions
/// and `metrics.rounds` summed.
RunOutcome run_amplified(const Graph& topology, const NetworkConfig& config,
                         const ProgramFactory& factory,
                         std::uint32_t repetitions);

}  // namespace csd::congest
