// Synchronous CONGEST network simulator.
//
// The Network owns the topology, the identifier assignment, and the round
// loop. It enforces the model's cost constraints exactly:
//   * at most one message per directed edge per round,
//   * at most B bits per message (config.bandwidth; 0 = LOCAL model),
// and it accounts every bit sent. Optionally it records a full transcript
// (round, src, dst, payload) — the raw material of the §4 fooling argument.
//
// Protocol violations degrade gracefully instead of aborting the run.
// Historically the engines threw CheckFailure on any model violation (and
// release builds were left with whatever verdict the partial run produced);
// both engines now share one structured path — the violation is *clamped*
// and recorded in RunOutcome::faults:
//   * bandwidth overrun      -> payload truncated to B bits, recorded;
//   * duplicate send on port -> second send ignored, recorded;
//   * broadcast-only mismatch-> send honored as-is, recorded.
// API misuse that cannot be clamped (port out of range, send after halt,
// identifiers outside the namespace) still throws CheckFailure.
//
// A NetworkConfig may also carry a FaultPlan (congest/faults.hpp): seeded
// per-link frame drops, payload bit-flips, and node crash-at-round events.
// Under faults the run still terminates (round cap at worst) and the
// outcome's FaultReport describes exactly what happened; a node program
// that throws while decoding a corrupted payload is marked crashed rather
// than taking the process down.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "congest/faults.hpp"
#include "congest/partition.hpp"
#include "congest/program.hpp"
#include "congest/snapshot.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/round_trace.hpp"
#include "support/bitvec.hpp"

namespace csd::obs {
class Telemetry;  // obs/metrics_v2.hpp; config holds a non-owning pointer
}

namespace csd::congest {

struct NetworkConfig {
  /// Per-edge bandwidth in bits per round. 0 = unbounded (LOCAL model).
  std::uint64_t bandwidth = 32;
  /// Hard cap on rounds; a run that does not halt by then is flagged.
  std::uint64_t max_rounds = 1'000'000;
  /// Seed for all node-local randomness.
  std::uint64_t seed = 1;
  /// Identifier namespace size N: all ids lie in [0, N). 0 = derive as the
  /// number of nodes (the dense default namespace). Algorithms size their
  /// id fields as ⌈log2 N⌉ bits, so the namespace is part of the cost model
  /// (§4 quantifies lower bounds in N explicitly).
  std::uint64_t namespace_size = 0;
  /// Broadcast CONGEST ([DKO14], [KR17]): a node must send the *same*
  /// message on every edge it uses in a round (enforced per send).
  bool broadcast_only = false;
  /// Record every message (memory-heavy; used by the fooling machinery).
  bool record_transcript = false;
  /// Optional observer invoked for every delivered message; used by the
  /// two-party cut simulator to account bits without storing transcripts.
  std::function<void(std::uint64_t round, std::uint32_t src, std::uint32_t dst,
                     std::uint64_t bits)>
      on_message;
  /// Fault environment (drops, corruption, crashes). Empty = fault-free.
  /// Metrics and transcripts account what the sender put on the wire;
  /// corruption is applied after accounting, before delivery.
  FaultPlan faults;
  /// Per-round observability (obs/round_trace.hpp). Disabled by default:
  /// the run loop then pays a single predicted branch per message and the
  /// outcome's trace stays empty (RunMetrics::trace_bytes == 0).
  obs::TraceOptions trace;
  /// Capture a csd-ckpt-v1 snapshot at the top of this round (0 = off).
  /// The run continues unperturbed — capture consumes no randomness and
  /// changes no state — and RunOutcome::checkpoint carries the snapshot
  /// (null if the run ended before the round was reached). Incompatible
  /// with record_transcript and on_message (neither can be serialized).
  std::uint64_t checkpoint_at_round = 0;
  /// Stall watchdog: if a window of this many consecutive rounds delivers
  /// no message and sees no halt or crash while unhalted nodes remain, cut
  /// the run (FaultReport::watchdog_stalls = 1, stragglers recorded as
  /// stalled) instead of spinning to max_rounds. 0 = disabled.
  std::uint64_t stall_window = 0;
  /// Sharded superstep execution (congest/shard.hpp): workers == 0 keeps
  /// the classic single-loop engine, workers >= 1 partitions the nodes
  /// across that many worker threads. Every outcome field is bit-identical
  /// at every worker count; sharding is an execution strategy, not part of
  /// the model, and is therefore excluded from config_digest() (snapshots
  /// resume across worker counts).
  ShardSpec shard;
  /// Optional csd-metrics-v2 telemetry plane (obs/metrics_v2.hpp). Non-
  /// owning; must outlive the run. The engine only ever writes to it
  /// (counters, gauges, flight-recorder events), never reads it back, so
  /// attaching telemetry cannot change any deterministic output. Like
  /// trace/shard/on_message it is excluded from config_digest(): snapshots
  /// resume with or without telemetry attached. nullptr = zero cost (one
  /// predicted branch per instrumented site).
  obs::Telemetry* telemetry = nullptr;
};

/// One recorded message (only populated when record_transcript is set).
struct TranscriptEntry {
  std::uint64_t round;
  std::uint32_t src;  // topology index
  std::uint32_t dst;  // topology index
  BitVec payload;
};

/// Aggregate cost metrics of a run (or of an amplified batch of runs: see
/// run_amplified for the per-field aggregation rule).
struct RunMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  /// Largest single-message size observed (must be <= bandwidth unless 0).
  std::uint64_t max_message_bits = 0;
  /// Per-node total bits sent (indexed by topology index).
  std::vector<std::uint64_t> bits_sent_by_node;
  /// Repetitions whose costs are included in this struct. 1 for a plain
  /// Network::run; run_amplified sums costs over exactly this many.
  std::uint32_t repetitions_executed = 1;
  /// Repetitions skipped by run_amplified's early exit (one-sided detection:
  /// once a repetition rejects, later ones cannot change the answer). Their
  /// costs are NOT included above — accounting stays honest.
  std::uint32_t repetitions_skipped = 0;
  /// Storage the per-round trace observer allocated for this run; exactly 0
  /// when NetworkConfig::trace is disabled (the observer's overhead is then
  /// one branch per message and no memory — tested by test_obs).
  std::uint64_t trace_bytes = 0;
  /// Engine counters by name (the FaultReport counters, surfaced uniformly
  /// — see fault_counters). Amplified: merged by name in repetition order.
  obs::MetricsRegistry counters;
  /// Wall-clock split of the run (compute vs. delivery), filled only when
  /// NetworkConfig::trace.timers is set. Deliberately NOT part of the trace:
  /// timings are not deterministic, traces are. Amplified: summed.
  obs::EngineTimers timers;
};

struct RunOutcome {
  /// True iff every node halted gracefully before max_rounds (a crashed
  /// node never counts as halted). Amplified: AND across repetitions.
  bool completed = false;
  /// Verdict per node (topology index). Global answer below. Amplified:
  /// elementwise — Reject if the node rejected in any repetition.
  std::vector<Verdict> verdicts;
  /// True iff some node *ever* issued Reject — i.e. the algorithm claims
  /// "H present". Intended semantics (do not conflate the two flags):
  ///   * `detected` counts every Reject, including one issued by a node
  ///     that later crashed — it is the fault-free-model answer, the one
  ///     the paper's one-sided-error analysis speaks about;
  ///   * `faults.detected_by_survivors` counts Rejects only among nodes
  ///     alive at the end of the run — the answer an operator could
  ///     actually collect from the surviving network.
  /// On a fault-free run the two coincide. Amplified: OR, each over its own
  /// repetition's crash set.
  bool detected = false;
  RunMetrics metrics;
  std::vector<TranscriptEntry> transcript;
  /// Per-round message/bit trajectory (empty unless config.trace.enabled).
  /// Each run fills its own instance — no shared state — so RunBatch tasks
  /// trace concurrently without locks; run_amplified appends the per-task
  /// traces in repetition order (deterministic at every jobs count).
  obs::RunTrace trace;
  /// Structured fault/violation account; FaultReport::clean() on a healthy
  /// run. See congest/faults.hpp. Amplified: counters summed, node/violation
  /// lists concatenated in repetition order.
  FaultReport faults;
  /// The csd-ckpt-v1 snapshot requested via NetworkConfig::checkpoint_at_round
  /// (null when disabled or when the run ended before that round). Shared,
  /// not copied, through batch aggregation; run_amplified keeps the first
  /// repetition's snapshot only (repetition-granular checkpointing of
  /// batches is the Supervisor's job).
  std::shared_ptr<const Snapshot> checkpoint;
};

/// Synchronous simulator over a fixed topology and identifier assignment.
/// The topology is copied: a Network never dangles on a temporary graph.
///
/// Construction precomputes the topology-derived tables that every run
/// needs — the reverse-port map and the per-node neighbor-identifier
/// vectors — so repeated runs (amplification, sweeps) pay for them once
/// instead of once per repetition.
///
/// `run` is const and touches no mutable Network state: concurrent runs of
/// the SAME Network from multiple threads are safe provided `factory` and
/// `config().on_message` are themselves safe to invoke concurrently (the
/// library's program factories are: they capture configs by value and
/// allocate fresh programs). This is what RunBatch builds on.
class Network {
 public:
  /// Identifiers default to the topology index (ids[v] = v).
  Network(Graph topology, NetworkConfig config);
  Network(Graph topology, NetworkConfig config, std::vector<NodeId> ids);

  /// Run `factory`-created programs to completion (or the round cap).
  RunOutcome run(const ProgramFactory& factory) const;

  /// Same, but with the run seed overridden (node RNGs and the fault
  /// injector derive from `seed` instead of config().seed). This is how one
  /// Network serves every repetition of an amplified run.
  RunOutcome run(const ProgramFactory& factory, std::uint64_t seed) const;

  /// Continue a run frozen by checkpoint_at_round. The snapshot must be of
  /// kind Sync and belong to this topology/config (identity digests are
  /// CHECKed); the run seed comes from the snapshot, not the config. The
  /// resumed outcome is bit-identical to the uninterrupted run except that
  /// its trace covers only rounds >= the checkpoint round (earlier rounds
  /// appear as quiet) and timers restart at zero.
  RunOutcome resume(const ProgramFactory& factory,
                    const Snapshot& snapshot) const;

  /// Digest of the engine-relevant config knobs (bandwidth, max_rounds,
  /// namespace, broadcast mode, fault plan); part of SnapshotIdentity.
  std::uint64_t config_digest() const;

  const Graph& topology() const noexcept { return topology_; }
  const std::vector<NodeId>& ids() const noexcept { return ids_; }
  const NetworkConfig& config() const noexcept { return config_; }

  // Engine plumbing shared with the sharded superstep engine
  // (congest/shard.cpp): the materialized CSR view and the flat tables
  // over its dense directed-edge index e = csr().offsets[v] + port.
  const GraphCsr& csr() const noexcept { return *csr_; }
  const std::vector<std::uint32_t>& rev_port() const noexcept {
    return rev_port_;
  }
  const std::vector<std::uint64_t>& rev_edge() const noexcept {
    return rev_edge_;
  }
  const std::vector<NodeId>& neighbor_ids_flat() const noexcept {
    return neighbor_ids_flat_;
  }

 private:
  void build_topology_tables();
  RunOutcome run_impl(const ProgramFactory& factory, std::uint64_t seed,
                      const SyncSnapshot* resume_from) const;

  Graph topology_;
  NetworkConfig config_;
  std::vector<NodeId> ids_;
  /// Materialized CSR view of topology_ (owned by it); flat tables below
  /// are indexed by the dense directed-edge index e = csr_->offsets[v] + p.
  const GraphCsr* csr_ = nullptr;
  /// rev_port_[e] = the port of neighbors(v)[p] that leads back to v.
  std::vector<std::uint32_t> rev_port_;
  /// rev_edge_[e] = the dense index of the reverse directed edge.
  std::vector<std::uint64_t> rev_edge_;
  /// neighbor_ids_flat_[e] = ids_[neighbors(v)[p]]; rows shared with
  /// NodeStates.
  std::vector<NodeId> neighbor_ids_flat_;
};

/// Convenience: run `factory` over `topology` and return the outcome.
RunOutcome run_congest(const Graph& topology, const NetworkConfig& config,
                       const ProgramFactory& factory);

/// How run_amplified schedules its repetitions.
struct AmplifyOptions {
  /// Worker threads fanning repetitions across a RunBatch; 1 = run inline
  /// on the calling thread, 0 = one per hardware thread. Outcomes are
  /// bit-identical for every value (see RunBatch's determinism contract).
  unsigned jobs = 1;
  /// Detection is one-sided (a Reject certifies a real copy of H), so once
  /// a repetition rejects, later repetitions cannot change the answer:
  /// stop after the first detecting repetition and record the rest in
  /// metrics.repetitions_skipped. Costs of skipped repetitions are not
  /// accounted. Disable to force the full cost of all repetitions (e.g.
  /// when measuring per-repetition round budgets).
  bool early_exit = true;
};

/// A fresh all-Accept aggregate for `n` nodes, ready for merge_amplified.
RunOutcome make_amplified_accumulator(Vertex n);

/// Fold one repetition's outcome into `combined` under run_amplified's
/// aggregation rules (documented on run_amplified below). Exposed so the
/// Supervisor — which owns its own repetition loop with retries, deadlines,
/// and repetition-granular checkpoints — aggregates identically.
void merge_amplified(RunOutcome& combined, RunOutcome&& rep);

/// Run a randomized detection algorithm `repetitions` times with derived
/// seeds (derive_seed(config.seed, 0x5eed + rep), the schedule the async
/// CLI path mirrors) and aggregate ACROSS repetitions (one-sided
/// amplification, as in §6 "putting everything together"):
///   * detected / faults.detected_by_survivors : OR,
///   * completed                               : AND,
///   * verdicts                                : elementwise (Reject wins),
///   * rounds / messages / total_bits          : summed,
///   * bits_sent_by_node                       : elementwise sum,
///   * max_message_bits                        : max,
///   * fault counters summed; crash/stall/violation lists and transcripts
///     concatenated in repetition order.
/// The aggregate covers repetitions 0..r* where r* is the first detecting
/// repetition (all of them when none detects or options.early_exit is off);
/// metrics.repetitions_executed / repetitions_skipped record the split. The
/// result is a pure function of (topology, config, factory, repetitions,
/// options.early_exit) — options.jobs never changes a single bit.
RunOutcome run_amplified(const Graph& topology, const NetworkConfig& config,
                         const ProgramFactory& factory,
                         std::uint32_t repetitions,
                         const AmplifyOptions& options = {});

}  // namespace csd::congest
