// Reliable ARQ transport for the asynchronous engine.
//
// Sits *under* the frame synchronizer (async.*): each directed link gets a
// sender and a receiver endpoint. The sender assigns consecutive sequence
// numbers to outgoing synchronizer frames, appends a bit-level CRC-32 over
// the packet contents, and retransmits with exponential backoff until the
// packet is acknowledged or a bounded retry budget is exhausted. The
// receiver discards packets whose CRC does not verify (a corrupted packet
// is indistinguishable from a lost one), acknowledges every intact packet
// (including duplicates, so lost acks heal), and releases frames to the
// synchronizer strictly in sequence order through a reorder buffer.
//
// On a link with drop probability p < 1 this restores exact FIFO semantics
// with probability 1 - p^retries per packet, which is why the paper's
// algorithms run bit-identically to the synchronous engine under heavy
// loss (see test_async.cpp) — the cost moves into separately accounted
// transport overhead bits, never into the CONGEST payload accounting.
//
// The classes here are pure protocol state machines: the engine owns all
// scheduling (delays, timers) and all fault injection, which keeps the
// protocol unit-testable without an event loop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "support/bitvec.hpp"

namespace csd::congest {

/// Wire discipline of the async engine's links.
enum class TransportMode : std::uint8_t {
  /// Frames go on the wire as-is. Faults hit the algorithm directly: a
  /// dropped frame stalls the destination port forever, a corrupted
  /// payload reaches the program.
  Raw,
  /// ARQ + CRC under the synchronizer: exact semantics restored on faulty
  /// links, overhead accounted in AsyncRunOutcome::transport_bits.
  Reliable,
};

struct TransportConfig {
  /// Initial retransmission timeout in virtual time units. 0 = derive from
  /// the engine's max_delay (one full round trip plus slack).
  std::uint64_t rto = 0;
  /// Give up on a packet after this many retransmissions. With per-attempt
  /// loss q the residual failure probability is q^(max_retries+1); the
  /// default keeps it negligible even at 30% drop + lost acks.
  std::uint32_t max_retries = 32;
  /// On-wire width of the sequence-number field. This is the width the CRC
  /// hashes and the accounting charges; LinkSender CHECKs that its 64-bit
  /// counter never outgrows it (2^32 packets per directed link is far above
  /// any pulse budget this repo runs).
  unsigned seq_bits = 32;
  /// On-wire width of the checksum field (accounting).
  unsigned crc_bits = 32;
};

/// One synchronizer frame on a directed link (also the raw-mode wire unit).
/// Wire layout: [pulse][halted][has_payload][payload].
struct Frame {
  /// On-wire width of the pulse field. Every frame carries its pulse — the
  /// synchronizer cannot order frames without it — so every frame is charged
  /// for it in overhead_bits().
  static constexpr unsigned kPulseWireBits = 64;
  /// Per-frame framing overhead: pulse + halted + has_payload.
  static constexpr std::uint64_t kOverheadBits = kPulseWireBits + 2;

  std::uint64_t pulse = 0;
  bool sender_halted = false;
  std::optional<BitVec> payload;

  std::uint64_t overhead_bits() const { return kOverheadBits; }
  std::uint64_t payload_bits() const {
    return payload.has_value() ? payload->size() : 0;
  }
};

/// A data packet as the reliable transport puts it on the wire:
/// [pulse][halted][has_payload][seq][payload][crc].
struct DataPacket {
  std::uint64_t seq = 0;
  Frame frame;
  std::uint32_t crc = 0;
};

/// CRC-32 over everything the packet puts on the wire: the sequence number
/// (config.seq_bits wide — exactly the on-wire field), the full frame header
/// (pulse + flags), and the payload bits. Covering the header means a header
/// bit-flip (FaultPlan::corrupt_headers) is caught and the packet discarded,
/// instead of a corrupted pulse reaching the synchronizer and desyncing it.
std::uint32_t packet_checksum(std::uint64_t seq, const Frame& frame,
                              const TransportConfig& config);

/// Serialized state of a LinkSender (snapshot/resume support). Plain data:
/// the next sequence number plus every unacknowledged packet with its retry
/// count, enough to rebuild the endpoint mid-conversation.
struct LinkSenderState {
  struct PendingEntry {
    std::uint64_t seq = 0;
    Frame frame;
    std::uint32_t crc = 0;
    std::uint32_t attempts = 1;
  };
  std::uint64_t next_seq = 0;
  std::vector<PendingEntry> pending;  // ascending seq
};

/// Serialized state of a LinkReceiver: the in-order cursor plus the reorder
/// buffer of frames received ahead of it.
struct LinkReceiverState {
  struct ReorderEntry {
    std::uint64_t seq = 0;
    Frame frame;
  };
  std::uint64_t next_expected = 0;
  std::vector<ReorderEntry> reorder;  // ascending seq
};

/// Sender endpoint of one directed link.
class LinkSender {
 public:
  explicit LinkSender(const TransportConfig& config) : config_(config) {}

  /// Wrap `frame` into the next-in-sequence packet; a copy is retained for
  /// retransmission until acknowledged.
  DataPacket packet(Frame frame);

  /// Ack received. True iff it acknowledged an outstanding packet (false =
  /// duplicate ack for an already-settled one).
  bool on_ack(std::uint64_t seq);

  /// Retransmission timer fired for `seq`.
  enum class TimeoutAction {
    Settled,     ///< already acked (or given up); ignore
    Retransmit,  ///< resend retransmit_packet(seq), rearm timer
    GiveUp,      ///< retry budget exhausted; packet abandoned
  };
  TimeoutAction on_timeout(std::uint64_t seq);

  /// The packet to put on the wire for a retransmission of `seq`.
  DataPacket retransmit_packet(std::uint64_t seq) const;

  /// Timeout to arm for the transmission of `seq` that was just sent
  /// (exponential backoff over the attempts made so far).
  std::uint64_t timeout_for(std::uint64_t seq, std::uint64_t base_rto) const;

  /// Packets not yet acknowledged or abandoned.
  std::size_t in_flight() const noexcept { return pending_.size(); }

  /// Sequence numbers of all in-flight packets, ascending. Used by node
  /// recovery to re-arm retransmission timers after a rejoin (the timers a
  /// crashed host would have serviced fired into the void).
  std::vector<std::uint64_t> pending_seqs() const;

  LinkSenderState save_state() const;
  void restore_state(const LinkSenderState& state);

 private:
  struct Pending {
    Frame frame;
    std::uint32_t crc = 0;
    std::uint32_t attempts = 1;  // transmissions so far
  };
  TransportConfig config_;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Pending> pending_;
};

/// Receiver endpoint of one directed link.
class LinkReceiver {
 public:
  LinkReceiver() = default;
  /// The receiver must share the sender's TransportConfig: the CRC hashes
  /// the config's on-wire seq width, so mismatched configs reject every
  /// packet.
  explicit LinkReceiver(const TransportConfig& config) : config_(config) {}

  /// Outcome of a data packet arriving on the wire.
  struct Accept {
    /// CRC verified — acknowledge `ack_seq` (set for duplicates too: the
    /// original ack may have been lost).
    bool send_ack = false;
    std::uint64_t ack_seq = 0;
    /// Packet already delivered once (retransmit raced the ack).
    bool duplicate = false;
    /// CRC mismatch — packet discarded, no ack.
    bool checksum_reject = false;
    /// Frames released to the synchronizer, in sequence order.
    std::vector<Frame> deliver;
  };
  Accept on_data(const DataPacket& packet);

  std::uint64_t next_expected() const noexcept { return next_expected_; }

  LinkReceiverState save_state() const;
  void restore_state(const LinkReceiverState& state);

 private:
  TransportConfig config_;
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Frame> reorder_;
};

}  // namespace csd::congest
