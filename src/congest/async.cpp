#include "congest/async.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <queue>
#include <unordered_map>

#include "congest/node_state.hpp"
#include "support/check.hpp"

namespace csd::congest {

namespace {

/// One wire-level occurrence: a data packet or ack arriving, or a
/// retransmission timer firing at the sender.
struct Event {
  enum class Kind : std::uint8_t { Data, Ack, Timer };

  std::uint64_t time = 0;
  std::uint64_t seq = 0;  // FIFO/determinism tiebreak
  Kind kind = Kind::Data;
  // Directed link the event belongs to, sender side: (src, src_port).
  std::uint32_t src = 0;
  std::uint32_t src_port = 0;
  // Receiver side (valid for Data; for Ack it is the original data sender).
  std::uint32_t dst = 0;
  std::uint32_t dst_port = 0;
  std::uint64_t link_seq = 0;  // transport sequence number (Ack/Timer/Data)
  DataPacket packet;           // Data only (raw mode leaves seq/crc zero)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

/// Synchronizer bookkeeping per node.
struct SyncState {
  std::uint64_t pulse = 0;          // next pulse to execute
  std::uint64_t local_time = 0;     // virtual time the node last acted
  std::vector<std::deque<Frame>> arrived;  // per port
  std::vector<bool> port_dead;             // sender halted, nothing more
  bool running = true;   // false once halted, crashed, or cap-stopped
  bool crashed = false;  // fault-injected or program fault
};

class AsyncEngine {
 public:
  AsyncEngine(const Graph& topology, const AsyncConfig& config,
              std::vector<NodeId> ids, const ProgramFactory& factory)
      : topology_(topology),
        config_(config),
        reliable_(config.transport == TransportMode::Reliable),
        ids_(std::move(ids)),
        delay_rng_(derive_seed(config.seed, 0xde1a)) {
    const Vertex n = topology_.num_vertices();
    CSD_CHECK_MSG(ids_.size() == n, "identifier assignment size mismatch");
    CSD_CHECK(config_.max_delay >= 1);
    std::uint64_t namespace_size = config_.namespace_size;
    if (namespace_size == 0) namespace_size = n;
    for (const NodeId id : ids_)
      CSD_CHECK_MSG(id < namespace_size, "identifier outside namespace");

    if (!config_.faults.empty())
      injector_.emplace(config_.faults, config_.seed, topology_);
    base_rto_ = config_.transport_cfg.rto != 0
                    ? config_.transport_cfg.rto
                    : 2ULL * config_.max_delay + 4;

    // Reverse-port table in O(sum deg) expected time via per-vertex port
    // maps (mirrors Network::build_topology_tables; the old per-neighbor
    // std::find scan was O(sum deg^2)).
    std::vector<std::unordered_map<Vertex, std::uint32_t>> port_of(n);
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = topology_.neighbors(v);
      port_of[v].reserve(nbrs.size());
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) port_of[v][nbrs[p]] = p;
    }
    reverse_port_.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = topology_.neighbors(v);
      reverse_port_[v].resize(nbrs.size());
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        const auto it = port_of[nbrs[p]].find(v);
        CSD_CHECK(it != port_of[nbrs[p]].end());
        reverse_port_[v][p] = it->second;
      }
    }

    nodes_.reserve(n);
    programs_.reserve(n);
    sync_.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      nodes_.push_back(std::make_unique<detail::NodeState>(
          topology_, v, ids_[v], config_.seed, n, namespace_size,
          config_.bandwidth, config_.broadcast_only,
          &outcome_.faults.violations));
      std::vector<NodeId> neighbor_ids;
      for (const Vertex w : topology_.neighbors(v))
        neighbor_ids.push_back(ids_[w]);
      nodes_.back()->set_neighbor_ids(std::move(neighbor_ids));
      programs_.push_back(factory(v));
      CSD_CHECK(programs_.back() != nullptr);
      sync_[v].arrived.resize(topology_.degree(v));
      sync_[v].port_dead.assign(topology_.degree(v), false);
    }
    outcome_.trace = obs::RunTrace(n, config_.trace);
    if (outcome_.trace)
      for (Vertex v = 0; v < n; ++v) nodes_[v]->set_trace(&outcome_.trace);
    timing_ = config_.trace.timers;
    outcome_.timers.enabled = timing_;
    // FIFO watermark per directed link (indexed by src, src-port); acks on
    // the reverse link share its watermark with that link's data frames.
    link_watermark_.resize(n);
    for (Vertex v = 0; v < n; ++v)
      link_watermark_[v].assign(topology_.degree(v), 0);
    if (reliable_) {
      senders_.reserve(n);
      receivers_.reserve(n);
      for (Vertex v = 0; v < n; ++v) {
        senders_.emplace_back(topology_.degree(v),
                              LinkSender(config_.transport_cfg));
        receivers_.emplace_back(topology_.degree(v),
                                LinkReceiver(config.transport_cfg));
      }
    }
  }

  AsyncRunOutcome run() {
    // Pulse 0 runs immediately everywhere (empty inbox); degree-0 nodes
    // are always ready, so drive them to completion here — no event will
    // ever re-trigger them. Timing: program execution is measured inside
    // execute_pulse (compute_ns); the remainder of this loop — frame
    // assembly and event scheduling — is synchronizer work (delivery_ns).
    {
      const auto started = timing_ ? Clock::now() : Clock::time_point{};
      const std::uint64_t compute_before = outcome_.timers.compute_ns;
      for (Vertex v = 0; v < topology_.num_vertices(); ++v) {
        execute_pulse(v);
        while (try_execute(v)) {
        }
      }
      if (timing_)
        add_delivery_time(started, compute_before, /*transport=*/false);
    }

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      // Per-event timing: nested program execution is subtracted (it books
      // itself into compute_ns); the remainder is synchronizer/delivery
      // work for Data events and reliable-transport work for Ack/Timer.
      const auto started = timing_ ? Clock::now() : Clock::time_point{};
      const std::uint64_t compute_before = outcome_.timers.compute_ns;
      switch (event.kind) {
        case Event::Kind::Data:
          outcome_.virtual_time = std::max(outcome_.virtual_time, event.time);
          deliver_data(event);
          // Cascade: the delivery may have unblocked the destination.
          while (try_execute(event.dst)) {
          }
          break;
        case Event::Kind::Ack:
          outcome_.virtual_time = std::max(outcome_.virtual_time, event.time);
          if (!sync_[event.src].crashed &&
              !senders_[event.src][event.src_port].on_ack(event.link_seq))
            ++outcome_.faults.duplicate_acks;
          break;
        case Event::Kind::Timer:
          handle_timer(event);
          break;
      }
      if (timing_)
        add_delivery_time(started, compute_before,
                          event.kind != Event::Kind::Data);
      if (stopped_count_ == topology_.num_vertices()) break;
      if (pulse_cap_hit_) break;
    }

    const Vertex n = topology_.num_vertices();
    outcome_.completed = halted_count_ == n;
    outcome_.verdicts.reserve(n);
    for (Vertex v = 0; v < n; ++v) {
      const auto& node = nodes_[v];
      outcome_.verdicts.push_back(node->verdict());
      if (node->verdict() == Verdict::Reject) outcome_.detected = true;
      if (!sync_[v].crashed && node->verdict() == Verdict::Reject)
        outcome_.faults.detected_by_survivors = true;
      if (!sync_[v].crashed && !node->halted())
        outcome_.faults.stalled_nodes.push_back(v);
    }
    outcome_.counters = fault_counters(outcome_.faults);
    if (outcome_.trace) {
      // Pad quiet trailing pulses so the trace covers exactly
      // outcome_.pulses rounds — mirroring the synchronous engine, which
      // keeps fault-free traces byte-identical across the two.
      outcome_.trace.finish_run(outcome_.pulses);
      outcome_.trace.set_counters(outcome_.counters);
    }
    outcome_.trace_bytes = outcome_.trace.approx_bytes();
    return outcome_;
  }

 private:
  // ------------------------------------------------------------- timing --
  using Clock = std::chrono::steady_clock;

  static std::uint64_t elapsed_ns(Clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
  }

  /// Book the time since `started`, minus the program-compute time nested
  /// inside it (already self-booked into compute_ns), as delivery or
  /// transport work.
  void add_delivery_time(Clock::time_point started,
                         std::uint64_t compute_before, bool transport) {
    const std::uint64_t total = elapsed_ns(started);
    const std::uint64_t nested = outcome_.timers.compute_ns - compute_before;
    const std::uint64_t rest = total > nested ? total - nested : 0;
    if (transport)
      outcome_.timers.transport_ns += rest;
    else
      outcome_.timers.delivery_ns += rest;
  }

  // ----------------------------------------------------------- wire layer --
  std::uint64_t fresh_delay() {
    return 1 + delay_rng_.below(config_.max_delay);
  }

  void push_event(Event event) {
    event.seq = next_event_seq_++;
    events_.push(std::move(event));
  }

  /// Apply link faults to a packet about to go on the wire. Returns false
  /// if the transmission is dropped; flips one bit on corruption. With
  /// FaultPlan::corrupt_headers the flipped bit is drawn over the frame
  /// header (pulse, then halted flag) as well as the payload; otherwise it
  /// targets the payload alone, so existing fault streams are unchanged.
  bool survive_faults(std::uint32_t src, std::uint32_t port,
                      DataPacket& packet) {
    if (!injector_.has_value()) return true;
    const std::uint64_t payload_bits = packet.frame.payload_bits();
    const std::uint64_t header_bits =
        config_.faults.corrupt_headers ? Frame::kPulseWireBits + 1 : 0;
    const auto fate = injector_->next_fate(
        src, port, static_cast<std::size_t>(header_bits + payload_bits));
    if (fate.dropped) {
      ++outcome_.faults.frames_dropped;
      return false;
    }
    if (fate.corrupted) {
      ++outcome_.faults.frames_corrupted;
      const std::uint64_t bit = fate.corrupt_bit;
      if (bit < header_bits) {
        if (bit < Frame::kPulseWireBits)
          packet.frame.pulse ^= 1ULL << bit;
        else
          packet.frame.sender_halted = !packet.frame.sender_halted;
      } else {
        packet.frame.payload->flip(
            static_cast<std::size_t>(bit - header_bits));
      }
    }
    return true;
  }

  /// Schedule the arrival of `packet` on the directed link (src, port) for
  /// a transmission happening at `now`. FIFO watermark per link.
  void transmit(std::uint32_t src, std::uint32_t port, DataPacket packet,
                std::uint64_t now) {
    if (!survive_faults(src, port, packet)) return;
    std::uint64_t when = now + fresh_delay();
    when = std::max(when, link_watermark_[src][port] + 1);
    link_watermark_[src][port] = when;
    Event event;
    event.time = when;
    event.kind = Event::Kind::Data;
    event.src = src;
    event.src_port = port;
    event.dst = topology_.neighbors(src)[port];
    event.dst_port = reverse_port_[src][port];
    event.link_seq = packet.seq;
    event.packet = std::move(packet);
    push_event(std::move(event));
  }

  void arm_timer(std::uint32_t src, std::uint32_t port, std::uint64_t seq,
                 std::uint64_t now) {
    Event event;
    event.time = now + senders_[src][port].timeout_for(seq, base_rto_);
    event.kind = Event::Kind::Timer;
    event.src = src;
    event.src_port = port;
    event.link_seq = seq;
    push_event(std::move(event));
  }

  void send_ack(std::uint32_t dst, std::uint32_t dst_port, std::uint64_t seq,
                std::uint64_t now, std::uint32_t data_src,
                std::uint32_t data_src_port) {
    ++outcome_.acks;
    outcome_.transport_bits +=
        config_.transport_cfg.seq_bits + config_.transport_cfg.crc_bits;
    // The ack travels on the reverse directed link (dst, dst_port) and is
    // subject to the same drop process; it carries no payload, so the
    // corruption draw never fires (CRC-protected header abstracted away).
    if (injector_.has_value()) {
      const auto fate = injector_->next_fate(dst, dst_port, 0);
      if (fate.dropped) {
        ++outcome_.faults.frames_dropped;
        return;
      }
    }
    std::uint64_t when = now + fresh_delay();
    when = std::max(when, link_watermark_[dst][dst_port] + 1);
    link_watermark_[dst][dst_port] = when;
    Event event;
    event.time = when;
    event.kind = Event::Kind::Ack;
    event.src = data_src;  // the node whose sender awaits this ack
    event.src_port = data_src_port;
    event.link_seq = seq;
    push_event(std::move(event));
  }

  void deliver_data(const Event& event) {
    if (reliable_) {
      auto accept = receivers_[event.dst][event.dst_port].on_data(event.packet);
      if (accept.checksum_reject) {
        ++outcome_.faults.checksum_rejects;
        return;
      }
      if (accept.send_ack)
        send_ack(event.dst, event.dst_port, accept.ack_seq, event.time,
                 event.src, event.src_port);
      if (accept.duplicate) {
        ++outcome_.faults.duplicate_packets;
        return;
      }
      for (Frame& frame : accept.deliver)
        deliver_frame(event.dst, event.dst_port, std::move(frame), event.time);
    } else {
      deliver_frame(event.dst, event.dst_port, Frame(event.packet.frame),
                    event.time);
    }
  }

  void deliver_frame(std::uint32_t dst, std::uint32_t port, Frame frame,
                     std::uint64_t time) {
    auto& sync = sync_[dst];
    if (frame.sender_halted) sync.port_dead[port] = true;  // after this frame
    sync.arrived[port].push_back(std::move(frame));
    sync.local_time = std::max(sync.local_time, time);
  }

  void handle_timer(const Event& event) {
    if (sync_[event.src].crashed) return;  // a crash kills the transport too
    auto& sender = senders_[event.src][event.src_port];
    switch (sender.on_timeout(event.link_seq)) {
      case LinkSender::TimeoutAction::Settled:
        return;
      case LinkSender::TimeoutAction::GiveUp:
        ++outcome_.faults.transport_failures;
        return;
      case LinkSender::TimeoutAction::Retransmit: {
        DataPacket packet = sender.retransmit_packet(event.link_seq);
        ++outcome_.faults.retransmissions;
        outcome_.transport_bits += packet.frame.overhead_bits() +
                                   config_.transport_cfg.seq_bits +
                                   packet.frame.payload_bits() +
                                   config_.transport_cfg.crc_bits;
        transmit(event.src, event.src_port, std::move(packet), event.time);
        arm_timer(event.src, event.src_port, event.link_seq, event.time);
        return;
      }
    }
  }

  // ---------------------------------------------------------- synchronizer --
  /// Frame for the pulse dst is waiting on available (or the port is
  /// permanently dead with no buffered frames: the sender halted earlier)?
  /// Under raw faulty links a dropped frame leaves a pulse gap at the head
  /// of the queue — the port is then starved forever and the node stalls.
  bool port_ready(const SyncState& sync, std::uint32_t port) const {
    const auto& queue = sync.arrived[port];
    if (!queue.empty()) return queue.front().pulse + 1 == sync.pulse;
    return sync.port_dead[port];
  }

  bool try_execute(Vertex v) {
    auto& sync = sync_[v];
    if (!sync.running) return false;
    for (std::uint32_t p = 0; p < sync.arrived.size(); ++p)
      if (!port_ready(sync, p)) return false;
    execute_pulse(v);
    return true;
  }

  void crash_node(Vertex v) {
    auto& sync = sync_[v];
    sync.running = false;
    sync.crashed = true;
    nodes_[v]->discard_outbox();
    outcome_.faults.crashed_nodes.push_back(v);
    ++stopped_count_;
  }

  void execute_pulse(Vertex v) {
    auto& sync = sync_[v];
    auto& node = *nodes_[v];
    CSD_CHECK(sync.running);
    if (injector_.has_value()) {
      if (const auto when = injector_->crash_round(v);
          when.has_value() && sync.pulse >= *when) {
        crash_node(v);
        return;
      }
    }
    if (sync.pulse >= config_.max_pulses) {
      pulse_cap_hit_ = true;
      sync.running = false;
      return;
    }

    // Assemble the inbox for this pulse (pulse 0 has none by construction).
    node.clear_inbox();
    if (sync.pulse > 0) {
      for (std::uint32_t p = 0; p < sync.arrived.size(); ++p) {
        if (sync.arrived[p].empty()) continue;  // dead port
        Frame frame = std::move(sync.arrived[p].front());
        sync.arrived[p].pop_front();
        CSD_CHECK_MSG(frame.pulse + 1 == sync.pulse,
                      "synchronizer frame out of order");
        if (frame.payload.has_value())
          node.deliver(p, std::move(*frame.payload));
      }
    }

    node.begin_round(sync.pulse);
    bool program_fault = false;
    const auto invoke_program = [&] {
      if (injector_.has_value()) {
        // Graceful degradation under fault injection: a program that throws
        // (typically a wire decode of a corrupted payload) becomes a crashed
        // node, not a crashed process. Without faults, fail fast.
        try {
          programs_[v]->on_round(node);
        } catch (const CheckFailure& failure) {
          outcome_.faults.violations.push_back(
              {ViolationKind::ProgramFault, v, sync.pulse, failure.what()});
          program_fault = true;
        }
      } else {
        programs_[v]->on_round(node);
      }
    };
    if (timing_) {
      const auto started = Clock::now();
      invoke_program();
      outcome_.timers.compute_ns += elapsed_ns(started);
    } else {
      invoke_program();
    }
    if (program_fault) {
      crash_node(v);
      return;
    }
    outcome_.pulses = std::max(outcome_.pulses, sync.pulse + 1);

    // Emit this pulse's frames (exactly one per port), with jittered FIFO
    // delivery times; under the reliable transport each frame becomes a
    // sequenced, CRC-protected, retransmittable packet.
    const bool node_halted = node.halted();
    for (std::uint32_t p = 0; p < sync.arrived.size(); ++p) {
      Frame frame;
      frame.pulse = sync.pulse;
      frame.sender_halted = node_halted;
      auto& slot = node.outbox(p);
      if (slot.has_value()) {
        frame.payload = std::move(*slot);
        slot.reset();
      }
      if (outcome_.trace && frame.payload.has_value())
        outcome_.trace.record(sync.pulse, v, topology_.neighbors(v)[p],
                              frame.payload_bits());
      outcome_.payload_bits += frame.payload_bits();
      outcome_.overhead_bits += frame.overhead_bits();
      ++outcome_.frames;
      if (reliable_) {
        DataPacket packet = senders_[v][p].packet(std::move(frame));
        outcome_.transport_bits +=
            config_.transport_cfg.seq_bits + config_.transport_cfg.crc_bits;
        const std::uint64_t seq = packet.seq;
        transmit(v, p, std::move(packet), sync.local_time);
        arm_timer(v, p, seq, sync.local_time);
      } else {
        DataPacket packet;
        packet.frame = std::move(frame);
        transmit(v, p, std::move(packet), sync.local_time);
      }
    }

    ++sync.pulse;
    if (node_halted) {
      sync.running = false;
      ++halted_count_;
      ++stopped_count_;
    }
  }

  Graph topology_;
  AsyncConfig config_;
  bool reliable_;
  std::vector<NodeId> ids_;
  Rng delay_rng_;
  std::optional<FaultInjector> injector_;
  std::uint64_t base_rto_ = 0;
  std::vector<std::vector<std::uint32_t>> reverse_port_;
  std::vector<std::vector<std::uint64_t>> link_watermark_;
  std::vector<std::unique_ptr<detail::NodeState>> nodes_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<SyncState> sync_;
  std::vector<std::vector<LinkSender>> senders_;      // reliable mode only
  std::vector<std::vector<LinkReceiver>> receivers_;  // reliable mode only
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_event_seq_ = 0;
  Vertex halted_count_ = 0;   // gracefully halted
  Vertex stopped_count_ = 0;  // halted or crashed
  bool pulse_cap_hit_ = false;
  bool timing_ = false;
  AsyncRunOutcome outcome_;
};

}  // namespace

AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          std::vector<NodeId> ids,
                          const ProgramFactory& factory) {
  AsyncEngine engine(topology, config, std::move(ids), factory);
  return engine.run();
}

AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          const ProgramFactory& factory) {
  std::vector<NodeId> ids(topology.num_vertices());
  for (Vertex v = 0; v < topology.num_vertices(); ++v) ids[v] = v;
  return run_async(topology, config, std::move(ids), factory);
}

}  // namespace csd::congest
