#include "congest/async.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "congest/node_state.hpp"
#include "support/check.hpp"

namespace csd::congest {

namespace {

/// One synchronizer frame on a directed link.
struct Frame {
  std::uint64_t pulse = 0;  // bookkeeping only (FIFO already implies it)
  bool sender_halted = false;
  std::optional<BitVec> payload;

  std::uint64_t overhead_bits() const { return 2; }  // halted + has_payload
  std::uint64_t payload_bits() const {
    return payload.has_value() ? payload->size() : 0;
  }
};

struct Event {
  std::uint64_t time;
  std::uint64_t seq;  // FIFO/determinism tiebreak
  std::uint32_t dst;
  std::uint32_t dst_port;
  Frame frame;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

/// Synchronizer bookkeeping per node.
struct SyncState {
  std::uint64_t pulse = 0;          // next pulse to execute
  std::uint64_t local_time = 0;     // virtual time the node last acted
  std::vector<std::deque<Frame>> arrived;  // per port
  std::vector<bool> port_dead;             // sender halted, nothing more
  bool running = true;  // false once its program halted
};

class AsyncEngine {
 public:
  AsyncEngine(const Graph& topology, const AsyncConfig& config,
              std::vector<NodeId> ids, const ProgramFactory& factory)
      : topology_(topology),
        config_(config),
        ids_(std::move(ids)),
        delay_rng_(derive_seed(config.seed, 0xde1a)) {
    const Vertex n = topology_.num_vertices();
    CSD_CHECK_MSG(ids_.size() == n, "identifier assignment size mismatch");
    CSD_CHECK(config_.max_delay >= 1);
    std::uint64_t namespace_size = config_.namespace_size;
    if (namespace_size == 0) namespace_size = n;
    for (const NodeId id : ids_)
      CSD_CHECK_MSG(id < namespace_size, "identifier outside namespace");

    reverse_port_.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      const auto nbrs = topology_.neighbors(v);
      reverse_port_[v].resize(nbrs.size());
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        const auto back = topology_.neighbors(nbrs[p]);
        const auto it = std::find(back.begin(), back.end(), v);
        CSD_CHECK(it != back.end());
        reverse_port_[v][p] = static_cast<std::uint32_t>(it - back.begin());
      }
    }

    nodes_.reserve(n);
    programs_.reserve(n);
    sync_.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      nodes_.push_back(std::make_unique<detail::NodeState>(
          topology_, v, ids_[v], config_.seed, n, namespace_size,
          config_.bandwidth, config_.broadcast_only));
      std::vector<NodeId> neighbor_ids;
      for (const Vertex w : topology_.neighbors(v))
        neighbor_ids.push_back(ids_[w]);
      nodes_.back()->set_neighbor_ids(std::move(neighbor_ids));
      programs_.push_back(factory(v));
      CSD_CHECK(programs_.back() != nullptr);
      sync_[v].arrived.resize(topology_.degree(v));
      sync_[v].port_dead.assign(topology_.degree(v), false);
    }
    // FIFO watermark per directed link (indexed by src, src-port).
    link_watermark_.resize(n);
    for (Vertex v = 0; v < n; ++v)
      link_watermark_[v].assign(topology_.degree(v), 0);
  }

  AsyncRunOutcome run() {
    // Pulse 0 runs immediately everywhere (empty inbox); degree-0 nodes
    // are always ready, so drive them to completion here — no event will
    // ever re-trigger them.
    for (Vertex v = 0; v < topology_.num_vertices(); ++v) {
      execute_pulse(v);
      while (try_execute(v)) {
      }
    }

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      outcome_.virtual_time = std::max(outcome_.virtual_time, event.time);
      deliver(event);
      // Cascade: the delivery may have unblocked the destination.
      while (try_execute(event.dst)) {
      }
      if (halted_count_ == topology_.num_vertices()) break;
      if (pulse_cap_hit_) break;
    }

    outcome_.completed = halted_count_ == topology_.num_vertices();
    outcome_.verdicts.reserve(topology_.num_vertices());
    for (const auto& node : nodes_) {
      outcome_.verdicts.push_back(node->verdict());
      if (node->verdict() == Verdict::Reject) outcome_.detected = true;
    }
    return outcome_;
  }

 private:
  void deliver(const Event& event) {
    auto& sync = sync_[event.dst];
    if (event.frame.sender_halted)
      sync.port_dead[event.dst_port] = true;  // after this frame
    sync.arrived[event.dst_port].push_back(event.frame);
    sync_[event.dst].local_time =
        std::max(sync_[event.dst].local_time, event.time);
  }

  /// Frame for pulse p of dst available (or the port is permanently dead
  /// with no buffered frames, i.e. the sender halted in an earlier pulse)?
  bool port_ready(const SyncState& sync, std::uint32_t port) const {
    if (!sync.arrived[port].empty()) return true;
    return sync.port_dead[port];
  }

  bool try_execute(Vertex v) {
    auto& sync = sync_[v];
    if (!sync.running) return false;
    for (std::uint32_t p = 0; p < sync.arrived.size(); ++p)
      if (!port_ready(sync, p)) return false;
    execute_pulse(v);
    return true;
  }

  void execute_pulse(Vertex v) {
    auto& sync = sync_[v];
    auto& node = *nodes_[v];
    CSD_CHECK(sync.running);
    if (sync.pulse >= config_.max_pulses) {
      pulse_cap_hit_ = true;
      sync.running = false;
      return;
    }

    // Assemble the inbox for this pulse (pulse 0 has none by construction).
    node.clear_inbox();
    if (sync.pulse > 0) {
      for (std::uint32_t p = 0; p < sync.arrived.size(); ++p) {
        if (sync.arrived[p].empty()) continue;  // dead port
        Frame frame = std::move(sync.arrived[p].front());
        sync.arrived[p].pop_front();
        CSD_CHECK_MSG(frame.pulse + 1 == sync.pulse,
                      "synchronizer frame out of order");
        if (frame.payload.has_value())
          node.deliver(p, std::move(*frame.payload));
      }
    }

    node.begin_round(sync.pulse);
    programs_[v]->on_round(node);
    outcome_.pulses = std::max(outcome_.pulses, sync.pulse + 1);

    // Emit this pulse's frames (exactly one per port), with jittered FIFO
    // delivery times.
    const bool node_halted = node.halted();
    for (std::uint32_t p = 0; p < sync.arrived.size(); ++p) {
      Frame frame;
      frame.pulse = sync.pulse;
      frame.sender_halted = node_halted;
      auto& slot = node.outbox(p);
      if (slot.has_value()) {
        frame.payload = std::move(*slot);
        slot.reset();
      }
      outcome_.payload_bits += frame.payload_bits();
      outcome_.overhead_bits += frame.overhead_bits();
      ++outcome_.frames;
      const std::uint64_t delay = 1 + delay_rng_.below(config_.max_delay);
      std::uint64_t when = sync.local_time + delay;
      when = std::max(when, link_watermark_[v][p] + 1);  // FIFO per link
      link_watermark_[v][p] = when;
      events_.push(Event{when, next_seq_++, topology_.neighbors(v)[p],
                         reverse_port_[v][p], std::move(frame)});
    }

    ++sync.pulse;
    if (node_halted) {
      sync.running = false;
      ++halted_count_;
    }
  }

  Graph topology_;
  AsyncConfig config_;
  std::vector<NodeId> ids_;
  Rng delay_rng_;
  std::vector<std::vector<std::uint32_t>> reverse_port_;
  std::vector<std::vector<std::uint64_t>> link_watermark_;
  std::vector<std::unique_ptr<detail::NodeState>> nodes_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<SyncState> sync_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_seq_ = 0;
  Vertex halted_count_ = 0;
  bool pulse_cap_hit_ = false;
  AsyncRunOutcome outcome_;
};

}  // namespace

AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          std::vector<NodeId> ids,
                          const ProgramFactory& factory) {
  AsyncEngine engine(topology, config, std::move(ids), factory);
  return engine.run();
}

AsyncRunOutcome run_async(const Graph& topology, const AsyncConfig& config,
                          const ProgramFactory& factory) {
  std::vector<NodeId> ids(topology.num_vertices());
  for (Vertex v = 0; v < topology.num_vertices(); ++v) ids[v] = v;
  return run_async(topology, config, std::move(ids), factory);
}

}  // namespace csd::congest
